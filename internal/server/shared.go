// Cross-session shared caches and admission control (DESIGN.md §3h).
//
// Every session used to own its caches outright: a private cost cache in
// its evaluation pool and a freshly generated search space, with only the
// oclc compile cache amortizing work across runs. Multi-tenant atfd lifts
// the rest to Manager scope: a byte-budgeted cost-outcome cache keyed by
// (spec cost hash, configuration key), a generated-space cache keyed by
// the spec's space-construction inputs, and an eval-slot semaphore that
// bounds concurrent cost evaluations across all sessions so overload
// degrades to queueing instead of collapse.

package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"atf"
	"atf/internal/core"
	"atf/internal/obs"
)

// Daemon-wide multi-tenancy metrics, served on /metrics.
var (
	mSessionsCreated = obs.NewCounter("atf_server_sessions_created_total",
		"Sessions admitted by Create (resumed sessions excluded)")
	mSessionsRejected = obs.NewCounter("atf_server_sessions_rejected_total",
		"Session creations rejected by admission control (HTTP 429)")
	mSessionsActive = obs.NewGauge("atf_server_sessions_active",
		"Sessions currently in the running state")
	mEvalSlotWait = obs.NewHistogram("atf_server_eval_slot_wait_seconds",
		"Time a cost evaluation waited for a free eval slot", nil)

	mCostCacheHits = obs.NewCounter("atf_server_cost_cache_hits_total",
		"Shared cost-cache lookups served from another (or an earlier) session's outcome")
	mCostCacheMisses = obs.NewCounter("atf_server_cost_cache_misses_total",
		"Shared cost-cache lookups that ran the cost function")
	mCostCacheEvictions = obs.NewCounter("atf_server_cost_cache_evictions_total",
		"Outcomes evicted to keep the shared cost cache under its byte budget")
	mCostCacheBytes = obs.NewGauge("atf_server_cost_cache_bytes",
		"Estimated bytes of outcomes resident in the shared cost cache")

	mSpaceCacheHits = obs.NewCounter("atf_server_space_cache_hits_total",
		"Sessions whose generated search space (census included) was served from the cache")
	mSpaceCacheMisses = obs.NewCounter("atf_server_space_cache_misses_total",
		"Sessions that generated their search space cold")
	mSpaceCacheEvictions = obs.NewCounter("atf_server_space_cache_evictions_total",
		"Generated spaces evicted from the cache (LRU beyond the entry bound)")
)

// OverloadedError is Create's admission-control rejection: the daemon is
// at its concurrent-session limit. The HTTP layer maps it to 429 with a
// Retry-After header; RetryAfter is the backoff hint.
type OverloadedError struct {
	Limit      int
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server: at the concurrent-session limit (%d); retry in %v",
		e.Limit, e.RetryAfter)
}

// specCostHash scopes the shared cost cache: two sessions share outcomes
// exactly when their parameter declarations and cost spec marshal
// identically — the inputs that determine a configuration's cost. Seeds,
// techniques, abort conditions and parallelism settings deliberately stay
// out of the key.
func specCostHash(spec *atf.Spec) string {
	data, _ := json.Marshal(struct {
		P []atf.ParamSpec `json:"p"`
		C atf.CostSpec    `json:"c"`
	}{spec.Parameters, spec.Cost})
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

// specSpaceHash keys the generated-space cache on everything space
// construction reads: the parameter declarations, the cost spec (the gemm
// kind derives its built-in parameter space from it), the space mode, and
// the effective memory bound. Generation is deterministic in these
// inputs at any worker count, so a cached *Space is interchangeable with
// a fresh one.
func specSpaceHash(spec *atf.Spec, maxSpaceBytes int64) string {
	data, _ := json.Marshal(struct {
		P []atf.ParamSpec `json:"p"`
		C atf.CostSpec    `json:"c"`
		M string          `json:"m"`
		B int64           `json:"b"`
	}{spec.Parameters, spec.Cost, spec.SpaceMode, maxSpaceBytes})
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

// outcomeCache is the daemon-wide cost-outcome cache: a byte-budgeted LRU
// keyed by (spec cost hash | configuration key) with in-flight
// deduplication, so concurrent sessions tuning the same kernel neither
// repeat each other's evaluations nor race to compute the same one.
// Outcomes are deterministic in the key, which is what makes serving one
// session's outcome to another bit-identical to recomputing it.
type outcomeCache struct {
	mu      sync.Mutex
	entries map[string]*outcomeEntry
	lru     *list.List // *outcomeEntry; front = most recently used
	budget  int64
	bytes   int64

	hits      uint64
	misses    uint64
	evictions uint64
}

type outcomeEntry struct {
	key   string
	elem  *list.Element
	bytes int64 // 0 while the evaluation is in flight
	done  chan struct{}
	cost  core.Cost
	err   error
}

func newOutcomeCache(budget int64) *outcomeCache {
	return &outcomeCache{
		entries: make(map[string]*outcomeEntry),
		lru:     list.New(),
		budget:  budget,
	}
}

// getOrCompute returns the cached outcome for key, waiting on an in-flight
// computation or running compute itself on a miss. Errors are cached too:
// cost functions are deterministic, so a failed configuration fails for
// every session.
func (c *outcomeCache) getOrCompute(key string, compute func() (core.Cost, error)) (core.Cost, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		mCostCacheHits.Inc()
		<-e.done
		return e.cost, e.err
	}
	c.misses++
	e := &outcomeEntry{key: key, done: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()
	mCostCacheMisses.Inc()

	e.cost, e.err = compute()

	c.mu.Lock()
	if c.entries[key] == e {
		e.bytes = int64(len(key)) + int64(len(e.cost))*16 + 160
		c.bytes += e.bytes
		c.evictOverBudgetLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return e.cost, e.err
}

func (c *outcomeCache) evictOverBudgetLocked() {
	if c.budget > 0 {
		for elem := c.lru.Back(); elem != nil && c.bytes > c.budget; {
			prev := elem.Prev()
			e := elem.Value.(*outcomeEntry)
			if e.bytes > 0 { // in-flight entries are never evicted
				c.lru.Remove(elem)
				delete(c.entries, e.key)
				c.bytes -= e.bytes
				c.evictions++
				mCostCacheEvictions.Inc()
			}
			elem = prev
		}
	}
	mCostCacheBytes.Set(c.bytes)
}

// stats snapshots the cache counters (tests, the load harness).
func (c *outcomeCache) stats() (hits, misses, evictions uint64, bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.bytes, len(c.entries)
}

// outcomeDump is one persisted cost-cache entry (state-dir warm start).
type outcomeDump struct {
	Key   string    `json:"k"`
	Cost  core.Cost `json:"c,omitempty"`
	Error string    `json:"e,omitempty"`
}

// dump serializes the cache's completed entries, most recently used first,
// for the persistent warm-start store. In-flight entries are skipped —
// their outcome is unknown and they will be recomputed cold next start.
func (c *outcomeCache) dump() []byte {
	c.mu.Lock()
	var out []outcomeDump
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*outcomeEntry)
		if e.bytes == 0 {
			continue
		}
		d := outcomeDump{Key: e.key, Cost: e.cost}
		if e.err != nil {
			d.Error = e.err.Error()
		}
		out = append(out, d)
	}
	c.mu.Unlock()
	data, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return data
}

// load restores a dump into the cache as completed entries, preserving the
// dump's MRU-first order, then enforces the byte budget (so an oversized
// dump sheds its cold tail exactly as live inserts would). Existing entries
// win over dumped ones. Returns how many entries were restored.
func (c *outcomeCache) load(data []byte) int {
	var in []outcomeDump
	if err := json.Unmarshal(data, &in); err != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	restored := 0
	// Insert least recently used first so PushFront reproduces the order.
	for i := len(in) - 1; i >= 0; i-- {
		d := in[i]
		if d.Key == "" {
			continue
		}
		if _, ok := c.entries[d.Key]; ok {
			continue
		}
		e := &outcomeEntry{key: d.Key, done: make(chan struct{}), cost: d.Cost}
		if d.Error != "" {
			e.err = fmt.Errorf("%s", d.Error)
		}
		close(e.done)
		e.bytes = int64(len(e.key)) + int64(len(e.cost))*16 + 160
		e.elem = c.lru.PushFront(e)
		c.entries[d.Key] = e
		c.bytes += e.bytes
		restored++
	}
	c.evictOverBudgetLocked()
	return restored
}

// spaceCache memoizes generated search spaces — and with them the lazy
// census Size() pass — across sessions, keyed by specSpaceHash. Spaces
// are immutable (or internally synchronized, for lazy slab expansion)
// after generation, so one instance serves any number of concurrent
// sessions. Bounded by entry count with LRU eviction; in-flight
// generations are deduplicated so a burst of identical specs generates
// once.
type spaceCache struct {
	mu      sync.Mutex
	entries map[string]*spaceEntry
	lru     *list.List // *spaceEntry
	max     int

	hits      uint64
	misses    uint64
	evictions uint64
}

type spaceEntry struct {
	key   string
	elem  *list.Element
	done  chan struct{}
	space *atf.Space
	err   error
}

func newSpaceCache(maxEntries int) *spaceCache {
	return &spaceCache{
		entries: make(map[string]*spaceEntry),
		lru:     list.New(),
		max:     maxEntries,
	}
}

// getOrGenerate returns the cached space for key, waiting on an in-flight
// generation or running gen itself on a miss. Generation errors are NOT
// cached: they can be transient (the memory bound), and a failed create
// should not poison later retries.
func (c *spaceCache) getOrGenerate(key string, gen func() (*atf.Space, error)) (*atf.Space, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		mSpaceCacheHits.Inc()
		<-e.done
		if e.err == nil {
			return e.space, nil
		}
		// The generation this lookup latched onto failed; retry cold.
		return gen()
	}
	c.misses++
	e := &spaceEntry{key: key, done: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()
	mSpaceCacheMisses.Inc()

	e.space, e.err = gen()

	c.mu.Lock()
	if e.err != nil {
		if c.entries[key] == e {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
		}
	} else {
		for c.max > 0 && len(c.entries) > c.max {
			back := c.lru.Back()
			if back == nil {
				break
			}
			v := back.Value.(*spaceEntry)
			if v == e {
				break // never evict the entry just generated
			}
			c.lru.Remove(back)
			delete(c.entries, v.key)
			c.evictions++
			mSpaceCacheEvictions.Inc()
		}
	}
	c.mu.Unlock()
	close(e.done)
	return e.space, e.err
}

// stats snapshots the cache counters (tests).
func (c *spaceCache) stats() (hits, misses, evictions uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, len(c.entries)
}

// slotCostFunction throttles cost evaluations through the manager-wide
// eval-slot semaphore — the backpressure half of admission control. It
// wraps the raw cost function, inside every cache layer, so replayed and
// cached evaluations never consume a slot.
type slotCostFunction struct {
	inner core.CostFunction
	slots chan struct{}
}

// Cost implements core.CostFunction.
func (f *slotCostFunction) Cost(cfg *core.Config) (core.Cost, error) {
	start := time.Now()
	f.slots <- struct{}{}
	mEvalSlotWait.Observe(time.Since(start).Seconds())
	defer func() { <-f.slots }()
	return f.inner.Cost(cfg)
}

// Clone implements core.CloneableCostFunction; clones share the semaphore.
func (f *slotCostFunction) Clone() (core.CostFunction, error) {
	cl, ok := f.inner.(core.CloneableCostFunction)
	if !ok {
		return f, nil
	}
	inner, err := cl.Clone()
	if err != nil {
		return nil, err
	}
	return &slotCostFunction{inner: inner, slots: f.slots}, nil
}

// sharedCostFunction consults the daemon-wide outcome cache before paying
// the inner cost function. scope is the session's spec cost hash, so only
// sessions with identical cost semantics share outcomes.
type sharedCostFunction struct {
	inner core.CostFunction
	cache *outcomeCache
	scope string
}

// Cost implements core.CostFunction.
func (f *sharedCostFunction) Cost(cfg *core.Config) (core.Cost, error) {
	return f.cache.getOrCompute(f.scope+"|"+cfg.Key(), func() (core.Cost, error) {
		return f.inner.Cost(cfg)
	})
}

// Clone implements core.CloneableCostFunction; clones share the cache.
func (f *sharedCostFunction) Clone() (core.CostFunction, error) {
	cl, ok := f.inner.(core.CloneableCostFunction)
	if !ok {
		return f, nil
	}
	inner, err := cl.Clone()
	if err != nil {
		return nil, err
	}
	return &sharedCostFunction{inner: inner, cache: f.cache, scope: f.scope}, nil
}
