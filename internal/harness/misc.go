package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/opencl"
	"atf/internal/opentuner"
	"atf/internal/search"
)

// SizesResult is experiment E4: the unconstrained vs constrained space
// sizes of XgemmDirect (paper §VI-A: >10^19 vs ~10^7 at 2^10×2^10).
type SizesResult struct {
	RangeCap    int64
	Raw         string
	Constrained uint64
	CountTime   time.Duration
}

// Sizes runs E4 for the given range cap.
func Sizes(rangeCap int64, workers int) (*SizesResult, error) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: rangeCap})
	start := time.Now()
	n, _, err := core.CountGroup(core.G(params...), core.GenOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	// RawSize needs a Space shell; build a single-parameter space to get
	// the product over the same params without materializing anything.
	raw := rawProduct(rangeCap)
	return &SizesResult{
		RangeCap:    rangeCap,
		Raw:         fmt.Sprintf("%.4g", raw),
		Constrained: n,
		CountTime:   time.Since(start),
	}, nil
}

// SizesTable renders E4.
func SizesTable(rs []*SizesResult) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "XgemmDirect space sizes: unconstrained product vs valid configurations",
		Columns: []string{"range cap", "unconstrained", "constrained (valid)", "count time"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.RangeCap), r.Raw,
			fmt.Sprintf("%d", r.Constrained), r.CountTime.String(),
		})
	}
	t.Notes = append(t.Notes,
		"paper (2^10 x 2^10): unconstrained >10^19, constrained ~10^7; valid count saturates above cap 77 because 2*WGD*(WGD+pad)*4B must fit 48 KiB of local memory")
	return t
}

// RelaxedResult is experiment E5: dropping the two global-size
// divisibility constraints (possible in ATF because CLBlast pads the
// global size arithmetically) enlarges the space and improves the result.
type RelaxedResult struct {
	Device          string
	IS              string
	ConstrainedSize uint64
	RelaxedSize     uint64
	ConstrainedNs   float64 // +Inf when the constrained space is empty
	RelaxedNs       float64
	Improvement     float64
}

// Relaxed runs E5 on one device for every Caffe input size.
func Relaxed(deviceName string, opts Options) ([]*RelaxedResult, error) {
	opts.defaults()
	dev, err := opencl.FindDevice("", deviceName)
	if err != nil {
		return nil, err
	}
	relaxedParams := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap:         opts.RangeCap,
		MaxWorkGroupSize: int64(dev.Desc.MaxWorkGroupSize),
		LocalMemBytes:    int64(dev.Desc.LocalMemBytes),
	})
	relaxedSpace, err := core.GenerateFlat(relaxedParams, core.GenOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}

	var out []*RelaxedResult
	for _, shape := range clblast.CaffeInputSizes() {
		eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
		r := &RelaxedResult{Device: dev.Name(), IS: shape.Name, RelaxedSize: relaxedSpace.Size()}

		// Constrained variant: full ranges but WGD must divide M and N —
		// the CLTune-expressible formulation.
		conParams := clblast.XgemmDirectParams(clblast.SpaceOptions{
			RangeCap:              opts.RangeCap,
			GlobalSizeConstraints: true,
			Shape:                 shape,
			MaxWorkGroupSize:      int64(dev.Desc.MaxWorkGroupSize),
			LocalMemBytes:         int64(dev.Desc.LocalMemBytes),
		})
		conSpace, err := core.GenerateFlat(conParams, core.GenOptions{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		r.ConstrainedSize = conSpace.Size()
		if conSpace.Size() > 0 {
			cr, err := opts.explore(conSpace,
				&search.Annealing{Start: clblast.DefaultConfig(), RestartAfter: 25},
				eval.CostFunction(),
				core.Evaluations(minU64(conSpace.Size(), opts.ATFEvals)),
				core.ExploreOptions{Seed: opts.Seed, CacheCosts: true})
			if err != nil {
				return nil, err
			}
			if cr.Best != nil {
				r.ConstrainedNs = cr.BestCost.Primary()
			}
		}

		rr, err := opts.explore(relaxedSpace,
			&search.Annealing{Start: clblast.DefaultConfig(), RestartAfter: 25},
			eval.CostFunction(),
			core.Evaluations(opts.ATFEvals),
			core.ExploreOptions{Seed: opts.Seed, CacheCosts: true})
		if err != nil {
			return nil, err
		}
		r.RelaxedNs = rr.BestCost.Primary()
		if r.ConstrainedNs > 0 {
			r.Improvement = r.ConstrainedNs / r.RelaxedNs
		}
		out = append(out, r)
	}
	return out, nil
}

// RelaxedTable renders E5.
func RelaxedTable(rs []*RelaxedResult) *Table {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("relaxing the global-size constraints (%s)", rs[0].Device),
		Columns: []string{"IS", "constrained space", "relaxed space", "constrained best", "relaxed best", "improvement"},
	}
	for _, r := range rs {
		con := "-- (empty space)"
		imp := "--"
		if r.ConstrainedNs > 0 {
			con = ns2ms(r.ConstrainedNs)
			imp = f2(r.Improvement) + "x"
		}
		t.Rows = append(t.Rows, []string{
			r.IS, fmt.Sprintf("%d", r.ConstrainedSize), fmt.Sprintf("%d", r.RelaxedSize),
			con, ns2ms(r.RelaxedNs), imp,
		})
	}
	t.Notes = append(t.Notes,
		"paper (IS4): relaxing raised ATF's speedup from 12.85x to 17.60x (CPU) and 2.89x to 3.62x (GPU)")
	return t
}

// ValidityResult is experiment E6: OpenTuner on the raw space.
type ValidityResult struct {
	IS          string
	RawSize     string
	ValidSize   uint64
	Fraction    string
	Evaluations int
	ValidHits   int
}

// Validity runs E6: how often does the raw-space OpenTuner baseline hit a
// valid configuration within its budget?
func Validity(opts Options) ([]*ValidityResult, error) {
	opts.defaults()
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: opts.RangeCap})
	valid, _, err := core.CountGroup(core.G(params...), core.GenOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	raw := rawProduct(opts.RangeCap)

	var out []*ValidityResult
	dev, err := opencl.FindDevice("", "K20m")
	if err != nil {
		return nil, err
	}
	for _, shape := range clblast.CaffeInputSizes() {
		eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
		raw2 := &opentuner.RawTuner{
			Params: params,
			Validate: func(cfg *core.Config) bool {
				return clblast.ValidateConfig(cfg, params)
			},
		}
		run, err := raw2.Tune(eval.CostFunction(), opts.OpenTunerEvals, opts.Seed+int64(len(out)))
		if err != nil {
			return nil, err
		}
		out = append(out, &ValidityResult{
			IS:          shape.Name,
			RawSize:     fmt.Sprintf("%.3g", raw),
			ValidSize:   valid,
			Fraction:    fmt.Sprintf("%.2e", float64(valid)/raw),
			Evaluations: run.Evaluations,
			ValidHits:   run.ValidEvals,
		})
	}
	return out, nil
}

// ValidityTable renders E6.
func ValidityTable(rs []*ValidityResult) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "OpenTuner on the unconstrained space: valid configurations found",
		Columns: []string{"IS", "raw space", "valid configs", "valid fraction", "evaluations", "valid hits"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.IS, r.RawSize, fmt.Sprintf("%d", r.ValidSize), r.Fraction,
			fmt.Sprintf("%d", r.Evaluations), fmt.Sprintf("%d", r.ValidHits),
		})
	}
	t.Notes = append(t.Notes,
		"paper: OpenTuner finds no valid configuration within 10,000 evaluations (valid fraction ~1e-7 at IS4)")
	return t
}

// DefaultsResult is experiment E7: kernel defaults vs CLTune's 256×256
// device-optimized values on the deep-learning sizes.
type DefaultsResult struct {
	Device      string
	IS          string
	DefaultNs   float64
	DevOptNs    float64
	DefaultWins bool
}

// Defaults runs E7 on one device.
func Defaults(deviceName string, opts Options) ([]*DefaultsResult, error) {
	opts.defaults()
	dev, err := opencl.FindDevice("", deviceName)
	if err != nil {
		return nil, err
	}
	devOpt, err := deviceOptimized(dev, opts)
	if err != nil {
		return nil, err
	}
	var out []*DefaultsResult
	for _, shape := range clblast.CaffeInputSizes() {
		eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
		defNs, err := eval.Eval(clblast.DefaultConfig())
		if err != nil {
			return nil, err
		}
		optNs, err := eval.Eval(devOpt)
		if err != nil {
			return nil, err
		}
		out = append(out, &DefaultsResult{
			Device: dev.Name(), IS: shape.Name,
			DefaultNs: defNs, DevOptNs: optNs,
			DefaultWins: defNs < optNs,
		})
	}
	return out, nil
}

// DefaultsTable renders E7.
func DefaultsTable(rs []*DefaultsResult) *Table {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("kernel defaults vs device-optimized (256x256) values on %s", rs[0].Device),
		Columns: []string{"IS", "defaults", "device-optimized", "defaults win?"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.IS, ns2ms(r.DefaultNs), ns2ms(r.DevOptNs), fmt.Sprintf("%v", r.DefaultWins),
		})
	}
	t.Notes = append(t.Notes,
		"paper: 'surprisingly, in most cases, XgemmDirect's performance is better when using its default tuning parameter values' — small defaults parallelize better on the deep-learning sizes")
	return t
}

// GroupsResult is experiment E9: parallel (grouped) vs sequential space
// generation (Section V).
type GroupsResult struct {
	Groups     int
	SpaceSize  uint64
	Sequential time.Duration
	Parallel   time.Duration
	Speedup    float64
}

// Groups runs E9 with g independent dependency groups, each a three-level
// divisibility chain over [1, n].
func Groups(g int, n int64, workers int) (*GroupsResult, error) {
	build := func() []*core.Group {
		var groups []*core.Group
		for i := 0; i < g; i++ {
			a := core.NewParam(fmt.Sprintf("a%d", i), core.NewInterval(1, n))
			b := core.NewParam(fmt.Sprintf("b%d", i), core.NewInterval(1, n),
				core.Divides(core.Ref(fmt.Sprintf("a%d", i))))
			c := core.NewParam(fmt.Sprintf("c%d", i), core.NewInterval(1, n),
				core.Divides(core.Ref(fmt.Sprintf("b%d", i))))
			groups = append(groups, core.G(a, b, c))
		}
		return groups
	}

	start := time.Now()
	seqSpace, err := core.GenerateSpace(build(), core.GenOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	// Sequentialize across groups too: workers=1 still runs one goroutine
	// per group concurrently, so measure per-group generation serially.
	seq := time.Since(start)
	seqSerial := time.Duration(0)
	for _, grp := range build() {
		s := time.Now()
		if _, err := core.GenerateGroup(grp, core.GenOptions{Workers: 1}); err != nil {
			return nil, err
		}
		seqSerial += time.Since(s)
	}
	if seqSerial > seq {
		seq = seqSerial
	}

	start = time.Now()
	parSpace, err := core.GenerateSpace(build(), core.GenOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	par := time.Since(start)

	if seqSpace.Size() != parSpace.Size() {
		return nil, fmt.Errorf("harness: grouped generation size mismatch: %d vs %d",
			seqSpace.Size(), parSpace.Size())
	}
	return &GroupsResult{
		Groups:     g,
		SpaceSize:  parSpace.Size(),
		Sequential: seqSerial,
		Parallel:   par,
		Speedup:    float64(seqSerial) / float64(par),
	}, nil
}

// GroupsTable renders E9.
func GroupsTable(r *GroupsResult) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "parallel search-space generation with parameter groups (Section V)",
		Columns: []string{"groups", "space size", "sequential", "parallel", "speedup"},
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", r.Groups), fmt.Sprintf("%d", r.SpaceSize),
		r.Sequential.String(), r.Parallel.String(), f2(r.Speedup) + "x",
	})
	t.Notes = append(t.Notes,
		"groups generate concurrently (one goroutine per group, root ranges split across workers); the cross-product space is never materialized")
	return t
}
