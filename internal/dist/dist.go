// Package dist is the distributed evaluation fleet behind atfd: remote
// eval-worker processes (cmd/atf-worker) register with the daemon over
// HTTP and evaluate batches of configurations on the coordinator's
// behalf, so tuning throughput scales with machines instead of cores.
//
// The subsystem plugs into the exploration engine through the
// core.BatchEvaluator seam: the engine draws batches from the technique
// exactly as before and merges outcomes strictly in batch-index order,
// so a fleet run is bit-identical to a local run at any fleet size and
// under any worker-failure pattern — the fleet only changes where costs
// are computed, never what is committed.
//
// Protocol (HTTP/JSON in the style of the atfd API, NDJSON streams for
// results):
//
//	worker → coordinator  POST /v1/workers        register + heartbeat
//	anyone → coordinator  GET  /v1/workers        fleet status
//	coordinator → worker  POST /v1/eval           batch partition dispatch
//	coordinator → worker  (response)              NDJSON EvalResult stream
//	anyone → worker       GET  /v1/healthz        liveness probe
//
// The coordinator partitions each batch across the live workers,
// speculatively re-dispatches partitions whose worker dies or straggles
// (first complete outcome per configuration wins — outcomes are
// deterministic, so duplicates agree), and falls back to in-process
// evaluation when no workers are live or a partition exhausts its remote
// attempts, so a fleet of zero workers behaves exactly like plain atfd.
package dist

import (
	"atf"
)

// RegisterRequest is the worker → coordinator registration and heartbeat
// body. Workers re-POST it every heartbeat interval; the coordinator
// keys workers by URL, so re-registration is idempotent and doubles as
// liveness.
type RegisterRequest struct {
	// Name labels the worker in listings and metrics (default: its URL).
	Name string `json:"name,omitempty"`
	// URL is the worker's advertised base URL — where the coordinator
	// POSTs /v1/eval.
	URL string `json:"url"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	ID string `json:"id"`
	// HeartbeatMs is the interval at which the coordinator expects the
	// worker to re-register; liveness expires after TTLMs without one.
	HeartbeatMs int64 `json:"heartbeat_ms"`
	TTLMs       int64 `json:"ttl_ms"`
}

// WorkerStatus is one worker's row in GET /v1/workers.
type WorkerStatus struct {
	ID             string `json:"id"`
	Name           string `json:"name"`
	URL            string `json:"url"`
	Live           bool   `json:"live"`
	LastSeenUnixNs int64  `json:"last_seen_unix_ns"`
	Dispatches     uint64 `json:"dispatches"`
	Failures       uint64 `json:"failures"`
	Evals          uint64 `json:"evals"`
}

// EvalRequest is the coordinator → worker dispatch body: one partition
// of one batch. The spec rides along on every request — workers are
// stateless and cache the built cost function by spec hash, so repeat
// requests of the same tuning run pay the build once.
type EvalRequest struct {
	// Session identifies the tuning session (logging and diagnostics).
	Session string `json:"session,omitempty"`
	// BatchIndex is the exploration engine's batch sequence number; it
	// is echoed on every result record so records of a stale attempt can
	// never be mistaken for another batch's.
	BatchIndex uint64 `json:"batch_index"`
	// Spec describes the tuning run; the worker builds (and caches) the
	// cost function from it.
	Spec *atf.Spec `json:"spec"`
	// Configs are the configurations to evaluate, in partition order.
	Configs []*atf.Config `json:"configs"`
}

// EvalResult is one line of the worker's NDJSON response stream:
// (batch index, config index, cost, error) for one configuration.
// Index is the position within the request's Configs.
type EvalResult struct {
	BatchIndex uint64   `json:"batch_index"`
	Index      int      `json:"index"`
	Cost       atf.Cost `json:"cost,omitempty"`
	Error      string   `json:"error,omitempty"`
}
