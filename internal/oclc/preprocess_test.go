package oclc

import (
	"strings"
	"testing"
)

func TestPreprocessInjectedDefines(t *testing.T) {
	src := "int f() { return WPT * 2; }"
	out, err := Preprocess(src, map[string]string{"WPT": "8"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "8 * 2") {
		t.Fatalf("WPT not substituted: %q", out)
	}
}

func TestPreprocessSourceDefine(t *testing.T) {
	src := "#define TILE 16\nint f() { return TILE; }"
	out, err := Preprocess(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "return 16;") {
		t.Fatalf("in-source define not applied: %q", out)
	}
}

func TestPreprocessInjectedBeatsSource(t *testing.T) {
	// -D semantics: the tuner's value overrides the kernel's default.
	src := "#define WPT 1\nint f() { return WPT; }"
	out, err := Preprocess(src, map[string]string{"WPT": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "return 4;") {
		t.Fatalf("injected define must win: %q", out)
	}
}

func TestPreprocessUndef(t *testing.T) {
	src := "#define A 1\n#undef A\nint f() { return A; }"
	out, err := Preprocess(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "return A;") {
		t.Fatalf("undef ignored: %q", out)
	}
}

func TestPreprocessWholeWordOnly(t *testing.T) {
	src := "int f() { int WPTX = 3; return WPTX; }"
	out, err := Preprocess(src, map[string]string{"WPT": "8"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "8X") {
		t.Fatalf("substitution must match whole identifiers: %q", out)
	}
}

func TestPreprocessExpressionBodyParenthesized(t *testing.T) {
	src := "int f() { return 12/HALF; }"
	out, err := Preprocess(src, map[string]string{"HALF": "1+1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "12/(1+1)") {
		t.Fatalf("operator-containing bodies must be parenthesized: %q", out)
	}
}

func TestPreprocessRecursiveExpansion(t *testing.T) {
	src := "#define A B\n#define B 7\nint f() { return A; }"
	out, err := Preprocess(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "return 7;") {
		t.Fatalf("recursive expansion failed: %q", out)
	}
}

func TestPreprocessCycleDetected(t *testing.T) {
	src := "#define A B\n#define B A\nint f() { return A; }"
	if _, err := Preprocess(src, nil); err == nil {
		t.Fatal("macro cycle should error")
	}
}

func TestPreprocessFunctionLikeMacroRejected(t *testing.T) {
	src := "#define SQ(x) ((x)*(x))\nint f() { return SQ(2); }"
	if _, err := Preprocess(src, nil); err == nil {
		t.Fatal("function-like macros should be rejected clearly")
	}
}

func TestPreprocessComments(t *testing.T) {
	src := "// line comment WPT\nint f() { /* block\nWPT */ return 1; }"
	out, err := Preprocess(src, map[string]string{"WPT": "9"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "9") {
		t.Fatalf("comments must not be substituted: %q", out)
	}
}

func TestPreprocessKeepsPragma(t *testing.T) {
	src := "#pragma unroll KWID\nint f() { return 0; }"
	out, err := Preprocess(src, map[string]string{"KWID": "4"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#pragma unroll 4") {
		t.Fatalf("pragma must survive with substitution: %q", out)
	}
}

func TestPreprocessIgnoresGuards(t *testing.T) {
	src := "#ifndef GUARD\n#define GUARD\nint f() { return 1; }\n#endif"
	out, err := Preprocess(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int f()") {
		t.Fatalf("guard-style conditionals should pass content through: %q", out)
	}
}

func TestPreprocessUnknownDirectiveErrors(t *testing.T) {
	if _, err := Preprocess("#include <foo.h>\n", nil); err == nil {
		t.Fatal("unsupported directive should error")
	}
}

func TestBuildDefinesDeterministic(t *testing.T) {
	d := BuildDefines(map[string]string{"B": "2", "A": "1"})
	if d != "-D A=1 -D B=2" {
		t.Fatalf("defines = %q", d)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42 + 3.5f; x <<= 2;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.String())
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "int(42)") || !strings.Contains(joined, "float(3.5)") {
		t.Fatalf("literals mis-lexed: %s", joined)
	}
	if !strings.Contains(joined, "<<=") {
		t.Fatalf("3-char operator mis-lexed: %s", joined)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		i    int64
		f    float64
	}{
		{"123", TokIntLit, 123, 0},
		{"0x1F", TokIntLit, 31, 0},
		{"42u", TokIntLit, 42, 0},
		{"7UL", TokIntLit, 7, 0},
		{"1.5", TokFloatLit, 0, 1.5},
		{"1.5f", TokFloatLit, 0, 1.5},
		{"2e3", TokFloatLit, 0, 2000},
		{"1.25e-2", TokFloatLit, 0, 0.0125},
		{".5", TokFloatLit, 0, 0.5},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		tok := toks[0]
		if tok.Kind != c.kind || tok.Int != c.i || tok.Flt != c.f {
			t.Errorf("%q lexed as %v", c.src, tok)
		}
		if toks[1].Kind != TokEOF {
			t.Errorf("%q left trailing tokens: %v", c.src, toks[1])
		}
	}
}

func TestLexPragmaUnroll(t *testing.T) {
	toks, err := Lex("#pragma unroll 8\nint x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma || toks[0].Int != 8 {
		t.Fatalf("pragma token = %v", toks[0])
	}
}

func TestLexUnknownCharErrors(t *testing.T) {
	if _, err := Lex("int x = @;"); err == nil {
		t.Fatal("@ should fail to lex")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("positions wrong: %v %v", toks[0].Pos, toks[1].Pos)
	}
}
