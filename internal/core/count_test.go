package core

import (
	"testing"
	"testing/quick"
)

func TestCountGroupMatchesGenerate(t *testing.T) {
	params := saxpyParams(96)
	sp, err := GenerateFlat(params, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, checks, err := CountGroup(G(params...), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != sp.Size() {
		t.Fatalf("count %d != generated size %d", n, sp.Size())
	}
	if checks != sp.Checks() {
		t.Fatalf("count checks %d != generation checks %d", checks, sp.Checks())
	}
}

func TestCountGroupParallelConsistent(t *testing.T) {
	params := saxpyParams(120)
	n1, _, err := CountGroup(G(params...), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n8, _, err := CountGroup(G(params...), GenOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n8 {
		t.Fatalf("worker counts disagree: %d vs %d", n1, n8)
	}
}

func TestCountSpaceCrossProduct(t *testing.T) {
	groups := []*Group{
		G(NewParam("a", NewInterval(1, 7))),
		G(NewParam("b", NewInterval(1, 5)),
			NewParam("c", NewInterval(1, 10), Divides(Ref("b")))),
	}
	count, _, err := CountSpace(groups, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := GenerateSpace(groups, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if count != sp.Size() {
		t.Fatalf("CountSpace %d != generated %d", count, sp.Size())
	}
}

func TestCountSpaceEmptyGroupShortCircuits(t *testing.T) {
	groups := []*Group{
		G(NewParam("a", NewInterval(1, 5))),
		G(NewParam("b", NewSet(3, 5, 7), Divides(8))), // empty
	}
	count, _, err := CountSpace(groups, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("count = %d, want 0", count)
	}
}

func TestCountGroupCrossGroupReferenceFails(t *testing.T) {
	g := G(NewParam("b", NewSet(1, 2), Divides(Ref("nowhere"))))
	if _, _, err := CountGroup(g, GenOptions{}); err == nil {
		t.Fatal("expected error for unresolvable reference")
	}
}

func TestQuickCountEqualsGenerate(t *testing.T) {
	f := func(na, nb uint8) bool {
		a := int64(na%20) + 1
		b := int64(nb%20) + 1
		params := []*Param{
			NewParam("a", NewInterval(1, a)),
			NewParam("b", NewInterval(1, b), Divides(Ref("a"))),
		}
		sp, err := GenerateFlat(params, GenOptions{})
		if err != nil {
			return false
		}
		n, _, err := CountGroup(G(params...), GenOptions{})
		return err == nil && n == sp.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
