package core

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	r := NewInterval(1, 10)
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	for i := 0; i < 10; i++ {
		if r.At(i).Int() != int64(i+1) {
			t.Errorf("At(%d) = %v, want %d", i, r.At(i), i+1)
		}
	}
	if r.Kind() != KindInt {
		t.Error("interval kind should be int")
	}
	if r.String() != "[1,10]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestIntervalSingleton(t *testing.T) {
	r := NewInterval(7, 7)
	if r.Len() != 1 || r.At(0).Int() != 7 {
		t.Error("singleton interval broken")
	}
}

func TestSteppedInterval(t *testing.T) {
	r := NewSteppedInterval(2, 11, 3) // 2,5,8,11
	want := []int64{2, 5, 8, 11}
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if r.At(i).Int() != w {
			t.Errorf("At(%d) = %v, want %d", i, r.At(i), w)
		}
	}
	// Step that does not land exactly on End.
	r2 := NewSteppedInterval(1, 10, 4) // 1,5,9
	if r2.Len() != 3 || r2.At(2).Int() != 9 {
		t.Error("stepped interval with inexact end broken")
	}
}

func TestIntervalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero step", func() { NewSteppedInterval(1, 10, 0) })
	mustPanic("negative step", func() { NewSteppedInterval(1, 10, -1) })
	mustPanic("empty", func() { NewInterval(5, 4) })
}

func TestGeneratedInterval(t *testing.T) {
	// The paper's example: the first ten powers of 2.
	r := NewGeneratedInterval(1, 10, 1, func(i int64) Value { return Int(1 << uint(i)) })
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 10; i++ {
		want := int64(1) << uint(i+1)
		if r.At(i).Int() != want {
			t.Errorf("At(%d) = %v, want %d", i, r.At(i), want)
		}
	}
}

func TestGeneratedIntervalChangesKind(t *testing.T) {
	// Generator output type T' determines the range kind (paper, Section II).
	r := NewGeneratedInterval(0, 4, 1, func(i int64) Value { return Float(float64(i) / 4) })
	if r.Kind() != KindFloat {
		t.Errorf("kind = %v, want float", r.Kind())
	}
	if r.At(2).Float() != 0.5 {
		t.Errorf("At(2) = %v", r.At(2))
	}
	if r.String() == "" {
		t.Error("empty description")
	}
}

func TestFloatInterval(t *testing.T) {
	r := NewFloatInterval(0, 1, 0.25) // 0, .25, .5, .75, 1
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	if r.At(0).Float() != 0 || r.At(4).Float() != 1 {
		t.Error("endpoints wrong")
	}
	if r.Kind() != KindFloat {
		t.Error("kind should be float")
	}
	if r.String() == "" {
		t.Error("empty description")
	}
}

func TestFloatIntervalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero step", func() { NewFloatInterval(0, 1, 0) })
	mustPanic("empty", func() { NewFloatInterval(1, 0, 0.5) })
}

func TestSetRange(t *testing.T) {
	r := NewSet(1, 2, 4, 8)
	if r.Len() != 4 || r.At(2).Int() != 4 {
		t.Error("int set broken")
	}
	if r.Kind() != KindInt {
		t.Error("kind should be int")
	}
	if r.String() != "{1,2,4,8}" {
		t.Errorf("String = %q", r.String())
	}
	b := BoolRange()
	if b.Len() != 2 || b.At(0).Bool() || !b.At(1).Bool() {
		t.Error("bool range broken")
	}
	e := NewSet("scalar", "vector", "tensor") // enum-style parameter
	if e.Kind() != KindString || e.At(1).Str() != "vector" {
		t.Error("enum set broken")
	}
}

func TestSetPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty set", func() { NewSet() })
	mustPanic("mixed kinds", func() { NewSet(1, "two") })
}

func TestSetSorted(t *testing.T) {
	r := NewSet(8, 1, 4, 2).Sorted()
	for i := 0; i < r.Len()-1; i++ {
		if !r.At(i).Less(r.At(i + 1)) {
			t.Fatalf("not sorted at %d: %v %v", i, r.At(i), r.At(i+1))
		}
	}
	// Original untouched.
	orig := NewSet(8, 1)
	_ = orig.Sorted()
	if orig.At(0).Int() != 8 {
		t.Error("Sorted must not mutate the receiver")
	}
}

func TestNewValueSet(t *testing.T) {
	r := NewValueSet(Int(3), Int(1))
	if r.Len() != 2 || r.At(0).Int() != 3 {
		t.Error("NewValueSet broken")
	}
}

func TestIntervalLenMatchesIteration(t *testing.T) {
	f := func(begin int16, span uint8, step uint8) bool {
		b := int64(begin)
		s := int64(step%7) + 1
		e := b + int64(span)
		r := NewSteppedInterval(b, e, s)
		// Count values <= End reachable from Begin by Step.
		n := 0
		for x := b; x <= e; x += s {
			n++
		}
		if r.Len() != n {
			return false
		}
		// All values within bounds and correctly stepped.
		for i := 0; i < r.Len(); i++ {
			v := r.At(i).Int()
			if v < b || v > e || (v-b)%s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
