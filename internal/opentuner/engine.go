package opentuner

import (
	"math"
	"math/rand"
)

// Engine drives the OpenTuner ensemble over a Domain: the AUC bandit picks
// a technique, the technique proposes a point, the caller evaluates it and
// reports the cost back. The engine tracks the global best across all
// techniques (OpenTuner's shared results database).
type Engine struct {
	domain *Domain
	techs  []SubTechnique
	bandit *AUCBandit
	rng    *rand.Rand

	lastArm  int
	best     Point
	bestCost float64
	evals    int
}

// DefaultTechniques returns the ensemble the ATF paper names (Section II:
// "many variants of Nelder-Mead search ... and Torczon hillclimbers", plus
// OpenTuner's standard mutation and random arms).
func DefaultTechniques() []SubTechnique {
	return []SubTechnique{
		NewNelderMead("random"),
		NewNelderMead("seeded"),
		NewTorczon(),
		NewGreedyMutation(true),
		NewGreedyMutation(false),
		NewRandomTechnique(),
	}
}

// NewEngine builds an engine over the domain with the given techniques
// (nil selects DefaultTechniques) and seed.
func NewEngine(d *Domain, techs []SubTechnique, seed int64) *Engine {
	if techs == nil {
		techs = DefaultTechniques()
	}
	rng := rand.New(rand.NewSource(seed))
	for _, t := range techs {
		// Each technique gets its own stream so interleaving choices do
		// not perturb the others' randomness.
		t.Init(d, rand.New(rand.NewSource(rng.Int63())))
	}
	return &Engine{
		domain:   d,
		techs:    techs,
		bandit:   NewAUCBandit(len(techs)),
		rng:      rng,
		bestCost: math.Inf(1),
	}
}

// Next returns the next point to evaluate.
func (e *Engine) Next() Point {
	e.lastArm = e.bandit.Select()
	p := e.techs[e.lastArm].Propose(e.best, e.bestCost)
	return e.domain.Clamp(p)
}

// Report delivers the cost of the point most recently returned by Next.
// Invalid (penalized) configurations should be reported as +Inf — the
// bandit then records a non-improvement, which is precisely why OpenTuner
// stalls on constraint-riddled spaces (paper §VI-B).
func (e *Engine) Report(p Point, cost float64) {
	improved := cost < e.bestCost
	if improved {
		e.best = p.Clone()
		e.bestCost = cost
	}
	e.techs[e.lastArm].Report(p, cost)
	e.bandit.Record(e.lastArm, improved)
	e.evals++
}

// Best returns the best point and cost seen so far; ok is false before the
// first finite-cost report.
func (e *Engine) Best() (Point, float64, bool) {
	return e.best, e.bestCost, !math.IsInf(e.bestCost, 1)
}

// Evaluations returns the number of reported evaluations.
func (e *Engine) Evaluations() int { return e.evals }

// TechniqueUse reports per-technique selection counts (name → uses).
func (e *Engine) TechniqueUse() map[string]int {
	m := make(map[string]int, len(e.techs))
	for i, t := range e.techs {
		m[t.Name()] += e.bandit.Uses(i)
	}
	return m
}
