package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// lazyChainParams is a divisor chain with both memoable and full-prefix-
// keyed depths (foot of B is the whole prefix {A}; C and D share per-A
// subtrees).
func lazyChainParams() []*Param {
	return []*Param{
		NewParam("A", NewInterval(1, 48)),
		NewParam("B", NewInterval(1, 48), Divides(Ref("A"))),
		NewParam("C", NewInterval(1, 16), Divides(Ref("A"))),
		NewParam("D", NewSet(1, 2, 4), Divides(Ref("A"))),
	}
}

// lazyNoDepsParams has empty footprints everywhere: maximal sharing, one
// census entry per level.
func lazyNoDepsParams() []*Param {
	return []*Param{
		NewParam("A", NewInterval(1, 12)),
		NewParam("B", NewInterval(1, 9), IntPred(func(v int64) bool { return v%3 == 0 })),
		NewParam("C", NewSet(1, 2, 4)),
		NewParam("D", BoolRange()),
	}
}

// lazyInexactParams contains an unannotated closure mid-chain, forcing
// full-prefix census keys at and above it.
func lazyInexactParams() []*Param {
	return []*Param{
		NewParam("A", NewInterval(1, 16)),
		NewParam("B", NewInterval(1, 16), Fn(func(v Value, c *Config) bool {
			return v.Int() <= c.Int("A")
		})),
		NewParam("C", NewInterval(1, 8), Divides(Ref("A"))),
	}
}

// TestLazyEagerEquivalence is the tentpole differential property: lazy
// construction must be bit-identical to the eager trie — same Size, same
// At(i) for every probed index, same IndexOf round-trips — across worker
// counts and under eviction pressure from a tiny byte budget. The counting
// pass must also perform exactly the constraint checks eager memoized
// generation performs, and report the same node statistics.
func TestLazyEagerEquivalence(t *testing.T) {
	// tiny budgets sit above the largest single slab (the cache never
	// evicts the slab it just committed, so one oversized slab may stay
	// resident past the budget) but well below the space's total slab
	// footprint, forcing eviction churn on a full index sweep.
	cases := []struct {
		name   string
		params func() []*Param
		tiny   int64
	}{
		{"chain", lazyChainParams, 4096},
		{"nodeps", lazyNoDepsParams, 768},
		{"inexact", lazyInexactParams, 2048},
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			budgets := []int64{0, tc.tiny}
			eager, err := GenerateFlat(tc.params(), GenOptions{Workers: 1, Mode: SpaceEager})
			if err != nil {
				t.Fatal(err)
			}
			el, eu := eager.NodeCounts()
			stats := map[string]bool{}
			for _, w := range workerCounts {
				for _, budget := range budgets {
					label := fmt.Sprintf("workers=%d budget=%d", w, budget)
					lazy, err := GenerateFlat(tc.params(),
						GenOptions{Workers: w, Mode: SpaceLazy, MaxArenaBytes: budget})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if lazy.LazyGroups() != 1 {
						t.Fatalf("%s: LazyGroups = %d, want 1", label, lazy.LazyGroups())
					}
					if lazy.Size() != eager.Size() {
						t.Fatalf("%s: size %d, want %d", label, lazy.Size(), eager.Size())
					}
					if lazy.Checks() != eager.Checks() {
						t.Errorf("%s: checks %d, want %d (eager memoized)", label, lazy.Checks(), eager.Checks())
					}
					if ll, lu := lazy.NodeCounts(); ll != el || lu != eu {
						t.Errorf("%s: nodes %d/%d, want %d/%d", label, ll, lu, el, eu)
					}
					for idx := uint64(0); idx < eager.Size(); idx++ {
						want := eager.At(idx)
						got := lazy.At(idx)
						if !got.Equal(want) {
							t.Fatalf("%s: At(%d) = %v, want %v", label, idx, got, want)
						}
						ri, ok := lazy.IndexOf(got)
						if !ok || ri != idx {
							t.Fatalf("%s: IndexOf(At(%d)) = %d,%v", label, idx, ri, ok)
						}
					}
					// Non-members must be rejected without expanding under
					// invalid prefixes (and without panicking).
					bad := eager.At(0).Clone()
					bad.SetAt(0, Int(1<<40))
					for i := 1; i < bad.Len(); i++ {
						bad.SetAt(i, bad.At(i))
					}
					if _, ok := lazy.IndexOf(bad); ok {
						t.Errorf("%s: IndexOf accepted a non-member", label)
					}
					exp, ev, res := lazy.LazyStats()
					if exp == 0 {
						t.Errorf("%s: no expansions recorded", label)
					}
					if budget > 0 {
						if ev == 0 {
							t.Errorf("%s: tiny budget produced no evictions", label)
						}
						if res > uint64(budget) {
							t.Errorf("%s: resident %d exceeds budget %d", label, res, budget)
						}
					}
					// Generation statistics must not depend on worker count.
					hits, misses := lazy.MemoStats()
					stats[fmt.Sprintf("checks=%d unique=%d hits=%d misses=%d",
						lazy.Checks(), lu(lazy), hits, misses)] = true
				}
			}
			if len(stats) != 1 {
				t.Errorf("lazy generation statistics vary with worker count: %v", stats)
			}
		})
	}
}

func lu(s *Space) uint64 {
	_, u := s.NodeCounts()
	return u
}

// TestLazyAutoSelection pins the SpaceAuto switchover: groups stay eager at
// or below the raw-product threshold and go lazy above it.
func TestLazyAutoSelection(t *testing.T) {
	small, err := GenerateFlat(lazyNoDepsParams(), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.LazyGroups() != 0 {
		t.Errorf("small space should construct eagerly under SpaceAuto")
	}
	forced, err := GenerateFlat(lazyNoDepsParams(), GenOptions{LazyThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if forced.LazyGroups() != 1 {
		t.Errorf("raw product above threshold should construct lazily")
	}
}

// TestLazyConcurrentTouch hammers a lazy space from many goroutines — the
// race detector covers first-touch expansion dedup and LRU eviction — and
// checks every result against the eager trie.
func TestLazyConcurrentTouch(t *testing.T) {
	eager, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceEager})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 512} {
		lazy, err := GenerateFlat(lazyChainParams(),
			GenOptions{Mode: SpaceLazy, MaxArenaBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errc := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 300; i++ {
					idx := uint64(rng.Int63n(int64(lazy.Size())))
					got := lazy.At(idx)
					if !got.Equal(eager.At(idx)) {
						errc <- fmt.Errorf("At(%d) mismatch", idx)
						return
					}
					if ri, ok := lazy.IndexOf(got); !ok || ri != idx {
						errc <- fmt.Errorf("IndexOf round-trip failed at %d", idx)
						return
					}
				}
			}(int64(g))
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Errorf("budget=%d: %v", budget, err)
		}
	}
}

// TestLazyUnconstrainedHugeSize shows why counting scales: an unconstrained
// group counts in O(sum of range lengths) because every level collapses to
// one census entry, so a 2^60-configuration space sizes instantly and still
// answers At/IndexOf.
func TestLazyUnconstrainedHugeSize(t *testing.T) {
	params := []*Param{
		NewParam("A", NewInterval(1, 1<<15)),
		NewParam("B", NewInterval(1, 1<<15)),
		NewParam("C", NewInterval(1, 1<<15)),
		NewParam("D", NewInterval(1, 1<<15)),
	}
	sp, err := GenerateFlat(params, GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1) << 60; sp.Size() != want {
		t.Fatalf("Size = %d, want %d", sp.Size(), want)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		idx := sp.RandomIndex(rng)
		cfg := sp.At(idx)
		// The mixed radix is transparent here: last parameter varies fastest.
		want := []int64{
			int64(idx>>45)&(1<<15-1) + 1,
			int64(idx>>30)&(1<<15-1) + 1,
			int64(idx>>15)&(1<<15-1) + 1,
			int64(idx)&(1<<15-1) + 1,
		}
		for j, w := range want {
			if cfg.At(j).Int() != w {
				t.Fatalf("At(%d) position %d = %d, want %d", idx, j, cfg.At(j).Int(), w)
			}
		}
		if ri, ok := sp.IndexOf(cfg); !ok || ri != idx {
			t.Fatalf("IndexOf round-trip failed at %d: %d,%v", idx, ri, ok)
		}
	}
}

// TestLazySizeOverflowSurfacesAsError: a group whose valid count exceeds
// uint64 must fail loudly, not report a wrapped size.
func TestLazySizeOverflowSurfacesAsError(t *testing.T) {
	params := []*Param{
		NewParam("A", NewInterval(1, 1<<13)),
		NewParam("B", NewInterval(1, 1<<13)),
		NewParam("C", NewInterval(1, 1<<13)),
		NewParam("D", NewInterval(1, 1<<13)),
		NewParam("E", NewInterval(1, 1<<13)),
	}
	_, err := GenerateFlat(params, GenOptions{Mode: SpaceLazy})
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("expected overflow error, got %v", err)
	}
}

// TestLazyPanickingConstraintSurfacesAtGeneration: the counting pass
// evaluates every reachable constraint, so a deterministic constraint panic
// still fails GenerateSpace — lazy mode does not defer errors to At time.
func TestLazyPanickingConstraintSurfacesAtGeneration(t *testing.T) {
	for _, workers := range []int{1, 4} {
		params := []*Param{
			NewParam("A", NewInterval(1, 8)),
			NewParam("B", NewInterval(1, 4)),
			NewParam("C", NewInterval(1, 8), FnReads(func(v Value, c *Config) bool {
				if c.Int("A") == 5 && v.Int() == 3 {
					panic("boom")
				}
				return true
			}, "A")),
		}
		_, err := GenerateFlat(params, GenOptions{Workers: workers, Mode: SpaceLazy})
		if err == nil {
			t.Fatalf("workers=%d: expected error from panicking constraint", workers)
		}
		for _, want := range []string{`"C"`, "depth 2", "value 3", "boom"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: error %q does not mention %q", workers, err.Error(), want)
			}
		}
	}
}

// TestLazySharedBudgetAcrossGroups: several lazy groups of one space share
// one slab cache, so MaxArenaBytes bounds the space as a whole.
func TestLazySharedBudgetAcrossGroups(t *testing.T) {
	groups := []*Group{
		G(lazyChainParams()...),
		G(
			NewParam("X", NewInterval(1, 32)),
			NewParam("Y", NewInterval(1, 32), Divides(Ref("X"))),
		),
	}
	const budget = 8192
	sp, err := GenerateSpace(groups, GenOptions{Mode: SpaceLazy, MaxArenaBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if sp.LazyGroups() != 2 {
		t.Fatalf("LazyGroups = %d, want 2", sp.LazyGroups())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		idx := sp.RandomIndex(rng)
		cfg := sp.At(idx)
		if ri, ok := sp.IndexOf(cfg); !ok || ri != idx {
			t.Fatalf("IndexOf round-trip failed at %d", idx)
		}
		if _, _, res := sp.LazyStats(); res > budget {
			t.Fatalf("resident %d exceeds shared budget %d", res, budget)
		}
	}
	if _, ev, _ := sp.LazyStats(); ev == 0 {
		t.Error("expected evictions under the shared budget")
	}
}
