package atf_test

import (
	"fmt"

	"atf"
)

// ExampleTuner_Tune tunes a two-parameter space with an interdependency
// (B must divide A) against a synthetic cost function, using exhaustive
// search — the paper's three-step workflow in its smallest form.
func ExampleTuner_Tune() {
	a := atf.TP("A", atf.Interval(1, 8))
	b := atf.TP("B", atf.Interval(1, 8), atf.Divides(atf.Ref("A")))

	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		// Prefer large A split into chunks of exactly B=2.
		return atf.Cost{float64(8-c.Int("A")) + float64(c.Int("B")-2)*float64(c.Int("B")-2)}, nil
	})

	result, err := atf.Tuner{}.Tune(cf, a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best A=%d B=%d cost=%v\n",
		result.Best.Int("A"), result.Best.Int("B"), result.BestCost.Primary())
	// Output: best A=8 B=2 cost=0
}

// ExampleDivides shows constraint aliases referencing earlier parameters:
// LS must divide N/WPT, the saxpy dependency from the paper's Listing 2.
func ExampleDivides() {
	const n = 16
	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))

	space, err := atf.GenerateSpace(1, wpt, ls)
	if err != nil {
		panic(err)
	}
	fmt.Printf("valid configurations: %d of %s raw\n",
		space.Size(), space.RawSize())
	// Output: valid configurations: 15 of 256 raw
}

// ExampleGeneratedInterval reproduces the paper's generator-function
// example: a range of the first ten powers of two.
func ExampleGeneratedInterval() {
	r := atf.GeneratedInterval(1, 10, 1, func(i int64) atf.Value {
		return atf.Int(1 << uint(i))
	})
	fmt.Println(r.Len(), r.At(0), r.At(9))
	// Output: 10 2 1024
}

// ExampleTuner_TuneGroups demonstrates Section V parameter groups: two
// independent dependency chains whose sub-spaces generate in parallel and
// combine as an implicit cross product.
func ExampleTuner_TuneGroups() {
	tp1 := atf.TP("tp1", atf.Set(1, 2))
	tp2 := atf.TP("tp2", atf.Set(1, 2), atf.Divides(atf.Ref("tp1")))
	tp3 := atf.TP("tp3", atf.Set(1, 2))
	tp4 := atf.TP("tp4", atf.Set(1, 2), atf.Divides(atf.Ref("tp3")))

	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		sum := c.Int("tp1") + c.Int("tp2") + c.Int("tp3") + c.Int("tp4")
		return atf.Cost{float64(sum)}, nil
	})
	result, err := atf.Tuner{}.TuneGroups(cf, atf.G(tp1, tp2), atf.G(tp3, tp4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("space=%d best=%v\n", result.SpaceSize, result.BestCost.Primary())
	// Output: space=9 best=4
}

// ExampleCost_Less shows the lexicographic multi-objective order: equal
// runtimes are broken by the second objective (e.g. energy).
func ExampleCost_Less() {
	fast := atf.Cost{10.0, 900.0}
	slow := atf.Cost{12.0, 100.0}
	tied := atf.Cost{10.0, 350.0}
	fmt.Println(fast.Less(slow), tied.Less(fast))
	// Output: true true
}
