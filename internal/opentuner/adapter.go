package opentuner

import (
	"math"

	"atf/internal/core"
)

// IndexTechnique is ATF's "OpenTuner search" (paper, Section IV-C): the
// OpenTuner engine tunes a single integer parameter TP ∈ [0, S) that
// indexes ATF's constraint-valid search space. Because the ATF space
// contains only valid configurations by construction, the engine never
// wastes evaluations on constraint violations — the crucial difference
// from running OpenTuner on the raw space (§VI-B).
type IndexTechnique struct {
	engine *Engine
	sp     *core.Space
	last   Point
}

// NewIndexTechnique returns the OpenTuner-over-index search technique.
func NewIndexTechnique() *IndexTechnique { return &IndexTechnique{} }

// Initialize implements core.Technique: it "embeds" the OpenTuner engine
// and defines the tuning parameter TP with range [0, S).
func (t *IndexTechnique) Initialize(sp *core.Space, seed int64) {
	t.sp = sp
	t.engine = NewEngine(NewDomain(sp.Size()), nil, seed)
}

// Finalize implements core.Technique (the paper destroys the Python
// embedding here; we have nothing to tear down).
func (t *IndexTechnique) Finalize() { t.engine = nil }

// GetNextConfig takes a new prediction for TP from the engine and returns
// the configuration with that index in the ATF space.
func (t *IndexTechnique) GetNextConfig() *core.Config {
	t.last = t.engine.Next()
	idx := t.engine.domain.Decode(t.last)[0]
	return t.sp.At(idx)
}

// ReportCost passes the configuration's cost to the OpenTuner engine.
func (t *IndexTechnique) ReportCost(cost core.Cost) {
	t.engine.Report(t.last, cost.Primary())
}

// RawResult is the outcome of tuning the raw, unconstrained space.
type RawResult struct {
	Best        *core.Config // nil if no valid configuration was found
	BestCost    core.Cost
	Evaluations int
	ValidEvals  int
}

// RawTuner reproduces the paper's §VI-B OpenTuner baseline: the engine
// tunes the *unconstrained* Cartesian product of the raw parameter ranges
// (constraints cannot be expressed in OpenTuner), and a penalty — infinite
// cost — is reported whenever the decoded configuration violates any
// constraint, following the community workaround the paper cites [3].
type RawTuner struct {
	Params []*core.Param
	// Validate reports whether a decoded configuration satisfies all
	// constraints. If nil, the parameters' own constraints are replayed in
	// declaration order.
	Validate func(cfg *core.Config) bool
}

// Tune runs the baseline for the given number of evaluations.
func (r *RawTuner) Tune(cf core.CostFunction, evaluations int, seed int64) (*RawResult, error) {
	names := make([]string, len(r.Params))
	card := make([]uint64, len(r.Params))
	for i, p := range r.Params {
		names[i] = p.Name
		card[i] = uint64(p.Range.Len())
	}
	engine := NewEngine(NewDomain(card...), nil, seed)
	validate := r.Validate
	if validate == nil {
		validate = func(cfg *core.Config) bool { return r.replayConstraints(cfg) }
	}

	res := &RawResult{}
	var bestCost core.Cost
	var best *core.Config
	for i := 0; i < evaluations; i++ {
		p := engine.Next()
		coords := engine.domain.Decode(p)
		cfg := core.NewConfig(names)
		for j, p2 := range r.Params {
			cfg.SetAt(j, p2.Range.At(int(coords[j])))
		}
		res.Evaluations++

		if !validate(cfg) {
			engine.Report(p, math.Inf(1)) // the penalty value of [3]
			continue
		}
		cost, err := cf.Cost(cfg)
		if err != nil {
			engine.Report(p, math.Inf(1))
			continue
		}
		res.ValidEvals++
		engine.Report(p, cost.Primary())
		if bestCost == nil || cost.Less(bestCost) {
			bestCost = cost.Clone()
			best = cfg.Clone()
		}
	}
	res.Best = best
	res.BestCost = bestCost
	return res, nil
}

// replayConstraints checks a complete configuration against the declared
// constraints by re-evaluating them in declaration order.
func (r *RawTuner) replayConstraints(cfg *core.Config) bool {
	names := make([]string, len(r.Params))
	for i, p := range r.Params {
		names[i] = p.Name
	}
	partial := core.NewConfig(names)
	for i, p := range r.Params {
		v := cfg.At(i)
		if !p.Accepts(v, partial) {
			return false
		}
		partial.SetAt(i, v)
	}
	return true
}
