package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// CountGroup counts the valid configurations of one group without
// materializing the search-space trie. It runs the same constrained nested
// iteration as GenerateGroup — so its cost is the generation cost — but
// allocates nothing, which makes the space-size census of experiment E4
// (XgemmDirect at 2^10×2^10: >10^19 raw vs ~10^7 valid) feasible.
func CountGroup(g *Group, opts GenOptions) (count, checks uint64, err error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	n := g.Params[0].Range.Len()
	if workers > n {
		workers = n
	}
	names := g.Names()

	var total, totalChecks atomic.Uint64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("core: counting group %v: %v", names, r)
				}
			}()
			cfg := NewConfig(names)
			var localChecks uint64
			c := countLevel(g.Params, 0, lo, hi, cfg, &localChecks)
			total.Add(c)
			totalChecks.Add(localChecks)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	return total.Load(), totalChecks.Load(), nil
}

func countLevel(params []*Param, d, lo, hi int, cfg *Config, checks *uint64) uint64 {
	p := params[d]
	last := d == len(params)-1

	visit := func(v Value) uint64 {
		*checks++
		if !p.Accepts(v, cfg) {
			return 0
		}
		if last {
			return 1
		}
		cfg.set(d, v)
		return countLevel(params, d+1, 0, params[d+1].Range.Len(), cfg, checks)
	}

	var count uint64
	if vals, ok := hintedValues(p, cfg, lo, hi); ok {
		for _, v := range vals {
			count += visit(Int(v))
		}
		return count
	}
	for i := lo; i < hi; i++ {
		count += visit(p.Range.At(i))
	}
	return count
}

// CountSpace counts the full cross-product space over groups.
func CountSpace(groups []*Group, opts GenOptions) (count, checks uint64, err error) {
	count = 1
	for _, g := range groups {
		c, ch, err := CountGroup(g, opts)
		if err != nil {
			return 0, 0, err
		}
		checks += ch
		if c == 0 {
			return 0, checks, nil
		}
		if count > ^uint64(0)/c {
			return 0, checks, fmt.Errorf("core: space size overflows uint64")
		}
		count *= c
	}
	return count, checks, nil
}
