// Package perfmodel provides the analytical device timing model behind the
// simulated OpenCL/CUDA runtimes. It converts the oclc interpreter's
// dynamic operation counters and sampled memory-access traces into a
// simulated kernel runtime for a described device.
//
// The paper's experiments compare *orderings* (which tuner found the faster
// configuration, by what factor); the model's job is therefore to produce a
// cost surface whose shape responds to tuning parameters the way real
// hardware does: GPUs reward coalesced access, wide work-groups in multiples
// of the warp size, high occupancy and local-memory reuse; CPUs reward
// fewer, fatter threads, unit-stride vectorizable access, and suffer from
// per-work-group scheduling overhead. Absolute nanoseconds are synthetic.
package perfmodel

// DeviceType distinguishes the two architecture families modelled.
type DeviceType uint8

const (
	CPU DeviceType = iota
	GPU
)

func (t DeviceType) String() string {
	if t == CPU {
		return "CPU"
	}
	return "GPU"
}

// Device describes a simulated OpenCL device. The two catalog entries are
// calibrated to the paper's evaluation hardware (dual Xeon E5-2640 v2 and
// Tesla K20m; the K20c of the saxpy example is electrically a K20m).
type Device struct {
	Name   string
	Vendor string
	Type   DeviceType

	ComputeUnits int     // cores (CPU) or SMX (GPU)
	SIMDWidth    int     // vector lanes (CPU) or warp size (GPU)
	IPC          float64 // SIMD instructions issued per cycle per CU
	ClockGHz     float64

	MemBandwidthGBs float64 // aggregate DRAM bandwidth
	MemLatencyNs    float64 // uncontended DRAM latency
	CacheLineBytes  int
	L2Bytes         int

	LocalMemBytes    int // per CU (__local); emulated via cache on CPU
	MaxWorkGroupSize int
	MaxWIsPerCU      int // resident work-items per CU (occupancy bound)
	MaxWGsPerCU      int // resident work-groups per CU

	KernelLaunchNs float64 // fixed enqueue overhead
	WGScheduleNs   float64 // per-work-group dispatch cost (large on CPU)

	// LocalAccessCycles is the cost of one __local access (shared memory
	// on GPU, L1-ish on CPU).
	LocalAccessCycles float64

	// BarrierSwitchNs is the per-work-item cost of one work-group barrier
	// when barriers are implemented in software (CPU OpenCL runtimes
	// round-robin work-item fibers at every barrier). Zero selects the
	// cheap hardware-barrier path (GPUs).
	BarrierSwitchNs float64
	// BarrierThrashWIs scales the superlinear part of the software
	// barrier cost: beyond this many work-items per group the fibers'
	// stacks overflow the core's cache and every switch gets slower.
	// This is why GPU-style 256-work-item configurations are
	// disproportionately bad on CPUs (paper §VI-A: the restricted ranges
	// "comprise values that are rather optimal for the GPUs'
	// architecture than for CPUs").
	BarrierThrashWIs int
}

// XeonE5_2640v2x2 models the paper's dual-socket CPU: 2 × 8 cores with
// hyper-threading presented by the OpenCL runtime as one device with 32
// compute units at 2 GHz.
func XeonE5_2640v2x2() *Device {
	return &Device{
		Name:              "Intel Xeon E5-2640 v2 (dual)",
		Vendor:            "Intel",
		Type:              CPU,
		ComputeUnits:      32,
		SIMDWidth:         8, // AVX float32 lanes
		IPC:               2,
		ClockGHz:          2.0,
		MemBandwidthGBs:   102, // 2 × 51.2 GB/s sockets
		MemLatencyNs:      80,
		CacheLineBytes:    64,
		L2Bytes:           20 << 20,
		LocalMemBytes:     32 << 10,
		MaxWorkGroupSize:  8192,
		MaxWIsPerCU:       8192,
		MaxWGsPerCU:       1,
		KernelLaunchNs:    4000,
		WGScheduleNs:      300, // thread-pool task dispatch per work-group
		LocalAccessCycles: 1,   // __local is ordinary cached memory on CPU
		BarrierSwitchNs:   10,  // fiber switch per work-item per barrier
		BarrierThrashWIs:  64,
	}
}

// TeslaK20m models the paper's GPU: 13 SMX, warp size 32, 208 GB/s GDDR5.
func TeslaK20m() *Device {
	return &Device{
		Name:              "Tesla K20m",
		Vendor:            "NVIDIA",
		Type:              GPU,
		ComputeUnits:      13,
		SIMDWidth:         32,
		IPC:               6, // 192 CUDA cores / 32 lanes
		ClockGHz:          0.706,
		MemBandwidthGBs:   208,
		MemLatencyNs:      350,
		CacheLineBytes:    128,
		L2Bytes:           1280 << 10,
		LocalMemBytes:     48 << 10,
		MaxWorkGroupSize:  1024,
		MaxWIsPerCU:       2048,
		MaxWGsPerCU:       16,
		KernelLaunchNs:    7000,
		WGScheduleNs:      50,
		LocalAccessCycles: 2,
	}
}

// TeslaK20c is the workstation variant used in the paper's saxpy example
// (Listing 2); performance-wise identical to the K20m.
func TeslaK20c() *Device {
	d := TeslaK20m()
	d.Name = "Tesla K20c"
	return d
}

// Catalog returns all described devices grouped by OpenCL platform name.
func Catalog() map[string][]*Device {
	return map[string][]*Device{
		"NVIDIA": {TeslaK20m(), TeslaK20c()},
		"Intel":  {XeonE5_2640v2x2()},
	}
}
