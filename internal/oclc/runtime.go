package oclc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// rval is a runtime value: an int/float/bool scalar or a pointer into a
// Memory. Kept small and passed by value so expression evaluation does not
// allocate.
type rval struct {
	k    ValKind
	i    int64
	f    float64
	mem  *Memory
	off  int64 // element offset for pointers
	dim1 int64 // second-dimension extent for 2-D arrays (0 = 1-D)
}

func intVal(v int64) rval     { return rval{k: KInt, i: v} }
func floatVal(v float64) rval { return rval{k: KFloat, f: v} }

// setInt/setFloat write a scalar result in place, touching only the kind
// and payload fields. A full rval assignment copies 48 bytes and — because
// of the mem pointer — goes through the GC write barrier on every register
// write; the in-place form does neither. Stale mem/off/dim1 fields are
// harmless: every consumer dispatches on k first and reads pointer fields
// only when k == KPtr.
func (p *rval) setInt(v int64) {
	p.k = KInt
	p.i = v
}

func (p *rval) setFloat(v float64) {
	p.k = KFloat
	p.f = v
}

// asInt coerces to int64 with C semantics (float truncation).
func (v rval) asInt() int64 {
	if v.k == KFloat {
		return int64(v.f)
	}
	return v.i
}

// asFloat coerces to float64.
func (v rval) asFloat() float64 {
	if v.k == KFloat {
		return v.f
	}
	return float64(v.i)
}

// truthy implements C truthiness.
func (v rval) truthy() bool {
	if v.k == KFloat {
		return v.f != 0
	}
	return v.i != 0
}

// Memory is a linear buffer of elements in one address space. Elements are
// stored as float64 cells and reinterpreted per the element kind; device
// element size (bytes) feeds the coalescing model's address arithmetic.
type Memory struct {
	ID        int
	Space     AddrSpace
	Elem      ValKind
	ElemBytes int
	Data      []float64
}

// NewGlobalMemory allocates a global buffer of n elements.
func NewGlobalMemory(id int, elem ValKind, elemBytes, n int) *Memory {
	return &Memory{ID: id, Space: SpaceGlobal, Elem: elem, ElemBytes: elemBytes, Data: make([]float64, n)}
}

// Len returns the element count.
func (m *Memory) Len() int { return len(m.Data) }

// Work-items of a group run as goroutines, and OpenCL permits them to
// access the same global/local cell without synchronization (the result is
// whichever write lands last — but each word is written atomically on real
// devices). loadCell/storeCell reproduce exactly that memory model: cells
// are accessed with word-sized atomics, so racy kernels yield an undefined
// *value* without being undefined *behaviour* on the host — and the Go race
// detector stays silent. Host-side accessors (Float32s, SetFloat32s, direct
// Data access in tests) run only while no kernel executes, so they keep the
// plain path.

func (m *Memory) loadCell(i int64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(&m.Data[i]))))
}

func (m *Memory) storeCell(i int64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&m.Data[i])), math.Float64bits(v))
}

// load reads element i.
func (m *Memory) load(i int64) (rval, error) {
	if i < 0 || i >= int64(len(m.Data)) {
		return rval{}, fmt.Errorf("oclc: %s buffer %d: load index %d out of range [0,%d)", m.Space, m.ID, i, len(m.Data))
	}
	if m.Elem == KFloat {
		return floatVal(m.loadCell(i)), nil
	}
	return intVal(int64(m.loadCell(i))), nil
}

// store writes element i.
func (m *Memory) store(i int64, v rval) error {
	if i < 0 || i >= int64(len(m.Data)) {
		return fmt.Errorf("oclc: %s buffer %d: store index %d out of range [0,%d)", m.Space, m.ID, i, len(m.Data))
	}
	if m.Elem == KFloat {
		m.storeCell(i, v.asFloat())
	} else {
		m.storeCell(i, float64(v.asInt()))
	}
	return nil
}

// storePlain is store for engines that interleave a whole group's
// work-items on one goroutine (the VM schedulers): identical bounds and
// conversion semantics, without the atomic cell write — an atomic store is
// a serializing instruction on most hosts and the vector engine issues one
// per lane per store. The walker keeps the atomic path because its
// work-items are goroutines that may race on a cell.
func (m *Memory) storePlain(i int64, v rval) error {
	if uint64(i) >= uint64(len(m.Data)) {
		return fmt.Errorf("oclc: %s buffer %d: store index %d out of range [0,%d)", m.Space, m.ID, i, len(m.Data))
	}
	if m.Elem == KFloat {
		m.Data[i] = v.asFloat()
	} else {
		m.Data[i] = float64(v.asInt())
	}
	return nil
}

// Float32s returns the buffer contents as float32 (device precision).
func (m *Memory) Float32s() []float32 {
	out := make([]float32, len(m.Data))
	for i, v := range m.Data {
		out[i] = float32(v)
	}
	return out
}

// SetFloat32s fills the buffer from float32 host data.
func (m *Memory) SetFloat32s(xs []float32) {
	for i, v := range xs {
		if i >= len(m.Data) {
			break
		}
		m.Data[i] = float64(v)
	}
}

// Counters aggregates the dynamic operation mix of executed work-items.
// The perfmodel package converts these into cycles.
type Counters struct {
	IntOps        int64 // integer ALU operations
	FloatOps      int64 // floating add/mul/etc. (excluding FMA)
	FMAs          int64 // fused multiply-adds (fma/mad builtins)
	SpecialOps    int64 // sqrt, exp, ... (special function unit)
	GlobalLoads   int64
	GlobalStores  int64
	LocalLoads    int64
	LocalStores   int64
	PrivateAccess int64 // register-array traffic
	Branches      int64
	LoopIters     int64 // loop iterations without an unroll hint
	UnrolledIters int64 // loop iterations under #pragma unroll
	Barriers      int64
	Calls         int64
}

// Add accumulates other into c.
func (c *Counters) Add(o *Counters) {
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.FMAs += o.FMAs
	c.SpecialOps += o.SpecialOps
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LocalLoads += o.LocalLoads
	c.LocalStores += o.LocalStores
	c.PrivateAccess += o.PrivateAccess
	c.Branches += o.Branches
	c.LoopIters += o.LoopIters
	c.UnrolledIters += o.UnrolledIters
	c.Barriers += o.Barriers
	c.Calls += o.Calls
}

// Total returns the total dynamic operation count (a rough IPC proxy).
func (c *Counters) Total() int64 {
	return c.IntOps + c.FloatOps + c.FMAs + c.SpecialOps +
		c.GlobalLoads + c.GlobalStores + c.LocalLoads + c.LocalStores +
		c.PrivateAccess + c.Branches
}

// Access is one recorded global-memory access for coalescing analysis.
type Access struct {
	Site  int
	Addr  uint64 // byte address (buffer-namespaced)
	Store bool
}

// AccessLog collects global-memory accesses of one sampled work-group.
// Each work-item records into its own buffer — no synchronization on the
// access path — and consumers group by site afterwards. The perfmodel
// groups accesses by SIMD batch and counts unique cache lines to derive
// memory transactions.
type AccessLog struct {
	perWI  [][]Access
	bySite [][][]uint64 // site -> wi -> ordered addresses (arena-backed)
	sites  map[int]map[int][]uint64
	once   sync.Once
	mapono sync.Once
}

// NewAccessLog returns a log with buffers for n work-items.
func NewAccessLog(n int) *AccessLog { return &AccessLog{perWI: make([][]Access, n)} }

// record appends one access to the work-item's private buffer.
func (l *AccessLog) record(site, wi int, addr uint64, store bool) {
	l.perWI[wi] = append(l.perWI[wi], Access{Site: site, Addr: addr, Store: store})
}

// SiteAccesses returns the accesses grouped site → work-item → ordered
// address list; built once, after the work-group has finished. Site IDs
// are dense compile-time indices, so the grouping is a counting sort into
// a single address arena — the log is rebuilt for every sampled launch of
// a cost evaluation, which makes this path too hot for map-based grouping.
// Sites with no accesses hold a nil work-item slice.
func (l *AccessLog) SiteAccesses() [][][]uint64 {
	l.once.Do(func() {
		nWI := len(l.perWI)
		maxSite := -1
		total := 0
		for _, accs := range l.perWI {
			for i := range accs {
				if s := accs[i].Site; s > maxSite {
					maxSite = s
				}
			}
			total += len(accs)
		}
		if maxSite < 0 {
			return
		}
		ns := maxSite + 1
		counts := make([]int, ns*nWI)
		for wi, accs := range l.perWI {
			for i := range accs {
				counts[accs[i].Site*nWI+wi]++
			}
		}
		arena := make([]uint64, 0, total)
		cells := make([][]uint64, ns*nWI)
		for ci, c := range counts {
			if c > 0 {
				off := len(arena)
				arena = arena[: off+c : cap(arena)]
				cells[ci] = arena[off : off : off+c]
			}
		}
		for wi, accs := range l.perWI {
			for i := range accs {
				ci := accs[i].Site*nWI + wi
				cells[ci] = append(cells[ci], accs[i].Addr)
			}
		}
		l.bySite = make([][][]uint64, ns)
		for s := 0; s < ns; s++ {
			row := cells[s*nWI : (s+1)*nWI]
			for _, c := range row {
				if c != nil {
					l.bySite[s] = row
					break
				}
			}
		}
	})
	return l.bySite
}

// Sites returns the same grouping as SiteAccesses in map form (site →
// work-item → addresses), omitting empty sites and work-items. Kept for
// consumers that want sparse lookup; derived from the slice form.
func (l *AccessLog) Sites() map[int]map[int][]uint64 {
	l.mapono.Do(func() {
		l.sites = make(map[int]map[int][]uint64)
		for s, row := range l.SiteAccesses() {
			if row == nil {
				continue
			}
			m := make(map[int][]uint64)
			for wi, addrs := range row {
				if len(addrs) > 0 {
					m[wi] = addrs
				}
			}
			l.sites[s] = m
		}
	})
	return l.sites
}

// WIAccesses exposes one work-item's raw access list (tests).
func (l *AccessLog) WIAccesses(wi int) []Access { return l.perWI[wi] }

// byteAddr folds buffer identity and element offset into one address space.
func byteAddr(m *Memory, elemOff int64) uint64 {
	return uint64(m.ID)<<40 | uint64(elemOff*int64(m.ElemBytes))
}
