package opentuner

import "math/rand"

// NelderMead implements the downhill-simplex method as an ensemble
// technique, in the request/report style OpenTuner uses: Propose emits one
// point, Report advances the simplex state machine. The classic
// coefficients α=1 (reflect), γ=2 (expand), ρ=0.5 (contract), σ=0.5
// (shrink) apply.
//
// Variant selects how the initial simplex is placed — OpenTuner ships
// "many variants of Nelder-Mead search" (ATF paper, Section II); the two
// families that matter for credit assignment are random placement and
// placement around the current best.
type NelderMead struct {
	// Variant: "random" places the initial simplex uniformly; "seeded"
	// places it around the global best point (OpenTuner's
	// RandomNelderMead vs RightNelderMead families).
	Variant string

	simplexBase
	state    nmState
	reflect  vertex
	contract vertex
	shrinkI  int
	initI    int
}

type nmState int

const (
	nmInit nmState = iota
	nmReflect
	nmExpand
	nmContract
	nmShrink
)

// NewNelderMead builds a Nelder-Mead technique of the given variant
// ("random" or "seeded").
func NewNelderMead(variant string) *NelderMead { return &NelderMead{Variant: variant} }

// Name implements SubTechnique.
func (t *NelderMead) Name() string { return "NelderMead-" + t.Variant }

// Init implements SubTechnique.
func (t *NelderMead) Init(d *Domain, rng *rand.Rand) {
	t.d, t.rng = d, rng
	t.state = nmInit
	t.verts = nil
	t.initI = 0
}

// Propose implements SubTechnique.
func (t *NelderMead) Propose(best Point, bestCost float64) Point {
	dims := t.d.Dims()
	switch t.state {
	case nmInit:
		// Build the d+1 initial vertices lazily, one proposal at a time.
		var p Point
		if t.Variant == "seeded" && best != nil {
			p = best.Clone()
			if t.initI > 0 {
				i := (t.initI - 1) % dims
				p[i] += (t.rng.Float64() - 0.5) * 0.2
			}
			p = t.d.Clamp(p)
		} else {
			p = t.randomPoint()
		}
		return p
	case nmReflect:
		c := t.centroidExcept(t.worst())
		t.reflect.p = t.affine(c, t.verts[t.worst()].p, -1) // c + (c - worst)
		return t.reflect.p
	case nmExpand:
		c := t.centroidExcept(t.worst())
		return t.affine(c, t.verts[t.worst()].p, -2) // c + 2(c - worst)
	case nmContract:
		c := t.centroidExcept(t.worst())
		t.contract.p = t.affine(c, t.verts[t.worst()].p, 0.5) // c + 0.5(worst - c)
		return t.contract.p
	case nmShrink:
		b := t.verts[t.best()].p
		return t.affine(b, t.verts[t.shrinkI].p, 0.5)
	}
	return t.randomPoint()
}

// Report implements SubTechnique.
func (t *NelderMead) Report(p Point, cost float64) {
	dims := t.d.Dims()
	switch t.state {
	case nmInit:
		t.verts = append(t.verts, vertex{p: p.Clone(), cost: cost})
		t.initI++
		if len(t.verts) == dims+1 {
			t.state = nmReflect
		}
	case nmReflect:
		t.reflect.cost = cost
		w := t.worst()
		b := t.best()
		secondWorst := t.secondWorstCost()
		switch {
		case cost < t.verts[b].cost:
			t.state = nmExpand
		case cost < secondWorst:
			t.verts[w] = vertex{p: p.Clone(), cost: cost}
			t.restart()
		default:
			t.state = nmContract
		}
	case nmExpand:
		w := t.worst()
		if cost < t.reflect.cost {
			t.verts[w] = vertex{p: p.Clone(), cost: cost}
		} else {
			t.verts[w] = vertex{p: t.reflect.p.Clone(), cost: t.reflect.cost}
		}
		t.restart()
	case nmContract:
		w := t.worst()
		if cost < t.verts[w].cost {
			t.verts[w] = vertex{p: p.Clone(), cost: cost}
			t.restart()
		} else {
			t.state = nmShrink
			t.shrinkI = t.firstNonBest(0)
		}
	case nmShrink:
		t.verts[t.shrinkI] = vertex{p: p.Clone(), cost: cost}
		t.shrinkI = t.firstNonBest(t.shrinkI + 1)
		if t.shrinkI < 0 {
			t.restart()
		}
	}
}

// restart returns to reflecting, or reseeds a collapsed simplex.
func (t *NelderMead) restart() {
	if t.degenerate() {
		t.verts = nil
		t.initI = 0
		t.state = nmInit
		return
	}
	t.state = nmReflect
}

// firstNonBest returns the first vertex index >= from that is not the best
// vertex, or -1.
func (t *NelderMead) firstNonBest(from int) int {
	b := t.best()
	for i := from; i < len(t.verts); i++ {
		if i != b {
			return i
		}
	}
	return -1
}

func (t *NelderMead) secondWorstCost() float64 {
	w := t.worst()
	sw := -1
	for i, v := range t.verts {
		if i == w {
			continue
		}
		if sw < 0 || v.cost > t.verts[sw].cost {
			sw = i
		}
	}
	if sw < 0 {
		return t.verts[w].cost
	}
	return t.verts[sw].cost
}
