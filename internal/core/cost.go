package core

import (
	"fmt"
	"math"
	"strings"
)

// Cost is the tuning objective value of one configuration. A single element
// is the common case (e.g. kernel runtime in nanoseconds); multiple
// elements enable ATF's multi-objective tuning, compared lexicographically
// by default (paper, Section II Step 2: "minimizing first runtime and then
// energy consumption"). Lower is better.
type Cost []float64

// SingleCost wraps a scalar objective.
func SingleCost(v float64) Cost { return Cost{v} }

// Less compares costs lexicographically: c < o if the first differing
// component of c is smaller. A shorter cost vector that is a prefix of the
// other is considered smaller (fewer objectives, all equal so far).
func (c Cost) Less(o Cost) bool {
	n := len(c)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c[i] != o[i] {
			return c[i] < o[i]
		}
	}
	return len(c) < len(o)
}

// Primary returns the first objective (what single-objective search
// techniques such as simulated annealing feed into their acceptance rule).
// An empty cost is +Inf.
func (c Cost) Primary() float64 {
	if len(c) == 0 {
		return math.Inf(1)
	}
	return c[0]
}

// IsInf reports whether the cost marks an invalid/failed configuration.
func (c Cost) IsInf() bool {
	return len(c) == 0 || math.IsInf(c[0], 1)
}

// Clone returns an independent copy.
func (c Cost) Clone() Cost { return append(Cost(nil), c...) }

// String renders the cost vector.
func (c Cost) String() string {
	if len(c) == 1 {
		return fmt.Sprintf("%g", c[0])
	}
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// InfCost marks an invalid configuration (e.g. a kernel that fails to
// launch, or a penalized constraint violation in the OpenTuner baseline).
func InfCost() Cost { return Cost{math.Inf(1)} }

// CostOrder compares two costs; the default is lexicographic Cost.Less.
// Users may supply their own order for multi-objective tuning ("or,
// alternatively, a user-defined order", Section II Step 2).
type CostOrder func(a, b Cost) bool

// LexLess is the default lexicographic order.
func LexLess(a, b Cost) bool { return a.Less(b) }

// WeightedSumOrder builds an order comparing weighted sums of the
// objectives — a common alternative to lexicographic multi-objective
// comparison.
func WeightedSumOrder(weights ...float64) CostOrder {
	return func(a, b Cost) bool {
		var sa, sb float64
		for i, w := range weights {
			if i < len(a) {
				sa += w * a[i]
			}
			if i < len(b) {
				sb += w * b[i]
			}
		}
		return sa < sb
	}
}

// CostFunction evaluates one configuration (paper, Section II Step 2). An
// error marks the configuration invalid; exploration records it with
// infinite cost and keeps going.
type CostFunction interface {
	Cost(cfg *Config) (Cost, error)
}

// CostFunc adapts a plain function to the CostFunction interface.
type CostFunc func(cfg *Config) (Cost, error)

// Cost implements CostFunction.
func (f CostFunc) Cost(cfg *Config) (Cost, error) { return f(cfg) }

// ScalarCostFunc adapts a single-objective function with no error path.
func ScalarCostFunc(f func(cfg *Config) float64) CostFunction {
	return CostFunc(func(cfg *Config) (Cost, error) { return SingleCost(f(cfg)), nil })
}
