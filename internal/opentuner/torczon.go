package opentuner

import "math/rand"

// Torczon implements Torczon's multidirectional direct search as an
// ensemble technique. Unlike Nelder-Mead, each iteration moves the whole
// simplex: all non-best vertices are reflected through the best vertex; if
// the batch improved on the best, an expanded batch (factor 2) is tried,
// otherwise the simplex contracts toward the best vertex (factor 0.5).
type Torczon struct {
	simplexBase
	state   tzState
	batch   []vertex // candidate vertices being evaluated
	batchI  int
	initI   int
	prevMin float64
}

type tzState int

const (
	tzInit tzState = iota
	tzReflectBatch
	tzExpandBatch
)

// NewTorczon builds a Torczon hill climber.
func NewTorczon() *Torczon { return &Torczon{} }

// Name implements SubTechnique.
func (t *Torczon) Name() string { return "TorczonHillClimber" }

// Init implements SubTechnique.
func (t *Torczon) Init(d *Domain, rng *rand.Rand) {
	t.d, t.rng = d, rng
	t.state = tzInit
	t.verts = nil
	t.initI = 0
}

// Propose implements SubTechnique.
func (t *Torczon) Propose(best Point, bestCost float64) Point {
	switch t.state {
	case tzInit:
		return t.randomPoint()
	case tzReflectBatch, tzExpandBatch:
		return t.batch[t.batchI].p
	}
	return t.randomPoint()
}

// Report implements SubTechnique.
func (t *Torczon) Report(p Point, cost float64) {
	switch t.state {
	case tzInit:
		t.verts = append(t.verts, vertex{p: p.Clone(), cost: cost})
		t.initI++
		if len(t.verts) == t.d.Dims()+1 {
			t.startReflect()
		}
	case tzReflectBatch:
		t.batch[t.batchI].cost = cost
		t.batchI++
		if t.batchI < len(t.batch) {
			return
		}
		if t.batchMin() < t.verts[t.best()].cost {
			// Improvement: remember the reflected simplex, try expansion.
			t.adoptBatch()
			t.startExpand()
			return
		}
		// No improvement: contract toward the best vertex in place and
		// reflect again next round (contraction needs no evaluations under
		// Torczon's scheme here; fresh costs arrive on the next batch).
		t.contractInPlace()
		t.startReflect()
	case tzExpandBatch:
		t.batch[t.batchI].cost = cost
		t.batchI++
		if t.batchI < len(t.batch) {
			return
		}
		if t.batchMin() < t.prevMin {
			t.adoptBatch()
		}
		t.startReflect()
	}
}

// startReflect builds the reflected batch: every non-best vertex mirrored
// through the best.
func (t *Torczon) startReflect() {
	if t.degenerate() {
		t.verts = nil
		t.initI = 0
		t.state = tzInit
		return
	}
	b := t.best()
	t.batch = t.batch[:0]
	for i, v := range t.verts {
		if i == b {
			continue
		}
		// reflected = best + (best - v)
		t.batch = append(t.batch, vertex{p: t.affine(t.verts[b].p, v.p, -1)})
	}
	t.batchI = 0
	t.state = tzReflectBatch
}

// startExpand builds the expanded batch (factor 2 from the best vertex).
func (t *Torczon) startExpand() {
	b := t.best()
	t.prevMin = t.verts[t.best()].cost
	old := make([]vertex, len(t.verts))
	copy(old, t.verts)
	t.batch = t.batch[:0]
	for i, v := range old {
		if i == b {
			continue
		}
		t.batch = append(t.batch, vertex{p: t.affine(old[b].p, v.p, 2)})
	}
	t.batchI = 0
	t.state = tzExpandBatch
}

// adoptBatch replaces the non-best vertices with the evaluated batch.
func (t *Torczon) adoptBatch() {
	b := t.best()
	j := 0
	for i := range t.verts {
		if i == b {
			continue
		}
		t.verts[i] = vertex{p: t.batch[j].p.Clone(), cost: t.batch[j].cost}
		j++
	}
}

// contractInPlace halves the simplex toward the best vertex. The
// contracted vertices keep their stale costs until re-evaluated by the
// next reflection batch; Torczon's convergence does not depend on them.
func (t *Torczon) contractInPlace() {
	b := t.best()
	for i := range t.verts {
		if i == b {
			continue
		}
		t.verts[i].p = t.affine(t.verts[b].p, t.verts[i].p, 0.5)
	}
}

// batchMin returns the smallest cost in the evaluated batch.
func (t *Torczon) batchMin() float64 {
	m := t.batch[0].cost
	for _, v := range t.batch[1:] {
		if v.cost < m {
			m = v.cost
		}
	}
	return m
}
