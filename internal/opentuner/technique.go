package opentuner

import (
	"math"
	"math/rand"
)

// SubTechnique is one search technique inside the OpenTuner ensemble. The
// engine repeatedly asks the selected technique for a point, evaluates it,
// and reports the measured cost back to the same technique.
type SubTechnique interface {
	// Name identifies the technique in reports and tests.
	Name() string
	// Init prepares the technique for a domain; called once.
	Init(d *Domain, rng *rand.Rand)
	// Propose returns the next point to evaluate. best is the global best
	// point so far (nil before any valid result) with its cost; techniques
	// may seed themselves from it, as OpenTuner's do via the results bank.
	Propose(best Point, bestCost float64) Point
	// Report delivers the cost measured for a point previously proposed by
	// this technique. Invalid/penalized configurations arrive as +Inf.
	Report(p Point, cost float64)
}

// RandomTechnique samples uniformly — OpenTuner's PureRandom.
type RandomTechnique struct {
	d   *Domain
	rng *rand.Rand
}

// NewRandomTechnique returns a uniform sampler.
func NewRandomTechnique() *RandomTechnique { return &RandomTechnique{} }

// Name implements SubTechnique.
func (t *RandomTechnique) Name() string { return "PureRandom" }

// Init implements SubTechnique.
func (t *RandomTechnique) Init(d *Domain, rng *rand.Rand) { t.d, t.rng = d, rng }

// Propose returns a uniformly random point.
func (t *RandomTechnique) Propose(best Point, bestCost float64) Point {
	p := make(Point, t.d.Dims())
	for i := range p {
		p[i] = t.rng.Float64()
	}
	return p
}

// Report implements SubTechnique (void: random search is memoryless).
func (t *RandomTechnique) Report(Point, float64) {}

// GreedyMutation mutates the best known point coordinate-wise —
// OpenTuner's UniformGreedyMutation / NormalGreedyMutation pair.
type GreedyMutation struct {
	// Normal selects Gaussian perturbation (NormalGreedyMutation); false
	// selects uniform resampling of mutated coordinates.
	Normal bool
	// Rate is the per-coordinate mutation probability (at least one
	// coordinate always mutates). OpenTuner's default is 0.1.
	Rate float64
	// Sigma is the Gaussian step width for Normal mutation.
	Sigma float64

	d   *Domain
	rng *rand.Rand
}

// NewGreedyMutation builds a mutation technique; normal selects the
// Gaussian variant.
func NewGreedyMutation(normal bool) *GreedyMutation {
	return &GreedyMutation{Normal: normal, Rate: 0.1, Sigma: 0.05}
}

// Name implements SubTechnique.
func (t *GreedyMutation) Name() string {
	if t.Normal {
		return "NormalGreedyMutation"
	}
	return "UniformGreedyMutation"
}

// Init implements SubTechnique.
func (t *GreedyMutation) Init(d *Domain, rng *rand.Rand) { t.d, t.rng = d, rng }

// Propose mutates the global best; with no best yet it samples uniformly.
func (t *GreedyMutation) Propose(best Point, bestCost float64) Point {
	if best == nil {
		p := make(Point, t.d.Dims())
		for i := range p {
			p[i] = t.rng.Float64()
		}
		return p
	}
	p := best.Clone()
	mutated := false
	for i := range p {
		if t.rng.Float64() >= t.Rate {
			continue
		}
		t.mutate(p, i)
		mutated = true
	}
	if !mutated {
		t.mutate(p, t.rng.Intn(len(p)))
	}
	return t.d.Clamp(p)
}

func (t *GreedyMutation) mutate(p Point, i int) {
	if t.Normal {
		p[i] += t.rng.NormFloat64() * t.Sigma
	} else {
		p[i] = t.rng.Float64()
	}
}

// Report implements SubTechnique (greedy mutation reads only the global
// best, which the engine tracks).
func (t *GreedyMutation) Report(Point, float64) {}

// vertex pairs a simplex point with its measured cost.
type vertex struct {
	p    Point
	cost float64
}

// simplexBase carries the shared state of the simplex-based techniques
// (Nelder-Mead and Torczon): a population of d+1 vertices, a queue of
// points awaiting evaluation, and bookkeeping to match reports to slots.
type simplexBase struct {
	d       *Domain
	rng     *rand.Rand
	verts   []vertex
	pending []pendingEval
}

type pendingEval struct {
	p    Point
	slot int // index into verts to overwrite on certain states; -1 = custom
	tag  int // technique-specific meaning
}

func (s *simplexBase) randomPoint() Point {
	p := make(Point, s.d.Dims())
	for i := range p {
		p[i] = s.rng.Float64()
	}
	return p
}

func (s *simplexBase) worst() int {
	w := 0
	for i, v := range s.verts {
		if v.cost > s.verts[w].cost {
			w = i
		}
	}
	return w
}

func (s *simplexBase) best() int {
	b := 0
	for i, v := range s.verts {
		if v.cost < s.verts[b].cost {
			b = i
		}
	}
	return b
}

// centroidExcept computes the centroid of all vertices but skip.
func (s *simplexBase) centroidExcept(skip int) Point {
	c := make(Point, s.d.Dims())
	n := 0
	for i, v := range s.verts {
		if i == skip {
			continue
		}
		for j := range c {
			c[j] += v.p[j]
		}
		n++
	}
	for j := range c {
		c[j] /= float64(n)
	}
	return c
}

// affine returns a + t*(b-a) componentwise, clamped into the domain.
func (s *simplexBase) affine(a, b Point, t float64) Point {
	p := make(Point, len(a))
	for i := range p {
		p[i] = a[i] + t*(b[i]-a[i])
	}
	return s.d.Clamp(p)
}

// degenerate reports whether the simplex has (numerically) collapsed.
func (s *simplexBase) degenerate() bool {
	const eps = 1e-9
	for i := 1; i < len(s.verts); i++ {
		for j := range s.verts[i].p {
			if math.Abs(s.verts[i].p[j]-s.verts[0].p[j]) > eps {
				return false
			}
		}
	}
	return true
}
