package oclc

import "testing"

// launchVec compiles and launches a 1-D kernel under EngineVMVec with one
// float output buffer of n elements, returning the buffer and result.
func launchVec(t *testing.T, src string, defines map[string]string, kernel string, global, local int64, extra []Arg, n int) ([]float64, *ExecResult) {
	t.Helper()
	prog, err := Compile(src, defines)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out := NewGlobalMemory(1, KFloat, 4, n)
	args := append([]Arg{BufArg(out)}, extra...)
	res, err := prog.Launch(kernel, args, NDRange1D(global, local), ExecOptions{Engine: EngineVMVec})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	cp := make([]float64, len(out.Data))
	copy(cp, out.Data)
	return cp, res
}

// TestVecUniformKernelStaysVectorized pins the uniformity hints: a kernel
// whose only branches are work-item-ID-independent loop heads must run
// entirely in lockstep — zero scalar fallbacks — while retiring one group
// dispatch per instruction (instructions/dispatches == lane width).
func TestVecUniformKernelStaysVectorized(t *testing.T) {
	src := `__kernel void u(__global float* out, const int n) {
	  const int g = get_global_id(0);
	  float v = 0.5f;
	  for (int i = 0; i < n; i++) { v = v * 1.5f + (float)(g); }
	  out[g] = v;
	}`
	fb0 := mVecFallbacks.Value()
	nd0 := mVecDispatches.Value()
	ni0 := mVecInstructions.Value()
	launchVec(t, src, nil, "u", 32, 8, []Arg{IntArg(6)}, 32)
	if d := mVecFallbacks.Value() - fb0; d != 0 {
		t.Fatalf("uniform kernel caused %d scalar fallbacks, want 0", d)
	}
	nd := mVecDispatches.Value() - nd0
	ni := mVecInstructions.Value() - ni0
	if nd == 0 {
		t.Fatal("no vector dispatches recorded")
	}
	if ni != nd*8 {
		t.Fatalf("instructions = %d, want dispatches(%d) x width(8): full-width lockstep", ni, nd)
	}
}

// TestVecFallbackAndRegatherMetrics pins the divergence path: a
// data-dependent branch forces a scatter in every group, and the barrier
// after it re-converges the lanes back into lockstep.
func TestVecFallbackAndRegatherMetrics(t *testing.T) {
	src := `__kernel void d(__global float* out, __global int* sel) {
	  const int g = get_global_id(0);
	  float v;
	  if (sel[g] > 0) { v = 2.0f; } else { v = 0.5f; }
	  barrier(0);
	  out[g] = v * (float)(get_local_id(0) + 1);
	}`
	sel := NewGlobalMemory(2, KInt, 4, 16)
	for i := range sel.Data {
		sel.Data[i] = float64(i%2*2 - 1) // alternating -1, 1: divergent in every group
	}
	fb0 := mVecFallbacks.Value()
	rg0 := mVecRegathers.Value()
	hc0 := mVecLanesActive.Count()
	launchVec(t, src, nil, "d", 16, 8, []Arg{BufArg(sel)}, 16)
	if d := mVecFallbacks.Value() - fb0; d != 2 {
		t.Fatalf("fallbacks = %d, want 2 (one per group)", d)
	}
	if d := mVecRegathers.Value() - rg0; d != 2 {
		t.Fatalf("regathers = %d, want 2 (one per barrier release)", d)
	}
	if mVecLanesActive.Count() == hc0 {
		t.Fatal("lanes-active histogram saw no observations")
	}
}

// TestVecDivergentDeterminism pins that the scatter/re-gather scheduler is
// deterministic: repeated launches of a divergence-heavy kernel produce
// identical buffers, counters, and divergence flags.
func TestVecDivergentDeterminism(t *testing.T) {
	src := `__kernel void d(__global float* out, __global int* lim) {
	  const int g = get_global_id(0);
	  float acc = 0.0f;
	  for (int i = 0; i < 12; i++) {
	    if (i == lim[g]) { out[g] = acc; return; }
	    acc += (float)(g + i);
	  }
	  barrier(0);
	  out[g] = -acc;
	}`
	run := func() ([]float64, Counters, bool) {
		lim := NewGlobalMemory(2, KInt, 4, 16)
		for i := range lim.Data {
			lim.Data[i] = float64(i - 4)
		}
		buf, res := launchVec(t, src, nil, "d", 16, 8, []Arg{BufArg(lim)}, 16)
		return buf, res.Counters, res.Divergent
	}
	b1, c1, d1 := run()
	for i := 0; i < 3; i++ {
		b2, c2, d2 := run()
		if c1 != c2 || d1 != d2 {
			t.Fatalf("run %d: counters/divergence differ:\n  first: %+v div=%v\n  again: %+v div=%v", i, c1, d1, c2, d2)
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatalf("run %d: out[%d] = %v, first run had %v", i, j, b2[j], b1[j])
			}
		}
	}
}
