package dist

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"atf/internal/obs"
)

// Registry tracks the fleet's eval workers and their liveness. Workers
// are keyed by advertised URL: registration is idempotent and doubles as
// the heartbeat. A worker is live while its last heartbeat is within the
// TTL and it has no unresolved dispatch failure — a failed dispatch
// benches the worker until its next heartbeat, so one dead process does
// not keep eating re-dispatches.
type Registry struct {
	heartbeat time.Duration
	ttl       time.Duration
	now       func() time.Time

	mu      sync.Mutex
	workers map[string]*worker // by URL
	byID    map[string]*worker // by assigned id, for lightweight heartbeats
	order   []string           // registration order, for stable listings
}

// ErrUnknownWorker rejects an id-based heartbeat for an id this registry
// never issued — the signature of a coordinator restart. The HTTP layer
// maps it to 404; workers react by re-registering in full.
var ErrUnknownWorker = fmt.Errorf("dist: unknown worker id")

// worker is one registered eval worker. The counters are atomic so the
// dispatch path never takes the registry lock.
type worker struct {
	id   string
	name string
	url  string

	mu       sync.Mutex
	lastSeen time.Time
	benched  bool // dispatch failed since the last heartbeat

	dispatches atomic.Uint64
	failures   atomic.Uint64
	evals      atomic.Uint64
	evalsTotal *obs.Counter
}

// NewRegistry creates a worker registry with the given heartbeat
// interval (0 means 2s) and TTL (0 means 3 heartbeats).
func NewRegistry(heartbeat, ttl time.Duration) *Registry {
	if heartbeat <= 0 {
		heartbeat = 2 * time.Second
	}
	if ttl <= 0 {
		ttl = 3 * heartbeat
	}
	return &Registry{
		heartbeat: heartbeat,
		ttl:       ttl,
		now:       time.Now,
		workers:   make(map[string]*worker),
		byID:      make(map[string]*worker),
	}
}

// Heartbeat registers the worker or refreshes its liveness; it returns
// the worker and whether this was a first registration.
func (r *Registry) Heartbeat(req RegisterRequest) (*worker, bool, error) {
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, false, fmt.Errorf("dist: bad worker url %q", req.URL)
	}
	name := req.Name
	if name == "" {
		name = u.Host
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[req.URL]
	if !ok {
		w = &worker{
			id:         "w-" + randomSuffix(),
			name:       name,
			url:        req.URL,
			evalsTotal: workerEvalsCounter(name),
		}
		r.workers[req.URL] = w
		r.byID[w.id] = w
		r.order = append(r.order, req.URL)
	}
	w.mu.Lock()
	w.name = name
	w.lastSeen = r.now()
	w.benched = false
	w.mu.Unlock()
	r.updateLiveGauge()
	return w, !ok, nil
}

// HeartbeatByID refreshes a registered worker's liveness by its assigned
// id — the steady-state heartbeat, cheaper than a full registration and
// the probe that detects coordinator restarts: a fresh registry has never
// issued the id and answers ErrUnknownWorker, telling the worker to
// re-register.
func (r *Registry) HeartbeatByID(id string) (*worker, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownWorker, id)
	}
	w.mu.Lock()
	w.lastSeen = r.now()
	w.benched = false
	w.mu.Unlock()
	r.updateLiveGauge()
	return w, nil
}

// Live returns the workers eligible for dispatch, in registration order.
func (r *Registry) Live() []*worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveLocked()
}

func (r *Registry) liveLocked() []*worker {
	cutoff := r.now().Add(-r.ttl)
	var live []*worker
	for _, url := range r.order {
		w := r.workers[url]
		w.mu.Lock()
		ok := !w.benched && !w.lastSeen.Before(cutoff)
		w.mu.Unlock()
		if ok {
			live = append(live, w)
		}
	}
	mWorkersLive.Set(int64(len(live)))
	return live
}

func (r *Registry) updateLiveGauge() { r.liveLocked() }

// MarkFailed benches a worker after a failed dispatch until its next
// heartbeat proves it alive again.
func (r *Registry) MarkFailed(w *worker) {
	w.failures.Add(1)
	w.mu.Lock()
	w.benched = true
	w.mu.Unlock()
	r.mu.Lock()
	r.updateLiveGauge()
	r.mu.Unlock()
}

// Status snapshots every registered worker for GET /v1/workers.
func (r *Registry) Status() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	out := make([]WorkerStatus, 0, len(r.order))
	for _, url := range r.order {
		w := r.workers[url]
		w.mu.Lock()
		st := WorkerStatus{
			ID:             w.id,
			Name:           w.name,
			URL:            w.url,
			Live:           !w.benched && !w.lastSeen.Before(cutoff),
			LastSeenUnixNs: w.lastSeen.UnixNano(),
			Dispatches:     w.dispatches.Load(),
			Failures:       w.failures.Load(),
			Evals:          w.evals.Load(),
		}
		w.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Handler serves the coordinator's worker-facing endpoints:
//
//	POST /v1/workers                 register (also re-registration after a 404)
//	POST /v1/workers/{id}/heartbeat  steady-state heartbeat; 404 for unknown ids
//	GET  /v1/workers                 fleet status
//
// atfd mounts it next to the session API on the same listener (both the
// exact path and the trailing-slash subtree).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, req *http.Request) {
		wk, err := r.HeartbeatByID(req.PathValue("id"))
		if err != nil {
			writeJSONError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, RegisterResponse{
			ID:          wk.id,
			HeartbeatMs: r.heartbeat.Milliseconds(),
			TTLMs:       r.ttl.Milliseconds(),
		})
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, req *http.Request) {
		var body RegisterRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&body); err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad register body: %v", err)
			return
		}
		wk, fresh, err := r.Heartbeat(body)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "%v", err)
			return
		}
		code := http.StatusOK
		if fresh {
			code = http.StatusCreated
		}
		writeJSON(w, code, RegisterResponse{
			ID:          wk.id,
			HeartbeatMs: r.heartbeat.Milliseconds(),
			TTLMs:       r.ttl.Milliseconds(),
		})
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Status())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// randomSuffix is a short collision-resistant id component.
func randomSuffix() string {
	var b [5]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
