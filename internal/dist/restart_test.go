package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHeartbeatSurvivesCoordinatorRestart: a live worker whose
// coordinator restarts (fresh process, empty registry, same address)
// must detect the 404 on its id heartbeat and re-register instead of
// going silent.
func TestHeartbeatSurvivesCoordinatorRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	f1 := NewFleet(Options{Heartbeat: 20 * time.Millisecond})
	srv1 := &http.Server{Handler: f1.Handler()}
	go srv1.Serve(ln)

	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hbDone := make(chan error, 1)
	go func() {
		hbDone <- RunHeartbeat(ctx, nil, "http://"+addr,
			RegisterRequest{Name: "survivor", URL: "http://127.0.0.1:9"}, logf)
	}()

	waitLive := func(f *Fleet, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for len(f.registry.Live()) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("worker never became live %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitLive(f1, "on the first coordinator")

	// "Restart" the coordinator: same address, brand-new registry that
	// has never issued the worker's id.
	srv1.Close()
	var ln2 net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	f2 := NewFleet(Options{Heartbeat: 20 * time.Millisecond})
	srv2 := &http.Server{Handler: f2.Handler()}
	defer srv2.Close()
	go srv2.Serve(ln2)

	waitLive(f2, "after the coordinator restart")

	mu.Lock()
	var reRegistered bool
	for _, l := range logs {
		if strings.Contains(l, "re-registering") {
			reRegistered = true
		}
	}
	mu.Unlock()
	if !reRegistered {
		t.Fatalf("worker recovered without the 404 re-register path; log: %q", logs)
	}
	cancel()
	<-hbDone
}

// TestSessionWorkersQuota: with SessionWorkers set, one session dispatches
// to at most that many workers, the subset is stable for the session, and
// results stay bit-identical to a local run.
func TestSessionWorkersQuota(t *testing.T) {
	spec := parseDistSpec(t)
	want := runLocal(t, spec)

	opts := fastOptions()
	opts.SessionWorkers = 2
	f := NewFleet(opts)
	const fleetSize = 4
	for i := 0; i < fleetSize; i++ {
		srv := httptest.NewServer(newWorkerHandler(t, fmt.Sprintf("q%d", i)))
		t.Cleanup(srv.Close)
		if _, _, err := f.registry.Heartbeat(RegisterRequest{Name: fmt.Sprintf("q%d", i), URL: srv.URL}); err != nil {
			t.Fatal(err)
		}
	}

	// The subset is a stable window per session id.
	ev := f.SessionEvaluator("tenant-a", spec, nil, nil).(*sessionEvaluator)
	subset1 := ev.liveWorkers()
	subset2 := ev.liveWorkers()
	if len(subset1) != 2 {
		t.Fatalf("session subset has %d workers, quota is 2", len(subset1))
	}
	for i := range subset1 {
		if subset1[i] != subset2[i] {
			t.Fatal("session's worker subset is not stable")
		}
	}
	ev.Close()

	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev2 := f.SessionEvaluator("tenant-b", spec, build.Cost, nil)
	t.Cleanup(func() { ev2.(io.Closer).Close() })
	tuner := build.Tuner
	tuner.Evaluator = ev2
	res, err := tuner.Tune(build.Cost, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "quota fleet vs local", res, want)

	dispatched := 0
	for _, st := range f.registry.Status() {
		if st.Dispatches > 0 {
			dispatched++
		}
	}
	if dispatched == 0 || dispatched > 2 {
		t.Fatalf("session dispatched to %d workers, quota is 2", dispatched)
	}
}
