package core

import (
	"fmt"
	"sync"
	"testing"
)

// obliviousWalker is the deterministic index walker plus the CostOblivious
// marker — the shape of exhaustive search as the pipeline sees it.
type obliviousWalker struct{ indexWalker }

func (w *obliviousWalker) CostOblivious() bool { return true }

// TestExplorePipelineDeterministic: pipelined dispatch must be
// bit-identical to the unpipelined engine for cost-oblivious techniques,
// across worker counts, batch sizes, and a mid-batch abort.
func TestExplorePipelineDeterministic(t *testing.T) {
	const n = 96
	sp := mustSpace(t, saxpyParams(n))
	opts := ExploreOptions{Seed: 42, Record: true, CacheCosts: true}
	cases := []struct {
		name      string
		mk        func() Technique
		abort     AbortCondition
		batchSize int
	}{
		{"exhaustive", func() Technique { return &obliviousWalker{} }, Evaluations(60), 0},
		{"random", func() Technique { return &randomTechnique{} }, Evaluations(60), 0},
		{"mid-batch-abort", func() Technique { return &obliviousWalker{} }, Evaluations(13), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := ExploreParallel(sp, tc.mk(), quadCost(n), tc.abort,
				ParallelOptions{ExploreOptions: opts, Workers: 8, BatchSize: tc.batchSize})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := ExploreParallel(sp, tc.mk(), quadCost(n), tc.abort,
					ParallelOptions{ExploreOptions: opts, Workers: workers,
						BatchSize: tc.batchSize, Pipeline: true})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, ref, got, tc.name)
			}
		})
	}
}

// TestExplorePipelineIgnoredForAdaptive: randomTechnique carries no
// CostOblivious marker here (it is wrapped), so an adaptive stand-in —
// the plain indexWalker, which records its reports — must keep the strict
// draw→report cadence even with Pipeline set, and produce identical
// results.
func TestExplorePipelineIgnoredForAdaptive(t *testing.T) {
	const n = 48
	sp := mustSpace(t, saxpyParams(n))
	opts := ExploreOptions{Record: true, CacheCosts: true}
	ref, err := ExploreParallel(sp, &indexWalker{}, quadCost(n), Evaluations(40),
		ParallelOptions{ExploreOptions: opts, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreParallel(sp, &indexWalker{}, quadCost(n), Evaluations(40),
		ParallelOptions{ExploreOptions: opts, Workers: 4, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got, "adaptive under Pipeline")
}

// TestExplorePipelineOverlapsDispatch pins the overlap itself: with
// pipelining the engine draws and dispatches batch 1 (observable through
// OnBatch, which runs synchronously on the engine goroutine) before batch
// 0's costs are reported to the technique.
func TestExplorePipelineOverlapsDispatch(t *testing.T) {
	const n = 48
	sp := mustSpace(t, saxpyParams(n))
	for _, pipeline := range []bool{false, true} {
		var mu sync.Mutex
		var events []string
		tech := &reportLoggingWalker{log: func(ev string) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}
		_, err := ExploreParallel(sp, tech, quadCost(n), Evaluations(12),
			ParallelOptions{
				ExploreOptions: ExploreOptions{CacheCosts: true},
				Workers:        2, BatchSize: 4, Pipeline: pipeline,
				OnBatch: func(mark BatchMark) {
					mu.Lock()
					events = append(events, fmt.Sprintf("dispatch%d", mark.Index))
					mu.Unlock()
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		d1, r0 := indexOf(events, "dispatch1"), indexOf(events, "report")
		if d1 < 0 || r0 < 0 {
			t.Fatalf("pipeline=%v: missing events in %v", pipeline, events)
		}
		if pipeline && d1 > r0 {
			t.Fatalf("pipeline=true: batch 1 dispatched after batch 0's report: %v", events)
		}
		if !pipeline && d1 < r0 {
			t.Fatalf("pipeline=false: batch 1 dispatched before batch 0's report: %v", events)
		}
	}
}

// reportLoggingWalker is a cost-oblivious index walker that logs its first
// cost report.
type reportLoggingWalker struct {
	indexWalker
	log      func(string)
	reported bool
}

func (w *reportLoggingWalker) CostOblivious() bool { return true }

func (w *reportLoggingWalker) ReportCost(cost Cost) {
	if !w.reported {
		w.reported = true
		w.log("report")
	}
	w.indexWalker.ReportCost(cost)
}

func indexOf(events []string, want string) int {
	for i, ev := range events {
		if ev == want {
			return i
		}
	}
	return -1
}
