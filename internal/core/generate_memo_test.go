package core

import (
	"strings"
	"testing"
)

func TestSuffixFootprints(t *testing.T) {
	params := []*Param{
		NewParam("A", NewInterval(1, 4)),
		NewParam("B", NewInterval(1, 4), Divides(Ref("A"))),
		NewParam("C", NewInterval(1, 4)),
		NewParam("D", NewInterval(1, 4), Divides(Ref("A"))),
	}
	foot, memoable, _ := suffixFootprints(params)
	if memoable[0] {
		t.Error("depth 0 must never be memoable")
	}
	// Suffix {B,C,D} reads {A}, which is the whole depth-1 prefix: a
	// full-prefix key is unique per prefix and can never hit.
	if memoable[1] {
		t.Error("depth 1 footprint equals its prefix; must not be memoable")
	}
	// Suffix {C,D} reads {A} ⊂ {A,B}.
	if !memoable[2] || len(foot[2]) != 1 || foot[2][0] != 0 {
		t.Errorf("depth 2: foot=%v memoable=%v, want [0] true", foot[2], memoable[2])
	}
	// Suffix {D} reads {A} ⊂ {A,B,C}.
	if !memoable[3] || len(foot[3]) != 1 || foot[3][0] != 0 {
		t.Errorf("depth 3: foot=%v memoable=%v, want [0] true", foot[3], memoable[3])
	}
}

func TestSuffixFootprintsUnknownIsSticky(t *testing.T) {
	params := []*Param{
		NewParam("A", NewInterval(1, 4)),
		NewParam("B", NewInterval(1, 4)),
		NewParam("C", NewInterval(1, 4), Fn(func(v Value, c *Config) bool { return true })),
		NewParam("D", NewInterval(1, 4)),
	}
	_, memoable, exact := suffixFootprints(params)
	// C's unknown footprint poisons every depth whose suffix contains C.
	if memoable[1] || memoable[2] {
		t.Error("unknown footprint must disable memoization at depths whose suffix contains it")
	}
	// The suffix {D} below C reads nothing and is exact again.
	if !memoable[3] {
		t.Error("suffix strictly after the unknown constraint should be memoable")
	}
	// exact mirrors the stickiness: inexact at and above C's depth, exact
	// strictly below — what lazy construction keys its census on.
	if exact[1] || exact[2] {
		t.Error("suffixes containing the unknown constraint must report inexact footprints")
	}
	if !exact[3] {
		t.Error("suffix strictly after the unknown constraint should be exact")
	}
}

func TestPanickingConstraintSurfacesAsError(t *testing.T) {
	// Satellite: a panicking custom constraint must surface as an error
	// naming the offending parameter, depth, and candidate value — under
	// multi-worker generation and in both memoization modes (with memo on,
	// depth 2 is memoized, so the panic travels through a memo entry).
	for _, mode := range []MemoMode{MemoOff, MemoOn} {
		for _, workers := range []int{1, 4} {
			params := []*Param{
				NewParam("A", NewInterval(1, 8)),
				NewParam("B", NewInterval(1, 4)),
				NewParam("C", NewInterval(1, 8), FnReads(func(v Value, c *Config) bool {
					if c.Int("A") == 5 && v.Int() == 3 {
						panic("boom")
					}
					return true
				}, "A")),
			}
			_, err := GenerateFlat(params, GenOptions{Workers: workers, Memoize: mode})
			if err == nil {
				t.Fatalf("memo=%v workers=%d: expected error from panicking constraint", mode, workers)
			}
			msg := err.Error()
			for _, want := range []string{`"C"`, "depth 2", "value 3", "boom"} {
				if !strings.Contains(msg, want) {
					t.Errorf("memo=%v workers=%d: error %q does not mention %q", mode, workers, msg, want)
				}
			}
		}
	}
}

func TestMemoDeterminismAcrossWorkers(t *testing.T) {
	// The in-flight memo dedup guarantees each subtree key is computed by
	// exactly one worker, so constraint-check totals, memo hit/miss counts,
	// and unique node counts are identical at every worker count.
	params := func() []*Param {
		return []*Param{
			NewParam("A", NewInterval(1, 16)),
			NewParam("B", NewInterval(1, 16), Divides(Ref("A"))),
			NewParam("C", NewInterval(1, 8), Divides(Ref("A"))),
		}
	}
	var wantChecks, wantUnique, wantHits, wantMisses uint64
	for i, w := range []int{1, 2, 4, 8} {
		sp, err := GenerateFlat(params(), GenOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		_, unique := sp.NodeCounts()
		hits, misses := sp.MemoStats()
		if i == 0 {
			wantChecks, wantUnique, wantHits, wantMisses = sp.Checks(), unique, hits, misses
			if hits == 0 {
				t.Error("expected memo hits in a chain-constrained space")
			}
			continue
		}
		if sp.Checks() != wantChecks || unique != wantUnique || hits != wantHits || misses != wantMisses {
			t.Errorf("workers=%d: checks/unique/hits/misses = %d/%d/%d/%d, want %d/%d/%d/%d",
				w, sp.Checks(), unique, hits, misses, wantChecks, wantUnique, wantHits, wantMisses)
		}
	}
}

func TestMemoKeyDistinguishesKinds(t *testing.T) {
	// The key encoding must be injective across value kinds and string
	// lengths: Int(1) vs Bool(true) vs "1" must produce distinct keys.
	names := []string{"X"}
	foot := []int{0}
	key := func(v Value) string {
		c := ctx(names, v)
		return string(memoKeyAppend(nil, 1, foot, c))
	}
	ks := []string{
		key(Int(1)), key(Bool(true)), key(Str("1")),
		key(Float(1)), key(Str("")), key(Int(0)),
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("memo key collision: %q", k)
		}
		seen[k] = true
	}
}
