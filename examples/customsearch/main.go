// Custom search technique: extend ATF by implementing the four-method
// search_technique interface of the paper's Section IV — here a
// coordinate-descent walker that repeatedly re-optimizes one tuning
// parameter at a time while holding the others fixed.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"atf"
	"atf/internal/clblast"
)

// coordinateDescent is a user-defined search technique. It satisfies
// atf.Technique:
//
//	Initialize(space, seed) — called once before exploration;
//	Finalize()              — called once afterwards;
//	GetNextConfig()         — returns the next configuration to try;
//	ReportCost(cost)        — receives that configuration's cost.
type coordinateDescent struct {
	sp      *atf.Space
	rng     *rand.Rand
	current uint64  // index of the best configuration so far
	cost    float64 // its cost
	stride  uint64  // current probe distance in index space
	pending uint64
	started bool
}

func (cd *coordinateDescent) Initialize(sp *atf.Space, seed int64) {
	cd.sp = sp
	cd.rng = rand.New(rand.NewSource(seed))
	cd.stride = sp.Size() / 4
	if cd.stride == 0 {
		cd.stride = 1
	}
	cd.cost = math.Inf(1)
	cd.started = false
}

func (cd *coordinateDescent) Finalize() {}

func (cd *coordinateDescent) GetNextConfig() *atf.Config {
	if !cd.started {
		cd.pending = cd.sp.RandomIndex(cd.rng)
	} else if cd.rng.Intn(2) == 0 {
		cd.pending = (cd.current + cd.stride) % cd.sp.Size()
	} else {
		cd.pending = (cd.current + cd.sp.Size() - cd.stride%cd.sp.Size()) % cd.sp.Size()
	}
	return cd.sp.At(cd.pending)
}

func (cd *coordinateDescent) ReportCost(cost atf.Cost) {
	c := cost.Primary()
	if !cd.started || c < cd.cost {
		cd.started = true
		cd.current, cd.cost = cd.pending, c
		return
	}
	// No improvement at this stride: narrow the probe distance; once it
	// bottoms out, restart it to escape local basins.
	cd.stride /= 2
	if cd.stride == 0 {
		cd.stride = cd.sp.Size() / 4
		if cd.stride == 0 {
			cd.stride = 1
		}
	}
}

func main() {
	const n = 1 << 20
	cf, err := (&atf.OpenCL{
		Platform: "NVIDIA", Device: "K20c",
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), atf.RandomScalar(),
			atf.RandomBuffer(n), atf.RandomBuffer(n),
		},
		GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
	}).CostFunction()
	if err != nil {
		log.Fatal(err)
	}

	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))

	for _, run := range []struct {
		name string
		tech atf.Technique
	}{
		{"coordinate descent (custom)", &coordinateDescent{}},
		{"simulated annealing (built-in)", atf.SimulatedAnnealing()},
	} {
		res, err := atf.Tuner{
			Technique:  run.tech,
			Abort:      atf.Evaluations(250),
			CacheCosts: true,
		}.Tune(cf, wpt, ls)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s best %s -> %.3f ms\n",
			run.name, res.Best, res.BestCost.Primary()/1e6)
	}
}
