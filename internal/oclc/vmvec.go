package oclc

// Lockstep-vectorized work-group execution (EngineVMVec).
//
// The scalar VM (vm.go) already runs a whole work-group on one goroutine,
// but it still pays one full dispatch loop per work-item: for a 64-item
// group, every instruction is fetched, decoded, and switched on 64 times.
// This engine executes the group in lockstep instead — one dispatch per
// instruction per *group* — over structure-of-arrays register files:
// register r of lane l lives at regs[r*width+l], so each operand index
// addresses a contiguous [width]rval column and the per-lane work inside a
// case is a tight loop over the active-lane list.
//
// Divergence. Lockstep only works while every active lane agrees on the
// next instruction. The only instructions that can disagree are the
// conditional branches (opJumpFalse/opJumpTrue/opBrCmpFalse*). Branches
// the compiler proved work-item-ID-independent (uniform.go) carry a hint
// and are decided once per group; unhinted branches evaluate the condition
// per lane — side-effect-free — and, when lanes disagree, the group
// *scatters*: each live lane's column state is copied into the ordinary
// per-item vmWI frames (with the branch itself unexecuted) and the scalar
// cooperative scheduler takes over. At the next barrier release the
// scheduler attempts to *re-gather*: if the lanes converged back to an
// identical frame stack with per-register kind agreement, their state is
// copied back into columns and lockstep resumes.
//
// Equivalence. Bit-for-bit agreement with the scalar VM (and the walker)
// is load-bearing — differential_test.go compares buffers, Counters,
// error text, and the divergence flag across engines:
//
//   - Kind uniformity: starting from uniform frames, every register's
//     scalar kind (.k) is identical across active lanes after every
//     instruction — kernel arguments are group-uniform, every opcode
//     derives its result kind from operand kinds (never values), and
//     per-lane results (loads, queries, builtins) have kind fixed by the
//     instruction. Kind-dependent decisions (float-vs-int promotion,
//     opStoreVar's target kind) are therefore hoisted to the first active
//     lane, and the re-gather check only needs per-register kind
//     agreement, not value agreement.
//   - Counters are per-lane either way; hoisting never skips a bump.
//   - Lane deaths (errors, and completions while others wait) must raise
//     the walker's divergence flag exactly as the scalar scheduler does.
//     In vector mode deaths accumulate per segment (the span between
//     barriers) and the flag protocol is replayed at the next barrier in
//     lane order (replaySegment); on a mid-segment scatter the dead lanes
//     scatter as vmDying and the scalar scheduler replays their death
//     events, again in lane order — the same event order a scalar-only
//     run produces.
//   - Memory effects: within one instruction lanes execute in ascending
//     lane order, the same order the scalar scheduler uses between
//     barriers. Cross-instruction interleaving differs, but that is only
//     observable by kernels racing on shared memory between barriers,
//     whose results are undefined under every engine.
//
// The one intentional divergence: a panic inside a vector instruction
// (defensive; real failures surface as errors) kills every active lane
// with the scalar engine's "work-item panic" error instead of just one,
// because half-executed column state cannot be attributed to a single
// lane.

import (
	"fmt"

	"atf/internal/obs"
)

// Vector-engine metrics (DESIGN.md §3c). Dispatch/instruction counts are
// accumulated in scheduler-local fields and published once per launch
// (vmScheduler.release); the mask-shape events are rare enough to hit the
// atomics directly.
var (
	mVecDispatches = obs.NewCounter("atf_oclc_vm_vec_dispatches_total",
		"Group-level instruction dispatches by the lockstep-vectorized engine")
	mVecInstructions = obs.NewCounter("atf_oclc_vm_vec_instructions_total",
		"Per-lane instructions retired in vector mode (mean active width = instructions/dispatches)")
	mVecFallbacks = obs.NewCounter("atf_oclc_vm_vec_fallbacks_total",
		"Scalar fallbacks: a work-group scattered to per-item frames on branch divergence")
	mVecRegathers = obs.NewCounter("atf_oclc_vm_vec_regathers_total",
		"Successful lane re-convergences back into lockstep at a barrier release")
	mVecLanesActive = obs.NewHistogram("atf_oclc_vm_vec_lanes_active",
		"Active lanes at vector-segment starts (group entry, lane deaths, re-gathers)",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
)

// vecFrame is one vectorized activation record: the SoA register file for
// every lane of the group plus the shared resume point. Frame 0 reuses the
// scheduler's arena; deeper frames pool their columns across calls.
type vecFrame struct {
	fn   *Function
	vc   *vmCode
	regs []rval // SoA: register r of lane l at regs[r*width+l]
	ip   int
	dst  int32 // caller register column receiving the return value
}

// vmDying marks a lane that failed during the current vector segment when
// the group scatters to scalar frames mid-segment: the scalar scheduler
// must still process its death event (parties--, divergence-flag check) in
// lane order, exactly where a scalar-only run would have.
const vmDying vmStatus = 255

// runGroupVec is the EngineVMVec counterpart of runGroup: one work-group,
// executed in lockstep where possible and on the scalar cooperative
// scheduler across divergent regions.
func (s *vmScheduler) runGroupVec(wg *wgCtx, agg *Counters, counters []Counters, errs []error) (bool, int64, error) {
	fn, vc := s.fn, s.vc
	n := int(wg.launch.WorkGroupSize())
	for i := 0; i < n; i++ {
		counters[i] = Counters{}
		errs[i] = nil
	}
	wis := s.wis
	lin := 0
	for lz := int64(0); lz < wg.launch.Local[2]; lz++ {
		for ly := int64(0); ly < wg.launch.Local[1]; ly++ {
			for lx := int64(0); lx < wg.launch.Local[0]; lx++ {
				wi := &wis[lin]
				wi.w = wiCtx{
					prog: s.p,
					wg:   wg,
					ctr:  &counters[lin],
					lid:  [3]int64{lx, ly, lz},
					gid: [3]int64{
						wg.grp[0]*wg.launch.Local[0] + lx,
						wg.grp[1]*wg.launch.Local[1] + ly,
						wg.grp[2]*wg.launch.Local[2] + lz,
					},
					lin: lin,
				}
				wi.status = vmRunning
				wi.err = nil
				wi.icount = 0
				lin++
			}
		}
	}

	// Vector state: all lanes live, one segment, frame 0 over the arena.
	s.width = n
	s.ctrs = counters
	s.laneErrs = errs
	s.groupDiv = false
	s.lanesDirty = false
	s.segCtr = Counters{}
	if cap(s.laneActive) >= n {
		s.laneActive = s.laneActive[:n]
	} else {
		s.laneActive = make([]bool, n)
	}
	s.lanes = s.lanes[:0]
	s.segLanes = s.segLanes[:0]
	s.diedInSeg = s.diedInSeg[:0]
	for i := 0; i < n; i++ {
		s.laneActive[i] = true
		s.lanes = append(s.lanes, i)
		s.segLanes = append(s.segLanes, i)
	}
	for cap(s.vframes) < 1 {
		s.vframes = append(s.vframes[:cap(s.vframes)], vecFrame{})
	}
	s.vframes = s.vframes[:1]
	f0 := &s.vframes[0]
	f0.fn, f0.vc, f0.ip, f0.dst = fn, vc, 0, 0
	f0.regs = s.arena[:n*vc.numRegs]
	// Arena columns are reused across groups un-zeroed, same argument as
	// the scalar scheduler: arguments are rewritten here and every other
	// register is written before read.
	for i, a := range s.args {
		col := f0.regs[fn.Params[i].Slot*n:]
		rv := argToRval(a)
		for l := 0; l < n; l++ {
			col[l] = rv
		}
	}

	startLE := s.vecLaneExecs
	mVecLanesActive.Observe(float64(n))
	for {
		if s.vecRun() {
			break // every lane finished or failed in lockstep
		}
		mVecFallbacks.Inc()
		s.scatter()
		if !s.runScalar() {
			break // group finished on the scalar scheduler
		}
		mVecRegathers.Inc()
		mVecLanesActive.Observe(float64(len(s.lanes)))
	}

	// Flush the final segment's batched counters into its surviving lanes
	// (dead lanes flushed at laneFail, scattered segments at scatter).
	for _, l := range s.lanes {
		counters[l].Add(&s.segCtr)
	}
	s.segCtr = Counters{}

	icount := s.vecLaneExecs - startLE
	for i := range wis {
		icount += wis[i].icount
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return false, icount, errs[i]
		}
	}
	for i := 0; i < n; i++ {
		agg.Add(&counters[i])
	}
	return s.groupDiv, icount, nil
}

// laneFail kills one lane with err. The lane list is rebuilt lazily at the
// top of the dispatch loop so an instruction can fail several lanes while
// iterating the current list. The dying lane's share of the segment's
// batched counters is flushed here — the bump order inside each opcode
// decides whether the fatal instruction's increments are included.
func (s *vmScheduler) laneFail(l int, err error) {
	s.ctrs[l].Add(&s.segCtr)
	s.laneActive[l] = false
	s.laneErrs[l] = err
	wi := &s.wis[l]
	wi.err = err
	wi.status = vmDone
	s.diedInSeg = append(s.diedInSeg, l)
	s.lanesDirty = true
}

// rebuildLanes filters dead lanes out of the active list in place.
func (s *vmScheduler) rebuildLanes() {
	out := s.lanes[:0]
	for _, l := range s.lanes {
		if s.laneActive[l] {
			out = append(out, l)
		}
	}
	s.lanes = out
	s.lanesDirty = false
}

// replaySegment runs at a barrier every active lane reached in lockstep:
// it replays the cyclicBarrier arrive/leave protocol over the lanes that
// were live when the segment started, in lane order — the event order the
// scalar scheduler produces, since between two barriers each lane has
// exactly one event (arrival or death) and the pass visits lanes
// ascending. parties starts at the segment's live count because every
// earlier death was already replayed at a previous barrier (or scatter).
func (s *vmScheduler) replaySegment() {
	waiting, parties := 0, len(s.segLanes)
	for _, l := range s.segLanes {
		if s.laneActive[l] {
			waiting++
		} else {
			parties--
			if parties > 0 && waiting >= parties {
				s.groupDiv = true
			}
		}
	}
	s.segLanes = append(s.segLanes[:0], s.lanes...)
	s.diedInSeg = s.diedInSeg[:0]
}

func cmpInts(kind int32, a, b int64) bool {
	switch kind {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpGt:
		return a > b
	case cmpLe:
		return a <= b
	default:
		return a >= b
	}
}

func cmpFloats(kind int32, a, b float64) bool {
	switch kind {
	case cmpEq:
		return a == b
	case cmpNe:
		return a != b
	case cmpLt:
		return a < b
	case cmpGt:
		return a > b
	case cmpLe:
		return a <= b
	default:
		return a >= b
	}
}

func brCmpRes(kind int32, isF bool, l, r rval) bool {
	if isF {
		return cmpFloats(kind, l.asFloat(), r.asFloat())
	}
	return cmpInts(kind, l.i, r.i)
}

// vecRun executes in lockstep until the group finishes (returns true) or
// an unhinted branch diverges (returns false, with the top frame's ip at
// the branch and no side effects applied — the scalar re-execution of the
// branch reproduces its counters). Instruction semantics transcribe
// vmWI.run case by case; kind-dependent decisions are hoisted to the first
// active lane under the kind-uniformity invariant (file comment).
func (s *vmScheduler) vecRun() (done bool) {
	w := s.width
	wis := s.wis
	var nd, nl int64
	defer func() {
		s.vecDispatches += nd
		s.vecLaneExecs += nl
		if r := recover(); r != nil {
			err := fmt.Errorf("oclc: work-item panic: %v", r)
			for _, l := range s.lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			done = true
		}
	}()
frames:
	for {
		f := &s.vframes[len(s.vframes)-1]
		vc := f.vc
		code := vc.code
		regs := f.regs
		ip := f.ip
		for {
			if s.lanesDirty {
				s.rebuildLanes()
				if len(s.lanes) == 0 {
					return true
				}
				mVecLanesActive.Observe(float64(len(s.lanes)))
			}
			lanes := s.lanes
			in := &code[ip]
			nd++
			nl += int64(len(lanes))
			switch in.op {
			case opNop:
				ip++

			case opJump:
				ip = int(in.imm)
			case opJumpFalse, opJumpTrue:
				acol := regs[int(in.a)*w:]
				t0 := acol[lanes[0]].truthy()
				if in.d == 0 { // no uniformity hint: check lane agreement
					for _, l := range lanes[1:] {
						if acol[l].truthy() != t0 {
							f.ip = ip
							return false
						}
					}
				}
				if t0 == (in.op == opJumpTrue) {
					ip = int(in.imm)
				} else {
					ip++
				}
			case opReturn, opReturnNil:
				conv := (in.op == opReturn || in.imm == 1) && !f.fn.Ret.Ptr && f.fn.Ret.Kind != KVoid
				depth := len(s.vframes) - 1
				if depth == 0 {
					for _, l := range lanes {
						wis[l].status = vmDone
					}
					return true
				}
				dcol := s.vframes[depth-1].regs[int(f.dst)*w:]
				if in.op == opReturn {
					src := regs[int(in.a)*w:]
					if conv {
						kk := f.fn.Ret.Kind
						for _, l := range lanes {
							dcol[l] = convert(src[l], kk)
						}
					} else {
						for _, l := range lanes {
							dcol[l] = src[l]
						}
					}
				} else {
					var rv rval
					if conv {
						rv = convert(rv, f.fn.Ret.Kind)
					}
					for _, l := range lanes {
						dcol[l] = rv
					}
				}
				s.vframes = s.vframes[:depth]
				continue frames
			case opErr:
				err := vc.errTab[in.imm]
				for _, l := range lanes {
					s.laneFail(l, err)
				}
				s.rebuildLanes()
				return true
			case opBarrier:
				// Every active lane arrives at once: a barrier in lockstep
				// is a counter bump plus the divergence-flag replay for
				// lanes that died since the last one — no suspension.
				s.segCtr.Barriers++
				s.replaySegment()
				ip++

			case opCtrInt:
				s.segCtr.IntOps += in.imm
				ip++
			case opCtrFloat:
				s.segCtr.FloatOps += in.imm
				ip++
			case opCtrBranch:
				s.segCtr.Branches += in.imm
				ip++
			case opCtrLoop:
				s.segCtr.LoopIters++
				ip++
			case opCtrUnroll:
				s.segCtr.UnrolledIters++
				ip++
			case opCount:
				s.segCtr.Add(&vc.countTab[in.imm])
				ip++

			case opConstI:
				acol := regs[int(in.a)*w:]
				for _, l := range lanes {
					acol[l].setInt(in.imm)
				}
				ip++
			case opConstF:
				acol := regs[int(in.a)*w:]
				for _, l := range lanes {
					acol[l].setFloat(in.f)
				}
				ip++
			case opConstR:
				acol := regs[int(in.a)*w:]
				rv := vc.rvalTab[in.imm]
				for _, l := range lanes {
					acol[l] = rv
				}
				ip++
			case opMove:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				for _, l := range lanes {
					acol[l] = bcol[l]
				}
				ip++
			case opConvert:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				switch ValKind(in.c) {
				case KFloat:
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat())
					}
				case KInt, KBool:
					for _, l := range lanes {
						acol[l].setInt(bcol[l].asInt())
					}
				default:
					for _, l := range lanes {
						acol[l] = bcol[l]
					}
				}
				ip++
			case opBool:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				for _, l := range lanes {
					if bcol[l].truthy() {
						acol[l].setInt(1)
					} else {
						acol[l].setInt(0)
					}
				}
				ip++
			case opStoreVar:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				switch acol[lanes[0]].k {
				case KFloat:
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat())
					}
				case KInt:
					for _, l := range lanes {
						acol[l].setInt(bcol[l].asInt())
					}
				default:
					for _, l := range lanes {
						acol[l] = bcol[l]
					}
				}
				ip++
			case opIncVar:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				if bcol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						old := bcol[l].f
						nv := old + float64(in.imm)
						bcol[l].f = nv
						if in.c != 0 {
							acol[l].setFloat(old)
						} else {
							acol[l].setFloat(nv)
						}
					}
				} else {
					s.segCtr.IntOps++
					for _, l := range lanes {
						old := bcol[l].i
						nv := old + in.imm
						bcol[l].i = nv
						if in.c != 0 {
							acol[l].setInt(old)
						} else {
							acol[l].setInt(nv)
						}
					}
				}
				ip++
			case opIncVal:
				acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
				if bcol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].f + float64(in.imm))
					}
				} else {
					s.segCtr.IntOps++
					for _, l := range lanes {
						acol[l].setInt(bcol[l].i + in.imm)
					}
				}
				ip++

			case opAdd:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat() + ccol[l].asFloat())
					}
				} else {
					s.segCtr.IntOps++
					for _, l := range lanes {
						acol[l].setInt(bcol[l].i + ccol[l].i)
					}
				}
				ip++
			case opSub:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat() - ccol[l].asFloat())
					}
				} else {
					s.segCtr.IntOps++
					for _, l := range lanes {
						acol[l].setInt(bcol[l].i - ccol[l].i)
					}
				}
				ip++
			case opMul:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat() * ccol[l].asFloat())
					}
				} else {
					s.segCtr.IntOps++
					for _, l := range lanes {
						acol[l].setInt(bcol[l].i * ccol[l].i)
					}
				}
				ip++
			case opDiv:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					s.segCtr.FloatOps++
					for _, l := range lanes {
						acol[l].setFloat(bcol[l].asFloat() / ccol[l].asFloat())
					}
				} else {
					// The bump precedes the zero checks: a lane dying here
					// flushes with this instruction's IntOps included, as the
					// scalar engine counts it.
					s.segCtr.IntOps++
					var zerr error
					for _, l := range lanes {
						if ccol[l].i == 0 {
							if zerr == nil {
								zerr = errf(in.pos, "integer division by zero")
							}
							s.laneFail(l, zerr)
							continue
						}
						acol[l].setInt(bcol[l].i / ccol[l].i)
					}
				}
				ip++
			case opMod:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					err := errf(in.pos, "%% requires integer operands")
					for _, l := range lanes {
						s.laneFail(l, err)
					}
					s.rebuildLanes()
					return true
				}
				s.segCtr.IntOps++
				var zerr error
				for _, l := range lanes {
					if ccol[l].i == 0 {
						if zerr == nil {
							zerr = errf(in.pos, "integer modulo by zero")
						}
						s.laneFail(l, zerr)
						continue
					}
					acol[l].setInt(bcol[l].i % ccol[l].i)
				}
				ip++
			case opShl, opShr, opBitAnd, opBitOr, opBitXor:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					err := errf(in.pos, "bitwise operator on float")
					for _, l := range lanes {
						s.laneFail(l, err)
					}
					s.rebuildLanes()
					return true
				}
				s.segCtr.IntOps++
				for _, l := range lanes {
					a, b := bcol[l].i, ccol[l].i
					var v int64
					switch in.op {
					case opShl:
						v = a << uint(b)
					case opShr:
						v = a >> uint(b)
					case opBitAnd:
						v = a & b
					case opBitOr:
						v = a | b
					default:
						v = a ^ b
					}
					acol[l].setInt(v)
				}
				ip++
			case opEq, opNe, opLt, opGt, opLe, opGe:
				acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
				kind := int32(in.op - opEq)
				s.segCtr.IntOps++
				if bcol[lanes[0]].k == KFloat || ccol[lanes[0]].k == KFloat {
					for _, l := range lanes {
						if cmpFloats(kind, bcol[l].asFloat(), ccol[l].asFloat()) {
							acol[l].setInt(1)
						} else {
							acol[l].setInt(0)
						}
					}
				} else {
					for _, l := range lanes {
						if cmpInts(kind, bcol[l].i, ccol[l].i) {
							acol[l].setInt(1)
						} else {
							acol[l].setInt(0)
						}
					}
				}
				ip++

			default:
				nip, st := s.vecStep(in, f, regs, lanes, ip)
				switch st {
				case stepDone:
					return true
				case stepDiverge:
					f.ip = ip
					return false
				case stepFrames:
					continue frames
				}
				ip = nip
			}
		}
	}
}

// vecStep outcome for opcodes handled outside vecRun's main switch.
type vecStep int

const (
	stepNext    vecStep = iota // continue at the returned ip
	stepFrames                 // frame stack changed; re-enter the frame loop
	stepDone                   // every lane finished or failed
	stepDiverge                // unhinted branch disagreed; scatter
)

// vecStep executes the immediate-operand, branch, memory, and call opcodes
// — the long tail split out of vecRun to keep both switches compilable as
// dense jump tables.
func (s *vmScheduler) vecStep(in *instr, f *vecFrame, regs []rval, lanes []int, ip int) (int, vecStep) {
	w := s.width
	wis := s.wis
	vc := f.vc
	switch in.op {
	case opAddImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			fimm := float64(in.imm)
			for _, l := range lanes {
				acol[l].setFloat(bcol[l].f + fimm)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(bcol[l].i + in.imm)
			}
		}
	case opSubImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			fimm := float64(in.imm)
			for _, l := range lanes {
				acol[l].setFloat(bcol[l].f - fimm)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(bcol[l].i - in.imm)
			}
		}
	case opRSubImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			fimm := float64(in.imm)
			for _, l := range lanes {
				acol[l].setFloat(fimm - bcol[l].f)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(in.imm - bcol[l].i)
			}
		}
	case opMulImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			fimm := float64(in.imm)
			for _, l := range lanes {
				acol[l].setFloat(bcol[l].f * fimm)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(bcol[l].i * in.imm)
			}
		}
	case opDivImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			fimm := float64(in.imm)
			for _, l := range lanes {
				acol[l].setFloat(bcol[l].f / fimm)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(bcol[l].i / in.imm)
			}
		}
	case opModImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			err := errf(in.pos, "%% requires integer operands")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		s.segCtr.IntOps++
		for _, l := range lanes {
			acol[l].setInt(bcol[l].i % in.imm)
		}
	case opShlImm, opShrImm, opBitAndImm, opBitOrImm, opBitXorImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			err := errf(in.pos, "bitwise operator on float")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		s.segCtr.IntOps++
		for _, l := range lanes {
			a := bcol[l].i
			var v int64
			switch in.op {
			case opShlImm:
				v = a << uint(in.imm)
			case opShrImm:
				v = a >> uint(in.imm)
			case opBitAndImm:
				v = a & in.imm
			case opBitOrImm:
				v = a | in.imm
			default:
				v = a ^ in.imm
			}
			acol[l].setInt(v)
		}
	case opEqImm, opNeImm, opLtImm, opGtImm, opLeImm, opGeImm:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		kind := int32(in.op - opEqImm)
		s.segCtr.IntOps++
		if bcol[lanes[0]].k == KFloat {
			fimm := float64(in.imm)
			for _, l := range lanes {
				if cmpFloats(kind, bcol[l].f, fimm) {
					acol[l].setInt(1)
				} else {
					acol[l].setInt(0)
				}
			}
		} else {
			for _, l := range lanes {
				if cmpInts(kind, bcol[l].i, in.imm) {
					acol[l].setInt(1)
				} else {
					acol[l].setInt(0)
				}
			}
		}
	case opBrCmpFalse, opBrCmpFalseImm:
		lcol := regs[int(in.a)*w:]
		var rcol []rval
		rimm := intVal(in.imm)
		if in.op == opBrCmpFalse {
			rcol = regs[int(in.b)*w:]
		}
		kind := in.d & 0xff
		isF := lcol[lanes[0]].k == KFloat
		r0 := rimm
		if rcol != nil {
			r0 = rcol[lanes[0]]
			isF = isF || r0.k == KFloat
		}
		res := brCmpRes(kind, isF, lcol[lanes[0]], r0)
		if in.d&brUniform == 0 { // no uniformity hint: check lane agreement
			for _, l := range lanes[1:] {
				rl := rimm
				if rcol != nil {
					rl = rcol[l]
				}
				if brCmpRes(kind, isF, lcol[l], rl) != res {
					return 0, stepDiverge
				}
			}
		}
		cb := (in.d >> 8) & 0xff
		s.segCtr.IntOps++
		if cb == cbIterBranch {
			s.segCtr.Branches++
		}
		if res {
			switch cb {
			case cbIterLoop:
				s.segCtr.LoopIters++
			case cbIterUnroll:
				s.segCtr.UnrolledIters++
			}
			return ip + 1, stepNext
		}
		return int(in.c), stepNext

	case opNeg:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		if bcol[lanes[0]].k == KFloat {
			s.segCtr.FloatOps++
			for _, l := range lanes {
				acol[l].setFloat(-bcol[l].f)
			}
		} else {
			s.segCtr.IntOps++
			for _, l := range lanes {
				acol[l].setInt(-bcol[l].i)
			}
		}
	case opNot:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		s.segCtr.IntOps++
		for _, l := range lanes {
			if bcol[l].truthy() {
				acol[l].setInt(0)
			} else {
				acol[l].setInt(1)
			}
		}
	case opBitNot:
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		s.segCtr.IntOps++
		for _, l := range lanes {
			acol[l].setInt(^bcol[l].asInt())
		}

	case opCheckPtr:
		acol := regs[int(in.a)*w:]
		var err error
		for _, l := range lanes {
			if v := acol[l]; v.k != KPtr || v.mem == nil {
				if err == nil {
					err = errf(in.pos, "subscript of non-pointer value")
				}
				s.laneFail(l, err)
			}
		}
	case opCheck2D:
		acol := regs[int(in.a)*w:]
		var err error
		for _, l := range lanes {
			if acol[l].dim1 <= 0 {
				if err == nil {
					err = errf(in.pos, "2-D subscript of 1-D array")
				}
				s.laneFail(l, err)
			}
		}
	case opLoad1:
		acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
		base0 := bcol[lanes[0]]
		if base0.k != KPtr || base0.mem == nil {
			// The kind invariant makes a non-pointer base group-wide, and
			// every lane's mem comes from the same producing instruction
			// (a uniform argument or an opArray), so lane 0 decides.
			err := errf(in.pos, "subscript of non-pointer value")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		// Space and element kind come from the same declaration on every
		// lane even when the mem objects differ (private arrays), so the
		// access accounting and value dispatch hoist out of the lane loop.
		var log *AccessLog
		switch base0.mem.Space {
		case SpaceGlobal:
			s.segCtr.GlobalLoads++
			log = wis[lanes[0]].w.wg.log
		case SpaceLocal:
			s.segCtr.LocalLoads++
		default:
			s.segCtr.PrivateAccess++
		}
		isF := base0.mem.Elem == KFloat
		site := int(in.imm)
		for _, l := range lanes {
			base := bcol[l]
			m := base.mem
			off := base.off + ccol[l].asInt()
			if log != nil {
				log.record(site, l, byteAddr(m, off), false)
			}
			if uint64(off) >= uint64(len(m.Data)) {
				_, err := m.load(off)
				s.laneFail(l, err)
				continue
			}
			if isF {
				acol[l].setFloat(m.loadCell(off))
			} else {
				acol[l].setInt(int64(m.loadCell(off)))
			}
		}
	case opLoad2:
		acol, bcol, ccol, dcol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:], regs[int(in.d)*w:]
		base0 := bcol[lanes[0]]
		if base0.k != KPtr || base0.mem == nil {
			err := errf(in.pos, "subscript of non-pointer value")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		space := base0.mem.Space
		var log *AccessLog
		s.segCtr.IntOps++ // row-major address computation
		switch space {
		case SpaceGlobal:
			s.segCtr.GlobalLoads++
			log = wis[lanes[0]].w.wg.log
		case SpaceLocal:
			s.segCtr.LocalLoads++
		default:
			s.segCtr.PrivateAccess++
		}
		isF := base0.mem.Elem == KFloat
		site := int(in.imm)
		var dimerr error
		for _, l := range lanes {
			base := bcol[l]
			if base.dim1 <= 0 {
				if dimerr == nil {
					dimerr = errf(in.pos, "2-D subscript of 1-D array")
				}
				s.laneFail(l, dimerr)
				// The scalar engine fails this lane before the address
				// computation and the access: undo the hoisted bumps the
				// flush just credited it with.
				c := &s.ctrs[l]
				c.IntOps--
				switch space {
				case SpaceGlobal:
					c.GlobalLoads--
				case SpaceLocal:
					c.LocalLoads--
				default:
					c.PrivateAccess--
				}
				continue
			}
			m := base.mem
			off := base.off + ccol[l].asInt()*base.dim1 + dcol[l].asInt()
			if log != nil {
				log.record(site, l, byteAddr(m, off), false)
			}
			if uint64(off) >= uint64(len(m.Data)) {
				_, err := m.load(off)
				s.laneFail(l, err)
				continue
			}
			if isF {
				acol[l].setFloat(m.loadCell(off))
			} else {
				acol[l].setInt(int64(m.loadCell(off)))
			}
		}
	case opStore1:
		acol, bcol, ccol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:]
		base0 := acol[lanes[0]]
		if base0.k != KPtr || base0.mem == nil {
			err := errf(in.pos, "subscript of non-pointer value")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		var log *AccessLog
		switch base0.mem.Space {
		case SpaceGlobal:
			s.segCtr.GlobalStores++
			log = wis[lanes[0]].w.wg.log
		case SpaceLocal:
			s.segCtr.LocalStores++
		default:
			s.segCtr.PrivateAccess++
		}
		isF := base0.mem.Elem == KFloat
		site := int(in.imm)
		for _, l := range lanes {
			base := acol[l]
			m := base.mem
			off := base.off + bcol[l].asInt()
			if log != nil {
				log.record(site, l, byteAddr(m, off), true)
			}
			if uint64(off) >= uint64(len(m.Data)) {
				s.laneFail(l, m.storePlain(off, ccol[l]))
				continue
			}
			if isF {
				m.Data[off] = ccol[l].asFloat()
			} else {
				m.Data[off] = float64(ccol[l].asInt())
			}
		}
	case opStore2:
		acol, bcol, ccol, dcol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:], regs[int(in.d)*w:]
		base0 := acol[lanes[0]]
		if base0.k != KPtr || base0.mem == nil {
			err := errf(in.pos, "subscript of non-pointer value")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		space := base0.mem.Space
		var log *AccessLog
		s.segCtr.IntOps++
		switch space {
		case SpaceGlobal:
			s.segCtr.GlobalStores++
			log = wis[lanes[0]].w.wg.log
		case SpaceLocal:
			s.segCtr.LocalStores++
		default:
			s.segCtr.PrivateAccess++
		}
		isF := base0.mem.Elem == KFloat
		site := int(in.imm)
		var dimerr error
		for _, l := range lanes {
			base := acol[l]
			if base.dim1 <= 0 {
				if dimerr == nil {
					dimerr = errf(in.pos, "2-D subscript of 1-D array")
				}
				s.laneFail(l, dimerr)
				c := &s.ctrs[l]
				c.IntOps--
				switch space {
				case SpaceGlobal:
					c.GlobalStores--
				case SpaceLocal:
					c.LocalStores--
				default:
					c.PrivateAccess--
				}
				continue
			}
			m := base.mem
			off := base.off + bcol[l].asInt()*base.dim1 + ccol[l].asInt()
			if log != nil {
				log.record(site, l, byteAddr(m, off), true)
			}
			if uint64(off) >= uint64(len(m.Data)) {
				s.laneFail(l, m.storePlain(off, dcol[l]))
				continue
			}
			if isF {
				m.Data[off] = dcol[l].asFloat()
			} else {
				m.Data[off] = float64(dcol[l].asInt())
			}
		}
	case opCheckDim:
		acol := regs[int(in.a)*w:]
		for _, l := range lanes {
			if v := acol[l].asInt(); v <= 0 {
				d := vc.declTab[in.imm]
				s.laneFail(l, fmt.Errorf("oclc: %s: array %q dimension %d is %d", d.Pos, d.Name, int(in.c), v))
			}
		}
	case opArray:
		d := vc.declTab[in.imm]
		acol, bcol := regs[int(in.a)*w:], regs[int(in.b)*w:]
		var ccol []rval
		if in.c >= 0 {
			ccol = regs[int(in.c)*w:]
		}
		for _, l := range lanes {
			size := bcol[l].asInt()
			var d1 int64
			if ccol != nil {
				d1 = ccol[l].asInt()
				size *= d1
			}
			const elemBytes = 4
			var mem *Memory
			if d.Type.Space == SpaceLocal {
				var err error
				mem, err = wis[l].w.wg.localAlloc(d, d.Type.Kind, elemBytes, size)
				if err != nil {
					s.laneFail(l, err)
					continue
				}
			} else {
				mem = &Memory{Space: SpacePrivate, Elem: d.Type.Kind, ElemBytes: elemBytes, Data: make([]float64, size)}
			}
			ptr := rval{k: KPtr, mem: mem}
			if ccol != nil {
				ptr.dim1 = d1
			}
			acol[l] = ptr
		}

	case opWIQuery:
		acol := regs[int(in.a)*w:]
		d := int(in.c)
		// Only the IDs vary by lane; every other query is group-uniform and
		// computed once.
		switch in.b {
		case wqGlobalID:
			for _, l := range lanes {
				acol[l].setInt(wis[l].w.gid[d])
			}
		case wqLocalID:
			for _, l := range lanes {
				acol[l].setInt(wis[l].w.lid[d])
			}
		default:
			wc := &wis[lanes[0]].w
			var v int64
			switch in.b {
			case wqGroupID:
				v = wc.wg.grp[d]
			case wqGlobalSize:
				v = wc.wg.launch.Global[d]
			case wqLocalSize:
				v = wc.wg.launch.Local[d]
			case wqNumGroups:
				v = wc.wg.launch.Global[d] / wc.wg.launch.Local[d]
			default: // wqWorkDim
				v = int64(wc.wg.launch.Dims())
			}
			for _, l := range lanes {
				acol[l].setInt(v)
			}
		}
	case opFMA:
		acol, bcol, ccol, dcol := regs[int(in.a)*w:], regs[int(in.b)*w:], regs[int(in.c)*w:], regs[int(in.d)*w:]
		s.segCtr.FMAs++
		for _, l := range lanes {
			acol[l].setFloat(bcol[l].asFloat()*ccol[l].asFloat() + dcol[l].asFloat())
		}
	case opCallBuiltin:
		nargs := int(in.c)
		if cap(s.argBuf) < nargs {
			s.argBuf = make([]rval, nargs)
		}
		ab := s.argBuf[:nargs]
		acol := regs[int(in.a)*w:]
		bfn := vc.builtins[in.imm]
		call := vc.callTab[in.imm]
		for _, l := range lanes {
			for i := 0; i < nargs; i++ {
				ab[i] = regs[(int(in.b)+i)*w+l]
			}
			rv, err := bfn(&wis[l].w, call, ab)
			if err != nil {
				s.laneFail(l, err)
				continue
			}
			acol[l] = rv
		}
	case opCallFn:
		callee := vc.fnTab[in.imm]
		cvc := callee.vm
		s.segCtr.Calls++
		depth := len(s.vframes)
		if depth >= vmMaxDepth {
			err := errf(in.pos, "call depth exceeded")
			for _, l := range lanes {
				s.laneFail(l, err)
			}
			s.rebuildLanes()
			return 0, stepDone
		}
		f.ip = ip + 1
		// Reuse the vector frame (and its SoA columns) pooled at this
		// depth; reuse without zeroing is sound for the same reason as the
		// scalar frames — every register is written before read.
		for cap(s.vframes) <= depth {
			s.vframes = append(s.vframes[:cap(s.vframes)], vecFrame{})
		}
		s.vframes = s.vframes[:depth+1]
		nf := &s.vframes[depth]
		need := cvc.numRegs * w
		if cap(nf.regs) >= need {
			nf.regs = nf.regs[:need]
		} else {
			nf.regs = make([]rval, need)
		}
		nf.fn, nf.vc, nf.ip, nf.dst = callee, cvc, 0, in.a
		for i := range callee.Params {
			src := regs[(int(in.b)+i)*w:]
			dst := nf.regs[callee.Params[i].Slot*w:]
			for _, l := range lanes {
				dst[l] = src[l]
			}
		}
		return 0, stepFrames

	default:
		err := fmt.Errorf("oclc: unknown opcode %d", in.op)
		for _, l := range lanes {
			s.laneFail(l, err)
		}
		s.rebuildLanes()
		return 0, stepDone
	}
	return ip + 1, stepNext
}


// scatter copies every live lane's column state into its per-item scalar
// frames (vmWI), with the top frame's ip at the diverging branch and no
// side effects from it applied — the scalar re-execution of the branch
// reproduces its counters exactly. Lanes that died during the current
// segment scatter as vmDying so the scalar scheduler replays their death
// events in lane order (runScalar); lanes dead from earlier segments had
// their events replayed at a barrier already and stay vmDone.
func (s *vmScheduler) scatter() {
	w := s.width
	wis := s.wis
	nf := len(s.vframes)
	// Frame-0 registers come from a dedicated arena: after a *scalar*
	// launch on this pooled scheduler, wi.frames[0].regs is a slice of
	// s.arena whose capacity extends to the arena's end — reusing it here
	// would write lane-AoS state over the very SoA columns being read.
	// Deeper frames were always individually allocated and are safe to
	// reuse.
	nr0 := s.vframes[0].vc.numRegs
	if need := w * nr0; cap(s.scatArena) >= need {
		s.scatArena = s.scatArena[:need]
	} else {
		s.scatArena = make([]rval, need)
	}
	// Scattered lanes leave the segment: flush their share of the batched
	// counters before the scalar scheduler resumes incrementing per item.
	for _, l := range s.lanes {
		s.ctrs[l].Add(&s.segCtr)
	}
	s.segCtr = Counters{}
	for _, l := range s.lanes {
		wi := &wis[l]
		for cap(wi.frames) < nf {
			wi.frames = append(wi.frames[:cap(wi.frames)], vmFrame{})
		}
		wi.frames = wi.frames[:nf]
		for d := 0; d < nf; d++ {
			vf := &s.vframes[d]
			fr := &wi.frames[d]
			nr := vf.vc.numRegs
			if d == 0 {
				fr.regs = s.scatArena[l*nr0 : (l+1)*nr0]
			} else if cap(fr.regs) >= nr {
				fr.regs = fr.regs[:nr]
			} else {
				fr.regs = make([]rval, nr)
			}
			fr.fn, fr.vc, fr.ip, fr.dst = vf.fn, vf.vc, vf.ip, vf.dst
			for r := 0; r < nr; r++ {
				fr.regs[r] = vf.regs[r*w+l]
			}
		}
		wi.status = vmRunning
	}
	for _, l := range s.diedInSeg {
		wis[l].status = vmDying
	}
	s.diedInSeg = s.diedInSeg[:0]
}

// runScalar drives the scattered group on the scalar cooperative protocol
// (a transcription of runGroup's loop, plus vmDying event replay) until
// either the group finishes (returns false) or a barrier release lets
// every surviving lane re-converge into lockstep (returns true).
//
// The protocol releases waiters only when waiting >= parties, and parties
// counts every lane that still owes an event — so at the moment a release
// fires, no unvisited runnable lane remains in the pass. Breaking out to
// attempt a re-gather and, on failure, restarting the pass from lane 0 is
// therefore order-equivalent to the scalar scheduler's uninterrupted pass.
func (s *vmScheduler) runScalar() bool {
	wis := s.wis
	errs := s.laneErrs
	parties := 0
	live := 0
	for i := range wis {
		switch wis[i].status {
		case vmRunning, vmDying:
			parties++
			live++
		case vmWaiting:
			live++ // unreachable at entry; defensive
		}
	}
	waiting := 0
	release := func() {
		for i := range wis {
			if wis[i].status == vmWaiting {
				wis[i].status = vmRunning
			}
		}
		waiting = 0
	}
	for live > 0 {
		progress := false
		released := false
		for i := range wis {
			wi := &wis[i]
			switch wi.status {
			case vmDying:
				// Replay the death event of a lane that failed mid-segment
				// before the scatter (cyclicBarrier.leave).
				progress = true
				wi.status = vmDone
				live--
				parties--
				if parties > 0 && waiting >= parties {
					if waiting > 0 {
						s.groupDiv = true
					}
					release()
					released = true
				}
			case vmRunning:
				progress = true
				wi.run(s.variant)
				switch wi.status {
				case vmWaiting:
					// cyclicBarrier.await: the last live arriver releases.
					waiting++
					if waiting >= parties {
						release()
						released = true
					}
				case vmDone:
					live--
					errs[i] = wi.err
					parties--
					if parties > 0 && waiting >= parties {
						if waiting > 0 {
							s.groupDiv = true
						}
						release()
						released = true
					}
				}
			default:
				continue
			}
			if released {
				break
			}
		}
		if released && live > 0 {
			if s.tryGather() {
				return true
			}
			continue
		}
		if !progress && !released {
			break // defensive; the barrier protocol cannot starve
		}
	}
	return false
}

// frameWatermark returns the register index below which a suspended scalar
// frame's registers are live. The top frame of a released lane sits just
// past an opBarrier and deeper frames just past an opCallFn, both of which
// record the compiler's temp watermark (opcode.go); registers at or above
// it are dead, so stale per-lane garbage there cannot block a re-gather.
// Anything unexpected falls back to "all registers live" — sound, merely
// stricter.
func frameWatermark(f *vmFrame, top bool) int {
	wm := f.vc.numRegs
	if prev := f.ip - 1; prev >= 0 && prev < len(f.vc.code) {
		in := &f.vc.code[prev]
		if top && in.op == opBarrier {
			wm = int(in.a)
		} else if !top && in.op == opCallFn {
			wm = int(in.d)
		}
	}
	return wm
}

// tryGather attempts to re-converge the surviving lanes into lockstep
// after a barrier release: every live lane must hold an identical frame
// stack (same functions, resume points, and return destinations) with
// per-register kind agreement below each frame's live watermark. On
// success the scalar state is copied back into SoA columns and vector
// bookkeeping is reset for a fresh segment.
func (s *vmScheduler) tryGather() bool {
	wis := s.wis
	w := s.width
	lanes := s.lanes[:0]
	for i := 0; i < w; i++ {
		if wis[i].status == vmRunning {
			lanes = append(lanes, i)
		}
	}
	s.lanes = lanes
	if len(lanes) == 0 {
		return false
	}
	ref := &wis[lanes[0]]
	nf := len(ref.frames)
	for _, l := range lanes[1:] {
		if len(wis[l].frames) != nf {
			return false
		}
	}
	for d := 0; d < nf; d++ {
		rf := &ref.frames[d]
		for _, l := range lanes[1:] {
			of := &wis[l].frames[d]
			if of.fn != rf.fn || of.vc != rf.vc || of.ip != rf.ip || of.dst != rf.dst {
				return false
			}
		}
		wm := frameWatermark(rf, d == nf-1)
		for r := 0; r < wm; r++ {
			k := rf.regs[r].k
			for _, l := range lanes[1:] {
				if wis[l].frames[d].regs[r].k != k {
					return false
				}
			}
		}
	}
	for cap(s.vframes) < nf {
		s.vframes = append(s.vframes[:cap(s.vframes)], vecFrame{})
	}
	s.vframes = s.vframes[:nf]
	for d := 0; d < nf; d++ {
		rf := &ref.frames[d]
		vf := &s.vframes[d]
		vf.fn, vf.vc, vf.ip, vf.dst = rf.fn, rf.vc, rf.ip, rf.dst
		need := rf.vc.numRegs * w
		if d == 0 {
			vf.regs = s.arena[:need]
		} else if cap(vf.regs) >= need {
			vf.regs = vf.regs[:need]
		} else {
			vf.regs = make([]rval, need)
		}
		wm := frameWatermark(rf, d == nf-1)
		for r := 0; r < wm; r++ {
			col := vf.regs[r*w:]
			for _, l := range lanes {
				col[l] = wis[l].frames[d].regs[r]
			}
		}
	}
	for i := 0; i < w; i++ {
		s.laneActive[i] = false
	}
	for _, l := range lanes {
		s.laneActive[l] = true
	}
	s.segLanes = append(s.segLanes[:0], lanes...)
	s.diedInSeg = s.diedInSeg[:0]
	s.lanesDirty = false
	return true
}
