package search

import (
	"math"
	"testing"

	"atf/internal/core"
)

// testSpace builds a 1-D space x ∈ [1,n].
func testSpace(t testing.TB, n int64) *core.Space {
	t.Helper()
	sp, err := core.GenerateFlat([]*core.Param{
		core.NewParam("x", core.NewInterval(1, n)),
	}, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// valley is a single-objective cost with minimum at x = opt.
func valley(opt int64) core.CostFunction {
	return core.ScalarCostFunc(func(cfg *core.Config) float64 {
		d := float64(cfg.Int("x") - opt)
		return 100 + d*d
	})
}

func TestExhaustiveCoversSpaceOnce(t *testing.T) {
	sp := testSpace(t, 50)
	e := NewExhaustive()
	e.Initialize(sp, 1)
	seen := make(map[int64]int)
	for {
		c := e.GetNextConfig()
		if c == nil {
			break
		}
		seen[c.Int("x")]++
		e.ReportCost(core.SingleCost(1))
	}
	e.Finalize()
	if len(seen) != 50 {
		t.Fatalf("covered %d configs, want 50", len(seen))
	}
	for x, n := range seen {
		if n != 1 {
			t.Fatalf("x=%d visited %d times", x, n)
		}
	}
}

func TestExhaustiveFindsProvablyBest(t *testing.T) {
	sp := testSpace(t, 100)
	res, err := core.Explore(sp, NewExhaustive(), valley(73), nil, core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("x") != 73 {
		t.Fatalf("best = %v, want x=73", res.Best)
	}
	if res.Evaluations != 100 {
		t.Fatalf("default abort should test the whole space, evals=%d", res.Evaluations)
	}
}

func TestExhaustiveRestartableViaInitialize(t *testing.T) {
	sp := testSpace(t, 5)
	e := NewExhaustive()
	for round := 0; round < 2; round++ {
		e.Initialize(sp, 1)
		n := 0
		for e.GetNextConfig() != nil {
			n++
		}
		if n != 5 {
			t.Fatalf("round %d: %d configs", round, n)
		}
	}
}

func TestAnnealingConvergesOnValley(t *testing.T) {
	sp := testSpace(t, 1000)
	res, err := core.Explore(sp, NewAnnealing(), valley(700), core.Evaluations(800),
		core.ExploreOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Best.Int("x")
	if got < 650 || got > 750 {
		t.Fatalf("annealing best x=%d, want near 700", got)
	}
}

func TestAnnealingBeatsNothingOnAverage(t *testing.T) {
	// Annealing must clearly beat the cost of the worst configurations on
	// a large rugged space — a sanity bar well below "optimal".
	sp := testSpace(t, 10000)
	cf := core.ScalarCostFunc(func(cfg *core.Config) float64 {
		x := float64(cfg.Int("x"))
		return 1000 + x*0.1 + 50*math.Sin(x/13)
	})
	res, err := core.Explore(sp, NewAnnealing(), cf, core.Evaluations(500),
		core.ExploreOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost.Primary() > 1400 {
		t.Fatalf("annealing stuck at %v", res.BestCost)
	}
}

func TestAnnealingNeverAdoptsInvalid(t *testing.T) {
	sp := testSpace(t, 100)
	cf := core.CostFunc(func(cfg *core.Config) (core.Cost, error) {
		if cfg.Int("x")%2 == 0 {
			return core.InfCost(), nil
		}
		return core.SingleCost(float64(cfg.Int("x"))), nil
	})
	res, err := core.Explore(sp, NewAnnealing(), cf, core.Evaluations(300),
		core.ExploreOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Int("x")%2 == 0 {
		t.Fatalf("best = %v; invalid configs must never win", res.Best)
	}
}

func TestAnnealingAcceptsWorseMoves(t *testing.T) {
	// With the paper's T=4 and normalized costs, mildly worse moves must
	// sometimes be accepted — otherwise it is just hill climbing.
	a := NewAnnealing()
	sp := testSpace(t, 1000)
	a.Initialize(sp, 42)

	// Prime with a starting config of cost 100.
	a.GetNextConfig()
	a.ReportCost(core.SingleCost(100))

	accepted := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		cur := a.current
		a.GetNextConfig()
		a.ReportCost(core.SingleCost(110)) // 10% worse
		if a.current != cur {
			accepted++
			// Reset the walk's cost back to 100 for the next trial.
			a.cost = 100
			a.best = 100
		}
	}
	// P = exp(-0.1/4) ≈ 0.975 — nearly all such moves accepted.
	if accepted < trials/2 {
		t.Fatalf("accepted %d/%d worse moves; annealing too greedy", accepted, trials)
	}
}

func TestAnnealingRejectsCatastrophicMoves(t *testing.T) {
	a := NewAnnealing()
	sp := testSpace(t, 1000)
	a.Initialize(sp, 42)
	a.GetNextConfig()
	a.ReportCost(core.SingleCost(100))

	accepted := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		cur := a.current
		a.GetNextConfig()
		a.ReportCost(core.SingleCost(100000)) // 1000x worse
		if a.current != cur {
			accepted++
			a.cost = 100
			a.best = 100
		}
	}
	if accepted > trials/10 {
		t.Fatalf("accepted %d/%d catastrophic moves", accepted, trials)
	}
}

func TestAnnealingCooling(t *testing.T) {
	a := &Annealing{Temperature: 4, Cooling: 0.5}
	sp := testSpace(t, 10)
	a.Initialize(sp, 1)
	a.GetNextConfig()
	a.ReportCost(core.SingleCost(1))
	a.GetNextConfig()
	a.ReportCost(core.SingleCost(2))
	if a.temp >= 4 {
		t.Fatalf("temperature did not cool: %v", a.temp)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	sp := testSpace(t, 500)
	draw := func(seed int64) []int64 {
		r := NewRandom()
		r.Initialize(sp, seed)
		var xs []int64
		for i := 0; i < 20; i++ {
			xs = append(xs, r.GetNextConfig().Int("x"))
			r.ReportCost(core.SingleCost(1))
		}
		return xs
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce draws")
		}
	}
}

func TestRandomFindsDecentResultEventually(t *testing.T) {
	sp := testSpace(t, 1000)
	res, err := core.Explore(sp, NewRandom(), valley(500), core.Evaluations(300),
		core.ExploreOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Best.Int("x") - 500
	if d < -150 || d > 150 {
		t.Fatalf("random search unusually unlucky: x=%d", res.Best.Int("x"))
	}
}

func TestLocalSearchClimbs(t *testing.T) {
	sp := testSpace(t, 2000)
	res, err := core.Explore(sp, NewLocalSearch(0), valley(1234), core.Evaluations(600),
		core.ExploreOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Best.Int("x") - 1234
	if d < -100 || d > 100 {
		t.Fatalf("local search best x=%d, want near 1234", res.Best.Int("x"))
	}
}

func TestLocalSearchRestarts(t *testing.T) {
	// A deceptive flat cost everywhere except one point: restarts must keep
	// sampling fresh start points instead of freezing.
	sp := testSpace(t, 50)
	l := NewLocalSearch(3)
	l.Initialize(sp, 1)
	starts := make(map[int64]bool)
	for i := 0; i < 200; i++ {
		c := l.GetNextConfig()
		starts[c.Int("x")] = true
		l.ReportCost(core.SingleCost(1)) // never improves after the first
	}
	if len(starts) < 10 {
		t.Fatalf("restarts should diversify proposals, saw %d distinct", len(starts))
	}
}

func TestTechniquesImplementInterface(t *testing.T) {
	var _ core.Technique = NewExhaustive()
	var _ core.Technique = NewAnnealing()
	var _ core.Technique = NewRandom()
	var _ core.Technique = NewLocalSearch(0)
}
