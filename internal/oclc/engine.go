package oclc

import (
	"fmt"
	"sync/atomic"
)

// Engine selects how Launch executes work-items. The lockstep-vectorized
// bytecode VM (vm-vec) is the production engine; the scalar VM remains for
// ablation, and the tree-walking interpreter stays as the reference
// implementation for differential testing (results/interp.md).
// EngineVMNoSpec runs the scalar VM on bytecode compiled without
// define-specialization (no constant folding, no dead-branch
// elimination), isolating the specialization win in the E11 ablation.
type Engine uint8

const (
	// EngineDefault resolves to the process default (SetDefaultEngine).
	EngineDefault Engine = iota
	// EngineVM executes define-specialized bytecode.
	EngineVM
	// EngineWalk executes the AST directly (reference engine).
	EngineWalk
	// EngineVMNoSpec executes unspecialized bytecode (ablation).
	EngineVMNoSpec
	// EngineVMVec executes specialized bytecode in lockstep over a whole
	// work-group (SoA register files, one dispatch per instruction per
	// group), falling back to per-item scalar frames on control-flow
	// divergence (vmvec.go).
	EngineVMVec
)

func (e Engine) String() string {
	switch e {
	case EngineVM:
		return "vm"
	case EngineWalk:
		return "walk"
	case EngineVMNoSpec:
		return "vm-nospec"
	case EngineVMVec:
		return "vm-vec"
	default:
		return "default"
	}
}

// ParseEngine maps the -engine flag values to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default":
		return EngineDefault, nil
	case "vm":
		return EngineVM, nil
	case "walk":
		return EngineWalk, nil
	case "vm-nospec", "nospec":
		return EngineVMNoSpec, nil
	case "vm-vec", "vec":
		return EngineVMVec, nil
	}
	return EngineDefault, fmt.Errorf("oclc: unknown engine %q (want vm-vec, vm, walk, or vm-nospec)", s)
}

// defaultEngine is the process-wide engine used when ExecOptions.Engine is
// EngineDefault. Stored atomically so the -engine escape hatch and tests
// can flip it while exploration workers launch kernels concurrently.
var defaultEngine atomic.Int32

func init() { defaultEngine.Store(int32(EngineVMVec)) }

// SetDefaultEngine selects the process-wide execution engine (the -engine
// flag and harness.Options.Engine land here).
func SetDefaultEngine(e Engine) {
	if e == EngineDefault {
		e = EngineVMVec
	}
	defaultEngine.Store(int32(e))
}

// DefaultEngine returns the process-wide execution engine.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// resolve maps EngineDefault to the process default.
func (e Engine) resolve() Engine {
	if e == EngineDefault {
		return DefaultEngine()
	}
	return e
}
