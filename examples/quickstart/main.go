// Quickstart: the paper's Listing 2, transliterated — auto-tune the saxpy
// kernel's WPT (work-per-thread) and LS (local size) for a fixed input
// size on the (simulated) Tesla K20c using the pre-implemented OpenCL cost
// function and simulated annealing.
package main

import (
	"fmt"
	"log"
	"time"

	"atf"
	"atf/internal/clblast"
)

func main() {
	const n = 1 << 22 // fixed, user-defined input size N

	// Step 1: describe the search space (Listing 2, lines 6-13).
	// WPT ∈ [1, N] must divide N so every work-item gets an equal chunk;
	// LS ∈ [1, N] must divide the global size N/WPT (OpenCL requires it).
	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))

	// Step 2: the pre-implemented OpenCL cost function (lines 15-24).
	// Device chosen by platform and device *name*; random input data is
	// uploaded once; global and local size are arbitrary arithmetic
	// expressions over the tuning parameters.
	cf, err := (&atf.OpenCL{
		Platform: "NVIDIA", Device: "Tesla K20c",
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), // N
			atf.RandomScalar(),   // a
			atf.RandomBuffer(n),  // x
			atf.RandomBuffer(n),  // y
		},
		GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
	}).CostFunction()
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: explore with simulated annealing until the time budget or
	// the evaluation budget runs out (lines 26-28; the paper uses 10
	// minutes — a simulated device needs far less).
	result, err := atf.Tuner{
		Technique:  atf.SimulatedAnnealing(),
		Abort:      atf.AbortOr(atf.Duration(15*time.Second), atf.Evaluations(500)),
		CacheCosts: true,
	}.Tune(cf, wpt, ls)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("search space: %d valid of %s raw configurations\n",
		result.SpaceSize, result.RawSpaceSize)
	fmt.Printf("evaluated:    %d configurations\n", result.Evaluations)
	fmt.Printf("best:         WPT=%d LS=%d  (%.3f ms simulated)\n",
		result.Best.Int("WPT"), result.Best.Int("LS"),
		result.BestCost.Primary()/1e6)
}
