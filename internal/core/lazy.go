package core

import (
	"container/list"
	"encoding/binary"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Lazy streaming space construction (ROADMAP item 2; Willemsen et al.,
// "Efficient Construction of Large Search Spaces for Auto-Tuning",
// arXiv:2509.26253): instead of materializing the arena trie up front,
// generation runs a *counting-only* pass — the constrained nested iteration
// of count.go, memoized on the same (depth, footprint) keys as PR 4's
// subtree sharing — and defers node allocation entirely. `Size` is exact
// after counting alone; `At`/`IndexOf` expand only the sibling blocks on
// the path they touch, caching each expanded block ("slab") in a
// byte-budgeted LRU shared across the space's groups. This removes the
// range caps: XgemmDirect with uncapped 2^10 ranges — a raw product beyond
// 10^19 — counts in seconds and explores under a fixed memory bound, while
// enumeration order stays bit-identical to the eager trie (both modes
// enumerate raw ranges — or sorted divisor hints — in the same order and
// prune the same dead prefixes, so index i resolves to the same
// configuration).
//
// Concurrency: the counting pass chunks the root range across workers with
// in-flight dedup on count-memo entries (each key computed exactly once, so
// checks and node statistics are worker-count invariant, like eager
// generation). After generation, concurrent `At`/`IndexOf` callers dedup
// first-touch expansion through in-flight slab entries the same way:
// whoever misses computes, concurrent toucher-waiters block on the entry's
// done channel, and completed slabs are immutable.

// SpaceMode selects eager or lazy space construction.
type SpaceMode int

const (
	// SpaceAuto (the default) builds small spaces eagerly and switches a
	// group to lazy construction when its raw range product exceeds
	// GenOptions.LazyThreshold.
	SpaceAuto SpaceMode = iota
	// SpaceEager always materializes the arena trie (PR 4 behaviour).
	SpaceEager
	// SpaceLazy always uses counting + on-demand slab expansion.
	SpaceLazy
)

// DefaultLazyThreshold is the raw-range-product above which SpaceAuto
// selects lazy construction for a group. The default keeps every space the
// eager trie handled comfortably (XgemmDirect at range cap 64 has a raw
// product around 10^12) eager, and switches well before materialization
// would become the bottleneck.
const DefaultLazyThreshold = uint64(1) << 44

// errGroupSizeOverflow reports a group whose valid-configuration count does
// not fit in uint64. It travels by panic through the counting recursion
// (including memo entries) and is unwrapped at the worker boundary.
var errGroupSizeOverflow = errors.New("core: group sub-space size overflows uint64")

// rawGroupProduct returns the size of the group's unconstrained Cartesian
// product, saturating at MaxUint64.
func rawGroupProduct(g *Group) uint64 {
	p := uint64(1)
	for _, pa := range g.Params {
		n := uint64(pa.Range.Len())
		if n == 0 {
			return 0
		}
		if p > math.MaxUint64/n {
			return math.MaxUint64
		}
		p *= n
	}
	return p
}

// lazySelected decides whether a group uses lazy construction under opts.
func lazySelected(g *Group, opts GenOptions) bool {
	switch opts.Mode {
	case SpaceLazy:
		return true
	case SpaceEager:
		return false
	}
	thr := opts.LazyThreshold
	if thr == 0 {
		thr = DefaultLazyThreshold
	}
	return rawGroupProduct(g) > thr
}

// addCount adds two subtree counts, panicking with errGroupSizeOverflow on
// uint64 overflow (Size must be exact or an error — never silently wrong).
func addCount(a, b uint64) uint64 {
	if b > math.MaxUint64-a {
		panic(errGroupSizeOverflow)
	}
	return a + b
}

// satAdd adds two statistics counters, saturating at MaxUint64 (logical
// node counts are reporting-only and may legitimately be astronomical).
func satAdd(a, b uint64) uint64 {
	if b > math.MaxUint64-a {
		return math.MaxUint64
	}
	return a + b
}

// countEntry memoizes one subtree's census: the number of valid
// completions below the block (count), the logical vertex count of the
// expanded subtree (vertices, saturating), and the number of live values
// in the block itself (width — what an expanded slab would hold). The
// census is a generation hot path touched millions of times on
// 10^19-range spaces, so the completion protocol avoids a channel per
// entry: ready flips once the fields are published, and a waiters channel
// is created only when a second worker actually encounters the entry in
// flight.
type countEntry struct {
	count    uint64
	vertices uint64
	width    uint64
	panicked any
	ready    atomic.Uint32 // 1 once count/vertices/width (or panicked) are published
	waiters  chan struct{} // created by the first waiter, closed on completion
}

// countShard is one lock stripe of the census memo. Entries are allocated
// from block arenas (pointers into fixed-capacity slabs, never moved) to
// keep millions of small entries off the allocator's and the garbage
// collector's hot paths.
type countShard struct {
	mu    sync.Mutex
	m     map[string]*countEntry
	arena []countEntry
}

const countShards = 64

// countTable is the per-group census memo shared by counting workers and,
// after generation, consulted by slab expansion for child counts.
type countTable struct {
	shards [countShards]countShard
}

func newCountTable() *countTable {
	t := &countTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*countEntry)
	}
	return t
}

func (t *countTable) shardFor(key []byte) *countShard {
	h := uint32(2166136261) // FNV-1a
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return &t.shards[h%countShards]
}

// lookup returns the entry for key and whether it already existed; a new
// entry is owned by the caller, who must fill it and call complete (also
// on panic, with panicked set first).
func (t *countTable) lookup(key []byte) (*countEntry, *countShard, bool) {
	s := t.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[string(key)]; ok {
		s.mu.Unlock()
		return e, s, true
	}
	if len(s.arena) == cap(s.arena) {
		s.arena = make([]countEntry, 0, 512)
	}
	s.arena = append(s.arena, countEntry{})
	e := &s.arena[len(s.arena)-1]
	s.m[string(key)] = e
	s.mu.Unlock()
	return e, s, false
}

// complete publishes an entry's fields and wakes any waiters.
func (s *countShard) complete(e *countEntry) {
	s.mu.Lock()
	e.ready.Store(1)
	w := e.waiters
	s.mu.Unlock()
	if w != nil {
		close(w)
	}
}

// wait blocks until the entry is complete (fast-pathed by the caller's
// ready check; this is the slow path taken only during a genuine race).
func (s *countShard) wait(e *countEntry) {
	s.mu.Lock()
	if e.ready.Load() == 1 {
		s.mu.Unlock()
		return
	}
	if e.waiters == nil {
		e.waiters = make(chan struct{})
	}
	w := e.waiters
	s.mu.Unlock()
	<-w
}

// widthSum totals the live block widths of all memoized subtrees — the
// unique-node count contribution of the table-backed depths.
func (t *countTable) widthSum() uint64 {
	var sum uint64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			sum += e.width
		}
		s.mu.Unlock()
	}
	return sum
}

// slab is one expanded sibling block: the live values of a parameter given
// a prefix footprint, with block-local cumulative leaf counts (cum[i] =
// leaves under values preceding i; nil at the leaf level). Immutable once
// published, so readers need no lock after the entry's done channel closes.
type slab struct {
	vals  []Value
	cum   []uint64
	bytes int64
}

// slabEntry is one slab cache slot. While an expansion is in flight the
// entry is in the map but not on the LRU (elem nil, not evictable); commit
// publishes the slab, links it into the LRU and closes done.
type slabEntry struct {
	key      string
	done     chan struct{}
	s        *slab
	owner    *lazyTree
	bytes    int64
	elem     *list.Element
	panicked any
}

// slabCache is the byte-budgeted LRU over expanded slabs, shared by all
// lazy groups of one space so the budget bounds the whole space's resident
// expansion memory. budget <= 0 means unbounded.
type slabCache struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	m        map[string]*slabEntry
	lru      *list.List // front = most recently touched
	ids      uint32
}

func newSlabCache(budget int64) *slabCache {
	return &slabCache{budget: budget, m: make(map[string]*slabEntry), lru: list.New()}
}

// nextID hands out the per-tree key prefix distinguishing groups that
// share one cache.
func (c *slabCache) nextID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ids++
	return c.ids
}

// lookup returns the entry for key and whether it already existed,
// refreshing its LRU position on a hit. A new entry is owned by the
// caller, who must expand and commit it (or abort on panic).
func (c *slabCache) lookup(key []byte) (*slabEntry, bool) {
	c.mu.Lock()
	if e, ok := c.m[string(key)]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		return e, true
	}
	e := &slabEntry{key: string(key), done: make(chan struct{})}
	c.m[e.key] = e
	c.mu.Unlock()
	return e, false
}

// commit publishes a freshly expanded slab: accounts its bytes, links it
// into the LRU, evicts cold slabs past the budget (never the slab just
// committed — progress is guaranteed even when one slab alone exceeds the
// budget), and wakes waiters.
func (c *slabCache) commit(e *slabEntry, owner *lazyTree) {
	c.mu.Lock()
	e.bytes = e.s.bytes
	e.owner = owner
	c.resident += e.bytes
	e.elem = c.lru.PushFront(e)
	owner.resident.Add(e.bytes)
	owner.expansions.Add(1)
	mSpaceLazyExpansions.Inc()
	if c.budget > 0 {
		for c.resident > c.budget {
			back := c.lru.Back()
			if back == nil {
				break
			}
			v := back.Value.(*slabEntry)
			if v == e {
				break
			}
			c.lru.Remove(back)
			delete(c.m, v.key)
			c.resident -= v.bytes
			v.owner.resident.Add(-v.bytes)
			v.owner.evictions.Add(1)
			mSpaceLazyEvictions.Inc()
		}
	}
	mSpaceLazyResident.Set(c.resident)
	c.mu.Unlock()
	close(e.done)
}

// abort withdraws an in-flight entry whose expansion panicked so later
// touches retry; the caller stores e.panicked first, and waiters re-raise.
func (c *slabCache) abort(e *slabEntry) {
	c.mu.Lock()
	delete(c.m, e.key)
	c.mu.Unlock()
	close(e.done)
}

// lazyTree is the streaming representation of one group sub-space: the
// census memo from the counting pass plus the shared slab cache. The
// owning Tree delegates fill/indexOf here.
type lazyTree struct {
	params []*Param
	names  []string
	// keyfoot[d] is the key projection for subtrees at depth d: the exact
	// suffix footprint when every remaining constraint declares its reads,
	// otherwise the full prefix [0, d) — consistent up the tree because
	// footprint inexactness is sticky toward the root (footprint.go).
	keyfoot [][]int
	// shareable[d] reports whether distinct prefixes can project onto a
	// common key at depth d. A suffix footprint can only shed positions
	// moving down the tree — keyfoot[d] ⊆ keyfoot[d-1] ∪ {d-1} — so sharing
	// requires the inclusion to be strict; at equality every visit carries a
	// unique key and the census memo cannot hit during counting. The
	// counting pass skips the table entirely at such depths (the bulk of all
	// blocks on deep spaces), trading the dominant map/allocation cost for a
	// bounded re-scan of the thin skipped layers when a slab later expands.
	shareable []bool
	// sealed flips once counting finishes: after that, skipped depths use
	// the table too, so expansion-time re-counts are memoized across
	// touches instead of repeating per expansion.
	sealed bool
	counts *countTable
	slabs  *slabCache
	id     uint32 // key prefix within the shared slab cache
	total  uint64

	checks     atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	skipWidth  atomic.Uint64 // block widths at skipped depths (unique-node tally)
	resident   atomic.Int64
	expansions atomic.Uint64
	evictions  atomic.Uint64
}

// generateLazyGroup runs the counting pass for one group and returns a
// Tree whose lookups expand on demand. The pass performs exactly the
// constraint checks eager memoized generation would (each subtree key is
// counted once; non-shareable subtrees have full-prefix keys, unique per
// prefix, so they too are counted once per visit), which also means any
// deterministic constraint panic still surfaces at generation time.
func generateLazyGroup(g *Group, opts GenOptions) (*Tree, error) {
	if opts.census == nil {
		// GenerateSpace decodes once for all groups; direct GenerateGroup
		// callers decode here.
		opts.census = decodeCensus(opts.Census)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := g.Names()
	n := len(g.Params)
	foot, _, exact := suffixFootprints(g.Params)
	keyfoot := make([][]int, n)
	for d := 1; d < n; d++ {
		if exact[d] {
			keyfoot[d] = foot[d]
		} else {
			full := make([]int, d)
			for i := range full {
				full[i] = i
			}
			keyfoot[d] = full
		}
	}
	shareable := make([]bool, n)
	for d := 1; d < n; d++ {
		shareable[d] = len(keyfoot[d]) <= len(keyfoot[d-1])
	}
	slabs := opts.slabs
	if slabs == nil {
		slabs = newSlabCache(opts.MaxArenaBytes)
	}
	lt := &lazyTree{
		params:    g.Params,
		names:     names,
		keyfoot:   keyfoot,
		shareable: shareable,
		counts:    newCountTable(),
		slabs:     slabs,
		id:        slabs.nextID(),
	}
	t := &Tree{params: g.Params, names: names, lazy: lt}

	rootLen := g.Params[0].Range.Len()
	if rootLen == 0 {
		return t, nil
	}
	// Warm start: a persisted census of this group's signature replaces the
	// counting pass (census.go); sealed trees recompute any missing memo
	// entry on demand, so a partial snapshot is still safe.
	if cg, ok := opts.census[censusSig(g.Params)]; ok {
		restoreCensus(t, lt, cg)
		return t, nil
	}
	mCensusRuns.Inc()
	if workers > rootLen {
		workers = rootLen
	}

	// Chunk the root range across workers like GenerateGroup; the census
	// memo is shared with in-flight dedup, so each subtree key is counted
	// by exactly one worker and the statistics are worker-count invariant.
	type chunkResult struct {
		count, vertices, width uint64
		err                    error
	}
	results := make([]chunkResult, workers)
	var wg sync.WaitGroup
	chunk := (rootLen + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rootLen {
			hi = rootLen
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &workerState{cfg: NewConfig(names)}
			defer func() {
				lt.checks.Add(st.checks)
				lt.hits.Add(st.hits)
				lt.misses.Add(st.misses)
				if r := recover(); r != nil {
					if r == errGroupSizeOverflow {
						results[w].err = errGroupSizeOverflow
						return
					}
					results[w].err = annotatePanic(r, g.Params, st)
				}
			}()
			c, vtx, width := lt.countScan(st, 0, lo, hi)
			results[w] = chunkResult{count: c, vertices: vtx, width: width}
		}(w, lo, hi)
	}
	wg.Wait()

	var total, vertices, rootWidth uint64
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.count > math.MaxUint64-total {
			return nil, errGroupSizeOverflow
		}
		total += r.count
		vertices = satAdd(vertices, r.vertices)
		rootWidth += r.width
	}
	lt.total = total
	lt.sealed = true
	t.total = total
	t.checks = lt.checks.Load()
	t.memoHits = lt.hits.Load()
	t.memoMisses = lt.misses.Load()
	t.logicalNodes = vertices
	t.uniqueNodes = rootWidth + lt.counts.widthSum() + lt.skipWidth.Load()
	return t, nil
}

// countScan enumerates the candidates of parameter depth d restricted to
// raw-range indices [lo, hi) against the current prefix and returns the
// number of valid completions, the logical vertex count of the expanded
// forest, and the number of live values in this block. It mirrors
// groupBuilder.build, including the divisor-hint fast path and dead-prefix
// pruning, without allocating nodes.
func (lt *lazyTree) countScan(st *workerState, d, lo, hi int) (count, vertices, width uint64) {
	p := lt.params[d]
	last := d == len(lt.params)-1

	visit := func(v Value) {
		st.checks++
		st.depth, st.val = d, v
		if !p.Accepts(v, st.cfg) {
			return
		}
		if last {
			count++
			vertices++
			width++
			return
		}
		st.cfg.set(d, v)
		c, vtx := lt.countDescend(st, d+1)
		if c == 0 {
			return // dead prefix: no valid completion exists
		}
		count = addCount(count, c)
		vertices = satAdd(vertices, satAdd(vtx, 1))
		width++
	}

	if vals, ok := hintedValues(p, st.cfg, lo, hi); ok {
		for _, v := range vals {
			visit(Int(v))
		}
	} else {
		for i := lo; i < hi; i++ {
			visit(p.Range.At(i))
		}
	}
	return count, vertices, width
}

// countDescend memoizes the census of the subtree below the current prefix
// at depth d, keyed on (depth, keyfoot projection). The first encounter
// counts; concurrent encounters wait on the in-flight entry; later ones
// reuse the stored census. Slab expansion calls this too — on the paths it
// walks every key was already counted during generation, so post-generation
// lookups are pure hits.
func (lt *lazyTree) countDescend(st *workerState, d int) (count, vertices uint64) {
	if !lt.sealed && !lt.shareable[d] {
		// This depth's keys carry the full identity of their parent block
		// plus the branching value, so each is visited exactly once during
		// counting and the memo could never hit: count directly, recording
		// only the block width for the unique-node tally. (After sealing,
		// expansion-time re-counts of these depths do go through the table
		// so repeated touches share.)
		st.misses++
		c, vtx, w := lt.countScan(st, d, 0, lt.params[d].Range.Len())
		lt.skipWidth.Add(w)
		return c, vtx
	}
	st.keybuf = memoKeyAppend(st.keybuf[:0], d, lt.keyfoot[d], st.cfg)
	e, sh, existed := lt.counts.lookup(st.keybuf)
	if existed {
		st.hits++
		if e.ready.Load() != 1 {
			sh.wait(e)
		}
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.count, e.vertices
	}
	st.misses++
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(genPanic); !ok && r != errGroupSizeOverflow {
				r = genPanic{name: lt.params[st.depth].Name, depth: st.depth, val: st.val, cause: r}
			}
			e.panicked = r
			sh.complete(e)
			panic(r)
		}
	}()
	c, vtx, width := lt.countScan(st, d, 0, lt.params[d].Range.Len())
	e.count, e.vertices, e.width = c, vtx, width
	sh.complete(e)
	return c, vtx
}

// slabKey encodes the identity of the sibling block at depth d under the
// prefix held in cfg (a space-level configuration; offset locates the
// group): the tree id, the depth, and the keyfoot-projected prefix values.
func (lt *lazyTree) slabKey(buf []byte, d int, cfg *Config, offset int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, lt.id)
	buf = append(buf, byte(d))
	for _, p := range lt.keyfoot[d] {
		buf = appendValueKey(buf, cfg.At(offset+p))
	}
	return buf
}

// slabFor returns the expanded sibling block at depth d for the prefix in
// cfg, expanding it on first touch. Expansion is deduped through in-flight
// entries: concurrent touches of the same key block until the first
// toucher commits.
func (lt *lazyTree) slabFor(d int, cfg *Config, offset int, keybuf []byte) (*slab, []byte) {
	keybuf = lt.slabKey(keybuf[:0], d, cfg, offset)
	e, existed := lt.slabs.lookup(keybuf)
	if existed {
		<-e.done
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.s, keybuf
	}
	return lt.expand(e, d, cfg, offset), keybuf
}

// expand materializes one sibling block: it re-runs the constrained
// enumeration of depth d under the prefix (copied into a scratch
// configuration so the caller's is never mutated), keeps the live values —
// accepted and, below the leaf level, with a non-zero completion count
// from the census memo — and records block-local cumulative leaf counts.
// The enumeration order is the eager trie's (raw range order, or sorted
// divisor hints), so slab indices agree with arena indices bit for bit.
func (lt *lazyTree) expand(e *slabEntry, d int, cfg *Config, offset int) *slab {
	st := &workerState{cfg: NewConfig(lt.names)}
	for i := 0; i < d; i++ {
		st.cfg.set(i, cfg.At(offset+i))
	}
	defer func() {
		if r := recover(); r != nil {
			err := annotatePanic(r, lt.params, st)
			e.panicked = err
			lt.slabs.abort(e)
			panic(err)
		}
	}()
	p := lt.params[d]
	last := d == len(lt.params)-1
	s := &slab{}
	var run uint64

	visit := func(v Value) {
		st.depth, st.val = d, v
		if !p.Accepts(v, st.cfg) {
			return
		}
		if last {
			s.vals = append(s.vals, v)
			return
		}
		st.cfg.set(d, v)
		c, _ := lt.countDescend(st, d+1)
		if c == 0 {
			return
		}
		s.vals = append(s.vals, v)
		s.cum = append(s.cum, run)
		run += c
	}

	if vals, ok := hintedValues(p, st.cfg, 0, p.Range.Len()); ok {
		for _, v := range vals {
			visit(Int(v))
		}
	} else {
		full := p.Range.Len()
		for i := 0; i < full; i++ {
			visit(p.Range.At(i))
		}
	}
	const valSize = int64(unsafe.Sizeof(Value{}))
	s.bytes = int64(len(s.vals))*valSize + int64(len(s.cum))*8 + int64(len(e.key))
	e.s = s
	lt.slabs.commit(e, lt)
	return s
}

// fill writes the configuration with in-group index idx into cfg at the
// given parameter offset, expanding exactly the blocks on the index's
// path. Within each block the child holding idx is found by binary search
// over the block-local cumulative leaf counts, as in the eager arena.
func (lt *lazyTree) fill(idx uint64, cfg *Config, offset int) {
	if idx >= lt.total {
		panic("core: tree index out of range")
	}
	var keybuf []byte
	last := len(lt.params) - 1
	for d := 0; d <= last; d++ {
		var s *slab
		s, keybuf = lt.slabFor(d, cfg, offset, keybuf)
		if d == last {
			cfg.set(offset+d, s.vals[idx])
			return
		}
		a, b := 0, len(s.vals)
		for b-a > 1 {
			mid := a + (b-a)/2
			if s.cum[mid] <= idx {
				a = mid
			} else {
				b = mid
			}
		}
		cfg.set(offset+d, s.vals[a])
		idx -= s.cum[a]
	}
}

// indexOf returns the in-group index of the configuration stored in cfg at
// the given offset, and whether it is a member. The walk expands only
// blocks along valid prefixes: a value missing from its level's slab
// returns false before any deeper block is touched, so non-member
// configurations never force expansion under invalid prefixes.
func (lt *lazyTree) indexOf(cfg *Config, offset int) (uint64, bool) {
	var idx uint64
	var keybuf []byte
	last := len(lt.params) - 1
	for d := 0; d <= last; d++ {
		var s *slab
		s, keybuf = lt.slabFor(d, cfg, offset, keybuf)
		want := cfg.At(offset + d)
		found := false
		for j, v := range s.vals {
			if v.Equal(want) {
				if d == last {
					idx += uint64(j)
				} else {
					idx += s.cum[j]
				}
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return idx, true
}
