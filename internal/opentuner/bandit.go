package opentuner

import "math"

// AUCBandit is OpenTuner's meta-technique: a multi-armed bandit with
// sliding-window Area-Under-the-Curve credit assignment. Each arm is a
// SubTechnique; an arm earns credit when a point it proposed became the new
// global best. Arm selection maximizes
//
//	AUC(arm) + C * sqrt(2 * log(history) / uses(arm)),
//
// where AUC weighs recent successes more heavily than old ones, so the
// bandit shifts trials toward whichever technique is currently paying off.
type AUCBandit struct {
	// C is the exploration constant (OpenTuner default 0.05).
	C float64
	// Window is the sliding history length (OpenTuner default 500).
	Window int

	arms    []*armState
	history int
}

type armState struct {
	// outcomes is the sliding window of 0/1 results for this arm's uses.
	outcomes []bool
	uses     int
}

// NewAUCBandit builds a bandit over n arms with OpenTuner's defaults.
func NewAUCBandit(n int) *AUCBandit {
	b := &AUCBandit{C: 0.05, Window: 500}
	b.arms = make([]*armState, n)
	for i := range b.arms {
		b.arms[i] = &armState{}
	}
	return b
}

// Select returns the arm to use next.
func (b *AUCBandit) Select() int {
	bestArm, bestScore := 0, math.Inf(-1)
	for i, a := range b.arms {
		var score float64
		if a.uses == 0 {
			// Unused arms are tried first, in order.
			score = math.Inf(1) - float64(i)
			if score > bestScore {
				bestArm, bestScore = i, score
			}
			continue
		}
		score = a.auc() + b.C*math.Sqrt(2*math.Log(float64(b.history+1))/float64(a.uses))
		if score > bestScore {
			bestArm, bestScore = i, score
		}
	}
	return bestArm
}

// Record registers the outcome of one use of an arm: improved indicates
// the proposed point became the new global best.
func (b *AUCBandit) Record(arm int, improved bool) {
	a := b.arms[arm]
	a.outcomes = append(a.outcomes, improved)
	if len(a.outcomes) > b.Window {
		a.outcomes = a.outcomes[1:]
	}
	a.uses++
	b.history++
}

// auc computes the exponentially-recency-weighted area under the curve for
// the arm's outcome window: outcome i (0-based, oldest first) contributes
// weight i+1. An empty window scores 0.
func (a *armState) auc() float64 {
	if len(a.outcomes) == 0 {
		return 0
	}
	var num, den float64
	for i, ok := range a.outcomes {
		w := float64(i + 1)
		den += w
		if ok {
			num += w
		}
	}
	return num / den
}

// Uses returns how often the arm has been selected (tests, reporting).
func (b *AUCBandit) Uses(arm int) int { return b.arms[arm].uses }
