package perfmodel

import (
	"testing"

	"atf/internal/oclc"
)

// launchSaxpy compiles and sample-executes the saxpy kernel with the given
// tuning parameters, returning the estimate on dev.
func launchSaxpy(t *testing.T, dev *Device, n, wpt, ls int64) *Estimate {
	t.Helper()
	src := `
__kernel void saxpy(const int N, const float a,
                    __global float* x, __global float* y) {
  for (int w = 0; w < WPT; w++) {
    const int id = w * get_global_size(0) + get_global_id(0);
    y[id] = a * x[id] + y[id];
  }
}`
	prog, err := oclc.Compile(src, map[string]string{"WPT": itoa(wpt)})
	if err != nil {
		t.Fatal(err)
	}
	x := oclc.NewGlobalMemory(1, oclc.KFloat, 4, int(n))
	y := oclc.NewGlobalMemory(2, oclc.KFloat, 4, int(n))
	res, err := prog.Launch("saxpy",
		[]oclc.Arg{oclc.IntArg(n), oclc.FloatArg(2), oclc.BufArg(x), oclc.BufArg(y)},
		oclc.NDRange1D(n/wpt, ls),
		oclc.ExecOptions{SampleGroups: 1, RecordAccesses: true})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Dev: dev}
	est, err := m.EstimateLaunch(oclc.NDRange1D(n/wpt, ls), res, "")
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestDeviceCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat["NVIDIA"]) != 2 || len(cat["Intel"]) != 1 {
		t.Fatalf("catalog unexpected: %v", cat)
	}
	if XeonE5_2640v2x2().Type != CPU || TeslaK20m().Type != GPU {
		t.Fatal("device types wrong")
	}
	if TeslaK20c().Name == TeslaK20m().Name {
		t.Fatal("K20c must be distinguishable")
	}
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("type names wrong")
	}
}

func TestEstimatePositiveAndFinite(t *testing.T) {
	for _, dev := range []*Device{XeonE5_2640v2x2(), TeslaK20m()} {
		est := launchSaxpy(t, dev, 1<<16, 4, 64)
		if est.TimeNs <= 0 {
			t.Fatalf("%s: non-positive time %v", dev.Name, est.TimeNs)
		}
		if est.Waves <= 0 || est.ConcurrentWGs <= 0 {
			t.Fatalf("%s: degenerate schedule %+v", dev.Name, est)
		}
	}
}

func TestSaxpyCoalescedUnitStride(t *testing.T) {
	// saxpy with the CLBlast indexing (id = w*gsize + gid) is unit-stride
	// across work-items for every w — near-perfect coalescing.
	est := launchSaxpy(t, TeslaK20m(), 1<<14, 4, 64)
	if est.CoalesceEff < 0.9 {
		t.Fatalf("coalescing efficiency = %v, want ~1", est.CoalesceEff)
	}
}

func TestGPUPrefersWarpMultipleWorkGroups(t *testing.T) {
	// 48 work-items per group wastes half of the second warp; 64 fills
	// both. With equal total work the warp-aligned variant must not be
	// slower. (Use a power-of-two N so both divide evenly.)
	aligned := launchSaxpy(t, TeslaK20m(), 1<<14, 1, 64)
	misaligned := launchSaxpy(t, TeslaK20m(), 1<<14, 1, 16)
	if aligned.TimeNs > misaligned.TimeNs {
		t.Fatalf("64-wide groups (%v ns) should beat 16-wide (%v ns) on GPU",
			aligned.TimeNs, misaligned.TimeNs)
	}
}

func TestCPUHatesTinyWorkGroups(t *testing.T) {
	// On the CPU model, scheduling 4096 one-item work-groups costs far
	// more than 64 groups of 64: per-group dispatch dominates.
	many := launchSaxpy(t, XeonE5_2640v2x2(), 1<<12, 1, 1)
	few := launchSaxpy(t, XeonE5_2640v2x2(), 1<<12, 64, 64)
	if few.TimeNs >= many.TimeNs {
		t.Fatalf("fat work-groups (%v ns) should beat tiny ones (%v ns) on CPU",
			few.TimeNs, many.TimeNs)
	}
}

func TestWPTReducesParallelismTradeoff(t *testing.T) {
	// Huge WPT with one work-group leaves all but one CU idle on the GPU;
	// moderate WPT should win at large N.
	moderate := launchSaxpy(t, TeslaK20m(), 1<<16, 4, 128)
	extreme := launchSaxpy(t, TeslaK20m(), 1<<16, 1<<12, 16)
	if moderate.TimeNs >= extreme.TimeNs {
		t.Fatalf("moderate WPT (%v ns) should beat extreme WPT (%v ns)",
			moderate.TimeNs, extreme.TimeNs)
	}
}

func TestWorkGroupTooLargeRejected(t *testing.T) {
	src := `__kernel void k(__global float* o) { o[get_global_id(0)] = 1.0f; }`
	prog, err := oclc.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := oclc.NewGlobalMemory(1, oclc.KFloat, 4, 2048)
	res, err := prog.Launch("k", []oclc.Arg{oclc.BufArg(o)},
		oclc.NDRange1D(2048, 2048), oclc.ExecOptions{SampleGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Dev: TeslaK20m()} // max WG size 1024
	if _, err := m.EstimateLaunch(oclc.NDRange1D(2048, 2048), res, ""); err == nil {
		t.Fatal("work-group larger than device max must be rejected")
	}
}

func TestLocalMemoryOverflowRejected(t *testing.T) {
	src := `
__kernel void k(__global float* o) {
  __local float tile[BIG];
  tile[get_local_id(0)] = 1.0f;
  barrier(0);
  o[get_global_id(0)] = tile[0];
}`
	prog, err := oclc.Compile(src, map[string]string{"BIG": "20000"}) // 80 KB
	if err != nil {
		t.Fatal(err)
	}
	o := oclc.NewGlobalMemory(1, oclc.KFloat, 4, 64)
	res, err := prog.Launch("k", []oclc.Arg{oclc.BufArg(o)},
		oclc.NDRange1D(64, 64), oclc.ExecOptions{SampleGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Dev: TeslaK20m()} // 48 KB local
	if _, err := m.EstimateLaunch(oclc.NDRange1D(64, 64), res, ""); err == nil {
		t.Fatal("local memory overflow must be rejected")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	src := `__kernel void k(__global float* o) { o[get_global_id(0)] = 1.0f; }`
	prog, err := oclc.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := oclc.NewGlobalMemory(1, oclc.KFloat, 4, 256)
	res, err := prog.Launch("k", []oclc.Arg{oclc.BufArg(o)},
		oclc.NDRange1D(256, 64), oclc.ExecOptions{SampleGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{Dev: TeslaK20m(), Jitter: 0.02}
	a, err := m.EstimateLaunch(oclc.NDRange1D(256, 64), res, "sig-A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateLaunch(oclc.NDRange1D(256, 64), res, "sig-A")
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EstimateLaunch(oclc.NDRange1D(256, 64), res, "sig-B")
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeNs != b.TimeNs {
		t.Fatal("jitter must be deterministic per signature")
	}
	if a.TimeNs == c.TimeNs {
		t.Fatal("different signatures should jitter differently")
	}
	ratio := a.TimeNs / c.TimeNs
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("jitter out of bounds: ratio %v", ratio)
	}
}

func TestStridedAccessHurtsCoalescing(t *testing.T) {
	// Stride-32 float accesses touch one 128-byte line per work-item —
	// transactions explode versus unit stride.
	strided := `
__kernel void k(__global float* x, __global float* o) {
  o[get_global_id(0)] = x[get_global_id(0) * 32];
}`
	unit := `
__kernel void k(__global float* x, __global float* o) {
  o[get_global_id(0)] = x[get_global_id(0)];
}`
	run := func(src string) *Estimate {
		prog, err := oclc.Compile(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := oclc.NewGlobalMemory(1, oclc.KFloat, 4, 64*32)
		o := oclc.NewGlobalMemory(2, oclc.KFloat, 4, 64)
		res, err := prog.Launch("k", []oclc.Arg{oclc.BufArg(x), oclc.BufArg(o)},
			oclc.NDRange1D(64, 64), oclc.ExecOptions{SampleGroups: 1, RecordAccesses: true})
		if err != nil {
			t.Fatal(err)
		}
		m := &Model{Dev: TeslaK20m()}
		est, err := m.EstimateLaunch(oclc.NDRange1D(64, 64), res, "")
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	s, u := run(strided), run(unit)
	if s.Transactions <= u.Transactions {
		t.Fatalf("strided transactions (%d) must exceed unit-stride (%d)",
			s.Transactions, u.Transactions)
	}
	if s.CoalesceEff >= u.CoalesceEff {
		t.Fatalf("strided coalescing (%v) must be worse than unit (%v)",
			s.CoalesceEff, u.CoalesceEff)
	}
}
