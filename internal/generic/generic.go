// Package generic implements ATF's generic cost function for auto-tuning
// programs "written in an arbitrary programming language, using an
// arbitrary objective" (paper, Section II Step 2): the user provides a
// source file, a compile script and a run script; tuning-parameter values
// are passed to the scripts, and the cost is either read from a log file
// the program writes (comma-separated values for multi-objective tuning)
// or, if no log file is configured, measured as the program's runtime.
package generic

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"atf/internal/core"
)

// CostFunction runs external compile/run scripts per configuration.
type CostFunction struct {
	// SourcePath is the path to the program's source file, exported to
	// the scripts as ATF_SOURCE.
	SourcePath string
	// CompileScript and RunScript are executable script paths. The
	// configuration is passed as environment variables ATF_TP_<NAME>
	// and, for the compile script, as -DNAME=VALUE pairs in ATF_DEFINES.
	CompileScript string
	RunScript     string
	// LogFile, when set, is read after the run script finishes; the
	// program writes its cost(s) there, comma-separated. When empty, the
	// run script's wall-clock time in nanoseconds is the cost.
	LogFile string
	// Timeout bounds each script execution (default 1 minute).
	Timeout time.Duration

	// mu serializes evaluations: the compile/run scripts share the source
	// path and log file, so concurrent runs would corrupt each other.
	// Parallel exploration therefore stays correct with the generic cost
	// function — it just gains no throughput from extra workers.
	mu sync.Mutex
}

// Cost implements core.CostFunction.
func (g *CostFunction) Cost(cfg *core.Config) (core.Cost, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	timeout := g.Timeout
	if timeout == 0 {
		timeout = time.Minute
	}
	env := g.environment(cfg)

	if g.CompileScript != "" {
		if err := runScript(g.CompileScript, env, timeout); err != nil {
			return nil, fmt.Errorf("generic: compile failed: %w", err)
		}
	}
	if g.RunScript == "" {
		return nil, fmt.Errorf("generic: no run script configured")
	}
	start := time.Now()
	if err := runScript(g.RunScript, env, timeout); err != nil {
		return nil, fmt.Errorf("generic: run failed: %w", err)
	}
	elapsed := time.Since(start)

	if g.LogFile == "" {
		return core.SingleCost(float64(elapsed.Nanoseconds())), nil
	}
	return ParseCostLog(g.LogFile)
}

// environment renders the configuration for the scripts.
func (g *CostFunction) environment(cfg *core.Config) []string {
	env := os.Environ()
	if g.SourcePath != "" {
		env = append(env, "ATF_SOURCE="+g.SourcePath)
	}
	var defines []string
	for name, val := range cfg.Defines() {
		env = append(env, "ATF_TP_"+name+"="+val)
		defines = append(defines, "-D"+name+"="+val)
	}
	env = append(env, "ATF_DEFINES="+strings.Join(defines, " "))
	if g.LogFile != "" {
		env = append(env, "ATF_LOG="+g.LogFile)
	}
	return env
}

func runScript(path string, env []string, timeout time.Duration) error {
	cmd := exec.Command(path)
	cmd.Env = env
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		return err
	}
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return fmt.Errorf("script %s timed out after %v", path, timeout)
	}
}

// ParseCostLog reads comma-separated costs from a log file — the
// multi-objective format of ATF's generic cost function. The last
// non-empty line wins, so programs may append per run.
func ParseCostLog(path string) (core.Cost, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("generic: reading cost log: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var last string
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.TrimSpace(lines[i]) != "" {
			last = strings.TrimSpace(lines[i])
			break
		}
	}
	if last == "" {
		return nil, fmt.Errorf("generic: cost log %s is empty", path)
	}
	parts := strings.Split(last, ",")
	cost := make(core.Cost, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("generic: bad cost value %q in %s", p, path)
		}
		cost = append(cost, v)
	}
	return cost, nil
}
