package core

import (
	"fmt"
	"sort"
)

// Range describes the raw (unconstrained) values a tuning parameter may
// take: either an interval with an optional step size and generator
// function, or an explicit set (Section II, Step 1 of the paper).
//
// Ranges are indexable so that generation can iterate them without
// materializing, and so smart iteration (see SmartIterator) can skip raw
// values cheaply.
type Range interface {
	// Len returns the number of raw values in the range.
	Len() int
	// At returns the i-th raw value, 0 <= i < Len().
	At(i int) Value
	// Kind returns the kind of the values produced by the range.
	Kind() Kind
	// String renders a short human-readable description.
	String() string
}

// Generator maps an interval index to a domain-specific value, mirroring
// ATF's optional generator argument of atf::interval (e.g. powers of two).
// When a Generator is set the range's value kind is determined by the
// generator's output.
type Generator func(i int64) Value

// IntervalRange is the integer interval [Begin, End] with a step size and
// an optional generator, exactly as in atf::interval<T>(begin, end,
// step_size, generator).
type IntervalRange struct {
	Begin, End int64
	Step       int64
	Gen        Generator
	genKind    Kind
}

// NewInterval builds an integer interval [begin, end] with step 1.
func NewInterval(begin, end int64) *IntervalRange {
	return NewSteppedInterval(begin, end, 1)
}

// NewSteppedInterval builds an integer interval [begin, end] with the given
// step. It panics on a non-positive step or an empty interval, since ranges
// are constructed at setup time.
func NewSteppedInterval(begin, end, step int64) *IntervalRange {
	if step <= 0 {
		panic(fmt.Sprintf("core: interval step must be positive, got %d", step))
	}
	if end < begin {
		panic(fmt.Sprintf("core: empty interval [%d,%d]", begin, end))
	}
	return &IntervalRange{Begin: begin, End: end, Step: step}
}

// NewGeneratedInterval builds an interval whose i-th element is gen(i) for
// i from begin to end (inclusive, stepped). The range kind follows the
// generator's output kind, sampled once at construction.
func NewGeneratedInterval(begin, end, step int64, gen Generator) *IntervalRange {
	r := NewSteppedInterval(begin, end, step)
	r.Gen = gen
	r.genKind = gen(begin).Kind()
	return r
}

// Len returns the number of raw values.
func (r *IntervalRange) Len() int {
	return int((r.End-r.Begin)/r.Step) + 1
}

// At returns the i-th raw value.
func (r *IntervalRange) At(i int) Value {
	x := r.Begin + int64(i)*r.Step
	if r.Gen != nil {
		return r.Gen(x)
	}
	return Int(x)
}

// Kind returns the kind of the produced values.
func (r *IntervalRange) Kind() Kind {
	if r.Gen != nil {
		return r.genKind
	}
	return KindInt
}

// String renders the interval.
func (r *IntervalRange) String() string {
	if r.Step == 1 && r.Gen == nil {
		return fmt.Sprintf("[%d,%d]", r.Begin, r.End)
	}
	g := ""
	if r.Gen != nil {
		g = ",gen"
	}
	return fmt.Sprintf("[%d,%d,step=%d%s]", r.Begin, r.End, r.Step, g)
}

// FloatIntervalRange is a floating-point interval [Begin, End] with step,
// for ATF's support of float-typed tuning parameters.
type FloatIntervalRange struct {
	Begin, End, Step float64
	n                int
}

// NewFloatInterval builds a float interval. The number of raw values is
// floor((end-begin)/step)+1.
func NewFloatInterval(begin, end, step float64) *FloatIntervalRange {
	if step <= 0 {
		panic("core: float interval step must be positive")
	}
	if end < begin {
		panic("core: empty float interval")
	}
	n := int((end-begin)/step) + 1
	return &FloatIntervalRange{Begin: begin, End: end, Step: step, n: n}
}

// Len returns the number of raw values.
func (r *FloatIntervalRange) Len() int { return r.n }

// At returns the i-th raw value.
func (r *FloatIntervalRange) At(i int) Value { return Float(r.Begin + float64(i)*r.Step) }

// Kind returns KindFloat.
func (r *FloatIntervalRange) Kind() Kind { return KindFloat }

// String renders the interval.
func (r *FloatIntervalRange) String() string {
	return fmt.Sprintf("[%g,%g,step=%g]", r.Begin, r.End, r.Step)
}

// SetRange is an explicit list of values, mirroring atf::set(v1, ..., vn).
// Sets may mix only values of one kind; construction panics otherwise.
type SetRange struct {
	vals []Value
	kind Kind
}

// NewSet builds a set range from fundamental Go values.
func NewSet(vals ...any) *SetRange {
	if len(vals) == 0 {
		panic("core: empty set range")
	}
	vs := make([]Value, len(vals))
	for i, v := range vals {
		vs[i] = ValueOf(v)
	}
	k := vs[0].Kind()
	for _, v := range vs[1:] {
		if v.Kind() != k {
			panic("core: mixed-kind set range")
		}
	}
	return &SetRange{vals: vs, kind: k}
}

// NewValueSet builds a set range from already-tagged Values.
func NewValueSet(vals ...Value) *SetRange {
	anys := make([]any, len(vals))
	for i, v := range vals {
		anys[i] = v
	}
	return NewSet(anys...)
}

// Len returns the number of values in the set.
func (r *SetRange) Len() int { return len(r.vals) }

// At returns the i-th value.
func (r *SetRange) At(i int) Value { return r.vals[i] }

// Kind returns the common kind of the set's values.
func (r *SetRange) Kind() Kind { return r.kind }

// String renders the set.
func (r *SetRange) String() string {
	s := "{"
	for i, v := range r.vals {
		if i > 0 {
			s += ","
		}
		s += v.String()
	}
	return s + "}"
}

// Sorted returns a copy of the set with values in ascending order; useful
// for deterministic neighbourhoods in search techniques.
func (r *SetRange) Sorted() *SetRange {
	vs := append([]Value(nil), r.vals...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
	return &SetRange{vals: vs, kind: r.kind}
}

// BoolRange returns the canonical {false,true} set used by PADA/PADB-style
// boolean tuning parameters.
func BoolRange() *SetRange { return NewSet(false, true) }
