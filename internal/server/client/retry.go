package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// RetryPolicy bounds the retries of transient failures: up to Attempts
// tries with exponential backoff starting at BaseDelay, capped at
// MaxDelay, each delay jittered uniformly in [delay/2, delay] so a fleet
// of clients recovering from the same outage does not stampede the
// server. The zero value means no retries (one attempt). It is shared by
// the CLI client and the distributed eval-worker protocol — one retry
// helper, one transience classification.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included);
	// values below 1 mean 1.
	Attempts int
	// BaseDelay is the delay before the first retry; 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means 2s.
	MaxDelay time.Duration
}

// DefaultRetry is the policy the daemon client and the worker protocol
// use when the caller does not configure one: 4 tries, 50ms → 2s.
var DefaultRetry = RetryPolicy{Attempts: 4}

// errTransient marks an error as retryable; see Transient.
type errTransient struct{ err error }

func (e *errTransient) Error() string { return e.err.Error() }
func (e *errTransient) Unwrap() error { return e.err }

// Transient wraps err so RetryPolicy.Do retries it. HTTP callers
// typically wrap connection-level failures and 5xx statuses; anything
// returned unwrapped is treated as permanent and stops the retry loop.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &errTransient{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable via Transient, or is a refused connection — the one
// transport failure that is always safe to retry because the request
// never reached the server.
func IsTransient(err error) bool {
	var t *errTransient
	return errors.As(err, &t) || errors.Is(err, syscall.ECONNREFUSED)
}

// TransientStatus reports whether an HTTP status code should be treated
// as transient: 5xx and 429 (backpressure) are, everything else is the
// server's final word.
func TransientStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// jitterRand is the shared jitter source; a dedicated locked source so
// retry timing never perturbs any seeded application-level randomness.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay returns the backoff delay before retry number retry (0-based),
// jittered. Exported so callers with their own loops (the coordinator's
// straggler re-dispatch) share the same backoff shape.
func (p RetryPolicy) Delay(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(retry)
	if d > max || d <= 0 {
		d = max
	}
	jitterMu.Lock()
	f := jitterRand.Float64()
	jitterMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// Do runs fn until it succeeds, fails permanently, ctx is canceled, or
// the attempt budget is exhausted. fn signals a retryable failure by
// returning an error wrapped with Transient (refused connections are
// retried even unwrapped). The last error is returned, annotated with
// the attempt count when retries were used up.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(p.Delay(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("after %d attempts: %w", attempts, err)
}
