package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// JSON encodings for the types that cross the atfd wire protocol and the
// tuning journal: Value, Config, Cost and Evaluation. The encodings are
// chosen to be stable, snake_cased and round-trippable — a marshaled value
// unmarshals to an identical value, including the value kind and the
// non-finite costs that mark failed configurations.

// MarshalJSON renders the value as the natural JSON literal of its kind.
// Float values that happen to be integral gain a trailing ".0" so the kind
// survives a round trip.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(nil, v.i, 10), nil
	case KindFloat:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return json.Marshal(nonFiniteString(v.f))
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return []byte(s), nil
	case KindBool:
		if v.i != 0 {
			return []byte("true"), nil
		}
		return []byte("false"), nil
	case KindString:
		return json.Marshal(v.s)
	default:
		return nil, fmt.Errorf("core: cannot marshal value of kind %v", v.kind)
	}
}

// UnmarshalJSON parses a JSON literal back into a Value. Numbers without a
// fractional part or exponent become ints, all other numbers floats —
// inverting MarshalJSON's encoding.
func (v *Value) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	switch {
	case s == "true":
		*v = Bool(true)
		return nil
	case s == "false":
		*v = Bool(false)
		return nil
	case len(s) > 0 && s[0] == '"':
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		if f, ok := parseNonFinite(str); ok {
			*v = Float(f)
			return nil
		}
		*v = Str(str)
		return nil
	default:
		if !strings.ContainsAny(s, ".eE") {
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("core: bad JSON value %q: %w", s, err)
			}
			*v = Int(i)
			return nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("core: bad JSON value %q: %w", s, err)
		}
		*v = Float(f)
		return nil
	}
}

// MarshalJSON renders the configuration as a JSON object in parameter
// declaration order (the order constraints rely on), e.g.
// {"WPT":4,"LS":32}.
func (c *Config) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i := 0; i < c.filled; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(c.names.names[i])
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteByte(':')
		val, err := c.vals[i].MarshalJSON()
		if err != nil {
			return nil, err
		}
		b.Write(val)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON rebuilds a configuration from its JSON object form. The
// token stream is read in document order, so the declaration order written
// by MarshalJSON is preserved exactly.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("core: configuration JSON must be an object, got %v", tok)
	}
	var names []string
	var vals []Value
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		name, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("core: bad configuration key %v", keyTok)
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return err
		}
		var v Value
		if err := v.UnmarshalJSON(raw); err != nil {
			return err
		}
		names = append(names, name)
		vals = append(vals, v)
	}
	rebuilt := NewConfig(names)
	for i, v := range vals {
		rebuilt.set(i, v)
	}
	*c = *rebuilt
	return nil
}

// MarshalJSON renders the cost vector as a JSON array; the non-finite
// elements that mark failed configurations are encoded as the strings
// "+inf", "-inf" and "nan" (plain JSON has no literals for them).
func (c Cost) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			s, err := json.Marshal(nonFiniteString(v))
			if err != nil {
				return nil, err
			}
			b.Write(s)
			continue
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

// UnmarshalJSON parses a cost vector, accepting the string encodings of
// non-finite elements.
func (c *Cost) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw == nil {
		*c = nil
		return nil
	}
	out := make(Cost, len(raw))
	for i, r := range raw {
		var s string
		if err := json.Unmarshal(r, &s); err == nil {
			f, ok := parseNonFinite(s)
			if !ok {
				return fmt.Errorf("core: bad cost element %q", s)
			}
			out[i] = f
			continue
		}
		var f float64
		if err := json.Unmarshal(r, &f); err != nil {
			return err
		}
		out[i] = f
	}
	*c = out
	return nil
}

func nonFiniteString(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+inf"
	case math.IsInf(f, -1):
		return "-inf"
	default:
		return "nan"
	}
}

func parseNonFinite(s string) (float64, bool) {
	switch s {
	case "+inf", "inf":
		return math.Inf(1), true
	case "-inf":
		return math.Inf(-1), true
	case "nan":
		return math.NaN(), true
	default:
		return 0, false
	}
}

// evaluationJSON is Evaluation's snake_cased wire form; the error is
// flattened to its message.
type evaluationJSON struct {
	Index  uint64  `json:"index"`
	Config *Config `json:"config,omitempty"`
	Cost   Cost    `json:"cost,omitempty"`
	Error  string  `json:"error,omitempty"`
	AtNs   int64   `json:"at_ns,omitempty"`
	Cached bool    `json:"cached,omitempty"`
}

// MarshalJSON renders the evaluation in its stable snake_cased wire form.
func (e Evaluation) MarshalJSON() ([]byte, error) {
	j := evaluationJSON{
		Index:  e.Index,
		Config: e.Config,
		Cost:   e.Cost,
		AtNs:   e.At.Nanoseconds(),
		Cached: e.Cached,
	}
	if e.Err != nil {
		j.Error = e.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the wire form back; errors come back as opaque
// errors.New values carrying the original message.
func (e *Evaluation) UnmarshalJSON(data []byte) error {
	var j evaluationJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Evaluation{
		Index:  j.Index,
		Config: j.Config,
		Cost:   j.Cost,
		At:     time.Duration(j.AtNs),
		Cached: j.Cached,
	}
	if j.Error != "" {
		e.Err = errors.New(j.Error)
	}
	return nil
}
