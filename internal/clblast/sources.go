// Package clblast provides the paper's evaluation workloads: the saxpy
// kernel of Listing 1 and the XgemmDirect kernel of Section VI, both as
// genuine OpenCL-C source tuned via preprocessor definitions, together with
// their tuning-parameter spaces (10 parameters, 17 interdependencies for
// XgemmDirect), CLBlast's host-side global/local size arithmetic, the
// kernel default configurations, and the Caffe input sizes IS1–IS4.
package clblast

// SaxpySource is the simplified saxpy kernel from CLBlast (paper,
// Listing 1): each work-item computes WPT elements of y = a*x + y with a
// cyclic distribution, so adjacent work-items access adjacent elements.
const SaxpySource = `
__kernel void saxpy(const int N, const float a,
                    __global float* x, __global float* y) {
  for (int w = 0; w < WPT; w++) {
    const int id = w * get_global_size(0) + get_global_id(0);
    y[id] = a * x[id] + y[id];
  }
}
`

// XgemmDirectSource is a faithful re-creation of CLBlast's direct GEMM
// kernel (the variant for small matrices, no pre-transposition) in the
// oclc subset. It computes C = alpha*A*B + beta*C for row-major A (M×K),
// B (K×N), C (M×N), and exercises all ten tuning parameters:
//
//	WGD              tile size computed per work-group (WGD×WGD of C)
//	MDIMCD, NDIMCD   compute thread grid (local size = MDIMCD×NDIMCD)
//	MDIMAD, NDIMBD   cooperative-load thread layouts for the A and B tiles
//	KWID             k-loop unroll factor (#pragma unroll KWID)
//	VWMD, VWND       vector widths in the M and N directions
//	PADA, PADB       local-memory padding to de-conflict banks
//
// Boundary checks make the kernel correct when WGD does not divide M or N;
// CLBlast exploits this by padding the global size up to a multiple of the
// local size — the arithmetic that CLTune cannot express and that lets ATF
// drop the two global-size divisibility constraints (paper, §VI-A).
const XgemmDirectSource = `
__kernel void XgemmDirect(const int M, const int N, const int K,
                          const float alpha, const float beta,
                          __global float* agm, __global float* bgm,
                          __global float* cgm) {
  __local float alm[WGD][WGD + PADA];
  __local float blm[WGD][WGD + PADB];

  const int tidm = get_local_id(0);
  const int tidn = get_local_id(1);
  const int mwg = get_group_id(0) * WGD;
  const int nwg = get_group_id(1) * WGD;

  // Per-thread accumulator registers.
  float cpd[WGD/MDIMCD][WGD/NDIMCD];
  for (int mi = 0; mi < WGD/MDIMCD; mi++) {
    for (int ni = 0; ni < WGD/NDIMCD; ni++) {
      cpd[mi][ni] = 0.0f;
    }
  }

  // Flat thread id re-shaped for the cooperative tile loads.
  const int ltid = tidn * MDIMCD + tidm;
  const int lta0 = ltid % MDIMAD;
  const int lta1 = ltid / MDIMAD;
  const int ltb0 = ltid % NDIMBD;
  const int ltb1 = ltid / NDIMBD;

  for (int kwg = 0; kwg < K; kwg += WGD) {

    // Load the A tile (WGD rows x WGD k-columns), MDIMAD-major layout.
    #pragma unroll
    for (int mia = 0; mia < WGD/MDIMAD; mia++) {
      for (int kia = 0; kia < WGD/(MDIMCD*NDIMCD/MDIMAD); kia++) {
        const int mg = mia * MDIMAD + lta0;
        const int kg = kia * (MDIMCD*NDIMCD/MDIMAD) + lta1;
        const int idm = mwg + mg;
        const int idk = kwg + kg;
        alm[kg][mg] = (idm < M && idk < K) ? agm[idm*K + idk] : 0.0f;
      }
    }

    // Load the B tile (WGD k-rows x WGD columns), NDIMBD-major layout.
    #pragma unroll
    for (int nib = 0; nib < WGD/NDIMBD; nib++) {
      for (int kib = 0; kib < WGD/(MDIMCD*NDIMCD/NDIMBD); kib++) {
        const int ng = nib * NDIMBD + ltb0;
        const int kg = kib * (MDIMCD*NDIMCD/NDIMBD) + ltb1;
        const int idn = nwg + ng;
        const int idk = kwg + kg;
        blm[kg][ng] = (idn < N && idk < K) ? bgm[idk*N + idn] : 0.0f;
      }
    }

    barrier(CLK_LOCAL_MEM_FENCE);

    // Multiply the tiles, KWID k-steps per unrolled bundle, vector-width
    // blocked register updates.
    for (int kwi = 0; kwi < WGD; kwi += KWID) {
      #pragma unroll KWID
      for (int kit = 0; kit < KWID; kit++) {
        const int kg = kwi + kit;
        for (int mi = 0; mi < WGD/MDIMCD; mi += VWMD) {
          #pragma unroll VWMD
          for (int mv = 0; mv < VWMD; mv++) {
            const int mg = (mi + mv) * MDIMCD + tidm;
            const float avec = alm[kg][mg];
            for (int ni = 0; ni < WGD/NDIMCD; ni += VWND) {
              #pragma unroll VWND
              for (int nv = 0; nv < VWND; nv++) {
                const int ng = (ni + nv) * NDIMCD + tidn;
                cpd[mi + mv][ni + nv] = fma(avec, blm[kg][ng], cpd[mi + mv][ni + nv]);
              }
            }
          }
        }
      }
    }

    barrier(CLK_LOCAL_MEM_FENCE);
  }

  // Store the result tile with boundary checks.
  for (int mi = 0; mi < WGD/MDIMCD; mi++) {
    for (int ni = 0; ni < WGD/NDIMCD; ni++) {
      const int idm = mwg + mi * MDIMCD + tidm;
      const int idn = nwg + ni * NDIMCD + tidn;
      if (idm < M && idn < N) {
        cgm[idm*N + idn] = alpha * cpd[mi][ni] + beta * cgm[idm*N + idn];
      }
    }
  }
}
`
