// Command atf-tune tunes one of the bundled kernels (saxpy or
// XgemmDirect) on a simulated device and prints the best configuration —
// the command-line face of the paper's Listing 2 workflow.
//
// Usage:
//
//	atf-tune -kernel saxpy -device K20c -n 16777216
//	atf-tune -kernel gemm -device Xeon -m 10 -k 64 -gemmn 500 -technique annealing -evals 500
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"atf"
	"atf/internal/clblast"
	"atf/internal/obs"
	"atf/internal/opencl"
)

func main() {
	kernel := flag.String("kernel", "saxpy", "kernel to tune: saxpy or gemm")
	platform := flag.String("platform", "", "OpenCL platform name substring (empty = any)")
	device := flag.String("device", "K20c", "device name substring")
	n := flag.Int64("n", 1<<22, "saxpy input size")
	m := flag.Int64("m", 10, "gemm M")
	k := flag.Int64("k", 64, "gemm K")
	gemmN := flag.Int64("gemmn", 500, "gemm N")
	cap := flag.Int64("cap", 64, "gemm integer range cap")
	technique := flag.String("technique", "annealing",
		"search technique: exhaustive, annealing, opentuner, random")
	evals := flag.Uint64("evals", 400, "evaluation budget (0 = whole space)")
	timeout := flag.Duration("timeout", 0, "wall-clock abort (0 = none)")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 1,
		"concurrent cost evaluators (1 = sequential, -1 = all CPUs)")
	stats := flag.Bool("stats", false,
		"print the instrumentation summary (evaluations, caches, latency histograms) after the run")
	flag.Parse()

	var tech atf.Technique
	switch *technique {
	case "exhaustive":
		tech = atf.Exhaustive()
	case "annealing":
		tech = atf.SimulatedAnnealing()
	case "opentuner":
		tech = atf.OpenTunerSearch()
	case "random":
		tech = atf.RandomSearch()
	default:
		fail(fmt.Errorf("unknown technique %q", *technique))
	}

	var abort atf.AbortCondition
	if *evals > 0 {
		abort = atf.Evaluations(*evals)
	}
	if *timeout > 0 {
		cond := atf.Duration(*timeout)
		if abort != nil {
			abort = atf.AbortOr(abort, cond)
		} else {
			abort = cond
		}
	}
	tuner := atf.Tuner{Technique: tech, Abort: abort, Seed: *seed, CacheCosts: true,
		Parallelism: *parallelism}

	start := time.Now()
	var res *atf.Result
	var err error
	switch *kernel {
	case "saxpy":
		res, err = tuneSaxpy(tuner, *platform, *device, *n)
	case "gemm":
		res, err = tuneGemm(tuner, *device, clblast.GemmShape{M: *m, K: *k, N: *gemmN}, *cap, *seed)
	default:
		err = fmt.Errorf("unknown kernel %q", *kernel)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("kernel:        %s\n", *kernel)
	fmt.Printf("search space:  %d valid configurations (raw product %s)\n",
		res.SpaceSize, res.RawSpaceSize)
	fmt.Printf("evaluations:   %d (%d valid)\n", res.Evaluations, res.Valid)
	fmt.Printf("tuning time:   %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("best config:   %s\n", res.Best)
	fmt.Printf("best cost:     %.3f ms (simulated)\n", res.BestCost.Primary()/1e6)
	if *stats {
		fmt.Println()
		obs.WriteSummary(os.Stdout, obs.Default().Snapshot())
	}
}

func tuneSaxpy(tuner atf.Tuner, platform, device string, n int64) (*atf.Result, error) {
	cf, err := (&atf.OpenCL{
		Platform: platform, Device: device,
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), atf.RandomScalar(),
			atf.RandomBuffer(int(n)), atf.RandomBuffer(int(n)),
		},
		GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
	}).CostFunction()
	if err != nil {
		return nil, err
	}
	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
	return tuner.Tune(cf, wpt, ls)
}

func tuneGemm(tuner atf.Tuner, device string, shape clblast.GemmShape, cap, seed int64) (*atf.Result, error) {
	dev, err := opencl.FindDevice("", device)
	if err != nil {
		return nil, err
	}
	eval := clblast.NewGemmEvaluator(dev, shape, seed)
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap:         cap,
		MaxWorkGroupSize: int64(dev.Desc.MaxWorkGroupSize),
		LocalMemBytes:    int64(dev.Desc.LocalMemBytes),
	})
	return tuner.Tune(eval.CostFunction(), params...)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atf-tune:", err)
	os.Exit(1)
}
