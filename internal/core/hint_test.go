package core

import (
	"testing"
	"testing/quick"
)

func TestDivisorsInRange(t *testing.T) {
	cases := []struct {
		m, lo, hi int64
		want      []int64
	}{
		{12, 1, 12, []int64{1, 2, 3, 4, 6, 12}},
		{12, 2, 6, []int64{2, 3, 4, 6}},
		{1, 1, 10, []int64{1}},
		{16, 1, 16, []int64{1, 2, 4, 8, 16}},
		{0, 1, 10, nil},
		{-4, 1, 10, nil},
		{7, 2, 6, nil}, // prime, endpoints excluded
	}
	for _, c := range cases {
		got := divisorsInRange(c.m, c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Errorf("divisors(%d,[%d,%d]) = %v, want %v", c.m, c.lo, c.hi, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("divisors(%d,[%d,%d]) = %v, want %v (ascending)", c.m, c.lo, c.hi, got, c.want)
				break
			}
		}
	}
}

func TestQuickDivisorsSoundAndComplete(t *testing.T) {
	f := func(m16 uint16, lo8, span8 uint8) bool {
		m := int64(m16%2000) + 1
		lo := int64(lo8%50) + 1
		hi := lo + int64(span8)
		got := divisorsInRange(m, lo, hi)
		seen := make(map[int64]bool, len(got))
		for _, d := range got {
			if m%d != 0 || d < lo || d > hi || seen[d] {
				return false
			}
			seen[d] = true
		}
		// Completeness: every divisor in range appears.
		for d := lo; d <= hi; d++ {
			if m%d == 0 && !seen[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// hintedSaxpyParams mirrors saxpyParams but with divisor hints attached.
func hintedSaxpyParams(n int64) []*Param {
	wpt := NewParam("WPT", NewInterval(1, n), Divides(n)).WithDivisorHint(n)
	ls := NewParam("LS", NewInterval(1, n),
		Divides(func(c *Config) int64 { return n / c.Int("WPT") })).
		WithDivisorHint(func(c *Config) int64 { return n / c.Int("WPT") })
	return []*Param{wpt, ls}
}

func TestHintedSpaceIdenticalToPlain(t *testing.T) {
	const n = 240 // richly composite
	plain, err := GenerateFlat(saxpyParams(n), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := GenerateFlat(hintedSaxpyParams(n), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Size() != hinted.Size() {
		t.Fatalf("sizes differ: %d vs %d", plain.Size(), hinted.Size())
	}
	for i := uint64(0); i < plain.Size(); i++ {
		if !plain.At(i).Equal(hinted.At(i)) {
			t.Fatalf("config %d differs: %v vs %v", i, plain.At(i), hinted.At(i))
		}
	}
	// The point of the hint: drastically fewer constraint checks.
	if hinted.Checks() >= plain.Checks()/4 {
		t.Fatalf("hinted checks %d should be <<1/4 of plain %d",
			hinted.Checks(), plain.Checks())
	}
}

func TestHintedCountMatches(t *testing.T) {
	const n = 360
	plainN, plainChecks, err := CountGroup(G(saxpyParams(n)...), GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hintN, hintChecks, err := CountGroup(G(hintedSaxpyParams(n)...), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plainN != hintN {
		t.Fatalf("counts differ: %d vs %d", plainN, hintN)
	}
	if hintChecks >= plainChecks {
		t.Fatalf("hint did not reduce checks: %d vs %d", hintChecks, plainChecks)
	}
}

func TestHintIgnoredOnIncompatibleRanges(t *testing.T) {
	// Hints on sets or stepped/generated intervals are silently ignored —
	// correctness must not depend on the hint being used.
	set := NewParam("s", NewSet(1, 2, 3, 4, 6, 12), Divides(12)).WithDivisorHint(12)
	stepped := NewParam("t", NewSteppedInterval(2, 12, 2), Divides(12)).WithDivisorHint(12)
	sp, err := GenerateFlat([]*Param{set, stepped}, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// s: all 6 set values divide 12; t: {2,4,6,12} stepped even divisors.
	if sp.Size() != 6*4 {
		t.Fatalf("size = %d, want 24", sp.Size())
	}
}

func TestHintNeverWidensSpace(t *testing.T) {
	// A deliberately WRONG hint (divisors of 100) combined with a Divides(60)
	// constraint: the constraint still filters, so only common divisors
	// survive — the hint can lose candidates it does not propose, but it
	// can never admit invalid ones. (Sound usage pairs the hint with its
	// own expression; this test pins down the safety property.)
	p := NewParam("x", NewInterval(1, 60), Divides(60)).WithDivisorHint(100)
	sp, err := GenerateFlat([]*Param{p}, GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp.ForEach(func(_ uint64, cfg *Config) bool {
		if 60%cfg.Int("x") != 0 {
			t.Fatalf("invalid value admitted: %v", cfg)
		}
		return true
	})
}

func TestHintedParallelRootStillCorrect(t *testing.T) {
	// Each root chunk intersects the hinted divisor set with its own index
	// window, so parallel and sequential generation agree configuration-
	// for-configuration.
	par, err := GenerateFlat(hintedSaxpyParams(120), GenOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := GenerateFlat(hintedSaxpyParams(120), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par.Size() != seq.Size() {
		t.Fatalf("sizes differ: %d vs %d", par.Size(), seq.Size())
	}
	for i := uint64(0); i < par.Size(); i++ {
		if !par.At(i).Equal(seq.At(i)) {
			t.Fatalf("config %d differs", i)
		}
	}
}

func TestHintedParallelRootKeepsFastPath(t *testing.T) {
	// The divisor fast path must survive root chunking: a multi-worker run
	// proposes exactly the same candidates as the sequential one (the
	// chunks partition the divisor set) instead of falling back to a full
	// range scan at the root level.
	seq, err := GenerateFlat(hintedSaxpyParams(240), GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GenerateFlat(hintedSaxpyParams(240), GenOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Checks() != seq.Checks() {
		t.Fatalf("parallel generation lost the hint fast path: %d checks vs %d sequential",
			par.Checks(), seq.Checks())
	}
	plain, err := GenerateFlat(saxpyParams(240), GenOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Checks() >= plain.Checks()/4 {
		t.Fatalf("hinted parallel checks %d should be <<1/4 of plain %d",
			par.Checks(), plain.Checks())
	}
}
