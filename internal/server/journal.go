// Package server is the tuning-as-a-service subsystem behind the atfd
// daemon: a session manager running concurrent tuning jobs on the parallel
// exploration engine, an HTTP/JSON API over declarative specs, and a
// durable append-only tuning journal that lets a killed daemon restart,
// replay every already-paid cost evaluation, and resume the search
// deterministically mid-run.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"atf"
)

// The journal is one JSONL file per session under the manager's journal
// directory: a spec header line, one line per committed evaluation, and a
// done line once the session reaches a terminal state. A journal without a
// done line is an interrupted run; on daemon restart its evaluations are
// replayed into the cost cache and the search resumes where it stopped. A
// torn final line (the write a crash cut short) is detected and dropped —
// everything before it is intact by construction of append-only writes.

// Record is one journal line; Type selects which payload is set.
type Record struct {
	Type string `json:"type"` // "spec" | "eval" | "batch" | "done"

	// spec header fields.
	Session       string    `json:"session,omitempty"`
	Name          string    `json:"name,omitempty"`
	CreatedUnixNs int64     `json:"created_unix_ns,omitempty"`
	Spec          *atf.Spec `json:"spec,omitempty"`

	Eval  *EvalRecord  `json:"eval,omitempty"`
	Batch *BatchRecord `json:"batch,omitempty"`
	Done  *DoneRecord  `json:"done,omitempty"`
}

// BatchRecord journals one batch boundary of the parallel engine: batch
// Index covered evaluations [StartEval, StartEval+Size). Written before
// the batch is dispatched, so a journal whose evaluations stop inside a
// batch's range identifies exactly which dispatch a crash interrupted. A
// resumed run replays the same deterministic batch walk and skips
// re-journaling marks inside the replayed prefix; the mark at the replay
// boundary is appended again, which is why readers dedup by Index.
type BatchRecord struct {
	Index     uint64 `json:"index"`
	StartEval uint64 `json:"start_eval"`
	Size      int    `json:"size"`
}

// EvalRecord journals one committed evaluation. Key is the configuration's
// deterministic cache key — the value replay matches on — while Config is
// the human- and client-readable form.
type EvalRecord struct {
	Index  uint64      `json:"index"`
	Key    string      `json:"key"`
	Config *atf.Config `json:"config,omitempty"`
	Cost   atf.Cost    `json:"cost,omitempty"`
	Error  string      `json:"error,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	AtNs   int64       `json:"at_ns,omitempty"`
}

// DoneRecord closes a journal: the session reached a terminal state and
// must not be resumed.
type DoneRecord struct {
	State       string      `json:"state"` // "done" | "canceled" | "failed"
	Evaluations uint64      `json:"evaluations"`
	Valid       uint64      `json:"valid"`
	Best        *atf.Config `json:"best,omitempty"`
	BestCost    atf.Cost    `json:"best_cost,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// Journal is the append-only writer for one session. Every append is
// followed by an fsync: the journal's whole point is surviving the daemon,
// and the simulated cost evaluations dwarf the sync latency.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// CreateJournal starts a new session journal with its spec header.
func CreateJournal(path, session, name string, spec *atf.Spec, createdUnixNs int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: creating journal: %w", err)
	}
	j := &Journal{f: f}
	if err := j.Append(Record{
		Type: "spec", Session: session, Name: name,
		CreatedUnixNs: createdUnixNs, Spec: spec,
	}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournalAppend reopens an interrupted session's journal for resume.
func OpenJournalAppend(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: reopening journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one record as a JSON line and syncs it to disk.
func (j *Journal) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: marshaling journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("server: writing journal: %w", err)
	}
	return j.f.Sync()
}

// Close closes the underlying file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// JournalData is a fully parsed session journal.
type JournalData struct {
	Path          string
	Session       string
	Name          string
	CreatedUnixNs int64
	Spec          *atf.Spec
	Evals         []EvalRecord
	// Batches are the journaled batch boundaries, deduplicated by batch
	// index (a resumed run re-journals the mark it was interrupted in).
	Batches []BatchRecord
	Done    *DoneRecord
	// Truncated marks a torn or out-of-sequence tail that was dropped
	// (the line a kill interrupted mid-write).
	Truncated bool
}

// ReadJournalFile parses a session journal. The spec header must parse —
// without it the session cannot be rebuilt — while a broken tail only sets
// Truncated: every intact evaluation before it is kept for replay.
func ReadJournalFile(path string) (*JournalData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	d := &JournalData{Path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	first := true
	seenBatches := make(map[uint64]bool)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if first {
				return nil, fmt.Errorf("server: journal %s: bad spec header: %w", path, err)
			}
			d.Truncated = true
			break
		}
		switch rec.Type {
		case "spec":
			if !first {
				return nil, fmt.Errorf("server: journal %s: duplicate spec header", path)
			}
			d.Session, d.Name = rec.Session, rec.Name
			d.CreatedUnixNs, d.Spec = rec.CreatedUnixNs, rec.Spec
		case "eval":
			if rec.Eval == nil || rec.Eval.Index != uint64(len(d.Evals)) {
				// An out-of-sequence eval means the tail is damaged;
				// everything up to here is still a valid prefix.
				d.Truncated = true
				return d, nil
			}
			d.Evals = append(d.Evals, *rec.Eval)
		case "batch":
			if rec.Batch == nil {
				d.Truncated = true
				return d, nil
			}
			if !seenBatches[rec.Batch.Index] {
				seenBatches[rec.Batch.Index] = true
				d.Batches = append(d.Batches, *rec.Batch)
			}
		case "done":
			d.Done = rec.Done
			return d, nil
		default:
			d.Truncated = true
			return d, nil
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: reading journal %s: %w", path, err)
	}
	if first {
		return nil, fmt.Errorf("server: journal %s is empty", path)
	}
	if d.Spec == nil {
		return nil, fmt.Errorf("server: journal %s has no spec header", path)
	}
	return d, nil
}

// ListJournals returns the journal files under dir, sorted by name.
func ListJournals(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	return paths, nil
}

// sanitizeName turns a session name into a file-system- and URL-safe slug.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ', r == '_', r == '.':
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		s = "session"
	}
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}
