// Persistent warm-start glue (atfd -state-dir): the Manager side of
// internal/state. A daemon with a state directory persists the three
// things that make a cold start slow — the lazy-space census (the 1–3 s
// counting pass over a 10^19-combination space), the daemon-wide
// cost-outcome cache, and the compiled-kernel manifest — and loads them on
// the next start, so a warm session neither recounts its space nor
// recompiles a single kernel. Everything in the store is a cache of
// deterministic computation: losing it costs a cold start, never
// correctness, which is why load failures read as misses.

package server

import (
	"encoding/json"
	"time"

	"atf"
	"atf/internal/obs"
	"atf/internal/oclc"
	"atf/internal/state"
)

// Blob names inside the state directory. The census is keyed per space
// (census-<specSpaceHash>); the outcome and compile blobs are daemon-wide.
const (
	stateOutcomes = "outcomes"
	stateCompile  = "compile"
)

var (
	mStateCensusHits = obs.NewCounter("atf_state_hit_census_total",
		"Space generations that found a persisted census snapshot for their spec hash")
	mStateOutcomeHits = obs.NewCounter("atf_state_hit_outcomes_total",
		"Cost outcomes restored into the shared cache from the state directory")
	mStateCompileHits = obs.NewCounter("atf_state_hit_compile_total",
		"Compiled programs rebuilt from the persisted compile manifest at startup")
)

// OpenState attaches the persistent warm-start store under dir and loads
// it: persisted cost outcomes fill the shared cache, and the compile
// manifest is replayed through the oclc cache (paying the compiles once,
// off every session's critical path). Census snapshots load lazily, per
// space, inside each session's generation path. When syncEvery > 0 a
// background flush persists the live caches at that cadence; Shutdown
// always writes a final snapshot. Call after the cache knobs are set and
// before Resume, so resumed sessions start warm too.
func (m *Manager) OpenState(dir string, syncEvery time.Duration) error {
	st, err := state.Open(dir)
	if err != nil {
		return err
	}
	m.sharedInit()
	m.stateStore = st

	if m.sharedCosts != nil {
		if data, ok := st.Load(stateOutcomes); ok {
			if n := m.sharedCosts.load(data); n > 0 {
				mStateOutcomeHits.Add(uint64(n))
			}
		}
	}
	if data, ok := st.Load(stateCompile); ok {
		var entries []oclc.ManifestEntry
		if json.Unmarshal(data, &entries) == nil {
			if n := oclc.PrewarmCompileCache(entries); n > 0 {
				mStateCompileHits.Add(uint64(n))
			}
		}
	}

	if syncEvery > 0 {
		m.stateStop = make(chan struct{})
		m.stateWG.Add(1)
		go func() {
			defer m.stateWG.Done()
			t := time.NewTicker(syncEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					m.saveState()
				case <-m.stateStop:
					return
				}
			}
		}()
	}
	return nil
}

// saveState persists the daemon-wide caches. Each blob is written
// atomically; errors are already counted by the store and are not worth
// failing a flush tick over.
func (m *Manager) saveState() {
	st := m.stateStore
	if st == nil {
		return
	}
	if m.sharedCosts != nil {
		if data := m.sharedCosts.dump(); data != nil {
			st.Save(stateOutcomes, data)
		}
	}
	if entries := oclc.CompileManifest(); len(entries) > 0 {
		if data, err := json.Marshal(entries); err == nil {
			st.Save(stateCompile, data)
		}
	}
}

// closeState stops the periodic flush and writes the final snapshot
// (Shutdown; safe to call repeatedly).
func (m *Manager) closeState() {
	if m.stateStore == nil {
		return
	}
	m.stateOnce.Do(func() {
		if m.stateStop != nil {
			close(m.stateStop)
		}
		m.stateWG.Wait()
		m.saveState()
	})
}

// loadCensus fetches the persisted census snapshot for one space key, nil
// when the store is closed or the blob is missing/corrupt (a cold count).
func (m *Manager) loadCensus(key string) []byte {
	if m.stateStore == nil {
		return nil
	}
	data, ok := m.stateStore.Load("census-" + key)
	if !ok {
		return nil
	}
	mStateCensusHits.Inc()
	return data
}

// saveCensus persists a freshly generated space's census snapshot under
// its space key (eager spaces snapshot nothing and save nothing).
func (m *Manager) saveCensus(key string, sp *atf.Space) {
	if m.stateStore == nil {
		return
	}
	if snap, ok := sp.CensusSnapshot(); ok {
		m.stateStore.Save("census-"+key, snap)
	}
}
