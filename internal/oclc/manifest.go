package oclc

// The compile-cache manifest makes the shared program cache survive
// restarts. Cache keys hash kernel source with a per-process maphash seed
// and compiled Programs hold unserializable ASTs, so neither keys nor
// entries can be persisted directly; instead the manifest records each
// resident entry's compile *inputs* (source + define set) and a restarting
// daemon replays them through the normal compile path. The replay pays the
// compile cost once at startup — off every session's critical path — so a
// warm daemon serves all previously seen configurations without a single
// in-session compile.

// ManifestEntry reproduces one cached compile: the kernel source and the
// configuration's define set.
type ManifestEntry struct {
	Source  string            `json:"source"`
	Defines map[string]string `json:"defines"`
}

// CompileManifest snapshots the shared cache's resident, successfully
// compiled programs in most-recently-used-first order (failed and in-flight
// compiles are skipped — neither is worth replaying).
func CompileManifest() []ManifestEntry {
	c := sharedProgCache
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ManifestEntry
	for elem := c.lru.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*progCacheEntry)
		if e.bytes == 0 || e.err != nil || e.prog == nil {
			continue
		}
		out = append(out, ManifestEntry{Source: e.source, Defines: e.defines})
	}
	return out
}

// PrewarmCompileCache replays a manifest through the shared cache,
// compiling entries least-recently-used first so the manifest's MRU order
// is reproduced in the LRU list (the budget then evicts the same cold tail
// it would have). Entries that fail to compile are skipped. Returns how
// many programs are resident afterwards from this replay.
func PrewarmCompileCache(entries []ManifestEntry) int {
	warmed := 0
	for i := len(entries) - 1; i >= 0; i-- {
		if _, err := CompileCached(entries[i].Source, entries[i].Defines); err == nil {
			warmed++
		}
	}
	return warmed
}
