package clblast

import (
	"fmt"
	"runtime"
	"testing"

	"atf/internal/core"
)

// pathologicalNoDeps builds a group in which no constraint reads any earlier
// parameter: every level's footprint is empty, so memoization collapses each
// level below the root to a single shared block (maximal sharing).
func pathologicalNoDeps() []*core.Param {
	return []*core.Param{
		core.NewParam("A", core.NewInterval(1, 8)),
		core.NewParam("B", core.NewInterval(1, 6),
			core.IntPred(func(v int64) bool { return v%2 == 0 })),
		core.NewParam("C", core.NewSet(1, 2, 4)),
		core.NewParam("D", core.BoolRange()),
	}
}

// TestMemoizedGenerationEquivalence is the tentpole property test: memoized
// generation must be bit-identical to the baseline — same Size, same
// fill(i) sequence for sampled indices, same indexOf round-trips — across
// worker counts and memoization modes, for saxpy, XgemmDirect, and the
// pathological no-deps group.
func TestMemoizedGenerationEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		params func() []*core.Param
	}{
		{"saxpy", func() []*core.Param { return SaxpyParams(1 << 14) }},
		{"xgemmdirect", func() []*core.Param {
			return XgemmDirectParams(SpaceOptions{RangeCap: 16})
		}},
		{"nodeps", pathologicalNoDeps},
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline, err := core.GenerateFlat(tc.params(),
				core.GenOptions{Workers: 1, Memoize: core.MemoOff})
			if err != nil {
				t.Fatal(err)
			}
			// Per-mode generation statistics must not depend on the worker
			// count (determinism contract).
			stats := map[string]map[string]bool{}
			for _, memo := range []core.MemoMode{core.MemoOff, core.MemoOn} {
				for _, w := range workerCounts {
					label := fmt.Sprintf("memo=%v workers=%d", memo, w)
					sp, err := core.GenerateFlat(tc.params(),
						core.GenOptions{Workers: w, Memoize: memo})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if sp.Size() != baseline.Size() {
						t.Fatalf("%s: size %d, want %d", label, sp.Size(), baseline.Size())
					}
					logical, unique := sp.NodeCounts()
					bl, _ := baseline.NodeCounts()
					if logical != bl {
						t.Fatalf("%s: logical nodes %d, want %d", label, logical, bl)
					}
					if memo == core.MemoOff && unique != logical {
						t.Fatalf("%s: memo off must not share (unique %d != logical %d)",
							label, unique, logical)
					}
					n := sp.Size()
					step := n/257 + 1
					for idx := uint64(0); idx < n; idx += step {
						checkIndex(t, label, baseline, sp, idx)
					}
					checkIndex(t, label, baseline, sp, n-1)
					hits, misses := sp.MemoStats()
					key := fmt.Sprintf("memo=%v checks=%d unique=%d hits=%d misses=%d",
						memo, sp.Checks(), unique, hits, misses)
					mk := fmt.Sprintf("memo=%v", memo)
					if stats[mk] == nil {
						stats[mk] = map[string]bool{}
					}
					stats[mk][key] = true
				}
			}
			for mode, set := range stats {
				if len(set) != 1 {
					t.Errorf("%s: generation statistics vary with worker count: %v", mode, set)
				}
			}
			// The no-deps group must actually collapse: below the root,
			// one shared block per level.
			if tc.name == "nodeps" {
				sp, err := core.GenerateFlat(tc.params(), core.GenOptions{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				logical, unique := sp.NodeCounts()
				// 8 roots + one shared block each for B (3), C (3), D (2).
				if logical != 8+8*3+8*3*3+8*3*3*2 {
					t.Errorf("nodeps logical = %d", logical)
				}
				if unique != 8+3+3+2 {
					t.Errorf("nodeps unique = %d, want 16 (maximal sharing)", unique)
				}
			}
		})
	}
}

// checkIndex asserts sp.At(idx) equals the baseline's configuration and
// that indexOf round-trips to the same index.
func checkIndex(t *testing.T, label string, baseline, sp *core.Space, idx uint64) {
	t.Helper()
	want := baseline.At(idx)
	got := sp.At(idx)
	if !got.Equal(want) {
		t.Fatalf("%s: At(%d) = %v, want %v", label, idx, got, want)
	}
	ri, ok := sp.IndexOf(got)
	if !ok || ri != idx {
		t.Fatalf("%s: IndexOf(At(%d)) = %d,%v", label, idx, ri, ok)
	}
}

// TestXgemmDirectFootprintsCoverReads verifies the FnReads/ExprReads
// declarations in XgemmDirectParams: replay the full constrained nested
// iteration with a read observer installed and fail if any constraint reads
// a parameter outside its declared footprint (an under-declared footprint
// would let memoization share subtrees that should differ).
func TestXgemmDirectFootprintsCoverReads(t *testing.T) {
	params := XgemmDirectParams(SpaceOptions{RangeCap: 8})
	names := make([]string, len(params))
	pos := map[string]int{}
	for i, p := range params {
		names[i] = p.Name
		pos[p.Name] = i
	}
	declared := make([]map[int]bool, len(params))
	for i, p := range params {
		reads, exact := p.Deps()
		if !exact {
			t.Fatalf("parameter %s: footprint not exact; annotate its constraint with FnReads/ExprReads", p.Name)
		}
		m := map[int]bool{}
		for _, r := range reads {
			m[pos[r]] = true
		}
		declared[i] = m
	}

	cfg := core.NewConfig(names)
	depth := 0
	cfg.ObserveReads(func(p int) {
		if !declared[depth][p] {
			t.Fatalf("constraint of %s read %s, which is outside its declared footprint",
				names[depth], names[p])
		}
	})
	var rec func(d int)
	rec = func(d int) {
		if d == len(params) {
			return
		}
		p := params[d]
		for i := 0; i < p.Range.Len(); i++ {
			v := p.Range.At(i)
			depth = d
			if !p.Accepts(v, cfg) {
				continue
			}
			cfg.SetAt(d, v)
			rec(d + 1)
			depth = d
		}
	}
	rec(0)
}
