// Package core implements the heart of the ATF reproduction: tuning
// parameters with constrained ranges, parameter groups, the search-space
// trie with O(depth) index lookup, parallel constrained space generation,
// and the generic exploration loop.
//
// The design follows Rasch, Haidl, Gorlatch: "ATF: A Generic Auto-Tuning
// Framework" (HPCC 2017 / HPDC 2018). The decisive difference from
// generate-then-filter tuners (CLTune) is that constraints are applied while
// iterating parameter ranges parameter-by-parameter, so invalid combinations
// are pruned before the Cartesian product is ever formed.
package core

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the fundamental value types a tuning parameter may take.
// The paper allows "arbitrary fundamental types (e.g., bool, integer, or
// float)" plus enum types; strings stand in for enums here.
type Kind uint8

const (
	KindInt Kind = iota
	KindFloat
	KindBool
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a small tagged union holding one tuning-parameter value. A tagged
// union (rather than interface{}) keeps search-space generation allocation-
// free on the hot path; spaces with 10^7 configurations are routine here.
type Value struct {
	kind Kind
	i    int64 // ints; bools as 0/1
	f    float64
	s    string
}

// Int returns a Value of kind int.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a Value of kind float.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a Value of kind bool.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Str returns a Value of kind string (ATF's enum parameters).
func Str(v string) Value { return Value{kind: KindString, s: v} }

// ValueOf converts a Go value of a fundamental type into a Value.
// It panics for unsupported types; ranges are built at setup time where a
// loud failure is preferable to a silently corrupt search space.
func ValueOf(v any) Value {
	switch x := v.(type) {
	case Value:
		return x
	case int:
		return Int(int64(x))
	case int8:
		return Int(int64(x))
	case int16:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint:
		return Int(int64(x))
	case uint8:
		return Int(int64(x))
	case uint16:
		return Int(int64(x))
	case uint32:
		return Int(int64(x))
	case uint64:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case bool:
		return Bool(x)
	case string:
		return Str(x)
	default:
		panic(fmt.Sprintf("core: unsupported tuning value type %T", v))
	}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It panics if the value is not an int or
// bool (bools convert to 0/1, mirroring C++ integral promotion used by ATF
// constraints over boolean parameters).
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic("core: Value.Int on " + v.kind.String())
	}
	return v.i
}

// Float returns the value as float64, converting ints and bools.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		panic("core: Value.Float on " + v.kind.String())
	}
}

// Bool returns the boolean payload; ints map to v != 0.
func (v Value) Bool() bool {
	if v.kind != KindBool && v.kind != KindInt {
		panic("core: Value.Bool on " + v.kind.String())
	}
	return v.i != 0
}

// Str returns the string payload.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("core: Value.Str on " + v.kind.String())
	}
	return v.s
}

// Equal reports whether two values are identical in kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Less orders values of the same kind; mixed numeric kinds compare as
// floats. It is used by deterministic tie-breaking and by tests.
func (v Value) Less(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindFloat:
			return v.f < o.f
		case KindString:
			return v.s < o.s
		default:
			return v.i < o.i
		}
	}
	return v.Float() < o.Float()
}

// String renders the value for logs and reports.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// IsFinite reports whether a float value is finite; non-float values are
// always finite.
func (v Value) IsFinite() bool {
	if v.kind != KindFloat {
		return true
	}
	return !math.IsInf(v.f, 0) && !math.IsNaN(v.f)
}
