package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"atf/internal/server"
)

func collectNDJSON(t *testing.T, input string) (lines []string, torn bool, err error) {
	t.Helper()
	torn, err = ScanNDJSON(strings.NewReader(input), func(line []byte) (bool, error) {
		if !json.Valid(line) {
			return false, errors.New("bad line")
		}
		lines = append(lines, string(line))
		return true, nil
	})
	return lines, torn, err
}

func TestScanNDJSONCompleteStream(t *testing.T) {
	lines, torn, err := collectNDJSON(t, "{\"a\":1}\n{\"a\":2}\n")
	if err != nil || torn {
		t.Fatalf("err=%v torn=%v", err, torn)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
}

// TestScanNDJSONTornTail is the regression test for reconnect handling:
// the line a dying peer cut short must be dropped silently, exactly like
// the journal's torn-tail tolerance on disk.
func TestScanNDJSONTornTail(t *testing.T) {
	lines, torn, err := collectNDJSON(t, "{\"a\":1}\n{\"a\":2}\n{\"a\":")
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if len(lines) != 2 {
		t.Fatalf("kept %d complete lines, want 2", len(lines))
	}
}

func TestScanNDJSONMidStreamGarbageErrors(t *testing.T) {
	_, _, err := collectNDJSON(t, "{\"a\":1}\nnot json at all\n{\"a\":2}\n")
	if err == nil {
		t.Fatal("malformed mid-stream line must error")
	}
}

func TestScanNDJSONStopEarly(t *testing.T) {
	var n int
	torn, err := ScanNDJSON(strings.NewReader("{}\n{}\n{}\n"), func(line []byte) (bool, error) {
		n++
		return n < 2, nil
	})
	if err != nil || torn || n != 2 {
		t.Fatalf("err=%v torn=%v n=%d, want clean stop after 2", err, torn, n)
	}
}

func TestScanNDJSONSkipsBlankLines(t *testing.T) {
	lines, torn, err := collectNDJSON(t, "\n{\"a\":1}\n\n\n{\"a\":2}\n\n")
	if err != nil || torn || len(lines) != 2 {
		t.Fatalf("err=%v torn=%v lines=%d", err, torn, len(lines))
	}
}

// TestEvaluationsToleratesTornTail drives Client.Evaluations against a
// server whose NDJSON stream dies mid-record: the complete prefix is
// delivered and no error surfaces, so the caller can reconnect from the
// record count it kept.
func TestEvaluationsToleratesTornTail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, "{\"index\":%d,\"key\":\"k%d\"}\n", i, i)
		}
		fmt.Fprint(w, `{"index":3,"key":"trunca`) // the kill mid-write
	}))
	defer srv.Close()

	c := New(srv.URL)
	var got []server.EvalRecord
	err := c.Evaluations(context.Background(), "s", 0, func(rec server.EvalRecord) bool {
		got = append(got, rec)
		return true
	})
	if err != nil {
		t.Fatalf("torn tail leaked as error: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("kept %d records, want the 3 complete ones", len(got))
	}
	for i, rec := range got {
		if rec.Index != uint64(i) {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
	}
}
