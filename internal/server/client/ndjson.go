package client

import (
	"bufio"
	"io"
)

// ScanNDJSON reads newline-delimited JSON from r, calling fn for every
// complete line (empty lines are skipped). fn returns whether to keep
// reading and a decode error for malformed lines.
//
// A malformed *final* line is tolerated and reported via torn instead of
// an error: it is the line a dying peer cut short mid-write — the same
// torn-tail discipline the tuning journal applies on disk. Callers
// reconnect and resume from the count of complete records they kept.
// Malformed lines with complete lines after them are real protocol
// errors and are returned as such.
func ScanNDJSON(r io.Reader, fn func(line []byte) (keep bool, err error)) (torn bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	// One line of lookahead: a line is only handed to fn once its
	// successor proves it was completely written, or after the stream
	// ends (then a decode failure means a torn tail, not an error).
	var pending []byte
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			keep, err := fn(pending)
			if err != nil {
				return false, err
			}
			if !keep {
				return false, nil
			}
		}
		pending = append(pending[:0], line...)
	}
	readErr := sc.Err()
	if pending != nil {
		if _, err := fn(pending); err != nil {
			return true, readErr
		}
	}
	return false, readErr
}
