package atf_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"atf"
)

// saxpySpecJSON is the paper's Listing 2 saxpy space as a declarative
// spec: WPT divides N, LS divides N/WPT.
const saxpySpecJSON = `{
	"name": "saxpy-demo",
	"parameters": [
		{"name": "WPT", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64"}]},
		{"name": "LS", "range": {"interval": {"begin": 1, "end": 64}},
		 "constraints": [{"op": "divides", "expr": "64 / WPT"}]}
	],
	"cost": {"kind": "expr", "expr": "(64 - WPT) * (64 - WPT) + LS"},
	"technique": {"kind": "exhaustive"},
	"seed": 1
}`

func TestSpecRunExhaustive(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(saxpySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Optimum of the quadratic toy cost: WPT=64, LS=1.
	if res.Best.Int("WPT") != 64 || res.Best.Int("LS") != 1 {
		t.Errorf("best = %v", res.Best)
	}
	if res.BestCost.Primary() != 1 {
		t.Errorf("best cost = %v, want 1", res.BestCost)
	}
	if res.Evaluations != res.SpaceSize {
		t.Errorf("exhaustive run: %d evaluations over space %d", res.Evaluations, res.SpaceSize)
	}
}

func TestSpecTechniquesAndAbort(t *testing.T) {
	for _, kind := range []string{"annealing", "random", "opentuner", "local"} {
		spec, err := atf.ParseSpec([]byte(`{
			"parameters": [{"name": "X", "range": {"interval": {"begin": 1, "end": 50}}}],
			"cost": {"kind": "expr", "expr": "X"},
			"technique": {"kind": "` + kind + `"},
			"abort": {"evaluations": 30},
			"seed": 7
		}`))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := spec.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Evaluations != 30 {
			t.Errorf("%s: evaluations = %d, want 30", kind, res.Evaluations)
		}
		if res.Best == nil {
			t.Errorf("%s: no best found", kind)
		}
	}
}

func TestSpecParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) *atf.Result {
		t.Helper()
		spec, err := atf.ParseSpec([]byte(saxpySpecJSON))
		if err != nil {
			t.Fatal(err)
		}
		spec.Parallelism = parallelism
		res, err := spec.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if !seq.Best.Equal(par.Best) || seq.BestCost.String() != par.BestCost.String() ||
		seq.Evaluations != par.Evaluations {
		t.Errorf("parallel spec run diverged: %v/%v vs %v/%v",
			seq.Best, seq.BestCost, par.Best, par.BestCost)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"unknown field", `{"parameterz": []}`, "unknown field"},
		{"no params", `{"cost": {"kind": "expr", "expr": "1"}}`, "no tuning parameters"},
		{"no cost kind", `{"parameters": [{"name": "X", "range": {"bools": true}}]}`, "cost.kind"},
		{"bad cost kind", `{"parameters": [{"name": "X", "range": {"bools": true}}], "cost": {"kind": "quantum"}}`, "unknown cost kind"},
		{"bad technique", `{"parameters": [{"name": "X", "range": {"bools": true}}], "cost": {"kind": "expr", "expr": "1"}, "technique": {"kind": "psychic"}}`, "unknown technique"},
		{"bad op", `{"parameters": [{"name": "X", "range": {"interval": {"begin": 1, "end": 4}}, "constraints": [{"op": "resembles", "expr": "2"}]}], "cost": {"kind": "expr", "expr": "X"}}`, "unknown constraint alias"},
		{"forward ref", `{"parameters": [{"name": "X", "range": {"interval": {"begin": 1, "end": 4}}, "constraints": [{"op": "divides", "expr": "Y"}]}, {"name": "Y", "range": {"interval": {"begin": 1, "end": 4}}}], "cost": {"kind": "expr", "expr": "X"}}`, "not declared earlier"},
		{"ambiguous range", `{"parameters": [{"name": "X", "range": {"bools": true, "interval": {"begin": 1, "end": 4}}}], "cost": {"kind": "expr", "expr": "X"}}`, "exactly one"},
		{"cost refs unknown", `{"parameters": [{"name": "X", "range": {"bools": true}}], "cost": {"kind": "expr", "expr": "X + SECRET"}}`, "unknown parameter"},
	}
	for _, tc := range cases {
		_, err := atf.ParseSpec([]byte(tc.spec))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSpecSetAndBoolRanges(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(`{
		"parameters": [
			{"name": "VW", "range": {"set": [1, 2, 4, 8]}},
			{"name": "PAD", "range": {"bools": true}},
			{"name": "MODE", "range": {"set": ["scalar", "simd"]}}
		],
		"cost": {"kind": "expr", "expr": "VW"},
		"seed": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 16 { // 4 * 2 * 2
		t.Errorf("space size = %d, want 16", res.SpaceSize)
	}
	if res.Best.Int("VW") != 1 {
		t.Errorf("best = %v", res.Best)
	}
}

// TestResultJSONRoundTrip is the API-stability check: a Result marshals to
// snake_cased JSON and unmarshals back without losing the best
// configuration, costs, counters or history.
func TestResultJSONRoundTrip(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(saxpySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Record = true
	res, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"best"`, `"best_cost"`, `"evaluations"`, `"valid"`,
		`"space_size"`, `"raw_space_size"`, `"history"`, `"improvements"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshaled result misses %s: %.200s", key, data)
		}
	}
	var back atf.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Best.Equal(res.Best) || back.BestCost.String() != res.BestCost.String() {
		t.Errorf("round trip lost best: %v/%v", back.Best, back.BestCost)
	}
	if back.Evaluations != res.Evaluations || back.Valid != res.Valid ||
		back.SpaceSize != res.SpaceSize || back.RawSpaceSize != res.RawSpaceSize {
		t.Errorf("round trip lost counters: %+v", back)
	}
	if len(back.History) != len(res.History) || len(back.Improvements) != len(res.Improvements) {
		t.Errorf("round trip lost history: %d/%d", len(back.History), len(back.Improvements))
	}
	for i := range res.History {
		if !back.History[i].Config.Equal(res.History[i].Config) ||
			back.History[i].Index != res.History[i].Index {
			t.Fatalf("history %d differs after round trip", i)
		}
	}
}
