package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// sameResult asserts the determinism contract of ExploreParallel: Best,
// BestCost, Improvements (index, config, cost) and the evaluation counters
// match the sequential reference run.
func sameResult(t *testing.T, ref, got *Result, label string) {
	t.Helper()
	if (ref.Best == nil) != (got.Best == nil) {
		t.Fatalf("%s: best presence differs: %v vs %v", label, ref.Best, got.Best)
	}
	if ref.Best != nil && !ref.Best.Equal(got.Best) {
		t.Fatalf("%s: best differs: %v vs %v", label, ref.Best, got.Best)
	}
	if ref.BestCost.String() != got.BestCost.String() {
		t.Fatalf("%s: best cost differs: %v vs %v", label, ref.BestCost, got.BestCost)
	}
	if ref.Evaluations != got.Evaluations || ref.Valid != got.Valid {
		t.Fatalf("%s: counters differ: (%d,%d) vs (%d,%d)", label,
			ref.Evaluations, ref.Valid, got.Evaluations, got.Valid)
	}
	if len(ref.Improvements) != len(got.Improvements) {
		t.Fatalf("%s: %d improvements vs %d", label, len(ref.Improvements), len(got.Improvements))
	}
	for i := range ref.Improvements {
		r, g := ref.Improvements[i], got.Improvements[i]
		if r.Index != g.Index || !r.Config.Equal(g.Config) || r.Cost.String() != g.Cost.String() {
			t.Fatalf("%s: improvement %d differs: {%d %v %v} vs {%d %v %v}", label, i,
				r.Index, r.Config, r.Cost, g.Index, g.Config, g.Cost)
		}
	}
	if len(ref.History) != len(got.History) {
		t.Fatalf("%s: history length differs: %d vs %d", label, len(ref.History), len(got.History))
	}
	for i := range ref.History {
		r, g := ref.History[i], got.History[i]
		if r.Index != g.Index || !r.Config.Equal(g.Config) ||
			r.Cost.String() != g.Cost.String() || r.Cached != g.Cached {
			t.Fatalf("%s: history %d differs: {%d %v %v cached=%v} vs {%d %v %v cached=%v}",
				label, i, r.Index, r.Config, r.Cost, r.Cached, g.Index, g.Config, g.Cost, g.Cached)
		}
	}
}

// TestExploreParallelDeterministic is the determinism table test: the
// parallel engine with workers ∈ {1, 2, 8} must produce identical Best,
// BestCost and Improvements to the sequential Explore for exhaustive and
// seeded-random techniques on the saxpy space.
func TestExploreParallelDeterministic(t *testing.T) {
	const n = 96
	sp := mustSpace(t, saxpyParams(n))
	techniques := []struct {
		name string
		mk   func() Technique
	}{
		{"exhaustive", func() Technique { return &indexWalker{} }},
		{"random", func() Technique { return &randomTechnique{} }},
	}
	for _, tc := range techniques {
		t.Run(tc.name, func(t *testing.T) {
			opts := ExploreOptions{Seed: 42, Record: true, CacheCosts: true}
			ref, err := Explore(sp, tc.mk(), quadCost(n), Evaluations(60), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := ExploreParallel(sp, tc.mk(), quadCost(n), Evaluations(60),
					ParallelOptions{ExploreOptions: opts, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, ref, got, tc.name)
			}
		})
	}
}

// TestExploreParallelAbortMidBatch pins the abort boundary: when the abort
// condition fires in the middle of a batch, the surplus speculative
// evaluations are discarded, so counters and history match the sequential
// run even when the budget is not a multiple of the batch size.
func TestExploreParallelAbortMidBatch(t *testing.T) {
	const n = 48
	sp := mustSpace(t, saxpyParams(n))
	opts := ExploreOptions{Record: true}
	ref, err := Explore(sp, &indexWalker{}, quadCost(n), Evaluations(13), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreParallel(sp, &indexWalker{}, quadCost(n), Evaluations(13),
		ParallelOptions{ExploreOptions: opts, Workers: 8, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got, "mid-batch abort")
}

// TestExploreParallelConcurrentCacheDedup checks the sharded cache's
// in-flight deduplication: a technique stuck on one configuration must pay
// the cost function exactly once even with many concurrent workers.
func TestExploreParallelConcurrentCacheDedup(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	var calls atomic.Int64
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		calls.Add(1)
		return SingleCost(1), nil
	})
	res, err := ExploreParallel(sp, &stuckTechnique{}, cf, Evaluations(64),
		ParallelOptions{ExploreOptions: ExploreOptions{CacheCosts: true}, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 64 {
		t.Fatalf("evaluations = %d, want 64", res.Evaluations)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cost function called %d times, want 1 (in-flight dedup)", got)
	}
	if res.History != nil {
		t.Fatal("history must stay empty without Record")
	}
}

// TestExploreParallelCachedErrorsKeepErr verifies the cache retains the
// (cost, error) pair: a cached failing configuration reports the original
// error, and the Cached flag marks every hit, in commit order.
func TestExploreParallelCachedErrorsKeepErr(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	boom := errors.New("kernel launch failed")
	cf := CostFunc(func(cfg *Config) (Cost, error) { return nil, boom })
	res, err := ExploreParallel(sp, &stuckTechnique{}, cf, Evaluations(6),
		ParallelOptions{ExploreOptions: ExploreOptions{CacheCosts: true, Record: true}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 6 {
		t.Fatalf("history length = %d", len(res.History))
	}
	for i, ev := range res.History {
		if !errors.Is(ev.Err, boom) {
			t.Fatalf("evaluation %d lost the original error: %v", i, ev.Err)
		}
		if ev.Cached != (i > 0) {
			t.Fatalf("evaluation %d: Cached = %v", i, ev.Cached)
		}
		if !ev.Cost.IsInf() {
			t.Fatalf("evaluation %d: failed config must cost +inf", i)
		}
	}
}

// cloneCountingCF counts how many clones were made and which instances
// were used, to verify the per-worker clone path.
type cloneCountingCF struct {
	clones *atomic.Int64
	used   *sync.Map // instance id -> true
	id     int64
}

func (c *cloneCountingCF) Cost(cfg *Config) (Cost, error) {
	c.used.Store(c.id, true)
	return SingleCost(float64(cfg.Int("WPT"))), nil
}

func (c *cloneCountingCF) Clone() (CostFunction, error) {
	id := c.clones.Add(1)
	return &cloneCountingCF{clones: c.clones, used: c.used, id: id}, nil
}

func TestExploreParallelClonesCostFunction(t *testing.T) {
	sp := mustSpace(t, saxpyParams(64))
	var clones atomic.Int64
	cf := &cloneCountingCF{clones: &clones, used: &sync.Map{}}
	if _, err := ExploreParallel(sp, &indexWalker{}, cf, Evaluations(40),
		ParallelOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if clones.Load() != 3 {
		t.Fatalf("clones = %d, want 3 (one per extra worker)", clones.Load())
	}
}

// TestBatcherSpeculativeProtocol checks the sequential-technique adapter:
// batches draw without intermediate feedback, costs are replayed in order,
// and exhaustion ends the batch stream.
func TestBatcherSpeculativeProtocol(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	w := &indexWalker{}
	b := AsBatch(w)
	b.Initialize(sp, 1)
	total := int(sp.Size())
	batch := b.GetNextBatch(total + 5)
	if len(batch) != total {
		t.Fatalf("batch length = %d, want %d (exhaustion truncates)", len(batch), total)
	}
	evals := make([]Evaluation, len(batch))
	for i, cfg := range batch {
		evals[i] = Evaluation{Index: uint64(i), Config: cfg, Cost: SingleCost(float64(i))}
	}
	b.ReportCosts(evals)
	if len(w.reports) != total {
		t.Fatalf("reports = %d, want %d", len(w.reports), total)
	}
	for i, c := range w.reports {
		if c.Primary() != float64(i) {
			t.Fatalf("report %d out of order: %v", i, c)
		}
	}
	if got := b.GetNextBatch(4); len(got) != 0 {
		t.Fatalf("exhausted technique must yield empty batches, got %d", len(got))
	}
	b.Finalize()
	if !w.finaled {
		t.Fatal("Finalize must reach the wrapped technique")
	}
}

// TestExploreParallelRejectsBadInputs mirrors the sequential validation.
func TestExploreParallelRejectsBadInputs(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	cf := quadCost(12)
	if _, err := ExploreParallel(nil, &indexWalker{}, cf, nil, ParallelOptions{Workers: 4}); err == nil {
		t.Error("nil space must error")
	}
	if _, err := ExploreParallel(sp, nil, cf, nil, ParallelOptions{Workers: 4}); err == nil {
		t.Error("nil technique must error")
	}
	if _, err := ExploreParallel(sp, &indexWalker{}, nil, nil, ParallelOptions{Workers: 4}); err == nil {
		t.Error("nil cost function must error")
	}
}

// TestExploreCachedErrorSequential pins the sequential cache fix: a cache
// hit on a failing configuration reports the original error and sets
// Cached.
func TestExploreCachedErrorSequential(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	boom := errors.New("nope")
	calls := 0
	cf := CostFunc(func(cfg *Config) (Cost, error) { calls++; return nil, boom })
	res, err := Explore(sp, &stuckTechnique{}, cf, Evaluations(3),
		ExploreOptions{CacheCosts: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("cost function called %d times, want 1", calls)
	}
	for i, ev := range res.History {
		if !errors.Is(ev.Err, boom) {
			t.Fatalf("evaluation %d: cached error lost: %v", i, ev.Err)
		}
		if ev.Cached != (i > 0) {
			t.Fatalf("evaluation %d: Cached = %v", i, ev.Cached)
		}
	}
}
