package oclc

import "sync"

// ValKind classifies runtime value types in the interpreter's dynamic type
// system. All integer widths collapse to int64 and all floating widths to
// float64; this preserves C's int-vs-float semantics (notably integer
// division for index math) without modelling exact widths.
type ValKind uint8

const (
	KVoid ValKind = iota
	KInt
	KFloat
	KBool
	KPtr
)

func (k ValKind) String() string {
	switch k {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KBool:
		return "bool"
	case KPtr:
		return "pointer"
	}
	return "?"
}

// AddrSpace is an OpenCL address space.
type AddrSpace uint8

const (
	SpacePrivate AddrSpace = iota
	SpaceGlobal
	SpaceLocal
)

func (s AddrSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "__global"
	case SpaceLocal:
		return "__local"
	default:
		return "__private"
	}
}

// Type is a (possibly pointer) declared type.
type Type struct {
	Kind  ValKind
	Ptr   bool
	Space AddrSpace
}

// Expr is an expression node.
type Expr interface{ exprPos() Pos }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// VarRef references a local variable or parameter by resolved frame slot.
type VarRef struct {
	Pos  Pos
	Name string
	Slot int
}

// Unary is a prefix (-x, !x, ~x, ++x, --x) or postfix (x++, x--) operation.
type Unary struct {
	Pos     Pos
	Op      string
	X       Expr
	Postfix bool
}

// Binary is an infix arithmetic/logical/comparison operation.
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Assign is an assignment, possibly compound (+=, -=, ...). Target is a
// VarRef or Index.
type Assign struct {
	Pos    Pos
	Op     string // "=", "+=", ...
	Target Expr
	Value  Expr
}

// Cond is the ternary conditional.
type Cond struct {
	Pos     Pos
	C, T, F Expr
}

// Call is a function or builtin call.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Index subscripts a pointer or (possibly 2-D) array. Site is the static
// access-site id within the enclosing function, used by the coalescing
// analysis to group dynamic addresses per source location.
type Index struct {
	Pos  Pos
	Base Expr
	Idx  []Expr
	Site int
}

// Cast converts a value to a scalar type.
type Cast struct {
	Pos Pos
	To  Type
	X   Expr
}

func (e *IntLit) exprPos() Pos   { return e.Pos }
func (e *FloatLit) exprPos() Pos { return e.Pos }
func (e *VarRef) exprPos() Pos   { return e.Pos }
func (e *Unary) exprPos() Pos    { return e.Pos }
func (e *Binary) exprPos() Pos   { return e.Pos }
func (e *Assign) exprPos() Pos   { return e.Pos }
func (e *Cond) exprPos() Pos     { return e.Pos }
func (e *Call) exprPos() Pos     { return e.Pos }
func (e *Index) exprPos() Pos    { return e.Pos }
func (e *Cast) exprPos() Pos     { return e.Pos }

// Stmt is a statement node.
type Stmt interface{ stmtPos() Pos }

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares one variable, optionally an array with constant-
// evaluable dimensions (local tiles) and optionally initialized.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Dims []Expr // nil for scalars; 1 or 2 entries for arrays
	Init Expr
	Slot int
}

// DeclStmt holds the declarations of one declaration statement.
type DeclStmt struct {
	Pos   Pos
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// If is a conditional statement.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// For is a C for-loop. Unroll carries the "#pragma unroll" hint (0 = none)
// that the performance model uses to discount loop overhead.
type For struct {
	Pos    Pos
	Init   Stmt // may be nil
	Cond   Expr // may be nil (infinite)
	Post   Expr // may be nil
	Body   Stmt
	Unroll int64
}

// While is a while-loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// Return exits the current function.
type Return struct {
	Pos Pos
	X   Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (s *Block) stmtPos() Pos        { return s.Pos }
func (s *DeclStmt) stmtPos() Pos     { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *If) stmtPos() Pos           { return s.Pos }
func (s *For) stmtPos() Pos          { return s.Pos }
func (s *While) stmtPos() Pos        { return s.Pos }
func (s *Return) stmtPos() Pos       { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }

// FuncParam is a function parameter with its resolved frame slot.
type FuncParam struct {
	Name string
	Type Type
	Slot int
}

// Function is a parsed kernel or helper function.
type Function struct {
	Name     string
	Kernel   bool
	Ret      Type
	Params   []FuncParam
	Body     *Block
	NumSlots int
	// siteCount is the number of memory-access sites (Index nodes)
	// assigned in this function; sites identify static load/store
	// locations for the coalescing analysis.
	siteCount int

	// vm / vmNoSpec are the bytecode forms produced by lowering
	// (compile.go) — specialized and unspecialized respectively. nil when
	// lowering was skipped or bailed out; Launch then falls back to the
	// tree-walking engine.
	vm       *vmCode
	vmNoSpec *vmCode
}

// Program is a parsed translation unit.
type Program struct {
	Funcs map[string]*Function
	// Source retains the preprocessed source for diagnostics.
	Source string

	// noSpecOnce guards the lazy unspecialized lowering used by the
	// EngineVMNoSpec ablation.
	noSpecOnce sync.Once
}

// Kernel returns the named kernel function.
func (p *Program) Kernel(name string) (*Function, error) {
	f, ok := p.Funcs[name]
	if !ok {
		return nil, errf(Pos{}, "kernel %q not found", name)
	}
	if !f.Kernel {
		return nil, errf(Pos{}, "%q is not a __kernel function", name)
	}
	return f, nil
}
