// Command atfd is the tuning-as-a-service daemon: it runs tuning sessions
// described by declarative JSON specs over an HTTP API and journals every
// cost evaluation to disk, so a killed daemon restarts and resumes its
// interrupted sessions deterministically.
//
// Usage:
//
//	atfd -addr 127.0.0.1:7521 -journal-dir ./atfd-journals
//
//	# create a session
//	curl -d @saxpy.json http://127.0.0.1:7521/v1/sessions
//	# follow its evaluation stream
//	curl http://127.0.0.1:7521/v1/sessions/<id>/evaluations
//	# fetch the best configuration found so far
//	curl http://127.0.0.1:7521/v1/sessions/<id>/best
//	# scrape process metrics / read one session's stats
//	curl http://127.0.0.1:7521/metrics
//	curl http://127.0.0.1:7521/v1/sessions/<id>/stats
//	# list the evaluation worker fleet (see cmd/atf-worker)
//	curl http://127.0.0.1:7521/v1/workers
//
// The daemon is also the coordinator of the distributed evaluation
// fleet: atf-worker processes register on /v1/workers and sessions'
// cost evaluations are dispatched to them, with speculative re-dispatch
// of straggler partitions and an in-process fallback, merged so results
// are bit-identical to a local run. With no workers registered the
// daemon evaluates everything in process, exactly as before; -fleet=false
// disables the coordinator entirely.
//
// Observability (docs/OPERATIONS.md): /metrics serves the process-wide
// counters and histograms in Prometheus text format, -pprof mounts the Go
// profiler under /debug/pprof/, and -trace narrates span events (space
// generation, exploration runs) as structured logs on stderr.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atf/internal/dist"
	"atf/internal/obs"
	"atf/internal/oclc"
	"atf/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7521", "HTTP listen address")
	dir := flag.String("journal-dir", "atfd-journals", "tuning journal directory")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	trace := flag.Bool("trace", false, "log structured span/trace events to stderr")
	engine := flag.String("engine", "",
		"oclc execution engine for kernel launches: vm-vec (default), vm, walk, vm-nospec (docs/OPERATIONS.md)")
	fleet := flag.Bool("fleet", true, "coordinate remote eval workers (cmd/atf-worker) on /v1/workers")
	maxSpaceBytes := flag.Int64("max-space-bytes", 256<<20,
		"default per-session memory bound on lazy search-space construction; 0 = unbounded (specs override with max_space_bytes)")
	heartbeat := flag.Duration("worker-heartbeat", 2*time.Second, "worker heartbeat interval; liveness expires after 3 heartbeats")
	straggler := flag.Duration("straggler-after", 10*time.Second, "speculatively re-dispatch a batch partition after this long")
	sessionWorkers := flag.Int("session-workers", 0,
		"max fleet workers one session spreads its batches across; 0 = the whole live fleet")
	costCacheBytes := flag.Int64("shared-cost-cache-bytes", 64<<20,
		"byte budget of the cross-session cost-outcome cache; 0 disables sharing, -1 = unbounded")
	spaceCacheEntries := flag.Int("space-cache-entries", 64,
		"generated search spaces kept for re-submitted specs; 0 disables the cache, -1 = unbounded")
	compileCacheBytes := flag.Int64("compile-cache-bytes", oclc.DefaultCompileCacheBudget,
		"byte budget of the shared compiled-kernel cache; 0 disables it, -1 = unbounded")
	maxSessions := flag.Int("max-sessions", 0,
		"admission control: max concurrently running sessions before POST /v1/sessions answers 429; 0 = unlimited")
	maxInflightEvals := flag.Int("max-inflight-evals", 0,
		"backpressure: max concurrent cost evaluations across all sessions; 0 = unlimited")
	rotateBytes := flag.Int64("journal-rotate-bytes", 64<<20,
		"rotate a session journal into numbered segments past this size; 0 never rotates")
	journalCompact := flag.Bool("journal-compact", false,
		"rewrite rotated journal segments down to their deduplicated outcome maps")
	stateDir := flag.String("state-dir", "",
		"persistent warm-start directory (lazy-space censuses, cost outcomes, compiled kernels); empty disables")
	stateSync := flag.Duration("state-sync", 30*time.Second,
		"how often the warm-start state flushes to -state-dir; 0 only saves at shutdown")
	pipeline := flag.Bool("pipeline", true,
		"overlap batch dispatch with result merging for cost-oblivious techniques (exhaustive, random)")
	flag.Parse()

	eng, err := oclc.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	if eng != oclc.EngineDefault {
		oclc.SetDefaultEngine(eng)
	}
	oclc.SetCompileCacheBudget(*compileCacheBytes)

	if *trace {
		obs.EnableTracing(obs.NewTextTracer(os.Stderr, slog.LevelDebug))
	}

	m, err := server.NewManager(*dir)
	if err != nil {
		fail(err)
	}
	m.MaxSpaceBytes = *maxSpaceBytes
	m.SharedCostCacheBytes = *costCacheBytes
	m.SpaceCacheEntries = *spaceCacheEntries
	m.MaxSessions = *maxSessions
	m.MaxEvalsInFlight = *maxInflightEvals
	m.RotateBytes = *rotateBytes
	m.CompactSegments = *journalCompact
	m.Pipeline = *pipeline
	if *stateDir != "" {
		// Load the warm-start store before Resume so resumed sessions see
		// the restored censuses, outcomes and compiled kernels.
		if err := m.OpenState(*stateDir, *stateSync); err != nil {
			fail(err)
		}
		fmt.Printf("atfd: warm-start state in %s\n", *stateDir)
	}
	var coordinator *dist.Fleet
	if *fleet {
		// The evaluator factory must be in place before Resume so resumed
		// sessions dispatch to the fleet too.
		coordinator = dist.NewFleet(dist.Options{
			Heartbeat:      *heartbeat,
			StragglerAfter: *straggler,
			SessionWorkers: *sessionWorkers,
		})
		m.Evaluator = coordinator.SessionEvaluator
	}
	resumed, err := m.Resume()
	if err != nil {
		// Unreadable journals are reported but don't stop the daemon:
		// the intact sessions still run.
		fmt.Fprintln(os.Stderr, "atfd: resume:", err)
	}
	for _, s := range resumed {
		fmt.Printf("atfd: resumed session %s (%d evaluations journaled)\n",
			s.ID, s.Status().ResumedEvaluations)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	handler := (&server.API{Manager: m, Pprof: *enablePprof}).Handler()
	if coordinator != nil {
		// The fleet endpoints mount beside the session API; /v1/workers is
		// more specific than the API mux's patterns, so it wins.
		top := http.NewServeMux()
		top.Handle("/v1/workers", coordinator.Handler())
		top.Handle("/v1/workers/", coordinator.Handler()) // id heartbeats
		top.Handle("/", handler)
		handler = top
	}
	srv := &http.Server{Handler: handler}
	fmt.Printf("atfd: listening on http://%s (journals in %s)\n", ln.Addr(), m.Dir())
	if *enablePprof {
		fmt.Printf("atfd: pprof enabled at http://%s/debug/pprof/\n", ln.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("atfd: %v: interrupting sessions (journals stay resumable)\n", sig)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "atfd: serve:", err)
	}

	// Stop accepting requests, then interrupt the runs without writing
	// done records — the next start resumes them from their journals.
	srv.Close()
	m.Shutdown()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atfd:", err)
	os.Exit(1)
}
