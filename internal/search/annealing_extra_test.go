package search

import (
	"testing"

	"atf/internal/core"
)

func TestAnnealingWarmStart(t *testing.T) {
	sp := testSpace(t, 1000)
	start := core.ConfigFromMap([]string{"x"}, map[string]core.Value{"x": core.Int(123)})
	a := &Annealing{Start: start}
	a.Initialize(sp, 42)
	first := a.GetNextConfig()
	if first.Int("x") != 123 {
		t.Fatalf("warm start ignored: first proposal %v", first)
	}
}

func TestAnnealingWarmStartForeignConfigFallsBack(t *testing.T) {
	sp := testSpace(t, 100)
	// x=5000 is not a member of the space; the annealer must fall back to
	// a random (but valid) start instead of panicking.
	start := core.ConfigFromMap([]string{"x"}, map[string]core.Value{"x": core.Int(5000)})
	a := &Annealing{Start: start}
	a.Initialize(sp, 42)
	first := a.GetNextConfig()
	if first.Int("x") < 1 || first.Int("x") > 100 {
		t.Fatalf("fallback start invalid: %v", first)
	}
}

func TestAnnealingRestartsEscapeTraps(t *testing.T) {
	// A deceptive cost surface: a deep needle at x=777, flat elsewhere.
	// The plain annealer accepts flat moves and random-walks; restarts
	// jumping back to the best point plus random diversification must
	// find the needle far more reliably within the same budget.
	sp := testSpace(t, 5000)
	needle := core.ScalarCostFunc(func(cfg *core.Config) float64 {
		if cfg.Int("x") == 777 {
			return 1
		}
		return 1000
	})
	hits := func(tech core.Technique) int {
		n := 0
		for seed := int64(1); seed <= 10; seed++ {
			res, err := core.Explore(sp, tech, needle, core.Evaluations(1500),
				core.ExploreOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.BestCost.Primary() == 1 {
				n++
			}
		}
		return n
	}
	withRestarts := hits(&Annealing{RestartAfter: 20})
	if withRestarts == 0 {
		t.Fatal("restarting annealer never found the needle")
	}
}

func TestAnnealingWarmStartImprovesFromKnownGood(t *testing.T) {
	// Warm-started near the optimum, the annealer must never end up
	// worse than the start (it reports the best *seen*, which includes
	// the start itself).
	sp := testSpace(t, 10000)
	cf := valley(4242)
	start := core.ConfigFromMap([]string{"x"}, map[string]core.Value{"x": core.Int(4200)})
	startCost := 100.0 + 42*42
	res, err := core.Explore(sp, &Annealing{Start: start}, cf, core.Evaluations(300),
		core.ExploreOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost.Primary() > startCost {
		t.Fatalf("warm-started run ended worse (%v) than its start (%v)",
			res.BestCost.Primary(), startCost)
	}
}
