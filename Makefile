# Developer entry points; `make check` is what CI (and PR review) runs.

GO ?= go

.PHONY: all build vet test race doccheck check fmt bench benchgate e2e-dist e2e-load e2e-state

# The benchmark suite `make bench` records and `make benchgate` gates on.
BENCHES = BenchmarkGenerateSpace|BenchmarkExploreParallel|BenchmarkKernelInterpreter|BenchmarkExhaustiveSweep

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages get a dedicated race pass: the parallel
# exploration engine (including memoized multi-worker space generation and
# its clblast equivalence suite), the kernel interpreter/VM (scheduler and
# register-arena pooling), the observability registry, the atfd session
# manager/journal, and the distributed evaluation fleet.
race:
	$(GO) test -race ./internal/core/... ./internal/clblast/... ./internal/oclc/... ./internal/obs/... ./internal/server/... ./internal/dist/...

# e2e-dist exercises the real binaries: atfd plus two atf-worker
# processes tune one session, one worker is killed mid-run, and the
# result must match a fleetless control run (scripts/e2e-dist.sh).
e2e-dist: build
	sh scripts/e2e-dist.sh

# e2e-load floods one atfd with 50 concurrent identical sessions through
# cmd/atf-loadgen: admission control (429 + Retry-After) must hold the
# daemon up with zero failed sessions, the cross-session caches must see
# hits, and the headline latencies land in results/bench.json
# (scripts/e2e-load.sh).
e2e-load: build
	sh scripts/e2e-load.sh

# e2e-state kills and restarts a real atfd on one -state-dir and asserts
# via /metrics that the warm session recounts no census and recompiles no
# kernel (scripts/e2e-state.sh).
e2e-state: build
	sh scripts/e2e-state.sh

# doccheck enforces usable godoc: go vet's doc diagnostics plus a package
# comment on every package (scripts/doccheck.sh).
doccheck: vet
	sh scripts/doccheck.sh

check: doccheck build test race e2e-load benchgate

# bench runs the space-generation benchmark (memo on/off × workers), the
# exploration benches, and the kernel-interpreter engine comparison
# (walk vs vm-nospec vs vm vs vm-vec), 5 samples each for
# benchdiff/benchstat. The raw text is kept in results/bench.txt and a
# machine-readable mean-ns/op summary is written to results/bench.json;
# scripts/benchdiff.sh diffs any mix of the two formats:
#   make bench > after.txt   # then: scripts/benchdiff.sh before.txt after.txt
#   scripts/benchdiff.sh old-bench.json results/bench.json
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench '$(BENCHES)' -count=5 . | tee results/bench.txt
	@sh scripts/bench2json.sh results/bench.txt > results/bench.json

# benchgate is the performance regression gate (part of `make check`): a
# fresh -count=3 run of the bench suite diffed against the committed
# results/bench.json; any benchmark more than 25% slower fails the build.
# After an intentional perf change, re-baseline with `make bench` and
# commit the refreshed results/.
benchgate:
	@tmp=$$(mktemp) && trap 'rm -f $$tmp' EXIT && \
	$(GO) test -run '^$$' -bench '$(BENCHES)' -count=3 . > $$tmp && \
	sh scripts/benchdiff.sh -gate 25 results/bench.json $$tmp

fmt:
	gofmt -w .
