// Package oclc implements an OpenCL-C subset: a macro preprocessor (the
// mechanism by which ATF substitutes tuning-parameter values into kernel
// source), a lexer, a recursive-descent parser, and a per-work-item tree-
// walking interpreter with dynamic instruction and memory-access counters.
//
// The subset covers what real tuned kernels such as CLBlast's saxpy and
// XgemmDirect need: integer and floating arithmetic with C semantics,
// control flow (if/else, for, while), one- and two-dimensional __local
// arrays, work-group barriers, the work-item builtin functions, fma/mad,
// and "#pragma unroll" hints. It is an interpreter, not a compiler — the
// simulated device's timing model consumes the counters it produces.
package oclc

import "fmt"

// TokKind classifies lexical tokens.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokPunct  // operators and separators
	TokPragma // #pragma unroll <n>, attached to the following loop
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Int  int64   // valid for TokIntLit and TokPragma (unroll factor)
	Flt  float64 // valid for TokFloatLit
	Pos  Pos
}

// Pos is a source position for error messages.
type Pos struct {
	Line, Col int
}

// String renders the position 1-based.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokIntLit:
		return fmt.Sprintf("int(%d)", t.Int)
	case TokFloatLit:
		return fmt.Sprintf("float(%g)", t.Flt)
	case TokPragma:
		return fmt.Sprintf("#pragma unroll %d", t.Int)
	default:
		return t.Text
	}
}

// Error is a source-located compilation error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("oclc: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
