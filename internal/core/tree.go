package core

import "math/rand"

// The search space of one parameter group is stored as a trie ("tree of
// valid partial configurations"): level d of the trie holds the accepted
// values of the group's d-th parameter given the prefix encoded by the path
// from the root. Sharing prefixes keeps spaces with ~10^7 configurations in
// memory, and per-node leaf counts give O(depth · branching) lookup of the
// i-th configuration, uniform random sampling, and index-based
// neighbourhoods for annealing-style techniques.

// node is one trie vertex: a parameter value plus the subtrees of valid
// continuations. count caches the number of complete configurations below.
type node struct {
	val      Value
	children []*node // nil for leaf-level nodes
	count    uint64
}

// Tree is the generated sub-space of one parameter group.
type Tree struct {
	params []*Param
	names  []string
	roots  []*node
	total  uint64
	// checks counts constraint evaluations performed during generation;
	// reported by the space-generation experiments (E3).
	checks uint64
}

// Params returns the group's parameters in declaration order.
func (t *Tree) Params() []*Param { return t.params }

// Size returns the number of valid configurations in this group sub-space.
func (t *Tree) Size() uint64 { return t.total }

// Checks returns how many constraint evaluations generation performed.
func (t *Tree) Checks() uint64 { return t.checks }

// Nodes returns the number of trie vertices — the space's materialized
// memory footprint in nodes, reported by the generation instrumentation
// (prefix sharing makes this far smaller than Size() × depth).
func (t *Tree) Nodes() uint64 {
	var walk func(ns []*node) uint64
	walk = func(ns []*node) uint64 {
		n := uint64(len(ns))
		for _, c := range ns {
			n += walk(c.children)
		}
		return n
	}
	return walk(t.roots)
}

// Depth returns the number of parameters in the group.
func (t *Tree) Depth() int { return len(t.params) }

// fill writes the configuration with in-group index idx into cfg at the
// given parameter offset. idx must be < t.total.
func (t *Tree) fill(idx uint64, cfg *Config, offset int) {
	if idx >= t.total {
		panic("core: tree index out of range")
	}
	level := t.roots
	for d := 0; d < len(t.params); d++ {
		for _, n := range level {
			if idx < n.count {
				cfg.set(offset+d, n.val)
				level = n.children
				break
			}
			idx -= n.count
		}
	}
}

// indexOf returns the in-group index of the configuration stored in cfg at
// the given offset, and whether the configuration is present in the tree.
func (t *Tree) indexOf(cfg *Config, offset int) (uint64, bool) {
	var idx uint64
	level := t.roots
	for d := 0; d < len(t.params); d++ {
		want := cfg.At(offset + d)
		found := false
		for _, n := range level {
			if n.val.Equal(want) {
				level = n.children
				found = true
				break
			}
			idx += n.count
		}
		if !found {
			return 0, false
		}
	}
	return idx, true
}

// nodeCount returns the total number of trie nodes; used by the memory
// ablation bench comparing trie storage with a materialized list.
func (t *Tree) nodeCount() int {
	var walk func(ns []*node) int
	walk = func(ns []*node) int {
		c := len(ns)
		for _, n := range ns {
			c += walk(n.children)
		}
		return c
	}
	return walk(t.roots)
}

// sampleLeaf picks a uniformly random configuration index in the group.
func (t *Tree) sampleLeaf(rng *rand.Rand) uint64 {
	if t.total == 0 {
		panic("core: sampling from empty tree")
	}
	return uint64(rng.Int63n(int64(t.total)))
}

// sumCounts recomputes a node list's aggregate leaf count.
func sumCounts(ns []*node) uint64 {
	var s uint64
	for _, n := range ns {
		s += n.count
	}
	return s
}
