package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"atf"
	"atf/internal/core"
	"atf/internal/state"
)

// State is a session's lifecycle state.
type State string

const (
	// StateRunning: exploration in progress.
	StateRunning State = "running"
	// StateDone: exploration finished; the journal is closed.
	StateDone State = "done"
	// StateCanceled: a client canceled the session; terminal.
	StateCanceled State = "canceled"
	// StateFailed: the run errored (bad device, empty space, journal I/O).
	StateFailed State = "failed"
	// StateInterrupted: the daemon shut down mid-run; the journal has no
	// done record, so the session resumes on the next start.
	StateInterrupted State = "interrupted"
)

// Session is one tuning job owned by the Manager.
type Session struct {
	ID            string
	Name          string
	CreatedUnixNs int64
	Spec          *atf.Spec

	cancel  context.CancelFunc
	ctx     context.Context
	journal *Journal
	done    chan struct{}
	metrics *sessionMetrics

	// compacted is the count of journaled evaluations folded away by
	// segment compaction before this process started: evals[i] has
	// absolute evaluation index compacted+i, and the folded prefix
	// survives only as compactOutcomes (for replay) plus the seeded
	// valid/best counters. Immutable after newSession.
	compacted       uint64
	compactOutcomes []CompactOutcome

	mu           sync.Mutex
	cond         *sync.Cond
	state        State
	evals        []EvalRecord // committed evaluations, in order
	replayed     int          // prefix of evals loaded from the journal
	valid        uint64
	best         *atf.Config
	bestCost     atf.Cost
	spaceSize    uint64
	rawSpaceSize string
	runErr       error
	divergence   error
	userCanceled bool
}

// Status is the JSON status snapshot the API serves.
type Status struct {
	ID                 string      `json:"id"`
	Name               string      `json:"name,omitempty"`
	State              State       `json:"state"`
	CreatedUnixNs      int64       `json:"created_unix_ns,omitempty"`
	SpaceSize          uint64      `json:"space_size,omitempty"`
	RawSpaceSize       string      `json:"raw_space_size,omitempty"`
	Evaluations        uint64      `json:"evaluations"`
	Valid              uint64      `json:"valid"`
	Best               *atf.Config `json:"best,omitempty"`
	BestCost           atf.Cost    `json:"best_cost,omitempty"`
	ResumedEvaluations int         `json:"resumed_evaluations,omitempty"`
	Divergence         string      `json:"divergence,omitempty"`
	Error              string      `json:"error,omitempty"`
	// Sweep reports exhaustive-sweep progress (set only for sessions whose
	// technique walks the whole space and whose space size is known).
	Sweep *SweepProgress `json:"sweep,omitempty"`
}

// SweepProgress is an exhaustive session's progress through its space.
type SweepProgress struct {
	Evaluated uint64  `json:"evaluated"`
	Total     uint64  `json:"total"`
	Percent   float64 `json:"percent"`
}

// Status snapshots the session under its lock.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID:                 s.ID,
		Name:               s.Name,
		State:              s.state,
		CreatedUnixNs:      s.CreatedUnixNs,
		SpaceSize:          s.spaceSize,
		RawSpaceSize:       s.rawSpaceSize,
		Evaluations:        s.compacted + uint64(len(s.evals)),
		Valid:              s.valid,
		Best:               s.best,
		BestCost:           s.bestCost,
		ResumedEvaluations: int(s.compacted) + s.replayed,
	}
	if k := s.Spec.Technique.Kind; (k == "" || k == "exhaustive") && s.spaceSize > 0 {
		st.Sweep = &SweepProgress{
			Evaluated: st.Evaluations,
			Total:     s.spaceSize,
			Percent:   100 * float64(st.Evaluations) / float64(s.spaceSize),
		}
	}
	if s.divergence != nil {
		st.Divergence = s.divergence.Error()
	}
	if s.runErr != nil {
		st.Error = s.runErr.Error()
	}
	return st
}

// EvalsSince blocks until the session has committed more than `from`
// evaluations or reached a terminal state, then returns the new suffix and
// whether the session is terminal. A canceled ctx returns early. Indices
// below the compacted prefix (whose eval records no longer exist) clamp to
// the oldest retained evaluation.
func (s *Session) EvalsSince(ctx context.Context, from int) ([]EvalRecord, bool, error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	rel := from - int(s.compacted)
	if rel < 0 {
		rel = 0
	}
	for len(s.evals) <= rel && s.state == StateRunning && ctx.Err() == nil {
		s.cond.Wait()
	}
	if err := ctx.Err(); err != nil && len(s.evals) <= rel {
		return nil, false, err
	}
	if rel > len(s.evals) {
		return nil, false, fmt.Errorf("server: evaluation index %d beyond %d",
			from, s.compacted+uint64(len(s.evals)))
	}
	suffix := append([]EvalRecord(nil), s.evals[rel:]...)
	return suffix, s.state != StateRunning, nil
}

// Wait blocks until the session leaves StateRunning (tests, shutdown).
func (s *Session) Wait() { <-s.done }

// Manager owns the sessions of one daemon process and their journals.
type Manager struct {
	dir string

	// Evaluator, when set, supplies each session's batch evaluator — the
	// hook atfd uses to plug in the distributed worker fleet without this
	// package importing it. The factory receives the session id, its
	// spec, the session's cost function (already wrapped for journal
	// replay — the evaluator's local fallback) and the replayed outcomes
	// by configuration key (so resumed evaluations are never dispatched
	// remotely). If the returned evaluator implements io.Closer it is
	// closed when the session's run ends. Set before Create/Resume.
	Evaluator func(session string, spec *atf.Spec, local atf.CostFunction, replay map[string]atf.Outcome) atf.BatchEvaluator

	// MaxSpaceBytes is the default per-session memory bound on lazy space
	// construction, applied when a spec does not set max_space_bytes
	// itself (atfd's -max-space-bytes flag). 0 leaves lazy spaces
	// unbounded. Set before Create/Resume.
	MaxSpaceBytes int64

	// SharedCostCacheBytes budgets the daemon-wide cost-outcome cache
	// shared across sessions (atfd -shared-cost-cache-bytes). 0 disables
	// cross-session outcome sharing; < 0 leaves the cache unbounded.
	// Specs that set cache_costs=false opt their sessions out. Set before
	// Create/Resume.
	SharedCostCacheBytes int64

	// SpaceCacheEntries bounds the generated-space cache (atfd
	// -space-cache-entries): re-submitted specs skip space generation and
	// the lazy census pass entirely. 0 disables the cache; < 0 leaves it
	// unbounded. Set before Create/Resume.
	SpaceCacheEntries int

	// MaxSessions caps concurrently running sessions; Create returns
	// *OverloadedError beyond it (the HTTP layer answers 429 with
	// Retry-After). Resume ignores the cap — interrupted work is owed.
	// 0 = unlimited. Set before Create/Resume.
	MaxSessions int

	// MaxEvalsInFlight caps concurrent cost evaluations across ALL
	// sessions: every non-replayed, non-cached evaluation takes a slot
	// before running, so a thousand admitted sessions contend for a fixed
	// evaluation bandwidth instead of a thousand uncoordinated pools.
	// 0 = unlimited. Set before Create/Resume.
	MaxEvalsInFlight int

	// RotateBytes rolls each session's journal into numbered segments
	// once the active file exceeds this size; 0 never rotates. Set
	// before Create/Resume.
	RotateBytes int64

	// Pipeline turns on pipelined batch dispatch (Tuner.Pipeline) for
	// every session; it only engages for cost-oblivious techniques. Set
	// before Create/Resume.
	Pipeline bool

	// CompactSegments rewrites each rotated journal segment down to its
	// deduplicated outcome map (atfd -journal-compact): resume keeps its
	// determinism (replay serves outcomes by key, the technique's walk
	// regenerates the order) while long sessions' disk footprint stays
	// proportional to distinct configurations. Set before Create/Resume.
	CompactSegments bool

	// Persistent warm-start store (state.go); nil until OpenState.
	stateStore *state.Store
	stateStop  chan struct{}
	stateOnce  sync.Once // closes stateStop exactly once
	stateWG    sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // creation/resume order for stable listings
	running  int      // sessions currently in StateRunning
	closed   bool

	sharedOnce  sync.Once
	sharedCosts *outcomeCache  // nil when SharedCostCacheBytes == 0
	spaces      *spaceCache    // nil when SpaceCacheEntries == 0
	evalSlots   chan struct{}  // nil when MaxEvalsInFlight == 0

	wg sync.WaitGroup
}

// sharedInit materializes the cross-session structures on first use, so
// the knobs stay plain fields settable after NewManager.
func (m *Manager) sharedInit() {
	m.sharedOnce.Do(func() {
		if m.SharedCostCacheBytes != 0 {
			m.sharedCosts = newOutcomeCache(m.SharedCostCacheBytes)
		}
		if m.SpaceCacheEntries != 0 {
			max := m.SpaceCacheEntries
			if max < 0 {
				max = 0 // unbounded
			}
			m.spaces = newSpaceCache(max)
		}
		if m.MaxEvalsInFlight > 0 {
			m.evalSlots = make(chan struct{}, m.MaxEvalsInFlight)
		}
	})
}

// NewManager creates a session manager journaling under dir (created if
// missing). Call Resume to restart interrupted sessions from a previous
// process, and Shutdown before exit.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating journal dir: %w", err)
	}
	return &Manager{dir: dir, sessions: make(map[string]*Session)}, nil
}

// Dir returns the journal directory.
func (m *Manager) Dir() string { return m.dir }

// Create validates the spec, opens its journal, and starts the tuning run.
// When the daemon is at MaxSessions running sessions it returns
// *OverloadedError instead — admission control, so load beyond capacity
// queues at the clients rather than thrashing inside the process.
func (m *Manager) Create(spec *atf.Spec) (*Session, error) {
	build, err := spec.Build()
	if err != nil {
		return nil, err
	}
	name := sanitizeName(spec.Name)
	id := name + "-" + randomSuffix()
	created := time.Now().UnixNano()
	j, err := CreateJournal(m.journalPath(id), id, spec.Name, spec, created)
	if err != nil {
		return nil, err
	}
	j.RotateBytes = m.RotateBytes
	j.Compact = m.CompactSegments
	s := m.newSession(id, spec, created, j, nil)
	if err := m.register(s, true); err != nil {
		j.Close()
		os.Remove(j.Path())
		return nil, err
	}
	mSessionsCreated.Inc()
	m.start(s, build, nil)
	return s, nil
}

// Resume scans the journal directory and restarts every session whose
// journal lacks a done record. Already-journaled evaluations are served
// from the journal instead of the cost function, and the search continues
// past them deterministically (same seed, same technique walk). Returns
// the resumed sessions.
func (m *Manager) Resume() ([]*Session, error) {
	paths, err := ListJournals(m.dir)
	if err != nil {
		return nil, err
	}
	var resumed []*Session
	var errs []error
	for _, path := range paths {
		d, err := ReadSessionJournal(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if d.Done != nil {
			continue // terminal; nothing to resume
		}
		if d.Spec == nil {
			errs = append(errs, fmt.Errorf("server: journal %s has no spec", path))
			continue
		}
		build, err := d.Spec.Build()
		if err != nil {
			errs = append(errs, fmt.Errorf("server: journal %s: %w", path, err))
			continue
		}
		j, err := OpenJournalAppend(path, Record{
			Type: "spec", Session: d.Session, Name: d.Name,
			CreatedUnixNs: d.CreatedUnixNs, Spec: d.Spec,
		})
		if err != nil {
			errs = append(errs, err)
			continue
		}
		j.RotateBytes = m.RotateBytes
		j.Compact = m.CompactSegments
		id := d.Session
		if id == "" {
			id = strings.TrimSuffix(filepath.Base(path), ".jsonl")
		}
		s := m.newSession(id, d.Spec, d.CreatedUnixNs, j, d)
		if err := m.register(s, false); err != nil {
			j.Close()
			errs = append(errs, err)
			continue
		}
		m.start(s, build, d.Evals)
		resumed = append(resumed, s)
	}
	return resumed, errors.Join(errs...)
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns all sessions in creation order.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id])
	}
	return out
}

// Cancel terminates a session on a client's request: exploration stops at
// the next commit boundary and the journal is closed with a canceled done
// record, so the session will NOT resume on restart.
func (m *Manager) Cancel(id string) error {
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("server: no session %q", id)
	}
	s.mu.Lock()
	if s.state != StateRunning {
		s.mu.Unlock()
		return fmt.Errorf("server: session %q is %s", id, s.state)
	}
	s.userCanceled = true
	s.mu.Unlock()
	s.cancel()
	s.Wait()
	return nil
}

// Shutdown interrupts all running sessions without writing done records —
// the SIGTERM path. Interrupted journals stay resumable; a later Manager
// on the same directory picks the runs back up. Safe to call more than
// once.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.closed = true
	sessions := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		sessions = append(sessions, m.sessions[id])
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.cancel()
	}
	m.wg.Wait()
	for _, s := range sessions {
		s.journal.WaitCompaction()
	}
	m.closeState()
}

func (m *Manager) journalPath(id string) string {
	return filepath.Join(m.dir, id+".jsonl")
}

func (m *Manager) newSession(id string, spec *atf.Spec, created int64, j *Journal, data *JournalData) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	var replayed []EvalRecord
	if data != nil {
		replayed = data.Evals
	}
	s := &Session{
		ID:            id,
		Name:          spec.Name,
		CreatedUnixNs: created,
		Spec:          spec,
		ctx:           ctx,
		cancel:        cancel,
		journal:       j,
		done:          make(chan struct{}),
		state:         StateRunning,
		evals:         append([]EvalRecord(nil), replayed...),
		replayed:      len(replayed),
		metrics:       newSessionMetrics(),
	}
	s.cond = sync.NewCond(&s.mu)
	if data != nil {
		// Seed the counters with the compacted prefix's running totals;
		// the replayed suffix below then continues them.
		s.compacted = data.Compacted
		s.compactOutcomes = data.Outcomes
		s.valid = data.CompactValid
		s.best, s.bestCost = data.CompactBest, data.CompactBestCost
	}
	// Rebuild the live counters and metrics from the replayed prefix.
	var prevAtNs int64
	for i := range s.evals {
		rec := &s.evals[i]
		s.metrics.record(rec, prevAtNs)
		prevAtNs = rec.AtNs
		if len(rec.Cost) > 0 && !rec.Cost.IsInf() {
			s.valid++
			if s.best == nil || rec.Cost.Less(s.bestCost) {
				s.best, s.bestCost = rec.Config, rec.Cost
			}
		}
	}
	return s
}

// register adds the session to the manager's tables; with admit set it
// also enforces the MaxSessions cap (Create goes through admission,
// Resume does not).
func (m *Manager) register(s *Session, admit bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("server: manager is shut down")
	}
	if admit && m.MaxSessions > 0 && m.running >= m.MaxSessions {
		mSessionsRejected.Inc()
		return &OverloadedError{Limit: m.MaxSessions, RetryAfter: time.Second}
	}
	if _, dup := m.sessions[s.ID]; dup {
		return fmt.Errorf("server: duplicate session id %q", s.ID)
	}
	m.sessions[s.ID] = s
	m.order = append(m.order, s.ID)
	m.running++
	mSessionsActive.Set(int64(m.running))
	return nil
}

// sessionDone releases the session's admission slot when its run ends.
func (m *Manager) sessionDone() {
	m.mu.Lock()
	m.running--
	mSessionsActive.Set(int64(m.running))
	m.mu.Unlock()
}

// start launches the session's exploration goroutine.
func (m *Manager) start(s *Session, build *atf.SpecBuild, replayed []EvalRecord) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(s.done)
		defer m.sessionDone()
		m.run(s, build, replayed)
	}()
}

// run executes one session end to end: generate the space (or take it
// from the shared space cache), wrap the cost function with the shared
// layers and journal replay, explore, and journal the outcome.
//
// The wrapper chain is, outermost first,
//
//	replay( shared( slot( build.Cost ) ) )
//
// so replayed evaluations cost nothing, shared-cache hits skip both the
// eval slot and the device, and only genuinely new evaluations contend
// for the daemon's evaluation bandwidth.
func (m *Manager) run(s *Session, build *atf.SpecBuild, replayed []EvalRecord) {
	m.sharedInit()
	tuner := build.Tuner
	if tuner.MaxSpaceBytes == 0 {
		tuner.MaxSpaceBytes = m.MaxSpaceBytes
	}
	spaceKey := specSpaceHash(s.Spec, tuner.MaxSpaceBytes)
	gen := func() (*atf.Space, error) {
		// Warm start: a persisted census snapshot (keyed by the same hash
		// as the space cache) lets lazy generation skip its counting pass;
		// a cold generation persists its census for the next daemon.
		tuner.SpaceCensus = m.loadCensus(spaceKey)
		sp, err := tuner.GenerateSpace(atf.G(build.Params...))
		if err == nil {
			m.saveCensus(spaceKey, sp)
		}
		return sp, err
	}
	var space *atf.Space
	var err error
	if m.spaces != nil {
		space, err = m.spaces.getOrGenerate(spaceKey, gen)
	} else {
		space, err = gen()
	}
	if err != nil {
		s.finish(StateFailed, nil, err)
		return
	}
	s.mu.Lock()
	s.spaceSize = space.Size()
	s.rawSpaceSize = space.RawSize().String()
	s.mu.Unlock()

	cf := build.Cost
	if m.evalSlots != nil {
		cf = &slotCostFunction{inner: cf, slots: m.evalSlots}
	}
	if m.sharedCosts != nil && tuner.CacheCosts {
		// cache_costs=false is the spec's way of saying "my cost function
		// is not a pure function of the configuration" — such sessions
		// must not share outcomes either.
		cf = &sharedCostFunction{inner: cf, cache: m.sharedCosts, scope: specCostHash(s.Spec)}
	}
	if len(replayed) > 0 || len(s.compactOutcomes) > 0 {
		cf = newReplayCostFunction(cf, s.compactOutcomes, replayed)
	}

	tuner.Pipeline = m.Pipeline
	tuner.Context = s.ctx
	tuner.OnEvaluation = s.onEvaluation
	switch {
	case m.Evaluator != nil:
		// Fleet-backed session: the factory's evaluator substitutes the
		// in-process pool, with the replay-wrapped cost function as its
		// local fallback and the journaled outcomes resolved up front.
		ev := m.Evaluator(s.ID, s.Spec, cf, replayOutcomes(s.compactOutcomes, replayed))
		if c, ok := ev.(io.Closer); ok {
			defer c.Close()
		}
		tuner.Evaluator = ev
		tuner.OnBatch = s.onBatch
	case tuner.Parallelism != 0 && tuner.Parallelism != 1:
		// Parallel sessions journal their batch boundaries too, so a
		// crash mid-batch is attributable to a specific dispatch.
		tuner.OnBatch = s.onBatch
	}
	res, err := tuner.Explore(space, cf)
	if err != nil {
		s.finish(StateFailed, nil, err)
		return
	}

	canceled := s.ctx.Err() != nil
	s.mu.Lock()
	user := s.userCanceled
	s.mu.Unlock()
	switch {
	case user:
		s.finish(StateCanceled, res, nil)
	case canceled:
		// Daemon shutdown: leave the journal without a done record so the
		// next process resumes the run.
		s.finish(StateInterrupted, res, nil)
	default:
		s.finish(StateDone, res, nil)
	}
}

// onBatch is the Tuner.OnBatch hook: it journals each batch boundary
// before the batch is dispatched. Marks inside the replayed prefix were
// journaled by the interrupted run and are skipped; the mark at the
// replay boundary is appended again (readers dedup by batch index).
func (s *Session) onBatch(mark atf.BatchMark) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mark.StartEval < s.compacted+uint64(s.replayed) {
		return
	}
	rec := BatchRecord{Index: mark.Index, StartEval: mark.StartEval, Size: mark.Size}
	if err := s.journal.Append(Record{Type: "batch", Batch: &rec}); err != nil {
		s.metrics.journalErrs.Inc()
		if s.runErr == nil {
			s.runErr = err
		}
	}
}

// replayOutcomes indexes journaled evaluations — the compacted prefix's
// outcome map plus the retained eval records — by configuration key for
// the fleet evaluator (first outcome wins, matching the cost cache).
func replayOutcomes(compact []CompactOutcome, evals []EvalRecord) map[string]atf.Outcome {
	if len(compact) == 0 && len(evals) == 0 {
		return nil
	}
	replay := make(map[string]atf.Outcome, len(compact)+len(evals))
	for _, o := range compact {
		if _, dup := replay[o.Key]; dup {
			continue
		}
		out := atf.Outcome{Cost: o.Cost}
		if o.Error != "" {
			out.Err = errors.New(o.Error)
		}
		replay[o.Key] = out
	}
	for _, rec := range evals {
		if _, dup := replay[rec.Key]; dup {
			continue
		}
		out := atf.Outcome{Cost: rec.Cost}
		if rec.Error != "" {
			out.Err = errors.New(rec.Error)
		}
		replay[rec.Key] = out
	}
	return replay
}

// onEvaluation is the Tuner.OnEvaluation hook: it mirrors each committed
// evaluation into the in-memory stream and the journal. Evaluations the
// resumed technique re-proposes inside the replayed prefix are only
// checked against the journal (the determinism guard), never re-journaled.
func (s *Session) onEvaluation(ev atf.Evaluation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Index < s.compacted {
		// The folded prefix: its outcomes replayed by key, but the eval
		// records (and their keys-by-index) are gone, so there is nothing
		// left to check the proposal order against.
		return
	}
	if rel := ev.Index - s.compacted; rel < uint64(s.replayed) {
		want := s.evals[rel].Key
		if got := ev.Config.Key(); got != want && s.divergence == nil {
			s.divergence = fmt.Errorf(
				"resumed run diverged at evaluation %d: journal has %q, technique proposed %q",
				ev.Index, want, got)
		}
		return
	}
	rec := EvalRecord{
		Index:  ev.Index,
		Key:    ev.Config.Key(),
		Config: ev.Config,
		Cost:   ev.Cost,
		Cached: ev.Cached,
		AtNs:   ev.At.Nanoseconds(),
	}
	if ev.Err != nil {
		rec.Error = ev.Err.Error()
	}
	if err := s.journal.Append(Record{Type: "eval", Eval: &rec}); err != nil {
		s.metrics.journalErrs.Inc()
		if s.runErr == nil {
			s.runErr = err
		}
	}
	var prevAtNs int64
	if n := len(s.evals); n > 0 {
		prevAtNs = s.evals[n-1].AtNs
	}
	s.metrics.record(&rec, prevAtNs)
	s.evals = append(s.evals, rec)
	if len(rec.Cost) > 0 && !rec.Cost.IsInf() {
		s.valid++
		if s.best == nil || rec.Cost.Less(s.bestCost) {
			s.best, s.bestCost = rec.Config, rec.Cost
		}
	}
	s.cond.Broadcast()
}

// finish moves the session to a terminal (or interrupted) state, writes
// the done record where appropriate, and closes the journal.
func (s *Session) finish(state State, res *atf.Result, err error) {
	s.mu.Lock()
	s.state = state
	if err != nil && s.runErr == nil {
		s.runErr = err
	}
	if res != nil && res.Best != nil {
		s.best, s.bestCost = res.Best, res.BestCost
	}
	done := &DoneRecord{
		State:       string(state),
		Evaluations: s.compacted + uint64(len(s.evals)),
		Valid:       s.valid,
		Best:        s.best,
		BestCost:    s.bestCost,
	}
	if s.runErr != nil {
		done.Error = s.runErr.Error()
	}
	writeDone := state == StateDone || state == StateCanceled || state == StateFailed
	s.cond.Broadcast()
	s.mu.Unlock()

	if writeDone {
		s.journal.Append(Record{Type: "done", Done: done})
	}
	s.journal.Close()
}

// replayCostFunction serves journaled evaluations from memory and
// delegates everything past the checkpoint to the real cost function; it
// preserves the inner function's cloneability so parallel workers keep
// their per-worker instances.
type replayCostFunction struct {
	inner  core.CostFunction
	replay map[string]replayOutcome
}

type replayOutcome struct {
	cost core.Cost
	err  error
}

func newReplayCostFunction(inner core.CostFunction, compact []CompactOutcome, evals []EvalRecord) *replayCostFunction {
	replay := make(map[string]replayOutcome, len(compact)+len(evals))
	for _, o := range compact {
		if _, dup := replay[o.Key]; dup {
			continue // first outcome wins, matching the cost cache
		}
		out := replayOutcome{cost: o.Cost}
		if o.Error != "" {
			out.err = errors.New(o.Error)
		}
		replay[o.Key] = out
	}
	for _, rec := range evals {
		if _, dup := replay[rec.Key]; dup {
			continue
		}
		out := replayOutcome{cost: rec.Cost}
		if rec.Error != "" {
			out.err = errors.New(rec.Error)
		}
		replay[rec.Key] = out
	}
	return &replayCostFunction{inner: inner, replay: replay}
}

// Cost implements core.CostFunction.
func (r *replayCostFunction) Cost(cfg *core.Config) (core.Cost, error) {
	if out, ok := r.replay[cfg.Key()]; ok {
		return out.cost, out.err
	}
	return r.inner.Cost(cfg)
}

// Clone implements core.CloneableCostFunction; the replay map is read-only
// during exploration and safely shared across workers.
func (r *replayCostFunction) Clone() (core.CostFunction, error) {
	cl, ok := r.inner.(core.CloneableCostFunction)
	if !ok {
		return r, nil
	}
	inner, err := cl.Clone()
	if err != nil {
		return nil, err
	}
	return &replayCostFunction{inner: inner, replay: r.replay}, nil
}

// randomSuffix is a short collision-resistant id component.
func randomSuffix() string {
	var b [5]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to the clock.
		return fmt.Sprintf("%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
