package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
)

// SweepResult is one row of experiment E15: a full walk of the capped
// XgemmDirect space point-by-point (At(i), one root-to-leaf index decode
// per configuration — the exhaustive technique's old inner loop) against
// one streaming sweep (resumable DFS cursor, chunked, prefetch overlapped
// with the consumer). Lazy rows additionally time the warm-start half of
// the same change: a cold generation pays the census counting pass, a
// generation handed the persisted snapshot skips it.
type SweepResult struct {
	RangeCap    int64
	Lazy        bool
	Valid       uint64
	AtTime      time.Duration
	SweepTime   time.Duration
	Speedup     float64
	CensusTime  time.Duration // lazy: cold generation (census pass dominates)
	RestoreTime time.Duration // lazy: generation from the persisted snapshot
}

// SweepWalk runs E15 for one (cap, mode) cell. The sweep's output is
// spot-checked for bit-identity against At outside the timed region
// (the exhaustive differential tests pin the full sequence).
func SweepWalk(cap int64, lazy bool, workers int) (*SweepResult, error) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap: cap, DivisorHints: true,
	})
	mode := core.SpaceEager
	if lazy {
		mode = core.SpaceLazy
	}
	genStart := time.Now()
	sp, err := core.GenerateFlat(params, core.GenOptions{
		Workers: workers, Mode: mode, MaxArenaBytes: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	censusTime := time.Since(genStart)
	size := sp.Size()

	atStart := time.Now()
	for idx := uint64(0); idx < size; idx++ {
		_ = sp.At(idx)
	}
	atTime := time.Since(atStart)

	sweepStart := time.Now()
	sw := sp.Sweep(0, core.SweepOptions{Prefetch: true})
	walked := uint64(0)
	for {
		chunk := sw.NextChunk(256)
		if chunk == nil {
			break
		}
		walked += uint64(len(chunk))
	}
	sw.Close()
	sweepTime := time.Since(sweepStart)
	if walked != size {
		return nil, fmt.Errorf("harness: sweep yielded %d configs, want %d (cap %d)", walked, size, cap)
	}
	// Sampled bit-identity, untimed: seek a sweep to scattered positions
	// and compare against the At decode.
	step := size/64 + 1
	for idx := uint64(0); idx < size; idx += step {
		probe := sp.Sweep(idx, core.SweepOptions{})
		chunk := probe.NextChunk(1)
		probe.Close()
		if len(chunk) != 1 || chunk[0].Key() != sp.At(idx).Key() {
			return nil, fmt.Errorf("harness: sweep at %d diverges from At (cap %d)", idx, cap)
		}
	}

	r := &SweepResult{
		RangeCap:  cap,
		Lazy:      lazy,
		Valid:     size,
		AtTime:    atTime,
		SweepTime: sweepTime,
		Speedup:   atTime.Seconds() / sweepTime.Seconds(),
	}
	if lazy {
		if snap, ok := sp.CensusSnapshot(); ok {
			restoreStart := time.Now()
			warm, err := core.GenerateFlat(params, core.GenOptions{
				Workers: workers, Mode: mode, MaxArenaBytes: 256 << 20, Census: snap,
			})
			if err != nil {
				return nil, err
			}
			r.RestoreTime = time.Since(restoreStart)
			if warm.Size() != size {
				return nil, fmt.Errorf("harness: restored census sizes the space %d, want %d", warm.Size(), size)
			}
		}
		r.CensusTime = censusTime
	}
	return r, nil
}

// SweepTable renders E15.
func SweepTable(rs []*SweepResult) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "streaming exhaustive sweeps vs point-by-point At(i), plus census warm-start (XgemmDirect)",
		Columns: []string{"range cap", "mode", "valid configs", "At walk", "sweep walk", "speedup", "cold census gen", "warm restore gen"},
	}
	for _, r := range rs {
		mode, census, restore := "eager", "—", "—"
		if r.Lazy {
			mode = "lazy"
			census = r.CensusTime.Round(time.Microsecond).String()
			restore = r.RestoreTime.Round(time.Microsecond).String()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.RangeCap),
			mode,
			fmt.Sprintf("%d", r.Valid),
			r.AtTime.Round(time.Microsecond).String(),
			r.SweepTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup),
			census,
			restore,
		})
	}
	t.Notes = append(t.Notes,
		"both walks emit the identical full configuration sequence (spot-checked here; pinned exactly by the differential tests)",
		"the sweep amortizes the root-to-leaf descent across each 256-config chunk and decodes the next chunk while the caller consumes the current one",
		"lazy rows: cold generation runs the census counting pass, warm generation restores the persisted snapshot (atfd -state-dir) and skips it")
	return t
}
