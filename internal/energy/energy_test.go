package energy

import (
	"testing"

	"atf/internal/perfmodel"
)

func est(timeNs float64, concurrent int64, computeNs, memNs float64) *perfmodel.Estimate {
	return &perfmodel.Estimate{
		TimeNs:         timeNs,
		ConcurrentWGs:  concurrent,
		ComputeNsPerWG: computeNs,
		MemoryNsPerWG:  memNs,
	}
}

func TestModelsDifferPerDeviceClass(t *testing.T) {
	cpu := NewModel(perfmodel.XeonE5_2640v2x2())
	gpu := NewModel(perfmodel.TeslaK20m())
	if cpu.ActiveWattsPerCU == gpu.ActiveWattsPerCU {
		t.Fatal("device classes should have distinct power profiles")
	}
}

func TestEnergyScalesWithTime(t *testing.T) {
	m := NewModel(perfmodel.TeslaK20m())
	fast := m.EstimateMicrojoules(est(1e6, 13, 100, 100))
	slow := m.EstimateMicrojoules(est(2e6, 13, 100, 100))
	if slow <= fast {
		t.Fatalf("longer run must cost more energy: %v vs %v", slow, fast)
	}
	// Linear in time at fixed power.
	if slow/fast < 1.9 || slow/fast > 2.1 {
		t.Fatalf("expected ~2x energy, got %v", slow/fast)
	}
}

func TestEnergyScalesWithBusyUnits(t *testing.T) {
	m := NewModel(perfmodel.TeslaK20m())
	narrow := m.EstimateMicrojoules(est(1e6, 16, 100, 0)) // 1 CU (16 WGs/CU)
	wide := m.EstimateMicrojoules(est(1e6, 13*16, 100, 0))
	if wide <= narrow {
		t.Fatalf("more busy CUs must draw more power: %v vs %v", wide, narrow)
	}
}

func TestRuntimeEnergyCanDisagree(t *testing.T) {
	// The reason multi-objective tuning is interesting: a slower, narrower
	// launch can use less energy than a faster, wider one.
	m := NewModel(perfmodel.TeslaK20m())
	fastWide := est(1.0e6, 13*16, 100, 0)
	slowNarrow := est(1.3e6, 16, 100, 0)
	eFast := m.EstimateMicrojoules(fastWide)
	eSlow := m.EstimateMicrojoules(slowNarrow)
	if fastWide.TimeNs >= slowNarrow.TimeNs {
		t.Fatal("setup broken")
	}
	if eSlow >= eFast {
		t.Fatalf("slower-narrow should be cheaper in energy: %v vs %v", eSlow, eFast)
	}
}

func TestMemoryBoundKernelsDrawMemoryPower(t *testing.T) {
	m := NewModel(perfmodel.XeonE5_2640v2x2())
	compute := m.EstimateMicrojoules(est(1e6, 32, 100, 0))
	memory := m.EstimateMicrojoules(est(1e6, 32, 0, 100))
	if memory <= compute {
		t.Fatalf("memory-bound run should draw more: %v vs %v", memory, compute)
	}
}

func TestBusyUnitsClamped(t *testing.T) {
	m := NewModel(perfmodel.TeslaK20m())
	// Absurd concurrency must clamp at the device's unit count.
	capped := m.EstimateMicrojoules(est(1e6, 1<<20, 100, 0))
	full := m.EstimateMicrojoules(est(1e6, 13*16, 100, 0))
	if capped != full {
		t.Fatalf("busy units must clamp: %v vs %v", capped, full)
	}
}
