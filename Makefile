# Developer entry points; `make check` is what CI (and PR review) runs.

GO ?= go

.PHONY: all build vet test race check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages get a dedicated race pass: the parallel
# exploration engine and the atfd session manager/journal.
race:
	$(GO) test -race ./internal/core/... ./internal/server/...

check: vet build test race

fmt:
	gofmt -w .
