// Package opentuner reimplements the search core of the OpenTuner framework
// (Ansel et al., PACT 2014) as used by the ATF paper: an AUC-bandit
// meta-technique that adaptively allocates trials among Nelder-Mead
// simplex variants, Torczon hill climbers, greedy mutation, and random
// search.
//
// ATF employs this engine in two ways, and so does this package:
//
//  1. As ATF's third pre-implemented search technique (paper Section IV-C):
//     the engine tunes a single integer parameter TP ∈ [0, S) indexing
//     ATF's constraint-valid search space — see IndexTechnique.
//  2. As the paper's §VI-B baseline: the engine tunes the raw, unconstrained
//     parameter space, with a penalty cost reported for configurations that
//     violate constraints — see RawTuner.
package opentuner

// Domain describes the integer search domain the engine optimizes over.
type Domain struct {
	// Card holds each dimension's cardinality (number of representable
	// values). Dimensions are integral, like OpenTuner's IntegerParameter.
	Card []uint64
}

// Point is a position in the unit hypercube [0,1)^d; dimension i decodes to
// the integer floor(p[i] * Card[i]). Continuous simplex arithmetic
// (centroids, reflections) happens on Points; decoding happens only at
// evaluation.
type Point []float64

// NewDomain builds a domain from dimension cardinalities. Every dimension
// must have at least one value.
func NewDomain(card ...uint64) *Domain {
	for i, c := range card {
		if c == 0 {
			panic("opentuner: dimension with zero cardinality")
		}
		_ = i
	}
	cp := append([]uint64(nil), card...)
	return &Domain{Card: cp}
}

// Dims returns the number of dimensions.
func (d *Domain) Dims() int { return len(d.Card) }

// Clamp folds a point back into [0,1) per dimension by clamping; simplex
// operations can step outside the cube.
func (d *Domain) Clamp(p Point) Point {
	for i := range p {
		if p[i] < 0 {
			p[i] = 0
		}
		// Keep strictly below 1 so decoding never exceeds Card-1.
		if p[i] >= 1 {
			p[i] = 1 - 1e-12
		}
	}
	return p
}

// Decode maps a point to integer coordinates.
func (d *Domain) Decode(p Point) []uint64 {
	out := make([]uint64, len(d.Card))
	for i, c := range d.Card {
		v := uint64(p[i] * float64(c))
		if v >= c {
			v = c - 1
		}
		out[i] = v
	}
	return out
}

// Encode maps integer coordinates to the centre of their cell in [0,1)^d.
func (d *Domain) Encode(coords []uint64) Point {
	p := make(Point, len(d.Card))
	for i, c := range d.Card {
		p[i] = (float64(coords[i]) + 0.5) / float64(c)
	}
	return p
}

// Clone copies a point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// key renders decoded coordinates for deduplication.
func key(coords []uint64) string {
	b := make([]byte, 0, len(coords)*8)
	for _, c := range coords {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(c>>uint(s)))
		}
	}
	return string(b)
}
