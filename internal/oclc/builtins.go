package oclc

import "math"

// builtinFn implements one OpenCL-C builtin.
type builtinFn func(w *wiCtx, x *Call, args []rval) (rval, error)

// builtins maps the supported OpenCL-C builtin functions. Work-item
// functions read the execution context; math builtins count as special or
// FMA operations for the performance model.
var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		"get_global_id":   wiQuery(func(w *wiCtx, d int) int64 { return w.gid[d] }),
		"get_local_id":    wiQuery(func(w *wiCtx, d int) int64 { return w.lid[d] }),
		"get_group_id":    wiQuery(func(w *wiCtx, d int) int64 { return w.wg.grp[d] }),
		"get_global_size": wiQuery(func(w *wiCtx, d int) int64 { return w.wg.launch.Global[d] }),
		"get_local_size":  wiQuery(func(w *wiCtx, d int) int64 { return w.wg.launch.Local[d] }),
		"get_num_groups": wiQuery(func(w *wiCtx, d int) int64 {
			return w.wg.launch.Global[d] / w.wg.launch.Local[d]
		}),
		"get_work_dim": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			return intVal(int64(w.wg.launch.Dims())), nil
		},

		"barrier": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			w.ctr.Barriers++
			w.wg.barrier.await()
			return rval{}, nil
		},
		"mem_fence":          noop,
		"work_group_barrier": barrierAlias,
		"sub_group_barrier":  noop,
		"prefetch":           noop,
		"wait_group_events":  noop,
		"async_work_group_copy": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			return rval{}, errf(x.Pos, "async_work_group_copy not supported; use explicit loops")
		},

		"fma": fmaBuiltin,
		"mad": fmaBuiltin,

		"min":   minMax(true),
		"max":   minMax(false),
		"clamp": clampBuiltin,
		"abs": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			if len(args) != 1 {
				return rval{}, errf(x.Pos, "abs expects 1 argument")
			}
			w.ctr.IntOps++
			v := args[0].asInt()
			if v < 0 {
				v = -v
			}
			return intVal(v), nil
		},
		"fabs":  mathUnary(math.Abs),
		"sqrt":  mathUnary(math.Sqrt),
		"rsqrt": mathUnary(func(v float64) float64 { return 1 / math.Sqrt(v) }),
		"exp":   mathUnary(math.Exp),
		"log":   mathUnary(math.Log),
		"sin":   mathUnary(math.Sin),
		"cos":   mathUnary(math.Cos),
		"tanh":  mathUnary(math.Tanh),
		"floor": mathUnary(math.Floor),
		"ceil":  mathUnary(math.Ceil),
		"round": mathUnary(math.Round),
		"pow": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			if len(args) != 2 {
				return rval{}, errf(x.Pos, "pow expects 2 arguments")
			}
			w.ctr.SpecialOps++
			return floatVal(math.Pow(args[0].asFloat(), args[1].asFloat())), nil
		},
		"fmod": func(w *wiCtx, x *Call, args []rval) (rval, error) {
			if len(args) != 2 {
				return rval{}, errf(x.Pos, "fmod expects 2 arguments")
			}
			w.ctr.SpecialOps++
			return floatVal(math.Mod(args[0].asFloat(), args[1].asFloat())), nil
		},
	}
}

var noop = func(w *wiCtx, x *Call, args []rval) (rval, error) { return rval{}, nil }

var barrierAlias = func(w *wiCtx, x *Call, args []rval) (rval, error) {
	w.ctr.Barriers++
	w.wg.barrier.await()
	return rval{}, nil
}

// wiQuery builds a work-item query builtin taking a dimension argument.
func wiQuery(get func(w *wiCtx, d int) int64) builtinFn {
	return func(w *wiCtx, x *Call, args []rval) (rval, error) {
		d := 0
		if len(args) >= 1 {
			d = int(args[0].asInt())
		}
		if d < 0 || d > 2 {
			return rval{}, errf(x.Pos, "work-item dimension %d out of range", d)
		}
		return intVal(get(w, d)), nil
	}
}

func fmaBuiltin(w *wiCtx, x *Call, args []rval) (rval, error) {
	if len(args) != 3 {
		return rval{}, errf(x.Pos, "%s expects 3 arguments", x.Name)
	}
	w.ctr.FMAs++
	return floatVal(args[0].asFloat()*args[1].asFloat() + args[2].asFloat()), nil
}

func minMax(isMin bool) builtinFn {
	return func(w *wiCtx, x *Call, args []rval) (rval, error) {
		if len(args) != 2 {
			return rval{}, errf(x.Pos, "%s expects 2 arguments", x.Name)
		}
		a, b := args[0], args[1]
		if a.k == KFloat || b.k == KFloat {
			w.ctr.FloatOps++
			if isMin == (a.asFloat() < b.asFloat()) {
				return floatVal(a.asFloat()), nil
			}
			return floatVal(b.asFloat()), nil
		}
		w.ctr.IntOps++
		if isMin == (a.asInt() < b.asInt()) {
			return intVal(a.asInt()), nil
		}
		return intVal(b.asInt()), nil
	}
}

func clampBuiltin(w *wiCtx, x *Call, args []rval) (rval, error) {
	if len(args) != 3 {
		return rval{}, errf(x.Pos, "clamp expects 3 arguments")
	}
	w.ctr.FloatOps += 2
	v, lo, hi := args[0].asFloat(), args[1].asFloat(), args[2].asFloat()
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	if args[0].k == KFloat || args[1].k == KFloat {
		return floatVal(v), nil
	}
	return intVal(int64(v)), nil
}

// IsBuiltin reports whether name is a recognized builtin (tests).
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}
