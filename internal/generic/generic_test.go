package generic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atf/internal/core"
)

func writeScript(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte("#!/bin/sh\n"+body), 0o755); err != nil {
		t.Fatal(err)
	}
	return p
}

func cfg(vals map[string]core.Value) *core.Config {
	names := make([]string, 0, len(vals))
	for k := range vals {
		names = append(names, k)
	}
	return core.ConfigFromMap(names, vals)
}

func TestParseCostLogSingle(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "log")
	os.WriteFile(p, []byte("42.5\n"), 0o644)
	c, err := ParseCostLog(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0] != 42.5 {
		t.Fatalf("cost = %v", c)
	}
}

func TestParseCostLogMultiObjective(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "log")
	os.WriteFile(p, []byte("12.5, 900\n"), 0o644)
	c, err := ParseCostLog(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != 12.5 || c[1] != 900 {
		t.Fatalf("cost = %v", c)
	}
}

func TestParseCostLogLastLineWins(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "log")
	os.WriteFile(p, []byte("1\n2\n3\n\n"), 0o644)
	c, err := ParseCostLog(p)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 3 {
		t.Fatalf("cost = %v, want last line", c)
	}
}

func TestParseCostLogErrors(t *testing.T) {
	if _, err := ParseCostLog("/nonexistent/log"); err == nil {
		t.Fatal("missing file must error")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, []byte("  \n"), 0o644)
	if _, err := ParseCostLog(empty); err == nil {
		t.Fatal("empty log must error")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("not-a-number\n"), 0o644)
	if _, err := ParseCostLog(bad); err == nil {
		t.Fatal("garbage log must error")
	}
}

func TestEnvironmentPassesParameters(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "seen")
	run := writeScript(t, dir, "run.sh", `echo "$ATF_TP_WPT|$ATF_DEFINES|$ATF_SOURCE" > `+out+"\n")
	g := &CostFunction{SourcePath: "/src/kernel.cl", RunScript: run}
	_, err := g.Cost(cfg(map[string]core.Value{"WPT": core.Int(8)}))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	s := string(data)
	if !strings.Contains(s, "8|") || !strings.Contains(s, "-DWPT=8") ||
		!strings.Contains(s, "/src/kernel.cl") {
		t.Fatalf("environment incomplete: %q", s)
	}
}

func TestWallClockCost(t *testing.T) {
	dir := t.TempDir()
	run := writeScript(t, dir, "run.sh", "exit 0\n")
	g := &CostFunction{RunScript: run}
	c, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0] <= 0 {
		t.Fatalf("wall-clock cost = %v", c)
	}
}

func TestCompileFailure(t *testing.T) {
	dir := t.TempDir()
	compile := writeScript(t, dir, "c.sh", "exit 3\n")
	run := writeScript(t, dir, "r.sh", "exit 0\n")
	g := &CostFunction{CompileScript: compile, RunScript: run}
	if _, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(1)})); err == nil {
		t.Fatal("compile failure must surface")
	}
}

func TestRunFailure(t *testing.T) {
	dir := t.TempDir()
	run := writeScript(t, dir, "r.sh", "exit 1\n")
	g := &CostFunction{RunScript: run}
	if _, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(1)})); err == nil {
		t.Fatal("run failure must surface")
	}
}

func TestMissingRunScript(t *testing.T) {
	g := &CostFunction{}
	if _, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(1)})); err == nil {
		t.Fatal("missing run script must error")
	}
}

func TestTimeout(t *testing.T) {
	dir := t.TempDir()
	run := writeScript(t, dir, "r.sh", "sleep 10\n")
	g := &CostFunction{RunScript: run, Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(1)}))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not take effect")
	}
}

func TestLogFileCost(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "cost.log")
	run := writeScript(t, dir, "r.sh", `echo "$((ATF_TP_X * 10)),7" > "$ATF_LOG"`+"\n")
	g := &CostFunction{RunScript: run, LogFile: log}
	c, err := g.Cost(cfg(map[string]core.Value{"X": core.Int(3)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != 30 || c[1] != 7 {
		t.Fatalf("cost = %v", c)
	}
}
