// Command atf-experiments regenerates the paper's evaluation artifacts
// (DESIGN.md §4, experiments E1–E13) on the simulated devices and prints
// one table per experiment. EXPERIMENTS.md records a full run.
//
// Usage:
//
//	atf-experiments                     # run everything with defaults
//	atf-experiments -exp fig2cpu        # one experiment
//	atf-experiments -cap 128 -markdown  # bigger ranges, markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atf/internal/harness"
	"atf/internal/obs"
	"atf/internal/oclc"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: all, fig2cpu, fig2gpu, spacegen, sizes, relaxed, otvalid, defaults, groups, gentime, interp, vec, lazyspace, sweep")
	cap := flag.Int64("cap", 64, "XgemmDirect integer range cap")
	sizeCaps := flag.String("sizecaps", "16,64,256",
		"comma-separated range caps for the E4 size census (1024 reproduces the paper's 2^10 setting; allow a few minutes)")
	atfEvals := flag.Uint64("atf-evals", 400, "ATF annealing evaluations per tuning run")
	otEvals := flag.Int("ot-evals", 10000, "OpenTuner baseline evaluations (paper: 10000)")
	devOptEvals := flag.Int("devopt-evals", 120, "CLTune device-optimization evaluations at 256x256")
	seed := flag.Int64("seed", 1, "random seed")
	parallelism := flag.Int("parallelism", 1,
		"concurrent cost evaluators per tuning run (1 = sequential, -1 = all CPUs)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	stats := flag.Bool("stats", false,
		"print the instrumentation summary (evaluations, caches, latency histograms) after the experiments")
	memo := flag.String("memo", "both",
		"gentime memoization ablation: on, off, or both (one table row per mode)")
	engine := flag.String("engine", "",
		"oclc execution engine for kernel launches: vm-vec (default), vm, walk, vm-nospec")
	interpEvals := flag.Int("interp-evals", 20, "timed cost evaluations per engine in the E11/E12 ablations")
	flag.Parse()

	eng, err := oclc.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atf-experiments:", err)
		os.Exit(2)
	}

	opts := harness.Options{
		Seed:           *seed,
		RangeCap:       *cap,
		ATFEvals:       *atfEvals,
		OpenTunerEvals: *otEvals,
		DevOptEvals:    *devOptEvals,
		Parallelism:    *parallelism,
		Engine:         eng,
	}

	emit := func(t *harness.Table) {
		if *markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "atf-experiments:", err)
		os.Exit(1)
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig2cpu") {
		r, err := harness.Fig2("Xeon", opts)
		if err != nil {
			fail(err)
		}
		emit(harness.Fig2Table(r, "E1 (Fig. 2 left, CPU)"))
	}
	if want("fig2gpu") {
		r, err := harness.Fig2("K20m", opts)
		if err != nil {
			fail(err)
		}
		emit(harness.Fig2Table(r, "E2 (Fig. 2 right, GPU)"))
	}
	if want("spacegen") {
		r, err := harness.SpaceGen(32, 0, 0)
		if err != nil {
			fail(err)
		}
		emit(harness.SpaceGenTable(r))
	}
	if want("sizes") {
		var rs []*harness.SizesResult
		for _, s := range strings.Split(*sizeCaps, ",") {
			var c int64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &c); err != nil {
				fail(fmt.Errorf("bad -sizecaps entry %q", s))
			}
			r, err := harness.Sizes(c, 0)
			if err != nil {
				fail(err)
			}
			rs = append(rs, r)
		}
		emit(harness.SizesTable(rs))
	}
	if want("relaxed") {
		for _, dev := range []string{"Xeon", "K20m"} {
			rs, err := harness.Relaxed(dev, opts)
			if err != nil {
				fail(err)
			}
			emit(harness.RelaxedTable(rs))
		}
	}
	if want("otvalid") {
		rs, err := harness.Validity(opts)
		if err != nil {
			fail(err)
		}
		emit(harness.ValidityTable(rs))
	}
	if want("defaults") {
		for _, dev := range []string{"Xeon", "K20m"} {
			rs, err := harness.Defaults(dev, opts)
			if err != nil {
				fail(err)
			}
			emit(harness.DefaultsTable(rs))
		}
	}
	if want("groups") {
		// 4 groups of 3 chained parameters over [1,512]: large enough to
		// time, small enough that the cross product stays within uint64.
		r, err := harness.Groups(4, 512, 0)
		if err != nil {
			fail(err)
		}
		emit(harness.GroupsTable(r))
	}
	if want("gentime") {
		var rs []*harness.GenTimeResult
		for _, kernel := range []string{"saxpy", "gemm"} {
			for _, memoize := range memoModes(*memo) {
				r, err := harness.GenTime(kernel, *cap, 0, memoize)
				if err != nil {
					fail(err)
				}
				rs = append(rs, r)
			}
		}
		emit(harness.GenTimeTable(rs))
	}
	if want("lazyspace") {
		// E13: eager vs lazy construction across range caps. The uncapped
		// 2^10 row runs lazy-only — its raw product (>10^19) has no
		// materializable eager counterpart.
		var rs []*harness.LazySpaceResult
		for _, c := range []int64{16, 64, 256, 1024} {
			modes := []bool{false, true}
			if c >= 1024 {
				modes = []bool{true}
			}
			for _, lazy := range modes {
				r, err := harness.LazySpace(c, lazy, 200, 0)
				if err != nil {
					fail(err)
				}
				rs = append(rs, r)
			}
		}
		emit(harness.LazySpaceTable(rs))
	}
	if want("sweep") {
		// E15: streaming sweep vs At(i) full walks, plus the census
		// warm-start on the lazy row.
		var rs []*harness.SweepResult
		for _, cell := range []struct {
			cap  int64
			lazy bool
		}{{16, false}, {32, false}, {1024, true}} {
			r, err := harness.SweepWalk(cell.cap, cell.lazy, 0)
			if err != nil {
				fail(err)
			}
			rs = append(rs, r)
		}
		emit(harness.SweepTable(rs))
	}
	if want("interp") {
		r, err := harness.Interp("Xeon", *interpEvals, opts)
		if err != nil {
			fail(err)
		}
		emit(harness.InterpTable(r))
	}
	if want("vec") {
		r, err := harness.VecAblate("K20m", *interpEvals, opts)
		if err != nil {
			fail(err)
		}
		emit(harness.VecAblateTable(r))
	}
	if *stats {
		obs.WriteSummary(os.Stdout, obs.Default().Snapshot())
	}
}

// memoModes translates the -memo flag into the gentime ablation axis.
func memoModes(mode string) []bool {
	switch mode {
	case "on":
		return []bool{true}
	case "off":
		return []bool{false}
	default:
		return []bool{false, true}
	}
}
