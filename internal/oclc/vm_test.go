package oclc

import (
	"strings"
	"testing"
)

const vmTestKernel = `
__kernel void k(const int n, __global float* out) {
  const int g = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < n; i++) {
    if (MODE == 1) { acc += (float)(i) * 0.5f; } else { acc -= 1.0f; }
  }
  out[g] = acc;
}`

// TestLoweringProducesBytecode pins that Compile actually lowers kernels:
// a silent fallback to the walker would make every engine benchmark and
// ablation measure the same thing.
func TestLoweringProducesBytecode(t *testing.T) {
	prog, err := Compile(vmTestKernel, map[string]string{"MODE": "1"})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := prog.Kernel("k")
	if err != nil {
		t.Fatal(err)
	}
	if fn.vm == nil || len(fn.vm.code) == 0 {
		t.Fatal("Compile did not produce specialized bytecode")
	}
	if fn.vmNoSpec != nil {
		t.Fatal("unspecialized bytecode should be lazy (ensureNoSpec)")
	}
	prog.ensureNoSpec()
	if fn.vmNoSpec == nil || len(fn.vmNoSpec.code) == 0 {
		t.Fatal("ensureNoSpec did not produce bytecode")
	}
	// Specialization must shrink the program: the MODE branch is resolved
	// at compile time in the specialized form only.
	if len(fn.vm.code) >= len(fn.vmNoSpec.code) {
		t.Errorf("specialized code (%d instrs) not smaller than unspecialized (%d)",
			len(fn.vm.code), len(fn.vmNoSpec.code))
	}
	if fn.vm.numRegs < fn.NumSlots {
		t.Errorf("numRegs %d < NumSlots %d", fn.vm.numRegs, fn.NumSlots)
	}
}

// TestBareParseFallsBackToWalker pins the escape hatch: programs built
// via Parse (no define set) have no bytecode, and a VM launch silently
// uses the walker instead of failing.
func TestBareParseFallsBackToWalker(t *testing.T) {
	prog, err := Parse(`__kernel void k(__global float* out) { out[0] = 7.0f; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 4)
	res, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1),
		ExecOptions{Engine: EngineVM})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 7 || res.WIsExecuted != 1 {
		t.Fatalf("fallback run wrong: out=%v res=%+v", out.Data[0], res)
	}
}

// TestCountersWorkGroupInvariant pins the hoisted per-group aggregation
// scratch: totals must scale exactly linearly in the number of
// work-groups, under both engines.
func TestCountersWorkGroupInvariant(t *testing.T) {
	prog, err := Compile(vmTestKernel, map[string]string{"MODE": "1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineWalk, EngineVM} {
		var perGroup Counters
		for i, groups := range []int64{1, 2, 8} {
			out := NewGlobalMemory(1, KFloat, 4, int(groups*4))
			res, err := prog.Launch("k", []Arg{IntArg(5), BufArg(out)},
				NDRange1D(groups*4, 4), ExecOptions{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Counters
			if i == 0 {
				perGroup = got
				continue
			}
			want := Counters{}
			for g := int64(0); g < groups; g++ {
				want.Add(&perGroup)
			}
			if got != want {
				t.Fatalf("%v: %d groups: counters %+v, want %d x %+v", eng, groups, got, groups, perGroup)
			}
		}
	}
}

// TestVMInstructionMetric pins that VM launches retire instructions into
// the observability counter and walker launches do not.
func TestVMInstructionMetric(t *testing.T) {
	prog, err := Compile(vmTestKernel, map[string]string{"MODE": "0"})
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 4)
	args := []Arg{IntArg(3), BufArg(out)}

	before := mVMInstructions.Value()
	if _, err := prog.Launch("k", args, NDRange1D(4, 4), ExecOptions{Engine: EngineWalk}); err != nil {
		t.Fatal(err)
	}
	if got := mVMInstructions.Value(); got != before {
		t.Fatalf("walker launch retired %d VM instructions", got-before)
	}
	if _, err := prog.Launch("k", args, NDRange1D(4, 4), ExecOptions{Engine: EngineVM}); err != nil {
		t.Fatal(err)
	}
	if got := mVMInstructions.Value(); got <= before {
		t.Fatal("VM launch did not retire instructions")
	}
}

func TestEngineParseAndDefault(t *testing.T) {
	cases := map[string]Engine{
		"": EngineDefault, "default": EngineDefault,
		"vm": EngineVM, "walk": EngineWalk,
		"vm-nospec": EngineVMNoSpec, "nospec": EngineVMNoSpec,
		"vm-vec": EngineVMVec, "vec": EngineVMVec,
	}
	for s, want := range cases {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("jit"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("ParseEngine(jit) err = %v", err)
	}

	prev := DefaultEngine()
	defer SetDefaultEngine(prev)
	SetDefaultEngine(EngineWalk)
	if DefaultEngine() != EngineWalk {
		t.Fatal("SetDefaultEngine(walk) not visible")
	}
	// EngineDefault resolves to the vectorized VM, never to itself.
	SetDefaultEngine(EngineDefault)
	if DefaultEngine() != EngineVMVec {
		t.Fatalf("SetDefaultEngine(default) resolved to %v, want vm-vec", DefaultEngine())
	}
	if got := EngineDefault.resolve(); got != EngineVMVec {
		t.Fatalf("resolve() = %v, want vm-vec", got)
	}
}

// TestStaticKindElision pins the kind-inference optimization: a kernel
// whose scalars all have statically known kinds must lower without any
// opStoreVar/opConvert for its loop counters and compound assignments.
func TestStaticKindElision(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  int kwg = 0;
  float acc = 0.25f;
  for (int i = 0; i < 8; i++) {
    kwg += 4;
    acc = acc * 0.5f + kwg;
  }
  out[get_global_id(0)] = acc + kwg;
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := prog.Kernel("k")
	if fn.vm == nil {
		t.Fatal("no bytecode")
	}
	var stores, converts int
	for _, in := range fn.vm.code {
		switch in.op {
		case opStoreVar:
			stores++
		case opConvert:
			converts++
		}
	}
	if stores != 0 || converts != 0 {
		t.Errorf("kind inference left %d opStoreVar and %d opConvert in:\n%s",
			stores, converts, src)
	}
	// And the result must still be right.
	out := NewGlobalMemory(1, KFloat, 4, 2)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(2, 2), ExecOptions{Engine: EngineVM}); err != nil {
		t.Fatal(err)
	}
	acc, kwg := 0.25, 0
	for i := 0; i < 8; i++ {
		kwg += 4
		acc = acc*0.5 + float64(kwg)
	}
	if want := acc + float64(kwg); out.Data[0] != want {
		t.Fatalf("out[0] = %v, want %v", out.Data[0], want)
	}
}

// TestCompileCacheEngineLabels pins the per-engine labelling of the
// compile-cache hit/miss counters.
func TestCompileCacheEngineLabels(t *testing.T) {
	prev := DefaultEngine()
	defer SetDefaultEngine(prev)
	SetDefaultEngine(EngineVM)

	src := `__kernel void k(__global float* o) { o[0] = (float)(T); }`
	defs := map[string]string{"T": "321"}
	missC := mCompileMissesByEngine[EngineVM]
	hitC := mCompileHitsByEngine[EngineVM]
	m0, h0 := missC.Value(), hitC.Value()
	if _, err := CompileCached(src, defs); err != nil {
		t.Fatal(err)
	}
	if missC.Value() != m0+1 {
		t.Fatalf("miss counter = %d, want %d", missC.Value(), m0+1)
	}
	if _, err := CompileCached(src, defs); err != nil {
		t.Fatal(err)
	}
	if hitC.Value() != h0+1 {
		t.Fatalf("hit counter = %d, want %d", hitC.Value(), h0+1)
	}
}
