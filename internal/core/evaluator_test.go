package core

import (
	"context"
	"testing"
)

// reversePoolEvaluator evaluates batches through a PoolEvaluator but
// hands them over in reverse order, modeling an evaluator whose internal
// completion order has nothing to do with batch order.
type reversePoolEvaluator struct {
	pool    *PoolEvaluator
	batches []BatchMark
}

func (r *reversePoolEvaluator) EvaluateBatch(ctx context.Context, batchIndex uint64, batch []*Config) ([]Outcome, error) {
	r.batches = append(r.batches, BatchMark{Index: batchIndex, Size: len(batch)})
	rev := make([]*Config, len(batch))
	for i, cfg := range batch {
		rev[len(batch)-1-i] = cfg
	}
	outs, err := r.pool.EvaluateBatch(ctx, batchIndex, rev)
	if err != nil {
		return nil, err
	}
	back := make([]Outcome, len(outs))
	for i := range outs {
		back[len(outs)-1-i] = outs[i]
	}
	return back, nil
}

// TestCustomEvaluatorDeterministic proves the BatchEvaluator seam: a
// custom evaluator that computes outcomes in a different internal order
// still yields results bit-identical to the sequential reference,
// because merging happens engine-side in batch order.
func TestCustomEvaluatorDeterministic(t *testing.T) {
	sp := mustSpace(t, saxpyParams(96))
	cf := ScalarCostFunc(func(cfg *Config) float64 {
		return float64((cfg.Int("WPT")-7)*(cfg.Int("WPT")-7)) + float64(cfg.Int("LS"))
	})

	ref, err := Explore(sp, &indexWalker{}, cf, nil, ExploreOptions{Record: true, CacheCosts: true})
	if err != nil {
		t.Fatal(err)
	}

	pool, err := NewPoolEvaluator(cf, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ev := &reversePoolEvaluator{pool: pool}
	var marks []BatchMark
	got, err := ExploreParallel(sp, &indexWalker{}, cf, nil, ParallelOptions{
		ExploreOptions: ExploreOptions{Record: true, CacheCosts: true},
		Workers:        4,
		Evaluator:      ev,
		OnBatch:        func(m BatchMark) { marks = append(marks, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, ref, got, "custom evaluator")

	// The batch marks partition the evaluation sequence exactly.
	var next uint64
	for i, m := range marks {
		if m.Index != uint64(i) {
			t.Fatalf("mark %d has index %d", i, m.Index)
		}
		if m.StartEval != next {
			t.Fatalf("mark %d starts at %d, want %d", i, m.StartEval, next)
		}
		next += uint64(m.Size)
	}
	if next != got.Evaluations {
		t.Fatalf("marks cover %d evaluations, result has %d", next, got.Evaluations)
	}
	if len(ev.batches) != len(marks) {
		t.Fatalf("evaluator saw %d batches, hook saw %d", len(ev.batches), len(marks))
	}
}

// TestPoolEvaluatorConcurrentCalls exercises one pool from concurrent
// EvaluateBatch callers — the shape of an atf-worker serving overlapping
// partitions — under the race detector.
func TestPoolEvaluatorConcurrentCalls(t *testing.T) {
	sp := mustSpace(t, saxpyParams(64))
	cf := ScalarCostFunc(func(cfg *Config) float64 { return float64(cfg.Int("WPT")) })
	pool, err := NewPoolEvaluator(cf, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	batch := make([]*Config, sp.Size())
	for i := range batch {
		batch[i] = sp.At(uint64(i))
	}
	done := make(chan []Outcome, 4)
	for g := 0; g < 4; g++ {
		go func() {
			outs, err := pool.EvaluateBatch(context.Background(), 0, batch)
			if err != nil {
				t.Error(err)
			}
			done <- outs
		}()
	}
	first := <-done
	for g := 1; g < 4; g++ {
		outs := <-done
		for i := range outs {
			if outs[i].Cost.String() != first[i].Cost.String() {
				t.Fatalf("outcome %d differs across concurrent calls", i)
			}
		}
	}
}
