package harness

import (
	"fmt"
	"runtime"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
)

// LazySpaceResult is one row of experiment E13: XgemmDirect space
// construction at a given range cap in one mode (eager arena trie vs lazy
// counting + on-demand slabs), with the cost axes the lazy-space change
// trades against each other — generation time, constraint checks, and
// retained memory. RetainedBytes is the heap growth attributable to the
// space (measured across forced GCs), SpaceBytes the space's own
// accounting (arena footprint when eager, resident expanded slabs when
// lazy).
type LazySpaceResult struct {
	RangeCap      int64
	Lazy          bool
	Raw           string
	Valid         uint64
	Checks        uint64
	SpaceBytes    uint64
	RetainedBytes uint64
	Probes        int // At/IndexOf round-trips exercised after the build
	GenTime       time.Duration
}

// LazySpace runs E13 for one (cap, mode) cell: build the XgemmDirect
// space (divisor hints on, matching the tuner's recommended setup for
// astronomically ranged spaces) and touch `probes` evenly spaced indices
// so the lazy mode pays its first-touch expansions. cap <= 0 selects the
// uncapped 2^10 ranges of the paper's §VI-A census.
func LazySpace(cap int64, lazy bool, probes, workers int) (*LazySpaceResult, error) {
	if cap <= 0 {
		cap = 1024
	}
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap: cap, DivisorHints: true,
	})
	mode := core.SpaceEager
	if lazy {
		mode = core.SpaceLazy
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	space, err := core.GenerateFlat(params, core.GenOptions{
		Workers: workers, Mode: mode, MaxArenaBytes: 256 << 20,
	})
	if err != nil {
		return nil, err
	}
	step := space.Size()/uint64(probes) + 1
	for idx := uint64(0); idx < space.Size(); idx += step {
		cfg := space.At(idx)
		if ri, ok := space.IndexOf(cfg); !ok || ri != idx {
			return nil, fmt.Errorf("harness: IndexOf(At(%d)) = %d,%v at cap %d", idx, ri, ok, cap)
		}
	}
	elapsed := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		retained = after.HeapAlloc - before.HeapAlloc
	}
	spaceBytes := space.ArenaBytes()
	if lazy {
		_, _, spaceBytes = space.LazyStats()
	}
	return &LazySpaceResult{
		RangeCap:      cap,
		Lazy:          lazy,
		Raw:           space.RawSize().String(),
		Valid:         space.Size(),
		Checks:        space.Checks(),
		SpaceBytes:    spaceBytes,
		RetainedBytes: retained,
		Probes:        probes,
		GenTime:       elapsed,
	}, nil
}

// LazySpaceTable renders E13.
func LazySpaceTable(rs []*LazySpaceResult) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "eager vs lazy XgemmDirect space construction across range caps (build + probe time, retained memory)",
		Columns: []string{"range cap", "mode", "raw size", "valid configs", "constraint checks", "space bytes", "retained heap", "gen+probe time"},
	}
	for _, r := range rs {
		mode := "eager"
		if r.Lazy {
			mode = "lazy"
		}
		cap := fmt.Sprintf("%d", r.RangeCap)
		if r.RangeCap >= 1024 {
			cap += " (uncapped)"
		}
		t.Rows = append(t.Rows, []string{
			cap,
			mode,
			r.Raw,
			fmt.Sprintf("%d", r.Valid),
			fmt.Sprintf("%d", r.Checks),
			fmt.Sprintf("%d", r.SpaceBytes),
			fmt.Sprintf("%d", r.RetainedBytes),
			r.GenTime.Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"each cell builds the space and round-trips evenly spaced At/IndexOf probes, so lazy rows include first-touch expansion",
		"space bytes = arena footprint (eager) or resident expanded slabs under the 256 MiB budget (lazy)",
		"the uncapped row has no eager counterpart: a raw product beyond 10^19 cannot be materialized, which is what lazy construction removes (§VI-A)")
	return t
}
