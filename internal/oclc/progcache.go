package oclc

import (
	"hash/maphash"
	"strconv"
	"sync"
	"time"

	"atf/internal/obs"
)

// Process-wide compile-cache metrics (DESIGN.md §3c). The cache's own
// hits/misses fields stay authoritative for CompileCacheStats (they reset
// with ResetCompileCache); these export the same events cumulatively.
var (
	mCompileHits = obs.NewCounter("atf_oclc_compile_cache_hits_total",
		"Compile-cache lookups served from a completed program")
	mCompileMisses = obs.NewCounter("atf_oclc_compile_cache_misses_total",
		"Compile-cache lookups that compiled the program")
	mCompileInflight = obs.NewCounter("atf_oclc_compile_cache_inflight_waits_total",
		"Compile-cache lookups that blocked on another worker's in-flight compile")
	mCompileSeconds = obs.NewHistogram("atf_oclc_compile_seconds",
		"Wall-clock time of one cold kernel compile (preprocess+lex+parse)", nil)
)

// Engine-labeled views of the cache counters (DESIGN.md §3c): the same
// events as the unlabeled totals, attributed to the process-default engine
// active at lookup time, so operators can see which engine a tuning run's
// compiles fed.
var (
	mCompileHitsByEngine = map[Engine]*obs.Counter{
		EngineVM: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm"}`,
			"Compile-cache hits while the vm engine was the process default"),
		EngineWalk: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="walk"}`,
			"Compile-cache hits while the walk engine was the process default"),
		EngineVMNoSpec: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm-nospec"}`,
			"Compile-cache hits while the vm-nospec engine was the process default"),
		EngineVMVec: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm-vec"}`,
			"Compile-cache hits while the vm-vec engine was the process default"),
	}
	mCompileMissesByEngine = map[Engine]*obs.Counter{
		EngineVM: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm"}`,
			"Compile-cache misses while the vm engine was the process default"),
		EngineWalk: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="walk"}`,
			"Compile-cache misses while the walk engine was the process default"),
		EngineVMNoSpec: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm-nospec"}`,
			"Compile-cache misses while the vm-nospec engine was the process default"),
		EngineVMVec: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm-vec"}`,
			"Compile-cache misses while the vm-vec engine was the process default"),
	}
)

// programCache memoizes compiled programs by (source, define set). ATF's
// OpenCL cost function rebuilds the kernel for every configuration; search
// techniques revisit configurations (annealing walks, cache-less random
// search, post-tuning Verify runs), and every revisit used to pay the full
// preprocess + lex + parse pipeline again. The cache keys on the exact
// -D option string, so each distinct configuration is compiled once and
// only re-interpreted afterwards. Compiled Programs are immutable after
// parsing (Launch allocates all mutable state per call), so one cached
// instance is safely shared by concurrent exploration workers.
//
// In-flight deduplication mirrors core's cost cache: concurrent requests
// for the same key block on the first compilation instead of repeating it.
type programCache struct {
	mu      sync.Mutex
	entries map[string]*progCacheEntry
	cap     int

	hits   uint64
	misses uint64
}

type progCacheEntry struct {
	done chan struct{}
	prog *Program
	err  error
}

// compileCacheCap bounds the number of retained programs. XgemmDirect's
// reduced bench space has ~10^5 configs but tuning budgets are far smaller;
// 4096 programs of a few kB each keep every config of a realistic run.
const compileCacheCap = 4096

var sharedProgCache = &programCache{entries: make(map[string]*progCacheEntry), cap: compileCacheCap}

var progKeySeed = maphash.MakeSeed()

// progCacheKey folds source identity and the canonical define string. The
// full source is hashed rather than stored: keys would otherwise retain
// multi-kB kernel sources per configuration.
func progCacheKey(source string, defines map[string]string) string {
	h := maphash.String(progKeySeed, source)
	return strconv.FormatUint(h, 16) + "|" + BuildDefines(defines)
}

// CompileCached is Compile backed by the shared program cache. The returned
// Program must be treated as immutable (Launch already is); callers needing
// a private mutable Program should use Compile.
func CompileCached(source string, defines map[string]string) (*Program, error) {
	return sharedProgCache.compile(source, defines)
}

// CompileCacheStats reports the shared cache's hit/miss counters (tests,
// benchmarks).
func CompileCacheStats() (hits, misses uint64) {
	sharedProgCache.mu.Lock()
	defer sharedProgCache.mu.Unlock()
	return sharedProgCache.hits, sharedProgCache.misses
}

// ResetCompileCache empties the shared cache and its counters (benchmarks
// measuring cold compiles).
func ResetCompileCache() {
	sharedProgCache.mu.Lock()
	defer sharedProgCache.mu.Unlock()
	sharedProgCache.entries = make(map[string]*progCacheEntry)
	sharedProgCache.hits, sharedProgCache.misses = 0, 0
}

func (c *programCache) compile(source string, defines map[string]string) (*Program, error) {
	key := progCacheKey(source, defines)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.done:
			mCompileHits.Inc()
			if m := mCompileHitsByEngine[DefaultEngine()]; m != nil {
				m.Inc()
			}
		default:
			mCompileInflight.Inc()
			<-e.done
		}
		return e.prog, e.err
	}
	c.misses++
	mCompileMisses.Inc()
	if m := mCompileMissesByEngine[DefaultEngine()]; m != nil {
		m.Inc()
	}
	if len(c.entries) >= c.cap {
		// The cache outgrew its bound: drop a quarter of the entries
		// (arbitrary victims — map order). Eviction never blocks waiters:
		// evicted in-flight entries still complete for whoever holds them.
		drop := c.cap / 4
		for k := range c.entries {
			if drop == 0 {
				break
			}
			delete(c.entries, k)
			drop--
		}
	}
	e := &progCacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	start := time.Now()
	e.prog, e.err = Compile(source, defines)
	mCompileSeconds.Observe(time.Since(start).Seconds())
	close(e.done)
	return e.prog, e.err
}
