package core

import "fmt"

// Param is one tuning parameter: a unique name, a raw range of candidate
// values, and an optional constraint that filters the range against the
// values of previously declared parameters (paper, Section II, Step 1:
// "tp(name, range, constraint)").
type Param struct {
	Name       string
	Range      Range
	Constraint Constraint // the zero Constraint means unconstrained
	// DivisorOf is an optional iteration hint (see WithDivisorHint):
	// generation may enumerate only divisors of this expression's value.
	// It never widens the space — the Constraint is always re-checked.
	DivisorOf Expr
}

// NewParam constructs a tuning parameter. It panics on an empty name or nil
// range; parameters are declared at setup time.
func NewParam(name string, r Range, cs ...Constraint) *Param {
	if name == "" {
		panic("core: tuning parameter needs a name")
	}
	if r == nil {
		panic(fmt.Sprintf("core: tuning parameter %q needs a range", name))
	}
	p := &Param{Name: name, Range: r}
	switch len(cs) {
	case 0:
	case 1:
		p.Constraint = cs[0]
	default:
		p.Constraint = And(cs...)
	}
	return p
}

// Accepts reports whether value v passes the parameter's constraint in the
// context of partial configuration c.
func (p *Param) Accepts(v Value, c *Config) bool {
	return p.Constraint.Check(v, c)
}

// Deps returns the names of previously declared parameters this parameter's
// constraint and divisor hint may read, and whether that footprint is exact
// (see Constraint.Deps). Space generation uses it to decide which prefixes
// share completion subtrees.
func (p *Param) Deps() (reads []string, exact bool) {
	cr, ce := p.Constraint.Deps()
	dr, de := p.DivisorOf.Deps()
	if len(dr) == 0 {
		return cr, ce && de
	}
	merged := append(append([]string(nil), cr...), dr...)
	return dedupNames(merged), ce && de
}

// Group is an ordered list of interdependent tuning parameters (paper,
// Section V): constraints of a parameter may reference only parameters that
// appear *earlier in the same group*. Independent groups let ATF generate
// the search space in parallel and keep the full space as a cross product
// of per-group sub-spaces that is never materialized.
type Group struct {
	Params []*Param
}

// G groups parameters, mirroring ATF's grouping function G(...).
func G(params ...*Param) *Group {
	if len(params) == 0 {
		panic("core: empty parameter group")
	}
	return &Group{Params: params}
}

// Names returns the parameter names of the group in declaration order.
func (g *Group) Names() []string {
	ns := make([]string, len(g.Params))
	for i, p := range g.Params {
		ns[i] = p.Name
	}
	return ns
}

// AutoGroup partitions a flat parameter list heuristically: an
// unconstrained parameter starts a fresh group; a constrained parameter
// joins the group of the parameter declared immediately before it. This
// reproduces the paper's Figure 1 grouping for the common declaration order
// (tp1, tp2=f(tp1), tp3, tp4=f(tp3) → groups {tp1,tp2}, {tp3,tp4}).
//
// ATF "cannot automatically determine dependencies between parameters"
// (Section V), and neither does this package introspect closures. AutoGroup
// is therefore only a convenience for chain-shaped dependencies; if a
// constraint reaches across the produced groups, space generation fails
// with a descriptive error and the caller must group explicitly (or use a
// single group, which is always correct but generates sequentially).
func AutoGroup(params []*Param) []*Group {
	var groups []*Group
	for _, p := range params {
		if p.Constraint.IsZero() || len(groups) == 0 {
			groups = append(groups, G(p))
			continue
		}
		last := groups[len(groups)-1]
		last.Params = append(last.Params, p)
	}
	return groups
}

// FlattenGroups returns all parameters of the given groups in order.
func FlattenGroups(groups []*Group) []*Param {
	var ps []*Param
	for _, g := range groups {
		ps = append(ps, g.Params...)
	}
	return ps
}
