#!/bin/sh
# bench2json.sh [bench.txt] — convert `go test -bench` output (stdin or a
# file) into a machine-readable JSON summary on stdout:
#
#   {
#     "KernelInterpreter": {
#       "engine=vm": 1234567.8,
#       "engine=vm-vec": 345678.9
#     },
#     ...
#   }
#
# Top-level keys are the benchmark names with the Benchmark prefix and the
# -GOMAXPROCS suffix stripped; nested keys are the sub-benchmark paths
# (engine=..., memo=.../workers-N, ...); values are mean ns/op across all
# samples (-count=N). `make bench` pipes its output through this script to
# produce results/bench.json; scripts/benchdiff.sh diffs two such files.
#
# The testing package appends "-GOMAXPROCS" only when GOMAXPROCS > 1, and
# sub-benchmark names can legitimately end in "-N" (workers-8), so the
# suffix is stripped only when every benchmark line carries the same one.
set -eu

awk '
{
    n = split($0, parts, /[ \t]+/)
    if (parts[1] !~ /^Benchmark/ || n < 3) next
    name = parts[1]
    sub(/^Benchmark/, "", name)
    for (i = 3; i < n; i++) {
        if (parts[i+1] == "ns/op") {
            nb++
            names[nb] = name
            vals[nb] = parts[i] + 0
            if (match(name, /-[0-9]+$/)) {
                sfx = substr(name, RSTART)
                if (nb == 1 || sfx == common) common = sfx
                else common = ""
            } else common = ""
            break
        }
    }
}
END {
    for (b = 1; b <= nb; b++) {
        name = names[b]
        if (common != "") sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS
        slash = index(name, "/")
        group = slash ? substr(name, 1, slash - 1) : name
        key = slash ? substr(name, slash + 1) : ""
        sum[group SUBSEP key] += vals[b]
        cnt[group SUBSEP key]++
    }
    for (gk in sum) {
        split(gk, p, SUBSEP)
        printf "%s\t%s\t%.1f\n", p[1], p[2], sum[gk] / cnt[gk]
    }
}
' "$@" | sort | awk -F '\t' '
BEGIN { print "{"; group = "" }
{
    if ($1 != group) {
        if (group != "") printf "\n  },\n"
        group = $1
        printf "  \"%s\": {", group
        first = 1
    }
    if (!first) printf ","
    first = 0
    printf "\n    \"%s\": %s", $2, $3
}
END {
    if (group != "") printf "\n  }\n"
    print "}"
}
'
