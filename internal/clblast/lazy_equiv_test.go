package clblast

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"atf/internal/core"
)

// TestLazyGenerationEquivalence is the capped differential corpus of the
// lazy-space acceptance criteria: on spaces small enough to build eagerly,
// lazy construction must be bit-identical — Size, At at every probed
// index, IndexOf round-trips — across worker counts and under eviction
// pressure from a small arena budget.
func TestLazyGenerationEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		params func() []*core.Param
		budget int64
	}{
		{"saxpy", func() []*core.Param { return SaxpyParams(1 << 14) }, 1 << 16},
		{"xgemmdirect-cap16", func() []*core.Param {
			return XgemmDirectParams(SpaceOptions{RangeCap: 16})
		}, 1 << 14},
		{"xgemmdirect-cap16-hints", func() []*core.Param {
			return XgemmDirectParams(SpaceOptions{RangeCap: 16, DivisorHints: true})
		}, 1 << 14},
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eager, err := core.GenerateFlat(tc.params(),
				core.GenOptions{Workers: 1, Mode: core.SpaceEager})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				for _, budget := range []int64{0, tc.budget} {
					label := fmt.Sprintf("workers=%d budget=%d", w, budget)
					lazy, err := core.GenerateFlat(tc.params(),
						core.GenOptions{Workers: w, Mode: core.SpaceLazy, MaxArenaBytes: budget})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if lazy.Size() != eager.Size() {
						t.Fatalf("%s: size %d, want %d", label, lazy.Size(), eager.Size())
					}
					if lazy.Checks() != eager.Checks() {
						t.Errorf("%s: checks %d, want %d", label, lazy.Checks(), eager.Checks())
					}
					n := lazy.Size()
					step := n/257 + 1
					for idx := uint64(0); idx < n; idx += step {
						checkIndex(t, label, eager, lazy, idx)
					}
					checkIndex(t, label, eager, lazy, n-1)
				}
			}
		})
	}
}

// TestXgemmDirectUncappedLazy is the acceptance demo: XgemmDirect with
// uncapped {1..1024} ranges has a raw Cartesian product beyond 10^19, yet
// the lazy space reports the exact valid count and serves At/IndexOf. The
// exact size is cross-checked against an eager cap-96 build: the
// local-memory constraint (#15) rejects every WGD >= 79 at any padding, so
// the valid set — and the pruned enumeration order — is identical for
// every cap >= 78, making the eager cap-96 trie a ground truth for the
// uncapped space.
func TestXgemmDirectUncappedLazy(t *testing.T) {
	uncapped, err := core.GenerateFlat(
		XgemmDirectParams(SpaceOptions{RangeCap: 1024, DivisorHints: true}),
		core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.LazyGroups() != 1 {
		t.Fatalf("uncapped XgemmDirect should auto-select lazy construction")
	}
	tenPow19 := new(big.Int).Exp(big.NewInt(10), big.NewInt(19), nil)
	if uncapped.RawSize().Cmp(tenPow19) <= 0 {
		t.Fatalf("raw size %s should exceed 10^19", uncapped.RawSize())
	}
	ground, err := core.GenerateFlat(
		XgemmDirectParams(SpaceOptions{RangeCap: 96, DivisorHints: true}),
		core.GenOptions{Mode: core.SpaceEager})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Size() != ground.Size() {
		t.Fatalf("uncapped Size = %d, want %d (saturated valid set)", uncapped.Size(), ground.Size())
	}
	params := XgemmDirectParams(SpaceOptions{RangeCap: 1024})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		idx := uncapped.RandomIndex(rng)
		cfg := uncapped.At(idx)
		if !cfg.Equal(ground.At(idx)) {
			t.Fatalf("At(%d) = %v, want %v", idx, cfg, ground.At(idx))
		}
		if ri, ok := uncapped.IndexOf(cfg); !ok || ri != idx {
			t.Fatalf("IndexOf(At(%d)) = %d,%v", idx, ri, ok)
		}
		if !ValidateConfig(cfg, params) {
			t.Fatalf("At(%d) = %v violates the constraint chain", idx, cfg)
		}
	}
	exp, _, res := uncapped.LazyStats()
	t.Logf("uncapped: size=%d raw=%s expansions=%d resident=%dB checks=%d",
		uncapped.Size(), uncapped.RawSize(), exp, res, uncapped.Checks())
}
