package core

import (
	"strings"
	"testing"
)

func TestConfigBasics(t *testing.T) {
	c := NewConfig([]string{"WPT", "LS"})
	if c.Len() != 2 || c.Filled() != 0 {
		t.Fatal("fresh config should be empty")
	}
	c.set(0, Int(4))
	if c.Filled() != 1 || c.Int("WPT") != 4 {
		t.Fatal("set/Int broken")
	}
	c.set(1, Int(64))
	if c.Filled() != 2 || c.Int("LS") != 64 {
		t.Fatal("second set broken")
	}
	if got := c.Names(); got[0] != "WPT" || got[1] != "LS" {
		t.Error("Names order wrong")
	}
}

func TestConfigFromMap(t *testing.T) {
	c := ConfigFromMap([]string{"A", "B"}, map[string]Value{"A": Int(1), "B": Bool(true)})
	if c.Int("A") != 1 || !c.Bool("B") {
		t.Fatal("map construction broken")
	}
	if c.Filled() != 2 {
		t.Fatal("should be complete")
	}
}

func TestConfigFromMapMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing parameter")
		}
	}()
	ConfigFromMap([]string{"A", "B"}, map[string]Value{"A": Int(1)})
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate name")
		}
	}()
	NewConfig([]string{"X", "X"})
}

func TestConfigForwardReferencePanics(t *testing.T) {
	// A constraint reading a later (unassigned) parameter must fail loudly —
	// ATF constraints may only use previously declared parameters.
	c := NewConfig([]string{"A", "B"})
	c.set(0, Int(1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for forward reference")
		}
		if !strings.Contains(r.(string), "previously declared") {
			t.Fatalf("panic message should explain the rule, got %v", r)
		}
	}()
	c.Value("B")
}

func TestConfigUnknownNamePanics(t *testing.T) {
	c := NewConfig([]string{"A"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown name")
		}
	}()
	c.Value("nope")
}

func TestConfigHas(t *testing.T) {
	c := NewConfig([]string{"A", "B"})
	c.set(0, Int(1))
	if !c.Has("A") || c.Has("B") || c.Has("C") {
		t.Error("Has broken")
	}
}

func TestConfigTypedAccessors(t *testing.T) {
	c := ConfigFromMap([]string{"I", "F", "B", "S"}, map[string]Value{
		"I": Int(3), "F": Float(1.5), "B": Bool(true), "S": Str("fast"),
	})
	if c.Int("I") != 3 || c.Float("F") != 1.5 || !c.Bool("B") || c.Str("S") != "fast" {
		t.Error("typed accessors broken")
	}
	if c.At(0).Int() != 3 {
		t.Error("positional access broken")
	}
}

func TestConfigClone(t *testing.T) {
	c := ConfigFromMap([]string{"A"}, map[string]Value{"A": Int(1)})
	d := c.Clone()
	d.set(0, Int(2))
	if c.Int("A") != 1 {
		t.Error("clone must not share storage")
	}
	if d.Int("A") != 2 {
		t.Error("clone mutation lost")
	}
}

func TestConfigMapAndDefines(t *testing.T) {
	c := ConfigFromMap([]string{"WPT", "PAD"}, map[string]Value{"WPT": Int(8), "PAD": Bool(true)})
	m := c.Map()
	if len(m) != 2 || m["WPT"].Int() != 8 {
		t.Error("Map broken")
	}
	d := c.Defines()
	if d["WPT"] != "8" {
		t.Errorf("WPT define = %q", d["WPT"])
	}
	if d["PAD"] != "1" {
		t.Errorf("bool define should be 0/1, got %q", d["PAD"])
	}
	c2 := ConfigFromMap([]string{"PAD"}, map[string]Value{"PAD": Bool(false)})
	if c2.Defines()["PAD"] != "0" {
		t.Error("false should define as 0")
	}
}

func TestConfigStringDeterministic(t *testing.T) {
	c := ConfigFromMap([]string{"B", "A"}, map[string]Value{"B": Int(2), "A": Int(1)})
	if c.String() != "{A=1, B=2}" {
		t.Errorf("String = %q", c.String())
	}
}

func TestConfigEqualAndKey(t *testing.T) {
	mk := func(a, b int64) *Config {
		return ConfigFromMap([]string{"A", "B"}, map[string]Value{"A": Int(a), "B": Int(b)})
	}
	if !mk(1, 2).Equal(mk(1, 2)) {
		t.Error("identical configs must be equal")
	}
	if mk(1, 2).Equal(mk(1, 3)) {
		t.Error("different configs must not be equal")
	}
	if mk(1, 2).Key() == mk(1, 3).Key() {
		t.Error("keys must differ")
	}
	if mk(1, 2).Key() != mk(1, 2).Key() {
		t.Error("keys must be deterministic")
	}
	// Different lengths.
	c1 := ConfigFromMap([]string{"A"}, map[string]Value{"A": Int(1)})
	if c1.Equal(mk(1, 2)) {
		t.Error("configs of different arity must not be equal")
	}
}

func TestConfigKeyUnambiguous(t *testing.T) {
	// "1","12" vs "11","2" — the separator must keep keys distinct.
	a := ConfigFromMap([]string{"A", "B"}, map[string]Value{"A": Int(1), "B": Int(12)})
	b := ConfigFromMap([]string{"A", "B"}, map[string]Value{"A": Int(11), "B": Int(2)})
	if a.Key() == b.Key() {
		t.Error("key collision")
	}
}
