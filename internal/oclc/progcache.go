package oclc

import (
	"container/list"
	"hash/maphash"
	"strconv"
	"sync"
	"time"

	"atf/internal/obs"
)

// Process-wide compile-cache metrics (DESIGN.md §3c). The cache's own
// hits/misses fields stay authoritative for CompileCacheStats (they reset
// with ResetCompileCache); these export the same events cumulatively.
var (
	mCompileHits = obs.NewCounter("atf_oclc_compile_cache_hits_total",
		"Compile-cache lookups served from a completed program")
	mCompileMisses = obs.NewCounter("atf_oclc_compile_cache_misses_total",
		"Compile-cache lookups that compiled the program")
	mCompileInflight = obs.NewCounter("atf_oclc_compile_cache_inflight_waits_total",
		"Compile-cache lookups that blocked on another worker's in-flight compile")
	mCompileEvictions = obs.NewCounter("atf_oclc_compile_cache_evictions_total",
		"Compiled programs evicted to keep the cache under its byte budget")
	mCompileBytes = obs.NewGauge("atf_oclc_compile_cache_bytes",
		"Estimated bytes of compiled programs resident in the cache")
	mCompileEntries = obs.NewGauge("atf_oclc_compile_cache_entries",
		"Compiled programs resident in the cache")
	mCompileSeconds = obs.NewHistogram("atf_oclc_compile_seconds",
		"Wall-clock time of one cold kernel compile (preprocess+lex+parse)", nil)
)

// Engine-labeled views of the cache counters (DESIGN.md §3c): the same
// events as the unlabeled totals, attributed to the process-default engine
// active at lookup time, so operators can see which engine a tuning run's
// compiles fed.
var (
	mCompileHitsByEngine = map[Engine]*obs.Counter{
		EngineVM: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm"}`,
			"Compile-cache hits while the vm engine was the process default"),
		EngineWalk: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="walk"}`,
			"Compile-cache hits while the walk engine was the process default"),
		EngineVMNoSpec: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm-nospec"}`,
			"Compile-cache hits while the vm-nospec engine was the process default"),
		EngineVMVec: obs.NewCounter(`atf_oclc_compile_cache_hits_total{engine="vm-vec"}`,
			"Compile-cache hits while the vm-vec engine was the process default"),
	}
	mCompileMissesByEngine = map[Engine]*obs.Counter{
		EngineVM: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm"}`,
			"Compile-cache misses while the vm engine was the process default"),
		EngineWalk: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="walk"}`,
			"Compile-cache misses while the walk engine was the process default"),
		EngineVMNoSpec: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm-nospec"}`,
			"Compile-cache misses while the vm-nospec engine was the process default"),
		EngineVMVec: obs.NewCounter(`atf_oclc_compile_cache_misses_total{engine="vm-vec"}`,
			"Compile-cache misses while the vm-vec engine was the process default"),
	}
)

// programCache memoizes compiled programs by (source, define set). ATF's
// OpenCL cost function rebuilds the kernel for every configuration; search
// techniques revisit configurations (annealing walks, cache-less random
// search, post-tuning Verify runs), and — because the cache is process-wide
// — concurrent atfd sessions tuning the same kernel share each other's
// compiles: the daemon scope IS the cache scope, so a second session
// submitting an identical spec starts warm. The cache keys on the exact
// -D option string, so each distinct configuration is compiled once and
// only re-interpreted afterwards. Compiled Programs are immutable after
// parsing (Launch allocates all mutable state per call), so one cached
// instance is safely shared by concurrent exploration workers and sessions.
//
// Retention is a byte-budgeted LRU over an estimated per-program footprint:
// a lookup (hit or miss) moves the entry to the front, and inserts evict
// from the back until the estimate fits the budget again. In-flight
// compiles are never evicted (their footprint is unknown until they
// finish), and eviction never blocks waiters: an evicted entry still
// completes for whoever already holds it.
//
// In-flight deduplication mirrors core's cost cache: concurrent requests
// for the same key block on the first compilation instead of repeating it.
type programCache struct {
	mu      sync.Mutex
	entries map[string]*progCacheEntry
	lru     *list.List // *progCacheEntry; front = most recently used
	budget  int64
	bytes   int64

	hits      uint64
	misses    uint64
	evictions uint64
}

type progCacheEntry struct {
	key   string
	elem  *list.Element
	bytes int64 // 0 while the compile is in flight
	done  chan struct{}
	prog  *Program
	err   error
	// source and defines reproduce the compile for the persistent
	// warm-start manifest (manifest.go): cache keys hash the source with a
	// per-process seed, so persisting keys would be useless across
	// restarts — the manifest persists the compile inputs instead.
	source  string
	defines map[string]string
}

// DefaultCompileCacheBudget is the default byte budget of the shared
// compile cache: at a few kB per compiled program it retains every
// configuration of thousands of concurrent realistic tuning runs.
const DefaultCompileCacheBudget = 64 << 20

var sharedProgCache = newProgramCache(DefaultCompileCacheBudget)

func newProgramCache(budget int64) *programCache {
	return &programCache{
		entries: make(map[string]*progCacheEntry),
		lru:     list.New(),
		budget:  budget,
	}
}

var progKeySeed = maphash.MakeSeed()

// progCacheKey folds source identity and the canonical define string. The
// full source is hashed rather than stored: keys would otherwise retain
// multi-kB kernel sources per configuration.
func progCacheKey(source string, defines map[string]string) string {
	h := maphash.String(progKeySeed, source)
	return strconv.FormatUint(h, 16) + "|" + BuildDefines(defines)
}

// progFootprint estimates the resident bytes of one cache entry. The AST
// is not walked — the estimate only has to be proportional, and compiled
// programs retain their preprocessed source plus an AST of roughly the
// same order, so a small multiple of the source length plus a fixed
// overhead tracks reality closely enough for budget enforcement.
func progFootprint(source, key string) int64 {
	return int64(len(source))*3 + int64(len(key)) + 4096
}

// CompileCached is Compile backed by the shared program cache. The returned
// Program must be treated as immutable (Launch already is); callers needing
// a private mutable Program should use Compile.
func CompileCached(source string, defines map[string]string) (*Program, error) {
	return sharedProgCache.compile(source, defines)
}

// SetCompileCacheBudget bounds the estimated bytes the shared compile
// cache retains (atfd -compile-cache-bytes). 0 disables caching entirely
// — every CompileCached call compiles cold — and a negative budget lifts
// the bound. Shrinking the budget evicts immediately.
func SetCompileCacheBudget(bytes int64) {
	c := sharedProgCache
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = bytes
	c.evictOverBudgetLocked()
}

// CompileCacheBudget reports the shared cache's byte budget.
func CompileCacheBudget() int64 {
	sharedProgCache.mu.Lock()
	defer sharedProgCache.mu.Unlock()
	return sharedProgCache.budget
}

// CompileCacheStats reports the shared cache's hit/miss/eviction counters
// and its estimated resident bytes (tests, benchmarks, the load harness).
func CompileCacheStats() (hits, misses uint64) {
	sharedProgCache.mu.Lock()
	defer sharedProgCache.mu.Unlock()
	return sharedProgCache.hits, sharedProgCache.misses
}

// CompileCacheUsage reports the shared cache's resident entry count,
// estimated bytes, and cumulative evictions.
func CompileCacheUsage() (entries int, bytes int64, evictions uint64) {
	sharedProgCache.mu.Lock()
	defer sharedProgCache.mu.Unlock()
	return len(sharedProgCache.entries), sharedProgCache.bytes, sharedProgCache.evictions
}

// ResetCompileCache empties the shared cache and its counters (benchmarks
// measuring cold compiles). The budget is preserved.
func ResetCompileCache() {
	c := sharedProgCache
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*progCacheEntry)
	c.lru.Init()
	c.bytes = 0
	c.hits, c.misses, c.evictions = 0, 0, 0
	mCompileBytes.Set(0)
	mCompileEntries.Set(0)
}

func (c *programCache) compile(source string, defines map[string]string) (*Program, error) {
	key := progCacheKey(source, defines)
	c.mu.Lock()
	if c.budget == 0 {
		// Caching disabled: compile cold, still counted as a miss so hit
		// rates read as 0% rather than absent.
		c.misses++
		c.mu.Unlock()
		c.countMiss()
		start := time.Now()
		prog, err := Compile(source, defines)
		mCompileSeconds.Observe(time.Since(start).Seconds())
		return prog, err
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.done:
			mCompileHits.Inc()
			if m := mCompileHitsByEngine[DefaultEngine()]; m != nil {
				m.Inc()
			}
		default:
			mCompileInflight.Inc()
			<-e.done
		}
		return e.prog, e.err
	}
	c.misses++
	defCopy := make(map[string]string, len(defines))
	for k, v := range defines {
		defCopy[k] = v
	}
	e := &progCacheEntry{key: key, done: make(chan struct{}), source: source, defines: defCopy}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()
	c.countMiss()

	start := time.Now()
	e.prog, e.err = Compile(source, defines)
	mCompileSeconds.Observe(time.Since(start).Seconds())

	// Account the finished entry and shed LRU victims before waking the
	// waiters. Failed compiles keep a minimal footprint: the error is worth
	// caching (repeat submissions of a broken kernel stay cheap) but holds
	// no program.
	c.mu.Lock()
	if c.entries[key] == e { // not evicted or reset mid-compile
		e.bytes = progFootprint(source, key)
		if e.err != nil {
			e.bytes = int64(len(key)) + 256
		}
		c.bytes += e.bytes
		c.evictOverBudgetLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return e.prog, e.err
}

func (c *programCache) countMiss() {
	mCompileMisses.Inc()
	if m := mCompileMissesByEngine[DefaultEngine()]; m != nil {
		m.Inc()
	}
}

// evictOverBudgetLocked drops least-recently-used completed entries until
// the estimated bytes fit the budget. In-flight entries (bytes == 0) are
// skipped: their size is unknown and their waiters hold direct pointers.
func (c *programCache) evictOverBudgetLocked() {
	if c.budget > 0 {
		for elem := c.lru.Back(); elem != nil && c.bytes > c.budget; {
			prev := elem.Prev()
			e := elem.Value.(*progCacheEntry)
			if e.bytes > 0 {
				c.lru.Remove(elem)
				delete(c.entries, e.key)
				c.bytes -= e.bytes
				c.evictions++
				mCompileEvictions.Inc()
			}
			elem = prev
		}
	}
	mCompileBytes.Set(c.bytes)
	mCompileEntries.Set(int64(len(c.entries)))
}
