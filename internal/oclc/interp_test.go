package oclc

import (
	"math"
	"strings"
	"testing"
)

// run1D compiles and launches a kernel over a 1-D NDRange.
func run1D(t *testing.T, src string, defines map[string]string, args []Arg,
	global, local int64, opts ExecOptions) *ExecResult {
	t.Helper()
	prog, err := Compile(src, defines)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for n, f := range prog.Funcs {
		if f.Kernel {
			name = n
		}
	}
	res, err := prog.Launch(name, args, NDRange1D(global, local), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const saxpyKernel = `
__kernel void saxpy(const int N, const float a,
                    __global float* x, __global float* y) {
  for (int w = 0; w < WPT; w++) {
    const int id = w * get_global_size(0) + get_global_id(0);
    y[id] = a * x[id] + y[id];
  }
}`

func TestSaxpyFunctional(t *testing.T) {
	const n = 32
	x := NewGlobalMemory(1, KFloat, 4, n)
	y := NewGlobalMemory(2, KFloat, 4, n)
	for i := 0; i < n; i++ {
		x.Data[i] = float64(i)
		y.Data[i] = float64(2 * i)
	}
	const a, wpt, ls = 3.0, 4, 2
	run1D(t, saxpyKernel, map[string]string{"WPT": "4"},
		[]Arg{IntArg(n), FloatArg(a), BufArg(x), BufArg(y)},
		n/wpt, ls, ExecOptions{})
	for i := 0; i < n; i++ {
		want := a*float64(i) + float64(2*i)
		if y.Data[i] != want {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], want)
		}
	}
}

func TestSaxpyCountsOps(t *testing.T) {
	const n = 16
	x := NewGlobalMemory(1, KFloat, 4, n)
	y := NewGlobalMemory(2, KFloat, 4, n)
	res := run1D(t, saxpyKernel, map[string]string{"WPT": "2"},
		[]Arg{IntArg(n), FloatArg(1), BufArg(x), BufArg(y)},
		n/2, 4, ExecOptions{})
	// Each of the 8 WIs runs WPT=2 iterations: 2 loads of x, 2 of y,
	// 2 stores of y.
	if res.Counters.GlobalLoads != 8*2*2 {
		t.Errorf("global loads = %d, want 32", res.Counters.GlobalLoads)
	}
	if res.Counters.GlobalStores != 8*2 {
		t.Errorf("global stores = %d, want 16", res.Counters.GlobalStores)
	}
	if res.Counters.FloatOps == 0 {
		t.Error("float ops not counted")
	}
	if res.Counters.LoopIters != 8*2 {
		t.Errorf("loop iters = %d, want 16", res.Counters.LoopIters)
	}
	if res.WIsExecuted != 8 {
		t.Errorf("WIs = %d, want 8", res.WIsExecuted)
	}
}

func TestWorkItemBuiltins(t *testing.T) {
	src := `
__kernel void ids(__global int* out) {
  const int g = get_global_id(0);
  out[g] = get_local_id(0) + 100*get_group_id(0)
         + 10000*get_local_size(0) + 1000000*get_num_groups(0);
}`
	out := NewGlobalMemory(1, KInt, 4, 12)
	run1D(t, src, nil, []Arg{BufArg(out)}, 12, 3, ExecOptions{})
	// WI 7: local id 1, group 2, local size 3, num groups 4.
	want := float64(1 + 100*2 + 10000*3 + 1000000*4)
	if out.Data[7] != want {
		t.Fatalf("out[7] = %v, want %v", out.Data[7], want)
	}
}

func TestLocalMemoryAndBarrier(t *testing.T) {
	// Reverse within each work-group through local memory — wrong without
	// a correctly shared tile and working barrier.
	src := `
__kernel void reverse(__global float* data) {
  __local float tile[LS];
  const int l = get_local_id(0);
  const int base = get_group_id(0) * LS;
  tile[l] = data[base + l];
  barrier(0);
  data[base + l] = tile[LS - 1 - l];
}`
	const n, ls = 16, 4
	data := NewGlobalMemory(1, KFloat, 4, n)
	for i := 0; i < n; i++ {
		data.Data[i] = float64(i)
	}
	run1D(t, src, map[string]string{"LS": "4"},
		[]Arg{BufArg(data)}, n, ls, ExecOptions{})
	for g := 0; g < n/ls; g++ {
		for l := 0; l < ls; l++ {
			want := float64(g*ls + (ls - 1 - l))
			if data.Data[g*ls+l] != want {
				t.Fatalf("data[%d] = %v, want %v", g*ls+l, data.Data[g*ls+l], want)
			}
		}
	}
}

func Test2DKernelAndArrays(t *testing.T) {
	// Tiny matrix transpose with a 2-D local tile.
	src := `
__kernel void transpose(const int n, __global float* in, __global float* out) {
  __local float tile[T][T];
  const int gx = get_global_id(0);
  const int gy = get_global_id(1);
  tile[get_local_id(1)][get_local_id(0)] = in[gy*n + gx];
  barrier(0);
  const int tx = get_group_id(1)*T + get_local_id(0);
  const int ty = get_group_id(0)*T + get_local_id(1);
  out[ty*n + tx] = tile[get_local_id(0)][get_local_id(1)];
}`
	const n, tile = 8, 2
	in := NewGlobalMemory(1, KFloat, 4, n*n)
	out := NewGlobalMemory(2, KFloat, 4, n*n)
	for i := 0; i < n*n; i++ {
		in.Data[i] = float64(i)
	}
	prog, err := Compile(src, map[string]string{"T": "2"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.Launch("transpose", []Arg{IntArg(n), BufArg(in), BufArg(out)},
		NDRange2D(n, n, tile, tile), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if out.Data[c*n+r] != in.Data[r*n+c] {
				t.Fatalf("transpose wrong at (%d,%d)", r, c)
			}
		}
	}
}

func TestHelperFunctionCall(t *testing.T) {
	src := `
inline float axpy(const float a, const float x, const float y) {
  return a * x + y;
}
__kernel void k(__global float* out) {
  out[get_global_id(0)] = axpy(2.0f, 3.0f, 4.0f);
}`
	out := NewGlobalMemory(1, KFloat, 4, 4)
	res := run1D(t, src, nil, []Arg{BufArg(out)}, 4, 2, ExecOptions{})
	if out.Data[0] != 10 {
		t.Fatalf("out[0] = %v, want 10", out.Data[0])
	}
	if res.Counters.Calls != 4 {
		t.Errorf("calls = %d, want 4", res.Counters.Calls)
	}
}

func TestIntegerSemantics(t *testing.T) {
	src := `
__kernel void k(__global int* out) {
  out[0] = 7 / 2;        // 3, integer division
  out[1] = 7 % 3;        // 1
  out[2] = 1 << 4;       // 16
  out[3] = -9 / 2;       // -4 (C truncation)
  out[4] = (int)(2.9f);  // 2
  out[5] = 5 > 3;        // 1
  out[6] = 10;
  out[6] += 4;           // 14
  out[7] = 0x10 | 1;     // 17
}`
	out := NewGlobalMemory(1, KInt, 4, 8)
	run1D(t, src, nil, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	want := []float64{3, 1, 16, -4, 2, 1, 14, 17}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  out[0] = 7.0f / 2.0f;          // 3.5
  out[1] = fma(2.0f, 3.0f, 1.0f); // 7
  out[2] = mad(2.0f, 3.0f, 1.0f); // 7
  out[3] = min(2.5f, 1.5f);
  out[4] = max(2, 7);
  out[5] = sqrt(16.0f);
  out[6] = fabs(-2.5f);
  out[7] = clamp(5.0f, 0.0f, 2.0f);
  out[8] = 7 / 2.0f;             // 3.5, promotion
}`
	out := NewGlobalMemory(1, KFloat, 4, 9)
	res := run1D(t, src, nil, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	want := []float64{3.5, 7, 7, 1.5, 7, 4, 2.5, 2, 3.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	if res.Counters.FMAs != 2 {
		t.Errorf("FMAs = %d, want 2", res.Counters.FMAs)
	}
	if res.Counters.SpecialOps < 2 {
		t.Errorf("special ops = %d, want >= 2 (sqrt, fabs)", res.Counters.SpecialOps)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
__kernel void k(__global int* out) {
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) { continue; }
    if (i == 7) { break; }
    acc += i;
  }
  int j = 0;
  while (j < 4) { j++; }
  out[0] = acc;       // 0+1+2+4+5+6 = 18
  out[1] = j;         // 4
  out[2] = (acc > 10) ? 1 : 2;
  int m = 5;
  m--; --m; m++; ++m; // back to 5
  out[3] = m;
}`
	out := NewGlobalMemory(1, KInt, 4, 4)
	run1D(t, src, nil, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	want := []float64{18, 4, 1, 5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestPragmaUnrollCountsSeparately(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  float acc = 0.0f;
  #pragma unroll 4
  for (int i = 0; i < 8; i++) { acc += 1.0f; }
  for (int i = 0; i < 8; i++) { acc += 1.0f; }
  out[0] = acc;
}`
	out := NewGlobalMemory(1, KFloat, 4, 1)
	res := run1D(t, src, nil, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	if out.Data[0] != 16 {
		t.Fatalf("acc = %v", out.Data[0])
	}
	if res.Counters.UnrolledIters != 8 || res.Counters.LoopIters != 8 {
		t.Fatalf("unrolled/plain = %d/%d, want 8/8",
			res.Counters.UnrolledIters, res.Counters.LoopIters)
	}
}

func TestPrivateArrays(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  float acc[4];
  for (int i = 0; i < 4; i++) { acc[i] = (float)i; }
  float s = 0.0f;
  for (int i = 0; i < 4; i++) { s += acc[i]; }
  out[get_global_id(0)] = s;
}`
	out := NewGlobalMemory(1, KFloat, 4, 2)
	res := run1D(t, src, nil, []Arg{BufArg(out)}, 2, 1, ExecOptions{})
	if out.Data[0] != 6 || out.Data[1] != 6 {
		t.Fatalf("out = %v", out.Data)
	}
	if res.Counters.PrivateAccess == 0 {
		t.Error("private array traffic not counted")
	}
	if res.Counters.GlobalStores != 2 {
		t.Errorf("global stores = %d, want 2", res.Counters.GlobalStores)
	}
}

func TestOutOfBoundsError(t *testing.T) {
	src := `__kernel void k(__global float* out) { out[99] = 1.0f; }`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 4)
	_, err = prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	src := `__kernel void k(__global int* out, const int z) { out[0] = 4 / z; }`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	_, err = prog.Launch("k", []Arg{BufArg(out), IntArg(0)}, NDRange1D(1, 1), ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division-by-zero error, got %v", err)
	}
}

func TestLaunchValidation(t *testing.T) {
	prog, err := Compile(`__kernel void k(__global float* o) { o[0]=1.0f; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 1)
	// Local does not divide global → CL_INVALID_WORK_GROUP_SIZE analogue.
	_, err = prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(10, 3), ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "does not divide") {
		t.Fatalf("expected NDRange validation error, got %v", err)
	}
	// Wrong argument count.
	_, err = prog.Launch("k", nil, NDRange1D(4, 2), ExecOptions{})
	if err == nil {
		t.Fatal("expected argument-count error")
	}
	// Unknown kernel.
	_, err = prog.Launch("nope", []Arg{BufArg(out)}, NDRange1D(4, 2), ExecOptions{})
	if err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestSampledExecution(t *testing.T) {
	const n = 64
	x := NewGlobalMemory(1, KFloat, 4, n)
	y := NewGlobalMemory(2, KFloat, 4, n)
	res := run1D(t, saxpyKernel, map[string]string{"WPT": "1"},
		[]Arg{IntArg(n), FloatArg(1), BufArg(x), BufArg(y)},
		n, 8, ExecOptions{SampleGroups: 2})
	if res.GroupsExecuted != 2 {
		t.Fatalf("groups executed = %d, want 2", res.GroupsExecuted)
	}
	if res.WIsExecuted != 16 {
		t.Fatalf("WIs executed = %d, want 16", res.WIsExecuted)
	}
}

func TestAccessLogRecordsCoalescableAddresses(t *testing.T) {
	const n = 32
	x := NewGlobalMemory(1, KFloat, 4, n)
	y := NewGlobalMemory(2, KFloat, 4, n)
	res := run1D(t, saxpyKernel, map[string]string{"WPT": "1"},
		[]Arg{IntArg(n), FloatArg(1), BufArg(x), BufArg(y)},
		n, 8, ExecOptions{SampleGroups: 1, RecordAccesses: true})
	if res.Log == nil {
		t.Fatal("no access log")
	}
	// saxpy has 3 access sites: x[id] load, y[id] load, y[id] store.
	sites := res.Log.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	// Adjacent work-items touch adjacent 4-byte addresses (unit stride).
	for site, byWI := range sites {
		if byWI[1][0]-byWI[0][0] != 4 {
			t.Errorf("site %d: stride = %d bytes, want 4", site, byWI[1][0]-byWI[0][0])
		}
	}
	// Store/load flags survive in the raw per-WI trace.
	stores := 0
	for _, a := range res.Log.WIAccesses(0) {
		if a.Store {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("WI 0 should have exactly 1 store, got %d", stores)
	}
}

func TestBarrierDivergenceFlagged(t *testing.T) {
	// Half the work-items skip the barrier: undefined behaviour that the
	// simulator must survive and flag rather than deadlock.
	src := `
__kernel void k(__global float* out) {
  if (get_local_id(0) < 2) { barrier(0); }
  out[get_global_id(0)] = 1.0f;
}`
	out := NewGlobalMemory(1, KFloat, 4, 4)
	res := run1D(t, src, nil, []Arg{BufArg(out)}, 4, 4, ExecOptions{})
	if !res.Divergent {
		t.Fatal("divergent barrier not flagged")
	}
}

func TestEnumStyleDefines(t *testing.T) {
	// String-valued tuning parameters arrive as numeric macro values via
	// the enum mapping; the kernel sees plain integers.
	src := `
__kernel void k(__global int* out) {
  out[0] = STRATEGY;
}`
	out := NewGlobalMemory(1, KInt, 4, 1)
	run1D(t, src, map[string]string{"STRATEGY": "2"}, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	if out.Data[0] != 2 {
		t.Fatalf("enum define lost: %v", out.Data[0])
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`__kernel void k( { }`,                    // bad params
		`__kernel void k() { int x = ; }`,         // bad init
		`__kernel void k() { y = 1; }`,            // undeclared
		`__kernel void k() { int x; int x; }`,     // redeclaration
		`__kernel void k() { float a[2][2][2]; }`, // 3-D array
		`__kernel void k() { 1 = 2; }`,            // bad assignment target
		`__kernel void k() { if (1) { return; }`,  // unterminated
		`void k() { unknown_fn(1); }`,             // undefined call is a runtime-free parse pass...
	}
	for i, src := range cases {
		_, err := Parse(src)
		if i == len(cases)-1 {
			// Calls resolve at runtime (like real linkers); parse succeeds.
			if err != nil {
				t.Errorf("case %d should parse, got %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d should fail to parse: %q", i, src)
		}
	}
}

func TestUndefinedFunctionRuntimeError(t *testing.T) {
	prog, err := Parse(`__kernel void k(__global float* o) { o[0] = zap(1.0f); }`)
	if err != nil {
		t.Fatal(err)
	}
	o := NewGlobalMemory(1, KFloat, 4, 1)
	_, err = prog.Launch("k", []Arg{BufArg(o)}, NDRange1D(1, 1), ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("want undefined-function error, got %v", err)
	}
}

func TestNonKernelLaunchRejected(t *testing.T) {
	prog, err := Parse(`void helper() { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Launch("helper", nil, NDRange1D(1, 1), ExecOptions{}); err == nil {
		t.Fatal("launching a non-kernel function must fail")
	}
}

func TestMemoryHelpers(t *testing.T) {
	m := NewGlobalMemory(1, KFloat, 4, 3)
	m.SetFloat32s([]float32{1, 2, 3})
	got := m.Float32s()
	if got[0] != 1 || got[2] != 3 {
		t.Fatal("float32 roundtrip broken")
	}
	if m.Len() != 3 {
		t.Fatal("Len broken")
	}
}

func TestCountersAddAndTotal(t *testing.T) {
	a := Counters{IntOps: 1, FloatOps: 2, FMAs: 3, GlobalLoads: 4}
	b := Counters{IntOps: 10, Barriers: 5}
	a.Add(&b)
	if a.IntOps != 11 || a.Barriers != 5 {
		t.Fatal("Add broken")
	}
	if a.Total() == 0 {
		t.Fatal("Total broken")
	}
}

func TestMathBuiltinValues(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  out[0] = exp(0.0f);
  out[1] = log(1.0f);
  out[2] = pow(2.0f, 10.0f);
  out[3] = floor(2.7f);
  out[4] = ceil(2.1f);
  out[5] = rsqrt(4.0f);
}`
	out := NewGlobalMemory(1, KFloat, 4, 6)
	run1D(t, src, nil, []Arg{BufArg(out)}, 1, 1, ExecOptions{})
	want := []float64{1, 0, 1024, 2, 3, 0.5}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-9 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("get_global_id") || !IsBuiltin("fma") {
		t.Error("expected builtins missing")
	}
	if IsBuiltin("frobnicate") {
		t.Error("unexpected builtin")
	}
}
