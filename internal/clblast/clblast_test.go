package clblast

import (
	"math/rand"
	"testing"

	"atf/internal/core"
	"atf/internal/opencl"
)

func k20m(t testing.TB) *opencl.Device {
	t.Helper()
	d, err := opencl.FindDevice("NVIDIA", "K20m")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func xeon(t testing.TB) *opencl.Device {
	t.Helper()
	d, err := opencl.FindDevice("Intel", "Xeon")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func cfgFromInts(vals map[string]int64) *core.Config {
	m := make(map[string]core.Value, len(vals))
	for k, v := range vals {
		if k == "PADA" || k == "PADB" {
			m[k] = core.Bool(v != 0)
		} else {
			m[k] = core.Int(v)
		}
	}
	return core.ConfigFromMap(XgemmDirectNames, m)
}

func TestCaffeInputSizes(t *testing.T) {
	iss := CaffeInputSizes()
	if len(iss) != 4 {
		t.Fatal("four input sizes expected")
	}
	if iss[1].M != 20 || iss[1].K != 25 || iss[1].N != 576 {
		t.Fatalf("IS2 wrong: %+v", iss[1])
	}
	if iss[3].String() == "" {
		t.Error("shapes should render")
	}
}

func TestSaxpySpaceMatchesListing2(t *testing.T) {
	const n = 64
	sp, err := core.GenerateFlat(SaxpyParams(n), core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp.ForEach(func(_ uint64, cfg *core.Config) bool {
		if n%cfg.Int("WPT") != 0 {
			t.Fatalf("WPT=%d does not divide N", cfg.Int("WPT"))
		}
		if (n/cfg.Int("WPT"))%cfg.Int("LS") != 0 {
			t.Fatalf("LS does not divide global size: %v", cfg)
		}
		return true
	})
	if sp.Size() == 0 {
		t.Fatal("saxpy space empty")
	}
}

func TestSaxpyEvaluator(t *testing.T) {
	e := NewSaxpyEvaluator(k20m(t), 1<<14, 1)
	cfg := core.ConfigFromMap([]string{"WPT", "LS"},
		map[string]core.Value{"WPT": core.Int(4), "LS": core.Int(64)})
	ns, err := e.Eval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatal("non-positive runtime")
	}
	// The cost-function adapter returns the same value.
	c, err := e.CostFunction().Cost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Primary() <= 0 {
		t.Fatal("cost adapter broken")
	}
}

func TestXgemmSpaceAllValid(t *testing.T) {
	params := XgemmDirectParams(SpaceOptions{RangeCap: 16})
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() == 0 {
		t.Fatal("space empty at cap 16")
	}
	checked := 0
	sp.ForEach(func(_ uint64, cfg *core.Config) bool {
		wgd, kwid := cfg.Int("WGD"), cfg.Int("KWID")
		mc, nc := cfg.Int("MDIMCD"), cfg.Int("NDIMCD")
		ma, nb := cfg.Int("MDIMAD"), cfg.Int("NDIMBD")
		threads := mc * nc
		if wgd%kwid != 0 || wgd%mc != 0 || wgd%nc != 0 || wgd%ma != 0 || wgd%nb != 0 {
			t.Fatalf("divisibility violated: %v", cfg)
		}
		if threads%ma != 0 || wgd%(threads/ma) != 0 {
			t.Fatalf("A-loader constraints violated: %v", cfg)
		}
		if threads%nb != 0 || wgd%(threads/nb) != 0 {
			t.Fatalf("B-loader constraints violated: %v", cfg)
		}
		if threads > 1024 {
			t.Fatalf("work-group too large: %v", cfg)
		}
		if (wgd/mc)%cfg.Int("VWMD") != 0 || (wgd/ma)%cfg.Int("VWMD") != 0 {
			t.Fatalf("VWMD constraints violated: %v", cfg)
		}
		if (wgd/nc)%cfg.Int("VWND") != 0 || (wgd/nb)%cfg.Int("VWND") != 0 {
			t.Fatalf("VWND constraints violated: %v", cfg)
		}
		checked++
		return true
	})
	if uint64(checked) != sp.Size() {
		t.Fatal("not all configs checked")
	}
}

func TestXgemmRawVsConstrainedSizes(t *testing.T) {
	params := XgemmDirectParams(SpaceOptions{RangeCap: 16})
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := sp.RawSize()
	// 16^6 * 4 * 4 * 2 * 2 = 16777216 * 64.
	if raw.String() != "1073741824" {
		t.Fatalf("raw size = %s", raw)
	}
	if sp.Size() >= raw.Uint64()/100 {
		t.Fatalf("constrained space (%d) should be a tiny fraction of raw (%s)",
			sp.Size(), raw)
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	params := XgemmDirectParams(SpaceOptions{RangeCap: 64})
	if !ValidateConfig(DefaultConfig(), params) {
		t.Fatal("the kernel defaults must satisfy all constraints")
	}
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.IndexOf(DefaultConfig()); !ok {
		t.Fatal("defaults must be a member of the full space")
	}
}

func TestRestrictedSpaceEmptyOnDeepLearningSizes(t *testing.T) {
	// The paper's central CLTune failure: WGD ∈ {8,16,32} constrained to
	// divide M and N leaves no valid configuration for any Caffe size.
	for _, shape := range CaffeInputSizes() {
		params := RestrictedParams(shape, 1024, 48<<10)
		sp, err := core.GenerateFlat(params, core.GenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sp.Size() != 0 {
			t.Fatalf("%s: restricted CLTune space should be empty, got %d",
				shape.Name, sp.Size())
		}
	}
}

func TestRestrictedSpaceNonEmptyAt256(t *testing.T) {
	// ... while at CLTune's average size 256×256 the space exists, which
	// is where CLBlast's device-optimized values come from.
	shape := GemmShape{Name: "avg", M: 256, N: 256, K: 256}
	params := RestrictedParams(shape, 1024, 48<<10)
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() == 0 {
		t.Fatal("restricted space at 256x256 must not be empty")
	}
}

func TestGlobalLocalSizePadding(t *testing.T) {
	cfg := cfgFromInts(map[string]int64{
		"WGD": 16, "KWID": 2, "MDIMCD": 8, "NDIMCD": 8,
		"MDIMAD": 8, "NDIMBD": 8, "VWMD": 1, "VWND": 1, "PADA": 1, "PADB": 1,
	})
	shape := GemmShape{M: 20, N: 500, K: 25}
	global, local := GlobalLocalSize(cfg, shape)
	// ceil(20/16)=2 tiles × 8 threads; ceil(500/16)=32 tiles × 8 threads.
	if global != [2]int64{16, 256} {
		t.Fatalf("global = %v", global)
	}
	if local != [2]int64{8, 8} {
		t.Fatalf("local = %v", local)
	}
	// Padded global is always a multiple of local — the CLBlast trick.
	if global[0]%local[0] != 0 || global[1]%local[1] != 0 {
		t.Fatal("global must be a multiple of local")
	}
}

// verifyConfig checks functional correctness of one configuration.
func verifyConfig(t *testing.T, shape GemmShape, cfg *core.Config) {
	t.Helper()
	e := NewGemmEvaluator(k20m(t), shape, 7)
	maxErr, err := e.Verify(cfg)
	if err != nil {
		t.Fatalf("%v on %s: %v", cfg, shape, err)
	}
	if maxErr > 1e-3 {
		t.Fatalf("%v on %s: max error %v", cfg, shape, maxErr)
	}
}

func TestXgemmDirectCorrectDefaults(t *testing.T) {
	verifyConfig(t, GemmShape{M: 20, N: 48, K: 25}, DefaultConfig())
}

func TestXgemmDirectCorrectOnBoundary(t *testing.T) {
	// M and N not multiples of WGD: boundary checks must mask the
	// out-of-range rows/columns.
	cfg := cfgFromInts(map[string]int64{
		"WGD": 16, "KWID": 2, "MDIMCD": 8, "NDIMCD": 8,
		"MDIMAD": 8, "NDIMBD": 8, "VWMD": 2, "VWND": 2, "PADA": 1, "PADB": 0,
	})
	verifyConfig(t, GemmShape{M: 19, N: 21, K: 13}, cfg)
}

func TestXgemmDirectCorrectKLessThanWGD(t *testing.T) {
	// IS1/IS3 have K=1 — far below any tile size; zero-padding the tiles
	// must keep results exact.
	cfg := cfgFromInts(map[string]int64{
		"WGD": 8, "KWID": 1, "MDIMCD": 4, "NDIMCD": 4,
		"MDIMAD": 4, "NDIMBD": 4, "VWMD": 1, "VWND": 1, "PADA": 0, "PADB": 0,
	})
	verifyConfig(t, GemmShape{M: 20, N: 24, K: 1}, cfg)
}

func TestXgemmDirectCorrectRandomConfigs(t *testing.T) {
	// Property-style: sample valid configurations from the generated
	// space and verify each functionally on a small shape.
	params := XgemmDirectParams(SpaceOptions{RangeCap: 16})
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	shape := GemmShape{M: 18, N: 22, K: 9}
	for i := 0; i < 6; i++ {
		cfg := sp.Random(rng)
		verifyConfig(t, shape, cfg)
	}
}

func TestXgemmDirectCorrectUnevenLoaders(t *testing.T) {
	// Asymmetric loader layouts (MDIMAD != MDIMCD) stress the cooperative
	// load index math.
	cfg := cfgFromInts(map[string]int64{
		"WGD": 16, "KWID": 4, "MDIMCD": 8, "NDIMCD": 4,
		"MDIMAD": 16, "NDIMBD": 2, "VWMD": 1, "VWND": 2, "PADA": 1, "PADB": 1,
	})
	params := XgemmDirectParams(SpaceOptions{RangeCap: 16})
	if !ValidateConfig(cfg, params) {
		t.Fatal("test config should be valid")
	}
	verifyConfig(t, GemmShape{M: 20, N: 20, K: 20}, cfg)
}

func TestGemmEvalInfeasibleConfigErrors(t *testing.T) {
	// MDIMCD*NDIMCD = 2048 exceeds the K20m's 1024 work-group limit; the
	// evaluator must surface a launch error (infinite cost for tuners).
	cfg := cfgFromInts(map[string]int64{
		"WGD": 64, "KWID": 1, "MDIMCD": 64, "NDIMCD": 32,
		"MDIMAD": 64, "NDIMBD": 64, "VWMD": 1, "VWND": 1, "PADA": 0, "PADB": 0,
	})
	e := NewGemmEvaluator(k20m(t), GemmShape{M: 64, N: 64, K: 64}, 1)
	if _, err := e.Eval(cfg); err == nil {
		t.Fatal("oversized work-group must fail")
	}
}

func TestGemmEvalDeviceSensitivity(t *testing.T) {
	// The same configuration must get *different* simulated times on CPU
	// and GPU — otherwise per-device tuning is meaningless.
	cfg := DefaultConfig()
	shape := GemmShape{M: 64, N: 64, K: 32}
	g, err := NewGemmEvaluator(k20m(t), shape, 1).Eval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewGemmEvaluator(xeon(t), shape, 1).Eval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g == c {
		t.Fatal("CPU and GPU estimates should differ")
	}
}

func TestGemmEvalParameterSensitivity(t *testing.T) {
	// Different configurations must produce different costs — the tuning
	// surface cannot be flat.
	shape := GemmShape{Name: "IS4", M: 10, K: 64, N: 500}
	e := NewGemmEvaluator(k20m(t), shape, 1)
	a, err := e.Eval(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	big := cfgFromInts(map[string]int64{
		"WGD": 32, "KWID": 2, "MDIMCD": 16, "NDIMCD": 16,
		"MDIMAD": 16, "NDIMBD": 16, "VWMD": 1, "VWND": 1, "PADA": 1, "PADB": 1,
	})
	b, err := e.Eval(big)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("flat cost surface")
	}
}

func TestRestrictedRangesMatchCLBlast(t *testing.T) {
	r := RestrictedRanges()
	wgd := r["WGD"]
	if wgd.Len() != 3 || wgd.At(0).Int() != 8 || wgd.At(2).Int() != 32 {
		t.Fatalf("WGD restriction should be {8,16,32}: %v", wgd)
	}
	if len(r) != 10 {
		t.Fatal("all ten parameters need ranges")
	}
}

func TestValidateConfigRejectsInvalid(t *testing.T) {
	params := XgemmDirectParams(SpaceOptions{RangeCap: 64})
	bad := cfgFromInts(map[string]int64{
		"WGD": 8, "KWID": 3, "MDIMCD": 8, "NDIMCD": 8, // 3 does not divide 8
		"MDIMAD": 8, "NDIMBD": 8, "VWMD": 1, "VWND": 1, "PADA": 0, "PADB": 0,
	})
	if ValidateConfig(bad, params) {
		t.Fatal("KWID=3 with WGD=8 must be invalid")
	}
}
