package atf

import (
	"fmt"
	"time"

	"atf/internal/core"
	"atf/internal/cuda"
	"atf/internal/generic"
	"atf/internal/opencl"
)

// KernelArg describes one kernel argument for the pre-implemented OpenCL
// and CUDA cost functions (paper, Section II Step 2).
type KernelArg struct {
	kind     argKind
	intVal   int64
	floatVal float64
	isFloat  bool
	data     []float32
	n        int
}

type argKind uint8

const (
	argScalar argKind = iota
	argRandomScalar
	argBuffer
	argRandomBuffer
)

// Scalar passes a concrete scalar (int, int32, int64, float32, float64) —
// atf::scalar(a).
func Scalar(v any) KernelArg {
	switch x := v.(type) {
	case int:
		return KernelArg{kind: argScalar, intVal: int64(x)}
	case int32:
		return KernelArg{kind: argScalar, intVal: int64(x)}
	case int64:
		return KernelArg{kind: argScalar, intVal: x}
	case float32:
		return KernelArg{kind: argScalar, floatVal: float64(x), isFloat: true}
	case float64:
		return KernelArg{kind: argScalar, floatVal: x, isFloat: true}
	default:
		panic(fmt.Sprintf("atf: unsupported scalar argument type %T", v))
	}
}

// RandomScalar passes a random float scalar — atf::scalar<float>().
func RandomScalar() KernelArg { return KernelArg{kind: argRandomScalar} }

// Buffer passes concrete data — atf::buffer(vec).
func Buffer(data []float32) KernelArg {
	return KernelArg{kind: argBuffer, data: data, n: len(data)}
}

// RandomBuffer passes an n-element buffer of random floats —
// atf::buffer<float>(N); random data is ATF's default tuning input.
func RandomBuffer(n int) KernelArg { return KernelArg{kind: argRandomBuffer, n: n} }

// SizeFn computes an NDRange dimension vector from a configuration. ATF
// lets global and local sizes be arbitrary arithmetic expressions over
// tuning parameters (paper, Section III) — in Go, arbitrary functions.
type SizeFn func(c *Config) []int64

// OpenCL is ATF's pre-implemented OpenCL cost function (atf::cf::ocl): it
// selects the device by platform and device *name*, uploads the kernel
// inputs once, and, per configuration, substitutes the tuning-parameter
// values into the kernel source via the preprocessor, builds, launches
// with the configured global/local sizes, and returns the (simulated)
// runtime measured through the profiling API.
type OpenCL struct {
	Platform string
	Device   string
	Source   string
	Kernel   string
	Args     []KernelArg
	// GlobalSize and LocalSize are arithmetic expressions over the
	// configuration (1-D or 2-D).
	GlobalSize SizeFn
	LocalSize  SizeFn
	// Seed controls the random input data (0 = fixed default).
	Seed int64
}

// CostFunction initializes the cost function: device lookup, buffer
// allocation and one-time upload. The returned cost function is then called
// once per configuration during exploration. It implements
// core.CloneableCostFunction: parallel exploration gives every worker its
// own instance — an independent simulated queue and buffer set initialized
// from the same seed — so concurrent evaluations never share device state.
func (o *OpenCL) CostFunction() (CostFunction, error) {
	if o.GlobalSize == nil || o.LocalSize == nil {
		return nil, fmt.Errorf("atf: OpenCL cost function needs GlobalSize and LocalSize")
	}
	return o.newCostFunction()
}

// openclCostFunction is one initialized evaluator instance: a context,
// a queue, and the uploaded kernel inputs.
type openclCostFunction struct {
	o     *OpenCL
	ctx   *opencl.Context
	queue *opencl.Queue
	bound []any
}

func (o *OpenCL) newCostFunction() (*openclCostFunction, error) {
	dev, err := opencl.FindDevice(o.Platform, o.Device)
	if err != nil {
		return nil, err
	}
	ctx := opencl.NewContext(dev)
	queue := opencl.NewQueue(ctx)
	seed := o.Seed
	if seed == 0 {
		seed = 0xa7f
	}

	// Upload inputs once — "to avoid the usually time-intensive
	// host-to-device transfers, we upload data only once during cost
	// function's initialization" (Section II).
	bound := make([]any, len(o.Args))
	for i, a := range o.Args {
		switch a.kind {
		case argScalar:
			if a.isFloat {
				bound[i] = float32(a.floatVal)
			} else {
				bound[i] = int32(a.intVal)
			}
		case argRandomScalar:
			buf := ctx.CreateBuffer(1)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf.Read()[0]
		case argBuffer:
			buf := ctx.CreateBuffer(a.n)
			buf.Write(a.data)
			bound[i] = buf
		case argRandomBuffer:
			buf := ctx.CreateBuffer(a.n)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf
		}
	}
	return &openclCostFunction{o: o, ctx: ctx, queue: queue, bound: bound}, nil
}

// Cost evaluates one configuration: substitute the tuning-parameter values
// via the preprocessor (served by the shared compiled-program cache on
// revisits), build, launch, and read the simulated profiling time.
func (c *openclCostFunction) Cost(cfg *Config) (Cost, error) {
	prog := c.ctx.CreateProgram(c.o.Source)
	if err := prog.Build(cfg.Defines()); err != nil {
		return nil, err
	}
	k, err := prog.CreateKernel(c.o.Kernel)
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(c.bound...); err != nil {
		return nil, err
	}
	ev, err := c.queue.EnqueueNDRange(k, c.o.GlobalSize(cfg), c.o.LocalSize(cfg))
	if err != nil {
		return nil, err
	}
	return core.SingleCost(ev.DurationNs()), nil
}

// Clone builds an equivalently initialized instance for another worker.
// Random inputs reuse the original seed, so every clone evaluates against
// byte-identical data.
func (c *openclCostFunction) Clone() (CostFunction, error) { return c.o.newCostFunction() }

// Verify executes one configuration functionally (all work-groups, not
// the sampled profiling subset) and passes the resulting buffer contents —
// one slice per buffer-typed argument, in argument order — to check. This
// is the optional error checking the paper mentions for ATF's OpenCL cost
// function; tuning itself never pays for it.
func (o *OpenCL) Verify(cfg *Config, check func(buffers [][]float32) error) error {
	if o.GlobalSize == nil || o.LocalSize == nil {
		return fmt.Errorf("atf: OpenCL verification needs GlobalSize and LocalSize")
	}
	dev, err := opencl.FindDevice(o.Platform, o.Device)
	if err != nil {
		return err
	}
	ctx := opencl.NewContext(dev)
	queue := opencl.NewQueue(ctx)
	queue.Functional = true
	seed := o.Seed
	if seed == 0 {
		seed = 0xa7f
	}

	bound := make([]any, len(o.Args))
	var buffers []*opencl.Buffer
	for i, a := range o.Args {
		switch a.kind {
		case argScalar:
			if a.isFloat {
				bound[i] = float32(a.floatVal)
			} else {
				bound[i] = int32(a.intVal)
			}
		case argRandomScalar:
			buf := ctx.CreateBuffer(1)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf.Read()[0]
		case argBuffer:
			buf := ctx.CreateBuffer(a.n)
			buf.Write(a.data)
			bound[i] = buf
			buffers = append(buffers, buf)
		case argRandomBuffer:
			buf := ctx.CreateBuffer(a.n)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf
			buffers = append(buffers, buf)
		}
	}

	prog := ctx.CreateProgram(o.Source)
	if err := prog.Build(cfg.Defines()); err != nil {
		return err
	}
	k, err := prog.CreateKernel(o.Kernel)
	if err != nil {
		return err
	}
	if err := k.SetArgs(bound...); err != nil {
		return err
	}
	if _, err := queue.EnqueueNDRange(k, o.GlobalSize(cfg), o.LocalSize(cfg)); err != nil {
		return err
	}
	out := make([][]float32, len(buffers))
	for i, b := range buffers {
		out[i] = b.Read()
	}
	return check(out)
}

// CUDA is ATF's pre-implemented CUDA cost function, used "analogously to
// the OpenCL cost function, with the only difference that platform's name
// is omitted, because CUDA targets NVIDIA devices only" (Section II). The
// launch geometry is grid×block.
type CUDA struct {
	Device string
	Source string
	Kernel string
	Args   []KernelArg
	// GridDim and BlockDim are expressions over the configuration (number
	// of blocks and threads per block, 1-D).
	GridDim  func(c *Config) int64
	BlockDim func(c *Config) int64
	Seed     int64
}

// CostFunction initializes the CUDA cost function (NVRTC-style runtime
// compilation per configuration). Like the OpenCL cost function it
// implements core.CloneableCostFunction for parallel exploration.
func (u *CUDA) CostFunction() (CostFunction, error) {
	if u.GridDim == nil || u.BlockDim == nil {
		return nil, fmt.Errorf("atf: CUDA cost function needs GridDim and BlockDim")
	}
	return u.newCostFunction()
}

// cudaCostFunction is one initialized CUDA evaluator instance.
type cudaCostFunction struct {
	u     *CUDA
	ctx   *cuda.Context
	bound []any
}

func (u *CUDA) newCostFunction() (*cudaCostFunction, error) {
	dev, err := cuda.FindDevice(u.Device)
	if err != nil {
		return nil, err
	}
	ctx := cuda.NewContext(dev)
	seed := u.Seed
	if seed == 0 {
		seed = 0xc0da
	}
	bound := make([]any, len(u.Args))
	for i, a := range u.Args {
		switch a.kind {
		case argScalar:
			if a.isFloat {
				bound[i] = float32(a.floatVal)
			} else {
				bound[i] = int32(a.intVal)
			}
		case argRandomScalar:
			buf := ctx.Malloc(1)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf.Read()[0]
		case argBuffer:
			buf := ctx.Malloc(a.n)
			buf.Write(a.data)
			bound[i] = buf
		case argRandomBuffer:
			buf := ctx.Malloc(a.n)
			buf.FillRandom(seed + int64(i))
			bound[i] = buf
		}
	}
	return &cudaCostFunction{u: u, ctx: ctx, bound: bound}, nil
}

// Cost evaluates one configuration through the NVRTC-style path.
func (c *cudaCostFunction) Cost(cfg *Config) (Cost, error) {
	mod, err := c.ctx.CompileModule(c.u.Source, cfg.Defines())
	if err != nil {
		return nil, err
	}
	res, err := c.ctx.Launch(mod, c.u.Kernel, c.u.GridDim(cfg), c.u.BlockDim(cfg), c.bound...)
	if err != nil {
		return nil, err
	}
	return core.SingleCost(res.DurationNs()), nil
}

// Clone builds an equivalently initialized instance for another worker.
func (c *cudaCostFunction) Clone() (CostFunction, error) { return c.u.newCostFunction() }

// Generic is ATF's generic cost function for programs in arbitrary
// languages: a source path, compile and run scripts, and optionally a log
// file from which (possibly multi-objective, comma-separated) costs are
// read; without a log file the run script's wall time is the cost.
type Generic struct {
	SourcePath    string
	CompileScript string
	RunScript     string
	LogFile       string
	Timeout       time.Duration
}

// CostFunction builds the script-driven cost function.
func (g *Generic) CostFunction() CostFunction {
	return &generic.CostFunction{
		SourcePath:    g.SourcePath,
		CompileScript: g.CompileScript,
		RunScript:     g.RunScript,
		LogFile:       g.LogFile,
		Timeout:       g.Timeout,
	}
}
