// Package harness drives the paper-reproduction experiments (DESIGN.md
// §4, E1–E11): Figure 2 on both devices, the search-space generation and
// size comparisons of §VI-A, the OpenTuner validity study of §VI-B, the
// defaults-vs-device-optimized comparison, the Section V parallel
// generation ablation, and the kernel-interpreter engine ablation. Each
// experiment returns a Table that cmd/atf-experiments prints and
// EXPERIMENTS.md records.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown renders the table as a GitHub-flavoured markdown table (used
// when regenerating EXPERIMENTS.md data blocks).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "**%s — %s**\n\n", t.ID, t.Title)
	fmt.Fprintln(w, "| "+strings.Join(t.Columns, " | ")+" |")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintln(w, "| "+strings.Join(seps, " | ")+" |")
	for _, row := range t.Rows {
		fmt.Fprintln(w, "| "+strings.Join(row, " | ")+" |")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func ns2ms(v float64) string { return fmt.Sprintf("%.3f ms", v/1e6) }
