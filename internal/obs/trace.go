package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Tracing is the structured-event half of the observability layer: named
// spans (StartSpan/End) and point events (Event) emitted through a
// log/slog handler. It is off by default — StartSpan returns a nil span
// and every call on it is a no-op costing one atomic load — and is
// switched on process-wide with EnableTracing (atfd -trace, or any
// embedding program that wants the tuner's internals narrated).

var traceLogger atomic.Pointer[slog.Logger]

// EnableTracing routes spans and events to the logger; nil disables
// tracing again. Safe to call at any time, including mid-run.
func EnableTracing(l *slog.Logger) {
	if l == nil {
		traceLogger.Store(nil)
		return
	}
	traceLogger.Store(l)
}

// TracingEnabled reports whether a trace logger is installed.
func TracingEnabled() bool { return traceLogger.Load() != nil }

// Span is one timed operation. A nil *Span (tracing disabled) is valid:
// all methods are no-ops.
type Span struct {
	name  string
	start time.Time
	log   *slog.Logger
}

// StartSpan opens a span and logs a "span start" debug event. The
// returned span is nil when tracing is disabled.
func StartSpan(name string, attrs ...any) *Span {
	l := traceLogger.Load()
	if l == nil {
		return nil
	}
	l.Debug("span start", append([]any{slog.String("span", name)}, attrs...)...)
	return &Span{name: name, start: time.Now(), log: l}
}

// End closes the span, logging its duration plus any closing attributes
// at info level.
func (s *Span) End(attrs ...any) {
	if s == nil {
		return
	}
	s.log.Info("span end", append([]any{
		slog.String("span", s.name),
		slog.Duration("elapsed", time.Since(s.start)),
	}, attrs...)...)
}

// Fail closes the span with the error attached (warn level). A nil err
// behaves like End.
func (s *Span) Fail(err error, attrs ...any) {
	if s == nil {
		return
	}
	if err == nil {
		s.End(attrs...)
		return
	}
	s.log.Warn("span failed", append([]any{
		slog.String("span", s.name),
		slog.Duration("elapsed", time.Since(s.start)),
		slog.String("error", err.Error()),
	}, attrs...)...)
}

// Event logs a point-in-time structured event (info level); a no-op when
// tracing is disabled.
func Event(name string, attrs ...any) {
	l := traceLogger.Load()
	if l == nil {
		return
	}
	l.Info(name, attrs...)
}

// NewTextTracer builds a slog logger writing the human-readable text
// format at the given level to w — the logger atfd installs for -trace.
func NewTextTracer(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
