package server

import (
	"os"
	"path/filepath"
	"testing"

	"atf"
)

// appendEvals writes n sequential evaluation records starting at index
// from, reusing one configuration.
func appendEvals(t *testing.T, j *Journal, spec *atf.Spec, from, n int) {
	t.Helper()
	cfg := configOf(t, spec, 3)
	for i := 0; i < n; i++ {
		ev := EvalRecord{Index: uint64(from + i), Key: cfg.Key(), Config: cfg, Cost: atf.Cost{3}}
		if err := j.Append(Record{Type: "eval", Eval: &ev}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalRotationSegments: a journal past its rotate threshold rolls
// into numbered segments, every file still opens with the spec header,
// ReadSessionJournal merges the segments back into one contiguous
// evaluation sequence, and ListJournals hides the segments.
func TestJournalRotationSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.jsonl")
	spec := testSpec(t)

	j, err := CreateJournal(path, "rot", "rot", spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	j.RotateBytes = 1 << 10
	const evals = 40
	appendEvals(t, j, spec, 0, evals)
	if err := j.Append(Record{Type: "done", Done: &DoneRecord{State: "done", Evaluations: evals}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	segs, err := listSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected >= 2 rotated segments, got %d", len(segs))
	}
	for _, p := range append(append([]string(nil), segs...), path) {
		d, err := ReadJournalFile(p)
		if err != nil {
			t.Fatalf("segment %s does not parse standalone: %v", p, err)
		}
		if d.Session != "rot" {
			t.Fatalf("segment %s headed for session %q", p, d.Session)
		}
	}

	d, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Truncated {
		t.Fatal("clean rotated journal reported truncated")
	}
	if len(d.Evals) != evals {
		t.Fatalf("merged %d evaluations across segments, want %d", len(d.Evals), evals)
	}
	for i, ev := range d.Evals {
		if ev.Index != uint64(i) {
			t.Fatalf("merged evaluation %d has index %d", i, ev.Index)
		}
	}
	if d.Done == nil || d.Done.State != "done" {
		t.Fatalf("done record lost in merge: %+v", d.Done)
	}

	listed, err := ListJournals(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0] != path {
		t.Fatalf("ListJournals = %v, want just %s (segments hidden)", listed, path)
	}
}

// TestJournalRotationMidCrashRepair: a crash between the segment rename
// and the new active file leaves no active journal. The session must
// still read from its segments, and OpenJournalAppend must recreate the
// active file with its header.
func TestJournalRotationMidCrashRepair(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.jsonl")
	spec := testSpec(t)

	j, err := CreateJournal(path, "crash", "crash", spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	j.RotateBytes = 1 << 10
	appendEvals(t, j, spec, 0, 20)
	j.Close()
	segs, err := listSegments(path)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// Simulate the crash window: the rename happened, the new active
	// file never did.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	d, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Evals) == 0 || d.Session != "crash" {
		t.Fatalf("segments unreadable without active file: %d evals, session %q",
			len(d.Evals), d.Session)
	}

	header := Record{Type: "spec", Session: d.Session, Name: d.Name,
		CreatedUnixNs: d.CreatedUnixNs, Spec: d.Spec}
	j2, err := OpenJournalAppend(path, header)
	if err != nil {
		t.Fatal(err)
	}
	j2.RotateBytes = 1 << 10
	appendEvals(t, j2, spec, len(d.Evals), 5)
	j2.Close()

	d2, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(d.Evals) + 5; len(d2.Evals) != want {
		t.Fatalf("after repair: %d evaluations, want %d", len(d2.Evals), want)
	}
}

// TestManagerRotatedResumeDeterminism runs the checkpoint/resume contract
// with journal rotation on: the interrupted run rotates mid-flight, a
// fresh manager stitches the segments back together, resumes, keeps
// rotating, and finishes with the same evaluation sequence as an
// unrotated, uninterrupted run.
func TestManagerRotatedResumeDeterminism(t *testing.T) {
	spec := parseResumeSpec(t)
	want, wantKeys := runUninterrupted(t, spec)

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1.RotateBytes = 4 << 10 // rotate every few dozen evaluations
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForEvals(t, s1, 60)
	m1.Shutdown()
	if segs, _ := listSegments(m1.journalPath(s1.ID)); len(segs) == 0 {
		t.Fatal("interrupted run never rotated; threshold too high for the test")
	}

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	m2.RotateBytes = 4 << 10
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	s2 := resumed[0]
	s2.Wait()
	st2 := s2.Status()
	if st2.State != StateDone {
		t.Fatalf("resumed run ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Divergence != "" {
		t.Fatalf("resumed run diverged: %s", st2.Divergence)
	}
	if st2.Evaluations != want.Evaluations || st2.Valid != want.Valid {
		t.Errorf("resumed counters %d/%d, uninterrupted %d/%d",
			st2.Evaluations, st2.Valid, want.Evaluations, want.Valid)
	}
	if !st2.Best.Equal(want.Best) || st2.BestCost.String() != want.BestCost.String() {
		t.Errorf("resumed best %v/%v, uninterrupted %v/%v",
			st2.Best, st2.BestCost, want.Best, want.BestCost)
	}

	d, err := ReadSessionJournal(m2.journalPath(s2.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Evals) != len(wantKeys) {
		t.Fatalf("rotated journal has %d evaluations, uninterrupted %d", len(d.Evals), len(wantKeys))
	}
	for i := range wantKeys {
		if d.Evals[i].Key != wantKeys[i] {
			t.Fatalf("evaluation %d: rotated journal %q, uninterrupted %q",
				i, d.Evals[i].Key, wantKeys[i])
		}
	}

	// Terminal after resume: nothing left for a third manager.
	m3, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Shutdown()
	again, err := m3.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("finished rotated session resumed again: %d", len(again))
	}
}
