#!/bin/sh
# e2e-load.sh — multi-tenant smoke of the real atfd under concurrent load
# (`make e2e-load`). One daemon with admission control, eval backpressure,
# journal rotation, and the cross-session caches enabled takes 50
# concurrent identical sessions from cmd/atf-loadgen; the run must finish
# with zero failed sessions (429s are retried per Retry-After, not
# failures) and the shared caches must see cross-session hits.
#
# The loadgen's headline numbers (create/status p99, median session
# turnaround, ns per evaluation) are kept as `go test -bench` style lines
# in results/loadgen-bench.txt and folded into results/bench.json beside
# the micro-benchmarks via scripts/bench2json.sh.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { echo "e2e-load: $*"; }

say "building binaries into $workdir"
$GO build -o "$workdir/atfd" ./cmd/atfd
$GO build -o "$workdir/atf-loadgen" ./cmd/atf-loadgen

say "starting atfd with admission control and shared caches"
"$workdir/atfd" -addr 127.0.0.1:7551 -journal-dir "$workdir/journals" \
    -max-sessions 8 -max-inflight-evals 32 -journal-rotate-bytes 65536 \
    >"$workdir/atfd.log" 2>&1 &
pids="$pids $!"
for _ in $(seq 1 100); do
    curl -fsS http://127.0.0.1:7551/v1/healthz >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS http://127.0.0.1:7551/v1/healthz >/dev/null || {
    say "atfd never came up"; cat "$workdir/atfd.log"; exit 1
}

say "50 concurrent sessions, 32 clients, admission cap 8"
"$workdir/atf-loadgen" -daemon http://127.0.0.1:7551 \
    -sessions 50 -concurrency 32 -max-retry-wait 50ms \
    -min-shared-hits 1 -bench | tee "$workdir/loadgen.txt" || {
    say "FAIL: loadgen reported failed sessions or no shared-cache hits"
    exit 1
}

mkdir -p results
grep '^BenchmarkLoadgen' "$workdir/loadgen.txt" > results/loadgen-bench.txt
if [ -f results/bench.txt ]; then
    sh scripts/bench2json.sh results/bench.txt results/loadgen-bench.txt > results/bench.json
else
    sh scripts/bench2json.sh results/loadgen-bench.txt > results/bench.json
fi
say "PASS: $(grep 'sessions/sec' "$workdir/loadgen.txt" | tr -s ' ') (numbers in results/bench.json)"
