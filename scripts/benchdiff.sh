#!/bin/sh
# benchdiff.sh OLD NEW — benchstat-style comparison of two `go test -bench`
# outputs (e.g. two `make bench > file` runs) without external tooling.
#
# Each input may be either raw `go test -bench` text or a results/bench.json
# summary written by scripts/bench2json.sh (detected by a leading "{"); the
# two formats can be mixed, so an old bench.json diffs against a fresh text
# run.
#
# For every benchmark name present in both files it reports the mean ns/op,
# the spread (min..max as ±% of the mean, a crude stand-in for benchstat's
# confidence interval), and the delta. Run benchmarks with -count=5 or more
# so the spread means something (JSON inputs carry only the mean, so their
# spread column is blank).
#
# benchdiff.sh -gate PCT OLD NEW additionally FAILS (exit 1) when any
# common benchmark's mean regressed by more than PCT percent — the
# regression gate behind `make benchgate`, which diffs a fresh run against
# the committed results/bench.json. Benchmarks present in only one file
# never gate (the committed json carries e2e-load's Loadgen numbers, a
# fresh bench run doesn't).
set -eu

gate=""
if [ "${1-}" = "-gate" ]; then
    [ $# -ge 2 ] || { echo "benchdiff: -gate needs a percentage" >&2; exit 2; }
    gate=$2
    shift 2
fi
if [ $# -ne 2 ]; then
    echo "usage: $0 [-gate PCT] old.txt new.txt" >&2
    exit 2
fi
old=$1
new=$2
[ -r "$old" ] || { echo "benchdiff: cannot read $old" >&2; exit 1; }
[ -r "$new" ] || { echo "benchdiff: cannot read $new" >&2; exit 1; }

awk -v OLD="$old" -v NEW="$new" -v GATE="$gate" '
function collect(file, sum, sumsq, cnt, mn, mx,    line, parts, name, val, n, i, nb, names, vals, common, sfx, b) {
    # Buffer every (name, ns/op) pair first: the -GOMAXPROCS suffix is
    # appended only when GOMAXPROCS > 1, and sub-benchmark names can
    # legitimately end in -N (workers-8), so it is stripped only when every
    # benchmark line in the file carries the identical one.
    nb = 0
    common = ""
    while ((getline line < file) > 0) {
        n = split(line, parts, /[ \t]+/)
        if (parts[1] !~ /^Benchmark/ || n < 3) continue
        # layout: Name  N  value ns/op  [metric pairs...]
        for (i = 3; i < n; i++) {
            if (parts[i+1] == "ns/op") {
                nb++
                names[nb] = parts[1]
                vals[nb] = parts[i] + 0
                if (match(parts[1], /-[0-9]+$/)) {
                    sfx = substr(parts[1], RSTART)
                    if (nb == 1 || sfx == common) common = sfx
                    else common = ""
                } else common = ""
                break
            }
        }
    }
    close(file)
    for (b = 1; b <= nb; b++) {
        name = names[b]
        if (common != "") sub(/-[0-9]+$/, "", name)
        val = vals[b]
        sum[name] += val
        sumsq[name] += val * val
        cnt[name]++
        if (!(name in mn) || val < mn[name]) mn[name] = val
        if (!(name in mx) || val > mx[name]) mx[name] = val
    }
}
function is_json(file,    line, r) {
    # bench2json.sh output opens with "{"; go test -bench text never does.
    r = (getline line < file)
    close(file)
    return r > 0 && line ~ /^[ \t]*\{/
}
function collect_json(file, sum, sumsq, cnt, mn, mx,    line, group, key, val, name) {
    # Parse the two-level bench2json.sh layout:
    #   {  "Group": {  "sub/key": 123.4,  ...  },  ...  }
    # reconstructing the text-mode benchmark names (BenchmarkGroup/sub/key)
    # so JSON and text inputs line up.
    group = ""
    while ((getline line < file) > 0) {
        if (line ~ /^  "[^"]+": \{/) {
            group = line
            sub(/^  "/, "", group)
            sub(/": \{.*$/, "", group)
            continue
        }
        if (line ~ /^    "[^"]*": [0-9]/) {
            key = line
            sub(/^    "/, "", key)
            sub(/": [^"]*$/, "", key)
            val = line
            sub(/^.*": /, "", val)
            sub(/,[ \t]*$/, "", val)
            name = "Benchmark" group (key == "" ? "" : "/" key)
            val += 0
            sum[name] += val
            sumsq[name] += val * val
            cnt[name]++
            if (!(name in mn) || val < mn[name]) mn[name] = val
            if (!(name in mx) || val > mx[name]) mx[name] = val
        }
    }
    close(file)
}
function fmt_ns(v) {
    if (v >= 1e9) return sprintf("%.3fs", v / 1e9)
    if (v >= 1e6) return sprintf("%.2fms", v / 1e6)
    if (v >= 1e3) return sprintf("%.1fµs", v / 1e3)
    return sprintf("%.0fns", v)
}
function spread(name, mn, mx, cnt, mean) {
    if (cnt[name] < 2 || mean == 0) return "     "
    return sprintf("±%3.0f%%", 100 * (mx[name] - mn[name]) / (2 * mean))
}
BEGIN {
    if (is_json(OLD)) collect_json(OLD, osum, osumsq, ocnt, omn, omx)
    else collect(OLD, osum, osumsq, ocnt, omn, omx)
    if (is_json(NEW)) collect_json(NEW, nsum, nsumsq, ncnt, nmn, nmx)
    else collect(NEW, nsum, nsumsq, ncnt, nmn, nmx)
    printf "%-55s %14s %7s %14s %7s %9s\n", "benchmark", "old", "", "new", "", "delta"
    any = 0
    nbad = 0
    for (name in ocnt) {
        if (!(name in ncnt)) continue
        any = 1
        om = osum[name] / ocnt[name]
        nm = nsum[name] / ncnt[name]
        delta = (om > 0) ? 100 * (nm - om) / om : 0
        printf "%-55s %14s %7s %14s %7s %+8.1f%%\n",
            name, fmt_ns(om), spread(name, omn, omx, ocnt, om),
            fmt_ns(nm), spread(name, nmn, nmx, ncnt, nm), delta
        if (GATE != "" && delta > GATE + 0) {
            nbad++
            bad[nbad] = sprintf("%s regressed %+.1f%% (gate %s%%)", name, delta, GATE)
        }
    }
    if (!any) {
        print "benchdiff: no common benchmarks between the two files" > "/dev/stderr"
        exit 1
    }
    if (GATE != "") {
        if (nbad > 0) {
            for (i = 1; i <= nbad; i++)
                print "benchdiff: FAIL: " bad[i] > "/dev/stderr"
            exit 1
        }
        print "benchdiff: gate ok (no benchmark regressed more than " GATE "%)"
    }
}
'
