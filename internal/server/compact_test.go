package server

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"
)

// countLines returns the number of non-empty lines in a journal file.
func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n
}

// TestCompactSegment: compacting a rotated segment folds its eval lines
// into one deduplicated compact record, preserves the merged read, and is
// idempotent.
func TestCompactSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cmp.jsonl")
	spec := testSpec(t)

	j, err := CreateJournal(path, "cmp", "cmp", spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	j.RotateBytes = 1 << 10
	const evals = 40
	appendEvals(t, j, spec, 0, evals) // one repeated config: max dedup
	j.Close()

	segs, err := listSegments(path)
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	before, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range segs {
		if err := CompactSegment(p); err != nil {
			t.Fatalf("compacting %s: %v", p, err)
		}
		if n := countLines(t, p); n != 2 {
			t.Fatalf("compacted segment %s has %d lines, want 2 (header + compact)", p, n)
		}
	}

	after, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Truncated {
		t.Fatal("compacted journal reads as truncated")
	}
	total := after.Compacted + uint64(len(after.Evals))
	if total != uint64(len(before.Evals)) {
		t.Fatalf("compacted journal accounts for %d evaluations, want %d", total, len(before.Evals))
	}
	if after.Compacted == 0 {
		t.Fatal("no evaluations were folded")
	}
	// Dedup is per segment: one repeated config folds to exactly one
	// outcome per compacted segment (replay's merge is first-wins anyway).
	if len(after.Outcomes) != len(segs) {
		t.Fatalf("deduplicated outcomes = %d, want %d (one per compacted segment)",
			len(after.Outcomes), len(segs))
	}
	// The retained suffix continues the folded prefix exactly.
	for i, ev := range after.Evals {
		if ev.Index != after.Compacted+uint64(i) {
			t.Fatalf("retained eval %d has index %d, want %d", i, ev.Index, after.Compacted+uint64(i))
		}
	}

	// Idempotent: recompacting a compact segment rewrites the same content.
	for _, p := range segs {
		if err := CompactSegment(p); err != nil {
			t.Fatalf("recompacting %s: %v", p, err)
		}
	}
	again, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Compacted != after.Compacted || len(again.Outcomes) != len(after.Outcomes) {
		t.Fatalf("recompaction changed the journal: %d/%d folded, %d/%d outcomes",
			again.Compacted, after.Compacted, len(again.Outcomes), len(after.Outcomes))
	}
}

// TestManagerRotatedCompactedResumeDeterminism is the resume contract with
// both rotation AND segment compaction on: the interrupted run's rotated
// segments are rewritten down to their outcome maps, and a fresh manager
// still resumes to the same best, the same counters, and the same retained
// evaluation sequence as an uninterrupted run.
func TestManagerRotatedCompactedResumeDeterminism(t *testing.T) {
	spec := parseResumeSpec(t)
	want, wantKeys := runUninterrupted(t, spec)

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1.RotateBytes = 4 << 10
	m1.CompactSegments = true
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForEvals(t, s1, 60)
	m1.Shutdown() // waits for in-flight compactions too
	path := m1.journalPath(s1.ID)
	segs, _ := listSegments(path)
	if len(segs) == 0 {
		t.Fatal("interrupted run never rotated; threshold too high for the test")
	}
	for _, p := range segs {
		if n := countLines(t, p); n != 2 {
			t.Fatalf("segment %s not compacted: %d lines", p, n)
		}
	}
	interrupted, err := ReadSessionJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.Compacted == 0 {
		t.Fatal("no evaluations were folded before resume")
	}

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2.RotateBytes = 4 << 10
	m2.CompactSegments = true
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	s2 := resumed[0]
	s2.Wait()
	st2 := s2.Status()
	if st2.State != StateDone {
		t.Fatalf("resumed run ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Divergence != "" {
		t.Fatalf("resumed run diverged: %s", st2.Divergence)
	}
	if st2.Evaluations != want.Evaluations || st2.Valid != want.Valid {
		t.Errorf("resumed counters %d/%d, uninterrupted %d/%d",
			st2.Evaluations, st2.Valid, want.Evaluations, want.Valid)
	}
	if !st2.Best.Equal(want.Best) || st2.BestCost.String() != want.BestCost.String() {
		t.Errorf("resumed best %v/%v, uninterrupted %v/%v",
			st2.Best, st2.BestCost, want.Best, want.BestCost)
	}
	m2.Shutdown()

	d, err := ReadSessionJournal(m2.journalPath(s2.ID))
	if err != nil {
		t.Fatal(err)
	}
	if d.Compacted+uint64(len(d.Evals)) != uint64(len(wantKeys)) {
		t.Fatalf("compacted journal accounts for %d evaluations, uninterrupted %d",
			d.Compacted+uint64(len(d.Evals)), len(wantKeys))
	}
	// The retained suffix must match the uninterrupted run's tail exactly;
	// the folded prefix is covered by the counters and best above.
	for i, ev := range d.Evals {
		if ev.Key != wantKeys[d.Compacted+uint64(i)] {
			t.Fatalf("evaluation %d: compacted journal %q, uninterrupted %q",
				d.Compacted+uint64(i), ev.Key, wantKeys[d.Compacted+uint64(i)])
		}
	}

	// Terminal after resume: nothing left for a third manager.
	m3, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Shutdown()
	again, err := m3.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("finished compacted session resumed again: %d", len(again))
	}
}
