package oclc

import (
	"sync"
	"testing"
)

func TestLaunchConfigGeometry(t *testing.T) {
	c := NDRange2D(64, 32, 8, 4)
	if c.Dims() != 2 {
		t.Fatalf("dims = %d", c.Dims())
	}
	if c.WorkGroupSize() != 32 {
		t.Fatalf("wg size = %d", c.WorkGroupSize())
	}
	if c.NumGroups() != 8*8 {
		t.Fatalf("groups = %d", c.NumGroups())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	one := NDRange1D(16, 4)
	if one.Dims() != 1 || one.NumGroups() != 4 {
		t.Fatal("1-D geometry wrong")
	}
}

func TestLaunchConfigValidate(t *testing.T) {
	bad := NDRange1D(10, 3)
	if err := bad.Validate(); err == nil {
		t.Fatal("3 does not divide 10")
	}
	neg := LaunchConfig{Global: [3]int64{0, 1, 1}, Local: [3]int64{1, 1, 1}}
	if err := neg.Validate(); err == nil {
		t.Fatal("zero global must fail")
	}
}

func TestCyclicBarrierReleasesAll(t *testing.T) {
	const n = 8
	b := newCyclicBarrier(n)
	var wg sync.WaitGroup
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer b.leave()
			for round := 0; round < 5; round++ {
				counts[i]++
				b.await()
			}
		}(i)
	}
	wg.Wait()
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("participant %d completed %d rounds", i, c)
		}
	}
	if b.divergent {
		t.Fatal("uniform barrier flagged divergent")
	}
}

func TestCyclicBarrierDivergenceRelease(t *testing.T) {
	// 3 participants block at the barrier, then the 4th leaves without
	// ever reaching it: the barrier must release the waiters and flag
	// divergence, not deadlock. The leaver waits until all three are
	// provably blocked so the scenario is deterministic.
	b := newCyclicBarrier(4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.leave()
			b.await()
		}()
	}
	for {
		b.mu.Lock()
		w := b.waiting
		b.mu.Unlock()
		if w == 3 {
			break
		}
	}
	b.leave() // the 4th exits without awaiting
	wg.Wait()
	if !b.divergent {
		t.Fatal("divergence not flagged")
	}
}

func TestGroupDecodeOrder(t *testing.T) {
	// Work-group ids must decode row-major over a 2-D grid: group g maps
	// to (gx, gy) = (g % ngx, (g / ngx) % ngy).
	src := `
__kernel void ids(__global float* out, const int ngx) {
  if (get_local_id(0) == 0 && get_local_id(1) == 0) {
    out[get_group_id(1)*ngx + get_group_id(0)] = 1.0f;
  }
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 6)
	_, err = prog.Launch("ids", []Arg{BufArg(out), IntArg(3)},
		NDRange2D(6, 4, 2, 2), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 1 {
			t.Fatalf("group cell %d not visited", i)
		}
	}
}

func TestGemmCounterAccounting(t *testing.T) {
	// One full XgemmDirect-shaped accounting check on a tiny tile: with
	// WGD=4, MDIMCD=NDIMCD=2 (4 threads), K=4 and one work-group, the
	// compute loop performs exactly WGD*WGD*WGD = 64 FMAs per group.
	src := `
__kernel void mini(__global float* a, __global float* b, __global float* c) {
  __local float alm[WGD][WGD];
  __local float blm[WGD][WGD];
  const int tm = get_local_id(0);
  const int tn = get_local_id(1);
  for (int i = 0; i < WGD/2; i++) {
    alm[tm][tn*2 + i % 2] = a[tm*WGD + tn];
    blm[tm][tn*2 + i % 2] = b[tm*WGD + tn];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  float acc[WGD/2][WGD/2];
  for (int mi = 0; mi < WGD/2; mi++) {
    for (int ni = 0; ni < WGD/2; ni++) { acc[mi][ni] = 0.0f; }
  }
  for (int k = 0; k < WGD; k++) {
    for (int mi = 0; mi < WGD/2; mi++) {
      for (int ni = 0; ni < WGD/2; ni++) {
        acc[mi][ni] = fma(alm[k][mi*2+tm], blm[k][ni*2+tn], acc[mi][ni]);
      }
    }
  }
  c[tm*WGD + tn] = acc[0][0];
}`
	prog, err := Compile(src, map[string]string{"WGD": "4"})
	if err != nil {
		t.Fatal(err)
	}
	a := NewGlobalMemory(1, KFloat, 4, 16)
	b := NewGlobalMemory(2, KFloat, 4, 16)
	c := NewGlobalMemory(3, KFloat, 4, 16)
	res, err := prog.Launch("mini", []Arg{BufArg(a), BufArg(b), BufArg(c)},
		NDRange2D(2, 2, 2, 2), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 WIs × (WGD × (WGD/2)² FMAs) = 4 × 4×4 = 64.
	if res.Counters.FMAs != 64 {
		t.Fatalf("FMAs = %d, want 64", res.Counters.FMAs)
	}
	if res.Counters.Barriers != 4 {
		t.Fatalf("barriers = %d, want 4 (one per WI)", res.Counters.Barriers)
	}
	if res.Counters.LocalStores == 0 || res.Counters.LocalLoads == 0 {
		t.Fatal("local traffic not counted")
	}
}
