package oclc

// Static scalar-kind inference. The walker's storeTo/execDecl convert
// every value written to a declared scalar slot to the slot's kind, so a
// slot's runtime kind is a compile-time invariant: KFloat for float
// declarations, KInt for int/bool ones (convert maps KBool to an int
// value). When the compiler can prove the value being stored already has
// that kind, the conversion (opConvert/opStoreVar) is a no-op and the
// producing instruction can write the slot directly. The inference is
// deliberately conservative: anything it cannot prove is KVoid and keeps
// the converting instruction.
//
// Soundness notes, mirroring the walker:
//   - Kernel scalar parameters are NOT converted on launch (argToRval
//     passes the caller's Arg kind through), so their kinds are unknown.
//     Helper-function scalar parameters ARE converted by callFunction.
//   - Array declarations create Memory with Elem = the declared kind, so
//     loads from them have a known kind. Pointer parameters alias
//     caller-owned Memory of unknown Elem and stay unknown.
//   - %, shifts, and bitwise operators either error (float operands,
//     zero divisor) — in which case nothing is stored — or produce ints.

// declSlotKind is the runtime kind a declared scalar slot is guaranteed
// to hold after its declaration (and, inductively, after every store,
// since storeTo converts to the current kind). KVoid means no guarantee
// (e.g. a void* declaration, whose convert is the identity).
func declSlotKind(t Type) ValKind {
	switch t.Kind {
	case KFloat:
		return KFloat
	case KInt, KBool:
		return KInt
	}
	return KVoid
}

// loadKind is the kind Memory.load yields for an element kind.
func loadKind(k ValKind) ValKind {
	if k == KFloat {
		return KFloat
	}
	return KInt
}

// binKind is the static result kind of applyBinary given static operand
// kinds, or KVoid when unknown. For the int-only operators the result is
// KInt whenever the operation succeeds; on failure nothing is stored, so
// KInt is still a sound answer for store elision.
func binKind(op string, l, r ValKind) ValKind {
	switch op {
	case "+", "-", "*", "/":
		if l == KFloat || r == KFloat {
			return KFloat
		}
		if l == KInt && r == KInt {
			return KInt
		}
		return KVoid
	case "%", "<<", ">>", "&", "|", "^",
		"==", "!=", "<", ">", "<=", ">=", "&&", "||":
		return KInt
	}
	return KVoid
}

// builtinRetKinds lists builtins with a fixed result kind (arity errors
// store nothing, so they do not weaken the guarantee). min/max/clamp are
// operand-dependent and stay out.
var builtinRetKinds = map[string]ValKind{
	"get_global_id": KInt, "get_local_id": KInt, "get_group_id": KInt,
	"get_global_size": KInt, "get_local_size": KInt, "get_num_groups": KInt,
	"get_work_dim": KInt, "abs": KInt,
	"fma": KFloat, "mad": KFloat, "pow": KFloat, "fmod": KFloat,
	"fabs": KFloat, "sqrt": KFloat, "rsqrt": KFloat, "exp": KFloat,
	"log": KFloat, "sin": KFloat, "cos": KFloat, "tanh": KFloat,
	"floor": KFloat, "ceil": KFloat, "round": KFloat,
}

// staticKind infers the runtime kind of e's value, or KVoid when it
// cannot be proven. Mirrors eval/applyBinary promotion exactly.
func (c *compiler) staticKind(e Expr) ValKind {
	switch x := e.(type) {
	case *IntLit:
		return KInt
	case *FloatLit:
		return KFloat
	case *VarRef:
		return c.slotKind[x.Slot]
	case *Cast:
		if k := declSlotKind(x.To); k != KVoid {
			return k
		}
		return c.staticKind(x.X) // convert to void is the identity
	case *Unary:
		switch x.Op {
		case "!", "~":
			return KInt
		case "-", "++", "--":
			// Negation and inc/dec keep a float float and turn anything
			// else into an int.
			if k := c.staticKind(x.X); k == KInt || k == KFloat {
				return k
			}
			return KVoid
		}
		return KVoid
	case *Binary:
		return binKind(x.Op, c.staticKind(x.L), c.staticKind(x.R))
	case *Cond:
		if t, f := c.staticKind(x.T), c.staticKind(x.F); t == f {
			return t
		}
		return KVoid
	case *Index:
		if b, ok := x.Base.(*VarRef); ok {
			return c.elemKind[b.Slot]
		}
		return KVoid
	case *Assign:
		// The assignment's value is the pre-conversion stored value.
		if x.Op == "=" {
			return c.staticKind(x.Value)
		}
		return KVoid
	case *Call:
		// compileCall resolves builtins before user functions, so the
		// table only applies to genuine builtins. User-function results
		// are unknown: falling off the end skips the return conversion.
		if _, ok := builtins[x.Name]; ok {
			return builtinRetKinds[x.Name]
		}
		return KVoid
	}
	return KVoid
}

// refsSlot reports whether e reads or writes the given frame slot. Used
// to detect self-referential initializers (`int x = x + 1`), whose reads
// observe the slot's pre-declaration content.
func refsSlot(e Expr, slot int) bool {
	switch x := e.(type) {
	case *VarRef:
		return x.Slot == slot
	case *Cast:
		return refsSlot(x.X, slot)
	case *Unary:
		return refsSlot(x.X, slot)
	case *Binary:
		return refsSlot(x.L, slot) || refsSlot(x.R, slot)
	case *Cond:
		return refsSlot(x.C, slot) || refsSlot(x.T, slot) || refsSlot(x.F, slot)
	case *Assign:
		return refsSlot(x.Target, slot) || refsSlot(x.Value, slot)
	case *Index:
		if refsSlot(x.Base, slot) {
			return true
		}
		for _, i := range x.Idx {
			if refsSlot(i, slot) {
				return true
			}
		}
		return false
	case *Call:
		for _, a := range x.Args {
			if refsSlot(a, slot) {
				return true
			}
		}
		return false
	}
	return false
}

// scanKinds populates the compiler's slot/element kind tables from the
// function signature and a body walk, and collects the slots whose
// initializers read their own pre-declaration content (those are zeroed
// at function entry so the pooled register file matches the walker's
// fresh frame).
func (c *compiler) scanKinds() {
	c.slotKind = make([]ValKind, c.fn.NumSlots)
	c.elemKind = make([]ValKind, c.fn.NumSlots)
	if !c.fn.Kernel {
		for _, p := range c.fn.Params {
			if !p.Type.Ptr {
				c.slotKind[p.Slot] = declSlotKind(p.Type)
			}
		}
	}
	c.scanStmt(c.fn.Body)
}

func (c *compiler) scanStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			c.scanStmt(sub)
		}
	case *DeclStmt:
		for _, d := range st.Decls {
			selfRef := false
			if len(d.Dims) > 0 {
				c.elemKind[d.Slot] = loadKind(d.Type.Kind)
				for _, e := range d.Dims {
					c.scanExpr(e)
					selfRef = selfRef || refsSlot(e, d.Slot)
				}
			} else {
				c.slotKind[d.Slot] = declSlotKind(d.Type)
			}
			if d.Init != nil {
				c.scanExpr(d.Init)
				selfRef = selfRef || refsSlot(d.Init, d.Slot)
			}
			if selfRef {
				c.zeroSlots = append(c.zeroSlots, int32(d.Slot))
			}
		}
	case *ExprStmt:
		c.scanExpr(st.X)
	case *If:
		c.scanExpr(st.Cond)
		c.scanStmt(st.Then)
		if st.Else != nil {
			c.scanStmt(st.Else)
		}
	case *For:
		if st.Init != nil {
			c.scanStmt(st.Init)
		}
		if st.Cond != nil {
			c.scanExpr(st.Cond)
		}
		if st.Post != nil {
			c.scanExpr(st.Post)
		}
		c.scanStmt(st.Body)
	case *While:
		c.scanExpr(st.Cond)
		c.scanStmt(st.Body)
	case *Return:
		if st.X != nil {
			c.scanExpr(st.X)
		}
	}
}

// scanExpr invalidates element-kind knowledge for pointer slots that are
// ever written: an assignment (or ++/--) can replace an array slot's
// pointer with an arbitrary value, after which loads through it have
// unknown kinds. Scalar slot kinds survive writes (storeTo converts).
func (c *compiler) scanExpr(e Expr) {
	switch x := e.(type) {
	case *Cast:
		c.scanExpr(x.X)
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			if t, ok := x.X.(*VarRef); ok {
				c.elemKind[t.Slot] = KVoid
			}
		}
		c.scanExpr(x.X)
	case *Binary:
		c.scanExpr(x.L)
		c.scanExpr(x.R)
	case *Cond:
		c.scanExpr(x.C)
		c.scanExpr(x.T)
		c.scanExpr(x.F)
	case *Assign:
		if t, ok := x.Target.(*VarRef); ok {
			c.elemKind[t.Slot] = KVoid
		}
		c.scanExpr(x.Target)
		c.scanExpr(x.Value)
	case *Index:
		c.scanExpr(x.Base)
		for _, i := range x.Idx {
			c.scanExpr(i)
		}
	case *Call:
		for _, a := range x.Args {
			c.scanExpr(a)
		}
	}
}

// retargetable reports that op's only register effect is writing its
// result to operand a, so a can be redirected to a variable slot.
func retargetable(op opcode) bool {
	switch op {
	case opConstI, opConstF, opConstR, opMove, opConvert, opBool,
		opIncVar, opIncVal,
		opAdd, opSub, opMul, opDiv, opMod, opShl, opShr,
		opBitAnd, opBitOr, opBitXor,
		opEq, opNe, opLt, opGt, opLe, opGe, opNeg, opNot, opBitNot,
		opAddImm, opSubImm, opRSubImm, opMulImm, opDivImm, opModImm,
		opShlImm, opShrImm, opBitAndImm, opBitOrImm, opBitXorImm,
		opEqImm, opNeImm, opLtImm, opGtImm, opLeImm, opGeImm,
		opLoad1, opLoad2, opWIQuery, opFMA, opCallBuiltin, opCallFn:
		return true
	}
	return false
}

// straightLine reports that the instruction window contains no control
// flow, so the last instruction is the unique final writer of its dst
// (a window with branches can write the result register on two paths).
func straightLine(code []instr) bool {
	for i := range code {
		switch code[i].op {
		case opJump, opJumpFalse, opJumpTrue, opBrCmpFalse, opBrCmpFalseImm:
			return false
		}
	}
	return true
}
