# Developer entry points; `make check` is what CI (and PR review) runs.

GO ?= go

.PHONY: all build vet test race doccheck check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages get a dedicated race pass: the parallel
# exploration engine, the observability registry, and the atfd session
# manager/journal.
race:
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/server/...

# doccheck enforces usable godoc: go vet's doc diagnostics plus a package
# comment on every package (scripts/doccheck.sh).
doccheck: vet
	sh scripts/doccheck.sh

check: doccheck build test race

fmt:
	gofmt -w .
