#!/bin/sh
# doccheck: every package in the module must carry a package-level doc
# comment, so `go doc <pkg>` is never empty. Run by `make doccheck`
# (part of the default `make check` chain) after `go vet`.
set -eu

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "doccheck: packages missing a package doc comment:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    exit 1
fi
echo "doccheck: all packages documented"
