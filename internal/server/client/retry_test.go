package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestRetryDoRecoversFromTransient(t *testing.T) {
	calls := 0
	err := fastRetry(4).Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on call 3", err, calls)
	}
}

func TestRetryDoStopsOnPermanentError(t *testing.T) {
	calls := 0
	want := errors.New("bad spec")
	err := fastRetry(4).Do(context.Background(), func() error {
		calls++
		return want
	})
	if !errors.Is(err, want) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent error after 1 call", err, calls)
	}
}

func TestRetryDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := fastRetry(3).Do(context.Background(), func() error {
		calls++
		return Transient(errors.New("always down"))
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3 calls", err, calls)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted error should still unwrap as transient: %v", err)
	}
}

func TestRetryDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := RetryPolicy{Attempts: 10, BaseDelay: 50 * time.Millisecond}.Do(ctx, func() error {
		calls++
		cancel()
		return Transient(errors.New("down"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want stop after cancellation", err, calls)
	}
}

func TestRetryDelayBoundedAndJittered(t *testing.T) {
	p := RetryPolicy{Attempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for retry := 0; retry < 12; retry++ {
		d := p.Delay(retry)
		if d < 5*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("retry %d delay %v outside [base/2, max]", retry, d)
		}
	}
}

// TestClientRetriesTransientHTTP drives the real Client against a server
// that serves two 500s before succeeding: idempotent requests recover,
// and the create POST does not retry a 5xx (it may have side effects).
func TestClientRetriesTransientHTTP(t *testing.T) {
	var gets, posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":"overloaded"}`, http.StatusInternalServerError)
				return
			}
			fmt.Fprint(w, `[]`)
		case http.MethodPost:
			posts.Add(1)
			http.Error(w, `{"error":"overloaded"}`, http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = &RetryPolicy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("list should survive two 500s: %v", err)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("list used %d attempts, want 3", got)
	}

	if _, err := c.Create(context.Background(), nil); err == nil {
		t.Fatal("create against a 500 must fail")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("create retried a 5xx: %d attempts", got)
	}
}

// TestClientRetriesRefusedConnection: a refused connection is retryable
// for every method — the request never left the client.
func TestClientRetriesRefusedConnection(t *testing.T) {
	// Grab a port that nothing listens on.
	srv := httptest.NewServer(http.NotFoundHandler())
	base := srv.URL
	srv.Close()

	c := New(base)
	c.Retry = &RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := c.List(context.Background())
	if err == nil {
		t.Fatal("list against a dead server must fail")
	}
	if !IsTransient(err) {
		t.Fatalf("refused connection should classify transient: %v", err)
	}
}
