package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the registry's
// race-cleanliness contract, and the totals check its atomicity.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{0.001, 0.01, 0.1})

	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(float64(i%4) * 0.004) // 0, 4ms, 8ms, 12ms
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.004 + 0.008 + 0.012)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := r.Snapshot().Histogram("h_seconds")
	// 0 → le=0.001; 4ms and 8ms → le=0.01; 12ms → le=0.1; nothing overflows.
	wantCounts := []uint64{workers * perWorker / 4, workers * perWorker / 2, workers * perWorker / 4, 0}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
}

// TestHistogramBucketEdges pins the boundary semantics: observations equal
// to an upper bound land in that bucket (le = "less than or equal"), and
// values above the last bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("edge", "", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0000001, 2, 4, 4.5, math.Inf(1)} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histogram("edge")
	want := []uint64{2, 2, 1, 2} // {0,1}, {1.0000001,2}, {4}, {4.5,+Inf}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
}

// TestRegistryGetOrCreate: registering the same name twice returns the
// same collector, so package-level metric variables never collide.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "first")
	b := r.NewCounter("x_total", "second help is ignored")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverged")
	}
	h1 := r.NewHistogram("h", "", []float64{1, 2})
	h2 := r.NewHistogram("h", "", nil)
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a different instance")
	}
}

// TestQuantile checks the linear-interpolation estimate against a uniform
// fill of one bucket.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "", []float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10, 20]
	}
	snap := r.Snapshot().Histogram("q")
	if got := snap.Quantile(0.5); got < 10 || got > 20 {
		t.Errorf("p50 = %v, want within (10, 20]", got)
	}
	if got := snap.Mean(); got != 15 {
		t.Errorf("mean = %v, want 15", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.9); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestPrometheusFormat checks the exposition output line-by-line: TYPE
// headers, cumulative buckets, the +Inf bucket matching _count.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("atf_test_total", "a counter")
	c.Add(3)
	g := r.NewGauge("atf_test_gauge", "a gauge")
	g.Set(-2)
	h := r.NewHistogram("atf_test_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE atf_test_total counter\n",
		"atf_test_total 3\n",
		"# TYPE atf_test_gauge gauge\n",
		"atf_test_gauge -2\n",
		"# TYPE atf_test_seconds histogram\n",
		`atf_test_seconds_bucket{le="0.5"} 1` + "\n",
		`atf_test_seconds_bucket{le="1"} 2` + "\n",
		`atf_test_seconds_bucket{le="+Inf"} 3` + "\n",
		"atf_test_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestSnapshotJSON: the snapshot marshals (the /stats body) and orders
// metrics by name.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "").Inc()
	r.NewCounter("a_total", "").Inc()
	snap := r.Snapshot()
	if snap.Counters[0].Name != "a_total" || snap.Counters[1].Name != "b_total" {
		t.Fatalf("snapshot not sorted: %+v", snap.Counters)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a_total").Value != 1 {
		t.Fatalf("round-trip lost counter value: %s", data)
	}
}

// TestSummaryOutput sanity-checks the -stats table writer.
func TestSummaryOutput(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("evals_total", "").Add(7)
	r.NewCounter("silent_total", "") // zero: omitted
	h := r.NewHistogram("lat_seconds", "", nil)
	h.Observe(0.002)
	var buf bytes.Buffer
	WriteSummary(&buf, r.Snapshot())
	out := buf.String()
	if !strings.Contains(out, "evals_total") || !strings.Contains(out, "7") {
		t.Errorf("summary missing counter:\n%s", out)
	}
	if strings.Contains(out, "silent_total") {
		t.Errorf("summary printed zero-valued counter:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds") || !strings.Contains(out, "count=1") {
		t.Errorf("summary missing histogram:\n%s", out)
	}
}
