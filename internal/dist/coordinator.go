package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"atf"
	"atf/internal/core"
	"atf/internal/server/client"
)

// Options configures the fleet coordinator. The zero value is usable:
// 2s heartbeats, a TTL of three heartbeats, 10s straggler re-dispatch,
// three remote attempts per partition, and the default retry policy for
// refused connections.
type Options struct {
	// Heartbeat is the interval workers are told to re-register at.
	Heartbeat time.Duration
	// TTL is how long a worker stays live without a heartbeat
	// (default 3× Heartbeat).
	TTL time.Duration
	// StragglerAfter is how long the coordinator waits on a partition
	// before speculatively re-dispatching it to another worker
	// (default 10s).
	StragglerAfter time.Duration
	// RequestTimeout bounds one eval dispatch round-trip (default 0: no
	// timeout beyond the exploration context — simulated-device evals are
	// fast, but script cost functions may not be).
	RequestTimeout time.Duration
	// MaxAttempts is the remote attempt budget per partition, first
	// dispatch included, before the in-process fallback takes over
	// (default 3).
	MaxAttempts int
	// SessionWorkers caps how many workers any one session spreads its
	// batches across (atfd -session-workers); 0 means the whole live
	// fleet. Under multi-tenant load the quota keeps one wide session from
	// monopolizing every worker: each session gets a rotation of the live
	// set starting at an offset hashed from its id, so concurrent sessions
	// land on different subsets while a lone session still uses up to its
	// quota.
	SessionWorkers int
	// Retry handles refused connections on dispatch (default
	// client.DefaultRetry). Dispatches are safe to retry: evaluation is
	// deterministic and outcome merging is first-wins.
	Retry *client.RetryPolicy
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.TTL <= 0 {
		o.TTL = 3 * o.Heartbeat
	}
	if o.StragglerAfter <= 0 {
		o.StragglerAfter = 10 * time.Second
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.Retry == nil {
		o.Retry = &client.DefaultRetry
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Fleet is the coordinator side of the distributed evaluation fleet: a
// worker registry plus a factory for per-session BatchEvaluators. atfd
// creates one Fleet, mounts Handler() next to the session API, and
// passes SessionEvaluator to the session manager.
type Fleet struct {
	opts     Options
	registry *Registry
}

// NewFleet creates a coordinator with the given options.
func NewFleet(opts Options) *Fleet {
	opts = opts.withDefaults()
	return &Fleet{
		opts:     opts,
		registry: NewRegistry(opts.Heartbeat, opts.TTL),
	}
}

// Registry exposes the worker registry (status listings, tests).
func (f *Fleet) Registry() *Registry { return f.registry }

// Handler serves the fleet's registration and status endpoints.
func (f *Fleet) Handler() http.Handler { return f.registry.Handler() }

// SessionEvaluator builds the BatchEvaluator for one tuning session.
// local is the in-process cost function — the reference the fleet
// degrades to when no workers are live or a partition exhausts its
// remote attempts. replay maps configuration keys to journaled outcomes
// from a resumed session, so replayed configurations are never
// re-dispatched. The returned evaluator implements io.Closer; the
// session runner closes it to release the fallback pool.
//
// The signature matches server.Manager's Evaluator field — typed with
// atf-only types so the server package never imports dist.
func (f *Fleet) SessionEvaluator(session string, spec *atf.Spec, local atf.CostFunction, replay map[string]atf.Outcome) atf.BatchEvaluator {
	cache := true
	if spec != nil && spec.CacheCosts != nil {
		cache = *spec.CacheCosts
	}
	return &sessionEvaluator{
		fleet:   f,
		session: session,
		spec:    spec,
		local:   local,
		replay:  replay,
		cache:   map[string]core.Outcome{},
		caching: cache,
	}
}

// sessionEvaluator is the fleet-backed BatchEvaluator for one session.
// Every EvaluateBatch resolves replayed and cached configurations first,
// partitions the rest contiguously across the live workers, and runs one
// controller per partition: dispatch, speculative re-dispatch of
// stragglers and failures, in-process fallback when the remote attempt
// budget runs out. Outcome slots are filled first-wins under one mutex —
// evaluation is deterministic, so racing attempts always agree — and the
// engine merges the completed batch in index order, which is what makes
// the fleet bit-identical to a local run.
type sessionEvaluator struct {
	fleet   *Fleet
	session string
	spec    *atf.Spec
	local   atf.CostFunction
	replay  map[string]atf.Outcome

	cacheMu sync.Mutex
	cache   map[string]core.Outcome
	caching bool

	poolMu sync.Mutex
	pool   *core.PoolEvaluator
	closed bool
}

// batchState is one batch's outcome board, shared by every concurrent
// attempt. fill is first-wins: a slot is written once, by whichever
// attempt completes it first.
type batchState struct {
	mu       sync.Mutex
	outcomes []core.Outcome
	filled   []bool
}

// partition is one contiguous slice of a batch dispatched as a unit.
// done closes when every slot it owns has been filled (by any attempt).
type partition struct {
	indices   []int // positions in the batch
	remaining int   // unfilled count, guarded by batchState.mu
	done      chan struct{}
}

// fill records an outcome for batch position i if it is still open;
// p, when non-nil, is the partition owning i and has its remaining
// count maintained. Reports whether the slot was newly filled.
func (st *batchState) fill(p *partition, i int, o core.Outcome) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.filled[i] {
		return false
	}
	st.filled[i] = true
	st.outcomes[i] = o
	if p != nil {
		p.remaining--
		if p.remaining == 0 {
			close(p.done)
		}
	}
	return true
}

// unfilled returns the still-open positions among indices.
func (st *batchState) unfilled(indices []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var open []int
	for _, i := range indices {
		if !st.filled[i] {
			open = append(open, i)
		}
	}
	return open
}

func (st *batchState) get(i int) core.Outcome {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.outcomes[i]
}

// EvaluateBatch implements core.BatchEvaluator over the fleet.
func (e *sessionEvaluator) EvaluateBatch(ctx context.Context, batchIndex uint64, batch []*core.Config) ([]core.Outcome, error) {
	start := time.Now()
	st := &batchState{
		outcomes: make([]core.Outcome, len(batch)),
		filled:   make([]bool, len(batch)),
	}

	// Resolve what needs no dispatch: journaled replays, cached costs,
	// and in-batch duplicates (evaluated once, copied after).
	keys := make([]string, len(batch))
	first := make(map[string]int, len(batch))
	var pending []int
	var dups [][2]int // [duplicate position, first position]
	for i, cfg := range batch {
		keys[i] = cfg.Key()
		if o, ok := e.replay[keys[i]]; ok {
			st.fill(nil, i, o)
			continue
		}
		if o, ok := e.cached(keys[i]); ok {
			st.fill(nil, i, o)
			continue
		}
		if j, ok := first[keys[i]]; ok {
			dups = append(dups, [2]int{i, j})
			continue
		}
		first[keys[i]] = i
		pending = append(pending, i)
	}

	if len(pending) > 0 {
		if err := e.evaluatePending(ctx, batchIndex, batch, st, pending); err != nil {
			return nil, err
		}
	}

	for _, d := range dups {
		st.fill(nil, d[0], st.get(d[1]))
	}
	for _, i := range pending {
		e.store(keys[i], st.get(i))
	}
	mDispatchCommitSeconds.Observe(time.Since(start).Seconds())
	return st.outcomes, nil
}

// evaluatePending runs the unresolved positions of one batch: across the
// live workers when there are any, in process otherwise, and always
// finishing locally whatever the remote attempts left open.
func (e *sessionEvaluator) evaluatePending(ctx context.Context, batchIndex uint64, batch []*core.Config, st *batchState, pending []int) error {
	live := e.liveWorkers()
	if len(live) == 0 {
		// Zero workers: plain atfd behavior, the whole batch in process.
		mBatchesLocal.Add(1)
		return e.localFill(ctx, batchIndex, batch, st, pending)
	}

	mBatchesDispatched.Add(1)
	parts := makePartitions(pending, len(live))
	var wg sync.WaitGroup
	for pi, part := range parts {
		wg.Add(1)
		go func(pi int, part *partition) {
			defer wg.Done()
			e.runPartition(ctx, batchIndex, batch, st, part, live, pi)
		}(pi, part)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Safety net: anything a controller could not finish remotely is
	// evaluated in process so the engine always gets a complete batch.
	if open := st.unfilled(pending); len(open) > 0 {
		return e.localFill(ctx, batchIndex, batch, st, open)
	}
	return nil
}

// makePartitions splits the pending positions into count contiguous
// partitions of near-equal size (fewer when there are fewer positions).
func makePartitions(pending []int, count int) []*partition {
	if count > len(pending) {
		count = len(pending)
	}
	parts := make([]*partition, 0, count)
	for p := 0; p < count; p++ {
		lo := p * len(pending) / count
		hi := (p + 1) * len(pending) / count
		indices := pending[lo:hi]
		parts = append(parts, &partition{
			indices:   indices,
			remaining: len(indices),
			done:      make(chan struct{}),
		})
	}
	return parts
}

// runPartition drives one partition to completion: dispatch to its
// assigned worker, re-dispatch on failure, speculatively re-dispatch
// when the straggler deadline passes, and hand over to the in-process
// fallback once the remote attempt budget is spent. Racing attempts are
// harmless — outcomes are deterministic and slots fill first-wins.
func (e *sessionEvaluator) runPartition(ctx context.Context, batchIndex uint64, batch []*core.Config, st *batchState, part *partition, live []*worker, slot int) {
	opts := e.fleet.opts
	failures := make(chan struct{}, opts.MaxAttempts+1)
	dispatch := func(w *worker) {
		go func() {
			if err := e.dispatch(ctx, batchIndex, batch, st, part, w); err != nil && ctx.Err() == nil {
				e.fleet.registry.MarkFailed(w)
				select { // non-blocking: the controller may be gone
				case failures <- struct{}{}:
				default:
				}
			}
		}()
	}

	attempts := 1
	mPartitionsDispatched.Add(1)
	dispatch(live[slot%len(live)])

	straggler := time.NewTimer(opts.StragglerAfter)
	defer straggler.Stop()
	resetStraggler := func() {
		straggler.Stop()
		select {
		case <-straggler.C:
		default:
		}
		straggler.Reset(opts.StragglerAfter)
	}

	for {
		redispatch := false
		select {
		case <-part.done:
			return
		case <-ctx.Done():
			return
		case <-failures:
			redispatch = true
		case <-straggler.C:
			redispatch = true
		}
		if redispatch {
			w := e.nextWorker(slot + attempts)
			if w == nil || attempts >= opts.MaxAttempts {
				// Out of remote options: finish the open slots in process.
				mPartitionsLocal.Add(1)
				e.localFill(ctx, batchIndex, batch, st, st.unfilled(part.indices))
				return
			}
			attempts++
			mPartitionsRedispatched.Add(1)
			dispatch(w)
			resetStraggler()
		}
	}
}

// nextWorker picks a live worker for a re-dispatch, rotating through the
// session's worker subset; nil when the fleet has none left.
func (e *sessionEvaluator) nextWorker(slot int) *worker {
	live := e.liveWorkers()
	if len(live) == 0 {
		return nil
	}
	return live[slot%len(live)]
}

// liveWorkers returns the live workers this session may dispatch to:
// the whole fleet without a quota, otherwise SessionWorkers of them
// starting at an offset hashed from the session id — stable for the
// session, different across sessions, and self-healing as the live set
// changes.
func (e *sessionEvaluator) liveWorkers() []*worker {
	live := e.fleet.registry.Live()
	quota := e.fleet.opts.SessionWorkers
	if quota <= 0 || quota >= len(live) {
		return live
	}
	h := fnv.New32a()
	h.Write([]byte(e.session))
	offset := int(h.Sum32() % uint32(len(live)))
	subset := make([]*worker, 0, quota)
	for i := 0; i < quota; i++ {
		subset = append(subset, live[(offset+i)%len(live)])
	}
	return subset
}

// dispatch POSTs the partition's still-open configurations to one worker
// and fills outcome slots from its NDJSON stream as records arrive, so a
// partial stream from a dying worker still contributes every complete
// record. Refused connections are retried under the shared policy;
// anything else is one strike and the controller re-dispatches.
func (e *sessionEvaluator) dispatch(ctx context.Context, batchIndex uint64, batch []*core.Config, st *batchState, part *partition, w *worker) error {
	open := st.unfilled(part.indices)
	if len(open) == 0 {
		return nil
	}
	w.dispatches.Add(1)
	configs := make([]*core.Config, len(open))
	for i, pos := range open {
		configs[i] = batch[pos]
	}
	body, err := json.Marshal(EvalRequest{
		Session:    e.session,
		BatchIndex: batchIndex,
		Spec:       e.spec,
		Configs:    configs,
	})
	if err != nil {
		return fmt.Errorf("dist: encoding eval request: %w", err)
	}
	if e.fleet.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.fleet.opts.RequestTimeout)
		defer cancel()
	}
	return e.fleet.opts.Retry.Do(ctx, func() error {
		return e.streamEval(ctx, body, batchIndex, st, part, open, w)
	})
}

func (e *sessionEvaluator) streamEval(ctx context.Context, body []byte, batchIndex uint64, st *batchState, part *partition, open []int, w *worker) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.fleet.opts.HTTPClient.Do(req)
	if err != nil {
		// Refused connections unwrap as transient on their own; other
		// transport failures are this attempt's strike.
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		err := fmt.Errorf("dist: worker %s: eval returned %s: %s", w.name, resp.Status, bytes.TrimSpace(msg))
		if client.TransientStatus(resp.StatusCode) {
			// Safe to retry even though this is a POST: evaluation is
			// deterministic and slots fill first-wins.
			return client.Transient(err)
		}
		return err
	}

	seen := 0
	torn, err := client.ScanNDJSON(resp.Body, func(line []byte) (bool, error) {
		var rec EvalResult
		if err := json.Unmarshal(line, &rec); err != nil {
			return false, fmt.Errorf("dist: worker %s: bad eval record: %w", w.name, err)
		}
		if rec.BatchIndex != batchIndex {
			return false, fmt.Errorf("dist: worker %s: record for batch %d in batch %d stream", w.name, rec.BatchIndex, batchIndex)
		}
		if rec.Index < 0 || rec.Index >= len(open) {
			return false, fmt.Errorf("dist: worker %s: record index %d out of range (%d configs)", w.name, rec.Index, len(open))
		}
		o := core.Outcome{Cost: rec.Cost}
		if rec.Error != "" {
			o.Err = errors.New(rec.Error)
			if !o.Cost.IsInf() {
				o.Cost = core.InfCost()
			}
		}
		if st.fill(part, open[rec.Index], o) {
			mRemoteEvals.Add(1)
			w.evals.Add(1)
			w.evalsTotal.Add(1)
		}
		seen++
		return true, nil
	})
	if err != nil {
		return err
	}
	if torn || seen < len(open) {
		return fmt.Errorf("dist: worker %s: stream ended after %d of %d results", w.name, seen, len(open))
	}
	return nil
}

// localFill evaluates the given open positions with the in-process
// fallback pool and fills their slots (first-wins, like any attempt).
func (e *sessionEvaluator) localFill(ctx context.Context, batchIndex uint64, batch []*core.Config, st *batchState, open []int) error {
	if len(open) == 0 {
		return nil
	}
	pool, err := e.localPool()
	if err != nil {
		return err
	}
	configs := make([]*core.Config, len(open))
	for i, pos := range open {
		configs[i] = batch[pos]
	}
	outcomes, err := pool.EvaluateBatch(ctx, batchIndex, configs)
	if err != nil {
		return err
	}
	for i, pos := range open {
		st.fill(nil, pos, outcomes[i])
	}
	return nil
}

// localPool lazily builds the in-process fallback: the spec's own
// parallelism over the session's cost function. Caching stays at the
// session level, so the pool's cache is off.
func (e *sessionEvaluator) localPool() (*core.PoolEvaluator, error) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("dist: evaluator closed")
	}
	if e.pool == nil {
		workers := 1
		if e.spec != nil {
			workers = e.spec.Parallelism
		}
		if workers == atf.AutoParallelism {
			workers = runtime.NumCPU()
		}
		if workers < 1 {
			workers = 1
		}
		pool, err := core.NewPoolEvaluator(e.local, workers, false)
		if err != nil {
			return nil, err
		}
		e.pool = pool
	}
	return e.pool, nil
}

func (e *sessionEvaluator) cached(key string) (core.Outcome, bool) {
	if !e.caching {
		return core.Outcome{}, false
	}
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	o, ok := e.cache[key]
	return o, ok
}

func (e *sessionEvaluator) store(key string, o core.Outcome) {
	if !e.caching {
		return
	}
	e.cacheMu.Lock()
	e.cache[key] = o
	e.cacheMu.Unlock()
}

// Close releases the in-process fallback pool. The session runner calls
// it when the tuning run finishes.
func (e *sessionEvaluator) Close() error {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	e.closed = true
	if e.pool != nil {
		err := e.pool.Close()
		e.pool = nil
		return err
	}
	return nil
}
