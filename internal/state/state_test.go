package state

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"hello":"world","n":42}`)
	if err := s.Save("census-abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load("census-abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Load = %q,%v, want %q,true", got, ok, payload)
	}
	// Overwrite wins atomically.
	if err := s.Save("census-abc123", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load("census-abc123"); !ok || string(got) != "v2" {
		t.Fatalf("Load after overwrite = %q,%v", got, ok)
	}
	// Empty payloads round-trip too.
	if err := s.Save("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load("empty"); !ok || len(got) != 0 {
		t.Fatalf("empty Load = %q,%v", got, ok)
	}
}

func TestLoadMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("never-saved"); ok {
		t.Fatal("missing blob loaded")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("blob", []byte("important payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blob.atfstate")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"flipped-byte":  append(append([]byte{}, orig[:len(orig)-3]...), orig[len(orig)-3]^1, orig[len(orig)-2], orig[len(orig)-1]),
		"truncated":     orig[:len(orig)/2],
		"wrong-magic":   append([]byte("NOTSTATE1\n"), orig[len("ATFSTATE1\n"):]...),
		"empty-file":    {},
		"short-header":  []byte("ATFSTATE1\nabc"),
		"no-body-break": []byte("ATFSTATE1\n" + strings.Repeat("0", 64)),
	}
	for name, data := range cases {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Load("blob"); ok {
			t.Errorf("%s: corrupt blob loaded as %q", name, got)
		}
	}
	// Restore and verify it loads again (corruption detection is pure).
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load("blob"); !ok || string(got) != "important payload" {
		t.Fatalf("restored blob Load = %q,%v", got, ok)
	}
}

func TestNameSanitization(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("../escape/../../attempt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || strings.Contains(entries[0].Name(), "/") {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	if got, ok := s.Load("../escape/../../attempt"); !ok || string(got) != "x" {
		t.Fatalf("sanitized name failed round-trip: %q,%v", got, ok)
	}
}
