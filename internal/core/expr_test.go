package core

import (
	"testing"
)

func exprConfig(t *testing.T, names []string, vals ...int64) *Config {
	t.Helper()
	c := NewConfig(names)
	for i, v := range vals {
		c.set(i, Int(v))
	}
	return c
}

func TestParseExprArithmetic(t *testing.T) {
	c := exprConfig(t, []string{"WPT", "LS"}, 4, 32)
	cases := []struct {
		src  string
		want int64
	}{
		{"4096", 4096},
		{"WPT", 4},
		{"4096 / WPT", 1024},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"-WPT + 10", 6},
		{"LS % 5", 2},
		{"LS - WPT - 1", 27},
		{"10 / 0", 0}, // division by zero evaluates to 0
		{"10 % 0", 0}, // so does modulus
		{"  WPT*LS ", 128},
		{"--3", 3},
	}
	for _, tc := range cases {
		e, _, err := ParseExpr(tc.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tc.src, err)
			continue
		}
		if got := e.Eval(c); got != tc.want {
			t.Errorf("ParseExpr(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestParseExprRefs(t *testing.T) {
	_, refs, err := ParseExpr("N / WPT + WPT * M")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || refs[0] != "N" || refs[1] != "WPT" || refs[2] != "M" {
		t.Errorf("refs = %v, want [N WPT M] in first-appearance order", refs)
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "1 +", "(1", "1)", "1 $ 2", "9999999999999999999999"} {
		if _, _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestConstraintByName(t *testing.T) {
	ct, err := ConstraintByName("divides", int64(12))
	if err != nil {
		t.Fatal(err)
	}
	c := exprConfig(t, []string{"X"})
	if !ct.Check(Int(4), c) || ct.Check(Int(5), c) {
		t.Error("divides alias misbehaves")
	}
	if _, err := ConstraintByName("approximately", 1); err == nil {
		t.Error("unknown alias: expected error")
	}
	// Aliases compose with parsed expressions, the declarative-frontend path.
	e, _, err := ParseExpr("4096 / WPT")
	if err != nil {
		t.Fatal(err)
	}
	ct, err = ConstraintByName("divides", e)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exprConfig(t, []string{"WPT", "LS"}, 4, 0)
	if !ct.Check(Int(256), cfg) || ct.Check(Int(3), cfg) {
		t.Error("divides(4096/WPT) misbehaves")
	}
}
