package core

import (
	"context"
	"fmt"
	"sync"
)

// Outcome is the result of evaluating one configuration: the cost vector
// and the cost function's error, if any. Failed evaluations carry
// InfCost() so they never win the comparison, exactly as in Explore.
type Outcome struct {
	Cost Cost
	Err  error
}

// BatchEvaluator is the evaluate step of exploration, extracted from
// ExploreParallel as a transport-agnostic seam: the engine draws batches
// of configurations from the technique, hands each batch to the
// evaluator, and merges the outcomes strictly in batch order. The
// in-process PoolEvaluator is the default and reference implementation;
// the distributed fleet coordinator (internal/dist) implements the same
// interface over remote workers. Because merging happens on the engine
// side in batch-index order, any evaluator that returns the right
// outcomes — in any internal order, computed anywhere — yields a result
// bit-identical to a local run.
type BatchEvaluator interface {
	// EvaluateBatch evaluates the batch and returns one outcome per
	// configuration, in batch order. batchIndex is the 0-based sequence
	// number of the batch within the exploration run. A non-nil error
	// aborts exploration; evaluators that can degrade (the fleet
	// coordinator falls back to local evaluation) should do so instead
	// of erroring.
	EvaluateBatch(ctx context.Context, batchIndex uint64, batch []*Config) ([]Outcome, error)
}

// PoolEvaluator is the in-process BatchEvaluator: a fixed pool of worker
// goroutines, one cost-function instance per worker (clones when the
// cost function supports them), and the sharded in-flight-deduplicating
// cost cache. It is the extracted evaluate step of ExploreParallel and
// is also what an atf-worker process runs behind its HTTP eval endpoint.
// EvaluateBatch is safe for concurrent calls.
type PoolEvaluator struct {
	cfs   []CostFunction
	cache *costCache
	tasks chan poolTask

	mu     sync.Mutex
	closed bool
}

type poolTask struct {
	cfg *Config
	out *Outcome
	wg  *sync.WaitGroup
}

// NewPoolEvaluator builds a pool of `workers` evaluation goroutines over
// cf. With cacheCosts, outcomes are memoized by configuration key with
// in-flight deduplication, so a configuration's cost function runs at
// most once per pool. Close the pool to release its goroutines.
func NewPoolEvaluator(cf CostFunction, workers int, cacheCosts bool) (*PoolEvaluator, error) {
	if cf == nil {
		return nil, fmt.Errorf("core: no cost function")
	}
	if workers < 1 {
		workers = 1
	}
	// One cost function per worker: clones when the cost function
	// supports them, the shared instance otherwise.
	cfs := make([]CostFunction, workers)
	cfs[0] = cf
	for i := 1; i < workers; i++ {
		if cl, ok := cf.(CloneableCostFunction); ok {
			c, err := cl.Clone()
			if err != nil {
				return nil, fmt.Errorf("core: cloning cost function for worker %d: %w", i, err)
			}
			cfs[i] = c
		} else {
			cfs[i] = cf
		}
	}
	p := &PoolEvaluator{cfs: cfs, tasks: make(chan poolTask)}
	if cacheCosts {
		p.cache = newCostCache()
	}
	for w := 0; w < workers; w++ {
		go func(w int) {
			for t := range p.tasks {
				t.out.Cost, t.out.Err = p.evalOne(w, t.cfg)
				t.wg.Done()
			}
		}(w)
	}
	return p, nil
}

// Workers returns the pool size.
func (p *PoolEvaluator) Workers() int { return len(p.cfs) }

func (p *PoolEvaluator) evalOne(w int, cfg *Config) (Cost, error) {
	if p.cache == nil {
		cost, err := timedCost(p.cfs[w], cfg)
		if err != nil {
			cost = InfCost()
		}
		return cost, err
	}
	return p.cache.getOrCompute(cfg.Key(), func() (Cost, error) {
		cost, err := timedCost(p.cfs[w], cfg)
		if err != nil {
			cost = InfCost()
		}
		return cost, err
	})
}

// EvaluateBatch implements BatchEvaluator: the batch is fanned out to the
// pool and the outcomes are returned in batch order.
func (p *PoolEvaluator) EvaluateBatch(ctx context.Context, batchIndex uint64, batch []*Config) ([]Outcome, error) {
	outcomes := make([]Outcome, len(batch))
	var wg sync.WaitGroup
	wg.Add(len(batch))
	for i, cfg := range batch {
		p.tasks <- poolTask{cfg: cfg, out: &outcomes[i], wg: &wg}
	}
	wg.Wait()
	return outcomes, nil
}

// Close stops the pool's worker goroutines. The pool must be idle; Close
// is idempotent.
func (p *PoolEvaluator) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	return nil
}
