package oclc_test

// Differential testing of the execution engines: every corpus kernel runs
// under the tree-walking reference interpreter, the specialized bytecode
// VM, the unspecialized VM, and the lockstep-vectorized VM, across several
// define-sets, and the test asserts identical observable behaviour —
// buffer contents bit-for-bit, the full Counters struct, execution
// geometry, the divergence flag, and error strings. This is the
// acceptance gate that lets a VM replace the walker as the default
// engine.

import (
	"fmt"
	"testing"

	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/oclc"
)

// diffCase is one kernel × define-set × launch geometry to compare.
type diffCase struct {
	name    string
	src     string
	defines map[string]string
	kernel  string
	global  [2]int64 // second entry 0 for 1-D
	local   [2]int64
	// bufs describes the kernel arguments in order: >0 allocates a float
	// buffer of that many elements (filled i -> 1000-i), <0 an int buffer
	// of -n elements (filled i -> i-3), 0 takes the next scalar.
	bufs    []int
	scalars []oclc.Arg
}

var diffCorpus = []diffCase{
	{
		name: "saxpy-wpt2",
		src: `__kernel void saxpy(const int N, const float a,
			__global float* x, __global float* y) {
		  for (int w = 0; w < WPT; w++) {
		    const int id = w * get_global_size(0) + get_global_id(0);
		    y[id] = a * x[id] + y[id];
		  }
		}`,
		defines: map[string]string{"WPT": "2"},
		kernel:  "saxpy",
		global:  [2]int64{16, 0}, local: [2]int64{4, 0},
		bufs:    []int{0, 0, 32, 32},
		scalars: []oclc.Arg{oclc.IntArg(32), oclc.FloatArg(2.5)},
	},
	{
		name: "saxpy-wpt8",
		src: `__kernel void saxpy(const int N, const float a,
			__global float* x, __global float* y) {
		  for (int w = 0; w < WPT; w++) {
		    const int id = w * get_global_size(0) + get_global_id(0);
		    y[id] = a * x[id] + y[id];
		  }
		}`,
		defines: map[string]string{"WPT": "8"},
		kernel:  "saxpy",
		global:  [2]int64{4, 0}, local: [2]int64{2, 0},
		bufs:    []int{0, 0, 32, 32},
		scalars: []oclc.Arg{oclc.IntArg(32), oclc.FloatArg(-1.25)},
	},
	{
		name: "local-barrier-reverse",
		src: `__kernel void reverse(__global float* data) {
		  __local float tile[LS];
		  const int l = get_local_id(0);
		  const int base = get_group_id(0) * LS;
		  tile[l] = data[base + l];
		  barrier(0);
		  data[base + l] = tile[LS - 1 - l];
		}`,
		defines: map[string]string{"LS": "8"},
		kernel:  "reverse",
		global:  [2]int64{32, 0}, local: [2]int64{8, 0},
		bufs: []int{32},
	},
	{
		name: "int-float-mix",
		src: `__kernel void mix(__global float* out, __global int* flags, const int n) {
		  const int g = get_global_id(0);
		  int acc = g % 5;
		  float facc = 0.5f;
		  for (int i = 0; i < n; i++) {
		    acc = acc * 3 + (i & 7);
		    acc ^= i << 2;
		    facc = fma(facc, 1.0f + (float)(i) * 0.125f, 0.25f);
		    facc /= 2;
		  }
		  if (acc % 2 == 0 && facc > 0.0f) { flags[g] = acc; }
		  else { flags[g] = -acc; }
		  out[g] = facc + (float)(acc);
		}`,
		kernel: "mix",
		global: [2]int64{8, 0}, local: [2]int64{4, 0},
		bufs: []int{8, -8, 0},
		scalars: []oclc.Arg{
			oclc.IntArg(6),
		},
	},
	{
		name: "specialized-branches",
		src: `__kernel void spec(__global float* out) {
		  const int g = get_global_id(0);
		  float v = 0.0f;
		  #pragma unroll
		  for (int u = 0; u < UF; u++) {
		    if (MODE == 1) { v += 1.5f; } else { v -= 2.5f; }
		    v += (MODE == 1) ? 0.5f : 0.25f;
		  }
		  while (v > LIMIT) { v = v / 2.0f; }
		  out[g] = v;
		}`,
		defines: map[string]string{"UF": "5", "MODE": "1", "LIMIT": "2.0f"},
		kernel:  "spec",
		global:  [2]int64{4, 0}, local: [2]int64{2, 0},
		bufs: []int{4},
	},
	{
		name: "helper-and-private-arrays",
		src: `float sq(float v) { return v * v; }
		int pick(int a, int b) { if (a > b) { return a; } return b; }
		__kernel void hp(__global float* out) {
		  const int g = get_global_id(0);
		  float acc[4];
		  for (int i = 0; i < 4; i++) { acc[i] = sq((float)(i + g)); }
		  float s = 0.0f;
		  for (int i = 0; i < 4; i++) { s += acc[i]; }
		  out[g] = s + (float)(pick(g, 2));
		}`,
		kernel: "hp",
		global: [2]int64{6, 0}, local: [2]int64{3, 0},
		bufs: []int{6},
	},
	{
		name: "transpose-2d",
		src: `__kernel void transpose(const int n, __global float* in, __global float* out) {
		  const int x = get_global_id(0);
		  const int y = get_global_id(1);
		  float tile[TS][TS];
		  tile[get_local_id(1)][get_local_id(0)] = in[y * n + x];
		  out[x * n + y] = tile[get_local_id(1)][get_local_id(0)];
		}`,
		defines: map[string]string{"TS": "2"},
		kernel:  "transpose",
		global:  [2]int64{4, 4}, local: [2]int64{2, 2},
		bufs:    []int{0, 16, 16},
		scalars: []oclc.Arg{oclc.IntArg(4)},
	},
	{
		name: "builtins-and-casts",
		src: `__kernel void bc(__global float* out) {
		  const int g = get_global_id(0);
		  float v = sqrt((float)(g + 1)) + fabs(-1.5f) + pow(2.0f, 3.0f);
		  v += (float)(abs(2 - g)) + fmod(7.5f, 2.0f);
		  v = clamp(v, 0.0f, 100.0f) + (float)(min(g, 3)) + (float)(max(g, 1));
		  int b = !(g > 2);
		  int c = ~g;
		  out[g] = v + (float)(b) + (float)(c) + floor(v) * 0.001f;
		}`,
		kernel: "bc",
		global: [2]int64{8, 0}, local: [2]int64{4, 0},
		bufs: []int{8},
	},
	{
		// Shadowing: the same name in nested scopes resolves to distinct
		// slots; loop-body declarations re-execute per iteration.
		name: "scopes-and-shadowing",
		src: `__kernel void sh(__global float* out) {
		  const int g = get_global_id(0);
		  float v = 1.0f;
		  for (int i = 0; i < 4; i++) {
		    float v = 0.5f * (float)(i);
		    if (i > 1) { int v = i * 10; out[g * 8 + i + 4] = (float)(v); }
		    out[g * 8 + i] = v;
		  }
		  out[g * 8 + 3] += v;
		}`,
		kernel: "sh",
		global: [2]int64{2, 0}, local: [2]int64{2, 0},
		bufs: []int{16},
	},
	{
		// Kernel scalar arguments are not converted to the parameter type
		// (argToRval passes the Arg kind through): an int passed to a
		// float parameter stays an int, defeating static kind knowledge.
		name: "mismatched-scalar-args",
		src: `__kernel void mm(__global float* out, const float a, const int b) {
		  const int g = get_global_id(0);
		  float v = a * 2.0f + a;
		  int w = b + 1;
		  v += (float)(w) / 4.0f + a;
		  out[g] = v + (a > 1.0f ? 1.0f : 0.0f);
		}`,
		kernel: "mm",
		global: [2]int64{4, 0}, local: [2]int64{2, 0},
		bufs: []int{4, 0, 0},
		scalars: []oclc.Arg{
			oclc.IntArg(3),      // int into float parameter
			oclc.FloatArg(2.75), // float into int parameter
		},
	},
	{
		name: "incdec-and-compound",
		src: `__kernel void cd(__global int* out, const int n) {
		  const int g = get_global_id(0);
		  int i = 0;
		  int acc = 0;
		  while (i < n) {
		    acc += i++;
		    acc -= --i + i++;
		    acc <<= 1;
		    acc |= g;
		    acc &= 1048575;
		  }
		  out[g] = acc + i--;
		}`,
		kernel: "cd",
		global: [2]int64{4, 0}, local: [2]int64{4, 0},
		bufs: []int{-4, 0},
		scalars: []oclc.Arg{
			oclc.IntArg(5),
		},
	},
	{
		name: "oob-error",
		src: `__kernel void oob(__global float* out, const int i) {
		  out[i + get_global_id(0)] = 1.0f;
		}`,
		kernel: "oob",
		global: [2]int64{4, 0}, local: [2]int64{2, 0},
		bufs: []int{0, 4},
		scalars: []oclc.Arg{
			oclc.IntArg(2),
		},
	},
	{
		name: "div-zero-error",
		src: `__kernel void dz(__global int* out, const int z) {
		  out[get_global_id(0)] = 4 / z;
		}`,
		kernel: "dz",
		global: [2]int64{4, 0}, local: [2]int64{2, 0},
		bufs: []int{-4, 0},
		scalars: []oclc.Arg{
			oclc.IntArg(0),
		},
	},
	{
		name: "divergent-barrier",
		src: `__kernel void div(__global float* out) {
		  if (get_local_id(0) == 0) { barrier(0); }
		  out[get_global_id(0)] = 1.0f;
		}`,
		kernel: "div",
		global: [2]int64{4, 0}, local: [2]int64{4, 0},
		bufs: []int{4},
	},
	{
		// Data-dependent branch and loop bound: lanes take different paths
		// and different trip counts based on loaded values, so the vector
		// engine must scatter and finish the group on scalar frames (no
		// barrier ever re-converges it).
		name: "data-dependent-branch",
		src: `__kernel void ddb(__global float* out, __global int* sel) {
		  const int g = get_global_id(0);
		  float v = 1.0f;
		  if (sel[g] > 0) { v = v * 2.0f + 1.0f; } else { v = v - 3.0f; }
		  for (int i = 0; i < sel[g] + 4; i++) { v += (float)(i * (g + 1)); }
		  out[g] = v;
		}`,
		kernel: "ddb",
		global: [2]int64{8, 0}, local: [2]int64{4, 0},
		bufs: []int{8, -8},
	},
	{
		// Early return inside a loop: some lanes exit the kernel mid-loop
		// while the rest keep iterating — lane deaths inside a divergent
		// region, with per-lane counters diverging too.
		name: "early-return-in-loop",
		src: `__kernel void er(__global float* out, __global int* lim) {
		  const int g = get_global_id(0);
		  float acc = 0.0f;
		  for (int i = 0; i < 16; i++) {
		    if (i == lim[g]) { out[g] = acc; return; }
		    acc += (float)(g + i);
		  }
		  out[g] = -acc;
		}`,
		kernel: "er",
		global: [2]int64{8, 0}, local: [2]int64{8, 0},
		bufs: []int{8, -8},
	},
	{
		// Divergent region between two uniform ones, separated by a
		// barrier: the group scatters at the data-dependent branch, every
		// lane reaches the barrier, and the vector engine re-gathers and
		// finishes the reduction in lockstep.
		name: "divergent-barrier-regather",
		src: `__kernel void dbr(__global float* out, __global int* sel) {
		  __local float tile[LS];
		  const int l = get_local_id(0);
		  float v;
		  if (sel[get_global_id(0)] > 0) { v = 2.0f; } else { v = 0.5f; }
		  tile[l] = v;
		  barrier(0);
		  float s = 0.0f;
		  for (int i = 0; i < LS; i++) { s += tile[i]; }
		  out[get_global_id(0)] = s * v;
		}`,
		defines: map[string]string{"LS": "8"},
		kernel:  "dbr",
		global:  [2]int64{16, 0}, local: [2]int64{8, 0},
		bufs: []int{16, -16},
	},
}

// diffRun executes one case under one engine with fresh buffers and
// returns everything observable.
type diffRun struct {
	res  *oclc.ExecResult
	err  error
	bufs [][]float64
}

func runDiffCase(t *testing.T, tc diffCase, eng oclc.Engine) diffRun {
	t.Helper()
	prog, err := oclc.Compile(tc.src, tc.defines)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var args []oclc.Arg
	var bufs []*oclc.Memory
	si := 0
	for bi, n := range tc.bufs {
		switch {
		case n > 0:
			m := oclc.NewGlobalMemory(bi+1, oclc.KFloat, 4, n)
			for i := range m.Data {
				m.Data[i] = float64(1000 - i)
			}
			bufs = append(bufs, m)
			args = append(args, oclc.BufArg(m))
		case n < 0:
			m := oclc.NewGlobalMemory(bi+1, oclc.KInt, 4, -n)
			for i := range m.Data {
				m.Data[i] = float64(i - 3)
			}
			bufs = append(bufs, m)
			args = append(args, oclc.BufArg(m))
		default:
			args = append(args, tc.scalars[si])
			si++
		}
	}
	var cfg oclc.LaunchConfig
	if tc.global[1] == 0 {
		cfg = oclc.NDRange1D(tc.global[0], tc.local[0])
	} else {
		cfg = oclc.NDRange2D(tc.global[0], tc.global[1], tc.local[0], tc.local[1])
	}
	res, err := prog.Launch(tc.kernel, args, cfg, oclc.ExecOptions{Engine: eng})
	out := diffRun{res: res, err: err}
	for _, m := range bufs {
		cp := make([]float64, len(m.Data))
		copy(cp, m.Data)
		out.bufs = append(out.bufs, cp)
	}
	return out
}

func compareRuns(t *testing.T, eng oclc.Engine, ref, got diffRun) {
	t.Helper()
	if (ref.err == nil) != (got.err == nil) {
		t.Fatalf("%v: error mismatch: walk=%v, %v=%v", eng, ref.err, eng, got.err)
	}
	if ref.err != nil && ref.err.Error() != got.err.Error() {
		t.Fatalf("%v: error text mismatch:\n  walk: %v\n  %v: %v", eng, ref.err, eng, got.err)
	}
	for i := range ref.bufs {
		for j := range ref.bufs[i] {
			if ref.bufs[i][j] != got.bufs[i][j] {
				t.Fatalf("%v: buffer %d[%d] = %v, walk has %v", eng, i, j, got.bufs[i][j], ref.bufs[i][j])
			}
		}
	}
	if ref.err != nil {
		return // failed launches return no ExecResult
	}
	if ref.res.Counters != got.res.Counters {
		t.Fatalf("%v: counters mismatch:\n  walk: %+v\n  %v: %+v", eng, ref.res.Counters, eng, got.res.Counters)
	}
	if ref.res.WIsExecuted != got.res.WIsExecuted ||
		ref.res.GroupsExecuted != got.res.GroupsExecuted ||
		ref.res.Divergent != got.res.Divergent ||
		ref.res.LocalBytes != got.res.LocalBytes {
		t.Fatalf("%v: geometry mismatch:\n  walk: %+v\n  %v: %+v", eng, ref.res, eng, got.res)
	}
}

func TestDifferentialEngines(t *testing.T) {
	for _, tc := range diffCorpus {
		t.Run(tc.name, func(t *testing.T) {
			ref := runDiffCase(t, tc, oclc.EngineWalk)
			for _, eng := range []oclc.Engine{oclc.EngineVM, oclc.EngineVMNoSpec, oclc.EngineVMVec} {
				compareRuns(t, eng, ref, runDiffCase(t, tc, eng))
			}
		})
	}
}

// TestDifferentialXgemmDirect runs the full CLBlast XgemmDirect kernel —
// the tuning workload the VM was built for — under all four engines
// across several configurations and compares results and counters.
func TestDifferentialXgemmDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("XgemmDirect differential is slow")
	}
	cfgs := []*core.Config{
		clblast.DefaultConfig(),
		core.ConfigFromMap(clblast.XgemmDirectNames, map[string]core.Value{
			"WGD": core.Int(16), "KWID": core.Int(2),
			"MDIMCD": core.Int(8), "NDIMCD": core.Int(8),
			"MDIMAD": core.Int(8), "NDIMBD": core.Int(8),
			"VWMD": core.Int(2), "VWND": core.Int(2),
			"PADA": core.Bool(true), "PADB": core.Bool(false),
		}),
		core.ConfigFromMap(clblast.XgemmDirectNames, map[string]core.Value{
			"WGD": core.Int(8), "KWID": core.Int(1),
			"MDIMCD": core.Int(4), "NDIMCD": core.Int(4),
			"MDIMAD": core.Int(4), "NDIMBD": core.Int(4),
			"VWMD": core.Int(1), "VWND": core.Int(1),
			"PADA": core.Bool(false), "PADB": core.Bool(false),
		}),
	}
	const m, n, k = 32, 32, 32
	shape := clblast.GemmShape{Name: "diff", M: m, N: n, K: k}
	for ci, cfg := range cfgs {
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			type gemmRun struct {
				res *oclc.ExecResult
				err error
				c   []float64
			}
			run := func(eng oclc.Engine) gemmRun {
				prog, err := oclc.Compile(clblast.XgemmDirectSource, cfg.Defines())
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				a := oclc.NewGlobalMemory(1, oclc.KFloat, 4, m*k)
				b := oclc.NewGlobalMemory(2, oclc.KFloat, 4, k*n)
				c := oclc.NewGlobalMemory(3, oclc.KFloat, 4, m*n)
				for i := range a.Data {
					a.Data[i] = float64((i%13)-6) * 0.25
				}
				for i := range b.Data {
					b.Data[i] = float64((i%7)-3) * 0.5
				}
				for i := range c.Data {
					c.Data[i] = float64(i % 5)
				}
				global, local := clblast.GlobalLocalSize(cfg, shape)
				nd := oclc.NDRange2D(global[0], global[1], local[0], local[1])
				args := []oclc.Arg{
					oclc.IntArg(m), oclc.IntArg(n), oclc.IntArg(k),
					oclc.FloatArg(1.5), oclc.FloatArg(0.5),
					oclc.BufArg(a), oclc.BufArg(b), oclc.BufArg(c),
				}
				res, err := prog.Launch("XgemmDirect", args, nd, oclc.ExecOptions{Engine: eng})
				cp := make([]float64, len(c.Data))
				copy(cp, c.Data)
				return gemmRun{res: res, err: err, c: cp}
			}
			ref := run(oclc.EngineWalk)
			if ref.err != nil {
				t.Fatalf("walk failed: %v", ref.err)
			}
			for _, eng := range []oclc.Engine{oclc.EngineVM, oclc.EngineVMNoSpec, oclc.EngineVMVec} {
				got := run(eng)
				if got.err != nil {
					t.Fatalf("%v failed: %v", eng, got.err)
				}
				for i := range ref.c {
					if ref.c[i] != got.c[i] {
						t.Fatalf("%v: C[%d] = %v, walk has %v", eng, i, got.c[i], ref.c[i])
					}
				}
				if ref.res.Counters != got.res.Counters {
					t.Fatalf("%v: counters mismatch:\n  walk: %+v\n  %v: %+v",
						eng, ref.res.Counters, eng, got.res.Counters)
				}
				if ref.res.Divergent != got.res.Divergent || ref.res.LocalBytes != got.res.LocalBytes {
					t.Fatalf("%v: geometry mismatch", eng)
				}
			}
		})
	}
}

// TestVMVecGroupSizeProperty is the lane-width property test for the
// vectorized engine: a corpus of kernels (uniform, divergent, and
// barrier-re-converging) runs at work-group sizes {1, 2, 7, 64} — scalar
// degenerate, minimal, odd, and wide — over a fixed 448-item NDRange
// (divisible by every size). At every size vm-vec must be bit-equal to
// the walker, and kernels whose semantics don't reference the local
// geometry must additionally produce buffers invariant to the group size.
func TestVMVecGroupSizeProperty(t *testing.T) {
	const global = 448
	sizes := []int64{1, 2, 7, 64}
	cases := []struct {
		tc            diffCase
		sizeInvariant bool
	}{
		{sizeInvariant: true, tc: diffCase{
			name: "saxpy",
			src: `__kernel void saxpy(const int N, const float a,
				__global float* x, __global float* y) {
			  for (int w = 0; w < WPT; w++) {
			    const int id = w * get_global_size(0) + get_global_id(0);
			    y[id] = a * x[id] + y[id];
			  }
			}`,
			defines: map[string]string{"WPT": "2"},
			kernel:  "saxpy",
			bufs:    []int{0, 0, 2 * global, 2 * global},
			scalars: []oclc.Arg{oclc.IntArg(2 * global), oclc.FloatArg(2.5)},
		}},
		{sizeInvariant: true, tc: diffCase{
			name: "int-float-mix",
			src: `__kernel void mix(__global float* out, __global int* flags, const int n) {
			  const int g = get_global_id(0);
			  int acc = g % 5;
			  float facc = 0.5f;
			  for (int i = 0; i < n; i++) {
			    acc = acc * 3 + (i & 7);
			    acc ^= i << 2;
			    facc = fma(facc, 1.0f + (float)(i) * 0.125f, 0.25f);
			    facc /= 2;
			  }
			  if (acc % 2 == 0 && facc > 0.0f) { flags[g] = acc; }
			  else { flags[g] = -acc; }
			  out[g] = facc + (float)(acc);
			}`,
			kernel:  "mix",
			bufs:    []int{global, -global, 0},
			scalars: []oclc.Arg{oclc.IntArg(6)},
		}},
		{sizeInvariant: true, tc: diffCase{
			name: "builtins",
			src: `__kernel void bc(__global float* out) {
			  const int g = get_global_id(0);
			  float v = sqrt((float)(g + 1)) + fabs(-1.5f) + pow(2.0f, 3.0f);
			  v += (float)(abs(2 - g)) + fmod(7.5f, 2.0f);
			  v = clamp(v, 0.0f, 100.0f) + (float)(min(g, 3)) + (float)(max(g, 1));
			  out[g] = v;
			}`,
			kernel: "bc",
			bufs:   []int{global},
		}},
		{sizeInvariant: true, tc: diffCase{
			name: "data-dependent-branch",
			src: `__kernel void ddb(__global float* out, __global int* sel) {
			  const int g = get_global_id(0);
			  float v = 1.0f;
			  if (sel[g] > 0) { v = v * 2.0f + 1.0f; } else { v = v - 3.0f; }
			  for (int i = 0; i < (sel[g] & 7) + 1; i++) { v += (float)(i * (g + 1)); }
			  out[g] = v;
			}`,
			kernel: "ddb",
			bufs:   []int{global, -global},
		}},
		{sizeInvariant: true, tc: diffCase{
			name: "early-return-in-loop",
			src: `__kernel void er(__global float* out, __global int* lim) {
			  const int g = get_global_id(0);
			  float acc = 0.0f;
			  for (int i = 0; i < 16; i++) {
			    if (i == lim[g]) { out[g] = acc; return; }
			    acc += (float)(g + i);
			  }
			  out[g] = -acc;
			}`,
			kernel: "er",
			bufs:   []int{global, -global},
		}},
		{sizeInvariant: false, tc: diffCase{
			// Divergence, then a barrier re-convergence, in a kernel whose
			// output depends on the local geometry — exercises the scatter
			// and re-gather paths at every lane width, including width 1.
			name: "divergent-barrier-regather",
			src: `__kernel void dbr(__global float* out, __global int* sel) {
			  const int g = get_global_id(0);
			  float v;
			  if (sel[g] > 0) { v = 2.0f; } else { v = 0.5f; }
			  barrier(0);
			  out[g] = v * (float)(get_local_id(0) + get_local_size(0));
			}`,
			kernel: "dbr",
			bufs:   []int{global, -global},
		}},
	}
	for _, c := range cases {
		t.Run(c.tc.name, func(t *testing.T) {
			var first diffRun
			for si, local := range sizes {
				tc := c.tc
				tc.global = [2]int64{global, 0}
				tc.local = [2]int64{local, 0}
				ref := runDiffCase(t, tc, oclc.EngineWalk)
				got := runDiffCase(t, tc, oclc.EngineVMVec)
				compareRuns(t, oclc.EngineVMVec, ref, got)
				if si == 0 {
					first = got
					continue
				}
				if !c.sizeInvariant {
					continue
				}
				for i := range first.bufs {
					for j := range first.bufs[i] {
						if first.bufs[i][j] != got.bufs[i][j] {
							t.Fatalf("local=%d: buffer %d[%d] = %v, local=%d has %v",
								local, i, j, got.bufs[i][j], sizes[0], first.bufs[i][j])
						}
					}
				}
			}
		})
	}
}
