package oclc

import "testing"

// evalInt runs a one-work-item kernel that stores the expression into
// out[0] and returns the value.
func evalInt(t *testing.T, expr string) int64 {
	t.Helper()
	src := "__kernel void k(__global int* out) { out[0] = " + expr + "; }"
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatalf("%q: %v", expr, err)
	}
	return int64(out.Data[0])
}

func TestOperatorPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"20 - 8 / 4", 18},
		{"20 % 7 * 2", 12}, // (20%7)*2
		{"1 << 2 + 1", 8},  // shift binds looser than +
		{"7 & 3 | 8", 11},  // (& before |)
		{"6 ^ 3 & 2", 4},   // & before ^
		{"1 | 2 == 2", 1},  // == before |: 1 | 1
		{"2 < 3 == 1", 1},  // relational before equality
		{"1 + 2 < 2 + 3", 1},
		{"0 || 2 && 0", 0}, // && before ||
		{"1 || 0 && 0", 1},
		{"-3 * 2", -6},
		{"- (3 + 1)", -4},
		{"!0 + 1", 2},
		{"~0 & 7", 7},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"1 ? 2 : 0 ? 3 : 4", 2}, // right-assoc ternary
		{"8 >> 1 >> 1", 2},       // left-assoc shifts
		{"100 - 10 - 5", 85},     // left-assoc minus
	}
	for _, c := range cases {
		if got := evalInt(t, c.expr); got != c.want {
			t.Errorf("%q = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestAssignmentOperators(t *testing.T) {
	src := `
__kernel void k(__global int* out) {
  int x = 10;
  x += 5; out[0] = x;   // 15
  x -= 3; out[1] = x;   // 12
  x *= 2; out[2] = x;   // 24
  x /= 5; out[3] = x;   // 4
  x %= 3; out[4] = x;   // 1
  x <<= 4; out[5] = x;  // 16
  x >>= 2; out[6] = x;  // 4
  x |= 3; out[7] = x;   // 7
  x &= 6; out[8] = x;   // 6
  x ^= 5; out[9] = x;   // 3
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 10)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 12, 24, 4, 1, 16, 4, 7, 6, 3}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestDeclarationLists(t *testing.T) {
	src := `
__kernel void k(__global int* out) {
  int a = 1, b = 2, c;
  c = a + b;
  out[0] = c;
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 3 {
		t.Fatalf("out[0] = %v", out.Data[0])
	}
}

func TestScopingAndShadowing(t *testing.T) {
	src := `
__kernel void k(__global int* out) {
  int x = 1;
  {
    int x = 2;
    out[0] = x;
  }
  out[1] = x;
  for (int x = 9; x < 10; x++) { out[2] = x; }
  out[3] = x;
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 4)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 9, 1}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestCastExpressions(t *testing.T) {
	src := `
__kernel void k(__global float* out) {
  out[0] = (float)7 / (float)2;   // 3.5
  out[1] = (int)3.9f;             // 3
  out[2] = (float)((int)(5.5f));  // 5
  const size_t big = 12;
  out[3] = (float)big / 8;        // 1.5
}`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KFloat, 4, 4)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float64{3.5, 3, 5, 1.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestVoidParamFunction(t *testing.T) {
	src := `
int answer(void) { return 42; }
__kernel void k(__global int* out) { out[0] = answer(); }`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 42 {
		t.Fatalf("out[0] = %v", out.Data[0])
	}
}

func TestRecursionWorksToDepth(t *testing.T) {
	// The interpreter allocates a fresh frame per call, so plain
	// recursion should simply work (OpenCL C forbids it, but the
	// interpreter need not crash).
	src := `
int fib(const int n) {
  if (n < 2) { return n; }
  return fib(n-1) + fib(n-2);
}
__kernel void k(__global int* out) { out[0] = fib(10); }`
	prog, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 55 {
		t.Fatalf("fib(10) = %v", out.Data[0])
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	src := `
void f() { }
void f() { }`
	if _, err := Parse(src); err == nil {
		t.Fatal("duplicate function must be rejected")
	}
}

func TestArgumentCountMismatch(t *testing.T) {
	src := `
int add(const int a, const int b) { return a + b; }
__kernel void k(__global int* out) { out[0] = add(1); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(out)}, NDRange1D(1, 1), ExecOptions{}); err == nil {
		t.Fatal("arity mismatch must fail at call time")
	}
}
