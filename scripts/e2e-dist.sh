#!/bin/sh
# e2e-dist.sh — end-to-end check of the distributed evaluation fleet with
# the real binaries (`make e2e-dist`). It runs one tuning session twice:
#
#   control    atfd -fleet=false, everything evaluated in process
#   fleet      atfd + two atf-worker processes, one SIGKILLed mid-run
#
# and asserts the fleet run finishes with the same evaluation count, best
# configuration, and best cost as the control — the coordinator's
# deterministic merge contract, under a worker failure, over real HTTP.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { echo "e2e-dist: $*"; }

command -v jq >/dev/null || { say "jq is required"; exit 1; }

say "building binaries into $workdir"
$GO build -o "$workdir/atfd" ./cmd/atfd
$GO build -o "$workdir/atf-worker" ./cmd/atf-worker

# 1200 evaluations at ~1ms each: slow enough that the worker kill lands
# mid-run, fast enough to finish in seconds.
cat > "$workdir/spec.json" <<'EOF'
{
    "name": "e2e-dist",
    "parameters": [
        {"name": "A", "range": {"interval": {"begin": 1, "end": 60}}},
        {"name": "B", "range": {"interval": {"begin": 1, "end": 20}}}
    ],
    "cost": {"kind": "expr", "expr": "(A - 47) * (A - 47) + (B - 13) * (B - 13)", "delay_ns": 1000000},
    "technique": {"kind": "annealing"},
    "abort": {"evaluations": 1200},
    "seed": 97,
    "parallelism": 4
}
EOF

# wait_done BASE ID — poll a session until it leaves the running state,
# then print its final status JSON.
wait_done() {
    base=$1; id=$2
    for _ in $(seq 1 600); do
        st=$(curl -fsS "$base/v1/sessions/$id")
        case $(echo "$st" | jq -r .state) in
            running) sleep 0.1 ;;
            *) echo "$st"; return 0 ;;
        esac
    done
    say "session $id never finished"; return 1
}

# run_session BASE — create the session and wait it out.
run_session() {
    id=$(curl -fsS -d @"$workdir/spec.json" "$1/v1/sessions" | jq -r .id)
    wait_done "$1" "$id"
}

wait_http() {
    for _ in $(seq 1 100); do
        curl -fsS "$1" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    say "$1 never came up"; return 1
}

say "control run (fleet disabled)"
"$workdir/atfd" -addr 127.0.0.1:7531 -fleet=false -journal-dir "$workdir/control-journals" >/dev/null &
pids="$pids $!"
wait_http http://127.0.0.1:7531/v1/healthz
control=$(run_session http://127.0.0.1:7531)

say "fleet run (two workers, one killed mid-tune)"
"$workdir/atfd" -addr 127.0.0.1:7532 -worker-heartbeat 100ms -straggler-after 1s \
    -journal-dir "$workdir/fleet-journals" >/dev/null &
pids="$pids $!"
wait_http http://127.0.0.1:7532/v1/healthz
"$workdir/atf-worker" -coordinator http://127.0.0.1:7532 -addr 127.0.0.1:7533 -name steady >/dev/null &
pids="$pids $!"
"$workdir/atf-worker" -coordinator http://127.0.0.1:7532 -addr 127.0.0.1:7534 -name doomed >/dev/null &
doomed=$!
pids="$pids $doomed"
for _ in $(seq 1 100); do
    [ "$(curl -fsS http://127.0.0.1:7532/v1/workers | jq 'length')" = 2 ] && break
    sleep 0.1
done
[ "$(curl -fsS http://127.0.0.1:7532/v1/workers | jq 'length')" = 2 ] || {
    say "workers never registered"; exit 1
}

id=$(curl -fsS -d @"$workdir/spec.json" http://127.0.0.1:7532/v1/sessions | jq -r .id)
# Let the fleet commit a real prefix, then SIGKILL one worker mid-tune.
for _ in $(seq 1 300); do
    evals=$(curl -fsS "http://127.0.0.1:7532/v1/sessions/$id" | jq .evaluations)
    [ "$evals" -ge 100 ] && break
    sleep 0.05
done
say "killing worker 'doomed' after $evals evaluations"
kill -9 "$doomed"
fleet=$(wait_done http://127.0.0.1:7532 "$id")

for field in state evaluations valid best best_cost; do
    c=$(echo "$control" | jq -c ".$field")
    f=$(echo "$fleet" | jq -c ".$field")
    if [ "$c" != "$f" ]; then
        say "MISMATCH on $field: control=$c fleet=$f"
        exit 1
    fi
done
say "PASS: fleet run identical to control ($(echo "$fleet" | jq -c '{evaluations, best, best_cost}'))"
