package harness

import (
	"fmt"
	"math"

	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/oclc"
	"atf/internal/opencl"
	"atf/internal/opentuner"
	"atf/internal/search"
)

// Options scales the experiments; the zero value selects the defaults the
// recorded EXPERIMENTS.md numbers were produced with.
type Options struct {
	Seed int64
	// RangeCap bounds the XgemmDirect integer ranges (default 64).
	RangeCap int64
	// ATFEvals is the evaluation budget of ATF's annealing per (IS,
	// device) pair (default 400).
	ATFEvals uint64
	// OpenTunerEvals is the §VI-B baseline budget (default 10000, the
	// paper's number).
	OpenTunerEvals int
	// DevOptEvals bounds the CLTune device-optimization run at 256×256
	// (default 120).
	DevOptEvals int
	Workers     int
	// Parallelism is the number of concurrent cost evaluators per tuning
	// run (Tuner.Parallelism semantics: 0/1 sequential, -1 = NumCPU).
	Parallelism int
	// Engine selects the oclc execution engine for every kernel launch of
	// the run (cmd/atf-experiments -engine). The zero value keeps the
	// process default (the bytecode VM); oclc.EngineWalk is the
	// tree-walking reference interpreter.
	Engine oclc.Engine
}

// explore dispatches a tuning run to the sequential or parallel engine
// according to opts.Parallelism, so every experiment honors the CLI's
// -parallelism flag through one seam.
func (o Options) explore(space *core.Space, tech core.Technique, cf core.CostFunction,
	abort core.AbortCondition, eo core.ExploreOptions) (*core.Result, error) {
	if o.Parallelism == 0 || o.Parallelism == 1 {
		return core.Explore(space, tech, cf, abort, eo)
	}
	return core.ExploreParallel(space, tech, cf, abort, core.ParallelOptions{
		ExploreOptions: eo,
		Workers:        o.Parallelism,
	})
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RangeCap == 0 {
		o.RangeCap = 64
	}
	if o.ATFEvals == 0 {
		o.ATFEvals = 400
	}
	if o.OpenTunerEvals == 0 {
		o.OpenTunerEvals = 10000
	}
	if o.DevOptEvals == 0 {
		o.DevOptEvals = 120
	}
	if o.Engine != oclc.EngineDefault {
		oclc.SetDefaultEngine(o.Engine)
	}
}

// Fig2Row is one bar pair of Figure 2.
type Fig2Row struct {
	IS                 string
	ATFNs              float64
	CLTuneNs           float64
	OpenTunerNs        float64
	SpeedupVsCLTune    float64
	SpeedupVsOpenTuner float64
	OpenTunerValid     int
	ATFBest            *core.Config
}

// Fig2Result is one side (device) of Figure 2.
type Fig2Result struct {
	Device string
	Rows   []Fig2Row
	// DeviceOptimized is the configuration CLBlast's CLTune setup
	// determined at 256×256 — the fallback the restricted spaces force.
	DeviceOptimized *core.Config
}

// Fig2 reproduces one half of the paper's Figure 2 — the speedup of the
// ATF-tuned XgemmDirect over the CLTune- and OpenTuner-tuned kernel on one
// device, for the four Caffe input sizes.
//
// Baseline mechanics follow §VI exactly:
//   - The CLTune path uses CLBlast's restricted ranges with the
//     global-size divisibility constraints; on every deep-learning size
//     that space is empty, so the kernel falls back to the
//     device-optimized values tuned at the average size 256×256.
//   - The OpenTuner path tunes the raw unconstrained space with a penalty
//     for constraint violations; with a valid fraction around 10^-7 it
//     (almost surely) finds nothing and the kernel falls back to its
//     built-in defaults.
//   - ATF tunes the full constrained space (no artificial range limits,
//     no global-size constraints) with simulated annealing.
func Fig2(deviceName string, opts Options) (*Fig2Result, error) {
	opts.defaults()
	dev, err := opencl.FindDevice("", deviceName)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Device: dev.Name()}

	// The full ATF space is shape-independent (the relaxed variant has no
	// global-size constraints); generate it once and reuse it.
	atfParams := clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap:         opts.RangeCap,
		MaxWorkGroupSize: int64(dev.Desc.MaxWorkGroupSize),
		LocalMemBytes:    int64(dev.Desc.LocalMemBytes),
	})
	space, err := core.GenerateFlat(atfParams, core.GenOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}

	devOpt, err := deviceOptimized(dev, opts)
	if err != nil {
		return nil, err
	}
	res.DeviceOptimized = devOpt

	for _, shape := range clblast.CaffeInputSizes() {
		eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)

		// --- ATF -----------------------------------------------------
		// The annealer warm-starts at the kernel's shipped defaults (a
		// configuration every CLBlast user has) and restarts after runs
		// of rejected moves — standard practitioner moves that the
		// paper's 10-minute budgets subsume.
		atfRes, err := opts.explore(space,
			&search.Annealing{Start: clblast.DefaultConfig(), RestartAfter: 25},
			eval.CostFunction(),
			core.Evaluations(opts.ATFEvals),
			core.ExploreOptions{Seed: opts.Seed, CacheCosts: true})
		if err != nil {
			return nil, err
		}
		if atfRes.Best == nil {
			return nil, fmt.Errorf("harness: ATF found no valid configuration for %s", shape)
		}
		atfNs := atfRes.BestCost.Primary()

		// --- CLTune --------------------------------------------------
		// Restricted space for this shape; empty on all Caffe sizes, so
		// the kernel runs with the device-optimized values.
		cltuneCfg := devOpt
		restricted := clblast.RestrictedParams(shape,
			int64(dev.Desc.MaxWorkGroupSize), int64(dev.Desc.LocalMemBytes))
		rsp, err := core.GenerateFlat(restricted, core.GenOptions{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		if rsp.Size() > 0 {
			// On sizes where the restricted space exists, CLTune tunes it.
			r, err := opts.explore(rsp, search.NewAnnealing(), eval.CostFunction(),
				core.Evaluations(minU64(rsp.Size(), opts.ATFEvals)),
				core.ExploreOptions{Seed: opts.Seed, CacheCosts: true})
			if err != nil {
				return nil, err
			}
			if r.Best != nil {
				cltuneCfg = r.Best
			}
		}
		cltuneNs, err := eval.Eval(cltuneCfg)
		if err != nil {
			return nil, fmt.Errorf("harness: CLTune fallback config failed on %s: %w", shape, err)
		}

		// --- OpenTuner -----------------------------------------------
		raw := &opentuner.RawTuner{
			Params: atfParams,
			Validate: func(cfg *core.Config) bool {
				return clblast.ValidateConfig(cfg, atfParams)
			},
		}
		otRun, err := raw.Tune(eval.CostFunction(), opts.OpenTunerEvals, opts.Seed)
		if err != nil {
			return nil, err
		}
		otCfg := otRun.Best
		if otCfg == nil {
			otCfg = clblast.DefaultConfig() // §VI-B: fall back to defaults
		}
		otNs, err := eval.Eval(otCfg)
		if err != nil {
			return nil, fmt.Errorf("harness: OpenTuner fallback config failed on %s: %w", shape, err)
		}

		res.Rows = append(res.Rows, Fig2Row{
			IS:                 shape.Name,
			ATFNs:              atfNs,
			CLTuneNs:           cltuneNs,
			OpenTunerNs:        otNs,
			SpeedupVsCLTune:    cltuneNs / atfNs,
			SpeedupVsOpenTuner: otNs / atfNs,
			OpenTunerValid:     otRun.ValidEvals,
			ATFBest:            atfRes.Best,
		})
	}
	return res, nil
}

// deviceOptimized reproduces CLBlast's stock tuning: CLTune's annealing
// over the restricted ranges at the average input size 256×256 — the
// values the kernel falls back to when the per-size space is empty.
func deviceOptimized(dev *opencl.Device, opts Options) (*core.Config, error) {
	shape := clblast.GemmShape{Name: "avg256", M: 256, N: 256, K: 256}
	params := clblast.RestrictedParams(shape,
		int64(dev.Desc.MaxWorkGroupSize), int64(dev.Desc.LocalMemBytes))
	sp, err := core.GenerateFlat(params, core.GenOptions{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	if sp.Size() == 0 {
		return nil, fmt.Errorf("harness: restricted space empty at 256x256?")
	}
	eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
	r, err := opts.explore(sp, search.NewAnnealing(), eval.CostFunction(),
		core.Evaluations(minU64(sp.Size(), uint64(opts.DevOptEvals))),
		core.ExploreOptions{Seed: opts.Seed, CacheCosts: true})
	if err != nil {
		return nil, err
	}
	if r.Best == nil {
		return nil, fmt.Errorf("harness: device optimization found nothing")
	}
	return r.Best, nil
}

// Fig2Table renders a Fig2Result.
func Fig2Table(r *Fig2Result, id string) *Table {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Fig. 2 — speedup of ATF-tuned XgemmDirect on %s", r.Device),
		Columns: []string{"IS", "ATF", "CLTune", "OpenTuner",
			"speedup vs CLTune", "speedup vs OpenTuner"},
	}
	minCL, maxCL := math.Inf(1), math.Inf(-1)
	minOT, maxOT := math.Inf(1), math.Inf(-1)
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.IS, ns2ms(row.ATFNs), ns2ms(row.CLTuneNs), ns2ms(row.OpenTunerNs),
			f2(row.SpeedupVsCLTune) + "x", f2(row.SpeedupVsOpenTuner) + "x",
		})
		minCL = math.Min(minCL, row.SpeedupVsCLTune)
		maxCL = math.Max(maxCL, row.SpeedupVsCLTune)
		minOT = math.Min(minOT, row.SpeedupVsOpenTuner)
		maxOT = math.Max(maxOT, row.SpeedupVsOpenTuner)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speedup vs CLTune ranges %.2fx–%.2fx; vs OpenTuner %.2fx–%.2fx",
			minCL, maxCL, minOT, maxOT),
		fmt.Sprintf("CLTune fallback (device-optimized at 256x256): %s", r.DeviceOptimized))
	return t
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// DeviceOptimized exposes the CLBlast-style device optimization (CLTune
// annealing over the restricted ranges at 256×256) for diagnostics and
// the E7 experiment.
func DeviceOptimized(dev *opencl.Device, opts Options) (*core.Config, error) {
	opts.defaults()
	return deviceOptimized(dev, opts)
}
