package oclc

// Parse compiles preprocessed source into a Program. Variable references
// are resolved to frame slots during parsing, so the interpreter never
// performs name lookups on the hot path.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Funcs: make(map[string]*Function), Source: src}
	for !p.at(TokEOF) {
		fn, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funcs[fn.Name]; dup {
			return nil, errf(Pos{}, "duplicate function %q", fn.Name)
		}
		prog.Funcs[fn.Name] = fn
	}
	return prog, nil
}

// Compile preprocesses and parses in one step — the shape of a real
// clBuildProgram call with -D options.
func Compile(source string, defines map[string]string) (*Program, error) {
	pp, err := Preprocess(source, defines)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(pp)
	if err != nil {
		return nil, err
	}
	// Lower to bytecode while the define-set is still in scope: the source
	// has been specialized by Preprocess, so constant folding here is
	// per-configuration specialization. Programs built via bare Parse run
	// on the tree-walking engine.
	prog.lower()
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int

	// current function being parsed
	fn     *Function
	scopes []map[string]int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[p.pos+1] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.cur()
	return t.Kind == TokIdent && t.Text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return errf(p.cur().Pos, "expected %q, found %s", s, p.cur())
	}
	p.next()
	return nil
}

// --- scopes -----------------------------------------------------------

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]int{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) declare(name string, pos Pos) (int, error) {
	top := p.scopes[len(p.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errf(pos, "redeclaration of %q", name)
	}
	slot := p.fn.NumSlots
	p.fn.NumSlots++
	top[name] = slot
	return slot, nil
}

func (p *parser) lookup(name string) (int, bool) {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

// --- types ------------------------------------------------------------

var typeNames = map[string]ValKind{
	"void": KVoid, "bool": KBool,
	"char": KInt, "uchar": KInt, "short": KInt, "ushort": KInt,
	"int": KInt, "uint": KInt, "long": KInt, "ulong": KInt, "size_t": KInt,
	"float": KFloat, "double": KFloat, "half": KFloat,
	"real": KFloat, // CLBlast's precision-switch typedef
}

var qualifiers = map[string]bool{
	"const": true, "restrict": true, "volatile": true, "inline": true,
	"static": true, "unsigned": true, "signed": true,
}

// tryType attempts to parse "[qualifiers] [addrspace] base [*]" and
// reports whether a type was present.
func (p *parser) tryType() (Type, bool) {
	start := p.pos
	ty := Type{Space: SpacePrivate}
	seenBase := false
	for p.at(TokIdent) {
		t := p.cur().Text
		switch {
		case t == "__global" || t == "global":
			ty.Space = SpaceGlobal
			p.next()
		case t == "__local" || t == "local":
			ty.Space = SpaceLocal
			p.next()
		case t == "__private" || t == "private" || t == "__constant" || t == "constant":
			p.next()
		case qualifiers[t]:
			if t == "unsigned" || t == "signed" {
				ty.Kind = KInt
				seenBase = true
			}
			p.next()
		default:
			if k, ok := typeNames[t]; ok {
				ty.Kind = k
				seenBase = true
				p.next()
			} else {
				if !seenBase {
					p.pos = start
					return Type{}, false
				}
				goto done
			}
		}
	}
done:
	if !seenBase {
		p.pos = start
		return Type{}, false
	}
	for p.atPunct("*") {
		ty.Ptr = true
		p.next()
	}
	return ty, true
}

// --- functions --------------------------------------------------------

func (p *parser) parseFunction() (*Function, error) {
	fn := &Function{}
	for p.atIdent("__kernel") || p.atIdent("kernel") {
		fn.Kernel = true
		p.next()
	}
	ret, ok := p.tryType()
	if !ok {
		return nil, errf(p.cur().Pos, "expected function return type, found %s", p.cur())
	}
	fn.Ret = ret
	if !p.at(TokIdent) {
		return nil, errf(p.cur().Pos, "expected function name, found %s", p.cur())
	}
	fn.Name = p.next().Text

	p.fn = fn
	p.scopes = nil
	p.pushScope()
	defer func() { p.fn = nil; p.scopes = nil }()

	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		ty, ok := p.tryType()
		if !ok {
			return nil, errf(p.cur().Pos, "expected parameter type, found %s", p.cur())
		}
		if ty.Kind == KVoid && !ty.Ptr {
			break // f(void)
		}
		if !p.at(TokIdent) {
			return nil, errf(p.cur().Pos, "expected parameter name, found %s", p.cur())
		}
		nameTok := p.next()
		slot, err := p.declare(nameTok.Text, nameTok.Pos)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, FuncParam{Name: nameTok.Text, Type: ty, Slot: slot})
		if p.atPunct(",") {
			p.next()
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// --- statements -------------------------------------------------------

func (p *parser) parseBlock() (*Block, error) {
	pos := p.cur().Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	blk := &Block{Pos: pos}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, errf(pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokPragma:
		p.next()
		// Attach to the following for-loop.
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if f, ok := s.(*For); ok {
			f.Unroll = t.Int
		}
		return s, nil
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		p.next()
		return &Block{Pos: t.Pos}, nil
	case p.atIdent("if"):
		return p.parseIf()
	case p.atIdent("for"):
		return p.parseFor()
	case p.atIdent("while"):
		return p.parseWhile()
	case p.atIdent("return"):
		p.next()
		r := &Return{Pos: t.Pos}
		if !p.atPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		return r, p.expectPunct(";")
	case p.atIdent("break"):
		p.next()
		return &BreakStmt{Pos: t.Pos}, p.expectPunct(";")
	case p.atIdent("continue"):
		p.next()
		return &ContinueStmt{Pos: t.Pos}, p.expectPunct(";")
	}
	// Declaration?
	if ds, ok, err := p.tryDecl(); err != nil {
		return nil, err
	} else if ok {
		return ds, nil
	}
	// Expression statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.Pos, X: x}, p.expectPunct(";")
}

// tryDecl parses "type name [dims] [= init] (, name ...)* ;" if present.
func (p *parser) tryDecl() (Stmt, bool, error) {
	start := p.pos
	pos := p.cur().Pos
	ty, ok := p.tryType()
	if !ok {
		return nil, false, nil
	}
	if !p.at(TokIdent) {
		p.pos = start
		return nil, false, nil
	}
	ds := &DeclStmt{Pos: pos}
	for {
		nameTok := p.next()
		d := &VarDecl{Pos: nameTok.Pos, Name: nameTok.Text, Type: ty}
		for p.atPunct("[") {
			p.next()
			dim, err := p.parseExpr()
			if err != nil {
				return nil, false, err
			}
			d.Dims = append(d.Dims, dim)
			if err := p.expectPunct("]"); err != nil {
				return nil, false, err
			}
		}
		if len(d.Dims) > 2 {
			return nil, false, errf(d.Pos, "arrays of more than 2 dimensions not supported")
		}
		if p.atPunct("=") {
			p.next()
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, false, err
			}
			d.Init = init
		}
		slot, err := p.declare(d.Name, d.Pos)
		if err != nil {
			return nil, false, err
		}
		d.Slot = slot
		ds.Decls = append(ds.Decls, d)
		if p.atPunct(",") {
			p.next()
			if !p.at(TokIdent) {
				return nil, false, errf(p.cur().Pos, "expected declarator after ','")
			}
			continue
		}
		break
	}
	return ds, true, p.expectPunct(";")
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &If{Pos: pos, Cond: cond, Then: then}
	if p.atIdent("else") {
		p.next()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.next().Pos // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	st := &For{Pos: pos}
	if !p.atPunct(";") {
		if ds, ok, err := p.tryDecl(); err != nil {
			return nil, err
		} else if ok {
			st.Init = ds
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{Pos: pos, X: x}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.atPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Pos: pos, Cond: cond, Body: body}, nil
}

// --- expressions ------------------------------------------------------

// parseExpr parses a full expression including comma-free assignment.
func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		switch lhs.(type) {
		case *VarRef, *Index:
		default:
			return nil, errf(t.Pos, "invalid assignment target")
		}
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: t.Pos, Op: t.Text, Target: lhs, Value: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return c, nil
	}
	pos := p.next().Pos
	t, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	f, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{Pos: pos, C: c, T: t, F: f}, nil
}

// binary operator precedence, C-like (higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.Pos, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "+":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{Pos: t.Pos, Op: t.Text, X: x}, nil
		case "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos: t.Pos, Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			save := p.pos
			p.next()
			if ty, ok := p.tryType(); ok && p.atPunct(")") {
				p.next()
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{Pos: t.Pos, To: ty, X: x}, nil
			}
			p.pos = save
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.atPunct("["):
			idx := &Index{Pos: t.Pos, Base: x, Site: p.fn.siteCount}
			p.fn.siteCount++
			for p.atPunct("[") {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				idx.Idx = append(idx.Idx, e)
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
			}
			if len(idx.Idx) > 2 {
				return nil, errf(t.Pos, "more than 2 subscripts not supported")
			}
			x = idx
		case p.atPunct("++"), p.atPunct("--"):
			p.next()
			x = &Unary{Pos: t.Pos, Op: t.Text, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{Pos: t.Pos, V: t.Flt}, nil
	case TokIdent:
		switch t.Text {
		case "true":
			p.next()
			return &IntLit{Pos: t.Pos, V: 1}, nil
		case "false":
			p.next()
			return &IntLit{Pos: t.Pos, V: 0}, nil
		}
		p.next()
		if p.atPunct("(") {
			p.next()
			call := &Call{Pos: t.Pos, Name: t.Text}
			for !p.atPunct(")") {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.atPunct(",") {
					p.next()
				}
			}
			p.next() // )
			return call, nil
		}
		slot, ok := p.lookup(t.Text)
		if !ok {
			return nil, errf(t.Pos, "undeclared identifier %q (tuning parameter not substituted?)", t.Text)
		}
		return &VarRef{Pos: t.Pos, Name: t.Text, Slot: slot}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expectPunct(")")
		}
	}
	return nil, errf(t.Pos, "unexpected token %s", t)
}
