package atf_test

import (
	"testing"
	"time"

	"atf"
	"atf/internal/clblast"
)

// TestFacadeWrappers exercises the thin public wrappers that forward to
// internal/core, so a drifting signature or a mis-wired alias cannot slip
// through unnoticed.
func TestFacadeWrappers(t *testing.T) {
	// Ranges.
	if atf.Interval(1, 5).Len() != 5 {
		t.Error("Interval")
	}
	if atf.SteppedInterval(0, 10, 5).Len() != 3 {
		t.Error("SteppedInterval")
	}
	if atf.FloatInterval(0, 1, 0.5).Len() != 3 {
		t.Error("FloatInterval")
	}
	if atf.Set(1, 2, 4).Len() != 3 {
		t.Error("Set")
	}
	if atf.Bools().Len() != 2 {
		t.Error("Bools")
	}

	// Values.
	if atf.Int(3).Int() != 3 || atf.Float(1.5).Float() != 1.5 ||
		!atf.Bool(true).Bool() || atf.Str("simd").Str() != "simd" {
		t.Error("value constructors")
	}

	// Constraints over a 1-D space.
	n8 := atf.TP("X", atf.Interval(1, 8),
		atf.And(atf.GreaterThan(1), atf.LessThan(8), atf.Unequal(5)))
	sp, err := atf.GenerateSpace(1, n8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 5 { // 2,3,4,6,7
		t.Errorf("constraint combination: size = %d, want 5", sp.Size())
	}

	or := atf.TP("Y", atf.Interval(1, 10), atf.Or(atf.Equal(2), atf.Equal(9)))
	sp2, err := atf.GenerateSpace(1, or)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Size() != 2 {
		t.Errorf("Or: size = %d, want 2", sp2.Size())
	}

	not := atf.TP("Z", atf.Interval(1, 4), atf.Not(atf.Equal(3)))
	sp3, err := atf.GenerateSpace(1, not)
	if err != nil {
		t.Fatal(err)
	}
	if sp3.Size() != 3 {
		t.Errorf("Not: size = %d, want 3", sp3.Size())
	}

	where := atf.TP("W", atf.Interval(1, 9),
		atf.Where(func(v atf.Value) bool { return v.Int()%3 == 0 }))
	sp4, err := atf.GenerateSpace(1, where)
	if err != nil {
		t.Fatal(err)
	}
	if sp4.Size() != 3 {
		t.Errorf("Where: size = %d, want 3", sp4.Size())
	}

	multiple := atf.TP("M", atf.Interval(1, 12), atf.IsMultipleOf(4))
	sp5, err := atf.GenerateSpace(1, multiple)
	if err != nil {
		t.Fatal(err)
	}
	if sp5.Size() != 3 {
		t.Errorf("IsMultipleOf: size = %d, want 3", sp5.Size())
	}

	gte := atf.TP("G", atf.Interval(1, 5), atf.GreaterThan(3))
	sp6, err := atf.GenerateGroupedSpace(1, atf.G(gte))
	if err != nil {
		t.Fatal(err)
	}
	if sp6.Size() != 2 {
		t.Errorf("GenerateGroupedSpace: size = %d, want 2", sp6.Size())
	}
}

func TestFacadeAbortConditionsAndOrders(t *testing.T) {
	x := atf.TP("X", atf.Interval(1, 100))
	calls := 0
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		calls++
		return atf.Cost{float64(c.Int("X")), 1}, nil
	})

	// Fraction.
	res, err := atf.Tuner{Abort: atf.Fraction(0.1)}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 10 {
		t.Errorf("Fraction: evals = %d, want 10", res.Evaluations)
	}

	// CostBelow stops as soon as the exhaustive walker hits X=1 (first).
	res, err = atf.Tuner{Abort: atf.CostBelow(1)}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 1 {
		t.Errorf("CostBelow: evals = %d, want 1", res.Evaluations)
	}

	// Speedup conditions wired through (exercise, not re-proven here —
	// the semantics are tested in internal/core).
	res, err = atf.Tuner{
		Technique: atf.RandomSearch(),
		Abort: atf.AbortOr(
			atf.SpeedupEvaluations(1.01, 30),
			atf.Evaluations(500),
			atf.AbortAnd(atf.Duration(time.Hour), atf.Evaluations(1000)),
		),
	}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations > 500 {
		t.Errorf("combined abort misbehaved: %d evals", res.Evaluations)
	}

	_ = atf.SpeedupDuration(1.1, time.Second) // constructor wiring

	// Orders.
	if !atf.LexOrder()(atf.Cost{1, 9}, atf.Cost{1, 10}) {
		t.Error("LexOrder")
	}
	if !atf.WeightedSum(0, 1)(atf.Cost{5, 1}, atf.Cost{1, 5}) {
		t.Error("WeightedSum")
	}
}

func TestFacadeTechniques(t *testing.T) {
	x := atf.TP("X", atf.Interval(1, 64))
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		d := float64(c.Int("X") - 40)
		return atf.Cost{d * d}, nil
	})
	for _, tech := range []atf.Technique{
		atf.Exhaustive(),
		atf.SimulatedAnnealing(),
		atf.SimulatedAnnealingT(2, 0.99),
		atf.OpenTunerSearch(),
		atf.RandomSearch(),
		atf.LocalSearch(4),
	} {
		res, err := atf.Tuner{Technique: tech, Abort: atf.Evaluations(64), Seed: 7}.Tune(cf, x)
		if err != nil {
			t.Fatalf("%T: %v", tech, err)
		}
		if res.Best == nil {
			t.Fatalf("%T found nothing", tech)
		}
	}
}

func TestFacadeTuneConvenience(t *testing.T) {
	x := atf.TP("X", atf.Interval(1, 10))
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		return atf.Cost{float64(c.Int("X"))}, nil
	})
	res, err := atf.Tune(atf.Exhaustive(), nil, cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("X") != 1 {
		t.Fatalf("best = %v", res.Best)
	}
}

func TestScalarArgVariants(t *testing.T) {
	// All supported scalar argument types construct; unsupported panics.
	atf.Scalar(int(1))
	atf.Scalar(int32(1))
	atf.Scalar(int64(1))
	atf.Scalar(float32(1))
	atf.Scalar(float64(1))
	atf.Buffer([]float32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported scalar type must panic")
		}
	}()
	atf.Scalar("nope")
}

func TestOpenCLCostFunctionValidation(t *testing.T) {
	_, err := (&atf.OpenCL{Platform: "NVIDIA", Device: "K20m"}).CostFunction()
	if err == nil {
		t.Fatal("missing sizes must error")
	}
	_, err = (&atf.OpenCL{
		Platform: "AMD", Device: "Fiji",
		GlobalSize: func(*atf.Config) []int64 { return []int64{1} },
		LocalSize:  func(*atf.Config) []int64 { return []int64{1} },
	}).CostFunction()
	if err == nil {
		t.Fatal("unknown device must error")
	}
	_, err = (&atf.CUDA{Device: "K20m"}).CostFunction()
	if err == nil {
		t.Fatal("missing grid/block must error")
	}
	_, err = (&atf.CUDA{
		Device:   "DoesNotExist",
		GridDim:  func(*atf.Config) int64 { return 1 },
		BlockDim: func(*atf.Config) int64 { return 1 },
	}).CostFunction()
	if err == nil {
		t.Fatal("unknown CUDA device must error")
	}
}

func TestOpenCLVerify(t *testing.T) {
	// Verify runs the winning configuration functionally and hands the
	// buffers to the user's check — the optional error checking of the
	// paper's OpenCL cost function.
	const n = 256
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}
	o := &atf.OpenCL{
		Platform: "NVIDIA", Device: "K20m",
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), atf.Scalar(float32(2)),
			atf.Buffer(x), atf.Buffer(y),
		},
		GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
	}
	cfg := atf.TP("WPT", atf.Set(4))
	ls := atf.TP("LS", atf.Set(8))
	sp, err := atf.GenerateSpace(1, cfg, ls)
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	err = o.Verify(sp.At(0), func(buffers [][]float32) error {
		checked = true
		if len(buffers) != 2 {
			t.Fatalf("expected x and y buffers, got %d", len(buffers))
		}
		got := buffers[1] // y after saxpy
		for i := range got {
			want := 2*float32(i) + 1
			if got[i] != want {
				t.Fatalf("y[%d] = %v, want %v", i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("check callback never ran")
	}
}

// TestFacadeParallelism runs the full public path — Tuner with Parallelism —
// against the simulated OpenCL device, exercising per-worker cost-function
// clones and the shared compiled-program cache under concurrency. The
// exhaustive search must return the same best configuration at any
// parallelism.
func TestFacadeParallelism(t *testing.T) {
	const n = 64
	mk := func() (atf.CostFunction, error) {
		return (&atf.OpenCL{
			Platform: "NVIDIA", Device: "K20m",
			Source: clblast.SaxpySource, Kernel: "saxpy",
			Args: []atf.KernelArg{
				atf.Scalar(int32(n)), atf.RandomScalar(),
				atf.RandomBuffer(n), atf.RandomBuffer(n),
			},
			GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
			LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
		}).CostFunction()
	}
	params := func() []*atf.Param {
		wpt := atf.TP("WPT", atf.Interval(1, int64(n)), atf.Divides(int64(n)))
		ls := atf.TP("LS", atf.Interval(1, int64(n)),
			atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
		return []*atf.Param{wpt, ls}
	}

	cf, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := atf.Tuner{}.Tune(cf, params()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cf.(atf.CloneableCostFunction); !ok {
		t.Fatal("OpenCL cost function must be cloneable for parallel workers")
	}

	for _, par := range []int{2, 8, atf.AutoParallelism} {
		cf, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := atf.Tuner{Parallelism: par}.Tune(cf, params()...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluations != seq.Evaluations || res.Valid != seq.Valid {
			t.Fatalf("parallelism %d: counters (%d,%d) vs sequential (%d,%d)",
				par, res.Evaluations, res.Valid, seq.Evaluations, seq.Valid)
		}
		if res.Best.Int("WPT") != seq.Best.Int("WPT") || res.Best.Int("LS") != seq.Best.Int("LS") {
			t.Fatalf("parallelism %d: best %v differs from sequential %v", par, res.Best, seq.Best)
		}
	}
}
