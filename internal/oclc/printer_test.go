package oclc

import (
	"strings"
	"testing"
)

func TestDumpRoundTripsSaxpy(t *testing.T) {
	prog, err := Compile(saxpyKernel, map[string]string{"WPT": "4"})
	if err != nil {
		t.Fatal(err)
	}
	dump := prog.Dump()
	if !strings.Contains(dump, "__kernel void saxpy") {
		t.Fatalf("dump missing kernel header:\n%s", dump)
	}
	// Tuning parameters have been substituted: WPT is gone, "4" is in.
	if strings.Contains(dump, "WPT") {
		t.Fatalf("unsubstituted parameter survived:\n%s", dump)
	}

	// The dump must re-parse and behave identically.
	prog2, err := Parse(dump)
	if err != nil {
		t.Fatalf("dump does not re-parse: %v\n%s", err, dump)
	}
	run := func(p *Program) []float64 {
		const n = 16
		x := NewGlobalMemory(1, KFloat, 4, n)
		y := NewGlobalMemory(2, KFloat, 4, n)
		for i := 0; i < n; i++ {
			x.Data[i] = float64(i)
			y.Data[i] = 1
		}
		_, err := p.Launch("saxpy",
			[]Arg{IntArg(n), FloatArg(2), BufArg(x), BufArg(y)},
			NDRange1D(n/4, 2), ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return y.Data
	}
	a, b := run(prog), run(prog2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roundtrip changed semantics at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDumpRoundTripsXgemmDirect(t *testing.T) {
	defines := map[string]string{
		"WGD": "16", "KWID": "2", "MDIMCD": "8", "NDIMCD": "8",
		"MDIMAD": "8", "NDIMBD": "8", "VWMD": "1", "VWND": "1",
		"PADA": "1", "PADB": "0",
	}
	src := `
__kernel void XgemmDirect(const int M, const int N, const int K,
                          const float alpha, const float beta,
                          __global float* agm, __global float* bgm,
                          __global float* cgm) {
  __local float alm[WGD][WGD + PADA];
  float cpd[WGD/MDIMCD][WGD/NDIMCD];
  for (int mi = 0; mi < WGD/MDIMCD; mi++) {
    #pragma unroll KWID
    for (int ni = 0; ni < WGD/NDIMCD; ni++) { cpd[mi][ni] = 0.0f; }
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  cgm[0] = alpha * cpd[0][0] + beta;
  alm[0][0] = (M < N && K > 0) ? 1.0f : 0.0f;
}`
	prog, err := Compile(src, defines)
	if err != nil {
		t.Fatal(err)
	}
	dump := prog.Dump()
	if !strings.Contains(dump, "#pragma unroll 2") {
		t.Fatalf("unroll hint lost:\n%s", dump)
	}
	if _, err := Parse(dump); err != nil {
		t.Fatalf("dump does not re-parse: %v\n%s", err, dump)
	}
}

func TestDumpHelperFunctionOrder(t *testing.T) {
	src := `
float helper(const float x) { return x * 2.0f; }
__kernel void k(__global float* o) { o[0] = helper(1.0f); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	dump := prog.Dump()
	hi := strings.Index(dump, "float helper")
	ki := strings.Index(dump, "__kernel void k")
	if hi < 0 || ki < 0 || hi > ki {
		t.Fatalf("helpers must print before kernels:\n%s", dump)
	}
}

func TestDumpControlFlow(t *testing.T) {
	src := `
__kernel void k(__global int* o) {
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) { continue; } else { acc += i; }
    if (i == 7) { break; }
  }
  while (acc > 100) { acc--; }
  o[0] = acc;
  return;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	dump := prog.Dump()
	for _, frag := range []string{"for (", "while (", "continue;", "break;", "return;", "else"} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump missing %q:\n%s", frag, dump)
		}
	}
	prog2, err := Parse(dump)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, dump)
	}
	o1 := NewGlobalMemory(1, KInt, 4, 1)
	o2 := NewGlobalMemory(1, KInt, 4, 1)
	if _, err := prog.Launch("k", []Arg{BufArg(o1)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := prog2.Launch("k", []Arg{BufArg(o2)}, NDRange1D(1, 1), ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] != o2.Data[0] {
		t.Fatalf("semantics changed: %v vs %v", o1.Data[0], o2.Data[0])
	}
}
