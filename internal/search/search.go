// Package search provides ATF's pre-implemented search techniques
// (paper, Section IV): exhaustive search, simulated annealing, and — via
// package opentuner — the OpenTuner ensemble. All techniques implement
// core.Technique; users add their own the same way.
package search

import (
	"math"
	"math/rand"

	"atf/internal/core"
)

// Exhaustive iterates the search space in index order and therefore finds
// the provably best configuration (Section IV-A). finalize and report_cost
// are no-ops, exactly as in the paper.
//
// Enumeration streams through a core.Sweep cursor instead of per-index
// At(i) lookups: one resumable descent is amortized across whole chunks,
// and production of the next chunk overlaps the caller's evaluation of the
// current one. Exhaustive implements core.BatchTechnique directly, so the
// parallel engine (and through it the distributed coordinator's batch
// partitioning) draws whole batches straight off the sweep; the emitted
// sequence is bit-identical to the historical At(0), At(1), ... walk.
type Exhaustive struct {
	sp    *core.Space
	sweep *core.Sweep
	buf   []*core.Config
}

// sequentialChunk is how many configurations GetNextConfig draws from the
// sweep at a time when exhaustive search runs under the sequential engine.
const sequentialChunk = 64

// NewExhaustive returns an exhaustive search technique.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Initialize opens a streaming sweep over the space at index 0.
func (e *Exhaustive) Initialize(sp *core.Space, seed int64) {
	if e.sweep != nil {
		e.sweep.Close()
	}
	e.sp = sp
	e.buf = nil
	e.sweep = sp.Sweep(0, core.SweepOptions{Prefetch: true})
}

// Finalize releases the sweep (draining any prefetch in flight).
func (e *Exhaustive) Finalize() {
	if e.sweep != nil {
		e.sweep.Close()
		e.sweep = nil
	}
	e.buf = nil
}

// GetNextConfig returns each configuration of the space exactly once, then
// nil.
func (e *Exhaustive) GetNextConfig() *core.Config {
	if len(e.buf) == 0 {
		e.buf = e.sweep.NextChunk(sequentialChunk)
		if len(e.buf) == 0 {
			return nil
		}
	}
	c := e.buf[0]
	e.buf = e.buf[1:]
	return c
}

// GetNextBatch returns the next n configurations in index order straight
// off the sweep, a short batch at the end of the space, then nil.
func (e *Exhaustive) GetNextBatch(n int) []*core.Config {
	if len(e.buf) >= n {
		batch := e.buf[:n:n]
		e.buf = e.buf[n:]
		return batch
	}
	batch := e.buf
	e.buf = nil
	if more := e.sweep.NextChunk(n - len(batch)); len(more) > 0 {
		batch = append(batch, more...)
	}
	return batch
}

// ReportCost is void for exhaustive search.
func (e *Exhaustive) ReportCost(core.Cost) {}

// ReportCosts is void for exhaustive search.
func (e *Exhaustive) ReportCosts([]core.Evaluation) {}

// CostOblivious marks exhaustive search as safe for pipelined dispatch:
// the enumeration order never depends on reported costs.
func (e *Exhaustive) CostOblivious() bool { return true }

// DefaultAnnealingTemperature is the temperature the paper reports as
// suitable for OpenCL and CUDA search spaces (T = 4, citing CLTune).
const DefaultAnnealingTemperature = 4.0

// Annealing is simulated annealing over the configuration index space
// (Section IV-B). get_next_config proposes a random neighbour c' of the
// current configuration c; after the cost t' is reported, c' replaces c
// with probability
//
//	P(t, t', T) = exp(-(t'-t)/T)   if t' >= t, else 1.
//
// Costs are normalized by the best cost seen so far, so the acceptance
// probability is scale-free (raw nanosecond differences would make P
// vanish for any kernel slower than a few units).
type Annealing struct {
	// Temperature is the annealing temperature T; 0 selects the paper's
	// default of 4.
	Temperature float64
	// Cooling multiplies the temperature after every step; 1 (default)
	// reproduces the paper's constant-temperature annealer.
	Cooling float64
	// Start warm-starts the walk at a known configuration (e.g. a
	// library's shipped defaults) instead of a random point. The
	// configuration must be a member of the search space; otherwise the
	// start falls back to random.
	Start *core.Config
	// RestartAfter jumps back to the best configuration seen (then, on
	// repeat, to a random point) after this many consecutive rejected
	// moves; 0 disables restarts (the paper's plain annealer).
	RestartAfter int

	sp      *core.Space
	rng     *rand.Rand
	current uint64
	pending uint64
	cost    float64 // current configuration's primary cost
	best    float64 // best primary cost seen (for normalization)
	bestIdx uint64
	rejects int
	atBest  bool
	started bool
	temp    float64
}

// NewAnnealing returns a simulated-annealing technique with the paper's
// default temperature.
func NewAnnealing() *Annealing { return &Annealing{} }

// Initialize allocates the annealer's state for the passed space.
func (a *Annealing) Initialize(sp *core.Space, seed int64) {
	a.sp = sp
	a.rng = rand.New(rand.NewSource(seed))
	a.temp = a.Temperature
	if a.temp <= 0 {
		a.temp = DefaultAnnealingTemperature
	}
	if a.Cooling <= 0 {
		a.Cooling = 1
	}
	a.started = false
	a.cost = math.Inf(1)
	a.best = math.Inf(1)
	a.rejects = 0
	a.atBest = false
}

// Finalize releases the annealer's state.
func (a *Annealing) Finalize() { a.sp = nil }

// GetNextConfig proposes the start configuration first, then a random
// neighbour of the current configuration, with optional restarts.
func (a *Annealing) GetNextConfig() *core.Config {
	switch {
	case !a.started:
		a.pending = a.sp.RandomIndex(a.rng)
		if a.Start != nil {
			if idx, ok := a.sp.IndexOf(a.Start); ok {
				a.pending = idx
			}
		}
	case a.RestartAfter > 0 && a.rejects >= a.RestartAfter:
		a.rejects = 0
		if !a.atBest {
			// First escape: resume from the best point seen.
			a.pending = a.bestIdx
			a.atBest = true
		} else {
			// Still stuck around the best: diversify randomly.
			a.pending = a.sp.RandomIndex(a.rng)
			a.atBest = false
		}
	default:
		a.pending = a.sp.Neighbor(a.current, a.rng)
	}
	return a.sp.At(a.pending)
}

// ReportCost applies the Metropolis acceptance rule to the pending
// configuration.
func (a *Annealing) ReportCost(cost core.Cost) {
	t := cost.Primary()
	if !a.started {
		a.started = true
		a.current, a.cost = a.pending, t
		if t < a.best {
			a.best = t
			a.bestIdx = a.pending
		}
		return
	}
	if t < a.best {
		a.best = t
		a.bestIdx = a.pending
		a.rejects = 0
		a.atBest = false
	} else {
		a.rejects++
	}
	accept := false
	switch {
	case math.IsInf(t, 1):
		accept = false // never walk onto an invalid configuration
	case t <= a.cost || math.IsInf(a.cost, 1):
		accept = true
	default:
		// Normalize by the best cost so far: delta is "how many best-
		// runtimes worse" the candidate is.
		delta := (t - a.cost) / a.best
		accept = a.rng.Float64() < math.Exp(-delta/a.temp)
	}
	if accept {
		a.current, a.cost = a.pending, t
	}
	a.temp *= a.Cooling
}

// Random samples configurations uniformly at random — a useful baseline
// and the behaviour OpenTuner degenerates to on spaces it cannot model.
type Random struct {
	sp  *core.Space
	rng *rand.Rand
}

// NewRandom returns a uniform-random search technique.
func NewRandom() *Random { return &Random{} }

// Initialize seeds the sampler.
func (r *Random) Initialize(sp *core.Space, seed int64) {
	r.sp = sp
	r.rng = rand.New(rand.NewSource(seed))
}

// Finalize is void.
func (r *Random) Finalize() {}

// GetNextConfig returns a uniformly random configuration.
func (r *Random) GetNextConfig() *core.Config { return r.sp.Random(r.rng) }

// ReportCost is void.
func (r *Random) ReportCost(core.Cost) {}

// CostOblivious marks random search as safe for pipelined dispatch: the
// seeded sample sequence never depends on reported costs.
func (r *Random) CostOblivious() bool { return true }

// LocalSearch is a simple first-improvement hill climber over the index
// neighbourhood. It is not in the paper's set of three techniques; it
// exists as the example of extending ATF with a user-defined technique
// (Section IV: "further search techniques can be added by implementing the
// search_technique interface") and is exercised by examples/customsearch.
type LocalSearch struct {
	// Restarts controls how many random restarts follow a local optimum.
	Patience int

	sp      *core.Space
	rng     *rand.Rand
	current uint64
	pending uint64
	cost    float64
	stale   int
	started bool
}

// NewLocalSearch returns a hill climber with the given patience (failed
// moves before a random restart); patience <= 0 defaults to 32.
func NewLocalSearch(patience int) *LocalSearch {
	if patience <= 0 {
		patience = 32
	}
	return &LocalSearch{Patience: patience}
}

// Initialize seeds the climber.
func (l *LocalSearch) Initialize(sp *core.Space, seed int64) {
	l.sp = sp
	l.rng = rand.New(rand.NewSource(seed))
	l.started = false
	l.stale = 0
	l.cost = math.Inf(1)
}

// Finalize is void.
func (l *LocalSearch) Finalize() {}

// GetNextConfig proposes a neighbour, restarting randomly after too many
// non-improving moves.
func (l *LocalSearch) GetNextConfig() *core.Config {
	switch {
	case !l.started:
		l.pending = l.sp.RandomIndex(l.rng)
	case l.stale >= l.Patience:
		l.pending = l.sp.RandomIndex(l.rng)
	default:
		l.pending = l.sp.Neighbor(l.current, l.rng)
	}
	return l.sp.At(l.pending)
}

// ReportCost accepts strictly improving moves.
func (l *LocalSearch) ReportCost(cost core.Cost) {
	t := cost.Primary()
	if !l.started || t < l.cost {
		l.started = true
		l.current, l.cost = l.pending, t
		l.stale = 0
		return
	}
	l.stale++
	if l.stale >= l.Patience {
		// Next GetNextConfig restarts; forget the local cost so the
		// restart point is always adopted.
		l.cost = math.Inf(1)
	}
}
