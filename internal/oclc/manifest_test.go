package oclc

import (
	"fmt"
	"testing"
)

// TestCompileManifestRoundTrip: dumping the cache to a manifest and
// replaying it into an empty cache must make every previously cached
// (source, defines) pair a hit, in the same MRU order.
func TestCompileManifestRoundTrip(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	var defs []map[string]string
	for i := 0; i < 5; i++ {
		d := map[string]string{"FACTOR": fmt.Sprint(i + 2)}
		defs = append(defs, d)
		if _, err := CompileCached(cacheTestKernel, d); err != nil {
			t.Fatal(err)
		}
	}
	// A failed compile must not enter the manifest.
	CompileCached(`__kernel void b(__global float* x) { x[0] = ; }`, nil)

	m := CompileManifest()
	if len(m) != 5 {
		t.Fatalf("manifest has %d entries, want 5", len(m))
	}
	// MRU-first: the last compile comes first.
	if m[0].Defines["FACTOR"] != "6" || m[4].Defines["FACTOR"] != "2" {
		t.Fatalf("manifest order not MRU-first: %v ... %v", m[0].Defines, m[4].Defines)
	}

	ResetCompileCache()
	if warmed := PrewarmCompileCache(m); warmed != 5 {
		t.Fatalf("prewarmed %d programs, want 5", warmed)
	}
	hitsBefore, missesBefore := CompileCacheStats()
	for _, d := range defs {
		if _, err := CompileCached(cacheTestKernel, d); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := CompileCacheStats()
	if hits-hitsBefore != 5 || misses != missesBefore {
		t.Fatalf("after prewarm: %d new hits %d new misses, want 5 hits 0 misses",
			hits-hitsBefore, misses-missesBefore)
	}
}

// TestCompileManifestSurvivesCorruptEntries: unparseable manifest entries
// are skipped, the rest still warm the cache.
func TestCompileManifestSurvivesCorruptEntries(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	m := []ManifestEntry{
		{Source: `__kernel void b(__global float* x) { x[0] = ; }`},
		{Source: cacheTestKernel, Defines: map[string]string{"FACTOR": "2"}},
	}
	if warmed := PrewarmCompileCache(m); warmed != 1 {
		t.Fatalf("prewarmed %d programs, want 1", warmed)
	}
}
