// Package client is the Go client for the atfd daemon's HTTP/JSON API.
// It speaks the same wire types the server defines (atf.Spec in,
// server.Status and server.EvalRecord out), so a tuning session created
// from Go, from curl, or from a journal replay is indistinguishable.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"atf"
	"atf/internal/server"
)

// Client talks to one atfd daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:7521".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry bounds retries of transient failures (refused connections
	// for every method; 5xx/429 additionally for idempotent ones); nil
	// means DefaultRetry.
	Retry *RetryPolicy
}

// New returns a client for the daemon at base.
func New(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retry() RetryPolicy {
	if c.Retry != nil {
		return *c.Retry
	}
	return DefaultRetry
}

// idempotent reports whether a method can be retried after a failure
// that may have reached the server. POSTs are only retried on refused
// connections, where the request was provably never sent.
func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodDelete:
		return true
	}
	return false
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	return c.retry().Do(ctx, func() error {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, reader)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http().Do(req)
		if err != nil {
			if idempotent(method) {
				return Transient(err)
			}
			return err // refused connections stay retryable via IsTransient
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		if err != nil {
			return err
		}
		if resp.StatusCode >= 400 {
			var apiErr struct {
				Error string `json:"error"`
			}
			err := fmt.Errorf("atfd: %s %s: HTTP %d", method, path, resp.StatusCode)
			if json.Unmarshal(payload, &apiErr) == nil && apiErr.Error != "" {
				err = fmt.Errorf("atfd: %s %s: %s", method, path, apiErr.Error)
			}
			if TransientStatus(resp.StatusCode) && idempotent(method) {
				return Transient(err)
			}
			return err
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(payload, out)
	})
}

// Create starts a tuning session from a declarative spec.
func (c *Client) Create(ctx context.Context, spec *atf.Spec) (server.Status, error) {
	var st server.Status
	err := c.do(ctx, http.MethodPost, "/v1/sessions", spec, &st)
	return st, err
}

// List returns the status of every session the daemon knows.
func (c *Client) List(ctx context.Context) ([]server.Status, error) {
	var out []server.Status
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Status returns one session's status.
func (c *Client) Status(ctx context.Context, id string) (server.Status, error) {
	var st server.Status
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Best returns the session's best configuration and cost so far.
func (c *Client) Best(ctx context.Context, id string) (server.BestResponse, error) {
	var best server.BestResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/best", nil, &best)
	return best, err
}

// Cancel terminates a session; it will not resume after a daemon restart.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Evaluations streams the session's committed evaluations starting at
// index from, calling fn for each until the session reaches a terminal
// state, fn returns false, or ctx is canceled.
func (c *Client) Evaluations(ctx context.Context, id string, from int, fn func(server.EvalRecord) bool) error {
	path := fmt.Sprintf("%s/v1/sessions/%s/evaluations?from=%d", c.Base, url.PathEscape(id), from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("atfd: evaluations %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	// A torn trailing line — the server or connection dying mid-record —
	// ends the stream without error; every complete record before it was
	// delivered, and the caller can reconnect with from += records seen.
	_, err = ScanNDJSON(resp.Body, func(line []byte) (bool, error) {
		var rec server.EvalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return false, fmt.Errorf("atfd: bad evaluation line: %w", err)
		}
		return fn(rec), nil
	})
	if err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Wait polls until the session leaves the running state and returns its
// final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != server.StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
