package client_test

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"atf/internal/dist"
	"atf/internal/server"
	"atf/internal/server/client"
)

// fleetDaemon is an atfd instance with the distributed-evaluation
// coordinator wired in, exactly as cmd/atfd does it: the fleet's
// SessionEvaluator factory installed on the manager before any session
// starts, and /v1/workers mounted beside the session API.
type fleetDaemon struct {
	daemon
	fleet *dist.Fleet
}

func startFleetDaemon(t *testing.T, dir string) *fleetDaemon {
	t.Helper()
	m, err := server.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFleet(dist.Options{
		Heartbeat:      50 * time.Millisecond,
		StragglerAfter: 500 * time.Millisecond,
		Retry:          &client.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	m.Evaluator = f.SessionEvaluator
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	top := http.NewServeMux()
	top.Handle("/v1/workers", f.Handler())
	top.Handle("/", (&server.API{Manager: m}).Handler())
	srv := &http.Server{Handler: top}
	go srv.Serve(ln)
	return &fleetDaemon{
		daemon: daemon{manager: m, srv: srv, base: "http://" + ln.Addr().String()},
		fleet:  f,
	}
}

// fleetWorker is one in-process atf-worker: an eval server plus the
// heartbeat loop registering it with a coordinator.
type fleetWorker struct {
	ws     *dist.WorkerServer
	srv    *http.Server
	cancel context.CancelFunc
}

func startWorker(t *testing.T, coordinator, name string) *fleetWorker {
	t.Helper()
	ws := dist.NewWorkerServer(dist.WorkerOptions{Name: name, Parallelism: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: ws.Handler()}
	go srv.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	go dist.RunHeartbeat(ctx, nil, coordinator,
		dist.RegisterRequest{Name: name, URL: "http://" + ln.Addr().String()},
		func(string, ...any) {})
	return &fleetWorker{ws: ws, srv: srv, cancel: cancel}
}

// kill is the SIGKILL-equivalent for a worker: heartbeats stop and
// in-flight eval requests die mid-stream.
func (w *fleetWorker) kill() {
	w.cancel()
	w.srv.Close()
	w.ws.Close()
}

func waitForWorkers(t *testing.T, d *fleetDaemon, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(d.fleet.Registry().Live()) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d live workers", n)
}

// TestFleetEndToEnd is the distributed-evaluation contract over real HTTP:
// a session evaluated by a worker fleet — through a worker kill mid-run, a
// coordinator kill, and a resume with an entirely fresh fleet — finishes
// with exactly the counters, best configuration, and evaluation sequence
// of a plain local daemon running the same spec.
func TestFleetEndToEnd(t *testing.T) {
	ctx := context.Background()
	spec := parseE2ESpec(t)

	// Control: the spec run start-to-finish with no fleet at all.
	control := startDaemon(t, t.TempDir())
	defer control.kill()
	c0 := client.New(control.base)
	st0, err := c0.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c0.Wait(ctx, st0.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want.State != server.StateDone {
		t.Fatalf("control run ended %s (%s)", want.State, want.Error)
	}

	// Experiment: a fleet daemon with two workers.
	dir := t.TempDir()
	d1 := startFleetDaemon(t, dir)
	w1 := startWorker(t, d1.base, "w1")
	w2 := startWorker(t, d1.base, "w2")
	defer w2.kill()
	waitForWorkers(t, d1, 2)

	c1 := client.New(d1.base)
	st1, err := c1.Create(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Stream a real prefix, in order, then kill one worker mid-run: its
	// unfinished partitions must be re-dispatched without a gap or a
	// duplicate in the committed sequence.
	var streamed []server.EvalRecord
	streamCtx, cancelStream := context.WithCancel(ctx)
	err = c1.Evaluations(streamCtx, st1.ID, 0, func(rec server.EvalRecord) bool {
		if rec.Index != uint64(len(streamed)) {
			t.Errorf("stream out of order: got index %d at position %d", rec.Index, len(streamed))
		}
		streamed = append(streamed, rec)
		if len(streamed) == 20 {
			w1.kill()
		}
		return len(streamed) < 40
	})
	cancelStream()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) < 40 {
		t.Fatalf("streamed only %d evaluations", len(streamed))
	}

	// Kill the coordinator too; the journal is the only survivor.
	d1.kill()
	w2.kill()

	// Restart on the same journal directory with an entirely new fleet —
	// fresh coordinator port, fresh workers. The resumed session replays
	// its journaled prefix and dispatches the rest to the new workers.
	d2 := startFleetDaemon(t, dir)
	defer d2.kill()
	w3 := startWorker(t, d2.base, "w3")
	defer w3.kill()
	w4 := startWorker(t, d2.base, "w4")
	defer w4.kill()
	resumed, err := d2.manager.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}

	c2 := client.New(d2.base)
	final, err := c2.Wait(ctx, st1.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("fleet run ended %s (%s)", final.State, final.Error)
	}
	if final.Divergence != "" {
		t.Fatalf("fleet run diverged from its journal: %s", final.Divergence)
	}
	if final.Evaluations != want.Evaluations || final.Valid != want.Valid {
		t.Errorf("fleet counters %d/%d, control %d/%d",
			final.Evaluations, final.Valid, want.Evaluations, want.Valid)
	}
	if !final.Best.Equal(want.Best) || final.BestCost.String() != want.BestCost.String() {
		t.Errorf("fleet best %v/%v, control %v/%v",
			final.Best, final.BestCost, want.Best, want.BestCost)
	}

	// The full fleet-evaluated sequence matches the control run's journal
	// key for key — bit-identical merge is the whole point.
	wantKeys := journalEvalKeys(t, c0, st0.ID, want.Evaluations)
	gotKeys := journalEvalKeys(t, c2, st1.ID, final.Evaluations)
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("evaluation %d: fleet %q, control %q", i, gotKeys[i], wantKeys[i])
		}
	}
	for i, rec := range streamed {
		if gotKeys[i] != rec.Key {
			t.Fatalf("evaluation %d: post-resume journal %q, live stream saw %q", i, gotKeys[i], rec.Key)
		}
	}
}

// journalEvalKeys streams a finished session's full evaluation sequence
// and returns the config keys in index order.
func journalEvalKeys(t *testing.T, c *client.Client, id string, n uint64) []string {
	t.Helper()
	var keys []string
	err := c.Evaluations(context.Background(), id, 0, func(rec server.EvalRecord) bool {
		keys = append(keys, rec.Key)
		return uint64(len(keys)) < n
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(keys)) != n {
		t.Fatalf("streamed %d evaluations, want %d", len(keys), n)
	}
	return keys
}
