package cuda

import (
	"strings"
	"testing"
)

const addKernel = `
__kernel void add(const float v, __global float* data) {
  data[get_global_id(0)] = data[get_global_id(0)] + v;
}`

func TestFindDeviceNVIDIAOnly(t *testing.T) {
	d, err := FindDevice("K20m")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "Tesla K20m" {
		t.Fatalf("found %q", d.Name())
	}
	if d.Desc() == nil {
		t.Fatal("device description missing")
	}
	if _, err := FindDevice("Xeon"); err == nil {
		t.Fatal("CUDA must not find Intel CPUs")
	}
}

func TestCompileAndLaunch(t *testing.T) {
	d, _ := FindDevice("K20c")
	ctx := NewContext(d)
	mod, err := ctx.CompileModule(addKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.Malloc(64)
	res, err := ctx.Launch(mod, "add", 2, 32, float32(5), buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationNs() <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestFunctionalLaunchComputes(t *testing.T) {
	d, _ := FindDevice("K20m")
	ctx := NewContext(d)
	ctx.SetFunctional(true)
	mod, err := ctx.CompileModule(addKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.Malloc(64)
	if _, err := ctx.Launch(mod, "add", 2, 32, float32(5), buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf.Read() {
		if v != 5 {
			t.Fatalf("element %d = %v, want 5", i, v)
		}
	}
}

func TestLaunch2D(t *testing.T) {
	d, _ := FindDevice("K20m")
	ctx := NewContext(d)
	ctx.SetFunctional(true)
	src := `
__kernel void fill(__global float* data, const int w) {
  data[get_global_id(1)*w + get_global_id(0)] = 1.0f;
}`
	mod, err := ctx.CompileModule(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.Malloc(64)
	if _, err := ctx.Launch2D(mod, "fill", 2, 2, 4, 4, buf, int32(8)); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf.Read() {
		if v != 1 {
			t.Fatalf("element %d untouched", i)
		}
	}
}

func TestNVRTCErrorPrefix(t *testing.T) {
	d, _ := FindDevice("K20m")
	ctx := NewContext(d)
	_, err := ctx.CompileModule("__kernel void broken( {", nil)
	if err == nil || !strings.Contains(err.Error(), "nvrtc") {
		t.Fatalf("want nvrtc-flavoured error, got %v", err)
	}
}

func TestDefinesReachKernel(t *testing.T) {
	d, _ := FindDevice("K20m")
	ctx := NewContext(d)
	ctx.SetFunctional(true)
	src := `__kernel void k(__global float* o) { o[get_global_id(0)] = TP; }`
	mod, err := ctx.CompileModule(src, map[string]string{"TP": "7"})
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.Malloc(4)
	if _, err := ctx.Launch(mod, "k", 1, 4, buf); err != nil {
		t.Fatal(err)
	}
	if buf.Read()[0] != 7 {
		t.Fatal("define lost")
	}
}
