package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/oclc"
	"atf/internal/opencl"
)

// InterpRow is one engine's measurement in the E11 ablation.
type InterpRow struct {
	Engine    string
	NsPerEval float64
	Speedup   float64 // vs the walker reference
}

// InterpResult is experiment E11: the kernel-interpreter ablation. The
// same XgemmDirect cost evaluation (the per-configuration unit of every
// tuning run) is timed under the tree-walking reference interpreter, the
// bytecode VM without define-specialization, and the full VM.
type InterpResult struct {
	Device string
	IS     string
	Config string
	Evals  int
	Rows   []*InterpRow
}

// Interp runs E11 on one device. evals is the number of timed cost
// evaluations per engine (default 20). The process-default engine is
// restored before returning.
func Interp(deviceName string, evals int, opts Options) (*InterpResult, error) {
	opts.defaults()
	if evals <= 0 {
		evals = 20
	}
	dev, err := opencl.FindDevice("", deviceName)
	if err != nil {
		return nil, err
	}
	shape := clblast.CaffeInputSizes()[1]
	cfg := clblast.DefaultConfig()

	prev := oclc.DefaultEngine()
	defer oclc.SetDefaultEngine(prev)

	res := &InterpResult{
		Device: dev.Name(),
		IS:     shape.String(),
		Config: "XgemmDirect default",
		Evals:  evals,
	}
	engines := []oclc.Engine{oclc.EngineWalk, oclc.EngineVMNoSpec, oclc.EngineVM}
	var walkNs float64
	for _, eng := range engines {
		oclc.SetDefaultEngine(eng)
		eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
		// Warm up: first eval pays preprocess/parse/lower once per engine.
		if _, err := eval.Eval(cfg); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < evals; i++ {
			if _, err := eval.Eval(cfg); err != nil {
				return nil, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(evals)
		if eng == oclc.EngineWalk {
			walkNs = ns
		}
		res.Rows = append(res.Rows, &InterpRow{
			Engine:    eng.String(),
			NsPerEval: ns,
			Speedup:   walkNs / ns,
		})
	}
	return res, nil
}

// InterpTable renders E11.
func InterpTable(r *InterpResult) *Table {
	t := &Table{
		ID: "E11",
		Title: fmt.Sprintf("Kernel-interpreter ablation on %s, %s (%s, %d evals/engine)",
			r.Device, r.IS, r.Config, r.Evals),
		Columns: []string{"engine", "ms/eval", "speedup vs walk"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Engine,
			fmt.Sprintf("%.3f", row.NsPerEval/1e6),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"walk = tree-walking reference interpreter; vm-nospec = bytecode VM without define-specialization; vm = VM with constant folding, dead-branch elimination and static kind inference")
	return t
}
