package harness

import (
	"fmt"
	"strings"
	"time"

	"atf/internal/clblast"
	"atf/internal/obs"
	"atf/internal/oclc"
	"atf/internal/opencl"
)

// VecAblateRow is one kernel × engine measurement in the E12 ablation.
type VecAblateRow struct {
	Kernel    string
	Engine    string
	NsPerEval float64
	Speedup   float64 // vs the walker reference on the same kernel
}

// VecAblateResult is experiment E12: the lockstep-vectorization ablation.
// Two cost-evaluation workloads — a bandwidth-style saxpy launch and the
// XgemmDirect evaluation every tuning run is made of — are timed under the
// tree-walking reference, the scalar bytecode VM, and the vectorized VM.
// The lanes-active histogram delta over the vm-vec runs records how much
// lockstep width the vectorizer actually sustained (scalar fallbacks and
// partial re-gathers show up as observations below the group size).
type VecAblateResult struct {
	Device string
	IS     string
	Evals  int
	Rows   []*VecAblateRow

	// Lanes-active distribution (atf_oclc_vm_vec_lanes_active) accumulated
	// across this experiment's vm-vec evaluations only. LanesCounts[i] is
	// the number of vector segments entered with ≤ LanesBounds[i] live
	// lanes; the final entry is the overflow bucket.
	LanesBounds []float64
	LanesCounts []uint64
	LanesMean   float64
}

// saxpySrc is the E12 saxpy workload: WPT-strided with a tail guard, so it
// carries one work-item-ID-dependent branch (the guard) per element on top
// of an otherwise uniform loop.
const saxpySrc = `__kernel void saxpy(const int n, const float a,
    __global float* x, __global float* y) {
  const int g = get_global_id(0);
  for (int w = 0; w < WPT; w++) {
    const int i = g*WPT + w;
    if (i < n) { y[i] = a*x[i] + y[i]; }
  }
}`

// VecAblate runs E12 on one device. evals is the number of timed cost
// evaluations per kernel × engine (default 20). The process-default engine
// is restored before returning.
func VecAblate(deviceName string, evals int, opts Options) (*VecAblateResult, error) {
	opts.defaults()
	if evals <= 0 {
		evals = 20
	}
	dev, err := opencl.FindDevice("", deviceName)
	if err != nil {
		return nil, err
	}
	shape := clblast.CaffeInputSizes()[1]
	gemmCfg := clblast.DefaultConfig()

	// saxpy: one shared compiled program; a launch is the cost evaluation.
	const saxpyN = 1 << 16
	const saxpyWPT = 4
	saxpyProg, err := oclc.Compile(saxpySrc, map[string]string{"WPT": fmt.Sprint(saxpyWPT)})
	if err != nil {
		return nil, err
	}
	x := oclc.NewGlobalMemory(1, oclc.KFloat, 4, saxpyN)
	y := oclc.NewGlobalMemory(2, oclc.KFloat, 4, saxpyN)
	for i := 0; i < saxpyN; i++ {
		x.Data[i] = float64(i % 97)
		y.Data[i] = float64(i % 89)
	}
	saxpyArgs := []oclc.Arg{
		oclc.IntArg(saxpyN), oclc.FloatArg(2.0),
		oclc.BufArg(x), oclc.BufArg(y),
	}
	saxpyCfg := oclc.NDRange1D(saxpyN/saxpyWPT, 64)

	kernels := []struct {
		name string
		mk   func() func() error // fresh evaluator for one engine
	}{
		{"saxpy", func() func() error {
			return func() error {
				_, err := saxpyProg.Launch("saxpy", saxpyArgs, saxpyCfg, oclc.ExecOptions{})
				return err
			}
		}},
		{"XgemmDirect", func() func() error {
			eval := clblast.NewGemmEvaluator(dev, shape, opts.Seed)
			return func() error {
				_, err := eval.Eval(gemmCfg)
				return err
			}
		}},
	}
	engines := []oclc.Engine{oclc.EngineWalk, oclc.EngineVM, oclc.EngineVMVec}

	prev := oclc.DefaultEngine()
	defer oclc.SetDefaultEngine(prev)

	res := &VecAblateResult{Device: dev.Name(), IS: shape.String(), Evals: evals}
	before := obs.Default().Snapshot().Histogram("atf_oclc_vm_vec_lanes_active")
	for _, k := range kernels {
		var walkNs float64
		for _, eng := range engines {
			oclc.SetDefaultEngine(eng)
			run := k.mk()
			// Warm up: the first eval pays preprocess/parse/lower once.
			if err := run(); err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < evals; i++ {
				if err := run(); err != nil {
					return nil, err
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(evals)
			if eng == oclc.EngineWalk {
				walkNs = ns
			}
			res.Rows = append(res.Rows, &VecAblateRow{
				Kernel:    k.name,
				Engine:    eng.String(),
				NsPerEval: ns,
				Speedup:   walkNs / ns,
			})
		}
	}
	after := obs.Default().Snapshot().Histogram("atf_oclc_vm_vec_lanes_active")

	res.LanesBounds = after.Bounds
	res.LanesCounts = make([]uint64, len(after.Counts))
	var n uint64
	var sum float64
	for i := range after.Counts {
		var prev uint64
		if i < len(before.Counts) {
			prev = before.Counts[i]
		}
		res.LanesCounts[i] = after.Counts[i] - prev
		n += res.LanesCounts[i]
	}
	sum = after.Sum - before.Sum
	if n > 0 {
		res.LanesMean = sum / float64(n)
	}
	return res, nil
}

// lanesDistribution renders the non-empty buckets of the lanes-active
// delta as "≤b:count" pairs.
func lanesDistribution(r *VecAblateResult) string {
	var parts []string
	for i, c := range r.LanesCounts {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(r.LanesBounds) {
			label = fmt.Sprintf("<=%g", r.LanesBounds[i])
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, c))
	}
	if len(parts) == 0 {
		return "no vector segments recorded"
	}
	return strings.Join(parts, "  ")
}

// VecAblateTable renders E12.
func VecAblateTable(r *VecAblateResult) *Table {
	t := &Table{
		ID: "E12",
		Title: fmt.Sprintf("Lockstep-vectorization ablation on %s, %s (%d evals/kernel/engine)",
			r.Device, r.IS, r.Evals),
		Columns: []string{"kernel", "engine", "ms/eval", "speedup vs walk"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Kernel,
			row.Engine,
			fmt.Sprintf("%.3f", row.NsPerEval/1e6),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"walk = tree-walking reference; vm = scalar bytecode VM; vm-vec = lockstep work-group vectorization with scalar fallback on divergence",
		fmt.Sprintf("lanes-active per vector segment during vm-vec evals: mean %.1f, distribution %s",
			r.LanesMean, lanesDistribution(r)))
	return t
}
