package core

import (
	"testing"
)

// TestCensusRoundTrip: a generation warm-started from a persisted census
// must skip the counting pass (zero census runs) yet answer Size, At,
// IndexOf, and full sweeps identically to the cold generation.
func TestCensusRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		params func() []*Param
	}{
		{"chain", lazyChainParams},
		{"nodeps", lazyNoDepsParams},
		{"inexact", lazyInexactParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold, err := GenerateFlat(tc.params(), GenOptions{Mode: SpaceLazy})
			if err != nil {
				t.Fatal(err)
			}
			snap, ok := cold.CensusSnapshot()
			if !ok || len(snap) == 0 {
				t.Fatal("lazy space produced no census snapshot")
			}
			runsBefore := mCensusRuns.Value()
			restoredBefore := mCensusRestored.Value()
			warm, err := GenerateFlat(tc.params(), GenOptions{Mode: SpaceLazy, Census: snap})
			if err != nil {
				t.Fatal(err)
			}
			if got := mCensusRuns.Value() - runsBefore; got != 0 {
				t.Errorf("warm generation ran %d counting passes, want 0", got)
			}
			if got := mCensusRestored.Value() - restoredBefore; got != 1 {
				t.Errorf("warm generation restored %d censuses, want 1", got)
			}
			if warm.Size() != cold.Size() {
				t.Fatalf("warm Size = %d, want %d", warm.Size(), cold.Size())
			}
			if warm.Checks() != cold.Checks() {
				t.Errorf("warm Checks = %d, want %d (restored statistics)", warm.Checks(), cold.Checks())
			}
			wl, wu := warm.NodeCounts()
			cl, cu := cold.NodeCounts()
			if wl != cl || wu != cu {
				t.Errorf("warm nodes %d/%d, want %d/%d", wl, wu, cl, cu)
			}
			for idx := uint64(0); idx < cold.Size(); idx++ {
				want := cold.At(idx)
				got := warm.At(idx)
				if !got.Equal(want) {
					t.Fatalf("warm At(%d) = %v, want %v", idx, got, want)
				}
				if ri, ok := warm.IndexOf(got); !ok || ri != idx {
					t.Fatalf("warm IndexOf(At(%d)) = %d,%v", idx, ri, ok)
				}
			}
			got := sweepCollect(warm.Sweep(0, SweepOptions{Prefetch: true}), 32)
			if uint64(len(got)) != cold.Size() {
				t.Fatalf("warm sweep emitted %d configs, want %d", len(got), cold.Size())
			}
			for i, k := range got {
				if want := cold.At(uint64(i)).Key(); k != want {
					t.Fatalf("warm sweep config %d = %q, want %q", i, k, want)
				}
			}
		})
	}
}

// TestCensusRejectsMismatch: snapshots that are corrupt, wrong-versioned,
// or from a different parameter shape are ignored — generation falls back
// to a cold counting pass with correct results.
func TestCensusRejectsMismatch(t *testing.T) {
	cold, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := cold.CensusSnapshot()
	bad := [][]byte{
		[]byte("not json"),
		[]byte(`{"version":99,"groups":[]}`),
		snap[:len(snap)/3], // truncated mid-document
	}
	for i, b := range bad {
		sp, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceLazy, Census: b})
		if err != nil {
			t.Fatalf("bad snapshot %d: %v", i, err)
		}
		if sp.Size() != cold.Size() {
			t.Fatalf("bad snapshot %d: Size = %d, want %d", i, sp.Size(), cold.Size())
		}
	}
	// A different shape must not match the embedded signature.
	other, err := GenerateFlat(lazyNoDepsParams(), GenOptions{Mode: SpaceLazy, Census: snap})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := GenerateFlat(lazyNoDepsParams(), GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	if other.Size() != ref.Size() {
		t.Fatalf("foreign snapshot corrupted generation: Size = %d, want %d", other.Size(), ref.Size())
	}
}

// TestCensusEagerSpacesSnapshotNothing: fully eager spaces have no census
// to persist.
func TestCensusEagerSpacesSnapshotNothing(t *testing.T) {
	sp, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceEager})
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := sp.CensusSnapshot(); ok || snap != nil {
		t.Fatal("eager space produced a census snapshot")
	}
}
