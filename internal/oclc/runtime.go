package oclc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// rval is a runtime value: an int/float/bool scalar or a pointer into a
// Memory. Kept small and passed by value so expression evaluation does not
// allocate.
type rval struct {
	k    ValKind
	i    int64
	f    float64
	mem  *Memory
	off  int64 // element offset for pointers
	dim1 int64 // second-dimension extent for 2-D arrays (0 = 1-D)
}

func intVal(v int64) rval     { return rval{k: KInt, i: v} }
func floatVal(v float64) rval { return rval{k: KFloat, f: v} }

// asInt coerces to int64 with C semantics (float truncation).
func (v rval) asInt() int64 {
	if v.k == KFloat {
		return int64(v.f)
	}
	return v.i
}

// asFloat coerces to float64.
func (v rval) asFloat() float64 {
	if v.k == KFloat {
		return v.f
	}
	return float64(v.i)
}

// truthy implements C truthiness.
func (v rval) truthy() bool {
	if v.k == KFloat {
		return v.f != 0
	}
	return v.i != 0
}

// Memory is a linear buffer of elements in one address space. Elements are
// stored as float64 cells and reinterpreted per the element kind; device
// element size (bytes) feeds the coalescing model's address arithmetic.
type Memory struct {
	ID        int
	Space     AddrSpace
	Elem      ValKind
	ElemBytes int
	Data      []float64
}

// NewGlobalMemory allocates a global buffer of n elements.
func NewGlobalMemory(id int, elem ValKind, elemBytes, n int) *Memory {
	return &Memory{ID: id, Space: SpaceGlobal, Elem: elem, ElemBytes: elemBytes, Data: make([]float64, n)}
}

// Len returns the element count.
func (m *Memory) Len() int { return len(m.Data) }

// Work-items of a group run as goroutines, and OpenCL permits them to
// access the same global/local cell without synchronization (the result is
// whichever write lands last — but each word is written atomically on real
// devices). loadCell/storeCell reproduce exactly that memory model: cells
// are accessed with word-sized atomics, so racy kernels yield an undefined
// *value* without being undefined *behaviour* on the host — and the Go race
// detector stays silent. Host-side accessors (Float32s, SetFloat32s, direct
// Data access in tests) run only while no kernel executes, so they keep the
// plain path.

func (m *Memory) loadCell(i int64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(&m.Data[i]))))
}

func (m *Memory) storeCell(i int64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&m.Data[i])), math.Float64bits(v))
}

// load reads element i.
func (m *Memory) load(i int64) (rval, error) {
	if i < 0 || i >= int64(len(m.Data)) {
		return rval{}, fmt.Errorf("oclc: %s buffer %d: load index %d out of range [0,%d)", m.Space, m.ID, i, len(m.Data))
	}
	if m.Elem == KFloat {
		return floatVal(m.loadCell(i)), nil
	}
	return intVal(int64(m.loadCell(i))), nil
}

// store writes element i.
func (m *Memory) store(i int64, v rval) error {
	if i < 0 || i >= int64(len(m.Data)) {
		return fmt.Errorf("oclc: %s buffer %d: store index %d out of range [0,%d)", m.Space, m.ID, i, len(m.Data))
	}
	if m.Elem == KFloat {
		m.storeCell(i, v.asFloat())
	} else {
		m.storeCell(i, float64(v.asInt()))
	}
	return nil
}

// Float32s returns the buffer contents as float32 (device precision).
func (m *Memory) Float32s() []float32 {
	out := make([]float32, len(m.Data))
	for i, v := range m.Data {
		out[i] = float32(v)
	}
	return out
}

// SetFloat32s fills the buffer from float32 host data.
func (m *Memory) SetFloat32s(xs []float32) {
	for i, v := range xs {
		if i >= len(m.Data) {
			break
		}
		m.Data[i] = float64(v)
	}
}

// Counters aggregates the dynamic operation mix of executed work-items.
// The perfmodel package converts these into cycles.
type Counters struct {
	IntOps        int64 // integer ALU operations
	FloatOps      int64 // floating add/mul/etc. (excluding FMA)
	FMAs          int64 // fused multiply-adds (fma/mad builtins)
	SpecialOps    int64 // sqrt, exp, ... (special function unit)
	GlobalLoads   int64
	GlobalStores  int64
	LocalLoads    int64
	LocalStores   int64
	PrivateAccess int64 // register-array traffic
	Branches      int64
	LoopIters     int64 // loop iterations without an unroll hint
	UnrolledIters int64 // loop iterations under #pragma unroll
	Barriers      int64
	Calls         int64
}

// Add accumulates other into c.
func (c *Counters) Add(o *Counters) {
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.FMAs += o.FMAs
	c.SpecialOps += o.SpecialOps
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LocalLoads += o.LocalLoads
	c.LocalStores += o.LocalStores
	c.PrivateAccess += o.PrivateAccess
	c.Branches += o.Branches
	c.LoopIters += o.LoopIters
	c.UnrolledIters += o.UnrolledIters
	c.Barriers += o.Barriers
	c.Calls += o.Calls
}

// Total returns the total dynamic operation count (a rough IPC proxy).
func (c *Counters) Total() int64 {
	return c.IntOps + c.FloatOps + c.FMAs + c.SpecialOps +
		c.GlobalLoads + c.GlobalStores + c.LocalLoads + c.LocalStores +
		c.PrivateAccess + c.Branches
}

// Access is one recorded global-memory access for coalescing analysis.
type Access struct {
	Site  int
	Addr  uint64 // byte address (buffer-namespaced)
	Store bool
}

// AccessLog collects global-memory accesses of one sampled work-group.
// Each work-item records into its own buffer — no synchronization on the
// access path — and consumers group by site afterwards. The perfmodel
// groups accesses by SIMD batch and counts unique cache lines to derive
// memory transactions.
type AccessLog struct {
	perWI [][]Access
	sites map[int]map[int][]uint64 // site -> wi -> ordered addresses
	once  sync.Once
}

// NewAccessLog returns a log with buffers for n work-items.
func NewAccessLog(n int) *AccessLog { return &AccessLog{perWI: make([][]Access, n)} }

// record appends one access to the work-item's private buffer.
func (l *AccessLog) record(site, wi int, addr uint64, store bool) {
	l.perWI[wi] = append(l.perWI[wi], Access{Site: site, Addr: addr, Store: store})
}

// Sites returns the accesses grouped site → work-item → ordered address
// list; built once, after the work-group has finished.
func (l *AccessLog) Sites() map[int]map[int][]uint64 {
	l.once.Do(func() {
		l.sites = make(map[int]map[int][]uint64)
		for wi, accs := range l.perWI {
			for _, a := range accs {
				m := l.sites[a.Site]
				if m == nil {
					m = make(map[int][]uint64)
					l.sites[a.Site] = m
				}
				m[wi] = append(m[wi], a.Addr)
			}
		}
	})
	return l.sites
}

// WIAccesses exposes one work-item's raw access list (tests).
func (l *AccessLog) WIAccesses(wi int) []Access { return l.perWI[wi] }

// byteAddr folds buffer identity and element offset into one address space.
func byteAddr(m *Memory, elemOff int64) uint64 {
	return uint64(m.ID)<<40 | uint64(elemOff*int64(m.ElemBytes))
}
