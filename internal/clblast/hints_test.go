package clblast

import (
	"testing"

	"atf/internal/core"
)

func TestDivisorHintsPreserveXgemmSpace(t *testing.T) {
	plain := XgemmDirectParams(SpaceOptions{RangeCap: 24})
	hinted := XgemmDirectParams(SpaceOptions{RangeCap: 24, DivisorHints: true})
	sp1, err := core.GenerateFlat(plain, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := core.GenerateFlat(hinted, core.GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp1.Size() != sp2.Size() {
		t.Fatalf("hinted space size %d != plain %d", sp2.Size(), sp1.Size())
	}
	for i := uint64(0); i < sp1.Size(); i += 97 { // spot-check stride
		if !sp1.At(i).Equal(sp2.At(i)) {
			t.Fatalf("config %d differs: %v vs %v", i, sp1.At(i), sp2.At(i))
		}
	}
	if sp2.Checks() >= sp1.Checks() {
		t.Fatalf("hints should reduce constraint checks: %d vs %d",
			sp2.Checks(), sp1.Checks())
	}
}

func TestDivisorHintsCutChecksAtScale(t *testing.T) {
	// The hint's payoff grows with the range cap: the five hinted levels
	// scan d(WGD) ≈ 8 candidates instead of 64 per valid prefix.
	plain := XgemmDirectParams(SpaceOptions{RangeCap: 64})
	hinted := XgemmDirectParams(SpaceOptions{RangeCap: 64, DivisorHints: true})
	n1, c1, err := core.CountGroup(core.G(plain...), core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n2, c2, err := core.CountGroup(core.G(hinted...), core.GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("counts differ: %d vs %d", n1, n2)
	}
	// The five hinted levels drop from ~64 scanned candidates per valid
	// prefix to d(WGD) ≈ 8; globally the cut is bounded by the share of
	// checks at the un-hintable set-valued levels (VWMD/VWND/PADA/PADB).
	if float64(c2) >= 0.75*float64(c1) {
		t.Fatalf("hints at cap 64 should cut checks by >25%%: %d vs %d", c2, c1)
	}
}
