package core

import (
	"sync"
	"testing"
)

// TestLazySlabEvictionConcurrentBoundary hammers the shared slab cache
// with concurrent random-access readers and streaming sweeps while the
// byte budget sits exactly at (and just under, and well under) the space's
// full resident footprint — the regime where every commit races an
// eviction of a slab some other goroutine is about to touch or is holding
// pinned. Run under -race this is the evict-while-expanding guard: evicted
// in-flight entries must still complete for their waiters, sweeps must
// keep their pinned path slabs alive, and every access must keep decoding
// the exact eager-reference configuration.
func TestLazySlabEvictionConcurrentBoundary(t *testing.T) {
	params := lazyChainParams()
	eager, err := GenerateFlat(params, GenOptions{Mode: SpaceEager})
	if err != nil {
		t.Fatal(err)
	}
	size := eager.Size()
	want := make([]string, size)
	for i := uint64(0); i < size; i++ {
		want[i] = eager.At(i).Key()
	}

	// Measure the space's full resident slab footprint: walk an unbounded
	// lazy copy and read the resident gauge (tests in this package run
	// sequentially, so the gauge reflects this cache alone).
	probe, err := GenerateFlat(params, GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < size; i++ {
		probe.At(i)
	}
	full := mSpaceLazyResident.Value()
	if full <= 0 {
		t.Fatalf("resident gauge %d after full walk; lazy path not exercised", full)
	}

	// Exactly at the boundary, one byte under (every commit must evict),
	// and far under (constant thrash).
	for _, budget := range []int64{full, full - 1, full / 4} {
		sp, err := GenerateFlat(params, GenOptions{Mode: SpaceLazy, MaxArenaBytes: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		evictions0 := mSpaceLazyEvictions.Value()

		var wg sync.WaitGroup
		const readers = 8
		for w := 0; w < readers; w++ {
			w := uint64(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Strided forward pass: workers expand different slabs
				// concurrently, so commits evict what neighbours need next.
				for i := w; i < size; i += readers {
					if got := sp.At(i).Key(); got != want[i] {
						t.Errorf("budget %d: At(%d) = %q, want %q", budget, i, got, want[i])
						return
					}
				}
				// Reverse pass: re-expands whatever the forward passes
				// evicted, in the opposite order.
				for i := int64(size-1) - int64(w); i >= 0; i -= readers {
					if got := sp.At(uint64(i)).Key(); got != want[i] {
						t.Errorf("budget %d: At(%d) = %q, want %q", budget, i, got, want[i])
						return
					}
				}
			}()
		}
		// Two streaming sweeps pin their cursor path's slabs while the
		// readers churn the LRU around them.
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sw := sp.Sweep(0, SweepOptions{Prefetch: true})
				defer sw.Close()
				i := uint64(0)
				for {
					chunk := sw.NextChunk(17)
					if chunk == nil {
						break
					}
					for _, cfg := range chunk {
						if got := cfg.Key(); got != want[i] {
							t.Errorf("budget %d: sweep position %d = %q, want %q", budget, i, got, want[i])
							return
						}
						i++
					}
				}
				if i != size {
					t.Errorf("budget %d: sweep yielded %d configs, want %d", budget, i, size)
				}
			}()
		}
		wg.Wait()

		if budget < full {
			if evicted := mSpaceLazyEvictions.Value() - evictions0; evicted == 0 {
				t.Errorf("budget %d under footprint %d evicted nothing; boundary not exercised", budget, full)
			}
		}
	}
}
