#!/bin/sh
# doccheck: every package in the module must carry a package-level doc
# comment, so `go doc <pkg>` is never empty, and the markdown docs must
# not contain dead intra-repo links. Run by `make doccheck` (part of the
# default `make check` chain) after `go vet`.
set -eu

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
    echo "doccheck: packages missing a package doc comment:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    exit 1
fi
echo "doccheck: all packages documented"

# Dead-link check: every relative markdown link target in the top-level
# docs must exist in the repo (anchors and external URLs are out of
# scope; a link to a missing file is what rots first).
dead=0
for doc in README.md DESIGN.md ROADMAP.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    links=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//; s/#.*$//' || true)
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*|"") continue ;;
        esac
        if [ ! -e "$dir/$link" ] && [ ! -e "$link" ]; then
            echo "doccheck: $doc links to missing file: $link" >&2
            dead=1
        fi
    done
done
if [ "$dead" -ne 0 ]; then
    exit 1
fi
echo "doccheck: no dead intra-repo links"
