package server

import (
	"fmt"
	"sync"
	"testing"

	"atf"
)

// Multi-tenant determinism suite: many concurrent sessions on one
// Manager with every sharing and throttling feature enabled — shared
// cost cache, space cache, eval-slot semaphore, admission-exempt load,
// pipelined dispatch — must each produce a journal bit-identical to the
// same spec run alone on a private Manager with sharing off. Run under
// -race this doubles as the data-race suite for the shared caches.

// mtSpecs are the distinct tenant workloads: exhaustive and seeded
// random over an expression cost, and a saxpy kernel spec whose cost
// function goes through the shared compiled-kernel cache in oclc.
func mtSpecs(t *testing.T) []*atf.Spec {
	t.Helper()
	raw := []string{
		`{
			"name": "mt exhaustive",
			"parameters": [
				{"name": "X", "range": {"interval": {"begin": 1, "end": 32}}},
				{"name": "Y", "range": {"interval": {"begin": 1, "end": 6}}}
			],
			"cost": {"kind": "expr", "expr": "(X - 20) * (X - 20) + Y * Y"},
			"technique": {"kind": "exhaustive"},
			"abort": {"evaluations": 90},
			"parallelism": 3
		}`,
		`{
			"name": "mt random",
			"parameters": [
				{"name": "X", "range": {"interval": {"begin": 1, "end": 200}}}
			],
			"cost": {"kind": "expr", "expr": "(X - 77) * (X - 77)"},
			"technique": {"kind": "random"},
			"abort": {"evaluations": 60},
			"seed": 9,
			"parallelism": 2
		}`,
		`{
			"name": "mt saxpy",
			"parameters": [
				{"name": "WPT", "range": {"interval": {"begin": 1, "end": 64}},
				 "constraints": [{"op": "divides", "expr": "64"}]},
				{"name": "LS", "range": {"interval": {"begin": 1, "end": 64}},
				 "constraints": [{"op": "divides", "expr": "64 / WPT"}]}
			],
			"cost": {"kind": "saxpy", "device": "K20c", "n": 64},
			"technique": {"kind": "exhaustive"},
			"abort": {"evaluations": 12},
			"parallelism": 2
		}`,
	}
	specs := make([]*atf.Spec, len(raw))
	for i, r := range raw {
		spec, err := atf.ParseSpec([]byte(r))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = spec
	}
	return specs
}

// evalFingerprint is the part of a journaled evaluation that must be
// bit-identical across isolated and shared runs (AtNs is wall time).
func evalFingerprint(evals []EvalRecord) []string {
	out := make([]string, len(evals))
	for i, ev := range evals {
		out[i] = fmt.Sprintf("%d|%s|%s|%s|%v", ev.Index, ev.Key, ev.Cost, ev.Error, ev.Cached)
	}
	return out
}

func TestMultiTenantSessionsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant suite is not short")
	}
	specs := mtSpecs(t)

	// Reference: each spec alone, private manager, all sharing off.
	refs := make([][]string, len(specs))
	refBest := make([]Status, len(specs))
	for i, spec := range specs {
		m, err := NewManager(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		s.Wait()
		st := s.Status()
		if st.State != StateDone {
			t.Fatalf("reference %q ended %s (%s)", spec.Name, st.State, st.Error)
		}
		d, err := ReadSessionJournal(m.journalPath(s.ID))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = evalFingerprint(d.Evals)
		refBest[i] = st
		m.Shutdown()
	}

	// The crowd: 36 sessions (12 per spec) on one fully shared manager.
	const perSpec = 12
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	m.SharedCostCacheBytes = 8 << 20
	m.SpaceCacheEntries = 16
	m.MaxEvalsInFlight = 16
	m.RotateBytes = 16 << 10 // force rotations under concurrency too
	m.Pipeline = true

	type tenant struct {
		spec int
		sess *Session
	}
	var tenants []tenant
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < perSpec; i++ {
		for si, spec := range specs {
			wg.Add(1)
			go func(si int, spec *atf.Spec) {
				defer wg.Done()
				s, err := m.Create(spec)
				if err != nil {
					t.Errorf("create %q: %v", spec.Name, err)
					return
				}
				mu.Lock()
				tenants = append(tenants, tenant{spec: si, sess: s})
				mu.Unlock()
			}(si, spec)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(tenants) != perSpec*len(specs) {
		t.Fatalf("started %d sessions, want %d", len(tenants), perSpec*len(specs))
	}
	for _, tn := range tenants {
		tn.sess.Wait()
	}

	for _, tn := range tenants {
		st := tn.sess.Status()
		want := refBest[tn.spec]
		if st.State != StateDone {
			t.Fatalf("session %s ended %s (%s)", tn.sess.ID, st.State, st.Error)
		}
		if st.Evaluations != want.Evaluations || st.Valid != want.Valid ||
			!st.Best.Equal(want.Best) || st.BestCost.String() != want.BestCost.String() {
			t.Fatalf("session %s differs from isolated run: %d/%d best %v/%v, want %d/%d best %v/%v",
				tn.sess.ID, st.Evaluations, st.Valid, st.Best, st.BestCost,
				want.Evaluations, want.Valid, want.Best, want.BestCost)
		}
		d, err := ReadSessionJournal(m.journalPath(tn.sess.ID))
		if err != nil {
			t.Fatal(err)
		}
		got := evalFingerprint(d.Evals)
		ref := refs[tn.spec]
		if len(got) != len(ref) {
			t.Fatalf("session %s journaled %d evaluations, isolated run %d", tn.sess.ID, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("session %s evaluation %d = %s, isolated run %s", tn.sess.ID, i, got[i], ref[i])
			}
		}
	}

	// The whole point of sharing: the crowd must have hit the caches.
	costHits, _, _, _, _ := m.sharedCosts.stats()
	if costHits == 0 {
		t.Error("36 overlapping sessions never hit the shared cost cache")
	}
	spaceHits, _, _, _ := m.spaces.stats()
	if spaceHits == 0 {
		t.Error("36 overlapping sessions never hit the space cache")
	}
}
