package core

import (
	"time"
)

// State is the exploration progress snapshot that abort conditions inspect
// after every evaluated configuration.
type State struct {
	Start       time.Time
	Now         time.Time
	Evaluations uint64 // configurations tested so far
	Valid       uint64 // configurations with finite cost
	SpaceSize   uint64
	Best        Cost    // best cost so far (nil until a valid config is seen)
	BestConfig  *Config // configuration achieving Best
	// improvements records every time the best cost dropped: when it
	// happened and the new primary cost. Speedup-based abort conditions
	// (paper, conditions 5 and 6) derive their windows from it.
	improvements []improvement
}

type improvement struct {
	at   time.Time
	eval uint64
	cost float64
}

// bestPrimaryBefore returns the best primary cost achieved strictly before
// time t, or +inf-ish (false) if no improvement happened before t.
func (st *State) bestPrimaryBefore(t time.Time) (float64, bool) {
	best, ok := 0.0, false
	for _, im := range st.improvements {
		if im.at.After(t) {
			break
		}
		best, ok = im.cost, true
	}
	return best, ok
}

// bestPrimaryBeforeEval returns the best primary cost achieved strictly
// before evaluation number e.
func (st *State) bestPrimaryBeforeEval(e uint64) (float64, bool) {
	best, ok := 0.0, false
	for _, im := range st.improvements {
		if im.eval >= e {
			break
		}
		best, ok = im.cost, true
	}
	return best, ok
}

// AbortCondition decides when exploration stops (paper, Section II Step 3:
// six pre-implemented conditions, combinable with && and ||).
type AbortCondition interface {
	Abort(st *State) bool
}

// AbortFunc adapts a function to AbortCondition.
type AbortFunc func(st *State) bool

// Abort implements AbortCondition.
func (f AbortFunc) Abort(st *State) bool { return f(st) }

// Duration stops exploration after the given wall-clock interval
// (atf::cond::duration<D>(t)).
func Duration(d time.Duration) AbortCondition {
	return AbortFunc(func(st *State) bool { return st.Now.Sub(st.Start) >= d })
}

// Evaluations stops after n tested configurations
// (atf::cond::evaluations(n)).
func Evaluations(n uint64) AbortCondition {
	return AbortFunc(func(st *State) bool { return st.Evaluations >= n })
}

// ValidEvaluations stops after n configurations with finite cost; an
// addition beyond the paper's six, useful with penalty-based baselines.
func ValidEvaluations(n uint64) AbortCondition {
	return AbortFunc(func(st *State) bool { return st.Valid >= n })
}

// Fraction stops after f*S tested configurations, f in [0,1], S the search
// space size (atf::cond::fraction(f)).
func Fraction(f float64) AbortCondition {
	return AbortFunc(func(st *State) bool {
		return float64(st.Evaluations) >= f*float64(st.SpaceSize)
	})
}

// CostBelow stops once a configuration with cost <= c has been found
// (atf::cond::cost(c)); the comparison uses the primary objective.
func CostBelow(c float64) AbortCondition {
	return AbortFunc(func(st *State) bool {
		return st.Best != nil && st.Best.Primary() <= c
	})
}

// SpeedupDuration stops when within the last time interval d the best cost
// could not be lowered by a factor >= s (atf::cond::speedup<D>(s,t)).
// It never fires before one full interval has elapsed.
func SpeedupDuration(s float64, d time.Duration) AbortCondition {
	return AbortFunc(func(st *State) bool {
		if st.Now.Sub(st.Start) < d || st.Best == nil {
			return false
		}
		prev, ok := st.bestPrimaryBefore(st.Now.Add(-d))
		if !ok {
			return false // first improvement is younger than the window
		}
		return prev/st.Best.Primary() < s
	})
}

// SpeedupEvaluations stops when within the last n tested configurations the
// best cost could not be lowered by a factor >= s (atf::cond::speedup(s,n)).
func SpeedupEvaluations(s float64, n uint64) AbortCondition {
	return AbortFunc(func(st *State) bool {
		if st.Evaluations < n || st.Best == nil {
			return false
		}
		prev, ok := st.bestPrimaryBeforeEval(st.Evaluations - n)
		if !ok {
			return false
		}
		return prev/st.Best.Primary() < s
	})
}

// AbortAnd combines conditions conjunctively (ATF's && on abort
// conditions): exploration stops only when all conditions hold.
func AbortAnd(cs ...AbortCondition) AbortCondition {
	return AbortFunc(func(st *State) bool {
		for _, c := range cs {
			if !c.Abort(st) {
				return false
			}
		}
		return len(cs) > 0
	})
}

// AbortOr combines conditions disjunctively (ATF's ||): exploration stops
// when any condition holds.
func AbortOr(cs ...AbortCondition) AbortCondition {
	return AbortFunc(func(st *State) bool {
		for _, c := range cs {
			if c.Abort(st) {
				return true
			}
		}
		return false
	})
}
