// This file defines the declarative tuning-spec surface: the JSON form
// of a tuning run that the atfd daemon's API accepts and the tuning
// journal persists (see Spec).

package atf

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/opencl"
)

// Spec is the declarative description of one tuning run — the JSON form
// the atfd daemon's POST /v1/sessions accepts and the tuning journal
// persists. It names the paper's three ingredients — tuning parameters
// with constrained ranges, a cost function, and a search technique with
// an abort condition — as data instead of Go code, so any program that
// can speak JSON can drive the tuner. The saxpy space of the paper's
// Listing 2 as a spec:
//
//	{
//	  "name": "saxpy",
//	  "parameters": [
//	    {"name": "WPT", "range": {"interval": {"begin": 1, "end": 4096}},
//	     "constraints": [{"op": "divides", "expr": "4096"}]},
//	    {"name": "LS", "range": {"interval": {"begin": 1, "end": 4096}},
//	     "constraints": [{"op": "divides", "expr": "4096 / WPT"}]}
//	  ],
//	  "cost": {"kind": "saxpy", "device": "K20c", "n": 4096},
//	  "technique": {"kind": "annealing"},
//	  "abort": {"evaluations": 200}
//	}
//
// Decode and validate with ParseSpec; run in-process with Run, or POST
// the JSON to atfd for a journaled, resumable session.
type Spec struct {
	// Name labels the run (journal files, session listings).
	Name string `json:"name,omitempty"`
	// Parameters declare the search space in order; constraints may
	// reference previously declared parameters by name. For the "gemm"
	// cost kind an empty list selects the built-in XgemmDirect space.
	Parameters []ParamSpec `json:"parameters,omitempty"`
	// Cost selects and configures the cost function.
	Cost CostSpec `json:"cost"`
	// Technique selects the search technique (default exhaustive).
	Technique TechniqueSpec `json:"technique,omitempty"`
	// Abort combines the set conditions with OR; all-zero means the
	// default evaluations(S).
	Abort AbortSpec `json:"abort,omitempty"`
	// Seed makes randomized techniques reproducible (0 = fixed default).
	Seed int64 `json:"seed,omitempty"`
	// Parallelism is the number of concurrent cost evaluators
	// (Tuner.Parallelism: 0/1 sequential, -1 = NumCPU).
	Parallelism int `json:"parallelism,omitempty"`
	// Workers bounds space-generation parallelism (0 = NumCPU).
	Workers int `json:"workers,omitempty"`
	// SpaceMode selects space construction: "" or "auto" (lazy only for
	// astronomically large groups), "eager", or "lazy".
	SpaceMode string `json:"space_mode,omitempty"`
	// MaxSpaceBytes bounds the memory a lazy space keeps resident in
	// expanded sibling blocks — the per-session memory bound of
	// memory-bounded atfd sessions (0 = the daemon default, or unbounded
	// when running in-process).
	MaxSpaceBytes int64 `json:"max_space_bytes,omitempty"`
	// CacheCosts memoizes cost evaluations per configuration; unset
	// defaults to true — services revisit configurations constantly.
	CacheCosts *bool `json:"cache_costs,omitempty"`
	// Record retains the full evaluation history on the result.
	Record bool `json:"record,omitempty"`
}

// ParamSpec declares one tuning parameter: the JSON counterpart of the
// paper's tp(name, range, constraint) form (and of TP in Go).
type ParamSpec struct {
	// Name is the parameter's unique name, referenced by later
	// parameters' constraint expressions.
	Name string `json:"name"`
	// Range is the raw candidate range the constraints filter.
	Range RangeSpec `json:"range"`
	// Constraints combine conjunctively; each may reference previously
	// declared parameters by name.
	Constraints []ConstraintSpec `json:"constraints,omitempty"`
}

// RangeSpec declares a parameter's raw range; exactly one field is set.
type RangeSpec struct {
	// Interval is an integer interval with optional step.
	Interval *IntervalSpec `json:"interval,omitempty"`
	// Set lists the range elements explicitly (ints, floats, bools or
	// strings).
	Set []Value `json:"set,omitempty"`
	// Bools selects the {false, true} range.
	Bools bool `json:"bools,omitempty"`
}

// IntervalSpec is the integer interval [Begin, End] with optional Step.
type IntervalSpec struct {
	Begin int64 `json:"begin"`
	End   int64 `json:"end"`
	Step  int64 `json:"step,omitempty"`
}

// ConstraintSpec applies one alias of the paper's constraint table
// (divides, is_multiple_of, less_than, greater_than, less_equal,
// greater_equal, equal, unequal) to an integer expression over previously
// declared parameters, e.g. {"op":"divides","expr":"4096 / WPT"}.
type ConstraintSpec struct {
	Op   string `json:"op"`
	Expr string `json:"expr"`
}

// TechniqueSpec selects a search technique by kind: "exhaustive" (the
// default), "annealing", "random", "opentuner" or "local".
type TechniqueSpec struct {
	Kind string `json:"kind,omitempty"`
	// Temperature and Cooling configure annealing (0 = paper defaults).
	Temperature float64 `json:"temperature,omitempty"`
	Cooling     float64 `json:"cooling,omitempty"`
	// Patience configures local search (restart threshold).
	Patience int `json:"patience,omitempty"`
}

// AbortSpec describes an abort condition; set fields combine with OR.
type AbortSpec struct {
	// Evaluations stops after this many tested configurations.
	Evaluations uint64 `json:"evaluations,omitempty"`
	// DurationMs stops after this much wall-clock time.
	DurationMs int64 `json:"duration_ms,omitempty"`
	// Fraction stops after this fraction of the search space (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
	// CostBelow stops once a configuration scores below this cost.
	CostBelow *float64 `json:"cost_below,omitempty"`
}

// CostSpec selects a cost function kind:
//
//   - "expr": a synthetic cost — the integer expression Expr evaluated
//     over the configuration (plus an optional per-evaluation DelayNs,
//     for demos and tests that need tunable evaluation latency).
//   - "saxpy": the bundled CLBlast saxpy kernel on a simulated OpenCL
//     device; requires parameters named WPT and LS (paper, Listing 2).
//   - "gemm": the CLBlast XgemmDirect evaluator on a simulated device;
//     with no declared parameters the built-in XgemmDirect space
//     (RangeCap-capped) is used.
type CostSpec struct {
	Kind string `json:"kind"`

	// expr kind.
	Expr    string `json:"expr,omitempty"`
	DelayNs int64  `json:"delay_ns,omitempty"`

	// saxpy and gemm kinds.
	Platform string `json:"platform,omitempty"`
	Device   string `json:"device,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	// saxpy kind.
	N int64 `json:"n,omitempty"`

	// gemm kind.
	M        int64 `json:"m,omitempty"`
	K        int64 `json:"k,omitempty"`
	GemmN    int64 `json:"gemm_n,omitempty"`
	RangeCap int64 `json:"range_cap,omitempty"`
}

// ParseSpec decodes and validates a JSON spec; unknown fields are
// rejected so typos fail loudly instead of silently selecting defaults.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("atf: bad spec: %w", err)
	}
	if _, err := s.Build(); err != nil {
		return nil, err
	}
	return &s, nil
}

// SpecBuild is a spec assembled into runnable pieces: the configured
// Tuner, the declared parameters, and the cost function. Callers that
// need more control than Spec.Run — the atfd session manager attaches a
// context, an OnEvaluation journal hook and a pre-generated space — run
// the pieces themselves.
type SpecBuild struct {
	// Tuner carries the technique, abort condition, seed, parallelism
	// and cache settings from the spec.
	Tuner Tuner
	// Params is the declared (or built-in, for the gemm kind) space.
	Params []*Param
	// Cost is the configured cost function.
	Cost CostFunction
}

// Build validates the spec and assembles the tuner, the parameters and
// the cost function. The spec-driven counterpart of writing the paper's
// three steps in Go.
func (s *Spec) Build() (*SpecBuild, error) {
	params, err := s.buildParams()
	if err != nil {
		return nil, err
	}
	cf, err := s.buildCost(params)
	if err != nil {
		return nil, err
	}
	tech, err := s.Technique.build()
	if err != nil {
		return nil, err
	}
	cache := true
	if s.CacheCosts != nil {
		cache = *s.CacheCosts
	}
	mode, err := parseSpaceMode(s.SpaceMode)
	if err != nil {
		return nil, err
	}
	if s.MaxSpaceBytes < 0 {
		return nil, fmt.Errorf("atf: max_space_bytes must be >= 0, got %d", s.MaxSpaceBytes)
	}
	return &SpecBuild{
		Tuner: Tuner{
			Technique:     tech,
			Abort:         s.Abort.build(),
			Seed:          s.Seed,
			Workers:       s.Workers,
			SpaceMode:     mode,
			MaxSpaceBytes: s.MaxSpaceBytes,
			Parallelism:   s.Parallelism,
			CacheCosts:    cache,
			Record:        s.Record,
		},
		Params: params,
		Cost:   cf,
	}, nil
}

// Run builds the spec and executes the tuning run; ctx cancels it early.
func (s *Spec) Run(ctx context.Context) (*Result, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	b.Tuner.Context = ctx
	return b.Tuner.Tune(b.Cost, b.Params...)
}

func (s *Spec) buildParams() ([]*Param, error) {
	if len(s.Parameters) == 0 {
		if s.Cost.Kind == "gemm" {
			return s.gemmParams()
		}
		return nil, fmt.Errorf("atf: spec declares no tuning parameters")
	}
	var params []*Param
	var declared []string
	for _, ps := range s.Parameters {
		if ps.Name == "" {
			return nil, fmt.Errorf("atf: spec parameter %d has no name", len(params))
		}
		r, err := ps.Range.build(ps.Name)
		if err != nil {
			return nil, err
		}
		var constraints []Constraint
		for _, cs := range ps.Constraints {
			e, refs, err := core.ParseExpr(cs.Expr)
			if err != nil {
				return nil, fmt.Errorf("atf: parameter %q constraint: %w", ps.Name, err)
			}
			for _, ref := range refs {
				if !containsName(declared, ref) {
					return nil, fmt.Errorf(
						"atf: parameter %q constraint references %q, which is not declared earlier (constraints may only use previously declared parameters)",
						ps.Name, ref)
				}
			}
			ct, err := core.ConstraintByName(cs.Op, e)
			if err != nil {
				return nil, fmt.Errorf("atf: parameter %q: %w", ps.Name, err)
			}
			constraints = append(constraints, ct)
		}
		params = append(params, TP(ps.Name, r, constraints...))
		declared = append(declared, ps.Name)
	}
	return params, nil
}

func (r *RangeSpec) build(param string) (Range, error) {
	set := 0
	if r.Interval != nil {
		set++
	}
	if len(r.Set) > 0 {
		set++
	}
	if r.Bools {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("atf: parameter %q must set exactly one of range.interval, range.set, range.bools", param)
	}
	switch {
	case r.Interval != nil:
		iv := r.Interval
		if iv.Step > 1 {
			return SteppedInterval(iv.Begin, iv.End, iv.Step), nil
		}
		return Interval(iv.Begin, iv.End), nil
	case len(r.Set) > 0:
		vals := make([]any, len(r.Set))
		for i, v := range r.Set {
			vals[i] = v
		}
		return Set(vals...), nil
	default:
		return Bools(), nil
	}
}

func (t *TechniqueSpec) build() (Technique, error) {
	switch t.Kind {
	case "", "exhaustive":
		return Exhaustive(), nil
	case "annealing":
		if t.Temperature != 0 || t.Cooling != 0 {
			temp, cooling := t.Temperature, t.Cooling
			if temp == 0 {
				temp = 4
			}
			if cooling == 0 {
				cooling = 1
			}
			return SimulatedAnnealingT(temp, cooling), nil
		}
		return SimulatedAnnealing(), nil
	case "random":
		return RandomSearch(), nil
	case "opentuner":
		return OpenTunerSearch(), nil
	case "local":
		patience := t.Patience
		if patience == 0 {
			patience = 10
		}
		return LocalSearch(patience), nil
	default:
		return nil, fmt.Errorf("atf: unknown technique kind %q", t.Kind)
	}
}

func (a *AbortSpec) build() AbortCondition {
	var conds []AbortCondition
	if a.Evaluations > 0 {
		conds = append(conds, Evaluations(a.Evaluations))
	}
	if a.DurationMs > 0 {
		conds = append(conds, Duration(time.Duration(a.DurationMs)*time.Millisecond))
	}
	if a.Fraction > 0 {
		conds = append(conds, Fraction(a.Fraction))
	}
	if a.CostBelow != nil {
		conds = append(conds, CostBelow(*a.CostBelow))
	}
	switch len(conds) {
	case 0:
		return nil // the default evaluations(S)
	case 1:
		return conds[0]
	default:
		return AbortOr(conds...)
	}
}

func (s *Spec) buildCost(params []*Param) (CostFunction, error) {
	switch s.Cost.Kind {
	case "expr":
		return s.exprCost(params)
	case "saxpy":
		return s.saxpyCost(params)
	case "gemm":
		return s.gemmCost()
	case "":
		return nil, fmt.Errorf("atf: spec has no cost.kind")
	default:
		return nil, fmt.Errorf("atf: unknown cost kind %q (expr, saxpy, gemm)", s.Cost.Kind)
	}
}

func (s *Spec) exprCost(params []*Param) (CostFunction, error) {
	if s.Cost.Expr == "" {
		return nil, fmt.Errorf(`atf: cost kind "expr" needs cost.expr`)
	}
	e, refs, err := core.ParseExpr(s.Cost.Expr)
	if err != nil {
		return nil, fmt.Errorf("atf: cost.expr: %w", err)
	}
	var names []string
	for _, p := range params {
		names = append(names, p.Name)
	}
	for _, ref := range refs {
		if !containsName(names, ref) {
			return nil, fmt.Errorf("atf: cost.expr references unknown parameter %q", ref)
		}
	}
	delay := time.Duration(s.Cost.DelayNs)
	return CostFunc(func(cfg *Config) (Cost, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return core.SingleCost(float64(e.Eval(cfg))), nil
	}), nil
}

func (s *Spec) saxpyCost(params []*Param) (CostFunction, error) {
	for _, need := range []string{"WPT", "LS"} {
		found := false
		for _, p := range params {
			if p.Name == need {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf(`atf: cost kind "saxpy" needs a parameter named %q`, need)
		}
	}
	n := s.Cost.N
	if n == 0 {
		n = 1 << 22
	}
	device := s.Cost.Device
	if device == "" {
		device = "K20c"
	}
	return (&OpenCL{
		Platform: s.Cost.Platform, Device: device,
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []KernelArg{
			Scalar(int32(n)), RandomScalar(),
			RandomBuffer(int(n)), RandomBuffer(int(n)),
		},
		GlobalSize: func(c *Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *Config) []int64 { return []int64{c.Int("LS")} },
		Seed:       s.Cost.Seed,
	}).CostFunction()
}

func (s *Spec) gemmCost() (CostFunction, error) {
	dev, err := s.gemmDevice()
	if err != nil {
		return nil, err
	}
	shape := s.gemmShape()
	seed := s.Cost.Seed
	if seed == 0 {
		seed = 1
	}
	return clblast.NewGemmEvaluator(dev, shape, seed).CostFunction(), nil
}

// gemmParams is the built-in XgemmDirect space used when a gemm spec
// declares no parameters of its own.
func (s *Spec) gemmParams() ([]*Param, error) {
	dev, err := s.gemmDevice()
	if err != nil {
		return nil, err
	}
	rangeCap := s.Cost.RangeCap
	if rangeCap == 0 {
		rangeCap = 64
	}
	return clblast.XgemmDirectParams(clblast.SpaceOptions{
		RangeCap:         rangeCap,
		MaxWorkGroupSize: int64(dev.Desc.MaxWorkGroupSize),
		LocalMemBytes:    int64(dev.Desc.LocalMemBytes),
	}), nil
}

func (s *Spec) gemmDevice() (*opencl.Device, error) {
	device := s.Cost.Device
	if device == "" {
		device = "K20m"
	}
	return opencl.FindDevice(s.Cost.Platform, device)
}

func (s *Spec) gemmShape() clblast.GemmShape {
	shape := clblast.GemmShape{M: s.Cost.M, K: s.Cost.K, N: s.Cost.GemmN}
	if shape.M == 0 {
		shape.M = 10
	}
	if shape.K == 0 {
		shape.K = 64
	}
	if shape.N == 0 {
		shape.N = 500
	}
	return shape
}

func parseSpaceMode(s string) (SpaceMode, error) {
	switch s {
	case "", "auto":
		return SpaceAuto, nil
	case "eager":
		return SpaceEager, nil
	case "lazy":
		return SpaceLazy, nil
	default:
		return SpaceAuto, fmt.Errorf("atf: unknown space_mode %q (auto, eager, lazy)", s)
	}
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
