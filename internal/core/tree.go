package core

import (
	"fmt"
	"math"
	"math/rand"
	"unsafe"
)

// The search space of one parameter group is stored as a trie ("tree of
// valid partial configurations"): level d of the trie holds the accepted
// values of the group's d-th parameter given the prefix encoded by the path
// from the root. Sharing prefixes keeps spaces with ~10^7 configurations in
// memory, and per-node leaf counts give O(depth · log branching) lookup of
// the i-th configuration, uniform random sampling, and index-based
// neighbourhoods for annealing-style techniques.
//
// Two representations exist. During generation, subtrees are built as
// value-slice blocks of bnode (a sibling block is one contiguous []bnode —
// the slab — so nodes are never heap-allocated individually), and
// dependency-aware memoization may share whole blocks between prefixes
// (footprint.go). After generation the block DAG is flattened into the
// arena form below: per-level node arrays whose children are index ranges
// plus block-local cumulative leaf counts, which turns the i-th-config
// lookup into a binary search over prefix sums and stores each shared
// subtree exactly once.

// bnode is one build-time trie vertex: a parameter value plus the sibling
// block of valid continuations. count caches the number of complete
// configurations below.
type bnode struct {
	val      Value
	children []bnode // empty for leaf-level nodes
	count    uint64
}

// level is one depth of the flattened trie. A node i at depth d holds
// vals[i]; its children occupy the contiguous index range
// [childLo[i], childHi[i]) of depth d+1. cum[i] is the number of leaves
// under the siblings preceding i *within i's own block* (cum of a block's
// first node is 0), so locating the child containing a leaf index is a
// binary search over cum within the block. The leaf level stores only
// vals: its j-th block entry is its j-th leaf, no search needed.
type level struct {
	vals             []Value
	cum              []uint64
	childLo, childHi []uint32
}

// Tree is the generated sub-space of one parameter group.
type Tree struct {
	params []*Param
	names  []string
	lv     []level
	rootN  uint32 // the root block is [0, rootN) at level 0
	total  uint64
	// checks counts constraint evaluations performed during generation;
	// reported by the space-generation experiments (E3/E10). With
	// memoization it counts only the evaluations actually performed —
	// shared subtrees are checked once.
	checks uint64
	// Memoization and arena statistics (see Nodes, MemoStats, ArenaBytes).
	memoHits, memoMisses uint64
	logicalNodes         uint64
	uniqueNodes          uint64
	arenaBytes           uint64
	// lazy, when non-nil, holds the streaming representation (lazy.go):
	// the arena levels above are empty and fill/indexOf expand sibling
	// blocks on demand instead.
	lazy *lazyTree
}

// Params returns the group's parameters in declaration order.
func (t *Tree) Params() []*Param { return t.params }

// Size returns the number of valid configurations in this group sub-space.
func (t *Tree) Size() uint64 { return t.total }

// Checks returns how many constraint evaluations generation performed.
func (t *Tree) Checks() uint64 { return t.checks }

// Nodes returns the trie's vertex counts: logical is the size of the fully
// expanded prefix tree (what generation materializes without subtree
// sharing — the E10 "trie nodes" figure), unique is the number of arena
// entries actually stored after dependency-aware sharing. Without
// memoization the two are equal; their ratio is the sharing factor.
func (t *Tree) Nodes() (logical, unique uint64) {
	return t.logicalNodes, t.uniqueNodes
}

// MemoStats returns the subtree-memoization hit/miss counts of this
// group's generation (both zero when memoization was off or never
// applicable).
func (t *Tree) MemoStats() (hits, misses uint64) { return t.memoHits, t.memoMisses }

// ArenaBytes returns the memory footprint of the flattened trie arenas.
// For a lazy tree it is the bytes currently resident in expanded slabs —
// a live figure that grows on expansion and shrinks on eviction.
func (t *Tree) ArenaBytes() uint64 {
	if t.lazy != nil {
		if b := t.lazy.resident.Load(); b > 0 {
			return uint64(b)
		}
		return 0
	}
	return t.arenaBytes
}

// Lazy reports whether this group sub-space uses lazy (streaming)
// construction: Size came from a counting-only pass and lookups expand
// sibling blocks on demand.
func (t *Tree) Lazy() bool { return t.lazy != nil }

// LazyStats returns the lazy tree's expansion/eviction counters and its
// currently resident slab bytes (all zero for eager trees).
func (t *Tree) LazyStats() (expansions, evictions, residentBytes uint64) {
	if t.lazy == nil {
		return 0, 0, 0
	}
	r := t.lazy.resident.Load()
	if r < 0 {
		r = 0
	}
	return t.lazy.expansions.Load(), t.lazy.evictions.Load(), uint64(r)
}

// Depth returns the number of parameters in the group.
func (t *Tree) Depth() int { return len(t.params) }

// fill writes the configuration with in-group index idx into cfg at the
// given parameter offset. idx must be < t.total. Within each sibling block
// the child holding idx is found by binary search over the block-local
// cumulative leaf counts.
func (t *Tree) fill(idx uint64, cfg *Config, offset int) {
	if t.lazy != nil {
		t.lazy.fill(idx, cfg, offset)
		return
	}
	if idx >= t.total {
		panic("core: tree index out of range")
	}
	lo, hi := uint32(0), t.rootN
	last := len(t.lv) - 1
	for d := 0; d < last; d++ {
		lv := &t.lv[d]
		a, b := lo, hi
		for b-a > 1 {
			mid := a + (b-a)/2
			if lv.cum[mid] <= idx {
				a = mid
			} else {
				b = mid
			}
		}
		cfg.set(offset+d, lv.vals[a])
		idx -= lv.cum[a]
		lo, hi = lv.childLo[a], lv.childHi[a]
	}
	cfg.set(offset+last, t.lv[last].vals[lo+uint32(idx)])
}

// indexOf returns the in-group index of the configuration stored in cfg at
// the given offset, and whether the configuration is present in the tree.
func (t *Tree) indexOf(cfg *Config, offset int) (uint64, bool) {
	if t.lazy != nil {
		return t.lazy.indexOf(cfg, offset)
	}
	var idx uint64
	lo, hi := uint32(0), t.rootN
	last := len(t.lv) - 1
	for d := 0; d <= last; d++ {
		lv := &t.lv[d]
		want := cfg.At(offset + d)
		found := false
		for j := lo; j < hi; j++ {
			if lv.vals[j].Equal(want) {
				if d == last {
					idx += uint64(j - lo)
				} else {
					idx += lv.cum[j]
					lo, hi = lv.childLo[j], lv.childHi[j]
				}
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return idx, true
}

// sampleLeaf picks a uniformly random configuration index in the group.
func (t *Tree) sampleLeaf(rng *rand.Rand) uint64 {
	if t.total == 0 {
		panic("core: sampling from empty tree")
	}
	return uint64(rng.Int63n(int64(t.total)))
}

// sumCounts recomputes a node block's aggregate leaf count.
func sumCounts(ns []bnode) uint64 {
	var s uint64
	for _, n := range ns {
		s += n.count
	}
	return s
}

// countLevels tallies the number of build nodes per depth.
func countLevels(ns []bnode, d int, counts []uint64) {
	counts[d] += uint64(len(ns))
	if d+1 == len(counts) {
		return
	}
	for i := range ns {
		countLevels(ns[i].children, d+1, counts)
	}
}

// blockRef locates a flattened sibling block and caches its logical
// (expanded) node count.
type blockRef struct {
	lo, hi  uint32
	logical uint64
}

// flattener converts the build-time block DAG into the arena form. shared
// enables block deduplication by slab identity — memoized generation hands
// the same []bnode to every parent that shares the subtree, so the block's
// first-node address identifies it. Without memoization every block is
// unique and the cache would be pure overhead.
type flattener struct {
	t      *Tree
	cache  map[*bnode]blockRef
	shared bool
}

// flattenTree builds the arena representation from the root block.
func flattenTree(params []*Param, names []string, roots []bnode, shared bool) (*Tree, error) {
	t := &Tree{params: params, names: names, lv: make([]level, len(params))}
	f := &flattener{t: t, shared: shared}
	if shared {
		f.cache = make(map[*bnode]blockRef)
	} else {
		// Without sharing every build node lands in the arena exactly once,
		// so a counting pre-pass sizes the level arrays exactly and the
		// appends below never reallocate (the re-walk is far cheaper than
		// growth copies at millions of nodes).
		counts := make([]uint64, len(params))
		countLevels(roots, 0, counts)
		for d := range t.lv {
			lv := &t.lv[d]
			lv.vals = make([]Value, 0, counts[d])
			if d < len(t.lv)-1 {
				lv.cum = make([]uint64, 0, counts[d])
				lv.childLo = make([]uint32, 0, counts[d])
				lv.childHi = make([]uint32, 0, counts[d])
			}
		}
	}
	ref, err := f.add(roots, 0)
	if err != nil {
		return nil, err
	}
	t.rootN = ref.hi
	t.total = sumCounts(roots)
	t.logicalNodes = ref.logical
	const valSize = uint64(unsafe.Sizeof(Value{}))
	for i := range t.lv {
		lv := &t.lv[i]
		t.uniqueNodes += uint64(len(lv.vals))
		t.arenaBytes += uint64(len(lv.vals))*valSize +
			uint64(len(lv.cum))*8 + uint64(len(lv.childLo))*4 + uint64(len(lv.childHi))*4
	}
	return t, nil
}

// add appends the block to its level's arena (once per shared block) and
// returns its index range plus its logical subtree size.
func (f *flattener) add(ns []bnode, d int) (blockRef, error) {
	if len(ns) == 0 {
		return blockRef{}, nil
	}
	if f.shared {
		if r, ok := f.cache[&ns[0]]; ok {
			return r, nil
		}
	}
	lv := &f.t.lv[d]
	base := len(lv.vals)
	if uint64(base)+uint64(len(ns)) > math.MaxUint32 {
		return blockRef{}, fmt.Errorf("core: trie level %d exceeds 2^32 nodes", d)
	}
	lo := uint32(base)
	logical := uint64(len(ns))
	if d == len(f.t.lv)-1 {
		for i := range ns {
			lv.vals = append(lv.vals, ns[i].val)
		}
	} else {
		var run uint64
		for i := range ns {
			lv.vals = append(lv.vals, ns[i].val)
			lv.cum = append(lv.cum, run)
			run += ns[i].count
			lv.childLo = append(lv.childLo, 0)
			lv.childHi = append(lv.childHi, 0)
		}
		for i := range ns {
			cr, err := f.add(ns[i].children, d+1)
			if err != nil {
				return blockRef{}, err
			}
			lv.childLo[int(lo)+i] = cr.lo
			lv.childHi[int(lo)+i] = cr.hi
			logical += cr.logical
		}
	}
	r := blockRef{lo: lo, hi: lo + uint32(len(ns)), logical: logical}
	if f.shared {
		f.cache[&ns[0]] = r
	}
	return r, nil
}
