package core

import (
	"testing"
	"time"
)

func TestDurationCondition(t *testing.T) {
	start := time.Unix(0, 0)
	st := &State{Start: start, Now: start.Add(5 * time.Second)}
	if Duration(10 * time.Second).Abort(st) {
		t.Error("should not fire before the interval")
	}
	st.Now = start.Add(10 * time.Second)
	if !Duration(10 * time.Second).Abort(st) {
		t.Error("should fire at the interval")
	}
}

func TestEvaluationsCondition(t *testing.T) {
	st := &State{Evaluations: 99}
	if Evaluations(100).Abort(st) {
		t.Error("99 < 100")
	}
	st.Evaluations = 100
	if !Evaluations(100).Abort(st) {
		t.Error("should fire at 100")
	}
}

func TestValidEvaluationsCondition(t *testing.T) {
	st := &State{Evaluations: 500, Valid: 9}
	if ValidEvaluations(10).Abort(st) {
		t.Error("9 valid < 10")
	}
	st.Valid = 10
	if !ValidEvaluations(10).Abort(st) {
		t.Error("should fire at 10 valid")
	}
}

func TestFractionCondition(t *testing.T) {
	st := &State{SpaceSize: 1000, Evaluations: 249}
	if Fraction(0.25).Abort(st) {
		t.Error("249 < 250")
	}
	st.Evaluations = 250
	if !Fraction(0.25).Abort(st) {
		t.Error("should fire at f*S")
	}
}

func TestCostBelowCondition(t *testing.T) {
	st := &State{}
	if CostBelow(5).Abort(st) {
		t.Error("no best yet")
	}
	st.Best = SingleCost(6)
	if CostBelow(5).Abort(st) {
		t.Error("6 > 5")
	}
	st.Best = SingleCost(5)
	if !CostBelow(5).Abort(st) {
		t.Error("should fire at cost <= c")
	}
}

func TestSpeedupDurationCondition(t *testing.T) {
	start := time.Unix(1000, 0)
	cond := SpeedupDuration(1.5, 10*time.Second)
	st := &State{Start: start}

	// Improvement to 100 at t=1s, then to 80 at t=12s.
	st.improvements = []improvement{
		{at: start.Add(1 * time.Second), eval: 1, cost: 100},
		{at: start.Add(12 * time.Second), eval: 50, cost: 80},
	}
	st.Best = SingleCost(80)

	st.Now = start.Add(5 * time.Second)
	if cond.Abort(st) {
		t.Error("must not fire before one full window")
	}

	// At t=13s the window [3s,13s] starts from cost 100 (best before 3s);
	// 100/80 = 1.25 < 1.5 → no sufficient speedup → abort.
	st.Now = start.Add(13 * time.Second)
	if !cond.Abort(st) {
		t.Error("should fire: speedup 1.25 < 1.5")
	}

	// With a weaker requirement (1.2) the same window shows enough speedup.
	if SpeedupDuration(1.2, 10*time.Second).Abort(st) {
		t.Error("should not fire: speedup 1.25 >= 1.2")
	}
}

func TestSpeedupEvaluationsCondition(t *testing.T) {
	cond := SpeedupEvaluations(2.0, 100)
	st := &State{Evaluations: 50, Best: SingleCost(10)}
	st.improvements = []improvement{{eval: 1, cost: 100}}
	if cond.Abort(st) {
		t.Error("must not fire before n evaluations")
	}
	// 150 evals; best before eval 50 was 100; now 10 → speedup 10 ≥ 2.
	st.Evaluations = 150
	if cond.Abort(st) {
		t.Error("speedup 10 >= 2, keep going")
	}
	// No recent improvement: best before window is already 10.
	st.improvements = []improvement{{eval: 1, cost: 10}}
	if !cond.Abort(st) {
		t.Error("should fire when the window shows no speedup")
	}
}

func TestAbortCombinators(t *testing.T) {
	st := &State{Evaluations: 100, Valid: 100}
	yes := Evaluations(50)
	no := Evaluations(200)
	if !AbortOr(no, yes).Abort(st) {
		t.Error("Or should fire when one fires")
	}
	if AbortOr(no, no).Abort(st) {
		t.Error("Or should not fire when none fires")
	}
	if AbortAnd(yes, no).Abort(st) {
		t.Error("And should not fire unless all fire")
	}
	if !AbortAnd(yes, yes).Abort(st) {
		t.Error("And should fire when all fire")
	}
	if AbortAnd().Abort(st) {
		t.Error("empty And never fires")
	}
	if AbortOr().Abort(st) {
		t.Error("empty Or never fires")
	}
}
