package core

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"atf/internal/obs"
)

// CloneableCostFunction is a CostFunction that can produce independent
// copies of itself for concurrent use. ExploreParallel gives each worker
// its own clone, so cost functions owning per-run state (a simulated
// device queue, uploaded buffers) never share it across workers. Cost
// functions that do not implement Clone are shared by all workers and must
// be safe for concurrent calls.
type CloneableCostFunction interface {
	CostFunction
	// Clone returns an independent, equivalently initialized instance.
	Clone() (CostFunction, error)
}

// ParallelOptions tunes ExploreParallel.
type ParallelOptions struct {
	ExploreOptions
	// Workers is the number of concurrent cost evaluators: 1 runs the
	// sequential Explore loop (bit-compatible with it), <= 0 selects
	// runtime.NumCPU(). With a custom Evaluator, Workers only sets the
	// default BatchSize — the evaluator owns its own concurrency.
	Workers int
	// BatchSize is the number of configurations requested from the
	// technique per round; 0 means Workers. Larger batches amortize
	// synchronization, smaller ones shorten the speculation window of
	// adapted stateful techniques (see Batcher).
	BatchSize int
	// Evaluator substitutes the evaluate step: instead of the built-in
	// in-process pool (PoolEvaluator over cf), batches are handed to this
	// evaluator — the seam the distributed fleet coordinator plugs into.
	// The merge discipline is unchanged, so results stay bit-identical to
	// a local run for any evaluator that returns correct outcomes. The
	// caller owns the evaluator's lifecycle.
	Evaluator BatchEvaluator
	// OnBatch, when set, observes every batch before it is dispatched —
	// the hook the atfd journal uses to write batch-boundary records so a
	// coordinator crash mid-batch replays cleanly.
	OnBatch func(mark BatchMark)
	// Pipeline overlaps dispatch with merging: batch k+1 is drawn from the
	// technique and handed to the evaluator while batch k's outcomes are
	// still being merged and reported, so a remote fleet's workers never
	// idle during the coordinator's commit pass. Pipelining only engages
	// for techniques that declare themselves CostOblivious (exhaustive,
	// seeded random — directly or through the Batcher adapter): their
	// proposal walk ignores reported costs, so the early draw leaves
	// results bit-identical to the unpipelined run. For every other
	// technique the option is ignored and batches stay strictly
	// sequential. When an abort condition fires mid-merge the speculative
	// batch is drained and discarded — evaluated but never committed,
	// recorded, or reported.
	Pipeline bool
}

// BatchMark identifies one dispatched batch: its 0-based index, the
// evaluation index of its first configuration, and its size. Under
// pipelined dispatch StartEval is the predicted first index — exact
// unless an abort condition cut the preceding batch short, in which case
// the speculative batch is discarded anyway.
type BatchMark struct {
	Index     uint64
	StartEval uint64
	Size      int
}

// pendingBatch is one batch handed to the evaluator: done closes when its
// outcomes (or error) are in.
type pendingBatch struct {
	index    uint64
	batch    []*Config
	outcomes []Outcome
	err      error
	done     chan struct{}
}

// ExploreParallel is the parallel exploration engine: it drives a worker
// pool of cost evaluators over batches of configurations drawn from the
// technique. Results are merged strictly in batch-index order — the same
// discipline GenerateGroup uses for its root chunks — so Result.Best,
// Improvements, History and the evaluation indices are identical regardless
// of worker count for any technique whose proposals do not depend on
// intermediate costs (exhaustive, seeded random, and every BatchTechnique
// that treats a batch as one step). Stateful sequential techniques adapted
// via Batcher receive speculative batches; their walks remain valid but
// differ from their one-at-a-time runs.
//
// The abort condition is applied per committed evaluation, exactly as in
// Explore: when it fires mid-batch, the remaining already-evaluated
// configurations of that batch are discarded, never counted, recorded or
// reported, so abort boundaries match the sequential run. A canceled
// ExploreOptions.Context stops exploration the same way — no new batch is
// dispatched, the current batch stops committing at the cancellation
// point, and the partial result is returned — so a daemon shutdown aborts
// in-flight work at the next commit boundary instead of draining the
// whole search.
func ExploreParallel(sp *Space, tech Technique, cf CostFunction, abort AbortCondition, opts ParallelOptions) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 && opts.Evaluator == nil && opts.OnBatch == nil {
		return Explore(sp, tech, cf, abort, opts.ExploreOptions)
	}
	if sp == nil || sp.Size() == 0 {
		return nil, fmt.Errorf("core: cannot explore an empty search space")
	}
	if tech == nil {
		return nil, fmt.Errorf("core: no search technique")
	}
	if cf == nil {
		return nil, fmt.Errorf("core: no cost function")
	}
	if abort == nil {
		abort = Evaluations(sp.Size())
	}
	order := opts.Order
	if order == nil {
		order = LexLess
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5eed_a7f1
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = workers
	}

	// The evaluate step: the caller's evaluator (the distributed fleet
	// coordinator) or the built-in in-process pool.
	evaluator := opts.Evaluator
	if evaluator == nil {
		pool, err := NewPoolEvaluator(cf, workers, opts.CacheCosts)
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		evaluator = pool
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	bt := AsBatch(tech)
	bt.Initialize(sp, seed)
	defer bt.Finalize()

	// committed tracks the keys of committed evaluations so the Cached flag
	// depends only on commit order, not on which worker won a cache race.
	var committed map[string]bool
	if opts.CacheCosts {
		committed = make(map[string]bool)
	}

	mWorkers.Set(int64(workers))
	span := obs.StartSpan("explore", slog.Int("workers", workers))

	// Pipelining only engages when the technique's proposals ignore costs;
	// anything adaptive keeps the strict draw→evaluate→report cadence.
	pipeline := opts.Pipeline && costOblivious(bt)

	// inflight is the batch currently at the evaluator. Every exit path
	// must drain it before the deferred pool.Close tears the workers down,
	// which is what the deferred receive guarantees (registered after the
	// Close defer, so it runs first).
	var inflight *pendingBatch
	defer func() {
		if inflight != nil {
			<-inflight.done
		}
	}()

	st := &State{Start: now(), SpaceSize: sp.Size()}
	res := &Result{}
	aborted := false

	var batchIndex, nextStart uint64
	// draw pulls the next batch from the technique and hands it to the
	// evaluator without waiting. The mark's StartEval is the running total
	// of drawn configurations — identical to the committed count whenever
	// the unpipelined engine would have drawn, and the prediction for a
	// speculative batch whose predecessor has not finished merging yet.
	draw := func() *pendingBatch {
		batch := bt.GetNextBatch(batchSize)
		if len(batch) == 0 {
			return nil // technique exhausted
		}
		fb := &pendingBatch{index: batchIndex, batch: batch, done: make(chan struct{})}
		batchIndex++
		mBatches.Inc()
		if opts.OnBatch != nil {
			opts.OnBatch(BatchMark{Index: fb.index, StartEval: nextStart, Size: len(batch)})
		}
		nextStart += uint64(len(batch))
		go func() {
			defer close(fb.done)
			fb.outcomes, fb.err = evaluator.EvaluateBatch(ctx, fb.index, fb.batch)
		}()
		return fb
	}

	inflight = draw()
	for inflight != nil && !aborted && !opts.canceled() {
		cur := inflight
		inflight = nil
		<-cur.done
		if cur.err != nil {
			if opts.canceled() {
				break // cancellation mid-batch: return the partial result
			}
			return nil, fmt.Errorf("core: evaluating batch %d: %w", cur.index, cur.err)
		}
		if len(cur.outcomes) != len(cur.batch) {
			return nil, fmt.Errorf("core: evaluator returned %d outcomes for a batch of %d", len(cur.outcomes), len(cur.batch))
		}
		if pipeline && !opts.canceled() {
			// Speculative overlap: the next batch reaches the evaluator
			// while this one merges.
			inflight = draw()
		}

		// Merge strictly in batch order.
		batch, outcomes := cur.batch, cur.outcomes
		mergeStart := time.Now()
		evals := make([]Evaluation, 0, len(batch))
		for i, cfg := range batch {
			st.Now = now()
			if opts.canceled() || abort.Abort(st) {
				aborted = true
				break
			}
			cost, err := outcomes[i].Cost, outcomes[i].Err
			if err != nil && !cost.IsInf() {
				cost = InfCost() // failed evaluations never win, whatever the evaluator sent
			}
			var cached bool
			if committed != nil {
				key := cfg.Key()
				cached = committed[key]
				committed[key] = true
			}

			commitMetrics(cached, err)
			st.Evaluations++
			if !cost.IsInf() {
				st.Valid++
			}
			ev := Evaluation{
				Index:  st.Evaluations - 1,
				Config: cfg,
				Cost:   cost,
				Err:    err,
				At:     now().Sub(st.Start),
				Cached: cached,
			}
			evals = append(evals, ev)
			if opts.Record {
				res.History = append(res.History, ev)
			}
			if opts.OnEvaluation != nil {
				opts.OnEvaluation(ev)
			}
			if !cost.IsInf() && (st.Best == nil || order(cost, st.Best)) {
				st.Best = cost.Clone()
				st.BestConfig = cfg.Clone()
				st.improvements = append(st.improvements, improvement{at: now(), eval: st.Evaluations, cost: cost.Primary()})
				res.Improvements = append(res.Improvements, ev)
			}
		}
		bt.ReportCosts(evals)
		mBatchMergeSeconds.Observe(time.Since(mergeStart).Seconds())
		if !pipeline && !aborted && !opts.canceled() {
			inflight = draw()
		}
	}

	res.Best = st.BestConfig
	res.BestCost = st.Best
	res.Evaluations = st.Evaluations
	res.Valid = st.Valid
	res.Elapsed = now().Sub(st.Start)
	span.End(slog.Uint64("evaluations", res.Evaluations), slog.Uint64("valid", res.Valid))
	return res, nil
}
