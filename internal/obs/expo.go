package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric, histogram
// buckets as cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`. This is what atfd serves on GET /metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		if err := writeHeader(w, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := writeHeader(w, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeHeader(w, h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.Name, formatBound(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteSummary prints the snapshot as the aligned, human-readable table
// behind atf-tune -stats and atf-experiments -stats: every non-zero
// counter and gauge, then per-histogram count/mean/p50/p95/max-bucket
// rows. Histograms whose names end in "_seconds" render as durations.
func WriteSummary(w io.Writer, s Snapshot) {
	fmt.Fprintln(w, "== instrumentation summary (internal/obs) ==")
	rows := make([][2]string, 0, len(s.Counters)+len(s.Gauges))
	for _, c := range s.Counters {
		if c.Value == 0 {
			continue
		}
		rows = append(rows, [2]string{c.Name, strconv.FormatUint(c.Value, 10)})
	}
	for _, g := range s.Gauges {
		if g.Value == 0 {
			continue
		}
		rows = append(rows, [2]string{g.Name, strconv.FormatInt(g.Value, 10)})
	}
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, h := range s.Histograms {
		if h.Count > 0 && len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-*s  %s\n", width, r[0], r[1])
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		seconds := strings.HasSuffix(h.Name, "_seconds")
		fmt.Fprintf(w, "%-*s  count=%d mean=%s p50=%s p95=%s\n",
			width, h.Name, h.Count,
			formatObserved(h.Mean(), seconds),
			formatObserved(h.Quantile(0.50), seconds),
			formatObserved(h.Quantile(0.95), seconds))
	}
}

func formatObserved(v float64, seconds bool) string {
	if seconds {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
