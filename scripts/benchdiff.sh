#!/bin/sh
# benchdiff.sh OLD NEW — benchstat-style comparison of two `go test -bench`
# outputs (e.g. two `make bench > file` runs) without external tooling.
#
# For every benchmark name present in both files it reports the mean ns/op,
# the spread (min..max as ±% of the mean, a crude stand-in for benchstat's
# confidence interval), and the delta. Run benchmarks with -count=5 or more
# so the spread means something.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 old.txt new.txt" >&2
    exit 2
fi
old=$1
new=$2
[ -r "$old" ] || { echo "benchdiff: cannot read $old" >&2; exit 1; }
[ -r "$new" ] || { echo "benchdiff: cannot read $new" >&2; exit 1; }

awk -v OLD="$old" -v NEW="$new" '
function strip_procs(name) {
    # Benchmark names end in -GOMAXPROCS; strip it so runs from machines
    # with different core counts still line up.
    sub(/-[0-9]+$/, "", name)
    return name
}
function collect(file, sum, sumsq, cnt, mn, mx,    line, parts, name, val, n) {
    while ((getline line < file) > 0) {
        n = split(line, parts, /[ \t]+/)
        if (parts[1] !~ /^Benchmark/ || n < 3) continue
        # layout: Name  N  value ns/op  [metric pairs...]
        for (i = 3; i < n; i++) {
            if (parts[i+1] == "ns/op") {
                name = strip_procs(parts[1])
                val = parts[i] + 0
                sum[name] += val
                sumsq[name] += val * val
                cnt[name]++
                if (!(name in mn) || val < mn[name]) mn[name] = val
                if (!(name in mx) || val > mx[name]) mx[name] = val
                break
            }
        }
    }
    close(file)
}
function fmt_ns(v) {
    if (v >= 1e9) return sprintf("%.3fs", v / 1e9)
    if (v >= 1e6) return sprintf("%.2fms", v / 1e6)
    if (v >= 1e3) return sprintf("%.1fµs", v / 1e3)
    return sprintf("%.0fns", v)
}
function spread(name, mn, mx, cnt, mean) {
    if (cnt[name] < 2 || mean == 0) return "     "
    return sprintf("±%3.0f%%", 100 * (mx[name] - mn[name]) / (2 * mean))
}
BEGIN {
    collect(OLD, osum, osumsq, ocnt, omn, omx)
    collect(NEW, nsum, nsumsq, ncnt, nmn, nmx)
    printf "%-55s %14s %7s %14s %7s %9s\n", "benchmark", "old", "", "new", "", "delta"
    any = 0
    for (name in ocnt) {
        if (!(name in ncnt)) continue
        any = 1
        om = osum[name] / ocnt[name]
        nm = nsum[name] / ncnt[name]
        delta = (om > 0) ? 100 * (nm - om) / om : 0
        printf "%-55s %14s %7s %14s %7s %+8.1f%%\n",
            name, fmt_ns(om), spread(name, omn, omx, ocnt, om),
            fmt_ns(nm), spread(name, nmn, nmx, ncnt, nm), delta
    }
    if (!any) {
        print "benchdiff: no common benchmarks between the two files" > "/dev/stderr"
        exit 1
    }
}
'
