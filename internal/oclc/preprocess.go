package oclc

import (
	"fmt"
	"sort"
	"strings"
)

// Preprocess performs the macro pass ATF's OpenCL cost function relies on:
// it injects the tuning-parameter definitions (the equivalent of -D
// compiler options built from a configuration), honours #define/#undef
// directives in the source, strips comments, keeps "#pragma unroll N"
// lines as tokens for the parser, and substitutes object-like macros
// recursively (with a depth limit guarding against cycles).
//
// Only object-like macros are supported — that is exactly the form in
// which tuning parameters enter kernels ("#define WPT 8"). Function-like
// macros are rejected with a clear error.
func Preprocess(source string, defines map[string]string) (string, error) {
	// Standard OpenCL-C macros available to every kernel.
	macros := map[string]string{
		"CLK_LOCAL_MEM_FENCE":  "1",
		"CLK_GLOBAL_MEM_FENCE": "2",
	}
	for k, v := range defines {
		macros[k] = v
	}

	stripped := stripComments(source)
	var out strings.Builder
	for lineNo, line := range strings.Split(stripped, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "#define"):
			rest := strings.TrimSpace(trimmed[len("#define"):])
			name, body := splitMacro(rest)
			if name == "" {
				return "", errf(Pos{Line: lineNo + 1}, "malformed #define %q", trimmed)
			}
			if strings.Contains(name, "(") {
				return "", errf(Pos{Line: lineNo + 1}, "function-like macro %q not supported", name)
			}
			// Injected tuning parameters win over in-source defaults, the
			// same precedence -D options have over #define in OpenCL.
			if _, injected := defines[name]; !injected {
				macros[name] = body
			}
			out.WriteByte('\n')
		case strings.HasPrefix(trimmed, "#undef"):
			name := strings.TrimSpace(trimmed[len("#undef"):])
			delete(macros, name)
			out.WriteByte('\n')
		case strings.HasPrefix(trimmed, "#ifndef"), strings.HasPrefix(trimmed, "#ifdef"),
			strings.HasPrefix(trimmed, "#endif"), strings.HasPrefix(trimmed, "#else"):
			// Conditional compilation is not needed by the kernels here;
			// guard-style usage is tolerated by ignoring the directives.
			out.WriteByte('\n')
		case strings.HasPrefix(trimmed, "#pragma"):
			expanded, err := expandMacros(trimmed, macros, lineNo+1)
			if err != nil {
				return "", err
			}
			out.WriteString(expanded)
			out.WriteByte('\n')
		case strings.HasPrefix(trimmed, "#"):
			return "", errf(Pos{Line: lineNo + 1}, "unsupported directive %q", trimmed)
		default:
			expanded, err := expandMacros(line, macros, lineNo+1)
			if err != nil {
				return "", err
			}
			out.WriteString(expanded)
			out.WriteByte('\n')
		}
	}
	return out.String(), nil
}

// splitMacro separates "NAME body..." into name and body.
func splitMacro(s string) (name, body string) {
	i := 0
	for i < len(s) && (isIdentChar(s[i]) || s[i] == '(') {
		i++
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// expandMacros substitutes whole-identifier occurrences of macros,
// re-scanning the result up to a fixed depth (C preprocessor behaviour,
// minus self-reference suppression — a cycle is reported as an error).
func expandMacros(line string, macros map[string]string, lineNo int) (string, error) {
	const maxDepth = 32
	cur := line
	for depth := 0; ; depth++ {
		next, changed := expandOnce(cur, macros)
		if !changed {
			return next, nil
		}
		if depth >= maxDepth {
			return "", errf(Pos{Line: lineNo}, "macro expansion exceeds depth %d (cycle?) in %q", maxDepth, line)
		}
		cur = next
	}
}

// expandOnce performs a single left-to-right substitution pass.
func expandOnce(line string, macros map[string]string) (string, bool) {
	var out strings.Builder
	changed := false
	i := 0
	for i < len(line) {
		c := line[i]
		if !isIdentStart(c) {
			out.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < len(line) && isIdentChar(line[j]) {
			j++
		}
		word := line[i:j]
		if body, ok := macros[word]; ok {
			// Parenthesize bodies with operators so "N/WPT" with
			// WPT := a+b expands to N/(a+b), matching how ATF quotes
			// numeric values (tuning values are plain literals, so the
			// parentheses are inert in the common case).
			if needsParens(body) {
				out.WriteString("(" + body + ")")
			} else {
				out.WriteString(body)
			}
			changed = true
		} else {
			out.WriteString(word)
		}
		i = j
	}
	return out.String(), changed
}

// needsParens reports whether a macro body contains top-level operators.
func needsParens(body string) bool {
	return strings.ContainsAny(body, "+-*/%<>&|^ ")
}

// stripComments removes /* */ and // comments, preserving newlines so
// source positions stay meaningful.
func stripComments(s string) string {
	var out strings.Builder
	i := 0
	for i < len(s) {
		switch {
		case i+1 < len(s) && s[i] == '/' && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case i+1 < len(s) && s[i] == '/' && s[i+1] == '*':
			i += 2
			for i+1 < len(s) && !(s[i] == '*' && s[i+1] == '/') {
				if s[i] == '\n' {
					out.WriteByte('\n')
				}
				i++
			}
			i += 2
		default:
			out.WriteByte(s[i])
			i++
		}
	}
	return out.String()
}

// BuildDefines renders tuning-parameter values as macro bodies, sorted for
// deterministic builds; exposed for the opencl package's program build
// options and for tests.
func BuildDefines(vals map[string]string) string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "-D %s=%s ", k, vals[k])
	}
	return strings.TrimSpace(b.String())
}
