package oclc

// opcode enumerates the register-based bytecode instruction set. Operands
// are frame-slot/register indices into a flat rval register file (variable
// slots first, expression temporaries above), jump targets are instruction
// offsets, and every counter-relevant operation bumps the same Counters
// fields the tree-walking interpreter does — the two engines must agree
// bit-for-bit (differential_test.go).
type opcode uint8

const (
	opNop opcode = iota

	// Control flow.
	opJump      // ip = imm
	opJumpFalse // if !truthy(r[a]) ip = imm
	opJumpTrue  // if truthy(r[a]) ip = imm
	opReturn    // return r[a] from the current frame
	opReturnNil // return rval{} from the current frame
	opErr       // fail with errTab[imm]
	opBarrier   // Barriers++; suspend until the work-group synchronizes (a = live temp watermark)

	// Counter bumps for statically-resolved work (folded constants,
	// eliminated branches) and loop iterations.
	opCtrInt    // IntOps += imm
	opCtrFloat  // FloatOps += imm
	opCtrBranch // Branches += imm
	opCtrLoop   // LoopIters++
	opCtrUnroll // UnrolledIters++
	opCount     // ctr.Add(&countTab[imm]) (mixed folded delta)

	// Data movement.
	opConstI   // r[a] = intVal(imm)
	opConstF   // r[a] = floatVal(f)
	opConstR   // r[a] = rvalTab[imm]
	opMove     // r[a] = r[b]
	opConvert  // r[a] = convert(r[b], ValKind(c))
	opBool     // r[a] = r[b].truthy() ? 1 : 0
	opStoreVar // slot a = r[b], converted to slot a's current scalar kind
	opIncVar   // r[a] = old/new of slot b ± 1 (imm=delta, c=postfix)
	opIncVal   // r[a] = r[b] ± 1 with counting, no store (imm=delta)

	// Arithmetic/logic; a=dst, b=lhs, c=rhs, C promotion at runtime.
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opShl
	opShr
	opBitAnd
	opBitOr
	opBitXor
	opEq
	opNe
	opLt
	opGt
	opLe
	opGe
	opNeg    // r[a] = -r[b]
	opNot    // r[a] = !r[b]
	opBitNot // r[a] = ^r[b]

	// Immediate forms: r[a] = r[b] OP imm with an integer constant
	// operand (the define-derived tiling constants kernel index math is
	// made of), skipping the opConstI materialization and its register
	// round-trip. Runtime C promotion follows r[b]'s kind; counters match
	// the register forms exactly. opDivImm/opModImm are only emitted with
	// imm != 0 (a constant zero divisor keeps the register form and its
	// runtime error).
	opAddImm
	opSubImm
	opRSubImm // r[a] = imm - r[b]
	opMulImm
	opDivImm
	opModImm
	opShlImm
	opShrImm
	opBitAndImm
	opBitOrImm
	opBitXorImm
	opEqImm
	opNeImm
	opLtImm
	opGtImm
	opLeImm
	opGeImm

	// Fused compare-and-branch: the dominant loop-head/if-head sequence
	// [compare; counter bump; conditional jump] in one dispatch. Operand
	// d packs the comparison kind (low byte), the counter bumped on the
	// taken/either path (cbIter* in the second byte), and the brUniform
	// hint bit; the jump target lives in c because imm carries the
	// constant for the Imm form.
	opBrCmpFalse    // compare r[a] ? r[b]; IntOps++; bump; if false ip = c
	opBrCmpFalseImm // compare r[a] ? imm;  IntOps++; bump; if false ip = c

	// Memory. Loads/stores count traffic by address space and feed the
	// coalescing log exactly like the walker's countAccess.
	opCheckPtr // fail unless r[a] is a pointer ("subscript of non-pointer value")
	opCheck2D  // fail unless r[a] has a second dimension
	opLoad1    // r[a] = r[b][r[c]]                 (imm=site)
	opLoad2    // r[a] = r[b][r[c]][r[d]]           (imm=site; IntOps++)
	opStore1   // r[a][r[b]] = r[c]                 (imm=site)
	opStore2   // r[a][r[b]][r[c]] = r[d]           (imm=site; IntOps++)
	opCheckDim // fail unless r[a] > 0 (array dim; imm=declTab idx, c=dim index)
	opArray    // slot a = new array, dims r[b](, r[c]); imm=declTab idx

	// Builtins and calls.
	opWIQuery     // r[a] = work-item query b at dimension c
	opFMA         // r[a] = fma(r[b], r[c], r[d]); FMAs++
	opCallBuiltin // r[a] = builtinTab[imm](args r[b:b+c])
	opCallFn      // r[a] = fnTab[imm](args r[b:b+c]); Calls++ (d = live temp watermark)
)

// Uniformity hints (compile.go, uniform.go), consumed only by the
// lockstep-vectorized engine (vmvec.go); the scalar VM ignores them. A
// hinted branch is proven work-item-ID-independent: every lane of a
// work-group executing in lockstep takes the same direction, so the
// vector engine decides it once instead of checking per-lane agreement.
// A wrong hint would silently corrupt lockstep execution, so the analysis
// in uniform.go is strictly conservative.
//
// For opJumpFalse/opJumpTrue the hint is d != 0 (d is otherwise unused);
// for opBrCmpFalse* it is the brUniform bit, above the cmp/cbIter bytes.
const brUniform int32 = 1 << 16

// Live temp watermarks: instructions at which a work-item can suspend
// (opBarrier) or leave the frame mid-statement (opCallFn) record the
// compiler's temp-register watermark in a spare operand. Registers at or
// above the watermark are dead — no later instruction reads them before
// writing — which the vector engine's lane re-convergence check uses to
// ignore stale per-lane garbage in expression temporaries.
//
// Lane-width-aware operand layout (vmvec.go): the vector engine keeps one
// structure-of-arrays register file per frame, laid out column-major —
// register r of lane l lives at regs[r*width+l], so every operand index
// in this file addresses a contiguous [width]rval column. Scalar frames
// use the same indices with width 1; no instruction encodes the width.

// Comparison kinds for opBrCmpFalse* (low byte of operand d).
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpGt
	cmpLe
	cmpGe
)

// Counter bumped by opBrCmpFalse* (high byte of operand d): Branches is
// counted on both paths (the walker counts a branch whichever way it
// goes), loop/unroll iterations only when the branch falls through into
// the body.
const (
	cbIterNone = iota
	cbIterBranch
	cbIterLoop
	cbIterUnroll
)

// Work-item query kinds for opWIQuery (operand b).
const (
	wqGlobalID = iota
	wqLocalID
	wqGroupID
	wqGlobalSize
	wqLocalSize
	wqNumGroups
	wqWorkDim
)

// instr is one bytecode instruction. Fixed-width operands keep dispatch a
// dense switch with no interface assertions; pos survives lowering so
// runtime errors carry the same source locations the walker reports.
type instr struct {
	op         opcode
	a, b, c, d int32
	imm        int64
	f          float64
	pos        Pos
}

// vmCode is one function's compiled form plus its constant pools.
type vmCode struct {
	code    []instr
	numRegs int

	countTab []Counters  // opCount deltas (folded expression costs)
	rvalTab  []rval      // folded constant values
	errTab   []error     // precomputed runtime errors
	declTab  []*VarDecl  // array declarations (localAlloc identity)
	callTab  []*Call     // builtin call sites (generic dispatch)
	builtins []builtinFn // parallel to callTab
	fnTab    []*Function // user-function call targets
}
