package core

import (
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atf/internal/obs"
)

// MemoMode selects whether space generation shares completion subtrees
// between prefixes via dependency-aware memoization (footprint.go).
type MemoMode int

const (
	// MemoOn (the default) memoizes subtrees keyed on the read footprint of
	// the remaining parameters. Observable behaviour — enumeration order,
	// Size, index round-trips — is identical to MemoOff.
	MemoOn MemoMode = iota
	// MemoOff disables memoization; every prefix re-derives its subtree.
	// Retained as the ablation baseline (experiment E10).
	MemoOff
)

// GenOptions controls search-space generation.
type GenOptions struct {
	// Workers is the number of goroutines used for parallel generation.
	// 0 means runtime.NumCPU(). 1 forces sequential generation (the
	// baseline of ablation experiment E9).
	Workers int
	// Memoize toggles dependency-aware subtree memoization (default on).
	// It applies to eager construction only: the lazy counting pass always
	// memoizes (it is what makes counting 10^19-range spaces feasible).
	Memoize MemoMode
	// Mode selects eager or lazy construction. The default, SpaceAuto,
	// builds a group eagerly unless its raw range product exceeds
	// LazyThreshold (see lazy.go).
	Mode SpaceMode
	// MaxArenaBytes bounds the resident bytes of lazily expanded slabs
	// across the whole space (cold slabs are LRU-evicted past the budget).
	// <= 0 means unbounded. Eager construction ignores it.
	MaxArenaBytes int64
	// LazyThreshold overrides the SpaceAuto raw-range-product switchover
	// (0 means DefaultLazyThreshold).
	LazyThreshold uint64
	// Census replays a persisted census snapshot (Space.CensusSnapshot) of
	// an earlier generation of the same specification: lazy groups whose
	// signature matches skip the counting pass entirely. An unusable
	// snapshot (wrong version, different shape, corrupt) is ignored and
	// generation counts as usual. Callers are responsible for keying
	// snapshots by the full specification — the embedded signature only
	// guards the raw enumeration shape, not constraint semantics.
	Census []byte
	// slabs, when set by GenerateSpace, is the slab cache shared by all
	// lazy groups of one space so MaxArenaBytes bounds the space, not each
	// group separately.
	slabs *slabCache
	// census is Census decoded once per GenerateSpace call.
	census map[string]*censusGroup
}

// groupBuilder holds the state shared by the workers generating one group.
type groupBuilder struct {
	params   []*Param
	memo     *memoTable // nil when memoization is off or never applicable
	foot     [][]int    // per-depth suffix footprints (memo key projection)
	memoable []bool     // per-depth: is memoizing this depth worthwhile?
	checks   atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// workerState is the per-worker mutable context: the partial configuration,
// a reusable memo-key buffer, and the parameter position currently being
// checked — recorded so a panicking constraint can be attributed to the
// offending parameter, depth, and candidate value.
type workerState struct {
	cfg    *Config
	keybuf []byte
	depth  int
	val    Value
	// Worker-local statistics batched by the lazy counting pass and flushed
	// once per chunk; per-visit atomic increments dominate profiles on
	// 10^19-range spaces.
	checks uint64
	hits   uint64
	misses uint64
}

// genPanic wraps a constraint panic with the position that raised it. It is
// attached at the innermost recovery point and stored in memo entries so
// workers that observe the panic through a shared subtree report the
// original location, not their own.
type genPanic struct {
	name  string
	depth int
	val   Value
	cause any
}

// annotatePanic converts a generation panic into a descriptive error. If r
// is not yet a genPanic, the worker's current position identifies the
// offending parameter.
func annotatePanic(r any, params []*Param, st *workerState) error {
	gp, ok := r.(genPanic)
	if !ok {
		gp = genPanic{name: params[st.depth].Name, depth: st.depth, val: st.val, cause: r}
	}
	return fmt.Errorf("core: constraint of parameter %q (depth %d) panicked on candidate value %v: %v",
		gp.name, gp.depth, gp.val, gp.cause)
}

// GenerateGroup builds the sub-space trie for one parameter group by
// iterating the parameters' raw ranges in declaration order and applying
// each parameter's constraint against the partial configuration (paper,
// Section II Step 1). Invalid values are pruned immediately, so the
// Cartesian product of raw ranges — which for XgemmDirect exceeds 10^19 —
// is never formed. With opts.Memoize on, prefixes that agree on the read
// footprint of the remaining parameters additionally share one completion
// subtree (see footprint.go).
func GenerateGroup(g *Group, opts GenOptions) (*Tree, error) {
	if lazySelected(g, opts) {
		return generateLazyGroup(g, opts)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := g.Names()

	b := &groupBuilder{params: g.Params}
	shared := false
	if opts.Memoize == MemoOn {
		b.foot, b.memoable, _ = suffixFootprints(g.Params)
		for _, m := range b.memoable {
			if m {
				shared = true
			}
		}
		if shared {
			b.memo = newMemoTable()
		}
	}

	rootRange := g.Params[0].Range
	n := rootRange.Len()
	if n == 0 {
		return finishTree(b, names, nil, shared)
	}
	if workers > n {
		workers = n
	}

	// Each worker owns a contiguous chunk of the first parameter's raw
	// range and builds the subtrees for its chunk independently; chunk
	// results are concatenated in range order so the trie (and therefore
	// configuration indices) is identical regardless of worker count. The
	// memo table is shared: a subtree key is computed by exactly one worker
	// (others wait on the in-flight entry), keeping constraint-check totals
	// and node counts worker-count-independent too.
	type chunkResult struct {
		roots []bnode
		err   error
	}
	results := make([]chunkResult, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &workerState{cfg: NewConfig(names)}
			defer func() {
				if r := recover(); r != nil {
					results[w].err = annotatePanic(r, g.Params, st)
				}
			}()
			results[w].roots = b.build(st, 0, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	var roots []bnode
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		roots = append(roots, r.roots...)
	}
	return finishTree(b, names, roots, shared)
}

// finishTree flattens the built block DAG into the arena Tree and attaches
// the generation statistics.
func finishTree(b *groupBuilder, names []string, roots []bnode, shared bool) (*Tree, error) {
	t, err := flattenTree(b.params, names, roots, shared)
	if err != nil {
		return nil, err
	}
	t.checks = b.checks.Load()
	t.memoHits = b.hits.Load()
	t.memoMisses = b.misses.Load()
	return t, nil
}

// build constructs the sibling block for parameter depth d, restricted to
// raw range indices [lo, hi) (the full range for all depths except a
// parallelized root).
func (b *groupBuilder) build(st *workerState, d, lo, hi int) []bnode {
	p := b.params[d]
	last := d == len(b.params)-1
	var checks uint64
	var out []bnode

	emit := func(v Value) {
		checks++
		st.depth, st.val = d, v
		if !p.Accepts(v, st.cfg) {
			return
		}
		if last {
			out = append(out, bnode{val: v, count: 1})
			return
		}
		st.cfg.set(d, v)
		children := b.descend(st, d+1)
		if len(children) == 0 {
			return // dead prefix: no valid completion exists
		}
		out = append(out, bnode{val: v, children: children, count: sumCounts(children)})
	}

	// Divisor-hinted fast path: enumerate only candidate divisors. On a
	// parallelized root level each worker intersects the divisor set with
	// its own chunk, so multi-worker generation keeps the fast path.
	if vals, ok := hintedValues(p, st.cfg, lo, hi); ok {
		for _, v := range vals {
			emit(Int(v))
		}
	} else {
		for i := lo; i < hi; i++ {
			emit(p.Range.At(i))
		}
	}
	b.checks.Add(checks)
	return out
}

// descend produces the subtree block below the current prefix, at depth d.
// For memoable depths the block is looked up by (depth, footprint
// projection); the first worker to encounter a key computes the block,
// concurrent encounters wait on the in-flight entry, later ones reuse it.
func (b *groupBuilder) descend(st *workerState, d int) []bnode {
	full := b.params[d].Range.Len()
	if b.memo == nil || !b.memoable[d] {
		return b.build(st, d, 0, full)
	}
	st.keybuf = memoKeyAppend(st.keybuf[:0], d, b.foot[d], st.cfg)
	e, existed := b.memo.lookup(st.keybuf)
	if existed {
		b.hits.Add(1)
		<-e.done
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.nodes
	}
	b.misses.Add(1)
	defer func() {
		if r := recover(); r != nil {
			gp, ok := r.(genPanic)
			if !ok {
				gp = genPanic{name: b.params[st.depth].Name, depth: st.depth, val: st.val, cause: r}
			}
			e.panicked = gp
			close(e.done)
			panic(gp)
		}
	}()
	e.nodes = b.build(st, d, 0, full)
	e.count = sumCounts(e.nodes)
	close(e.done)
	return e.nodes
}

// GenerateSpace generates the full search space from parameter groups. The
// groups are generated concurrently ("one thread per dependent parameter
// group", Section V) and, within a group, the first parameter's range is
// split across workers. The resulting Space is the cross product of the
// group sub-spaces; the product is represented implicitly and never
// materialized.
func GenerateSpace(groups []*Group, opts GenOptions) (*Space, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no tuning parameters")
	}
	span := obs.StartSpan("spacegen", slog.Int("groups", len(groups)))
	start := time.Now()
	// Validate global name uniqueness up front for a good error message.
	seen := make(map[string]bool)
	var names []string
	var params []*Param
	for _, g := range groups {
		for _, p := range g.Params {
			if seen[p.Name] {
				err := fmt.Errorf("core: duplicate tuning parameter %q", p.Name)
				span.Fail(err)
				return nil, err
			}
			seen[p.Name] = true
			names = append(names, p.Name)
			params = append(params, p)
		}
	}

	if opts.census == nil {
		opts.census = decodeCensus(opts.Census)
	}

	// One slab cache per space: when any group constructs lazily, all lazy
	// groups share it so MaxArenaBytes bounds the space as a whole.
	if opts.slabs == nil {
		for _, g := range groups {
			if lazySelected(g, opts) {
				opts.slabs = newSlabCache(opts.MaxArenaBytes)
				break
			}
		}
	}

	trees := make([]*Tree, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			trees[i], errs[i] = GenerateGroup(g, opts)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			span.Fail(err)
			return nil, err
		}
	}

	s := &Space{trees: trees, names: names, params: params}
	size := uint64(1)
	for _, t := range trees {
		if t.total == 0 {
			size = 0
			break
		}
		if size > 0 && t.total > ^uint64(0)/size {
			err := fmt.Errorf("core: search space size overflows uint64")
			span.Fail(err)
			return nil, err
		}
		size *= t.total
	}
	s.size = size

	var logical, unique, arena, hits, misses uint64
	lazyGroups := 0
	for _, t := range trees {
		l, u := t.Nodes()
		logical += l
		unique += u
		arena += t.ArenaBytes()
		h, m := t.MemoStats()
		hits += h
		misses += m
		if t.Lazy() {
			lazyGroups++
		}
	}
	mSpacegenRuns.Inc()
	mSpacegenSeconds.Observe(time.Since(start).Seconds())
	mSpacegenChecks.Add(s.Checks())
	mSpacegenConfigs.Set(int64(size))
	mSpacegenNodes.Set(int64(logical))
	mSpacegenUniqueNodes.Set(int64(unique))
	mSpacegenArenaBytes.Set(int64(arena))
	mSpacegenMemoHits.Add(hits)
	mSpacegenMemoMisses.Add(misses)
	span.End(
		slog.Uint64("valid_configs", size),
		slog.Uint64("tree_nodes", logical),
		slog.Uint64("unique_nodes", unique),
		slog.Uint64("memo_hits", hits),
		slog.Uint64("constraint_checks", s.Checks()),
		slog.Int("lazy_groups", lazyGroups))
	return s, nil
}

// GenerateFlat is a convenience wrapper generating a space from an ungrouped
// parameter list as a single group — always correct, sequentially chained.
func GenerateFlat(params []*Param, opts GenOptions) (*Space, error) {
	return GenerateSpace([]*Group{G(params...)}, opts)
}
