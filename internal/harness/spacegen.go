package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/cltune"
	"atf/internal/core"
)

// SpaceGenResult is experiment E3: ATF's constrained generation versus
// CLTune's generate-then-filter on the unrestricted XgemmDirect space for
// 32×32 matrices (paper §VI-A: ATF < 1 s; CLTune aborted after 3 h).
type SpaceGenResult struct {
	ATFTime         time.Duration
	ATFChecks       uint64
	ATFSize         uint64
	CLTuneBudget    uint64
	CLTuneVisited   uint64
	CLTuneTime      time.Duration
	CLTuneAborted   bool
	CLTuneProjected time.Duration
	RawCombinations string
}

// SpaceGen runs E3. cltuneBudget caps the raw combinations the CLTune
// generator may enumerate before "aborting" (0 = 5e7, a few seconds).
func SpaceGen(rangeCap int64, cltuneBudget uint64, workers int) (*SpaceGenResult, error) {
	if cltuneBudget == 0 {
		cltuneBudget = 5e7
	}
	res := &SpaceGenResult{CLTuneBudget: cltuneBudget}

	// ATF: constrained nested generation (count mode measures the pure
	// generation loop; trie materialization adds allocation on top).
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: rangeCap})
	start := time.Now()
	n, checks, err := core.CountGroup(core.G(params...), core.GenOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	res.ATFTime = time.Since(start)
	res.ATFChecks = checks
	res.ATFSize = n

	// CLTune: enumerate the full Cartesian product, filter afterwards.
	ct := buildCLTuneXgemm(rangeCap)
	ct.GenerationBudget = cltuneBudget
	start = time.Now()
	genErr := ct.GenerateSpace()
	res.CLTuneTime = time.Since(start)
	res.CLTuneVisited = ct.RawVisited()
	res.CLTuneAborted = genErr == cltune.ErrBudgetExhausted
	if genErr != nil && !res.CLTuneAborted {
		return nil, genErr
	}

	// Project the full enumeration time from the measured rate.
	rawTotal := rawProduct(rangeCap)
	res.RawCombinations = fmt.Sprintf("%.3g", rawTotal)
	if res.CLTuneVisited > 0 {
		perVisit := float64(res.CLTuneTime) / float64(res.CLTuneVisited)
		res.CLTuneProjected = time.Duration(perVisit * rawTotal)
	}
	return res, nil
}

// rawProduct is the unconstrained combination count for the given cap:
// cap^6 integer parameters × 4×4 vector widths × 2×2 paddings.
func rawProduct(rangeCap int64) float64 {
	c := float64(rangeCap)
	return c * c * c * c * c * c * 64
}

// buildCLTuneXgemm expresses the unrestricted XgemmDirect space in
// CLTune's model: full value lists plus vector-based constraint functions.
func buildCLTuneXgemm(rangeCap int64) *cltune.Tuner {
	t := cltune.NewTuner()
	full := make([]uint64, rangeCap)
	for i := range full {
		full[i] = uint64(i) + 1
	}
	vw := []uint64{1, 2, 4, 8}
	pad := []uint64{0, 1}
	t.AddParameter("WGD", full)
	t.AddParameter("KWID", full)
	t.AddParameter("MDIMCD", full)
	t.AddParameter("NDIMCD", full)
	t.AddParameter("MDIMAD", full)
	t.AddParameter("NDIMBD", full)
	t.AddParameter("VWMD", vw)
	t.AddParameter("VWND", vw)
	t.AddParameter("PADA", pad)
	t.AddParameter("PADB", pad)

	div := func(a, b uint64) bool { return b != 0 && a%b == 0 }
	t.AddConstraint(func(v []uint64) bool { return div(v[0], v[1]) }, []string{"WGD", "KWID"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0], v[1]) }, []string{"WGD", "MDIMCD"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0], v[1]) }, []string{"WGD", "NDIMCD"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0], v[1]) }, []string{"WGD", "MDIMAD"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0], v[1]) }, []string{"WGD", "NDIMBD"})
	t.AddConstraint(func(v []uint64) bool {
		threads := v[1] * v[2]
		return div(threads, v[3]) && div(v[0], threads/v[3])
	}, []string{"WGD", "MDIMCD", "NDIMCD", "MDIMAD"})
	t.AddConstraint(func(v []uint64) bool {
		threads := v[1] * v[2]
		return div(threads, v[3]) && div(v[0], threads/v[3])
	}, []string{"WGD", "MDIMCD", "NDIMCD", "NDIMBD"})
	t.AddConstraint(func(v []uint64) bool { return v[0]*v[1] <= 1024 },
		[]string{"MDIMCD", "NDIMCD"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0]/v[1], v[2]) && div(v[0]/v[3], v[2]) },
		[]string{"WGD", "MDIMCD", "VWMD", "MDIMAD"})
	t.AddConstraint(func(v []uint64) bool { return div(v[0]/v[1], v[2]) && div(v[0]/v[3], v[2]) },
		[]string{"WGD", "NDIMCD", "VWND", "NDIMBD"})
	t.AddConstraint(func(v []uint64) bool {
		bytes := 4 * v[0] * ((v[0] + v[1]) + (v[0] + v[2]))
		return bytes <= 48<<10
	}, []string{"WGD", "PADA", "PADB"})
	return t
}

// SpaceGenTable renders E3.
func SpaceGenTable(r *SpaceGenResult) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "search-space generation: ATF (constrained, nested) vs CLTune (generate-then-filter)",
		Columns: []string{"generator", "combinations visited", "valid configs", "time"},
	}
	t.Rows = append(t.Rows, []string{
		"ATF", fmt.Sprintf("%d", r.ATFChecks), fmt.Sprintf("%d", r.ATFSize),
		r.ATFTime.String(),
	})
	cl := "completed"
	valid := "-"
	if r.CLTuneAborted {
		cl = fmt.Sprintf("ABORTED at budget; full product %s would take ~%v",
			r.RawCombinations, r.CLTuneProjected.Round(time.Second))
	}
	t.Rows = append(t.Rows, []string{
		"CLTune", fmt.Sprintf("%d (%s)", r.CLTuneVisited, cl), valid,
		r.CLTuneTime.String(),
	})
	t.Notes = append(t.Notes,
		"paper: ATF generates in <1 s; CLTune was aborted after 3 hours (unrestricted ranges, 32x32)")
	return t
}
