package core

import (
	"hash/maphash"
	"sync"
)

// costCache is the concurrent cost-evaluation cache behind ExploreParallel
// (the sequential Explore keeps its plain map — no synchronization on the
// single-threaded path). It is sharded by key hash so workers evaluating
// different configurations do not contend on one lock, and it deduplicates
// in-flight work: when two workers ask for the same configuration at once,
// one evaluates and the other blocks on the entry's done channel, so the
// cost function runs at most once per configuration.
type costCache struct {
	seed   maphash.Seed
	shards [costCacheShards]costCacheShard
}

const costCacheShards = 32

type costCacheShard struct {
	mu sync.Mutex
	m  map[string]*costCacheEntry
}

type costCacheEntry struct {
	done chan struct{} // closed once cost/err are set
	cost Cost
	err  error
}

func newCostCache() *costCache {
	c := &costCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*costCacheEntry)
	}
	return c
}

// getOrCompute returns the cached outcome for key, computing it via eval on
// the first request. Concurrent requests for the same key wait for the
// first evaluation instead of re-running it.
func (c *costCache) getOrCompute(key string, eval func() (Cost, error)) (Cost, error) {
	sh := &c.shards[maphash.String(c.seed, key)%costCacheShards]
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			mCostCacheHits.Inc()
		default:
			// In-flight dedup: another worker is evaluating this exact
			// configuration right now; wait for its result.
			mCostCacheInflight.Inc()
			<-e.done
		}
		return e.cost, e.err
	}
	mCostCacheMisses.Inc()
	e := &costCacheEntry{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	e.cost, e.err = eval()
	close(e.done)
	return e.cost, e.err
}
