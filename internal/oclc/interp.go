package oclc

import (
	"fmt"
	"math"
)

// wiCtx is the execution context of one work-item.
type wiCtx struct {
	prog  *Program
	wg    *wgCtx
	frame []rval
	ctr   *Counters

	gid [3]int64 // global id per dimension
	lid [3]int64 // local id
	lin int      // linear local id (for coalescing batches)
}

// ctrlFlow signals non-linear control flow while walking the tree.
type ctrlFlow uint8

const (
	flowNormal ctrlFlow = iota
	flowReturn
	flowBreak
	flowContinue
)

// execStmt executes one statement; it returns the control-flow signal and,
// for flowReturn, the returned value.
func (w *wiCtx) execStmt(s Stmt) (ctrlFlow, rval, error) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			fl, rv, err := w.execStmt(sub)
			if err != nil || fl != flowNormal {
				return fl, rv, err
			}
		}
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := w.execDecl(d); err != nil {
				return flowNormal, rval{}, err
			}
		}
	case *ExprStmt:
		if _, err := w.eval(st.X); err != nil {
			return flowNormal, rval{}, err
		}
	case *If:
		c, err := w.eval(st.Cond)
		if err != nil {
			return flowNormal, rval{}, err
		}
		w.ctr.Branches++
		if c.truthy() {
			return w.execStmt(st.Then)
		}
		if st.Else != nil {
			return w.execStmt(st.Else)
		}
	case *For:
		if st.Init != nil {
			if fl, rv, err := w.execStmt(st.Init); err != nil || fl == flowReturn {
				return fl, rv, err
			}
		}
		for {
			if st.Cond != nil {
				c, err := w.eval(st.Cond)
				if err != nil {
					return flowNormal, rval{}, err
				}
				if !c.truthy() {
					break
				}
			}
			if st.Unroll != 0 { // >0: factor hint; -1: full unroll
				w.ctr.UnrolledIters++
			} else {
				w.ctr.LoopIters++
			}
			fl, rv, err := w.execStmt(st.Body)
			if err != nil || fl == flowReturn {
				return fl, rv, err
			}
			if fl == flowBreak {
				break
			}
			if st.Post != nil {
				if _, err := w.eval(st.Post); err != nil {
					return flowNormal, rval{}, err
				}
			}
		}
	case *While:
		for {
			c, err := w.eval(st.Cond)
			if err != nil {
				return flowNormal, rval{}, err
			}
			if !c.truthy() {
				break
			}
			w.ctr.LoopIters++
			fl, rv, err := w.execStmt(st.Body)
			if err != nil || fl == flowReturn {
				return fl, rv, err
			}
			if fl == flowBreak {
				break
			}
		}
	case *Return:
		if st.X == nil {
			return flowReturn, rval{}, nil
		}
		v, err := w.eval(st.X)
		return flowReturn, v, err
	case *BreakStmt:
		return flowBreak, rval{}, nil
	case *ContinueStmt:
		return flowContinue, rval{}, nil
	default:
		return flowNormal, rval{}, fmt.Errorf("oclc: unknown statement %T", s)
	}
	return flowNormal, rval{}, nil
}

// execDecl allocates and initializes one variable.
func (w *wiCtx) execDecl(d *VarDecl) error {
	if len(d.Dims) > 0 {
		return w.execArrayDecl(d)
	}
	v := rval{}
	switch d.Type.Kind {
	case KFloat:
		v = floatVal(0)
	default:
		v = intVal(0)
	}
	if d.Init != nil {
		iv, err := w.eval(d.Init)
		if err != nil {
			return err
		}
		v = convert(iv, d.Type.Kind)
	}
	w.frame[d.Slot] = v
	return nil
}

// execArrayDecl allocates a private register array or a work-group-shared
// local tile.
func (w *wiCtx) execArrayDecl(d *VarDecl) error {
	dims := make([]int64, len(d.Dims))
	size := int64(1)
	for i, e := range d.Dims {
		v, err := w.eval(e)
		if err != nil {
			return err
		}
		dims[i] = v.asInt()
		if dims[i] <= 0 {
			return fmt.Errorf("oclc: %s: array %q dimension %d is %d", d.Pos, d.Name, i, dims[i])
		}
		size *= dims[i]
	}
	elemBytes := 4
	var mem *Memory
	if d.Type.Space == SpaceLocal {
		var err error
		mem, err = w.wg.localAlloc(d, d.Type.Kind, elemBytes, size)
		if err != nil {
			return err
		}
	} else {
		mem = &Memory{Space: SpacePrivate, Elem: d.Type.Kind, ElemBytes: elemBytes, Data: make([]float64, size)}
	}
	ptr := rval{k: KPtr, mem: mem}
	if len(dims) == 2 {
		ptr.dim1 = dims[1]
	}
	w.frame[d.Slot] = ptr
	return nil
}

// convert applies a scalar conversion.
func convert(v rval, to ValKind) rval {
	switch to {
	case KFloat:
		return floatVal(v.asFloat())
	case KInt, KBool:
		return intVal(v.asInt())
	default:
		return v
	}
}

// eval evaluates an expression.
func (w *wiCtx) eval(e Expr) (rval, error) {
	switch x := e.(type) {
	case *IntLit:
		return intVal(x.V), nil
	case *FloatLit:
		return floatVal(x.V), nil
	case *VarRef:
		return w.frame[x.Slot], nil
	case *Cast:
		v, err := w.eval(x.X)
		if err != nil {
			return rval{}, err
		}
		return convert(v, x.To.Kind), nil
	case *Cond:
		c, err := w.eval(x.C)
		if err != nil {
			return rval{}, err
		}
		w.ctr.Branches++
		if c.truthy() {
			return w.eval(x.T)
		}
		return w.eval(x.F)
	case *Unary:
		return w.evalUnary(x)
	case *Binary:
		return w.evalBinary(x)
	case *Assign:
		return w.evalAssign(x)
	case *Index:
		mem, off, err := w.resolveIndex(x)
		if err != nil {
			return rval{}, err
		}
		w.countAccess(mem, off, x.Site, false)
		return mem.load(off)
	case *Call:
		return w.evalCall(x)
	default:
		return rval{}, fmt.Errorf("oclc: unknown expression %T", e)
	}
}

// resolveIndex computes the target memory and element offset of an Index.
func (w *wiCtx) resolveIndex(x *Index) (*Memory, int64, error) {
	base, err := w.eval(x.Base)
	if err != nil {
		return nil, 0, err
	}
	if base.k != KPtr || base.mem == nil {
		return nil, 0, errf(x.Pos, "subscript of non-pointer value")
	}
	i0, err := w.eval(x.Idx[0])
	if err != nil {
		return nil, 0, err
	}
	off := base.off + i0.asInt()
	if len(x.Idx) == 2 {
		if base.dim1 <= 0 {
			return nil, 0, errf(x.Pos, "2-D subscript of 1-D array")
		}
		i1, err := w.eval(x.Idx[1])
		if err != nil {
			return nil, 0, err
		}
		off = base.off + i0.asInt()*base.dim1 + i1.asInt()
		w.ctr.IntOps++ // row-major address computation
	}
	return base.mem, off, nil
}

// countAccess attributes a memory access to the right counter and feeds
// the coalescing recorder for global traffic.
func (w *wiCtx) countAccess(mem *Memory, off int64, site int, store bool) {
	switch mem.Space {
	case SpaceGlobal:
		if store {
			w.ctr.GlobalStores++
		} else {
			w.ctr.GlobalLoads++
		}
		if w.wg.log != nil {
			w.wg.log.record(site, w.lin, byteAddr(mem, off), store)
		}
	case SpaceLocal:
		if store {
			w.ctr.LocalStores++
		} else {
			w.ctr.LocalLoads++
		}
	default:
		w.ctr.PrivateAccess++
	}
}

func (w *wiCtx) evalUnary(x *Unary) (rval, error) {
	switch x.Op {
	case "++", "--":
		old, err := w.eval(x.X)
		if err != nil {
			return rval{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		var nv rval
		if old.k == KFloat {
			nv = floatVal(old.f + float64(delta))
			w.ctr.FloatOps++
		} else {
			nv = intVal(old.i + delta)
			w.ctr.IntOps++
		}
		if err := w.storeTo(x.X, nv, 0); err != nil {
			return rval{}, err
		}
		if x.Postfix {
			return old, nil
		}
		return nv, nil
	}
	v, err := w.eval(x.X)
	if err != nil {
		return rval{}, err
	}
	switch x.Op {
	case "-":
		if v.k == KFloat {
			w.ctr.FloatOps++
			return floatVal(-v.f), nil
		}
		w.ctr.IntOps++
		return intVal(-v.i), nil
	case "!":
		w.ctr.IntOps++
		if v.truthy() {
			return intVal(0), nil
		}
		return intVal(1), nil
	case "~":
		w.ctr.IntOps++
		return intVal(^v.asInt()), nil
	}
	return rval{}, errf(x.Pos, "unknown unary operator %q", x.Op)
}

func (w *wiCtx) evalBinary(x *Binary) (rval, error) {
	// Short-circuit logical operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := w.eval(x.L)
		if err != nil {
			return rval{}, err
		}
		w.ctr.Branches++
		if x.Op == "&&" && !l.truthy() {
			return intVal(0), nil
		}
		if x.Op == "||" && l.truthy() {
			return intVal(1), nil
		}
		r, err := w.eval(x.R)
		if err != nil {
			return rval{}, err
		}
		if r.truthy() {
			return intVal(1), nil
		}
		return intVal(0), nil
	}
	l, err := w.eval(x.L)
	if err != nil {
		return rval{}, err
	}
	r, err := w.eval(x.R)
	if err != nil {
		return rval{}, err
	}
	return w.applyBinary(x.Pos, x.Op, l, r)
}

// applyBinary performs one arithmetic/comparison operation with C
// promotion rules and counts it.
func (w *wiCtx) applyBinary(pos Pos, op string, l, r rval) (rval, error) {
	isFloat := l.k == KFloat || r.k == KFloat
	switch op {
	case "+", "-", "*", "/":
		if isFloat {
			w.ctr.FloatOps++
			a, b := l.asFloat(), r.asFloat()
			switch op {
			case "+":
				return floatVal(a + b), nil
			case "-":
				return floatVal(a - b), nil
			case "*":
				return floatVal(a * b), nil
			default:
				return floatVal(a / b), nil
			}
		}
		w.ctr.IntOps++
		a, b := l.asInt(), r.asInt()
		switch op {
		case "+":
			return intVal(a + b), nil
		case "-":
			return intVal(a - b), nil
		case "*":
			return intVal(a * b), nil
		default:
			if b == 0 {
				return rval{}, errf(pos, "integer division by zero")
			}
			return intVal(a / b), nil
		}
	case "%":
		if isFloat {
			return rval{}, errf(pos, "%% requires integer operands")
		}
		w.ctr.IntOps++
		b := r.asInt()
		if b == 0 {
			return rval{}, errf(pos, "integer modulo by zero")
		}
		return intVal(l.asInt() % b), nil
	case "<<", ">>", "&", "|", "^":
		if isFloat {
			return rval{}, errf(pos, "bitwise operator on float")
		}
		w.ctr.IntOps++
		a, b := l.asInt(), r.asInt()
		switch op {
		case "<<":
			return intVal(a << uint(b)), nil
		case ">>":
			return intVal(a >> uint(b)), nil
		case "&":
			return intVal(a & b), nil
		case "|":
			return intVal(a | b), nil
		default:
			return intVal(a ^ b), nil
		}
	case "==", "!=", "<", ">", "<=", ">=":
		w.ctr.IntOps++
		var res bool
		if isFloat {
			a, b := l.asFloat(), r.asFloat()
			switch op {
			case "==":
				res = a == b
			case "!=":
				res = a != b
			case "<":
				res = a < b
			case ">":
				res = a > b
			case "<=":
				res = a <= b
			default:
				res = a >= b
			}
		} else {
			a, b := l.asInt(), r.asInt()
			switch op {
			case "==":
				res = a == b
			case "!=":
				res = a != b
			case "<":
				res = a < b
			case ">":
				res = a > b
			case "<=":
				res = a <= b
			default:
				res = a >= b
			}
		}
		if res {
			return intVal(1), nil
		}
		return intVal(0), nil
	}
	return rval{}, errf(pos, "unknown binary operator %q", op)
}

func (w *wiCtx) evalAssign(x *Assign) (rval, error) {
	v, err := w.eval(x.Value)
	if err != nil {
		return rval{}, err
	}
	if x.Op != "=" {
		old, err := w.eval(x.Target) // counts the load
		if err != nil {
			return rval{}, err
		}
		op := x.Op[:len(x.Op)-1] // "+=" -> "+"
		v, err = w.applyBinary(x.Pos, op, old, v)
		if err != nil {
			return rval{}, err
		}
	}
	if err := w.storeTo(x.Target, v, 0); err != nil {
		return rval{}, err
	}
	return v, nil
}

// storeTo writes a value through an lvalue expression.
func (w *wiCtx) storeTo(target Expr, v rval, depth int) error {
	switch t := target.(type) {
	case *VarRef:
		cur := w.frame[t.Slot]
		if cur.k == KFloat || cur.k == KInt {
			v = convert(v, cur.k)
		}
		w.frame[t.Slot] = v
		return nil
	case *Index:
		mem, off, err := w.resolveIndex(t)
		if err != nil {
			return err
		}
		w.countAccess(mem, off, t.Site, true)
		return mem.store(off, v)
	default:
		return errf(target.exprPos(), "invalid assignment target %T", target)
	}
}

// evalCall dispatches builtins and user-defined helper functions.
func (w *wiCtx) evalCall(x *Call) (rval, error) {
	if fn, ok := builtins[x.Name]; ok {
		args := make([]rval, len(x.Args))
		for i, a := range x.Args {
			v, err := w.eval(a)
			if err != nil {
				return rval{}, err
			}
			args[i] = v
		}
		return fn(w, x, args)
	}
	callee, ok := w.prog.Funcs[x.Name]
	if ok {
		return w.callFunction(callee, x)
	}
	return rval{}, errf(x.Pos, "call to undefined function %q", x.Name)
}

// callFunction invokes a user-defined helper with a fresh frame.
func (w *wiCtx) callFunction(fn *Function, x *Call) (rval, error) {
	if len(x.Args) != len(fn.Params) {
		return rval{}, errf(x.Pos, "%q expects %d arguments, got %d", fn.Name, len(fn.Params), len(x.Args))
	}
	frame := make([]rval, fn.NumSlots)
	for i, a := range x.Args {
		v, err := w.eval(a)
		if err != nil {
			return rval{}, err
		}
		if !fn.Params[i].Type.Ptr {
			v = convert(v, fn.Params[i].Type.Kind)
		}
		frame[fn.Params[i].Slot] = v
	}
	w.ctr.Calls++
	saved := w.frame
	w.frame = frame
	defer func() { w.frame = saved }()
	fl, rv, err := w.execStmt(fn.Body)
	if err != nil {
		return rval{}, err
	}
	if fl == flowReturn {
		if !fn.Ret.Ptr && fn.Ret.Kind != KVoid {
			rv = convert(rv, fn.Ret.Kind)
		}
		return rv, nil
	}
	return rval{}, nil
}

// mathUnary adapts a float function as a special-ops builtin.
func mathUnary(f func(float64) float64) builtinFn {
	return func(w *wiCtx, x *Call, args []rval) (rval, error) {
		if len(args) != 1 {
			return rval{}, errf(x.Pos, "%s expects 1 argument", x.Name)
		}
		w.ctr.SpecialOps++
		return floatVal(f(args[0].asFloat())), nil
	}
}

var _ = math.Sqrt
