package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Str("wavefront"), KindString, "wavefront"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueOfConversions(t *testing.T) {
	if ValueOf(5).Int() != 5 {
		t.Error("int conversion failed")
	}
	if ValueOf(int8(3)).Int() != 3 || ValueOf(int16(3)).Int() != 3 ||
		ValueOf(int32(3)).Int() != 3 || ValueOf(int64(3)).Int() != 3 {
		t.Error("sized int conversion failed")
	}
	if ValueOf(uint(9)).Int() != 9 || ValueOf(uint8(9)).Int() != 9 ||
		ValueOf(uint16(9)).Int() != 9 || ValueOf(uint32(9)).Int() != 9 ||
		ValueOf(uint64(9)).Int() != 9 {
		t.Error("unsigned conversion failed")
	}
	if ValueOf(float32(1.5)).Float() != 1.5 || ValueOf(2.25).Float() != 2.25 {
		t.Error("float conversion failed")
	}
	if !ValueOf(true).Bool() || ValueOf(false).Bool() {
		t.Error("bool conversion failed")
	}
	if ValueOf("simd").Str() != "simd" {
		t.Error("string conversion failed")
	}
	// Idempotent on Value.
	v := Int(11)
	if !ValueOf(v).Equal(v) {
		t.Error("ValueOf(Value) should be identity")
	}
}

func TestValueOfUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported type")
		}
	}()
	ValueOf(struct{}{})
}

func TestValueIntOnBool(t *testing.T) {
	if Bool(true).Int() != 1 || Bool(false).Int() != 0 {
		t.Error("bool should promote to 0/1 for integral constraints")
	}
}

func TestValueFloatPromotion(t *testing.T) {
	if Int(3).Float() != 3.0 {
		t.Error("int should convert to float")
	}
	if Bool(true).Float() != 1.0 {
		t.Error("bool should convert to float")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on float", func() { Float(1).Int() })
	mustPanic("Int on string", func() { Str("x").Int() })
	mustPanic("Float on string", func() { Str("x").Float() })
	mustPanic("Bool on float", func() { Float(1).Bool() })
	mustPanic("Str on int", func() { Int(1).Str() })
}

func TestValueEqual(t *testing.T) {
	if !Int(4).Equal(Int(4)) || Int(4).Equal(Int(5)) {
		t.Error("int equality broken")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("cross-kind values must not be equal")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("int(1) must differ from bool(true)")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if !Float(0.5).Equal(Float(0.5)) {
		t.Error("float equality broken")
	}
}

func TestValueLess(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("int ordering broken")
	}
	if !Str("a").Less(Str("b")) {
		t.Error("string ordering broken")
	}
	if !Int(1).Less(Float(1.5)) {
		t.Error("mixed numeric ordering should compare as floats")
	}
	if !Bool(false).Less(Bool(true)) {
		t.Error("bool ordering broken")
	}
}

func TestValueLessIrreflexive(t *testing.T) {
	f := func(a int64) bool { return !Int(a).Less(Int(a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueLessTrichotomy(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		less, greater, eq := va.Less(vb), vb.Less(va), va.Equal(vb)
		n := 0
		for _, x := range []bool{less, greater, eq} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueIsFinite(t *testing.T) {
	if !Int(1).IsFinite() || !Str("x").IsFinite() || !Bool(true).IsFinite() {
		t.Error("non-float values are always finite")
	}
	if !Float(1.0).IsFinite() {
		t.Error("1.0 is finite")
	}
	if Float(math.Inf(1)).IsFinite() || Float(math.NaN()).IsFinite() {
		t.Error("inf/NaN must not be finite")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" ||
		KindBool.String() != "bool" || KindString.String() != "string" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
