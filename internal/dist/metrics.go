package dist

import (
	"fmt"

	"atf/internal/obs"
)

// Coordinator-side fleet instrumentation, recorded into obs.Default()
// and exported by atfd's /metrics. Metric names are documented in
// DESIGN.md §3c; keep the two in sync.
var (
	mWorkersLive = obs.NewGauge("atf_dist_workers_live",
		"Registered eval workers whose heartbeat is within the TTL")
	mBatchesDispatched = obs.NewCounter("atf_dist_batches_dispatched_total",
		"Configuration batches dispatched to the worker fleet")
	mBatchesLocal = obs.NewCounter("atf_dist_batches_local_total",
		"Batches evaluated entirely by the in-process fallback (no live workers)")
	mPartitionsDispatched = obs.NewCounter("atf_dist_partitions_dispatched_total",
		"Batch partitions dispatched to workers (first attempts)")
	mPartitionsRedispatched = obs.NewCounter("atf_dist_partitions_redispatched_total",
		"Partition re-dispatches: worker failures plus speculative straggler re-dispatch")
	mPartitionsLocal = obs.NewCounter("atf_dist_partitions_local_fallback_total",
		"Partitions finished by the in-process fallback after remote attempts ran out")
	mRemoteEvals = obs.NewCounter("atf_dist_remote_evals_total",
		"Evaluation outcomes received from remote workers (duplicates included)")
	mDispatchCommitSeconds = obs.NewHistogram("atf_dist_dispatch_commit_seconds",
		"Latency from batch dispatch to all outcomes being commit-ready", nil)
	mServedEvals = obs.NewCounter("atf_dist_served_evals_total",
		"Evaluation results this process served as a worker (atf-worker /metrics)")
)

// workerEvalsCounter is the per-worker eval throughput counter,
// label-styled like the oclc engine counters. Registration is
// get-or-create, so re-registrations and coordinator restarts reuse the
// same collector.
func workerEvalsCounter(name string) *obs.Counter {
	return obs.NewCounter(fmt.Sprintf("atf_dist_worker_evals_total{worker=%q}", name),
		"Evaluation outcomes received from one worker")
}
