package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"

	"atf"
	"atf/internal/obs"
)

// API wraps a Manager with the daemon's HTTP/JSON endpoints:
//
//	POST   /v1/sessions                   create a session from a Spec
//	GET    /v1/sessions                   list session statuses
//	GET    /v1/sessions/{id}              one session's status
//	GET    /v1/sessions/{id}/evaluations  NDJSON evaluation stream (?from=N)
//	GET    /v1/sessions/{id}/best         best configuration and cost so far
//	GET    /v1/sessions/{id}/stats        per-session metrics (JSON)
//	DELETE /v1/sessions/{id}              cancel the session
//	GET    /v1/healthz                    liveness probe
//	GET    /metrics                       process metrics (Prometheus text)
//	GET    /debug/pprof/*                 Go profiler (only with Pprof set)
type API struct {
	Manager *Manager
	// Metrics is the registry served on /metrics; nil means obs.Default(),
	// the registry the tuner's built-in instrumentation records into.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ (atfd -pprof). Off
	// by default: the profiler exposes heap and goroutine internals, so
	// operators opt in explicitly.
	Pprof bool
}

// Handler builds the daemon's HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", a.createSession)
	mux.HandleFunc("GET /v1/sessions", a.listSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", a.getSession)
	mux.HandleFunc("GET /v1/sessions/{id}/evaluations", a.streamEvaluations)
	mux.HandleFunc("GET /v1/sessions/{id}/best", a.getBest)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", a.getStats)
	mux.HandleFunc("DELETE /v1/sessions/{id}", a.cancelSession)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", a.getMetrics)
	if a.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// getMetrics serves the process-wide registry in Prometheus text format.
func (a *API) getMetrics(w http.ResponseWriter, r *http.Request) {
	reg := a.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// getStats serves one session's metric registry as JSON.
func (a *API) getStats(w http.ResponseWriter, r *http.Request) {
	if s, ok := a.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.Stats())
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (a *API) createSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<22))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := atf.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s, err := a.Manager.Create(spec)
	if err != nil {
		var overloaded *OverloadedError
		if errors.As(err, &overloaded) {
			// Admission control: tell the client when to come back instead
			// of letting it hammer a saturated daemon.
			secs := int(math.Ceil(overloaded.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Status())
}

func (a *API) listSessions(w http.ResponseWriter, r *http.Request) {
	sessions := a.Manager.List()
	out := make([]Status, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	s, ok := a.Manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, false
	}
	return s, true
}

func (a *API) getSession(w http.ResponseWriter, r *http.Request) {
	if s, ok := a.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status())
	}
}

// BestResponse is the body of GET /v1/sessions/{id}/best.
type BestResponse struct {
	State       State       `json:"state"`
	Best        *atf.Config `json:"best,omitempty"`
	BestCost    atf.Cost    `json:"best_cost,omitempty"`
	Evaluations uint64      `json:"evaluations"`
	Valid       uint64      `json:"valid"`
}

func (a *API) getBest(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	st := s.Status()
	writeJSON(w, http.StatusOK, BestResponse{
		State: st.State, Best: st.Best, BestCost: st.BestCost,
		Evaluations: st.Evaluations, Valid: st.Valid,
	})
}

func (a *API) cancelSession(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	if err := a.Manager.Cancel(s.ID); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}

// streamEvaluations serves the session's evaluations as NDJSON, one
// EvalRecord per line, starting at ?from=N (default 0, i.e. the whole
// journal so far), then follows the live run until it reaches a terminal
// state or the client disconnects.
func (a *API) streamEvaluations(w http.ResponseWriter, r *http.Request) {
	s, ok := a.session(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &from); err != nil || from < 0 {
			writeError(w, http.StatusBadRequest, "bad from=%q", q)
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evals, terminal, err := s.EvalsSince(r.Context(), from)
		if err != nil {
			return // client went away
		}
		for _, ev := range evals {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		from += len(evals)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
	}
}
