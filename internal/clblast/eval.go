package clblast

import (
	"fmt"
	"math"

	"atf/internal/core"
	"atf/internal/opencl"
)

// GemmEvaluator measures (simulated) XgemmDirect runtimes for tuning
// configurations on one device. Following ATF's OpenCL cost function, the
// input buffers are created and uploaded once at initialization — random
// data, never downloaded during tuning — and each evaluation rebuilds the
// kernel with the configuration's preprocessor definitions and enqueues it
// with CLBlast's padded global size.
type GemmEvaluator struct {
	Shape GemmShape
	ctx   *opencl.Context
	queue *opencl.Queue
	a, b  *opencl.Buffer
	cbuf  *opencl.Buffer
	alpha float32
	beta  float32
}

// NewGemmEvaluator prepares buffers on the device for the given shape.
func NewGemmEvaluator(dev *opencl.Device, shape GemmShape, seed int64) *GemmEvaluator {
	ctx := opencl.NewContext(dev)
	e := &GemmEvaluator{
		Shape: shape,
		ctx:   ctx,
		queue: opencl.NewQueue(ctx),
		a:     ctx.CreateBuffer(int(shape.M * shape.K)),
		b:     ctx.CreateBuffer(int(shape.K * shape.N)),
		cbuf:  ctx.CreateBuffer(int(shape.M * shape.N)),
		alpha: 1,
		beta:  0,
	}
	e.a.FillRandom(seed)
	e.b.FillRandom(seed + 1)
	e.cbuf.FillRandom(seed + 2)
	return e
}

// Eval returns the simulated kernel runtime in nanoseconds for one
// configuration; launch-infeasible configurations (work-group too large,
// local memory overflow) return an error, which the tuner treats as
// infinite cost.
func (e *GemmEvaluator) Eval(cfg *core.Config) (float64, error) {
	ev, err := e.launch(cfg)
	if err != nil {
		return 0, err
	}
	return ev.DurationNs(), nil
}

// CostFunction adapts the evaluator to the tuning loop.
func (e *GemmEvaluator) CostFunction() core.CostFunction {
	return core.CostFunc(func(cfg *core.Config) (core.Cost, error) {
		t, err := e.Eval(cfg)
		if err != nil {
			return nil, err
		}
		return core.SingleCost(t), nil
	})
}

func (e *GemmEvaluator) launch(cfg *core.Config) (*opencl.Event, error) {
	prog := e.ctx.CreateProgram(XgemmDirectSource)
	if err := prog.Build(cfg.Defines()); err != nil {
		return nil, err
	}
	k, err := prog.CreateKernel("XgemmDirect")
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(int32(e.Shape.M), int32(e.Shape.N), int32(e.Shape.K),
		e.alpha, e.beta, e.a, e.b, e.cbuf); err != nil {
		return nil, err
	}
	global, local := GlobalLocalSize(cfg, e.Shape)
	return e.queue.EnqueueNDRange(k, global[:], local[:])
}

// Verify executes a configuration functionally (all work-groups) and
// checks the result against the naive reference, returning the maximum
// absolute error. Tuning never calls this — it is the optional error
// checking ATF's OpenCL cost function supports.
func (e *GemmEvaluator) Verify(cfg *core.Config) (float64, error) {
	e.queue.Functional = true
	defer func() { e.queue.Functional = false }()

	// Reset C deterministically so beta-scaling is reproducible.
	cHost := make([]float32, e.Shape.M*e.Shape.N)
	e.cbuf.Write(cHost)

	if _, err := e.launch(cfg); err != nil {
		return 0, err
	}
	got := e.cbuf.Read()
	want := ReferenceGemm(e.Shape, e.a.Read(), e.b.Read(), cHost, e.alpha, e.beta)
	var maxErr float64
	for i := range want {
		d := math.Abs(float64(got[i] - want[i]))
		if d > maxErr {
			maxErr = d
		}
	}
	return maxErr, nil
}

// ReferenceGemm computes C = alpha*A*B + beta*C naively on the host.
func ReferenceGemm(shape GemmShape, a, b, c []float32, alpha, beta float32) []float32 {
	out := make([]float32, shape.M*shape.N)
	for m := int64(0); m < shape.M; m++ {
		for n := int64(0); n < shape.N; n++ {
			var acc float32
			for k := int64(0); k < shape.K; k++ {
				acc += a[m*shape.K+k] * b[k*shape.N+n]
			}
			out[m*shape.N+n] = alpha*acc + beta*c[m*shape.N+n]
		}
	}
	return out
}

// SaxpyEvaluator is the analogous evaluator for the Listing 1 saxpy
// kernel with its two tuning parameters WPT and LS.
type SaxpyEvaluator struct {
	N     int64
	ctx   *opencl.Context
	queue *opencl.Queue
	x, y  *opencl.Buffer
	a     float32
}

// NewSaxpyEvaluator prepares N-element buffers with random data.
func NewSaxpyEvaluator(dev *opencl.Device, n, seed int64) *SaxpyEvaluator {
	ctx := opencl.NewContext(dev)
	e := &SaxpyEvaluator{
		N:     n,
		ctx:   ctx,
		queue: opencl.NewQueue(ctx),
		x:     ctx.CreateBuffer(int(n)),
		y:     ctx.CreateBuffer(int(n)),
		a:     2.5,
	}
	e.x.FillRandom(seed)
	e.y.FillRandom(seed + 1)
	return e
}

// Eval returns the simulated saxpy runtime for a (WPT, LS) configuration.
func (e *SaxpyEvaluator) Eval(cfg *core.Config) (float64, error) {
	wpt := cfg.Int("WPT")
	ls := cfg.Int("LS")
	prog := e.ctx.CreateProgram(SaxpySource)
	if err := prog.Build(cfg.Defines()); err != nil {
		return 0, err
	}
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		return 0, err
	}
	if err := k.SetArgs(int32(e.N), e.a, e.x, e.y); err != nil {
		return 0, err
	}
	ev, err := e.queue.EnqueueNDRange(k, []int64{e.N / wpt}, []int64{ls})
	if err != nil {
		return 0, err
	}
	return ev.DurationNs(), nil
}

// CostFunction adapts the evaluator to the tuning loop.
func (e *SaxpyEvaluator) CostFunction() core.CostFunction {
	return core.CostFunc(func(cfg *core.Config) (core.Cost, error) {
		t, err := e.Eval(cfg)
		if err != nil {
			return nil, err
		}
		return core.SingleCost(t), nil
	})
}

// SaxpyParams builds the Listing 2 tuning space: WPT ∈ [1,N] dividing N,
// and LS ∈ [1,N] dividing the global size N/WPT.
func SaxpyParams(n int64) []*core.Param {
	wpt := core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n))
	ls := core.NewParam("LS", core.NewInterval(1, n),
		core.Divides(func(c *core.Config) int64 { return n / c.Int("WPT") }))
	return []*core.Param{wpt, ls}
}

// String renders an evaluator description for logs.
func (e *GemmEvaluator) String() string {
	return fmt.Sprintf("XgemmDirect %s on %s", e.Shape, e.ctx.Device().Name())
}
