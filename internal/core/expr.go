package core

import (
	"fmt"
	"strconv"
)

// ParseExpr parses an integer arithmetic expression over previously
// declared tuning parameters into an Expr. It is the textual counterpart
// of the func(*Config) int64 expressions the constraint aliases accept,
// used by declarative frontends (the atfd JSON API, spec files) where
// constraints arrive as strings rather than Go closures.
//
// Grammar: integer literals, parameter names ([A-Za-z_][A-Za-z0-9_]*),
// the binary operators + - * / %, unary minus, and parentheses, with the
// usual precedence. Division and modulus by zero evaluate to 0 — the
// surrounding constraint then rejects or accepts a degenerate candidate
// instead of crashing space generation.
//
// The second return value lists the parameter names the expression
// references, in first-appearance order, so callers can validate them
// against the declaration order before generation starts.
func ParseExpr(src string) (Expr, []string, error) {
	p := &exprParser{src: src}
	e, err := p.parseSum()
	if err != nil {
		return nil, nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, nil, fmt.Errorf("core: unexpected %q at offset %d in expression %q",
			p.src[p.pos:], p.pos, src)
	}
	return e, p.refs, nil
}

// exprParser is a small recursive-descent parser over the expression
// source; it records referenced parameter names as it goes.
type exprParser struct {
	src  string
	pos  int
	refs []string
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at end).
func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseSum handles + and - (lowest precedence).
func (p *exprParser) parseSum() (Expr, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) + r(c) }
		case '-':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) - r(c) }
		default:
			return left, nil
		}
	}
}

// parseProduct handles * / and %.
func (p *exprParser) parseProduct() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) * r(c) }
		case '/':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 {
				d := r(c)
				if d == 0 {
					return 0
				}
				return l(c) / d
			}
		case '%':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 {
				d := r(c)
				if d == 0 {
					return 0
				}
				return l(c) % d
			}
		default:
			return left, nil
		}
	}
}

// parseUnary handles unary minus.
func (p *exprParser) parseUnary() (Expr, error) {
	if p.peek() == '-' {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(c *Config) int64 { return -e(c) }, nil
	}
	return p.parseAtom()
}

// parseAtom handles literals, parameter references and parentheses.
func (p *exprParser) parseAtom() (Expr, error) {
	switch ch := p.peek(); {
	case ch == '(':
		p.pos++
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("core: missing ')' at offset %d in expression %q", p.pos, p.src)
		}
		p.pos++
		return e, nil
	case ch >= '0' && ch <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad integer literal %q in expression %q", p.src[start:p.pos], p.src)
		}
		return Lit(v), nil
	case isIdentStart(ch):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if !contains(p.refs, name) {
			p.refs = append(p.refs, name)
		}
		return Ref(name), nil
	case ch == 0:
		return nil, fmt.Errorf("core: unexpected end of expression %q", p.src)
	default:
		return nil, fmt.Errorf("core: unexpected %q at offset %d in expression %q",
			string(ch), p.pos, p.src)
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool { return isIdentStart(b) || (b >= '0' && b <= '9') }

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// MustParseExpr is ParseExpr for expressions known valid at compile time;
// it panics on error (tests and examples).
func MustParseExpr(src string) Expr {
	e, _, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}
