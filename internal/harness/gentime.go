package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
)

// GenTimeResult is experiment E10: measured search-space generation cost
// per kernel, the numbers the paper's "scalable generation" claim rests
// on (§VI-A: the ~10^7-config XgemmDirect space generates in under a
// second). Each row is produced by the observability instrumentation's
// view of one GenerateSpace call: wall-clock build time, trie nodes
// materialized, constraint checks performed, and valid configurations.
// Since the dependency-aware memoization change, each row also records
// the memo hit/miss counts, the unique (shared) node count, and the
// arena footprint, with memo on/off as the ablation axis.
type GenTimeResult struct {
	Kernel      string
	Memoize     bool
	Params      int
	Raw         string // unconstrained Cartesian-product size
	Valid       uint64
	TreeNodes   uint64 // logical (expanded prefix tree)
	UniqueNodes uint64 // arena entries after subtree sharing
	Checks      uint64
	MemoHits    uint64
	MemoMisses  uint64
	ArenaBytes  uint64
	GenTime     time.Duration
}

// GenTime runs E10 for one named kernel space: "saxpy" (n = 2^22, the
// paper's Listing 2 space) or "gemm" (XgemmDirect at the given range
// cap). workers=0 uses all CPUs, matching the tuner default. memoize
// toggles dependency-aware subtree memoization (the post-change default
// is on; off reproduces the pre-change baseline).
func GenTime(kernel string, rangeCap int64, workers int, memoize bool) (*GenTimeResult, error) {
	var params []*core.Param
	switch kernel {
	case "saxpy":
		const n = int64(1 << 22)
		wpt := core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n)).
			WithDivisorHint(n)
		nOverWPT := core.ExprReads(func(c *core.Config) int64 { return n / c.Int("WPT") }, "WPT")
		ls := core.NewParam("LS", core.NewInterval(1, n), core.Divides(nOverWPT)).
			WithDivisorHint(nOverWPT)
		params = []*core.Param{wpt, ls}
	case "gemm":
		params = clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: rangeCap})
	default:
		return nil, fmt.Errorf("harness: unknown gentime kernel %q", kernel)
	}

	mode := core.MemoOff
	if memoize {
		mode = core.MemoOn
	}
	start := time.Now()
	space, err := core.GenerateFlat(params, core.GenOptions{Workers: workers, Memoize: mode})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	logical, unique := space.NodeCounts()
	hits, misses := space.MemoStats()
	return &GenTimeResult{
		Kernel:      kernel,
		Memoize:     memoize,
		Params:      len(params),
		Raw:         space.RawSize().String(),
		Valid:       space.Size(),
		TreeNodes:   logical,
		UniqueNodes: unique,
		Checks:      space.Checks(),
		MemoHits:    hits,
		MemoMisses:  misses,
		ArenaBytes:  space.ArenaBytes(),
		GenTime:     elapsed,
	}, nil
}

// GenTimeTable renders E10.
func GenTimeTable(rs []*GenTimeResult) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "measured space-generation cost (obs instrumentation): tree build time, nodes, checks, memoization",
		Columns: []string{"kernel", "memo", "valid configs", "logical nodes", "unique nodes", "constraint checks", "memo hits", "arena bytes", "gen time"},
	}
	for _, r := range rs {
		memo := "off"
		if r.Memoize {
			memo = "on"
		}
		t.Rows = append(t.Rows, []string{
			r.Kernel,
			memo,
			fmt.Sprintf("%d", r.Valid),
			fmt.Sprintf("%d", r.TreeNodes),
			fmt.Sprintf("%d", r.UniqueNodes),
			fmt.Sprintf("%d", r.Checks),
			fmt.Sprintf("%d", r.MemoHits),
			fmt.Sprintf("%d", r.ArenaBytes),
			r.GenTime.Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"same numbers land in atf_spacegen_* metrics; rerun with -stats for the histogram view",
		"memo=off is the pre-memoization baseline: every prefix re-derives its completion subtree",
		"paper §VI-A: ATF generates the XgemmDirect space in <1 s; CLTune's generate-then-filter runs for hours (E3)")
	return t
}
