package harness

import (
	"fmt"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
)

// GenTimeResult is experiment E10: measured search-space generation cost
// per kernel, the numbers the paper's "scalable generation" claim rests
// on (§VI-A: the ~10^7-config XgemmDirect space generates in under a
// second). Each row is produced by the observability instrumentation's
// view of one GenerateSpace call: wall-clock build time, trie nodes
// materialized, constraint checks performed, and valid configurations.
type GenTimeResult struct {
	Kernel    string
	Params    int
	Raw       string // unconstrained Cartesian-product size
	Valid     uint64
	TreeNodes uint64
	Checks    uint64
	GenTime   time.Duration
}

// GenTime runs E10 for one named kernel space: "saxpy" (n = 2^22, the
// paper's Listing 2 space) or "gemm" (XgemmDirect at the given range
// cap). workers=0 uses all CPUs, matching the tuner default.
func GenTime(kernel string, rangeCap int64, workers int) (*GenTimeResult, error) {
	var params []*core.Param
	switch kernel {
	case "saxpy":
		const n = int64(1 << 22)
		wpt := core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n)).
			WithDivisorHint(n)
		nOverWPT := func(c *core.Config) int64 { return n / c.Int("WPT") }
		ls := core.NewParam("LS", core.NewInterval(1, n), core.Divides(nOverWPT)).
			WithDivisorHint(nOverWPT)
		params = []*core.Param{wpt, ls}
	case "gemm":
		params = clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: rangeCap})
	default:
		return nil, fmt.Errorf("harness: unknown gentime kernel %q", kernel)
	}

	start := time.Now()
	space, err := core.GenerateFlat(params, core.GenOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	var nodes uint64
	for _, t := range space.Groups() {
		nodes += t.Nodes()
	}
	return &GenTimeResult{
		Kernel:    kernel,
		Params:    len(params),
		Raw:       space.RawSize().String(),
		Valid:     space.Size(),
		TreeNodes: nodes,
		Checks:    space.Checks(),
		GenTime:   elapsed,
	}, nil
}

// GenTimeTable renders E10.
func GenTimeTable(rs []*GenTimeResult) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "measured space-generation cost (obs instrumentation): tree build time, nodes, checks",
		Columns: []string{"kernel", "params", "raw product", "valid configs", "trie nodes", "constraint checks", "gen time"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Kernel,
			fmt.Sprintf("%d", r.Params),
			r.Raw,
			fmt.Sprintf("%d", r.Valid),
			fmt.Sprintf("%d", r.TreeNodes),
			fmt.Sprintf("%d", r.Checks),
			r.GenTime.Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"same numbers land in atf_spacegen_* metrics; rerun with -stats for the histogram view",
		"paper §VI-A: ATF generates the XgemmDirect space in <1 s; CLTune's generate-then-filter runs for hours (E3)")
	return t
}
