package core

import "sort"

// Divisor-hinted iteration is an optimization beyond the HPCC'17 paper
// (later ATF work optimizes range iteration similarly): when a parameter
// carries a DivisorOf hint, space generation enumerates only the divisors
// of the hint expression's value instead of scanning the parameter's whole
// raw range. The parameter's constraint remains the source of truth — every
// candidate the hint produces is still checked — so a hinted space is
// provably identical to the unhinted one as long as the hint is *sound*
// (every accepted value divides the hint's value), which holds by
// construction when the constraint includes Divides(expr).
//
// The payoff: a divides-constrained level costs O(valid-prefixes × d(m))
// instead of O(valid-prefixes × |range|), where d(m) is the divisor count
// (d(m) ≈ a handful for m ≤ 1024 versus ranges of hundreds of values).

// WithDivisorHint attaches a divisor hint to the parameter and returns it.
// The hint must correspond to a Divides(expr) conjunct of the parameter's
// constraint; Hinted ranges must be plain integer intervals with step 1
// and no generator (anything else silently ignores the hint).
func (p *Param) WithDivisorHint(x any) *Param {
	p.DivisorOf = ExprOf(x)
	return p
}

// hintApplicable reports whether the hint can drive iteration of r.
func hintApplicable(p *Param) (*IntervalRange, bool) {
	if p.DivisorOf.IsZero() {
		return nil, false
	}
	ir, ok := p.Range.(*IntervalRange)
	if !ok || ir.Step != 1 || ir.Gen != nil {
		return nil, false
	}
	return ir, true
}

// divisorsInRange returns the divisors of m within [lo, hi], ascending.
// m <= 0 yields nothing (a Divides constraint rejects everything then).
func divisorsInRange(m, lo, hi int64) []int64 {
	if m <= 0 {
		return nil
	}
	var ds []int64
	for d := int64(1); d*d <= m; d++ {
		if m%d != 0 {
			continue
		}
		if d >= lo && d <= hi {
			ds = append(ds, d)
		}
		if q := m / d; q != d && q >= lo && q <= hi {
			ds = append(ds, q)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

// hintedValues enumerates the candidate values for parameter p given the
// partial configuration, restricted to the raw-range index window [lo, hi)
// — the chunk a generation worker owns. Parallelized root levels intersect
// the hinted divisors with their chunk instead of falling back to a full
// range scan; for a full-range window the result is the complete divisor
// set. Returns ok=false if the hint is inapplicable.
func hintedValues(p *Param, cfg *Config, lo, hi int) ([]int64, bool) {
	ir, ok := hintApplicable(p)
	if !ok {
		return nil, false
	}
	// Step-1 interval: raw index i holds value Begin+i, so the chunk
	// [lo, hi) covers values [Begin+lo, Begin+hi-1].
	return divisorsInRange(p.DivisorOf.Eval(cfg), ir.Begin+int64(lo), ir.Begin+int64(hi)-1), true
}
