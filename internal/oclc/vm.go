package oclc

import (
	"fmt"
	"sync"

	"atf/internal/obs"
)

// VM execution metric (DESIGN.md §3c): total bytecode instructions
// retired. Accumulated into a per-work-item local and published once per
// Launch so the hot loop never touches an atomic.
var mVMInstructions = obs.NewCounter("atf_oclc_vm_instructions_total",
	"Bytecode instructions retired by the oclc register VM")

// vmStatus is a work-item's scheduling state under the cooperative
// group scheduler.
type vmStatus uint8

const (
	vmRunning vmStatus = iota
	vmWaiting          // suspended at a barrier
	vmDone
)

// vmFrame is one activation record: a function's register file plus its
// resume point.
type vmFrame struct {
	fn   *Function
	vc   *vmCode
	regs []rval
	ip   int
	dst  int32 // caller register receiving the return value
}

// vmMaxDepth bounds the VM call stack. The walker's equivalent limit is
// the goroutine stack, which kills the process; the VM degrades into a
// per-work-item error instead.
const vmMaxDepth = 1 << 14

// vmWI is one work-item executing bytecode. Unlike the walker, which
// parks a goroutine per work-item in a cyclicBarrier, VM work-items are
// resumable: run executes until the work-item finishes, fails, or
// reaches a barrier, and the group scheduler resumes it after the group
// synchronizes. Running a whole group on one goroutine — no spawns, no
// futex round-trips per barrier — is a large part of the VM's speedup.
type vmWI struct {
	w      wiCtx // counter/launch context shared with builtin dispatch
	frames []vmFrame
	status vmStatus
	err    error
	icount int64
}

func (wi *vmWI) fail(err error) {
	wi.err = err
	wi.status = vmDone
}

// run executes bytecode until the work-item suspends at a barrier,
// finishes, or fails. Panics map to the walker's "work-item panic"
// recovery.
func (wi *vmWI) run(variant Engine) {
	var n int64
	defer func() {
		wi.icount += n
		if r := recover(); r != nil {
			wi.fail(fmt.Errorf("oclc: work-item panic: %v", r))
		}
	}()
	ctr := wi.w.ctr
frames:
	for {
		f := &wi.frames[len(wi.frames)-1]
		vc := f.vc
		code := vc.code
		regs := f.regs
		ip := f.ip
		for {
			in := &code[ip]
			n++
			switch in.op {
			case opNop:
				ip++

			case opJump:
				ip = int(in.imm)
			case opJumpFalse:
				if !regs[in.a].truthy() {
					ip = int(in.imm)
				} else {
					ip++
				}
			case opJumpTrue:
				if regs[in.a].truthy() {
					ip = int(in.imm)
				} else {
					ip++
				}
			case opReturn, opReturnNil:
				var rv rval
				if in.op == opReturn {
					rv = regs[in.a]
				}
				// Explicit returns (including bare "return;") convert to
				// the declared return type; falling off the end does not.
				if (in.op == opReturn || in.imm == 1) && !f.fn.Ret.Ptr && f.fn.Ret.Kind != KVoid {
					rv = convert(rv, f.fn.Ret.Kind)
				}
				dst := f.dst
				wi.frames = wi.frames[:len(wi.frames)-1]
				if len(wi.frames) == 0 {
					wi.status = vmDone
					return
				}
				wi.frames[len(wi.frames)-1].regs[dst] = rv
				continue frames
			case opErr:
				wi.fail(vc.errTab[in.imm])
				return
			case opBarrier:
				ctr.Barriers++
				f.ip = ip + 1
				wi.status = vmWaiting
				return

			case opCtrInt:
				ctr.IntOps += in.imm
				ip++
			case opCtrFloat:
				ctr.FloatOps += in.imm
				ip++
			case opCtrBranch:
				ctr.Branches += in.imm
				ip++
			case opCtrLoop:
				ctr.LoopIters++
				ip++
			case opCtrUnroll:
				ctr.UnrolledIters++
				ip++
			case opCount:
				ctr.Add(&vc.countTab[in.imm])
				ip++

			case opConstI:
				regs[in.a] = intVal(in.imm)
				ip++
			case opConstF:
				regs[in.a] = floatVal(in.f)
				ip++
			case opConstR:
				regs[in.a] = vc.rvalTab[in.imm]
				ip++
			case opMove:
				regs[in.a] = regs[in.b]
				ip++
			case opConvert:
				regs[in.a] = convert(regs[in.b], ValKind(in.c))
				ip++
			case opBool:
				if regs[in.b].truthy() {
					regs[in.a] = intVal(1)
				} else {
					regs[in.a] = intVal(0)
				}
				ip++
			case opStoreVar:
				v := regs[in.b]
				if cur := regs[in.a]; cur.k == KFloat || cur.k == KInt {
					v = convert(v, cur.k)
				}
				regs[in.a] = v
				ip++
			case opIncVar:
				old := regs[in.b]
				var nv rval
				if old.k == KFloat {
					ctr.FloatOps++
					nv = floatVal(old.f + float64(in.imm))
				} else {
					ctr.IntOps++
					nv = intVal(old.i + in.imm)
				}
				regs[in.b] = nv
				if in.c != 0 {
					regs[in.a] = old
				} else {
					regs[in.a] = nv
				}
				ip++
			case opIncVal:
				old := regs[in.b]
				if old.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(old.f + float64(in.imm))
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(old.i + in.imm)
				}
				ip++

			case opAdd:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.asFloat() + r.asFloat())
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i + r.i)
				}
				ip++
			case opSub:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.asFloat() - r.asFloat())
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i - r.i)
				}
				ip++
			case opMul:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.asFloat() * r.asFloat())
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i * r.i)
				}
				ip++
			case opDiv:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.asFloat() / r.asFloat())
				} else {
					ctr.IntOps++
					if r.i == 0 {
						wi.fail(errf(in.pos, "integer division by zero"))
						return
					}
					regs[in.a] = intVal(l.i / r.i)
				}
				ip++
			case opMod:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					wi.fail(errf(in.pos, "%% requires integer operands"))
					return
				}
				ctr.IntOps++
				if r.i == 0 {
					wi.fail(errf(in.pos, "integer modulo by zero"))
					return
				}
				regs[in.a] = intVal(l.i % r.i)
				ip++
			case opShl, opShr, opBitAnd, opBitOr, opBitXor:
				l, r := regs[in.b], regs[in.c]
				if l.k == KFloat || r.k == KFloat {
					wi.fail(errf(in.pos, "bitwise operator on float"))
					return
				}
				ctr.IntOps++
				var v int64
				switch in.op {
				case opShl:
					v = l.i << uint(r.i)
				case opShr:
					v = l.i >> uint(r.i)
				case opBitAnd:
					v = l.i & r.i
				case opBitOr:
					v = l.i | r.i
				default:
					v = l.i ^ r.i
				}
				regs[in.a] = intVal(v)
				ip++
			case opEq, opNe, opLt, opGt, opLe, opGe:
				l, r := regs[in.b], regs[in.c]
				ctr.IntOps++
				var res bool
				if l.k == KFloat || r.k == KFloat {
					a, b := l.asFloat(), r.asFloat()
					switch in.op {
					case opEq:
						res = a == b
					case opNe:
						res = a != b
					case opLt:
						res = a < b
					case opGt:
						res = a > b
					case opLe:
						res = a <= b
					default:
						res = a >= b
					}
				} else {
					a, b := l.i, r.i
					switch in.op {
					case opEq:
						res = a == b
					case opNe:
						res = a != b
					case opLt:
						res = a < b
					case opGt:
						res = a > b
					case opLe:
						res = a <= b
					default:
						res = a >= b
					}
				}
				if res {
					regs[in.a] = intVal(1)
				} else {
					regs[in.a] = intVal(0)
				}
				ip++
			case opAddImm:
				l := regs[in.b]
				if l.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.f + float64(in.imm))
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i + in.imm)
				}
				ip++
			case opSubImm:
				l := regs[in.b]
				if l.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.f - float64(in.imm))
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i - in.imm)
				}
				ip++
			case opRSubImm:
				l := regs[in.b]
				if l.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(float64(in.imm) - l.f)
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(in.imm - l.i)
				}
				ip++
			case opMulImm:
				l := regs[in.b]
				if l.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.f * float64(in.imm))
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i * in.imm)
				}
				ip++
			case opDivImm:
				l := regs[in.b]
				if l.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(l.f / float64(in.imm))
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(l.i / in.imm)
				}
				ip++
			case opModImm:
				l := regs[in.b]
				if l.k == KFloat {
					wi.fail(errf(in.pos, "%% requires integer operands"))
					return
				}
				ctr.IntOps++
				regs[in.a] = intVal(l.i % in.imm)
				ip++
			case opShlImm, opShrImm, opBitAndImm, opBitOrImm, opBitXorImm:
				l := regs[in.b]
				if l.k == KFloat {
					wi.fail(errf(in.pos, "bitwise operator on float"))
					return
				}
				ctr.IntOps++
				var v int64
				switch in.op {
				case opShlImm:
					v = l.i << uint(in.imm)
				case opShrImm:
					v = l.i >> uint(in.imm)
				case opBitAndImm:
					v = l.i & in.imm
				case opBitOrImm:
					v = l.i | in.imm
				default:
					v = l.i ^ in.imm
				}
				regs[in.a] = intVal(v)
				ip++
			case opEqImm, opNeImm, opLtImm, opGtImm, opLeImm, opGeImm:
				l := regs[in.b]
				ctr.IntOps++
				var res bool
				if l.k == KFloat {
					a, b := l.f, float64(in.imm)
					switch in.op {
					case opEqImm:
						res = a == b
					case opNeImm:
						res = a != b
					case opLtImm:
						res = a < b
					case opGtImm:
						res = a > b
					case opLeImm:
						res = a <= b
					default:
						res = a >= b
					}
				} else {
					a, b := l.i, in.imm
					switch in.op {
					case opEqImm:
						res = a == b
					case opNeImm:
						res = a != b
					case opLtImm:
						res = a < b
					case opGtImm:
						res = a > b
					case opLeImm:
						res = a <= b
					default:
						res = a >= b
					}
				}
				if res {
					regs[in.a] = intVal(1)
				} else {
					regs[in.a] = intVal(0)
				}
				ip++

			case opBrCmpFalse, opBrCmpFalseImm:
				l := regs[in.a]
				var r rval
				if in.op == opBrCmpFalse {
					r = regs[in.b]
				} else {
					r = intVal(in.imm)
				}
				ctr.IntOps++
				kind := in.d & 0xff
				var res bool
				if l.k == KFloat || r.k == KFloat {
					a, b := l.asFloat(), r.asFloat()
					switch kind {
					case cmpEq:
						res = a == b
					case cmpNe:
						res = a != b
					case cmpLt:
						res = a < b
					case cmpGt:
						res = a > b
					case cmpLe:
						res = a <= b
					default:
						res = a >= b
					}
				} else {
					a, b := l.i, r.i
					switch kind {
					case cmpEq:
						res = a == b
					case cmpNe:
						res = a != b
					case cmpLt:
						res = a < b
					case cmpGt:
						res = a > b
					case cmpLe:
						res = a <= b
					default:
						res = a >= b
					}
				}
				cb := (in.d >> 8) & 0xff // mask off the brUniform hint bit
				if cb == cbIterBranch {
					ctr.Branches++
				}
				if res {
					switch cb {
					case cbIterLoop:
						ctr.LoopIters++
					case cbIterUnroll:
						ctr.UnrolledIters++
					}
					ip++
				} else {
					ip = int(in.c)
				}

			case opNeg:
				v := regs[in.b]
				if v.k == KFloat {
					ctr.FloatOps++
					regs[in.a] = floatVal(-v.f)
				} else {
					ctr.IntOps++
					regs[in.a] = intVal(-v.i)
				}
				ip++
			case opNot:
				ctr.IntOps++
				if regs[in.b].truthy() {
					regs[in.a] = intVal(0)
				} else {
					regs[in.a] = intVal(1)
				}
				ip++
			case opBitNot:
				ctr.IntOps++
				regs[in.a] = intVal(^regs[in.b].asInt())
				ip++

			case opCheckPtr:
				if v := regs[in.a]; v.k != KPtr || v.mem == nil {
					wi.fail(errf(in.pos, "subscript of non-pointer value"))
					return
				}
				ip++
			case opCheck2D:
				if regs[in.a].dim1 <= 0 {
					wi.fail(errf(in.pos, "2-D subscript of 1-D array"))
					return
				}
				ip++
			case opLoad1:
				base := regs[in.b]
				if base.k != KPtr || base.mem == nil {
					wi.fail(errf(in.pos, "subscript of non-pointer value"))
					return
				}
				off := base.off + regs[in.c].asInt()
				wi.w.countAccess(base.mem, off, int(in.imm), false)
				rv, err := base.mem.load(off)
				if err != nil {
					wi.fail(err)
					return
				}
				regs[in.a] = rv
				ip++
			case opLoad2:
				base := regs[in.b]
				if base.k != KPtr || base.mem == nil {
					wi.fail(errf(in.pos, "subscript of non-pointer value"))
					return
				}
				if base.dim1 <= 0 {
					wi.fail(errf(in.pos, "2-D subscript of 1-D array"))
					return
				}
				off := base.off + regs[in.c].asInt()*base.dim1 + regs[in.d].asInt()
				ctr.IntOps++ // row-major address computation
				wi.w.countAccess(base.mem, off, int(in.imm), false)
				rv, err := base.mem.load(off)
				if err != nil {
					wi.fail(err)
					return
				}
				regs[in.a] = rv
				ip++
			case opStore1:
				base := regs[in.a]
				if base.k != KPtr || base.mem == nil {
					wi.fail(errf(in.pos, "subscript of non-pointer value"))
					return
				}
				off := base.off + regs[in.b].asInt()
				wi.w.countAccess(base.mem, off, int(in.imm), true)
				if err := base.mem.store(off, regs[in.c]); err != nil {
					wi.fail(err)
					return
				}
				ip++
			case opStore2:
				base := regs[in.a]
				if base.k != KPtr || base.mem == nil {
					wi.fail(errf(in.pos, "subscript of non-pointer value"))
					return
				}
				if base.dim1 <= 0 {
					wi.fail(errf(in.pos, "2-D subscript of 1-D array"))
					return
				}
				off := base.off + regs[in.b].asInt()*base.dim1 + regs[in.c].asInt()
				ctr.IntOps++
				wi.w.countAccess(base.mem, off, int(in.imm), true)
				if err := base.mem.store(off, regs[in.d]); err != nil {
					wi.fail(err)
					return
				}
				ip++
			case opCheckDim:
				if v := regs[in.a].asInt(); v <= 0 {
					d := vc.declTab[in.imm]
					wi.fail(fmt.Errorf("oclc: %s: array %q dimension %d is %d", d.Pos, d.Name, int(in.c), v))
					return
				}
				ip++
			case opArray:
				d := vc.declTab[in.imm]
				d0 := regs[in.b].asInt()
				size := d0
				var d1 int64
				if in.c >= 0 {
					d1 = regs[in.c].asInt()
					size *= d1
				}
				const elemBytes = 4
				var mem *Memory
				if d.Type.Space == SpaceLocal {
					var err error
					mem, err = wi.w.wg.localAlloc(d, d.Type.Kind, elemBytes, size)
					if err != nil {
						wi.fail(err)
						return
					}
				} else {
					mem = &Memory{Space: SpacePrivate, Elem: d.Type.Kind, ElemBytes: elemBytes, Data: make([]float64, size)}
				}
				ptr := rval{k: KPtr, mem: mem}
				if in.c >= 0 {
					ptr.dim1 = d1
				}
				regs[in.a] = ptr
				ip++

			case opWIQuery:
				var v int64
				d := int(in.c)
				switch in.b {
				case wqGlobalID:
					v = wi.w.gid[d]
				case wqLocalID:
					v = wi.w.lid[d]
				case wqGroupID:
					v = wi.w.wg.grp[d]
				case wqGlobalSize:
					v = wi.w.wg.launch.Global[d]
				case wqLocalSize:
					v = wi.w.wg.launch.Local[d]
				case wqNumGroups:
					v = wi.w.wg.launch.Global[d] / wi.w.wg.launch.Local[d]
				default: // wqWorkDim
					v = int64(wi.w.wg.launch.Dims())
				}
				regs[in.a] = intVal(v)
				ip++
			case opFMA:
				ctr.FMAs++
				regs[in.a] = floatVal(regs[in.b].asFloat()*regs[in.c].asFloat() + regs[in.d].asFloat())
				ip++
			case opCallBuiltin:
				rv, err := vc.builtins[in.imm](&wi.w, vc.callTab[in.imm], regs[in.b:in.b+in.c])
				if err != nil {
					wi.fail(err)
					return
				}
				regs[in.a] = rv
				ip++
			case opCallFn:
				callee := vc.fnTab[in.imm]
				cvc := callee.vm
				if variant == EngineVMNoSpec {
					cvc = callee.vmNoSpec
				}
				ctr.Calls++
				depth := len(wi.frames)
				if depth >= vmMaxDepth {
					wi.fail(errf(in.pos, "call depth exceeded"))
					return
				}
				f.ip = ip + 1
				// Reuse the frame (and its register file) pooled at this
				// depth by an earlier call; reuse without zeroing is sound
				// because every register is written before it is read:
				// parameters by the copy below, variables by their
				// declaration's zero/init instructions, temporaries by the
				// expression that defines them.
				if depth == cap(wi.frames) {
					wi.frames = append(wi.frames, vmFrame{})
				} else {
					wi.frames = wi.frames[:depth+1]
				}
				nf := &wi.frames[depth]
				if cap(nf.regs) >= cvc.numRegs {
					nf.regs = nf.regs[:cvc.numRegs]
				} else {
					nf.regs = make([]rval, cvc.numRegs)
				}
				nf.fn, nf.vc, nf.ip, nf.dst = callee, cvc, 0, in.a
				for i := range callee.Params {
					nf.regs[callee.Params[i].Slot] = regs[int(in.b)+i]
				}
				continue frames

			default:
				wi.fail(fmt.Errorf("oclc: unknown opcode %d", in.op))
				return
			}
		}
	}
}

// vmScheduler owns the per-launch execution state for the VM engine. All
// scratch — work-item records, the kernel-frame register arena, pooled
// call frames — is allocated once per Launch and reused across every
// work-group; the profile-visible cost of the naive version was GC
// write-barrier traffic from re-allocating pointer-bearing []rval files
// per group.
type vmScheduler struct {
	p       *Program
	fn      *Function
	vc      *vmCode
	variant Engine
	args    []Arg
	wis     []vmWI
	arena   []rval // n × numRegs kernel-frame registers

	// Lockstep-vectorized execution state (vmvec.go), used only while
	// variant == EngineVMVec. The kernel-frame SoA register file reuses
	// arena (same size, column-major layout); deeper call frames and the
	// lane bookkeeping are pooled here across launches like everything
	// else.
	width      int
	lanes      []int  // active lanes, ascending
	laneActive []bool // lane liveness, indexed by linear local id
	segLanes   []int  // lanes live at the current vector segment's start
	diedInSeg  []int  // lanes that failed during the current segment
	lanesDirty bool
	vframes    []vecFrame
	scatArena  []rval     // n × numRegs scalar kernel-frame registers for scattered lanes
	argBuf     []rval     // per-lane builtin argument gather scratch
	ctrs       []Counters // borrowed per-group counters (Launch scratch)
	laneErrs   []error    // borrowed per-group errors (Launch scratch)
	groupDiv   bool

	// segCtr batches the counter increments of the current lockstep
	// segment. In lockstep every active lane receives identical increments
	// per instruction, so they accumulate once per instruction here and
	// flush into a lane's ctrs entry exactly when the lane leaves the
	// segment: at death (laneFail), at a scatter, and when the group
	// finishes (runGroupVec). Per-lane divergence inside an instruction —
	// a lane dying before the instruction's increments apply — is handled
	// by ordering the segCtr bump against the laneFail calls to match the
	// scalar engine's per-item increment/fail order.
	segCtr Counters

	// vecArenaVC/vecArenaW identify the (code, width) whose SoA column
	// layout the pooled arena currently holds, nil/0 after any scalar
	// launch. Scalar launches slice the same arena per work-item (AoS), so
	// a vec launch inheriting such an arena would see kind-divergent junk
	// in not-yet-written variable slots — harmless for execution (registers
	// are written before read) but fatal for tryGather, whose per-register
	// kind-agreement check cannot tell live state from junk. newVMScheduler
	// clears the arena once on every layout transition so junk is a
	// uniform KVoid.
	vecArenaVC *vmCode
	vecArenaW  int

	vecDispatches int64 // group-level instruction dispatches (metrics)
	vecLaneExecs  int64 // per-lane instructions retired in vector mode
}

// vmSchedPool recycles schedulers across launches: the tuning loop
// launches the same kernel thousands of times, and the register arena was
// the dominant allocation per evaluation. Pool entries keep their pooled
// call frames too, so steady-state launches allocate nothing per group.
var vmSchedPool sync.Pool

func newVMScheduler(p *Program, fn *Function, vc *vmCode, variant Engine, args []Arg, n int) *vmScheduler {
	regs := n * vc.numRegs
	if v := vmSchedPool.Get(); v != nil {
		s := v.(*vmScheduler)
		if cap(s.wis) >= n && cap(s.arena) >= regs {
			s.p, s.fn, s.vc, s.variant, s.args = p, fn, vc, variant, args
			s.wis = s.wis[:n]
			s.arena = s.arena[:regs]
			if variant == EngineVMVec {
				if s.vecArenaVC != vc || s.vecArenaW != n {
					clear(s.arena)
					s.vecArenaVC, s.vecArenaW = vc, n
				}
			} else {
				s.vecArenaVC, s.vecArenaW = nil, 0
			}
			return s
		}
	}
	s := &vmScheduler{
		p: p, fn: fn, vc: vc, variant: variant, args: args,
		wis:   make([]vmWI, n),
		arena: make([]rval, regs),
	}
	if variant == EngineVMVec {
		s.vecArenaVC, s.vecArenaW = vc, n
	}
	return s
}

// release returns the scheduler to the pool. The caller must not use it
// afterwards; buffer references in the arena are dropped lazily (the pool
// is emptied by the next GC cycle). Locally accumulated vector metrics
// are published here, once per launch.
func (s *vmScheduler) release() {
	if s.vecDispatches > 0 {
		mVecDispatches.Add(uint64(s.vecDispatches))
		mVecInstructions.Add(uint64(s.vecLaneExecs))
		s.vecDispatches, s.vecLaneExecs = 0, 0
	}
	s.p, s.fn, s.vc, s.args = nil, nil, nil, nil
	s.ctrs, s.laneErrs = nil, nil
	vmSchedPool.Put(s)
}

// runGroup executes one work-group's work-items cooperatively on the
// calling goroutine, replicating cyclicBarrier's semantics exactly —
// including the divergence flag: a work-item finishing while others wait
// at a barrier marks divergence and releases them. Work-items run in
// linear-local-id order between synchronization points; barrier-correct
// kernels cannot observe the difference from the walker's concurrent
// goroutines, and Counters are per-work-item either way.
func (s *vmScheduler) runGroup(wg *wgCtx, agg *Counters, counters []Counters, errs []error) (bool, int64, error) {
	if s.variant == EngineVMVec {
		return s.runGroupVec(wg, agg, counters, errs)
	}
	fn, vc := s.fn, s.vc
	n := int(wg.launch.WorkGroupSize())
	for i := 0; i < n; i++ {
		counters[i] = Counters{}
		errs[i] = nil
	}
	wis := s.wis
	lin := 0
	for lz := int64(0); lz < wg.launch.Local[2]; lz++ {
		for ly := int64(0); ly < wg.launch.Local[1]; ly++ {
			for lx := int64(0); lx < wg.launch.Local[0]; lx++ {
				wi := &wis[lin]
				wi.w = wiCtx{
					prog: s.p,
					wg:   wg,
					ctr:  &counters[lin],
					lid:  [3]int64{lx, ly, lz},
					gid: [3]int64{
						wg.grp[0]*wg.launch.Local[0] + lx,
						wg.grp[1]*wg.launch.Local[1] + ly,
						wg.grp[2]*wg.launch.Local[2] + lz,
					},
					lin: lin,
				}
				wi.status = vmRunning
				wi.err = nil
				wi.icount = 0
				// Arena registers are reused across groups un-zeroed:
				// arguments are rewritten here (a kernel may assign to a
				// parameter slot), and every other register is written
				// before read (declarations zero/init, temporaries are
				// defined by their expression).
				regs := s.arena[lin*vc.numRegs : (lin+1)*vc.numRegs]
				for i, a := range s.args {
					regs[fn.Params[i].Slot] = argToRval(a)
				}
				if cap(wi.frames) == 0 {
					wi.frames = make([]vmFrame, 0, 4)
				}
				wi.frames = wi.frames[:1]
				wi.frames[0] = vmFrame{fn: fn, vc: vc, regs: regs}
				lin++
			}
		}
	}

	parties := n
	waiting := 0
	divergent := false
	release := func() {
		for i := range wis {
			if wis[i].status == vmWaiting {
				wis[i].status = vmRunning
			}
		}
		waiting = 0
	}
	live := n
	for live > 0 {
		progress := false
		for i := range wis {
			wi := &wis[i]
			if wi.status != vmRunning {
				continue
			}
			progress = true
			wi.run(s.variant)
			switch wi.status {
			case vmWaiting:
				// cyclicBarrier.await: the last live arriver releases.
				waiting++
				if waiting >= parties {
					release()
				}
			case vmDone:
				// cyclicBarrier.leave: a finisher releases waiters and
				// flags divergence.
				live--
				errs[i] = wi.err
				parties--
				if parties > 0 && waiting >= parties {
					if waiting > 0 {
						divergent = true
					}
					release()
				}
			}
		}
		if !progress {
			break // defensive; the barrier protocol cannot starve
		}
	}

	var icount int64
	for i := range wis {
		icount += wis[i].icount
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return false, icount, errs[i]
		}
	}
	for i := 0; i < n; i++ {
		agg.Add(&counters[i])
	}
	return divergent, icount, nil
}
