package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"atf"
	"atf/internal/server/client"
)

// distSpecJSON is the test tuning run: a deterministic synthetic cost
// over a 300-config space, explored by seeded annealing with batch
// size 3 — small enough to run in milliseconds, stateful enough that any
// merge-order slip changes the walk and fails the comparison.
const distSpecJSON = `{
	"name": "dist",
	"parameters": [
		{"name": "X", "range": {"interval": {"begin": 1, "end": 60}}},
		{"name": "Y", "range": {"interval": {"begin": 1, "end": 5}}}
	],
	"cost": {"kind": "expr", "expr": "(X - 42) * (X - 42) + Y"},
	"technique": {"kind": "annealing"},
	"abort": {"evaluations": 120},
	"seed": 7,
	"parallelism": 3,
	"record": true
}`

func parseDistSpec(t *testing.T) *atf.Spec {
	t.Helper()
	spec, err := atf.ParseSpec([]byte(distSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// fastOptions keeps failure-path tests quick: tight straggler deadline,
// minimal backoff.
func fastOptions() Options {
	return Options{
		StragglerAfter: 300 * time.Millisecond,
		Retry:          &client.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
}

// runLocal is the reference: the spec exactly as a local run executes it.
func runLocal(t *testing.T, spec *atf.Spec) *atf.Result {
	t.Helper()
	res, err := spec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runFleet runs the spec through a coordinator with the given worker
// handlers (each wrapped however the caller chose) registered.
func runFleet(t *testing.T, spec *atf.Spec, workers ...http.Handler) *atf.Result {
	t.Helper()
	f := NewFleet(fastOptions())
	for i, h := range workers {
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		if _, _, err := f.registry.Heartbeat(RegisterRequest{Name: fmt.Sprintf("w%d", i), URL: srv.URL}); err != nil {
			t.Fatal(err)
		}
	}
	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := f.SessionEvaluator("test", spec, build.Cost, nil)
	t.Cleanup(func() { ev.(io.Closer).Close() })
	tuner := build.Tuner
	tuner.Evaluator = ev
	res, err := tuner.Tune(build.Cost, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newWorkerHandler(t *testing.T, name string) http.Handler {
	t.Helper()
	ws := NewWorkerServer(WorkerOptions{Name: name, Parallelism: 2})
	t.Cleanup(func() { ws.Close() })
	return ws.Handler()
}

// sameResult asserts two runs are bit-identical in everything
// deterministic: counters, best, and the full evaluation history
// (indices, configurations, costs, cached flags — not timings).
func sameResult(t *testing.T, label string, got, want *atf.Result) {
	t.Helper()
	if got.Evaluations != want.Evaluations || got.Valid != want.Valid {
		t.Fatalf("%s: counters %d/%d, want %d/%d", label, got.Evaluations, got.Valid, want.Evaluations, want.Valid)
	}
	if !got.Best.Equal(want.Best) || got.BestCost.String() != want.BestCost.String() {
		t.Fatalf("%s: best %v/%v, want %v/%v", label, got.Best, got.BestCost, want.Best, want.BestCost)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: history length %d, want %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		g, w := got.History[i], want.History[i]
		if g.Index != w.Index || g.Config.Key() != w.Config.Key() ||
			g.Cost.String() != w.Cost.String() || g.Cached != w.Cached || (g.Err != nil) != (w.Err != nil) {
			t.Fatalf("%s: history[%d] = {%d %s %s cached=%v err=%v}, want {%d %s %s cached=%v err=%v}",
				label, i,
				g.Index, g.Config.Key(), g.Cost, g.Cached, g.Err != nil,
				w.Index, w.Config.Key(), w.Cost, w.Cached, w.Err != nil)
		}
	}
}

// TestFleetDeterminism is the tentpole property: a local run, a
// 1-worker fleet, and a 4-worker fleet commit identical results —
// including the full history — because the engine merges in batch-index
// order no matter where costs were computed.
func TestFleetDeterminism(t *testing.T) {
	spec := parseDistSpec(t)
	want := runLocal(t, spec)

	one := runFleet(t, spec, newWorkerHandler(t, "solo"))
	sameResult(t, "1-worker fleet", one, want)

	four := runFleet(t, spec,
		newWorkerHandler(t, "a"), newWorkerHandler(t, "b"),
		newWorkerHandler(t, "c"), newWorkerHandler(t, "d"))
	sameResult(t, "4-worker fleet", four, want)
}

// truncatingHandler kills its connection mid-stream for the first
// `kills` requests — the NDJSON response stops inside a record, exactly
// like a worker process dying mid-batch — and serves normally after.
type truncatingHandler struct {
	inner http.Handler
	limit int // bytes to emit before dying

	mu    sync.Mutex
	kills int
}

func (h *truncatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	kill := h.kills > 0
	if kill {
		h.kills--
	}
	h.mu.Unlock()
	if !kill {
		h.inner.ServeHTTP(w, r)
		return
	}
	h.inner.ServeHTTP(&truncatingWriter{ResponseWriter: w, remaining: h.limit}, r)
}

type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if len(p) > t.remaining {
		t.ResponseWriter.Write(p[:t.remaining])
		t.Flush()
		panic(http.ErrAbortHandler) // die mid-record
	}
	t.remaining -= len(p)
	return t.ResponseWriter.Write(p)
}

func (t *truncatingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestFleetDeterminismUnderWorkerKills injects mid-batch worker deaths:
// one worker's first three responses die partway through a record. The
// coordinator keeps the complete records, re-dispatches the rest, and
// the result is still bit-identical to the local run.
func TestFleetDeterminismUnderWorkerKills(t *testing.T) {
	spec := parseDistSpec(t)
	want := runLocal(t, spec)

	flaky := &truncatingHandler{inner: newWorkerHandler(t, "flaky"), limit: 40, kills: 3}
	got := runFleet(t, spec, flaky, newWorkerHandler(t, "steady"))
	sameResult(t, "fleet with mid-batch kills", got, want)
}

// TestFleetZeroWorkers: a coordinator with an empty fleet behaves
// exactly like plain atfd — everything evaluates in process.
func TestFleetZeroWorkers(t *testing.T) {
	spec := parseDistSpec(t)
	want := runLocal(t, spec)
	got := runFleet(t, spec) // no workers registered
	sameResult(t, "zero-worker fleet", got, want)
}

// TestFleetAllWorkersDead: every registered worker is unreachable; the
// in-process fallback finishes every partition and the result is still
// identical.
func TestFleetAllWorkersDead(t *testing.T) {
	spec := parseDistSpec(t)
	want := runLocal(t, spec)

	dead := httptest.NewServer(http.NotFoundHandler())
	base := dead.URL
	dead.Close() // refused connections from here on

	f := NewFleet(fastOptions())
	if _, _, err := f.registry.Heartbeat(RegisterRequest{Name: "ghost", URL: base}); err != nil {
		t.Fatal(err)
	}
	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := f.SessionEvaluator("test", spec, build.Cost, nil)
	defer ev.(io.Closer).Close()
	tuner := build.Tuner
	tuner.Evaluator = ev
	got, err := tuner.Tune(build.Cost, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "all-dead fleet", got, want)
}

// TestFleetReplayShortCircuits: replayed outcomes (a resumed session's
// journal) must never be dispatched — a fleet whose only worker would
// poison every cost still returns the replayed values. The spec is
// exhaustive so the walk ends exactly at space exhaustion: with an
// eval-count abort the engine dispatches one batch past the abort point,
// and those configurations are legitimately absent from any journal.
func TestFleetReplayShortCircuits(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(`{
		"name": "replay",
		"parameters": [
			{"name": "X", "range": {"interval": {"begin": 1, "end": 60}}},
			{"name": "Y", "range": {"interval": {"begin": 1, "end": 5}}}
		],
		"cost": {"kind": "expr", "expr": "(X - 42) * (X - 42) + Y"},
		"parallelism": 3,
		"record": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := runLocal(t, spec)

	replay := make(map[string]atf.Outcome, len(want.History))
	for _, ev := range want.History {
		if _, dup := replay[ev.Config.Key()]; !dup {
			replay[ev.Config.Key()] = atf.Outcome{Cost: ev.Cost, Err: ev.Err}
		}
	}

	// A worker that fails loudly if anything reaches it.
	poisoned := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("replayed configuration dispatched to a worker")
		http.Error(w, "poisoned", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(poisoned)
	defer srv.Close()

	f := NewFleet(fastOptions())
	if _, _, err := f.registry.Heartbeat(RegisterRequest{Name: "poisoned", URL: srv.URL}); err != nil {
		t.Fatal(err)
	}
	ev := f.SessionEvaluator("test", spec, build.Cost, replay)
	defer ev.(io.Closer).Close()
	tuner := build.Tuner
	tuner.Evaluator = ev
	got, err := tuner.Tune(build.Cost, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "replayed fleet", got, want)
}

// TestRegistryLiveness covers the liveness state machine: heartbeat
// makes a worker live, TTL expiry benches it, a dispatch failure benches
// it immediately, and the next heartbeat revives it.
func TestRegistryLiveness(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRegistry(2*time.Second, 6*time.Second)
	r.now = func() time.Time { return now }

	w, fresh, err := r.Heartbeat(RegisterRequest{Name: "w", URL: "http://127.0.0.1:9"})
	if err != nil || !fresh {
		t.Fatalf("first heartbeat: fresh=%v err=%v", fresh, err)
	}
	if _, again, _ := r.Heartbeat(RegisterRequest{Name: "w", URL: "http://127.0.0.1:9"}); again {
		t.Fatal("re-registration reported as fresh")
	}
	if len(r.Live()) != 1 {
		t.Fatal("heartbeated worker not live")
	}

	now = now.Add(7 * time.Second) // past the TTL
	if len(r.Live()) != 0 {
		t.Fatal("worker live past its TTL")
	}

	now = now.Add(time.Second)
	r.Heartbeat(RegisterRequest{Name: "w", URL: "http://127.0.0.1:9"})
	if len(r.Live()) != 1 {
		t.Fatal("heartbeat did not revive the worker")
	}

	r.MarkFailed(w)
	if len(r.Live()) != 0 {
		t.Fatal("failed worker still live before its next heartbeat")
	}
	st := r.Status()
	if len(st) != 1 || st[0].Live || st[0].Failures != 1 {
		t.Fatalf("status after failure: %+v", st)
	}
	r.Heartbeat(RegisterRequest{Name: "w", URL: "http://127.0.0.1:9"})
	if len(r.Live()) != 1 {
		t.Fatal("heartbeat did not clear the failure bench")
	}

	if _, _, err := r.Heartbeat(RegisterRequest{URL: ":not a url"}); err == nil {
		t.Fatal("bad worker URL accepted")
	}
}

// TestWorkerServerStreamsInOrder drives the worker's HTTP surface
// directly: results come back as NDJSON in request order with the batch
// index echoed, and repeat requests reuse the cached evaluator pool.
func TestWorkerServerStreamsInOrder(t *testing.T) {
	spec := parseDistSpec(t)
	build, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	space, err := atf.GenerateSpace(1, build.Params...)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]*atf.Config, 5)
	for i := range configs {
		configs[i] = space.At(uint64(i))
	}

	ws := NewWorkerServer(WorkerOptions{Name: "w", Parallelism: 2})
	defer ws.Close()
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()

	post := func() []EvalResult {
		t.Helper()
		body, err := json.Marshal(EvalRequest{Session: "s", BatchIndex: 9, Spec: spec, Configs: configs})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/eval", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval returned %s", resp.Status)
		}
		var recs []EvalResult
		torn, err := client.ScanNDJSON(resp.Body, func(line []byte) (bool, error) {
			var rec EvalResult
			if err := json.Unmarshal(line, &rec); err != nil {
				return false, err
			}
			recs = append(recs, rec)
			return true, nil
		})
		if err != nil || torn {
			t.Fatalf("stream err=%v torn=%v", err, torn)
		}
		return recs
	}

	recs := post()
	if len(recs) != len(configs) {
		t.Fatalf("got %d results, want %d", len(recs), len(configs))
	}
	for i, rec := range recs {
		if rec.Index != i || rec.BatchIndex != 9 {
			t.Fatalf("record %d = {batch %d, index %d}", i, rec.BatchIndex, rec.Index)
		}
		if len(rec.Cost) == 0 {
			t.Fatalf("record %d has no cost", i)
		}
	}

	again := post()
	for i := range recs {
		if recs[i].Cost.String() != again[i].Cost.String() {
			t.Fatalf("repeat eval of config %d: %s then %s", i, recs[i].Cost, again[i].Cost)
		}
	}
	ws.mu.Lock()
	pools := len(ws.pools)
	ws.mu.Unlock()
	if pools != 1 {
		t.Fatalf("worker built %d pools for one spec", pools)
	}

	// Bad requests are 4xx, not a torn stream.
	resp, err := http.Post(srv.URL+"/v1/eval", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty eval request returned %s", resp.Status)
	}
}

// TestRunHeartbeat: the loop registers, keeps the worker live across
// heartbeats, survives a coordinator outage, and stops on a permanent
// rejection.
func TestRunHeartbeat(t *testing.T) {
	f := NewFleet(Options{Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunHeartbeat(ctx, nil, srv.URL, RegisterRequest{Name: "hb", URL: "http://127.0.0.1:9"}, nil)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for len(f.registry.Live()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("heartbeat returned %v after cancel", err)
	}

	// A permanent rejection (bad advertise URL -> 400) stops the loop.
	err := RunHeartbeat(context.Background(), nil, srv.URL, RegisterRequest{Name: "bad", URL: ":nope"}, nil)
	if err == nil || client.IsTransient(err) {
		t.Fatalf("permanent rejection returned %v", err)
	}
}
