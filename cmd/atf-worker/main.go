// Command atf-worker is a remote evaluation worker for the atfd
// coordinator: it registers with the daemon, receives batch partitions
// of tuning configurations over HTTP, evaluates them with an in-process
// pool built from the session's spec, and streams the costs back. Add
// workers to scale a tuning session's evaluation throughput across
// machines; kill them freely — the coordinator re-dispatches whatever a
// dead worker left unfinished, and results are bit-identical to a local
// run regardless (docs/OPERATIONS.md, "Running a worker fleet").
//
// Usage:
//
//	atf-worker -coordinator http://127.0.0.1:7521 -addr 127.0.0.1:7621
//
// The worker advertises http://<addr> to the coordinator; when the
// coordinator reaches it through another address (NAT, containers), set
// -advertise explicitly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"atf/internal/dist"
	"atf/internal/obs"
	"atf/internal/oclc"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:7521", "coordinator (atfd) base URL")
	addr := flag.String("addr", "127.0.0.1:0", "HTTP listen address for eval requests")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default http://<addr>)")
	name := flag.String("name", "", "worker name in fleet listings and metrics (default host:port)")
	parallelism := flag.Int("parallelism", 0, "concurrent evaluations per request (0 = NumCPU)")
	engine := flag.String("engine", "",
		"oclc execution engine for kernel launches: vm-vec (default), vm, walk, vm-nospec (docs/OPERATIONS.md)")
	flag.Parse()

	eng, err := oclc.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	if eng != oclc.EngineDefault {
		oclc.SetDefaultEngine(eng)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	url := *advertise
	if url == "" {
		url = "http://" + ln.Addr().String()
	}

	ws := dist.NewWorkerServer(dist.WorkerOptions{Name: *name, Parallelism: *parallelism})
	defer ws.Close()
	mux := http.NewServeMux()
	mux.Handle("/", ws.Handler())
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default().WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	fmt.Printf("atf-worker: serving evals on %s (coordinator %s)\n", url, *coordinator)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hbCh := make(chan error, 1)
	go func() {
		hbCh <- dist.RunHeartbeat(ctx, nil, *coordinator, dist.RegisterRequest{Name: *name, URL: url},
			func(format string, args ...any) {
				fmt.Printf("atf-worker: "+format+"\n", args...)
			})
	}()

	select {
	case <-ctx.Done():
		fmt.Println("atf-worker: interrupted; in-flight partitions are re-dispatched by the coordinator")
	case err := <-hbCh:
		if err != nil && ctx.Err() == nil {
			fail(err) // permanent rejection by the coordinator
		}
	case err := <-errCh:
		fail(err)
	}
	srv.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atf-worker:", err)
	os.Exit(1)
}
