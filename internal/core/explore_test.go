package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// indexWalker is a minimal deterministic technique iterating the space in
// index order (an inline exhaustive search for exercising the loop).
type indexWalker struct {
	sp   *Space
	next uint64
	// reports records every cost reported back, to verify the protocol.
	reports []Cost
	inited  bool
	finaled bool
}

func (w *indexWalker) Initialize(sp *Space, seed int64) { w.sp = sp; w.inited = true }
func (w *indexWalker) Finalize()                        { w.finaled = true }
func (w *indexWalker) GetNextConfig() *Config {
	if w.next >= w.sp.Size() {
		return nil
	}
	c := w.sp.At(w.next)
	w.next++
	return c
}
func (w *indexWalker) ReportCost(cost Cost) { w.reports = append(w.reports, cost) }

// quadratic cost: minimum at WPT=N (fewest work-items is best under this
// toy model), with the exact value depending on both parameters.
func quadCost(n int64) CostFunction {
	return ScalarCostFunc(func(cfg *Config) float64 {
		wpt := float64(cfg.Int("WPT"))
		ls := float64(cfg.Int("LS"))
		return (float64(n)-wpt)*(float64(n)-wpt) + ls
	})
}

func mustSpace(t testing.TB, params []*Param) *Space {
	t.Helper()
	sp, err := GenerateFlat(params, GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestExploreFindsExhaustiveOptimum(t *testing.T) {
	const n = 24
	sp := mustSpace(t, saxpyParams(n))
	w := &indexWalker{}
	res, err := Explore(sp, w, quadCost(n), nil, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != sp.Size() {
		t.Fatalf("evaluations = %d, want %d (default abort is evaluations(S))",
			res.Evaluations, sp.Size())
	}
	// Optimum: WPT=24, LS=1 (LS must divide N/WPT=1).
	if res.Best.Int("WPT") != 24 || res.Best.Int("LS") != 1 {
		t.Fatalf("best = %v", res.Best)
	}
	if res.BestCost.Primary() != 1 {
		t.Fatalf("best cost = %v, want 1", res.BestCost)
	}
	if !w.inited || !w.finaled {
		t.Error("Initialize/Finalize protocol violated")
	}
	if uint64(len(w.reports)) != res.Evaluations {
		t.Error("every evaluation must be reported back")
	}
}

func TestExploreAbortsOnEvaluations(t *testing.T) {
	sp := mustSpace(t, saxpyParams(64))
	res, err := Explore(sp, &indexWalker{}, quadCost(64), Evaluations(5), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 5 {
		t.Fatalf("evaluations = %d, want 5", res.Evaluations)
	}
}

func TestExploreVirtualClockDuration(t *testing.T) {
	sp := mustSpace(t, saxpyParams(64))
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(time.Second)
		return now
	}
	res, err := Explore(sp, &indexWalker{}, quadCost(64), Duration(30*time.Second),
		ExploreOptions{Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Evaluations >= sp.Size() {
		t.Fatalf("duration abort should stop mid-run, evals = %d of %d", res.Evaluations, sp.Size())
	}
}

func TestExploreErrorsBecomeInfiniteCost(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	boom := errors.New("kernel launch failed")
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		if cfg.Int("WPT") == 1 {
			return nil, boom
		}
		return SingleCost(float64(cfg.Int("WPT"))), nil
	})
	res, err := Explore(sp, &indexWalker{}, cf, nil, ExploreOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("WPT") == 1 {
		t.Error("failed configs must not win")
	}
	if res.Valid >= res.Evaluations {
		t.Error("some evaluations should have been invalid")
	}
	foundErr := false
	for _, ev := range res.History {
		if ev.Err != nil {
			foundErr = true
			if !ev.Cost.IsInf() {
				t.Error("failed evaluation must carry infinite cost")
			}
		}
	}
	if !foundErr {
		t.Error("history should record the error")
	}
}

func TestExploreAllInvalid(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	cf := CostFunc(func(*Config) (Cost, error) { return nil, errors.New("nope") })
	res, err := Explore(sp, &indexWalker{}, cf, nil, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil || res.BestCost != nil {
		t.Error("no valid config → no best")
	}
	if res.Valid != 0 {
		t.Error("valid count should be zero")
	}
}

func TestExploreCaching(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	calls := 0
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		calls++
		return SingleCost(1), nil
	})
	// A technique that returns the same config forever.
	stuck := &stuckTechnique{}
	res, err := Explore(sp, stuck, cf, Evaluations(50), ExploreOptions{CacheCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 50 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if calls != 1 {
		t.Fatalf("cost function called %d times, want 1 (cached)", calls)
	}
}

type stuckTechnique struct{ sp *Space }

func (s *stuckTechnique) Initialize(sp *Space, seed int64) { s.sp = sp }
func (s *stuckTechnique) Finalize()                        {}
func (s *stuckTechnique) GetNextConfig() *Config           { return s.sp.At(0) }
func (s *stuckTechnique) ReportCost(Cost)                  {}

func TestExploreMultiObjectiveLexicographic(t *testing.T) {
	sp := mustSpace(t, []*Param{NewParam("x", NewInterval(1, 4))})
	// Runtime identical for x=2 and x=3; energy breaks the tie (paper,
	// Section II Step 2: lexicographic order on (runtime, energy)).
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		switch cfg.Int("x") {
		case 1:
			return Cost{10, 1}, nil
		case 2:
			return Cost{5, 9}, nil
		case 3:
			return Cost{5, 2}, nil
		default:
			return Cost{7, 0}, nil
		}
	})
	res, err := Explore(sp, &indexWalker{}, cf, nil, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("x") != 3 {
		t.Fatalf("best = %v, want x=3 (same runtime, lower energy)", res.Best)
	}
}

func TestExploreCustomOrder(t *testing.T) {
	sp := mustSpace(t, []*Param{NewParam("x", NewInterval(1, 3))})
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		switch cfg.Int("x") {
		case 1:
			return Cost{1, 100}, nil
		case 2:
			return Cost{2, 1}, nil
		default:
			return Cost{3, 3}, nil
		}
	})
	// Weighted sum 1*a+1*b: x=2 wins (3) over x=3 (6) and x=1 (101).
	res, err := Explore(sp, &indexWalker{}, cf, nil,
		ExploreOptions{Order: WeightedSumOrder(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("x") != 2 {
		t.Fatalf("best = %v, want x=2 under weighted-sum order", res.Best)
	}
}

func TestExploreImprovementsMonotone(t *testing.T) {
	sp := mustSpace(t, saxpyParams(48))
	res, err := Explore(sp, &indexWalker{}, quadCost(48), nil, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Improvements) == 0 {
		t.Fatal("expected at least one improvement")
	}
	for i := 1; i < len(res.Improvements); i++ {
		if !res.Improvements[i].Cost.Less(res.Improvements[i-1].Cost) {
			t.Fatal("improvements must strictly decrease")
		}
	}
	last := res.Improvements[len(res.Improvements)-1]
	if last.Cost.Primary() != res.BestCost.Primary() {
		t.Error("final improvement must match the best cost")
	}
}

func TestExploreRejectsBadInputs(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	cf := quadCost(12)
	if _, err := Explore(nil, &indexWalker{}, cf, nil, ExploreOptions{}); err == nil {
		t.Error("nil space must error")
	}
	if _, err := Explore(sp, nil, cf, nil, ExploreOptions{}); err == nil {
		t.Error("nil technique must error")
	}
	if _, err := Explore(sp, &indexWalker{}, nil, nil, ExploreOptions{}); err == nil {
		t.Error("nil cost function must error")
	}
	empty := mustSpace(t, []*Param{NewParam("x", NewSet(3), Divides(8))})
	if _, err := Explore(empty, &indexWalker{}, cf, nil, ExploreOptions{}); err == nil {
		t.Error("empty space must error")
	}
}

func TestExploreOnEvaluationObserver(t *testing.T) {
	sp := mustSpace(t, saxpyParams(12))
	var seen []uint64
	_, err := Explore(sp, &indexWalker{}, quadCost(12), Evaluations(4), ExploreOptions{
		OnEvaluation: func(ev Evaluation) { seen = append(seen, ev.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("observer saw %d evaluations, want 4", len(seen))
	}
	for i, idx := range seen {
		if idx != uint64(i) {
			t.Fatal("evaluation indices must be sequential")
		}
	}
}

func TestExploreTechniqueExhaustion(t *testing.T) {
	// A technique returning nil ends exploration even without abort firing.
	sp := mustSpace(t, saxpyParams(12))
	res, err := Explore(sp, &indexWalker{}, quadCost(12), Evaluations(1<<40), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != sp.Size() {
		t.Fatalf("walker should stop after covering the space once, evals=%d", res.Evaluations)
	}
}

func TestCostLexicographicOrdering(t *testing.T) {
	cases := []struct {
		a, b Cost
		less bool
	}{
		{Cost{1}, Cost{2}, true},
		{Cost{2}, Cost{1}, false},
		{Cost{1, 5}, Cost{1, 6}, true},
		{Cost{1, 6}, Cost{1, 5}, false},
		{Cost{1}, Cost{1, 0}, true}, // prefix is smaller
		{Cost{1, 0}, Cost{1}, false},
		{Cost{1, 2}, Cost{1, 2}, false},
	}
	for i, c := range cases {
		if c.a.Less(c.b) != c.less {
			t.Errorf("case %d: %v < %v should be %v", i, c.a, c.b, c.less)
		}
	}
}

func TestCostHelpers(t *testing.T) {
	if !InfCost().IsInf() {
		t.Error("InfCost must be infinite")
	}
	if Cost(nil).Primary() == 0 {
		t.Error("empty cost primary should be +inf")
	}
	if SingleCost(3).Primary() != 3 {
		t.Error("SingleCost broken")
	}
	c := Cost{1, 2}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Error("Clone must copy")
	}
	if SingleCost(1.5).String() != "1.5" {
		t.Errorf("String = %q", SingleCost(1.5).String())
	}
	if (Cost{1, 2}).String() != "(1, 2)" {
		t.Errorf("String = %q", (Cost{1, 2}).String())
	}
}

func TestExploreDeterministicWithSeed(t *testing.T) {
	// A randomized technique must reproduce runs given the same seed.
	sp := mustSpace(t, saxpyParams(64))
	run := func(seed int64) string {
		tech := &randomTechnique{}
		var picks string
		_, err := Explore(sp, tech, quadCost(64), Evaluations(20), ExploreOptions{
			Seed:         seed,
			OnEvaluation: func(ev Evaluation) { picks += fmt.Sprint(ev.Config.String(), ";") },
		})
		if err != nil {
			t.Fatal(err)
		}
		return picks
	}
	if run(42) != run(42) {
		t.Error("same seed must reproduce the run")
	}
	if run(42) == run(43) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

type randomTechnique struct {
	sp  *Space
	rng *rand.Rand
}

func (r *randomTechnique) Initialize(sp *Space, seed int64) {
	r.sp = sp
	r.rng = rand.New(rand.NewSource(seed))
}
func (r *randomTechnique) Finalize()              {}
func (r *randomTechnique) GetNextConfig() *Config { return r.sp.Random(r.rng) }
func (r *randomTechnique) ReportCost(Cost)        {}
