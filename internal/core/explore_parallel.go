package core

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"atf/internal/obs"
)

// CloneableCostFunction is a CostFunction that can produce independent
// copies of itself for concurrent use. ExploreParallel gives each worker
// its own clone, so cost functions owning per-run state (a simulated
// device queue, uploaded buffers) never share it across workers. Cost
// functions that do not implement Clone are shared by all workers and must
// be safe for concurrent calls.
type CloneableCostFunction interface {
	CostFunction
	// Clone returns an independent, equivalently initialized instance.
	Clone() (CostFunction, error)
}

// ParallelOptions tunes ExploreParallel.
type ParallelOptions struct {
	ExploreOptions
	// Workers is the number of concurrent cost evaluators: 1 runs the
	// sequential Explore loop (bit-compatible with it), <= 0 selects
	// runtime.NumCPU(). With a custom Evaluator, Workers only sets the
	// default BatchSize — the evaluator owns its own concurrency.
	Workers int
	// BatchSize is the number of configurations requested from the
	// technique per round; 0 means Workers. Larger batches amortize
	// synchronization, smaller ones shorten the speculation window of
	// adapted stateful techniques (see Batcher).
	BatchSize int
	// Evaluator substitutes the evaluate step: instead of the built-in
	// in-process pool (PoolEvaluator over cf), batches are handed to this
	// evaluator — the seam the distributed fleet coordinator plugs into.
	// The merge discipline is unchanged, so results stay bit-identical to
	// a local run for any evaluator that returns correct outcomes. The
	// caller owns the evaluator's lifecycle.
	Evaluator BatchEvaluator
	// OnBatch, when set, observes every batch before it is dispatched —
	// the hook the atfd journal uses to write batch-boundary records so a
	// coordinator crash mid-batch replays cleanly.
	OnBatch func(mark BatchMark)
}

// BatchMark identifies one dispatched batch: its 0-based index, the
// evaluation index of its first configuration, and its size.
type BatchMark struct {
	Index     uint64
	StartEval uint64
	Size      int
}

// ExploreParallel is the parallel exploration engine: it drives a worker
// pool of cost evaluators over batches of configurations drawn from the
// technique. Results are merged strictly in batch-index order — the same
// discipline GenerateGroup uses for its root chunks — so Result.Best,
// Improvements, History and the evaluation indices are identical regardless
// of worker count for any technique whose proposals do not depend on
// intermediate costs (exhaustive, seeded random, and every BatchTechnique
// that treats a batch as one step). Stateful sequential techniques adapted
// via Batcher receive speculative batches; their walks remain valid but
// differ from their one-at-a-time runs.
//
// The abort condition is applied per committed evaluation, exactly as in
// Explore: when it fires mid-batch, the remaining already-evaluated
// configurations of that batch are discarded, never counted, recorded or
// reported, so abort boundaries match the sequential run. A canceled
// ExploreOptions.Context stops exploration the same way — no new batch is
// dispatched, the current batch stops committing at the cancellation
// point, and the partial result is returned — so a daemon shutdown aborts
// in-flight work at the next commit boundary instead of draining the
// whole search.
func ExploreParallel(sp *Space, tech Technique, cf CostFunction, abort AbortCondition, opts ParallelOptions) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 && opts.Evaluator == nil && opts.OnBatch == nil {
		return Explore(sp, tech, cf, abort, opts.ExploreOptions)
	}
	if sp == nil || sp.Size() == 0 {
		return nil, fmt.Errorf("core: cannot explore an empty search space")
	}
	if tech == nil {
		return nil, fmt.Errorf("core: no search technique")
	}
	if cf == nil {
		return nil, fmt.Errorf("core: no cost function")
	}
	if abort == nil {
		abort = Evaluations(sp.Size())
	}
	order := opts.Order
	if order == nil {
		order = LexLess
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5eed_a7f1
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = workers
	}

	// The evaluate step: the caller's evaluator (the distributed fleet
	// coordinator) or the built-in in-process pool.
	evaluator := opts.Evaluator
	if evaluator == nil {
		pool, err := NewPoolEvaluator(cf, workers, opts.CacheCosts)
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		evaluator = pool
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	bt := AsBatch(tech)
	bt.Initialize(sp, seed)
	defer bt.Finalize()

	// committed tracks the keys of committed evaluations so the Cached flag
	// depends only on commit order, not on which worker won a cache race.
	var committed map[string]bool
	if opts.CacheCosts {
		committed = make(map[string]bool)
	}

	mWorkers.Set(int64(workers))
	span := obs.StartSpan("explore", slog.Int("workers", workers))

	st := &State{Start: now(), SpaceSize: sp.Size()}
	res := &Result{}
	aborted := false
	for batchIndex := uint64(0); !aborted && !opts.canceled(); batchIndex++ {
		batch := bt.GetNextBatch(batchSize)
		if len(batch) == 0 {
			break // technique exhausted
		}
		mBatches.Inc()
		if opts.OnBatch != nil {
			opts.OnBatch(BatchMark{Index: batchIndex, StartEval: st.Evaluations, Size: len(batch)})
		}

		// Fan the batch out to the evaluator...
		outcomes, err := evaluator.EvaluateBatch(ctx, batchIndex, batch)
		if err != nil {
			if opts.canceled() {
				break // cancellation mid-batch: return the partial result
			}
			return nil, fmt.Errorf("core: evaluating batch %d: %w", batchIndex, err)
		}
		if len(outcomes) != len(batch) {
			return nil, fmt.Errorf("core: evaluator returned %d outcomes for a batch of %d", len(outcomes), len(batch))
		}

		// ...and merge strictly in batch order.
		mergeStart := time.Now()
		evals := make([]Evaluation, 0, len(batch))
		for i, cfg := range batch {
			st.Now = now()
			if opts.canceled() || abort.Abort(st) {
				aborted = true
				break
			}
			cost, err := outcomes[i].Cost, outcomes[i].Err
			if err != nil && !cost.IsInf() {
				cost = InfCost() // failed evaluations never win, whatever the evaluator sent
			}
			var cached bool
			if committed != nil {
				key := cfg.Key()
				cached = committed[key]
				committed[key] = true
			}

			commitMetrics(cached, err)
			st.Evaluations++
			if !cost.IsInf() {
				st.Valid++
			}
			ev := Evaluation{
				Index:  st.Evaluations - 1,
				Config: cfg,
				Cost:   cost,
				Err:    err,
				At:     now().Sub(st.Start),
				Cached: cached,
			}
			evals = append(evals, ev)
			if opts.Record {
				res.History = append(res.History, ev)
			}
			if opts.OnEvaluation != nil {
				opts.OnEvaluation(ev)
			}
			if !cost.IsInf() && (st.Best == nil || order(cost, st.Best)) {
				st.Best = cost.Clone()
				st.BestConfig = cfg.Clone()
				st.improvements = append(st.improvements, improvement{at: now(), eval: st.Evaluations, cost: cost.Primary()})
				res.Improvements = append(res.Improvements, ev)
			}
		}
		bt.ReportCosts(evals)
		mBatchMergeSeconds.Observe(time.Since(mergeStart).Seconds())
	}

	res.Best = st.BestConfig
	res.BestCost = st.Best
	res.Evaluations = st.Evaluations
	res.Valid = st.Valid
	res.Elapsed = now().Sub(st.Start)
	span.End(slog.Uint64("evaluations", res.Evaluations), slog.Uint64("valid", res.Valid))
	return res, nil
}
