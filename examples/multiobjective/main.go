// Multi-objective: tune saxpy for (runtime, energy) under the
// lexicographic order of the paper's Section II — "configuration c has a
// lower cost than c' if either c has a lower runtime, or the same runtime
// and lower energy consumption". The energy term comes from the device
// power model, so wide-but-idle launches pay for the compute units they
// occupy.
package main

import (
	"fmt"
	"log"

	"atf"
	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/energy"
	"atf/internal/opencl"
)

func main() {
	const n = 1 << 20

	dev, err := opencl.FindDevice("NVIDIA", "K20m")
	if err != nil {
		log.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	queue := opencl.NewQueue(ctx)
	x := ctx.CreateBuffer(n)
	y := ctx.CreateBuffer(n)
	x.FillRandom(1)
	y.FillRandom(2)
	power := energy.NewModel(dev.Desc)

	// A two-objective cost function: (simulated ns, microjoules). The
	// profiling event carries the launch estimate the energy model needs.
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		prog := ctx.CreateProgram(clblast.SaxpySource)
		if err := prog.Build(c.Defines()); err != nil {
			return nil, err
		}
		k, err := prog.CreateKernel("saxpy")
		if err != nil {
			return nil, err
		}
		if err := k.SetArgs(int32(n), float32(2.0), x, y); err != nil {
			return nil, err
		}
		ev, err := queue.EnqueueNDRange(k,
			[]int64{n / c.Int("WPT")}, []int64{c.Int("LS")})
		if err != nil {
			return nil, err
		}
		return core.Cost{ev.DurationNs(), power.EstimateMicrojoules(ev.Estimate)}, nil
	})

	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))

	// Lexicographic (runtime first, energy second) — the default order.
	lex, err := atf.Tuner{
		Technique:  atf.SimulatedAnnealing(),
		Abort:      atf.Evaluations(400),
		CacheCosts: true,
	}.Tune(cf, wpt, ls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lexicographic (runtime, energy):\n")
	fmt.Printf("  best %s -> %.3f ms, %.1f µJ\n",
		lex.Best, lex.BestCost[0]/1e6, lex.BestCost[1])

	// A user-defined order (Section II: "or, alternatively, a
	// user-defined order"): weighted sum favouring energy.
	greenest, err := atf.Tuner{
		Technique:  atf.SimulatedAnnealing(),
		Abort:      atf.Evaluations(400),
		CacheCosts: true,
		Order:      atf.WeightedSum(1e-6, 1), // ns scaled down; µJ dominates
	}.Tune(cf, wpt, ls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy-weighted order:\n")
	fmt.Printf("  best %s -> %.3f ms, %.1f µJ\n",
		greenest.Best, greenest.BestCost[0]/1e6, greenest.BestCost[1])
}
