package atf_test

// Benchmark harness: one testing.B benchmark per paper artifact (DESIGN.md
// §4, E1–E9) plus the ablation benches of DESIGN.md §6. The benchmarks use
// reduced budgets so `go test -bench=.` stays tractable on a laptop; the
// full-budget numbers recorded in EXPERIMENTS.md come from
// cmd/atf-experiments. Each benchmark reports the paper-relevant metric
// (speedups, space sizes, generation times) via b.ReportMetric, so the
// *shape* of the result is visible directly in the bench output.

import (
	"fmt"
	"testing"
	"time"

	"atf"
	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/harness"
	"atf/internal/oclc"
	"atf/internal/opencl"
	"atf/internal/opentuner"
	"atf/internal/search"
)

// benchOpts are the reduced budgets used by the benchmarks.
func benchOpts() harness.Options {
	return harness.Options{
		Seed:           1,
		RangeCap:       16, // 86k valid configs; full runs use 64
		ATFEvals:       60,
		OpenTunerEvals: 2000,
		DevOptEvals:    30,
	}
}

// BenchmarkFig2CPU regenerates E1 (Fig. 2 left): ATF vs CLTune vs
// OpenTuner on the simulated Xeon, reporting the mean speedups. Note that
// at the reduced bench budget (range cap 16) ATF's space excludes the
// WGD=32 configurations the CLTune fallback may use, so the GPU variant
// can dip slightly below 1; the full-budget results live in
// EXPERIMENTS.md.
func BenchmarkFig2CPU(b *testing.B) {
	benchmarkFig2(b, "Xeon")
}

// BenchmarkFig2GPU regenerates E2 (Fig. 2 right) on the simulated K20m.
func BenchmarkFig2GPU(b *testing.B) {
	benchmarkFig2(b, "K20m")
}

func benchmarkFig2(b *testing.B, device string) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig2(device, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var cl, ot float64
		for _, row := range r.Rows {
			cl += row.SpeedupVsCLTune
			ot += row.SpeedupVsOpenTuner
		}
		b.ReportMetric(cl/float64(len(r.Rows)), "speedup-vs-cltune")
		b.ReportMetric(ot/float64(len(r.Rows)), "speedup-vs-opentuner")
	}
}

// BenchmarkSpaceGenATF regenerates E3's ATF side: constrained nested
// generation of the unrestricted XgemmDirect space (32×32 setting).
func BenchmarkSpaceGenATF(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _, err := core.CountGroup(core.G(params...), core.GenOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "valid-configs")
	}
}

// BenchmarkSpaceGenCLTune regenerates E3's CLTune side with a visit budget
// (full enumeration of the 6.9e10-combination product is the paper's
// "aborted after 3 hours"); reports the projected full-enumeration time.
func BenchmarkSpaceGenCLTune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.SpaceGen(32, 2e6, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !r.CLTuneAborted {
			b.Fatal("budget unexpectedly sufficient")
		}
		b.ReportMetric(r.CLTuneProjected.Seconds(), "projected-full-s")
		b.ReportMetric(r.ATFTime.Seconds(), "atf-s")
	}
}

// BenchmarkSpaceSize regenerates E4: unconstrained vs constrained space
// sizes (reduced cap; the 2^10 census runs via cmd/atf-experiments).
func BenchmarkSpaceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Sizes(64, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Constrained), "valid-configs")
	}
}

// BenchmarkRelaxedConstraints regenerates E5: ATF with vs without the two
// CLTune-style global-size constraints on IS4/GPU.
func BenchmarkRelaxedConstraints(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rs, err := harness.Relaxed("K20m", opts)
		if err != nil {
			b.Fatal(err)
		}
		is4 := rs[3]
		b.ReportMetric(float64(is4.ConstrainedSize), "constrained-space")
		b.ReportMetric(float64(is4.RelaxedSize), "relaxed-space")
	}
}

// BenchmarkOpenTunerValidity regenerates E6: valid hits of the raw-space
// OpenTuner baseline.
func BenchmarkOpenTunerValidity(b *testing.B) {
	opts := benchOpts()
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: opts.RangeCap})
	dev, err := opencl.FindDevice("", "K20m")
	if err != nil {
		b.Fatal(err)
	}
	shape := clblast.CaffeInputSizes()[3]
	eval := clblast.NewGemmEvaluator(dev, shape, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := &opentuner.RawTuner{Params: params, Validate: func(cfg *core.Config) bool {
			return clblast.ValidateConfig(cfg, params)
		}}
		run, err := rt.Tune(eval.CostFunction(), opts.OpenTunerEvals, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.ValidEvals), "valid-hits")
	}
}

// BenchmarkDefaultsVsDeviceOptimized regenerates E7 on the CPU, where the
// paper's surprise (defaults beat the 256×256-optimized values) is
// strongest.
func BenchmarkDefaultsVsDeviceOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := harness.Defaults("Xeon", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, r := range rs {
			if r.DefaultWins {
				wins++
			}
		}
		b.ReportMetric(float64(wins), "defaults-wins-of-4")
	}
}

// BenchmarkSaxpyTuning regenerates E8: the Listing 2 end-to-end flow.
func BenchmarkSaxpyTuning(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		cf, err := (&atf.OpenCL{
			Platform: "NVIDIA", Device: "K20c",
			Source: clblast.SaxpySource, Kernel: "saxpy",
			Args: []atf.KernelArg{
				atf.Scalar(int32(n)), atf.RandomScalar(),
				atf.RandomBuffer(n), atf.RandomBuffer(n),
			},
			GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
			LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
		}).CostFunction()
		if err != nil {
			b.Fatal(err)
		}
		wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
		ls := atf.TP("LS", atf.Interval(1, n),
			atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
		res, err := atf.Tuner{
			Technique:  atf.SimulatedAnnealing(),
			Abort:      atf.Evaluations(80),
			CacheCosts: true,
		}.Tune(cf, wpt, ls)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestCost.Primary(), "best-ns")
	}
}

// BenchmarkParallelSpaceGen regenerates E9: grouped (parallel) vs
// single-worker generation. On a single-core host the speedup is ~1.
func BenchmarkParallelSpaceGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Groups(4, 256, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "gen-speedup")
	}
}

// --- ablation benches (DESIGN.md §6) -----------------------------------

// BenchmarkGenerationTrieVsCount isolates the trie's materialization cost
// against the pure constrained iteration.
func BenchmarkGenerationTrieVsCount(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 16})
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.CountGroup(core.G(params...), core.GenOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GenerateFlat(params, core.GenOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexLookup measures the trie's O(depth·branching) index
// decode, the operation every index-based technique leans on.
func BenchmarkIndexLookup(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 16})
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.At(uint64(i) % sp.Size())
	}
}

// BenchmarkAnnealingTemperature ablates the paper's T=4 default against
// greedier and more permissive temperatures on the saxpy space.
func BenchmarkAnnealingTemperature(b *testing.B) {
	const n = 1 << 16
	dev, err := opencl.FindDevice("NVIDIA", "K20m")
	if err != nil {
		b.Fatal(err)
	}
	eval := clblast.NewSaxpyEvaluator(dev, n, 1)
	sp, err := core.GenerateFlat(clblast.SaxpyParams(n), core.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		temp float64
	}{{"T1", 1}, {"T4-paper", 4}, {"T16", 16}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Explore(sp,
					&search.Annealing{Temperature: tc.temp},
					eval.CostFunction(), core.Evaluations(80),
					core.ExploreOptions{Seed: int64(i + 1), CacheCosts: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BestCost.Primary(), "best-ns")
			}
		})
	}
}

// BenchmarkOpenTunerIndexVsRaw ablates Section IV-C against §VI-B: the
// same OpenTuner engine over ATF's valid-only index space versus the raw
// penalized space, same budget.
func BenchmarkOpenTunerIndexVsRaw(b *testing.B) {
	opts := benchOpts()
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: opts.RangeCap})
	dev, err := opencl.FindDevice("", "K20m")
	if err != nil {
		b.Fatal(err)
	}
	eval := clblast.NewGemmEvaluator(dev, clblast.CaffeInputSizes()[3], 1)
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Explore(sp, opentuner.NewIndexTechnique(),
				eval.CostFunction(), core.Evaluations(100),
				core.ExploreOptions{Seed: int64(i + 1), CacheCosts: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Valid), "valid-evals")
		}
	})
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := &opentuner.RawTuner{Params: params, Validate: func(cfg *core.Config) bool {
				return clblast.ValidateConfig(cfg, params)
			}}
			run, err := rt.Tune(eval.CostFunction(), 100, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(run.ValidEvals), "valid-evals")
		}
	})
}

// BenchmarkDivisorHints ablates the divisor-hinted range iteration (a
// beyond-paper extension): same space, fewer scanned candidates at the
// divides-constrained levels.
func BenchmarkDivisorHints(b *testing.B) {
	for _, tc := range []struct {
		name  string
		hints bool
	}{{"plain", false}, {"hinted", true}} {
		b.Run(tc.name, func(b *testing.B) {
			params := clblast.XgemmDirectParams(clblast.SpaceOptions{
				RangeCap: 64, DivisorHints: tc.hints,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, checks, err := core.CountGroup(core.G(params...), core.GenOptions{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(checks), "checks")
				b.ReportMetric(float64(n), "valid-configs")
			}
		})
	}
}

// BenchmarkGenerateSpace measures the space-generation hot path on the
// full XgemmDirect space (reduced cap 32; the cap-64 numbers live in
// results/spacegen.md) across the memoization ablation and worker counts.
// Constraint checks and the unique/logical node ratio are reported so a
// benchdiff run shows the sharing effect alongside the wall clock.
func BenchmarkGenerateSpace(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 32})
	for _, tc := range []struct {
		name string
		mode core.MemoMode
	}{{"memo-off", core.MemoOff}, {"memo-on", core.MemoOn}} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sp, err := core.GenerateFlat(params, core.GenOptions{
						Workers: workers, Memoize: tc.mode,
					})
					if err != nil {
						b.Fatal(err)
					}
					logical, unique := sp.NodeCounts()
					b.ReportMetric(float64(sp.Checks()), "checks")
					b.ReportMetric(float64(logical), "logical-nodes")
					b.ReportMetric(float64(unique), "unique-nodes")
				}
			})
		}
	}
}

// BenchmarkGenerateSpaceLazy measures lazy streaming construction on the
// paper's headline space: XgemmDirect with uncapped {1..1024} ranges (raw
// product beyond 10^19), counting-only Size plus a sweep of 100 At calls,
// reporting the expanded-slab bytes left resident.
func BenchmarkGenerateSpaceLazy(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 1024, DivisorHints: true})
	for i := 0; i < b.N; i++ {
		sp, err := core.GenerateFlat(params, core.GenOptions{MaxArenaBytes: 256 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if sp.LazyGroups() != 1 {
			b.Fatal("expected lazy construction")
		}
		step := sp.Size()/100 + 1
		for idx := uint64(0); idx < sp.Size(); idx += step {
			sp.At(idx)
		}
		_, _, resident := sp.LazyStats()
		b.ReportMetric(float64(sp.Size()), "valid-configs")
		b.ReportMetric(float64(sp.Checks()), "checks")
		b.ReportMetric(float64(resident), "resident-bytes")
	}
}

// BenchmarkKernelInterpreter measures the simulated-OpenCL substrate
// itself: one sampled XgemmDirect launch per iteration, under each
// execution engine. engine=walk is the tree-walking reference,
// engine=vm-nospec the bytecode VM without define-specialization,
// engine=vm the scalar bytecode VM (ISSUE 5 target: vm ≥5× walk), and
// engine=vm-vec the lockstep-vectorized production path (ISSUE 6 target:
// vm-vec ≥3× vm on XgemmDirect).
func BenchmarkKernelInterpreter(b *testing.B) {
	dev, err := opencl.FindDevice("", "K20m")
	if err != nil {
		b.Fatal(err)
	}
	prev := oclc.DefaultEngine()
	defer oclc.SetDefaultEngine(prev)
	for _, eng := range []oclc.Engine{oclc.EngineWalk, oclc.EngineVMNoSpec, oclc.EngineVM, oclc.EngineVMVec} {
		b.Run("engine="+eng.String(), func(b *testing.B) {
			oclc.SetDefaultEngine(eng)
			eval := clblast.NewGemmEvaluator(dev, clblast.CaffeInputSizes()[1], 1)
			cfg := clblast.DefaultConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreParallel measures the parallel exploration engine against
// the sequential loop on a synthetic 10ms cost function (the regime parallel
// exploration targets: evaluation dominates, merging is negligible). The
// speedup metric is wall-clock sequential/parallel per sub-bench; 8 workers
// must clear 2x.
func BenchmarkExploreParallel(b *testing.B) {
	const evals = 32
	params := []*core.Param{core.NewParam("X", core.NewInterval(1, 1024))}
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cf := core.CostFunc(func(cfg *core.Config) (core.Cost, error) {
		time.Sleep(10 * time.Millisecond)
		return core.SingleCost(float64(cfg.Int("X"))), nil
	})
	seqStart := time.Now()
	if _, err := core.Explore(sp, search.NewExhaustive(), cf, core.Evaluations(evals),
		core.ExploreOptions{}); err != nil {
		b.Fatal(err)
	}
	seqTime := time.Since(seqStart)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := core.ExploreParallel(sp, search.NewExhaustive(), cf, core.Evaluations(evals),
					core.ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(seqTime.Seconds()/time.Since(start).Seconds(), "speedup-vs-seq")
				b.ReportMetric(float64(evals)/time.Since(start).Seconds(), "evals/s")
			}
		})
	}
}

// BenchmarkExhaustiveSweep measures streaming slab iteration against the
// point-by-point At(i) decode it replaced in the exhaustive technique, on
// the capped XgemmDirect space (ISSUE 10 target: sweep ≥3× at). Both
// sub-benches walk the identical full configuration sequence; the sweep
// amortizes the root-to-leaf descent across each chunk and overlaps the
// next chunk's decode with the consumer.
func BenchmarkExhaustiveSweep(b *testing.B) {
	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: 16})
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	size := sp.Size()
	b.Run("at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for idx := uint64(0); idx < size; idx++ {
				_ = sp.At(idx)
			}
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sw := sp.Sweep(0, core.SweepOptions{Prefetch: true})
			n := uint64(0)
			for {
				chunk := sw.NextChunk(256)
				if chunk == nil {
					break
				}
				n += uint64(len(chunk))
			}
			sw.Close()
			if n != size {
				b.Fatalf("sweep yielded %d configs, want %d", n, size)
			}
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
	})
}

// BenchmarkOclcCompileCache measures the compiled-program cache: a cold
// compile pays the preprocess+lex+parse pipeline, a cached one returns the
// shared immutable Program.
func BenchmarkOclcCompileCache(b *testing.B) {
	defines := map[string]string{"WPT": "4", "LS": "64"}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oclc.ResetCompileCache()
			if _, err := oclc.CompileCached(clblast.SaxpySource, defines); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		oclc.ResetCompileCache()
		if _, err := oclc.CompileCached(clblast.SaxpySource, defines); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := oclc.CompileCached(clblast.SaxpySource, defines); err != nil {
				b.Fatal(err)
			}
		}
		oclc.ResetCompileCache()
	})
}
