package core

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range []Value{
		Int(42), Int(-7), Int(0),
		Float(1.5), Float(2.0), Float(-0.25), // 2.0 must stay a float
		Bool(true), Bool(false),
		Str("simd"), Str(""),
	} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !back.Equal(v) || back.Kind() != v.Kind() {
			t.Errorf("round trip %v (%v) -> %s -> %v (%v)", v, v.Kind(), data, back, back.Kind())
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := ConfigFromMap([]string{"WPT", "LS", "USE_SIMD", "ALPHA"}, map[string]Value{
		"WPT": Int(4), "LS": Int(32), "USE_SIMD": Bool(true), "ALPHA": Float(0.5),
	})
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"WPT":4,"LS":32,"USE_SIMD":true,"ALPHA":0.5}`
	if string(data) != want {
		t.Errorf("config JSON = %s, want %s (declaration order)", data, want)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cfg) {
		t.Errorf("round trip: %v != %v", &back, cfg)
	}
	if back.Key() != cfg.Key() {
		t.Errorf("round trip changed cache key: %q != %q", back.Key(), cfg.Key())
	}
}

func TestCostJSONRoundTrip(t *testing.T) {
	for _, c := range []Cost{
		SingleCost(123.25),
		{1.5, 2.5, 3.0},
		InfCost(),
		{2.0, math.Inf(1)},
	} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back Cost
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if len(back) != len(c) {
			t.Fatalf("round trip %v -> %s -> %v", c, data, back)
		}
		for i := range c {
			same := c[i] == back[i] || (math.IsNaN(c[i]) && math.IsNaN(back[i]))
			if !same {
				t.Errorf("round trip %v -> %s -> %v", c, data, back)
			}
		}
	}
}

func TestEvaluationJSONRoundTrip(t *testing.T) {
	cfg := ConfigFromMap([]string{"X"}, map[string]Value{"X": Int(3)})
	evs := []Evaluation{
		{Index: 7, Config: cfg, Cost: SingleCost(42), At: 1500 * time.Millisecond, Cached: true},
		{Index: 8, Config: cfg, Cost: InfCost(), Err: errors.New("kernel launch failed")},
	}
	for _, ev := range evs {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back Evaluation
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Index != ev.Index || back.At != ev.At || back.Cached != ev.Cached {
			t.Errorf("round trip %s lost fields: %+v", data, back)
		}
		if !back.Config.Equal(ev.Config) {
			t.Errorf("round trip lost config: %s", data)
		}
		if (ev.Err == nil) != (back.Err == nil) {
			t.Errorf("round trip changed error presence: %s", data)
		}
		if ev.Err != nil && back.Err.Error() != ev.Err.Error() {
			t.Errorf("round trip changed error message: %q", back.Err)
		}
	}
}
