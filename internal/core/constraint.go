package core

import "fmt"

// Constraint filters a tuning parameter's range: it receives a candidate
// value for the parameter plus the partial configuration of all previously
// declared parameters, and rejects the value (paper, Section II, Step 1).
// Rejection happens during range iteration, before the Cartesian product is
// formed — the core of ATF's fast space generation.
//
// A Constraint additionally carries its *read footprint*: the set of
// previously declared parameter names its predicate may consult (see
// Deps). The footprint drives dependency-aware subtree memoization during
// space generation — prefixes that agree on the footprint of the remaining
// parameters share one subtree instead of re-deriving it. Constraints
// built from the paper's aliases (Divides, LessThan, ...) derive their
// footprint from the expression they wrap; raw Go predicates use Fn
// (unknown footprint, conservatively treated as "all preceding
// parameters") or FnReads (explicitly declared footprint).
//
// The zero Constraint accepts every value and reads nothing.
type Constraint struct {
	fn    func(v Value, c *Config) bool
	reads []string
	exact bool
}

// Check reports whether the constraint accepts candidate value v in the
// context of partial configuration c. The zero Constraint accepts all.
func (ct Constraint) Check(v Value, c *Config) bool {
	return ct.fn == nil || ct.fn(v, c)
}

// IsZero reports whether the constraint is the zero value (no predicate).
func (ct Constraint) IsZero() bool { return ct.fn == nil }

// Deps returns the names of previously declared parameters the constraint
// may read. exact is true when the list is complete; exact == false means
// the footprint is unknown (an unannotated Go closure) and callers must
// conservatively assume the constraint reads every preceding parameter.
func (ct Constraint) Deps() (reads []string, exact bool) {
	if ct.fn == nil {
		return nil, true
	}
	return ct.reads, ct.exact
}

// Fn adapts a raw predicate over (candidate, partial configuration) into a
// Constraint with an unknown read footprint. Space generation remains
// correct but cannot share subtrees across the parameter: an unknown
// footprint counts as "reads all preceding parameters". Prefer FnReads
// when the read set is known.
func Fn(f func(v Value, c *Config) bool) Constraint {
	return Constraint{fn: f}
}

// FnReads adapts a raw predicate into a Constraint declaring the complete
// set of previously declared parameter names the predicate reads. The
// declaration is a promise: if the predicate consults a parameter outside
// reads, memoized generation may share subtrees that should differ.
// (Declaring a superset is always safe.)
func FnReads(f func(v Value, c *Config) bool, reads ...string) Constraint {
	return Constraint{fn: f, reads: dedupNames(reads), exact: true}
}

// The six constraint aliases the paper lists (Section II): divides,
// is_multiple_of, less_than, greater_than, equal, unequal. Each takes a
// constant or an expression over earlier parameters and inherits the
// expression's read footprint.

// Divides accepts values v for which v divides expr(c) evenly. A value of
// zero never divides anything (avoids division by zero).
func Divides(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn: func(v Value, c *Config) bool {
			d := v.Int()
			if d == 0 {
				return false
			}
			return ev(c)%d == 0
		},
		reads: e.reads, exact: e.exact,
	}
}

// IsMultipleOf accepts values v that are an integer multiple of expr(c).
func IsMultipleOf(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn: func(v Value, c *Config) bool {
			m := ev(c)
			if m == 0 {
				return false
			}
			return v.Int()%m == 0
		},
		reads: e.reads, exact: e.exact,
	}
}

// LessThan accepts values strictly below expr(c).
func LessThan(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() < ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// GreaterThan accepts values strictly above expr(c).
func GreaterThan(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() > ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// LessEqual accepts values less than or equal to expr(c). Not one of the six
// paper aliases but trivially added, as the paper invites ("further aliases
// can be easily added").
func LessEqual(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() <= ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// GreaterEqual accepts values greater than or equal to expr(c).
func GreaterEqual(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() >= ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// Equal accepts values equal to expr(c).
func Equal(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() == ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// Unequal accepts values different from expr(c).
func Unequal(x any) Constraint {
	e := ExprOf(x)
	ev := e.fn
	return Constraint{
		fn:    func(v Value, c *Config) bool { return v.Int() != ev(c) },
		reads: e.reads, exact: e.exact,
	}
}

// ConstraintAliases maps the paper's alias names (snake_case, matching
// atf::divides etc.) to their constructors. Declarative frontends — the
// atfd JSON API and spec files — resolve constraint operators through this
// table, so adding an alias here makes it available by name everywhere.
var ConstraintAliases = map[string]func(x any) Constraint{
	"divides":        Divides,
	"is_multiple_of": IsMultipleOf,
	"less_than":      LessThan,
	"greater_than":   GreaterThan,
	"less_equal":     LessEqual,
	"greater_equal":  GreaterEqual,
	"equal":          Equal,
	"unequal":        Unequal,
}

// ConstraintByName resolves a constraint alias from ConstraintAliases and
// applies it to the given constant or expression.
func ConstraintByName(op string, x any) (Constraint, error) {
	alias, ok := ConstraintAliases[op]
	if !ok {
		return Constraint{}, fmt.Errorf("core: unknown constraint alias %q", op)
	}
	return alias(x), nil
}

// And combines constraints conjunctively, mirroring ATF's && operator on
// constraints. Zero-value elements are treated as always-true. The
// combined read footprint is the union of the elements'; it is exact only
// when every element's is.
func And(cs ...Constraint) Constraint {
	fns, reads, exact := combine(cs)
	switch len(fns) {
	case 0:
		return Constraint{}
	case 1:
		return Constraint{fn: fns[0], reads: reads, exact: exact}
	}
	return Constraint{
		fn: func(v Value, c *Config) bool {
			for _, f := range fns {
				if !f(v, c) {
					return false
				}
			}
			return true
		},
		reads: reads, exact: exact,
	}
}

// Or combines constraints disjunctively, mirroring ATF's || operator.
// With no non-zero constraints Or accepts everything.
func Or(cs ...Constraint) Constraint {
	fns, reads, exact := combine(cs)
	if len(fns) == 0 {
		return Constraint{}
	}
	return Constraint{
		fn: func(v Value, c *Config) bool {
			for _, f := range fns {
				if f(v, c) {
					return true
				}
			}
			return false
		},
		reads: reads, exact: exact,
	}
}

// Not negates a constraint; the footprint is unchanged. Negating the zero
// constraint rejects everything.
func Not(ct Constraint) Constraint {
	return Constraint{
		fn:    func(v Value, c *Config) bool { return !ct.Check(v, c) },
		reads: ct.reads, exact: ct.fn == nil || ct.exact,
	}
}

// combine collects the non-zero predicates and merges footprints.
func combine(cs []Constraint) (fns []func(Value, *Config) bool, reads []string, exact bool) {
	exact = true
	for _, ct := range cs {
		if ct.fn == nil {
			continue
		}
		fns = append(fns, ct.fn)
		if !ct.exact {
			exact = false
		}
		for _, r := range ct.reads {
			if !contains(reads, r) {
				reads = append(reads, r)
			}
		}
	}
	return fns, reads, exact
}

// dedupNames copies names dropping duplicates, preserving order.
func dedupNames(names []string) []string {
	var out []string
	for _, n := range names {
		if !contains(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// Pred adapts a plain predicate over the candidate value (ignoring earlier
// parameters) into a Constraint with an empty, exact footprint.
func Pred(f func(v Value) bool) Constraint {
	return Constraint{fn: func(v Value, _ *Config) bool { return f(v) }, exact: true}
}

// IntPred adapts a predicate over int64 candidate values.
func IntPred(f func(v int64) bool) Constraint {
	return Constraint{fn: func(v Value, _ *Config) bool { return f(v.Int()) }, exact: true}
}
