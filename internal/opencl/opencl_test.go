package opencl

import (
	"strings"
	"testing"
)

func TestPlatformDiscoveryDeterministic(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 {
		t.Fatalf("platforms = %d, want 2", len(ps))
	}
	if ps[0].Name != "Intel" || ps[1].Name != "NVIDIA" {
		t.Fatalf("platform order must be deterministic: %v, %v", ps[0].Name, ps[1].Name)
	}
}

func TestFindDeviceByName(t *testing.T) {
	d, err := FindDevice("NVIDIA", "Tesla K20c")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "Tesla K20c" {
		t.Fatalf("found %q", d.Name())
	}
	// Case-insensitive substring match, as names come from humans.
	if _, err := FindDevice("nvidia", "k20m"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDevice("Intel", "Xeon"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindDevice("AMD", "Fiji"); err == nil {
		t.Fatal("unknown device should not be found")
	}
}

func TestBufferRoundTrip(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	b := ctx.CreateBuffer(4)
	b.Write([]float32{1, 2, 3, 4})
	got := b.Read()
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("roundtrip failed: %v", got)
	}
	if b.Len() != 4 {
		t.Fatal("Len wrong")
	}
}

func TestBufferFillRandomDeterministic(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	a := ctx.CreateBuffer(16)
	b := ctx.CreateBuffer(16)
	a.FillRandom(7)
	b.FillRandom(7)
	av, bv := a.Read(), b.Read()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed must produce same data")
		}
		if av[i] < -2 || av[i] > 2 {
			t.Fatalf("value %v outside [-2,2]", av[i])
		}
	}
	c := ctx.CreateBuffer(16)
	c.FillRandom(8)
	if c.Read()[0] == av[0] {
		t.Fatal("different seeds should differ")
	}
}

const testKernel = `
__kernel void scale(const float f, __global float* data) {
  data[get_global_id(0)] = data[get_global_id(0)] * f;
}`

func TestBuildAndRunKernel(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.CreateBuffer(64)
	buf.Write(make([]float32, 64))
	if err := k.SetArgs(float32(2), buf); err != nil {
		t.Fatal(err)
	}
	q := NewQueue(ctx)
	ev, err := q.EnqueueNDRange(k, []int64{64}, []int64{32})
	if err != nil {
		t.Fatal(err)
	}
	if ev.DurationNs() <= 0 {
		t.Fatal("profiling time must be positive")
	}
}

func TestBuildErrorSurfacesPosition(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram("__kernel void broken( { }")
	err := prog.Build(nil)
	if err == nil || !strings.Contains(err.Error(), "build failed") {
		t.Fatalf("want build error, got %v", err)
	}
}

func TestBuildWithDefines(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(`
__kernel void k(__global float* o) { o[get_global_id(0)] = VALUE; }`)
	if err := prog.Build(map[string]string{"VALUE": "3.5"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.BuildOptions(), "-D VALUE=3.5") {
		t.Fatalf("build options = %q", prog.BuildOptions())
	}
	k, err := prog.CreateKernel("k")
	if err != nil {
		t.Fatal(err)
	}
	buf := ctx.CreateBuffer(4)
	if err := k.SetArgs(buf); err != nil {
		t.Fatal(err)
	}
	q := NewQueue(ctx)
	q.Functional = true
	if _, err := q.EnqueueNDRange(k, []int64{4}, []int64{2}); err != nil {
		t.Fatal(err)
	}
	if buf.Read()[3] != 3.5 {
		t.Fatalf("define did not reach the kernel: %v", buf.Read())
	}
}

func TestCreateKernelErrors(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if _, err := prog.CreateKernel("scale"); err == nil {
		t.Fatal("kernel creation before build must fail")
	}
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.CreateKernel("missing"); err == nil {
		t.Fatal("unknown kernel must fail")
	}
}

func TestSetArgsRejectsUnsupported(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("scale")
	if err := k.SetArgs("a string"); err == nil {
		t.Fatal("string args are not a thing in OpenCL")
	}
}

func TestEnqueueValidation(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("scale")
	buf := ctx.CreateBuffer(64)
	_ = k.SetArgs(float32(1), buf)
	q := NewQueue(ctx)
	// Mismatched dimensionality.
	if _, err := q.EnqueueNDRange(k, []int64{64}, []int64{8, 8}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
	// Work-group size beyond device limit (K20m: 1024).
	if _, err := q.EnqueueNDRange(k, []int64{4096}, []int64{2048}); err == nil {
		t.Fatal("oversized work-group must fail")
	}
	// Local not dividing global.
	if _, err := q.EnqueueNDRange(k, []int64{63}, []int64{8}); err == nil {
		t.Fatal("local must divide global")
	}
}

func TestSampledVsFunctionalExecution(t *testing.T) {
	d, _ := FindDevice("NVIDIA", "K20m")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("scale")
	buf := ctx.CreateBuffer(128)
	data := make([]float32, 128)
	for i := range data {
		data[i] = 1
	}
	buf.Write(data)
	_ = k.SetArgs(float32(2), buf)

	// Profiling mode executes only a sample; most elements stay 1.
	q := NewQueue(ctx)
	if _, err := q.EnqueueNDRange(k, []int64{128}, []int64{32}); err != nil {
		t.Fatal(err)
	}
	touched := 0
	for _, v := range buf.Read() {
		if v != 1 {
			touched++
		}
	}
	if touched != 32 {
		t.Fatalf("sampled run should touch one work-group (32), touched %d", touched)
	}

	// Functional mode executes everything.
	buf.Write(data)
	q.Functional = true
	if _, err := q.EnqueueNDRange(k, []int64{128}, []int64{32}); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf.Read() {
		if v != 2 {
			t.Fatalf("functional run missed element %d", i)
		}
	}
}

func TestEventExposesEstimate(t *testing.T) {
	d, _ := FindDevice("Intel", "Xeon")
	ctx := NewContext(d)
	prog := ctx.CreateProgram(testKernel)
	if err := prog.Build(nil); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("scale")
	buf := ctx.CreateBuffer(256)
	_ = k.SetArgs(float32(1), buf)
	ev, err := NewQueue(ctx).EnqueueNDRange(k, []int64{256}, []int64{64})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Estimate == nil || ev.Exec == nil {
		t.Fatal("event should expose estimate and execution result")
	}
	if ev.Estimate.Waves <= 0 {
		t.Fatal("estimate incomplete")
	}
}
