package atf

import (
	"time"

	"atf/internal/core"
	"atf/internal/opentuner"
	"atf/internal/search"
)

// Exhaustive returns the exhaustive search technique, which "finds the
// provably best configuration, but probably at the cost of a long search
// time" (paper, Section II Step 3). It is the right choice for small
// spaces.
func Exhaustive() Technique { return search.NewExhaustive() }

// SimulatedAnnealing returns the simulated-annealing technique with the
// paper's default temperature T=4, "effective for auto-tuning OpenCL and
// CUDA applications if search spaces are too large to be explored
// exhaustively".
func SimulatedAnnealing() Technique { return search.NewAnnealing() }

// SimulatedAnnealingT returns annealing with an explicit temperature and
// cooling factor (1 = the paper's constant-temperature annealer).
func SimulatedAnnealingT(temperature, cooling float64) Technique {
	return &search.Annealing{Temperature: temperature, Cooling: cooling}
}

// OpenTunerSearch returns the OpenTuner ensemble technique (paper,
// Section IV-C): an AUC-bandit meta-technique over Nelder-Mead variants,
// Torczon hill climbers, greedy mutation and random search, applied to the
// single index parameter TP ∈ [0, S) over ATF's valid-only search space.
func OpenTunerSearch() Technique { return opentuner.NewIndexTechnique() }

// RandomSearch samples configurations uniformly — a baseline technique.
func RandomSearch() Technique { return search.NewRandom() }

// LocalSearch is a first-improvement hill climber with random restarts —
// the worked example of extending ATF with a user-defined technique.
func LocalSearch(patience int) Technique { return search.NewLocalSearch(patience) }

// Abort conditions (paper, Section II Step 3). Conditions combine with
// AbortAnd / AbortOr.

// Duration stops exploration after a wall-clock interval.
func Duration(d time.Duration) AbortCondition { return core.Duration(d) }

// Evaluations stops after n tested configurations.
func Evaluations(n uint64) AbortCondition { return core.Evaluations(n) }

// Fraction stops after f*S tested configurations (S = space size).
func Fraction(f float64) AbortCondition { return core.Fraction(f) }

// CostBelow stops once a configuration with cost <= c has been found.
func CostBelow(c float64) AbortCondition { return core.CostBelow(c) }

// SpeedupDuration stops when the best cost improved by less than factor s
// within the last interval d.
func SpeedupDuration(s float64, d time.Duration) AbortCondition {
	return core.SpeedupDuration(s, d)
}

// SpeedupEvaluations stops when the best cost improved by less than factor
// s within the last n evaluations.
func SpeedupEvaluations(s float64, n uint64) AbortCondition {
	return core.SpeedupEvaluations(s, n)
}

// AbortAnd fires only when all conditions fire.
func AbortAnd(cs ...AbortCondition) AbortCondition { return core.AbortAnd(cs...) }

// AbortOr fires when any condition fires.
func AbortOr(cs ...AbortCondition) AbortCondition { return core.AbortOr(cs...) }

// LexOrder is the default lexicographic multi-objective comparison.
func LexOrder() CostOrder { return core.LexLess }

// WeightedSum compares multi-objective costs by their weighted sums.
func WeightedSum(weights ...float64) CostOrder { return core.WeightedSumOrder(weights...) }
