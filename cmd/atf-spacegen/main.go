// Command atf-spacegen measures search-space generation for the
// XgemmDirect tuning space: ATF's constrained nested generation (count and
// trie modes, sequential and parallel) versus CLTune's generate-then-filter
// enumeration — the paper's "<1 second vs aborted after 3 hours" result
// (§VI-A).
//
// Usage:
//
//	atf-spacegen -cap 32                # paper's 32x32 setting
//	atf-spacegen -cap 64 -budget 1e8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"atf/internal/clblast"
	"atf/internal/core"
	"atf/internal/harness"
)

func main() {
	cap := flag.Int64("cap", 32, "integer range cap ({1..cap} for the 6 tile parameters)")
	budget := flag.Float64("budget", 5e7, "CLTune raw-combination budget before aborting")
	trie := flag.Bool("trie", true, "also materialize ATF's trie (memory figures)")
	flag.Parse()

	params := clblast.XgemmDirectParams(clblast.SpaceOptions{RangeCap: *cap})

	// ATF, sequential count.
	start := time.Now()
	n1, checks, err := core.CountGroup(core.G(params...), core.GenOptions{Workers: 1})
	if err != nil {
		fail(err)
	}
	seq := time.Since(start)
	fmt.Printf("ATF generation (sequential): %10d valid, %12d checks, %v\n", n1, checks, seq)

	// ATF, parallel count.
	start = time.Now()
	n2, _, err := core.CountGroup(core.G(params...), core.GenOptions{})
	if err != nil {
		fail(err)
	}
	par := time.Since(start)
	fmt.Printf("ATF generation (%2d workers): %10d valid, %25s %v  (%.2fx)\n",
		runtime.NumCPU(), n2, "", par, float64(seq)/float64(par))
	if n1 != n2 {
		fail(fmt.Errorf("parallel/sequential mismatch: %d vs %d", n1, n2))
	}

	if *trie {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start = time.Now()
		sp, err := core.GenerateFlat(params, core.GenOptions{})
		if err != nil {
			fail(err)
		}
		el := time.Since(start)
		runtime.GC()
		runtime.ReadMemStats(&m1)
		logical, unique := sp.NodeCounts()
		hits, _ := sp.MemoStats()
		fmt.Printf("ATF trie: %d configs in %d logical nodes (%d unique after memoization, %d memo hits),\n"+
			"  %v, %d KiB arena, ~%d MiB heap\n",
			sp.Size(), logical, unique, hits, el, sp.ArenaBytes()>>10, (m1.HeapAlloc-m0.HeapAlloc)>>20)
	}

	// CLTune, generate-then-filter with budget.
	r, err := harness.SpaceGen(*cap, uint64(*budget), 0)
	if err != nil {
		fail(err)
	}
	if r.CLTuneAborted {
		fmt.Printf("CLTune generate-then-filter: ABORTED after %d of %s raw combinations (%v);\n",
			r.CLTuneVisited, r.RawCombinations, r.CLTuneTime)
		fmt.Printf("  projected full enumeration: ~%v\n", r.CLTuneProjected.Round(time.Second))
	} else {
		fmt.Printf("CLTune generate-then-filter: completed %d raw combinations in %v\n",
			r.CLTuneVisited, r.CLTuneTime)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "atf-spacegen:", err)
	os.Exit(1)
}
