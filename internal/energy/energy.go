// Package energy models device power draw so that ATF's multi-objective
// tuning — "minimizing first runtime and then energy consumption" (paper,
// Section II Step 2) — has a second objective to measure. The paper reads
// energy from hardware counters; this model derives it from the simulated
// execution's utilization, which preserves the property that matters for
// tuning: runtime and energy do not rank configurations identically (a
// slightly slower configuration that keeps fewer compute units busy can
// cost less energy).
package energy

import (
	"atf/internal/perfmodel"
)

// Model estimates energy for kernel launches on one device.
type Model struct {
	Dev *perfmodel.Device
	// IdleWatts is the baseline board/package power.
	IdleWatts float64
	// ActiveWattsPerCU is the additional draw of one busy compute unit.
	ActiveWattsPerCU float64
	// MemoryWatts is the additional draw at full memory-bandwidth use.
	MemoryWatts float64
}

// NewModel returns a power model with parameters in the right regime for
// the device class (Xeon TDP 2×95 W; K20m board power 225 W).
func NewModel(dev *perfmodel.Device) *Model {
	m := &Model{Dev: dev}
	if dev.Type == perfmodel.CPU {
		m.IdleWatts = 60
		m.ActiveWattsPerCU = 4 // ~190 W all-core
		m.MemoryWatts = 20
	} else {
		m.IdleWatts = 45
		m.ActiveWattsPerCU = 11 // ~190 W all-SMX
		m.MemoryWatts = 35
	}
	return m
}

// EstimateMicrojoules converts a timing estimate into energy. Busy compute
// units follow the launch's concurrency; memory power follows the
// memory-vs-compute balance of the kernel.
func (m *Model) EstimateMicrojoules(est *perfmodel.Estimate) float64 {
	busyCUs := float64(est.ConcurrentWGs)
	maxWGsPerCU := float64(m.Dev.MaxWGsPerCU)
	if maxWGsPerCU > 0 {
		busyCUs /= maxWGsPerCU
	}
	if busyCUs > float64(m.Dev.ComputeUnits) {
		busyCUs = float64(m.Dev.ComputeUnits)
	}
	if busyCUs < 1 {
		busyCUs = 1
	}

	memFrac := 0.0
	if est.ComputeNsPerWG+est.MemoryNsPerWG > 0 {
		memFrac = est.MemoryNsPerWG / (est.ComputeNsPerWG + est.MemoryNsPerWG)
	}

	watts := m.IdleWatts + m.ActiveWattsPerCU*busyCUs + m.MemoryWatts*memFrac
	seconds := est.TimeNs * 1e-9
	joules := watts * seconds
	return joules * 1e6
}
