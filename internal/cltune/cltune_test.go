package cltune

import (
	"errors"
	"math"
	"testing"

	"atf/internal/core"
)

// saxpyTuner builds the Listing 3 CLTune program: full ranges [0,n) for
// both parameters, constraints as vector-based boolean functions.
func saxpyTuner(n uint64) *Tuner {
	t := NewTuner()
	rangeN := make([]uint64, n)
	for i := range rangeN {
		rangeN[i] = uint64(i) + 1
	}
	t.AddParameter("WPT", rangeN)
	t.AddParameter("LS", rangeN)
	t.AddConstraint(func(v []uint64) bool { return n%v[0] == 0 }, []string{"WPT"})
	t.AddConstraint(func(v []uint64) bool { return (n/v[0])%v[1] == 0 }, []string{"WPT", "LS"})
	return t
}

func TestGenerateThenFilterMatchesATF(t *testing.T) {
	// The CLTune baseline must find exactly the same valid set as ATF's
	// constrained generation — only far more expensively.
	const n = 24
	ct := saxpyTuner(n)
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	params := []*core.Param{
		core.NewParam("WPT", core.NewInterval(1, n), core.Divides(n)),
		core.NewParam("LS", core.NewInterval(1, n),
			core.Divides(func(c *core.Config) int64 { return n / c.Int("WPT") })),
	}
	sp, err := core.GenerateFlat(params, core.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(ct.SpaceSize()) != sp.Size() {
		t.Fatalf("CLTune found %d configs, ATF %d", ct.SpaceSize(), sp.Size())
	}
	// CLTune enumerated the entire raw product.
	if ct.RawVisited() != n*n {
		t.Fatalf("raw visited = %d, want %d", ct.RawVisited(), n*n)
	}
	// ATF's generation visited far fewer candidates.
	if sp.Checks() >= ct.RawVisited() {
		t.Fatalf("ATF checks (%d) should be below CLTune's product size (%d)",
			sp.Checks(), ct.RawVisited())
	}
}

func TestGenerationBudgetExhaustion(t *testing.T) {
	// The programmatic "aborted after 3 hours": a budget smaller than the
	// raw product makes generation fail — CLTune cannot deliver a space.
	ct := saxpyTuner(1000) // raw product 10^6
	ct.GenerationBudget = 10000
	err := ct.GenerateSpace()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestTuneFindsGoodConfig(t *testing.T) {
	const n = 64
	ct := saxpyTuner(n)
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	cost := func(c Config) float64 {
		// Prefer WPT=8, LS=4.
		return math.Abs(float64(c["WPT"])-8)*10 + math.Abs(float64(c["LS"])-4)
	}
	res, err := ct.Tune(cost, 1.0, 4.0, 1) // full fraction: sees everything
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["WPT"] != 8 {
		t.Fatalf("best = %v", res.Best)
	}
	if res.Evaluations != ct.SpaceSize() {
		t.Fatalf("fraction 1.0 must evaluate the whole space: %d of %d",
			res.Evaluations, ct.SpaceSize())
	}
}

func TestTuneAnnealingFraction(t *testing.T) {
	const n = 256
	ct := saxpyTuner(n)
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	cost := func(c Config) float64 { return float64(c["WPT"]) + float64(c["LS"]) }
	res, err := ct.Tune(cost, 0.25, 4.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > ct.SpaceSize()/2 {
		t.Fatalf("fraction 0.25 evaluated too much: %d of %d",
			res.Evaluations, ct.SpaceSize())
	}
	if res.BestCost > 64 {
		t.Fatalf("annealing result poor: %v", res.BestCost)
	}
}

func TestTuneOnEmptySpaceFails(t *testing.T) {
	// The deep-learning situation: constraints empty the space entirely.
	ct := NewTuner()
	ct.AddParameter("WGD", []uint64{8, 16, 32})
	ct.AddConstraint(func(v []uint64) bool { return 20%v[0] == 0 }, []string{"WGD"})
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	if ct.SpaceSize() != 0 {
		t.Fatalf("space should be empty, got %d", ct.SpaceSize())
	}
	if _, err := ct.Tune(func(Config) float64 { return 1 }, 1, 4, 1); err == nil {
		t.Fatal("tuning an empty space must fail")
	}
}

func TestTuneSkipsFailedConfigs(t *testing.T) {
	ct := saxpyTuner(16)
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	cost := func(c Config) float64 {
		if c["LS"] != 1 {
			return math.Inf(1)
		}
		return float64(c["WPT"])
	}
	res, err := ct.Tune(cost, 1.0, 4.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["LS"] != 1 {
		t.Fatalf("infinite-cost configs must not win: %v", res.Best)
	}
}

func TestGenerationTimeRecorded(t *testing.T) {
	ct := saxpyTuner(64)
	if err := ct.GenerateSpace(); err != nil {
		t.Fatal(err)
	}
	if ct.GenerationTime() <= 0 {
		t.Fatal("generation time not recorded")
	}
}
