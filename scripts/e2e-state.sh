#!/bin/sh
# e2e-state.sh — warm-restart smoke of the real atfd (`make e2e-state`).
# A daemon with -state-dir runs a lazy-space OpenCL session cold, is
# killed, and restarts on the same state directory; the restarted daemon
# must prove through /metrics that the warm session paid for nothing
# twice: zero census counting passes (the snapshot restores instead),
# zero kernel compiles after the startup prewarm, and state-store hits
# for the outcome cache and compile manifest at load.
set -eu

GO=${GO:-go}
workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

say() { echo "e2e-state: $*"; }
command -v jq >/dev/null || { say "jq is required"; exit 1; }

ADDR=127.0.0.1:7553
BASE="http://$ADDR"

say "building atfd into $workdir"
$GO build -o "$workdir/atfd" ./cmd/atfd

# A lazy-mode saxpy spec: forces the census counting pass (what the
# persisted snapshot must skip on restart) and compiles a kernel per
# distinct configuration (what the compile manifest must prewarm).
cat > "$workdir/spec.json" <<'EOF'
{
    "name": "warm e2e",
    "parameters": [
        {"name": "WPT", "range": {"interval": {"begin": 1, "end": 64}},
         "constraints": [{"op": "divides", "expr": "64"}]},
        {"name": "LS", "range": {"interval": {"begin": 1, "end": 64}},
         "constraints": [{"op": "divides", "expr": "64 / WPT"}]}
    ],
    "cost": {"kind": "saxpy", "n": 64},
    "space_mode": "lazy"
}
EOF

start_daemon() {
    "$workdir/atfd" -addr "$ADDR" -journal-dir "$workdir/journals" \
        -state-dir "$workdir/state" >>"$workdir/atfd.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    say "atfd never came up"; cat "$workdir/atfd.log"; exit 1
}

# metric NAME — read one counter off /metrics (0 when it never fired).
metric() {
    curl -fsS "$BASE/metrics" | awk -v m="$1" '$1 == m {print $2; f=1} END {if (!f) print 0}'
}

run_session() {
    id=$(curl -fsS -d @"$workdir/spec.json" "$BASE/v1/sessions" | jq -r .id)
    for _ in $(seq 1 600); do
        st=$(curl -fsS "$BASE/v1/sessions/$id")
        case $(echo "$st" | jq -r .state) in
            running) sleep 0.1 ;;
            done) echo "$st"; return 0 ;;
            *) say "session $id failed: $st"; exit 1 ;;
        esac
    done
    say "session $id never finished"; exit 1
}

say "cold daemon: census + compiles paid once, state saved at shutdown"
start_daemon
cold=$(run_session)
cold_census=$(metric atf_space_census_runs_total)
[ "$cold_census" -gt 0 ] || { say "cold run counted no census?"; exit 1; }
kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
pid=""
[ -n "$(ls "$workdir/state" 2>/dev/null)" ] || {
    say "FAIL: shutdown left no state blobs in $workdir/state"; exit 1
}

say "warm daemon: same state dir, restored caches"
start_daemon
hit_outcomes=$(metric atf_state_hit_outcomes_total)
hit_compile=$(metric atf_state_hit_compile_total)
[ "$hit_outcomes" -gt 0 ] || { say "FAIL: no outcomes restored from state"; exit 1; }
[ "$hit_compile" -gt 0 ] || { say "FAIL: no compiled kernels prewarmed from manifest"; exit 1; }

# Baselines AFTER startup: the manifest prewarm legitimately compiles (it
# is the point — once, off the session's critical path).
census0=$(metric atf_space_census_runs_total)
misses0=$(metric atf_oclc_compile_cache_misses_total)

warm=$(run_session)
for field in evaluations valid best best_cost; do
    c=$(echo "$cold" | jq -c ".$field")
    w=$(echo "$warm" | jq -c ".$field")
    [ "$c" = "$w" ] || { say "FAIL: warm $field $w differs from cold $c"; exit 1; }
done
sweep=$(echo "$warm" | jq -r '.sweep.percent')
[ "$sweep" = "100" ] || { say "FAIL: exhaustive sweep progress $sweep%, want 100"; exit 1; }

census1=$(metric atf_space_census_runs_total)
restored=$(metric atf_space_census_restored_total)
misses1=$(metric atf_oclc_compile_cache_misses_total)
[ "$census1" = "$census0" ] || {
    say "FAIL: warm session re-counted its space ($census0 -> $census1 census runs)"; exit 1
}
[ "$restored" -gt 0 ] || { say "FAIL: census snapshot was never restored"; exit 1; }
[ "$misses1" = "$misses0" ] || {
    say "FAIL: warm session recompiled kernels ($misses0 -> $misses1 compile misses)"; exit 1
}

say "PASS: warm restart — 0 census recounts, 0 recompiles, $hit_outcomes outcomes + $hit_compile kernels restored"
