package server

import (
	"strings"
	"testing"
	"time"

	"atf"
)

// resumeSpecJSON is a run slow enough to interrupt mid-flight: ~1ms per
// cost-cache miss, 300 evaluations, a stateful technique, and parallel
// evaluation — the hardest case for deterministic resume.
const resumeSpecJSON = `{
	"name": "resume test",
	"parameters": [
		{"name": "X", "range": {"interval": {"begin": 1, "end": 400}}},
		{"name": "Y", "range": {"interval": {"begin": 1, "end": 40}}}
	],
	"cost": {"kind": "expr", "expr": "(X - 312) * (X - 312) + (Y - 7) * (Y - 7)", "delay_ns": 1000000},
	"technique": {"kind": "annealing"},
	"abort": {"evaluations": 300},
	"seed": 11,
	"parallelism": 3
}`

func parseResumeSpec(t *testing.T) *atf.Spec {
	t.Helper()
	spec, err := atf.ParseSpec([]byte(resumeSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// runUninterrupted executes the spec start-to-finish under one manager and
// returns the finished session plus its journaled evaluation keys.
func runUninterrupted(t *testing.T, spec *atf.Spec) (Status, []string) {
	t.Helper()
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	s, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait()
	st := s.Status()
	if st.State != StateDone {
		t.Fatalf("uninterrupted run ended %s (%s)", st.State, st.Error)
	}
	return st, journalKeys(t, m, s.ID)
}

func journalKeys(t *testing.T, m *Manager, id string) []string {
	t.Helper()
	d, err := ReadJournalFile(m.journalPath(id))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(d.Evals))
	for i, ev := range d.Evals {
		keys[i] = ev.Key
	}
	return keys
}

// TestManagerResumeDeterminism is the checkpoint/resume contract: a run
// interrupted by daemon shutdown and resumed by a fresh manager on the
// same journal directory finishes with the same best configuration, best
// cost, and evaluation sequence as the same spec run uninterrupted.
func TestManagerResumeDeterminism(t *testing.T) {
	spec := parseResumeSpec(t)
	want, wantKeys := runUninterrupted(t, spec)

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the run commit a real prefix, then pull the plug. Shutdown is
	// the SIGKILL-equivalent for the journal: no done record is written.
	waitForEvals(t, s1, 40)
	m1.Shutdown()
	st1 := s1.Status()
	if st1.State != StateInterrupted {
		t.Fatalf("interrupted run ended %s", st1.State)
	}
	if st1.Evaluations == 0 || st1.Evaluations >= want.Evaluations {
		t.Fatalf("interrupted after %d evaluations (want mid-run of %d)",
			st1.Evaluations, want.Evaluations)
	}

	// A fresh manager on the same directory resumes the journal.
	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	s2 := resumed[0]
	if s2.ID != s1.ID {
		t.Errorf("resumed session id %q, want %q", s2.ID, s1.ID)
	}
	s2.Wait()
	st2 := s2.Status()
	if st2.State != StateDone {
		t.Fatalf("resumed run ended %s (%s)", st2.State, st2.Error)
	}
	if st2.Divergence != "" {
		t.Fatalf("resumed run diverged: %s", st2.Divergence)
	}
	if st2.ResumedEvaluations != int(st1.Evaluations) {
		t.Errorf("resumed %d evaluations, journal had %d",
			st2.ResumedEvaluations, st1.Evaluations)
	}

	if st2.Evaluations != want.Evaluations || st2.Valid != want.Valid {
		t.Errorf("resumed counters %d/%d, uninterrupted %d/%d",
			st2.Evaluations, st2.Valid, want.Evaluations, want.Valid)
	}
	if !st2.Best.Equal(want.Best) || st2.BestCost.String() != want.BestCost.String() {
		t.Errorf("resumed best %v/%v, uninterrupted %v/%v",
			st2.Best, st2.BestCost, want.Best, want.BestCost)
	}
	gotKeys := journalKeys(t, m2, s2.ID)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("journal has %d evaluations, uninterrupted %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("evaluation %d: resumed journal %q, uninterrupted %q",
				i, gotKeys[i], wantKeys[i])
		}
	}

	// The finished journal is terminal: a third manager resumes nothing.
	m3, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Shutdown()
	again, err := m3.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("finished session resumed again: %d", len(again))
	}
}

func TestManagerCancelIsTerminal(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	s, err := m.Create(parseResumeSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	waitForEvals(t, s, 5)
	if err := m.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.State != StateCanceled {
		t.Fatalf("canceled session is %s", st.State)
	}
	if err := m.Cancel(s.ID); err == nil {
		t.Error("second cancel succeeded")
	}

	// Unlike an interrupted session, a canceled one must not resume.
	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Errorf("canceled session resumed: %d", len(resumed))
	}
}

func TestManagerRejectsBadSpec(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	spec := parseResumeSpec(t)
	spec.Cost.Expr = "X + NOPE"
	if _, err := m.Create(spec); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("bad spec accepted: %v", err)
	}
	if len(m.List()) != 0 {
		t.Error("failed create left a session behind")
	}
}

// waitForEvals blocks until the session has committed at least n
// evaluations (or fails the test after a generous deadline).
func waitForEvals(t *testing.T, s *Session, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Status()
		if st.Evaluations >= n {
			return
		}
		if st.State != StateRunning {
			t.Fatalf("session ended %s after %d evaluations, waiting for %d",
				st.State, st.Evaluations, n)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("session never reached %d evaluations", n)
}

// TestManagerJournalsBatchMarks: a parallel session journals one batch
// mark per dispatched batch, and the marks survive interrupt/resume as a
// single deduplicated, contiguous sequence covering every evaluation.
func TestManagerJournalsBatchMarks(t *testing.T) {
	spec := parseResumeSpec(t)

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForEvals(t, s1, 40)
	m1.Shutdown()

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	resumed[0].Wait()
	st := resumed[0].Status()
	if st.State != StateDone {
		t.Fatalf("resumed run ended %s (%s)", st.State, st.Error)
	}

	d, err := ReadJournalFile(m2.journalPath(s1.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Batches) == 0 {
		t.Fatal("parallel session journaled no batch marks")
	}
	for i, b := range d.Batches {
		if b.Index != uint64(i) {
			t.Fatalf("batch mark %d has index %d (marks must dedup to a dense ascending sequence)", i, b.Index)
		}
		if b.Size <= 0 {
			t.Fatalf("batch mark %d has size %d", i, b.Size)
		}
		if i > 0 {
			prev := d.Batches[i-1]
			if b.StartEval != prev.StartEval+uint64(prev.Size) {
				t.Fatalf("batch mark %d starts at eval %d, previous covered [%d, %d)",
					i, b.StartEval, prev.StartEval, prev.StartEval+uint64(prev.Size))
			}
		}
	}
	// Marks are written before dispatch, so the final mark may cover the
	// batch the abort cut short: it starts at or before the last committed
	// evaluation count and its range reaches at least that far.
	last := d.Batches[len(d.Batches)-1]
	evals := uint64(len(d.Evals))
	if last.StartEval > evals || last.StartEval+uint64(last.Size) < evals {
		t.Fatalf("batch marks cover [0, %d..%d), journal has %d evaluations",
			last.StartEval, last.StartEval+uint64(last.Size), evals)
	}
}
