package core

import (
	"fmt"
	"strconv"
)

// Expr is an arithmetic expression over previously declared tuning
// parameters and constants, evaluated against a partial configuration.
// ATF constraint aliases such as atf::divides(N/WPT) take such expressions.
//
// Like Constraint, an Expr carries its read footprint — the parameter
// names it references — which the constraint aliases propagate into the
// constraints they build (a divides(WGD) constraint reports the single
// referenced name WGD). Exprs built from Lit, Ref, ExprReads, or ParseExpr
// have exact footprints; raw func(*Config) int64 closures wrapped by
// ExprOf/ExprFn have unknown footprints.
//
// The zero Expr has no evaluator; test with IsZero before Eval.
type Expr struct {
	fn    func(c *Config) int64
	reads []string
	exact bool
}

// Eval evaluates the expression against the partial configuration.
func (e Expr) Eval(c *Config) int64 { return e.fn(c) }

// IsZero reports whether the expression is the zero value (no evaluator).
func (e Expr) IsZero() bool { return e.fn == nil }

// Deps returns the parameter names the expression may read; exact is true
// when the list is complete (see Constraint.Deps for the contract).
func (e Expr) Deps() (reads []string, exact bool) {
	if e.fn == nil {
		return nil, true
	}
	return e.reads, e.exact
}

// ExprOf converts a constant or expression-like Go value into an Expr.
// Accepted: Expr, func(*Config) int64 (unknown footprint — prefer
// ExprReads), and any integer type.
func ExprOf(x any) Expr {
	switch e := x.(type) {
	case Expr:
		return e
	case func(c *Config) int64:
		return ExprFn(e)
	case int:
		return Lit(int64(e))
	case int32:
		return Lit(int64(e))
	case int64:
		return Lit(e)
	case uint:
		return Lit(int64(e))
	case uint64:
		return Lit(int64(e))
	default:
		panic(fmt.Sprintf("core: cannot use %T as constraint expression", x))
	}
}

// ExprFn wraps a raw evaluator whose read footprint is unknown.
func ExprFn(fn func(c *Config) int64) Expr { return Expr{fn: fn} }

// ExprReads wraps a raw evaluator declaring the complete set of parameter
// names it reads (the same promise as FnReads: reading outside the
// declared set breaks memoized generation; a superset is safe).
func ExprReads(fn func(c *Config) int64, reads ...string) Expr {
	return Expr{fn: fn, reads: dedupNames(reads), exact: true}
}

// Lit returns an Expr producing the constant v (empty footprint).
func Lit(v int64) Expr {
	return Expr{fn: func(*Config) int64 { return v }, exact: true}
}

// Ref returns an Expr producing the current value of the named (previously
// declared) integer parameter; its footprint is exactly {name}.
func Ref(name string) Expr {
	return Expr{fn: func(c *Config) int64 { return c.Int(name) }, reads: []string{name}, exact: true}
}

// ParseExpr parses an integer arithmetic expression over previously
// declared tuning parameters into an Expr. It is the textual counterpart
// of the func(*Config) int64 expressions the constraint aliases accept,
// used by declarative frontends (the atfd JSON API, spec files) where
// constraints arrive as strings rather than Go closures.
//
// Grammar: integer literals, parameter names ([A-Za-z_][A-Za-z0-9_]*),
// the binary operators + - * / %, unary minus, and parentheses, with the
// usual precedence. Division and modulus by zero evaluate to 0 — the
// surrounding constraint then rejects or accepts a degenerate candidate
// instead of crashing space generation.
//
// The second return value lists the parameter names the expression
// references, in first-appearance order, so callers can validate them
// against the declaration order before generation starts. The same list
// becomes the Expr's exact read footprint.
func ParseExpr(src string) (Expr, []string, error) {
	p := &exprParser{src: src}
	fn, err := p.parseSum()
	if err != nil {
		return Expr{}, nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Expr{}, nil, fmt.Errorf("core: unexpected %q at offset %d in expression %q",
			p.src[p.pos:], p.pos, src)
	}
	return Expr{fn: fn, reads: p.refs, exact: true}, p.refs, nil
}

// evalFn is the raw evaluator type the parser composes internally.
type evalFn func(c *Config) int64

// exprParser is a small recursive-descent parser over the expression
// source; it records referenced parameter names as it goes.
type exprParser struct {
	src  string
	pos  int
	refs []string
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at end).
func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseSum handles + and - (lowest precedence).
func (p *exprParser) parseSum() (evalFn, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) + r(c) }
		case '-':
			p.pos++
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) - r(c) }
		default:
			return left, nil
		}
	}
}

// parseProduct handles * / and %.
func (p *exprParser) parseProduct() (evalFn, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 { return l(c) * r(c) }
		case '/':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 {
				d := r(c)
				if d == 0 {
					return 0
				}
				return l(c) / d
			}
		case '%':
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l, r := left, right
			left = func(c *Config) int64 {
				d := r(c)
				if d == 0 {
					return 0
				}
				return l(c) % d
			}
		default:
			return left, nil
		}
	}
}

// parseUnary handles unary minus.
func (p *exprParser) parseUnary() (evalFn, error) {
	if p.peek() == '-' {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(c *Config) int64 { return -e(c) }, nil
	}
	return p.parseAtom()
}

// parseAtom handles literals, parameter references and parentheses.
func (p *exprParser) parseAtom() (evalFn, error) {
	switch ch := p.peek(); {
	case ch == '(':
		p.pos++
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("core: missing ')' at offset %d in expression %q", p.pos, p.src)
		}
		p.pos++
		return e, nil
	case ch >= '0' && ch <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad integer literal %q in expression %q", p.src[start:p.pos], p.src)
		}
		return func(*Config) int64 { return v }, nil
	case isIdentStart(ch):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if !contains(p.refs, name) {
			p.refs = append(p.refs, name)
		}
		return func(c *Config) int64 { return c.Int(name) }, nil
	case ch == 0:
		return nil, fmt.Errorf("core: unexpected end of expression %q", p.src)
	default:
		return nil, fmt.Errorf("core: unexpected %q at offset %d in expression %q",
			string(ch), p.pos, p.src)
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool { return isIdentStart(b) || (b >= '0' && b <= '9') }

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// MustParseExpr is ParseExpr for expressions known valid at compile time;
// it panics on error (tests and examples).
func MustParseExpr(src string) Expr {
	e, _, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}
