package atf_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"atf"
	"atf/internal/clblast"
)

// saxpyCost builds the Listing 2 cost function for input size n.
func saxpyCost(t testing.TB, n int64) atf.CostFunction {
	t.Helper()
	cf, err := (&atf.OpenCL{
		Platform: "NVIDIA", Device: "K20c",
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), atf.RandomScalar(),
			atf.RandomBuffer(int(n)), atf.RandomBuffer(int(n)),
		},
		GlobalSize: func(c *atf.Config) []int64 { return []int64{n / c.Int("WPT")} },
		LocalSize:  func(c *atf.Config) []int64 { return []int64{c.Int("LS")} },
	}).CostFunction()
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func saxpyParams(n int64) []*atf.Param {
	wpt := atf.TP("WPT", atf.Interval(1, n), atf.Divides(n))
	ls := atf.TP("LS", atf.Interval(1, n),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
	return []*atf.Param{wpt, ls}
}

func TestListing2EndToEndExhaustive(t *testing.T) {
	const n = 1 << 12
	params := saxpyParams(n)
	res, err := atf.Tuner{CacheCosts: true}.Tune(saxpyCost(t, n), params...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best configuration")
	}
	if res.Evaluations != res.SpaceSize {
		t.Fatalf("exhaustive default abort should test the whole space: %d of %d",
			res.Evaluations, res.SpaceSize)
	}
	// The winning configuration must satisfy the constraints.
	wpt, ls := res.Best.Int("WPT"), res.Best.Int("LS")
	if n%wpt != 0 || (n/wpt)%ls != 0 {
		t.Fatalf("invalid best config: WPT=%d LS=%d", wpt, ls)
	}
	if res.BestCost.Primary() <= 0 {
		t.Fatal("non-positive best cost")
	}
}

func TestAnnealingMatchesExhaustiveOnSaxpy(t *testing.T) {
	const n = 1 << 12
	cf := saxpyCost(t, n)
	exh, err := atf.Tuner{CacheCosts: true}.Tune(cf, saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := atf.Tuner{
		Technique:  atf.SimulatedAnnealing(),
		Abort:      atf.Evaluations(200),
		CacheCosts: true,
		Seed:       3,
	}.Tune(cf, saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	// Annealing with a fraction of the evaluations must land within 2x of
	// the provable optimum on this small space.
	if ann.BestCost.Primary() > 2*exh.BestCost.Primary() {
		t.Fatalf("annealing best %v too far from optimum %v",
			ann.BestCost, exh.BestCost)
	}
}

func TestOpenTunerSearchOnSaxpy(t *testing.T) {
	const n = 1 << 12
	res, err := atf.Tuner{
		Technique:  atf.OpenTunerSearch(),
		Abort:      atf.Evaluations(150),
		CacheCosts: true,
		Record:     true,
	}.Tune(saxpyCost(t, n), saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no result")
	}
	// Every proposal must satisfy the constraints (it may still be
	// launch-infeasible on the device, e.g. LS beyond the work-group
	// limit — that shows up as infinite cost, not as a constraint
	// violation).
	for _, ev := range res.History {
		wpt, ls := ev.Config.Int("WPT"), ev.Config.Int("LS")
		if n%wpt != 0 || (n/wpt)%ls != 0 {
			t.Fatalf("constraint-invalid config proposed: %v", ev.Config)
		}
	}
}

func TestRandomAndLocalSearchRun(t *testing.T) {
	const n = 1 << 10
	for _, tech := range []atf.Technique{atf.RandomSearch(), atf.LocalSearch(8)} {
		res, err := atf.Tuner{
			Technique:  tech,
			Abort:      atf.Evaluations(50),
			CacheCosts: true,
		}.Tune(saxpyCost(t, n), saxpyParams(n)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatal("no result")
		}
	}
}

func TestTuneWithDurationAbort(t *testing.T) {
	const n = 1 << 12
	res, err := atf.Tuner{
		Technique: atf.SimulatedAnnealing(),
		Abort:     atf.AbortOr(atf.Duration(300*time.Millisecond), atf.Evaluations(1000)),
	}.Tune(saxpyCost(t, n), saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no result within the time budget")
	}
}

func TestGeneratedIntervalPowersOfTwo(t *testing.T) {
	// The paper's generator example drives a real tuning run: WPT over
	// powers of two only.
	const n = 1 << 10
	wpt := atf.TP("WPT", atf.GeneratedInterval(0, 10, 1, func(i int64) atf.Value {
		return atf.Int(1 << uint(i))
	}), atf.Divides(n))
	ls := atf.TP("LS", atf.GeneratedInterval(0, 6, 1, func(i int64) atf.Value {
		return atf.Int(1 << uint(i))
	}), atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
	res, err := atf.Tuner{CacheCosts: true}.Tune(saxpyCost(t, n), wpt, ls)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Best.Int("WPT")
	if w&(w-1) != 0 {
		t.Fatalf("WPT=%d is not a power of two", w)
	}
}

func TestMultiObjectiveRuntimeEnergy(t *testing.T) {
	// Two objectives, lexicographic: a synthetic cost where several
	// configurations tie on runtime and energy must break the tie.
	x := atf.TP("X", atf.Interval(1, 10))
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		v := c.Int("X")
		runtime := float64(10 - v%3) // ties
		energy := float64(v)
		return atf.Cost{runtime, energy}, nil
	})
	res, err := atf.Tuner{}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	// Runtime minimal at v%3==2 (runtime 8): v ∈ {2,5,8}; lowest energy 2.
	if res.Best.Int("X") != 2 {
		t.Fatalf("lexicographic best = %v, want X=2", res.Best)
	}
	// Weighted-sum order picks differently when weights invert priorities.
	res2, err := atf.Tuner{Order: atf.WeightedSum(0, 1)}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best.Int("X") != 1 {
		t.Fatalf("energy-only best = %v, want X=1", res2.Best)
	}
}

func TestGroupedTuning(t *testing.T) {
	// Figure 1's two independent groups, tuned end-to-end.
	tp1 := atf.TP("tp1", atf.Set(1, 2))
	tp2 := atf.TP("tp2", atf.Set(1, 2), atf.Divides(atf.Ref("tp1")))
	tp3 := atf.TP("tp3", atf.Set(1, 2))
	tp4 := atf.TP("tp4", atf.Set(1, 2), atf.Divides(atf.Ref("tp3")))
	cf := atf.CostFunc(func(c *atf.Config) (atf.Cost, error) {
		return atf.Cost{float64(c.Int("tp1") + c.Int("tp2") + c.Int("tp3") + c.Int("tp4"))}, nil
	})
	res, err := atf.Tuner{}.TuneGroups(cf, atf.G(tp1, tp2), atf.G(tp3, tp4))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 9 {
		t.Fatalf("space size = %d, want 9", res.SpaceSize)
	}
	if res.BestCost.Primary() != 4 {
		t.Fatalf("best = %v, want all-ones (cost 4)", res.Best)
	}
}

func TestCUDACostFunction(t *testing.T) {
	const n = 1 << 12
	cf, err := (&atf.CUDA{
		Device: "K20m",
		Source: clblast.SaxpySource, Kernel: "saxpy",
		Args: []atf.KernelArg{
			atf.Scalar(int32(n)), atf.RandomScalar(),
			atf.RandomBuffer(n), atf.RandomBuffer(n),
		},
		GridDim:  func(c *atf.Config) int64 { return n / c.Int("WPT") / c.Int("LS") },
		BlockDim: func(c *atf.Config) int64 { return c.Int("LS") },
	}).CostFunction()
	if err != nil {
		t.Fatal(err)
	}
	// Restrict LS so grid*block always covers n/WPT exactly.
	wpt := atf.TP("WPT", atf.Set(1, 2, 4, 8), atf.Divides(n))
	ls := atf.TP("LS", atf.Set(32, 64, 128),
		atf.Divides(func(c *atf.Config) int64 { return n / c.Int("WPT") }))
	res, err := atf.Tuner{CacheCosts: true}.Tune(cf, wpt, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.BestCost.Primary() <= 0 {
		t.Fatal("CUDA tuning failed")
	}
}

func TestGenericCostFunctionWithLogFile(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "cost.log")
	run := filepath.Join(dir, "run.sh")
	// The "program" reports cost = |X-6|+1 plus a second objective, via
	// the log file — multi-objective, comma-separated.
	script := `#!/bin/sh
x=$ATF_TP_X
d=$((x - 6)); [ $d -lt 0 ] && d=$((-d))
echo "$((d + 1)),$x" > "$ATF_LOG"
`
	if err := os.WriteFile(run, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	cf := (&atf.Generic{RunScript: run, LogFile: log}).CostFunction()
	x := atf.TP("X", atf.Interval(1, 12))
	res, err := atf.Tuner{}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("X") != 6 {
		t.Fatalf("best = %v, want X=6", res.Best)
	}
	if len(res.BestCost) != 2 {
		t.Fatalf("expected 2 objectives, got %v", res.BestCost)
	}
}

func TestGenericCostFunctionWallClock(t *testing.T) {
	dir := t.TempDir()
	run := filepath.Join(dir, "run.sh")
	script := "#!/bin/sh\nexit 0\n"
	if err := os.WriteFile(run, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	cf := (&atf.Generic{RunScript: run}).CostFunction()
	x := atf.TP("X", atf.Interval(1, 2))
	res, err := atf.Tuner{}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost.Primary() <= 0 {
		t.Fatal("wall-clock cost should be positive")
	}
}

func TestGenericCompileScriptFailurePenalized(t *testing.T) {
	dir := t.TempDir()
	compile := filepath.Join(dir, "compile.sh")
	run := filepath.Join(dir, "run.sh")
	// Compilation fails for odd X — those configs must lose, not crash.
	if err := os.WriteFile(compile, []byte(
		"#!/bin/sh\n[ $((ATF_TP_X % 2)) -eq 0 ] || exit 1\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(run, []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	cf := (&atf.Generic{CompileScript: compile, RunScript: run}).CostFunction()
	x := atf.TP("X", atf.Interval(1, 6))
	res, err := atf.Tuner{}.Tune(cf, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("X")%2 != 0 {
		t.Fatalf("failing configs must not win: %v", res.Best)
	}
	if res.Valid != 3 {
		t.Fatalf("valid = %d, want 3", res.Valid)
	}
}

func TestResultSpaceMetadata(t *testing.T) {
	const n = 64
	res, err := atf.Tuner{CacheCosts: true}.Tune(saxpyCost(t, n), saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawSpaceSize != "4096" { // 64 × 64 raw combinations
		t.Fatalf("raw size = %s", res.RawSpaceSize)
	}
	if res.SpaceSize == 0 || res.SpaceSize >= 4096 {
		t.Fatalf("constrained size = %d", res.SpaceSize)
	}
}

func TestInfeasibleLocalSizeGetsInfiniteCost(t *testing.T) {
	// LS beyond the device maximum (1024 for the K20c) must be handled as
	// infinite cost, not abort the run: the space contains LS up to 2048.
	const n = 1 << 12
	wpt := atf.TP("WPT", atf.Set(1))
	ls := atf.TP("LS", atf.Set(512, 2048))
	res, err := atf.Tuner{Record: true}.Tune(saxpyCost(t, n), wpt, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Int("LS") != 512 {
		t.Fatalf("best = %v, want LS=512", res.Best)
	}
	if res.Valid != 1 || res.Evaluations != 2 {
		t.Fatalf("valid/evals = %d/%d, want 1/2", res.Valid, res.Evaluations)
	}
}

func TestCustomTechniqueViaInterface(t *testing.T) {
	// A user-defined technique (Section IV extensibility): pure index
	// bisection, implemented outside the framework packages.
	const n = 256
	res, err := atf.Tuner{
		Technique: &bisector{},
		Abort:     atf.Evaluations(20),
	}.Tune(saxpyCost(t, n), saxpyParams(n)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("custom technique found nothing")
	}
}

// bisector is a deliberately simple custom search technique.
type bisector struct {
	sp   *atf.Space
	lo   uint64
	hi   uint64
	last uint64
	best atf.Cost
}

func (b *bisector) Initialize(sp *atf.Space, seed int64) {
	b.sp, b.lo, b.hi = sp, 0, sp.Size()-1
	b.best = nil
}
func (b *bisector) Finalize() {}
func (b *bisector) GetNextConfig() *atf.Config {
	b.last = (b.lo + b.hi) / 2
	return b.sp.At(b.last)
}
func (b *bisector) ReportCost(c atf.Cost) {
	if b.best == nil || c.Less(b.best) {
		b.best = c.Clone()
		b.lo = b.last / 2
		b.hi = (b.last + b.sp.Size() - 1) / 2
	} else {
		b.lo, b.hi = b.last/3, b.last
	}
	if b.lo >= b.hi {
		b.lo, b.hi = 0, b.sp.Size()-1
	}
}
