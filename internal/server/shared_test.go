package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"atf"
	"atf/internal/core"
)

// TestOutcomeCacheDedup: concurrent lookups of one key run the compute
// function exactly once; everyone else waits on the in-flight entry.
func TestOutcomeCacheDedup(t *testing.T) {
	c := newOutcomeCache(-1)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cost, err := c.getOrCompute("k", func() (core.Cost, error) {
				computes.Add(1)
				return core.Cost{42}, nil
			})
			if err != nil || cost[0] != 42 {
				t.Errorf("getOrCompute = %v, %v", cost, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	hits, misses, _, _, entries := c.stats()
	if misses != 1 || hits != 15 || entries != 1 {
		t.Fatalf("stats = %d hits / %d misses / %d entries, want 15/1/1", hits, misses, entries)
	}
}

// TestOutcomeCacheEvictionBounded: the cache never holds more bytes than
// its budget once computations settle, and eviction is LRU.
func TestOutcomeCacheEvictionBounded(t *testing.T) {
	const budget = 2048
	c := newOutcomeCache(budget)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%02d", i)
		if _, err := c.getOrCompute(key, func() (core.Cost, error) {
			return core.Cost{float64(i)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, evictions, bytes, entries := c.stats()
	if bytes > budget {
		t.Fatalf("cache holds %d bytes over budget %d", bytes, budget)
	}
	if evictions == 0 {
		t.Fatal("64 inserts into a tiny budget evicted nothing")
	}
	// The newest key must have survived; the oldest must not have.
	if _, ok := c.entries["key-63"]; !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := c.entries["key-00"]; ok && entries < 64 {
		t.Fatal("oldest entry survived while others were evicted")
	}
}

// TestSpaceCacheDedupAndEviction: concurrent generations of one key run
// once; the entry bound evicts least-recently-used spaces.
func TestSpaceCacheDedupAndEviction(t *testing.T) {
	c := newSpaceCache(2)
	var gens atomic.Int64
	gen := func() (*atf.Space, error) {
		gens.Add(1)
		return atf.GenerateSpace(0, atf.TP("X", atf.Interval(1, 4)))
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.getOrGenerate("a", gen); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("space generated %d times, want 1", n)
	}
	for _, key := range []string{"b", "c", "d"} {
		if _, err := c.getOrGenerate(key, gen); err != nil {
			t.Fatal(err)
		}
	}
	hits, _, evictions, entries := c.stats()
	if entries > 2 {
		t.Fatalf("cache holds %d spaces, bound is 2", entries)
	}
	if evictions < 2 {
		t.Fatalf("evictions = %d, want >= 2", evictions)
	}
	if hits != 7 {
		t.Fatalf("hits = %d, want 7", hits)
	}
}

// TestSlotCostFunctionBoundsConcurrency: the eval-slot semaphore caps
// concurrent inner Cost calls at its capacity.
func TestSlotCostFunctionBoundsConcurrency(t *testing.T) {
	const cap = 2
	var inflight, peak atomic.Int64
	inner := costFuncFunc(func(cfg *core.Config) (core.Cost, error) {
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inflight.Add(-1)
		return core.Cost{1}, nil
	})
	f := &slotCostFunction{inner: inner, slots: make(chan struct{}, cap)}
	cfg := configOf(t, testSpec(t), 3)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Cost(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("%d evaluations in flight, slot cap is %d", p, cap)
	}
}

// costFuncFunc adapts a function to core.CostFunction.
type costFuncFunc func(cfg *core.Config) (core.Cost, error)

func (f costFuncFunc) Cost(cfg *core.Config) (core.Cost, error) { return f(cfg) }

// TestManagerAdmissionControl: past MaxSessions running sessions, Create
// answers *OverloadedError without leaving a journal behind; a freed slot
// admits again. Resume is exempt.
func TestManagerAdmissionControl(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	m.MaxSessions = 1

	s1, err := m.Create(parseResumeSpec(t)) // ~1ms per eval: runs long enough
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Create(parseResumeSpec(t))
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("second create = %v, want OverloadedError", err)
	}
	if overloaded.Limit != 1 || overloaded.RetryAfter <= 0 {
		t.Fatalf("OverloadedError = %+v", overloaded)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("rejected create left journals behind: %d files", len(files))
	}

	if err := m.Cancel(s1.ID); err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create(parseResumeSpec(t))
	if err != nil {
		t.Fatalf("create after a freed slot: %v", err)
	}
	m.Cancel(s2.ID)
}

// TestCreateSessionReturns429: the HTTP layer maps admission rejection to
// 429 Too Many Requests with a Retry-After hint.
func TestCreateSessionReturns429(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	m.MaxSessions = 1
	srv := httptest.NewServer((&API{Manager: m}).Handler())
	defer srv.Close()

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
			bytes.NewReader([]byte(resumeSpecJSON)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := post()
	r1.Body.Close()
	if r1.StatusCode != http.StatusCreated {
		t.Fatalf("first create = %d", r1.StatusCode)
	}
	r2 := post()
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded create = %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// TestManagerSharedCachesAcrossSessions: a second identical-spec session
// draws its space from the space cache and its outcomes from the shared
// cost cache, and still produces a bit-identical run.
func TestManagerSharedCachesAcrossSessions(t *testing.T) {
	spec, err := atf.ParseSpec([]byte(`{
		"name": "warm",
		"parameters": [
			{"name": "X", "range": {"interval": {"begin": 1, "end": 48}}},
			{"name": "Y", "range": {"interval": {"begin": 1, "end": 8}}}
		],
		"cost": {"kind": "expr", "expr": "(X - 31) * (X - 31) + Y"},
		"technique": {"kind": "exhaustive"},
		"abort": {"evaluations": 120},
		"parallelism": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	m.SharedCostCacheBytes = 1 << 20
	m.SpaceCacheEntries = 8
	m.Pipeline = true

	run := func() Status {
		t.Helper()
		s, err := m.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		s.Wait()
		st := s.Status()
		if st.State != StateDone {
			t.Fatalf("session ended %s (%s)", st.State, st.Error)
		}
		return st
	}
	st1 := run()
	costHits0, _, _, _, _ := m.sharedCosts.stats()
	spaceHits0, _, _, _ := m.spaces.stats()
	st2 := run()
	costHits1, _, _, _, _ := m.sharedCosts.stats()
	spaceHits1, _, _, _ := m.spaces.stats()

	if costHits1 <= costHits0 {
		t.Error("second identical-spec session hit the shared cost cache zero times")
	}
	if spaceHits1 != spaceHits0+1 {
		t.Errorf("space cache hits went %d -> %d, want +1", spaceHits0, spaceHits1)
	}
	if st1.Evaluations != st2.Evaluations || !st1.Best.Equal(st2.Best) ||
		st1.BestCost.String() != st2.BestCost.String() {
		t.Errorf("warm session differs: %v/%v vs %v/%v",
			st1.Best, st1.BestCost, st2.Best, st2.BestCost)
	}
}
