// Package server is the tuning-as-a-service subsystem behind the atfd
// daemon: a session manager running concurrent tuning jobs on the parallel
// exploration engine, an HTTP/JSON API over declarative specs, and a
// durable append-only tuning journal that lets a killed daemon restart,
// replay every already-paid cost evaluation, and resume the search
// deterministically mid-run.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"atf"
	"atf/internal/obs"
)

// The journal is one JSONL file per session under the manager's journal
// directory: a spec header line, one line per committed evaluation, and a
// done line once the session reaches a terminal state. A journal without a
// done line is an interrupted run; on daemon restart its evaluations are
// replayed into the cost cache and the search resumes where it stopped. A
// torn final line (the write a crash cut short) is detected and dropped —
// everything before it is intact by construction of append-only writes.
//
// Long sessions rotate: once the active file exceeds Journal.RotateBytes
// it is renamed to <id>.seg<N>.jsonl (N counting up from 1) and a fresh
// active file is started with the same spec header, so every file parses
// standalone and the active file stays small for tail-follow tooling.
// ReadSessionJournal stitches the segments back together in order;
// ListJournals lists only active files, never segments.

// Record is one journal line; Type selects which payload is set.
type Record struct {
	Type string `json:"type"` // "spec" | "eval" | "batch" | "done" | "compact"

	// spec header fields.
	Session       string    `json:"session,omitempty"`
	Name          string    `json:"name,omitempty"`
	CreatedUnixNs int64     `json:"created_unix_ns,omitempty"`
	Spec          *atf.Spec `json:"spec,omitempty"`

	Eval    *EvalRecord    `json:"eval,omitempty"`
	Batch   *BatchRecord   `json:"batch,omitempty"`
	Done    *DoneRecord    `json:"done,omitempty"`
	Compact *CompactRecord `json:"compact,omitempty"`
}

// CompactRecord summarizes a rotated segment's evaluations after
// compaction: the folded index range, the running valid/best counters over
// it, and the deduplicated outcome map — everything resume needs (replay
// serves outcomes by configuration key, and the technique's deterministic
// walk regenerates the order), at a fraction of the eval lines' size.
// Compact records are only valid before the first eval record of a
// stitched journal; Start pins the folded range so reordered or missing
// segments read as damage, not silent data loss.
type CompactRecord struct {
	Start    uint64           `json:"start"` // index of the first folded evaluation
	Evals    uint64           `json:"evals"` // evaluations folded by this record
	Valid    uint64           `json:"valid"`
	Best     *atf.Config      `json:"best,omitempty"`
	BestCost atf.Cost         `json:"best_cost,omitempty"`
	Outcomes []CompactOutcome `json:"outcomes"`
}

// CompactOutcome is one deduplicated (first-wins, in first-seen order)
// evaluation outcome of a compacted segment.
type CompactOutcome struct {
	Key   string   `json:"key"`
	Cost  atf.Cost `json:"cost,omitempty"`
	Error string   `json:"error,omitempty"`
}

// BatchRecord journals one batch boundary of the parallel engine: batch
// Index covered evaluations [StartEval, StartEval+Size). Written before
// the batch is dispatched, so a journal whose evaluations stop inside a
// batch's range identifies exactly which dispatch a crash interrupted. A
// resumed run replays the same deterministic batch walk and skips
// re-journaling marks inside the replayed prefix; the mark at the replay
// boundary is appended again, which is why readers dedup by Index.
type BatchRecord struct {
	Index     uint64 `json:"index"`
	StartEval uint64 `json:"start_eval"`
	Size      int    `json:"size"`
}

// EvalRecord journals one committed evaluation. Key is the configuration's
// deterministic cache key — the value replay matches on — while Config is
// the human- and client-readable form.
type EvalRecord struct {
	Index  uint64      `json:"index"`
	Key    string      `json:"key"`
	Config *atf.Config `json:"config,omitempty"`
	Cost   atf.Cost    `json:"cost,omitempty"`
	Error  string      `json:"error,omitempty"`
	Cached bool        `json:"cached,omitempty"`
	AtNs   int64       `json:"at_ns,omitempty"`
}

// DoneRecord closes a journal: the session reached a terminal state and
// must not be resumed.
type DoneRecord struct {
	State       string      `json:"state"` // "done" | "canceled" | "failed"
	Evaluations uint64      `json:"evaluations"`
	Valid       uint64      `json:"valid"`
	Best        *atf.Config `json:"best,omitempty"`
	BestCost    atf.Cost    `json:"best_cost,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// mJournalRotations counts journal segment rotations daemon-wide.
var mJournalRotations = obs.NewCounter("atf_server_journal_rotations_total",
	"Session journal files rotated into numbered segments")

// mJournalCompactions counts rotated segments rewritten to compact form.
var mJournalCompactions = obs.NewCounter("atf_server_journal_compactions_total",
	"Rotated journal segments compacted to their deduplicated outcome map")

// Journal is the append-only writer for one session. Every append is
// followed by an fsync: the journal's whole point is surviving the daemon,
// and the simulated cost evaluations dwarf the sync latency.
type Journal struct {
	// RotateBytes rolls the active file into a numbered segment once it
	// grows past this size; 0 never rotates. Set right after
	// CreateJournal/OpenJournalAppend, before the first Append race.
	RotateBytes int64

	// Compact rewrites each freshly rotated segment down to a spec header
	// plus one compact record (the deduplicated outcome map). Compaction
	// runs asynchronously off the append path; WaitCompaction blocks until
	// in-flight rewrites finish. Set alongside RotateBytes.
	Compact bool

	mu     sync.Mutex
	f      *os.File
	path   string
	header []byte // spec-header line, replayed into each fresh segment
	size   int64  // bytes written to the active file
	seg    int    // rotated segments already on disk

	compactWG sync.WaitGroup
}

// CreateJournal starts a new session journal with its spec header.
func CreateJournal(path, session, name string, spec *atf.Spec, createdUnixNs int64) (*Journal, error) {
	header, err := marshalLine(Record{
		Type: "spec", Session: session, Name: name,
		CreatedUnixNs: createdUnixNs, Spec: spec,
	})
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: creating journal: %w", err)
	}
	j := &Journal{f: f, path: path, header: header}
	if err := j.writeLocked(header); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournalAppend reopens an interrupted session's journal for resume.
// The header record is re-journaled into every segment the resumed run
// rotates into; if a crash between rotation steps left no active file,
// one is recreated from it.
func OpenJournalAppend(path string, header Record) (*Journal, error) {
	hdr, err := marshalLine(header)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: reopening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: reopening journal: %w", err)
	}
	segs, err := listSegments(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, path: path, header: hdr, size: st.Size(), seg: len(segs)}
	if j.size == 0 {
		// A rotation the old process never finished (segment renamed, new
		// active not yet headed) — or finished headless; either way the
		// active file needs its header before anything else.
		if err := j.writeLocked(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// Path returns the active journal file's path.
func (j *Journal) Path() string { return j.path }

func marshalLine(rec Record) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("server: marshaling journal record: %w", err)
	}
	return append(data, '\n'), nil
}

// Append writes one record as a JSON line, syncs it to disk, and rotates
// the active file into a segment if it has outgrown RotateBytes.
func (j *Journal) Append(rec Record) error {
	data, err := marshalLine(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeLocked(data); err != nil {
		return err
	}
	// Terminal records close the journal anyway; rotating after one would
	// leave an active file holding nothing but a header.
	if j.RotateBytes > 0 && j.size >= j.RotateBytes && rec.Type != "done" {
		return j.rotateLocked()
	}
	return nil
}

func (j *Journal) writeLocked(data []byte) error {
	if j.f == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("server: writing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: syncing journal: %w", err)
	}
	j.size += int64(len(data))
	return nil
}

// rotateLocked renames the active file to the next segment and starts a
// fresh active file with the spec header. The rename is atomic; a crash
// between rename and the new header leaves no active file, which
// OpenJournalAppend repairs on resume.
func (j *Journal) rotateLocked() error {
	if err := j.f.Close(); err != nil {
		j.f = nil
		return fmt.Errorf("server: rotating journal: %w", err)
	}
	j.f = nil
	j.seg++
	if err := os.Rename(j.path, segmentPath(j.path, j.seg)); err != nil {
		j.seg--
		return fmt.Errorf("server: rotating journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: rotating journal: %w", err)
	}
	j.f = f
	j.size = 0
	mJournalRotations.Inc()
	if j.Compact {
		seg := segmentPath(j.path, j.seg)
		j.compactWG.Add(1)
		go func() {
			defer j.compactWG.Done()
			CompactSegment(seg)
		}()
	}
	return j.writeLocked(j.header)
}

// WaitCompaction blocks until all in-flight segment compactions finish
// (tests, shutdown ordering).
func (j *Journal) WaitCompaction() { j.compactWG.Wait() }

// CompactSegment rewrites one closed journal segment to its compact form:
// the spec header followed by a single compact record folding every eval
// line into a deduplicated outcome map. The rewrite is atomic (tmp +
// fsync + rename); anything unexpected in the segment — a done record, a
// torn line, a gap in the eval indices — aborts the rewrite and leaves the
// segment untouched. Idempotent: an already compacted segment folds its
// compact record and rewrites to the same content.
func CompactSegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var header []byte
	var cr CompactRecord
	seen := make(map[string]bool)
	evalLines := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	firstLine := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("server: compacting %s: bad line: %w", path, err)
		}
		switch rec.Type {
		case "spec":
			if !firstLine {
				return fmt.Errorf("server: compacting %s: duplicate spec header", path)
			}
			header = append(append([]byte(nil), line...), '\n')
		case "compact":
			if rec.Compact == nil || cr.Evals > 0 || evalLines > 0 {
				return fmt.Errorf("server: compacting %s: misplaced compact record", path)
			}
			cr = *rec.Compact
			for _, o := range cr.Outcomes {
				seen[o.Key] = true
			}
		case "eval":
			if rec.Eval == nil {
				return fmt.Errorf("server: compacting %s: empty eval record", path)
			}
			if evalLines == 0 && cr.Evals == 0 {
				cr.Start = rec.Eval.Index
			} else if rec.Eval.Index != cr.Start+cr.Evals {
				return fmt.Errorf("server: compacting %s: eval index %d, want %d",
					path, rec.Eval.Index, cr.Start+cr.Evals)
			}
			evalLines++
			cr.Evals++
			ev := rec.Eval
			if len(ev.Cost) > 0 && !ev.Cost.IsInf() {
				cr.Valid++
				if cr.Best == nil || ev.Cost.Less(cr.BestCost) {
					cr.Best, cr.BestCost = ev.Config, ev.Cost
				}
			}
			if !seen[ev.Key] {
				seen[ev.Key] = true
				cr.Outcomes = append(cr.Outcomes,
					CompactOutcome{Key: ev.Key, Cost: ev.Cost, Error: ev.Error})
			}
		case "batch":
			// Batch boundaries only matter for the active file's crash
			// attribution; a closed segment's are dead weight.
		case "done":
			return fmt.Errorf("server: compacting %s: segment holds a done record", path)
		default:
			return fmt.Errorf("server: compacting %s: unknown record type %q", path, rec.Type)
		}
		firstLine = false
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("server: compacting %s: %w", path, err)
	}
	if header == nil {
		return fmt.Errorf("server: compacting %s: no spec header", path)
	}
	if evalLines == 0 {
		return nil // nothing to fold (already compact, or batch-only)
	}

	line, err := marshalLine(Record{Type: "compact", Compact: &cr})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("server: compacting %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	write := func() error {
		if _, err := tmp.Write(header); err != nil {
			return err
		}
		if _, err := tmp.Write(line); err != nil {
			return err
		}
		if err := tmp.Sync(); err != nil {
			return err
		}
		return tmp.Close()
	}
	if err := write(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: compacting %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: compacting %s: %w", path, err)
	}
	mJournalCompactions.Inc()
	return nil
}

// segmentPath names rotated segment n of the journal at path:
// <id>.jsonl -> <id>.seg<n>.jsonl.
func segmentPath(path string, n int) string {
	base := strings.TrimSuffix(path, ".jsonl")
	return fmt.Sprintf("%s.seg%d.jsonl", base, n)
}

// listSegments returns the journal's rotated segments in rotation order.
func listSegments(path string) ([]string, error) {
	base := strings.TrimSuffix(path, ".jsonl")
	paths, err := filepath.Glob(base + ".seg*.jsonl")
	if err != nil {
		return nil, err
	}
	type seg struct {
		n    int
		path string
	}
	segs := make([]seg, 0, len(paths))
	for _, p := range paths {
		if n, ok := segmentNumber(base, p); ok {
			segs = append(segs, seg{n, p})
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].n < segs[k].n })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.path
	}
	return out, nil
}

// segmentNumber extracts N from <base>.seg<N>.jsonl.
func segmentNumber(base, path string) (int, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(path, base+".seg"), ".jsonl")
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Close closes the underlying file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// JournalData is a fully parsed session journal.
type JournalData struct {
	Path          string
	Session       string
	Name          string
	CreatedUnixNs int64
	Spec          *atf.Spec
	Evals         []EvalRecord
	// Compacted counts the evaluations folded into compact records by
	// segment compaction: Evals[i] is the evaluation with absolute index
	// Compacted+i, and the folded prefix survives only as Outcomes plus the
	// Compact* running counters.
	Compacted       uint64
	CompactValid    uint64
	CompactBest     *atf.Config
	CompactBestCost atf.Cost
	// Outcomes are the deduplicated outcomes of the folded prefix, in
	// first-seen order — what replay serves for re-proposed configurations
	// whose eval lines were compacted away.
	Outcomes []CompactOutcome
	// Batches are the journaled batch boundaries, deduplicated by batch
	// index (a resumed run re-journals the mark it was interrupted in).
	Batches []BatchRecord
	Done    *DoneRecord
	// Truncated marks a torn or out-of-sequence tail that was dropped
	// (the line a kill interrupted mid-write).
	Truncated bool
}

// ReadJournalFile parses a single journal file — one segment or an
// unrotated journal. The spec header must parse — without it the session
// cannot be rebuilt — while a broken tail only sets Truncated: every
// intact evaluation before it is kept for replay.
func ReadJournalFile(path string) (*JournalData, error) {
	d := &JournalData{Path: path}
	if err := readJournalInto(d, path, true, make(map[uint64]bool)); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadSessionJournal parses a session's whole journal — every rotated
// segment in order, then the active file — into one JournalData. Each
// file restates the spec header (dropped past the first); evaluation
// indices continue across the file boundaries. A damaged file stops the
// merge there with Truncated set: later files cannot be trusted to
// continue a broken sequence.
func ReadSessionJournal(path string) (*JournalData, error) {
	segs, err := listSegments(path)
	if err != nil {
		return nil, err
	}
	files := append(segs, path)
	d := &JournalData{Path: path}
	seenBatches := make(map[uint64]bool)
	for i, p := range files {
		if i > 0 && (d.Truncated || d.Done != nil) {
			break
		}
		if err := readJournalInto(d, p, i == 0, seenBatches); err != nil {
			if i > 0 && os.IsNotExist(err) {
				continue // active file lost to a mid-rotation crash
			}
			return nil, err
		}
	}
	return d, nil
}

// readJournalInto parses one journal file, appending into d. For the
// first file the header populates d; for continuation files it must name
// the same session and is otherwise skipped.
func readJournalInto(d *JournalData, path string, first bool, seenBatches map[uint64]bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	firstLine := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if firstLine && first {
				return fmt.Errorf("server: journal %s: bad spec header: %w", path, err)
			}
			d.Truncated = true
			return nil
		}
		switch rec.Type {
		case "spec":
			if !firstLine {
				return fmt.Errorf("server: journal %s: duplicate spec header", path)
			}
			if first {
				d.Session, d.Name = rec.Session, rec.Name
				d.CreatedUnixNs, d.Spec = rec.CreatedUnixNs, rec.Spec
			} else if rec.Session != d.Session {
				return fmt.Errorf("server: journal %s continues session %q, not %q",
					path, rec.Session, d.Session)
			}
		case "eval":
			if rec.Eval == nil || rec.Eval.Index != d.Compacted+uint64(len(d.Evals)) {
				// An out-of-sequence eval means the tail is damaged;
				// everything up to here is still a valid prefix.
				d.Truncated = true
				return nil
			}
			d.Evals = append(d.Evals, *rec.Eval)
		case "compact":
			// Compact records may only extend the folded prefix: one
			// appearing after individual evals means segments were
			// reordered or lost, which reads as damage.
			if rec.Compact == nil || len(d.Evals) > 0 || rec.Compact.Start != d.Compacted {
				d.Truncated = true
				return nil
			}
			d.Compacted += rec.Compact.Evals
			d.CompactValid += rec.Compact.Valid
			if rec.Compact.Best != nil &&
				(d.CompactBest == nil || rec.Compact.BestCost.Less(d.CompactBestCost)) {
				d.CompactBest, d.CompactBestCost = rec.Compact.Best, rec.Compact.BestCost
			}
			d.Outcomes = append(d.Outcomes, rec.Compact.Outcomes...)
		case "batch":
			if rec.Batch == nil {
				d.Truncated = true
				return nil
			}
			if !seenBatches[rec.Batch.Index] {
				seenBatches[rec.Batch.Index] = true
				d.Batches = append(d.Batches, *rec.Batch)
			}
		case "done":
			d.Done = rec.Done
			return nil
		default:
			d.Truncated = true
			return nil
		}
		firstLine = false
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("server: reading journal %s: %w", path, err)
	}
	if firstLine && first {
		return fmt.Errorf("server: journal %s is empty", path)
	}
	if first && d.Spec == nil {
		return fmt.Errorf("server: journal %s has no spec header", path)
	}
	return nil
}

// ListJournals returns the active journal files under dir, sorted by
// name; rotated segments (<id>.seg<N>.jsonl) belong to their session's
// active journal and are excluded.
func ListJournals(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	out := paths[:0]
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".jsonl")
		if i := strings.LastIndex(name, ".seg"); i >= 0 {
			if n, err := strconv.Atoi(name[i+4:]); err == nil && n >= 1 {
				continue // a rotated segment, owned by its active journal
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// sanitizeName turns a session name into a file-system- and URL-safe slug.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ', r == '_', r == '.':
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		s = "session"
	}
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}
