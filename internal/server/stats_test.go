package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"atf"
)

const statsSpecJSON = `{
	"name": "stats test",
	"parameters": [
		{"name": "X", "range": {"interval": {"begin": 1, "end": 40}}}
	],
	"cost": {"kind": "expr", "expr": "(X - 7) * (X - 7)"},
	"abort": {"evaluations": 40},
	"parallelism": 2
}`

// TestMetricsEndpoint runs a tuning session to completion, scrapes
// /metrics, parses every line of the Prometheus text format, and asserts
// the core evaluation counters are present and non-zero.
func TestMetricsEndpoint(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := httptest.NewServer((&API{Manager: m}).Handler())
	defer srv.Close()

	spec, err := atf.ParseSpec([]byte(statsSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	values := parsePrometheus(t, string(body))
	// The exhaustive run committed 40 evaluations; the process-wide counter
	// may exceed that (other tests in the package also explore) but can
	// never be below it, and the cost histogram must have observations.
	for _, name := range []string{"atf_evaluations_total", "atf_evaluation_cost_seconds_count"} {
		v, ok := values[name]
		if !ok {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
		if v < 40 {
			t.Errorf("%s = %v, want >= 40", name, v)
		}
	}
	// Histogram well-formedness: the +Inf bucket equals _count.
	if inf, ok := values[`atf_evaluation_cost_seconds_bucket{le="+Inf"}`]; !ok {
		t.Error("/metrics missing the +Inf bucket of atf_evaluation_cost_seconds")
	} else if inf != values["atf_evaluation_cost_seconds_count"] {
		t.Errorf("+Inf bucket %v != count %v", inf, values["atf_evaluation_cost_seconds_count"])
	}
}

// parsePrometheus parses text exposition format into sample name → value,
// failing the test on any malformed line.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	values := make(map[string]float64)
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("line %d not 'name value': %q", i+1, line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("line %d has bad value: %q: %v", i+1, line, err)
		}
		values[line[:idx]] = v
	}
	if len(values) == 0 {
		t.Fatal("no samples parsed from /metrics")
	}
	return values
}

// TestSessionStatsEndpoint asserts the per-session JSON stats view:
// exactly this session's 40 evaluations, a populated cost histogram, and
// the embedded status snapshot.
func TestSessionStatsEndpoint(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := httptest.NewServer((&API{Manager: m}).Handler())
	defer srv.Close()

	spec, err := atf.ParseSpec([]byte(statsSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait()

	resp, err := srv.Client().Get(fmt.Sprintf("%s/v1/sessions/%s/stats", srv.URL, s.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Status.State != StateDone {
		t.Errorf("state = %s, want done", stats.Status.State)
	}
	if got := stats.Metrics.Counter("session_evaluations_total").Value; got != 40 {
		t.Errorf("session_evaluations_total = %d, want 40", got)
	}
	if got := stats.Metrics.Counter("session_valid_total").Value; got != 40 {
		t.Errorf("session_valid_total = %d, want 40", got)
	}
	h := stats.Metrics.Histogram("session_cost_seconds")
	if h.Count != 40 {
		t.Errorf("session_cost_seconds count = %d, want 40", h.Count)
	}

	// Unknown session id → 404.
	resp2, err := srv.Client().Get(srv.URL + "/v1/sessions/nosuch/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("GET /stats for unknown id = %d, want 404", resp2.StatusCode)
	}
}

// TestStatsSurvivesResume: a resumed session rebuilds its per-session
// metrics from the replayed journal prefix, so /stats never undercounts
// after a daemon restart.
func TestStatsSurvivesResume(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := parseResumeSpec(t)
	s1, err := m1.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let some evaluations land, then interrupt.
	waitForEvals(t, s1, 20)
	m1.Shutdown()

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown()
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %d sessions, want 1", len(resumed))
	}
	s2 := resumed[0]
	s2.Wait()
	stats := s2.Stats()
	if got, want := stats.Metrics.Counter("session_evaluations_total").Value, stats.Status.Evaluations; got != want {
		t.Errorf("metrics evaluations = %d, status evaluations = %d; must match after resume", got, want)
	}
	if stats.Metrics.Counter("session_valid_total").Value == 0 {
		t.Error("resumed session has zero valid evaluations in metrics")
	}
}
