module atf

go 1.22
