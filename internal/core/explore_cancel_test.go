package core

import (
	"context"
	"sync/atomic"
	"testing"
)

// cancelSpace builds a small 1-D space for cancellation tests.
func cancelSpace(t *testing.T, n int64) *Space {
	t.Helper()
	p := NewParam("X", NewInterval(1, n))
	sp, err := GenerateFlat([]*Param{p}, GenOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestExploreContextCancel(t *testing.T) {
	sp := cancelSpace(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		if evals.Add(1) == 10 {
			cancel()
		}
		return SingleCost(float64(cfg.Int("X"))), nil
	})
	res, err := Explore(sp, &indexWalker{}, cf, nil, ExploreOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= 1000 {
		t.Errorf("cancellation ignored: %d evaluations", res.Evaluations)
	}
	if res.Best == nil || res.BestCost.Primary() != 1 {
		t.Errorf("partial result lost: best = %v", res.Best)
	}
}

func TestExploreParallelContextCancel(t *testing.T) {
	sp := cancelSpace(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	cf := CostFunc(func(cfg *Config) (Cost, error) {
		if evals.Add(1) == 10 {
			cancel()
		}
		return SingleCost(float64(cfg.Int("X"))), nil
	})
	res, err := ExploreParallel(sp, &indexWalker{}, cf, nil, ParallelOptions{
		ExploreOptions: ExploreOptions{Context: ctx},
		Workers:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= 1000 {
		t.Errorf("cancellation ignored: %d evaluations", res.Evaluations)
	}
	if ctx.Err() == nil {
		t.Error("context should be canceled")
	}
}
