package core

import (
	"fmt"
	"testing"
)

// sweepCollect drains a sweep through NextChunk(chunk) and returns the
// cache keys of every emitted configuration in order.
func sweepCollect(sw *Sweep, chunk int) []string {
	defer sw.Close()
	var keys []string
	for {
		batch := sw.NextChunk(chunk)
		if len(batch) == 0 {
			return keys
		}
		for _, cfg := range batch {
			keys = append(keys, cfg.Key())
		}
	}
}

// TestSweepMatchesAt is the tentpole differential property of streaming
// iteration: a Sweep must emit exactly At(start), At(start+1), ... for any
// start offset, chunk size, prefetch setting, and representation (eager
// arena, lazy with and without eviction pressure) — the exhaustive
// technique's bit-identical journals ride on this.
func TestSweepMatchesAt(t *testing.T) {
	cases := []struct {
		name   string
		params func() []*Param
		tiny   int64
	}{
		{"chain", lazyChainParams, 4096},
		{"nodeps", lazyNoDepsParams, 768},
		{"inexact", lazyInexactParams, 2048},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			modes := []struct {
				label string
				opts  GenOptions
			}{
				{"eager", GenOptions{Mode: SpaceEager}},
				{"lazy", GenOptions{Mode: SpaceLazy}},
				{"lazy-tiny", GenOptions{Mode: SpaceLazy, MaxArenaBytes: tc.tiny}},
			}
			eager, err := GenerateFlat(tc.params(), GenOptions{Mode: SpaceEager})
			if err != nil {
				t.Fatal(err)
			}
			size := eager.Size()
			want := make([]string, size)
			for i := uint64(0); i < size; i++ {
				want[i] = eager.At(i).Key()
			}
			starts := []uint64{0, 1, size / 2, size - 1, size}
			for _, m := range modes {
				sp, err := GenerateFlat(tc.params(), m.opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, chunk := range []int{1, 7, 64} {
					for _, prefetch := range []bool{false, true} {
						for _, start := range starts {
							label := fmt.Sprintf("%s chunk=%d prefetch=%v start=%d",
								m.label, chunk, prefetch, start)
							got := sweepCollect(sp.Sweep(start, SweepOptions{Prefetch: prefetch}), chunk)
							if uint64(len(got)) != size-start {
								t.Fatalf("%s: emitted %d configs, want %d", label, len(got), size-start)
							}
							for i, k := range got {
								if k != want[start+uint64(i)] {
									t.Fatalf("%s: config %d = %q, want %q (At order violated)",
										label, i, k, want[start+uint64(i)])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestSweepMultiGroup covers the mixed-radix carry: advancing across group
// boundaries (last group wraps, earlier group steps, later cursors reset)
// must preserve At order on a multi-group space with lazy groups sharing
// one evicting slab cache.
func TestSweepMultiGroup(t *testing.T) {
	groups := []*Group{
		G(lazyChainParams()...),
		G(
			NewParam("X", NewInterval(1, 32)),
			NewParam("Y", NewInterval(1, 32), Divides(Ref("X"))),
		),
	}
	for _, opts := range []GenOptions{
		{Mode: SpaceEager},
		{Mode: SpaceLazy, MaxArenaBytes: 8192},
	} {
		sp, err := GenerateSpace(groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := GenerateSpace(groups, GenOptions{Mode: SpaceEager})
		if err != nil {
			t.Fatal(err)
		}
		got := sweepCollect(sp.Sweep(0, SweepOptions{Prefetch: true}), 33)
		if uint64(len(got)) != ref.Size() {
			t.Fatalf("emitted %d configs, want %d", len(got), ref.Size())
		}
		for i, k := range got {
			if want := ref.At(uint64(i)).Key(); k != want {
				t.Fatalf("config %d = %q, want %q", i, k, want)
			}
		}
	}
}

// TestSweepEmittedConfigsIndependent: chunk configurations are clones — a
// later advance must not mutate earlier emissions, and emitted configs must
// round-trip through IndexOf at their sweep index.
func TestSweepEmittedConfigsIndependent(t *testing.T) {
	sp, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	sw := sp.Sweep(0, SweepOptions{})
	defer sw.Close()
	var all []*Config
	for {
		batch := sw.NextChunk(16)
		if len(batch) == 0 {
			break
		}
		all = append(all, batch...)
	}
	for i, cfg := range all {
		if idx, ok := sp.IndexOf(cfg); !ok || idx != uint64(i) {
			t.Fatalf("IndexOf(config %d) = %d,%v", i, idx, ok)
		}
	}
}

// TestSweepCloseMidStream: abandoning a prefetching sweep mid-stream must
// not leak its producer goroutine or panic (Close drains the in-flight
// chunk; exercised under -race by the regular suite).
func TestSweepCloseMidStream(t *testing.T) {
	sp, err := GenerateFlat(lazyChainParams(), GenOptions{Mode: SpaceLazy})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sw := sp.Sweep(0, SweepOptions{Prefetch: true})
		sw.NextChunk(8)
		sw.NextChunk(8)
		sw.Close()
		if got := sw.NextChunk(8); got != nil {
			t.Fatal("NextChunk after Close returned configurations")
		}
		sw.Close() // idempotent
	}
}

// TestSweepEmptyAndExhausted covers the degenerate boundaries: an empty
// request, a sweep starting at Size, and an out-of-range start.
func TestSweepEmptyAndExhausted(t *testing.T) {
	sp, err := GenerateFlat(lazyNoDepsParams(), GenOptions{Mode: SpaceEager})
	if err != nil {
		t.Fatal(err)
	}
	sw := sp.Sweep(sp.Size(), SweepOptions{})
	if got := sw.NextChunk(4); got != nil {
		t.Fatalf("sweep at Size() emitted %d configs", len(got))
	}
	sw2 := sp.Sweep(0, SweepOptions{})
	if got := sw2.NextChunk(0); got != nil {
		t.Fatal("NextChunk(0) returned configurations")
	}
	sw2.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Sweep(Size()+1) did not panic")
		}
	}()
	sp.Sweep(sp.Size()+1, SweepOptions{})
}
