// Package obs is the tuner's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms — all
// atomic and race-clean) plus a structured event/trace API built on
// log/slog (trace.go).
//
// Metrics are registered once, by name, on a Registry; the package-level
// constructors (NewCounter, NewGauge, NewHistogram) register on the
// shared Default registry, which is what the instrumented hot paths —
// search-space generation, Explore/ExploreParallel, the cost cache, the
// oclc compile cache and the simulated device queue — record into, and
// what atfd's /metrics endpoint and the CLI -stats summaries export.
// Registration is get-or-create: re-registering a name returns the
// existing collector, so package-level metric variables and tests never
// collide.
//
// Exposition formats: WritePrometheus renders the Prometheus text
// format, Snapshot returns a JSON-marshalable point-in-time view (the
// atfd per-session /stats body), and WriteSummary prints the aligned
// table behind atf-tune/atf-experiments -stats.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events, hits, misses).
// All methods are safe for concurrent use.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (workers busy, cache size)
// or be set to an absolute value (last space size). Safe for concurrent
// use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary cumulative histogram in the Prometheus
// style: Observe(v) increments the first bucket whose upper bound is
// >= v (an implicit +Inf bucket catches the rest) plus the running count
// and sum. Bounds are fixed at construction; Observe is lock-free.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf implicit
	buckets    []atomic.Uint64
	count      atomic.Uint64
	sum        atomicFloat
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Bucket search is linear: bucket lists are short (≤ ~16) and the
	// common observations land in the first few buckets, so this beats
	// binary search in practice and keeps the hot path branch-cheap.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 accumulated with a CAS loop (histogram sums).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DurationBuckets are the default upper bounds, in seconds, for latency
// histograms: 1µs–60s in roughly half-decade steps. The low end resolves
// in-process work (bucket merges, cached compiles: ~µs), the middle the
// simulated kernel times (~µs–ms), and the tail real cost functions that
// run compiled programs for seconds. Documented in DESIGN.md §3c; change
// there too if these move.
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 30, 60,
}

// Registry holds named collectors. The zero value is not usable; create
// with NewRegistry. Collector registration is get-or-create by name, so
// concurrent or repeated registration of the same metric is safe and
// returns the same collector.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry (per-session metrics in atfd).
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the shared process-wide registry that the built-in
// instrumentation records into.
func Default() *Registry { return defaultRegistry }

// NewCounter registers (or returns the existing) counter on the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counts[name] = c
	return c
}

// NewGauge registers (or returns the existing) gauge on the registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// NewHistogram registers (or returns the existing) histogram with the
// given ascending upper bucket bounds (nil selects DurationBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name: name, help: help,
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// CounterSnapshot is a counter's point-in-time state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is a gauge's point-in-time state.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is a histogram's point-in-time state. Counts are
// per-bucket (non-cumulative); Bounds[i] is Counts[i]'s upper bound and
// Counts[len(Bounds)] is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing it — the same estimate Prometheus'
// histogram_quantile computes. Values in the +Inf bucket clamp to the
// last finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket: clamp
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a registry's full point-in-time state, ordered by metric
// name; it marshals to the JSON served by atfd's per-session /stats.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter snapshot (zero value when absent).
func (s Snapshot) Counter(name string) CounterSnapshot {
	for _, c := range s.Counters {
		if c.Name == name {
			return c
		}
	}
	return CounterSnapshot{Name: name}
}

// Histogram returns the named histogram snapshot (zero value if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h
		}
	}
	return HistogramSnapshot{Name: name}
}

// Snapshot captures the registry's current state. Individual metric
// reads are atomic; the snapshot as a whole is not a consistent cut
// across metrics (none is needed for monitoring).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counts))
	for _, c := range r.counts {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range hists {
		hs := HistogramSnapshot{
			Name: h.name, Help: h.help,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
